package lightwave_test

import (
	"testing"

	"lightwave/internal/lint"
)

// The hand-rolled import walker this file used to carry grew into
// internal/lint (cmd/lwlint): the simrand analyzer subsumes the old
// math/rand import scan, and the rest of the catalog mechanically enforces
// the determinism, virtual-time, lock-order, hot-path, and durability
// contracts described in DESIGN.md §15. These tests are the in-tree gate:
// `go test .` fails the moment the shipping tree picks up a violation,
// with or without the Makefile lint target.

// TestLintClean runs the full analyzer catalog over the module and
// requires zero findings. Suppressions (//lwlint:ignore with a written
// reason) are part of the contract: a suppressed finding is a decision,
// an unsuppressed one is a bug.
func TestLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, err := lint.Run(".", []string{"./..."}, lint.DefaultConfig(), lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestNoMathRandImports is the historical name for the randomness-source
// policy; it now shells into the simrand analyzer alone so a randomness
// regression is named precisely even when other analyzers are failing.
func TestNoMathRandImports(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, err := lint.Run(".", []string{"./..."}, lint.DefaultConfig(),
		[]*lint.Analyzer{lint.AnalyzerSimrand})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
