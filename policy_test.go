package lightwave_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// All simulation randomness must flow through sim.Rand so that seeds are
// explicit and substreams are the only sanctioned way to split a stream
// (see DESIGN.md). math/rand has a shared, lock-protected global source and
// math/rand/v2 auto-seeds, either of which would silently break the
// worker-count determinism contract of internal/par. This guard fails the
// build the moment a non-test file imports them.
func TestNoMathRandImports(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "math/rand" || p == "math/rand/v2" {
				t.Errorf("%s imports %s; use lightwave/internal/sim (sim.Rand, sim.Substream) instead", path, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
