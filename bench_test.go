package lightwave_test

// One benchmark per table and figure of the paper's evaluation section.
// Each bench regenerates the underlying experiment and reports the headline
// quantity as a custom metric, so `go test -bench=. -benchmem` doubles as
// the reproduction harness (cmd/experiments prints the full rows/series).

import (
	"testing"

	"lightwave/internal/avail"
	"lightwave/internal/collective"
	"lightwave/internal/cost"
	"lightwave/internal/dcn"
	"lightwave/internal/dsp"
	"lightwave/internal/fec"
	"lightwave/internal/mlperf"
	"lightwave/internal/ocs"
	"lightwave/internal/optics"
	"lightwave/internal/sched"
	"lightwave/internal/sim"
	"lightwave/internal/topo"
)

// BenchmarkFig10aInsertionLoss samples all 136×136 cross-connections of a
// Palomar OCS (Fig 10a: typically <2 dB).
func BenchmarkFig10aInsertionLoss(b *testing.B) {
	sw, err := ocs.New(ocs.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	for i := 0; i < b.N; i++ {
		var s sim.Summary
		for p := 0; p < sw.Radix(); p++ {
			for q := 0; q < sw.Radix(); q++ {
				s.Add(sw.IntrinsicLossDB(ocs.PortID(p), ocs.PortID(q)))
			}
		}
		mean = s.Mean()
	}
	b.ReportMetric(mean, "dB-mean-loss")
}

// BenchmarkFig10bReturnLoss samples the per-port return loss (Fig 10b:
// typically −46 dB, spec < −38 dB).
func BenchmarkFig10bReturnLoss(b *testing.B) {
	sw, err := ocs.New(ocs.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	for i := 0; i < b.N; i++ {
		var s sim.Summary
		for p := 0; p < sw.Radix(); p++ {
			rl, err := sw.ReturnLossDB(ocs.PortID(p))
			if err != nil {
				b.Fatal(err)
			}
			s.Add(rl)
		}
		mean = s.Mean()
	}
	b.ReportMetric(mean, "dB-mean-return-loss")
}

// BenchmarkFig11aSimulatedBER sweeps the analytic PAM4 BER model across
// received power and MPI conditions (Fig 11a) and reports the OIM
// sensitivity gain at the KP4 threshold for MPI −32 dB (paper: >1 dB).
func BenchmarkFig11aSimulatedBER(b *testing.B) {
	r := dsp.DefaultReceiver()
	var gain float64
	for i := 0; i < b.N; i++ {
		for p := -14.0; p <= -4; p += 0.25 {
			for _, mpi := range []float64{dsp.NoMPI, -35, -32, -29} {
				_ = r.BER(p, dsp.MPICondition{MPIDB: mpi})
				_ = r.BER(p, dsp.MPICondition{MPIDB: mpi, OIM: true})
			}
		}
		raw, err1 := r.Sensitivity(fec.KP4Threshold, dsp.MPICondition{MPIDB: -32})
		oim, err2 := r.Sensitivity(fec.KP4Threshold, dsp.MPICondition{MPIDB: -32, OIM: true})
		if err1 != nil || err2 != nil {
			b.Fatal(err1, err2)
		}
		gain = raw - oim
	}
	b.ReportMetric(gain, "dB-OIM-gain@-32dB")
}

// BenchmarkFig11bMonteCarloBER runs the waveform-level simulation that
// plays the role of the paper's measured curves (Fig 11b).
func BenchmarkFig11bMonteCarloBER(b *testing.B) {
	r := dsp.DefaultReceiver()
	var ber float64
	for i := 0; i < b.N; i++ {
		res := r.MonteCarloBER(-11, dsp.MPICondition{MPIDB: -32},
			dsp.MonteCarloConfig{Symbols: 100000, Rand: sim.NewRand(uint64(i + 1))})
		ber = res.BER
	}
	b.ReportMetric(ber, "measured-BER@-11dBm")
}

// BenchmarkFig12ConcatenatedFEC measures the sensitivity improvement of
// the inner soft-decision code over bare KP4 (Fig 12: 1.6 dB at 2e-4).
func BenchmarkFig12ConcatenatedFEC(b *testing.B) {
	r := dsp.DefaultReceiver()
	inner := fec.DefaultInner()
	clean := dsp.MPICondition{MPIDB: dsp.NoMPI}
	var gain float64
	for i := 0; i < b.N; i++ {
		without, err := r.Sensitivity(fec.KP4Threshold, clean)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := -30.0, 5.0
		for j := 0; j < 60; j++ {
			mid := (lo + hi) / 2
			if inner.Transfer(r.BER(mid, clean)) > fec.KP4Threshold {
				lo = mid
			} else {
				hi = mid
			}
		}
		gain = without - (lo+hi)/2
	}
	b.ReportMetric(gain, "dB-SFEC-gain")
}

// BenchmarkFig13FleetBER samples the per-lane BER of all 6144 receiving
// ports of a pod (Fig 13: everything under 2e-4 with ≈2 decades margin).
// The sampler fans out across GOMAXPROCS workers deterministically.
func BenchmarkFig13FleetBER(b *testing.B) {
	r := dsp.DefaultReceiver()
	sens, err := r.Sensitivity(fec.KP4Threshold, dsp.MPICondition{MPIDB: dsp.NoMPI})
	if err != nil {
		b.Fatal(err)
	}
	cfg := dsp.DefaultFleetBERConfig()
	cfg.SensitivityDBm = sens
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = r.FleetBER(cfg).Worst
	}
	b.ReportMetric(worst, "worst-fleet-BER")
}

// BenchmarkTable1CostPower rebuilds the three pod fabric BOMs (Table 1).
func BenchmarkTable1CostPower(b *testing.B) {
	var lightwaveCost float64
	for i := 0; i < b.N; i++ {
		rows := cost.Table1()
		lightwaveCost = rows[1].RelativeCost
	}
	b.ReportMetric(lightwaveCost, "lightwave-relative-cost")
}

// BenchmarkTable2LLMSpeedup runs the slice-shape optimizer for the three
// LLM workloads (Table 2).
func BenchmarkTable2LLMSpeedup(b *testing.B) {
	sys := mlperf.DefaultSystem()
	var llm1 float64
	for i := 0; i < b.N; i++ {
		results, err := mlperf.Table2(sys)
		if err != nil {
			b.Fatal(err)
		}
		llm1 = results[1].Speedup
	}
	b.ReportMetric(llm1, "LLM1-speedup")
}

// BenchmarkFig15aFabricAvailability sweeps fabric availability vs per-OCS
// availability for the 96/48/24-OCS designs (Fig 15a).
func BenchmarkFig15aFabricAvailability(b *testing.B) {
	var bidi float64
	for i := 0; i < b.N; i++ {
		for _, n := range []int{96, 48, 24} {
			for a := 0.995; a <= 0.9999; a += 0.0001 {
				_ = avail.FabricAvailability(a, n)
			}
		}
		bidi = avail.FabricAvailability(0.999, 48)
	}
	b.ReportMetric(bidi, "fabric-avail-48OCS@0.999")
}

// BenchmarkFig15bGoodput computes the goodput-vs-slice-size family of
// curves (Fig 15b), cross-validated by Monte Carlo. The grid fans out on
// the internal/par worker pool.
func BenchmarkFig15bGoodput(b *testing.B) {
	avails := []float64{0.99, 0.995, 0.999}
	ks := []int{1, 2, 4, 8, 16, 32}
	var reconf1024 float64
	for i := 0; i < b.N; i++ {
		pts := avail.GoodputSurface(avails, ks)
		for _, pt := range pts {
			if pt.ServerAvail == 0.999 && pt.SliceCubes == 16 {
				reconf1024 = pt.Reconfigurable
			}
		}
	}
	b.ReportMetric(reconf1024, "goodput-1024@99.9")
}

// BenchmarkDCNSpineFree rebuilds the spine-full vs spine-free DCN BOMs
// (§4.2 summary: ≈30% capex, ≈41% power savings).
func BenchmarkDCNSpineFree(b *testing.B) {
	p := cost.DefaultDCN()
	var capex float64
	for i := 0; i < b.N; i++ {
		c, _ := p.DCNSavings()
		capex = c
	}
	b.ReportMetric(100*capex, "capex-savings-%")
}

// BenchmarkDCNTopologyEngineering runs the engineered-vs-uniform flow-level
// comparison (§4.2 summary: ≈10% FCT, ≈30% throughput). This is the
// heaviest bench; it runs the full reference experiment once per iteration.
func BenchmarkDCNTopologyEngineering(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cmp, err := dcn.CompareTopologies(dcn.ReferenceExperiment())
		if err != nil {
			b.Fatal(err)
		}
		gain = cmp.ThroughputGain
	}
	b.ReportMetric(100*gain, "throughput-gain-%")
}

// BenchmarkDeploymentModularity computes the OCS counts per transceiver
// option and the bidi savings (§4.2.3).
func BenchmarkDeploymentModularity(b *testing.B) {
	gens := []string{"200G-CWDM4", "2x200G-bidi-CWDM4", "800G-bidi-CWDM8"}
	var savings float64
	for i := 0; i < b.N; i++ {
		for _, g := range gens {
			gen, err := optics.GenerationByName(g)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := avail.OCSCount(gen); err != nil {
				b.Fatal(err)
			}
		}
		savings = cost.OCSSavingsFromBidi()
	}
	b.ReportMetric(100*savings, "bidi-OCS-savings-%")
}

// BenchmarkSchedulerUtilization runs the reconfigurable-vs-contiguous
// scheduling comparison (§4.2.4: >98% utilization).
func BenchmarkSchedulerUtilization(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		reconf, _, err := sched.CompareUtilization(sched.ProductionMix(), sched.ReferenceConfig())
		if err != nil {
			b.Fatal(err)
		}
		util = reconf.Utilization
	}
	b.ReportMetric(100*util, "reconf-utilization-%")
}

// BenchmarkFig2HybridCollective times the hierarchical ICI-DCN all-reduce
// across four superpods (Fig 2).
func BenchmarkFig2HybridCollective(b *testing.B) {
	h := collective.Hierarchical{
		Pods:     4,
		PodTorus: collective.Torus{Dims: []int{16, 16, 16}, Link: collective.ICILink()},
		DCN:      collective.DCNLink(),
	}
	var t float64
	for i := 0; i < b.N; i++ {
		var err error
		t, err = h.AllReduceTime(256e6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1e3*t, "allreduce-ms")
}

// BenchmarkTableC1Technologies evaluates the OCS technology selection
// (Table C.1: MEMS wins for the superpod requirement).
func BenchmarkTableC1Technologies(b *testing.B) {
	var picked string
	for i := 0; i < b.N; i++ {
		sel := cost.SelectTechnology(cost.SuperpodRequirement())
		if len(sel) == 0 {
			b.Fatal("no technology selected")
		}
		picked = sel[0].Name
	}
	if picked != "MEMS" {
		b.Fatalf("selected %s", picked)
	}
}

// BenchmarkComposeFullPod measures the control plane composing a full
// 4096-chip slice (3072 circuits across 48 OCSes) — the end-to-end cost of
// a pod-scale reconfiguration.
func BenchmarkComposeFullPod(b *testing.B) {
	cubes := make([]int, 64)
	for i := range cubes {
		cubes[i] = i
	}
	for i := 0; i < b.N; i++ {
		fab := newBenchFabric(b)
		if _, err := fab.ComposeSlice("big", topo.Shape{X: 16, Y: 16, Z: 16}, cubes); err != nil {
			b.Fatal(err)
		}
	}
}
