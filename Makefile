GO ?= go

.PHONY: check vet build test race bench experiments clean

# The gate every change must pass: vet, build everything, race-test everything.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
