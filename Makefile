GO ?= go

.PHONY: check vet lint build test race race-par race-te race-chaos race-sched race-ctl race-wal bench bench-sim bench-dcn bench-te bench-chaos bench-sched bench-ctl bench-wal profile-dcn experiments clean

# The gate every change must pass: vet, build everything, race-test the
# parallel engine under contention, race-test the TE loop (its Loop is
# shared between the runner goroutine and status serving), race-test the
# chaos subsystem (its injector threads live reconciler workers through
# scenario replays), race-test the online scheduler (its Scheduler is
# shared between the runner tick loop, fleet-event feedback, and RPC
# status/submit), race-test the control protocol (one pipelined client is
# shared by N callers and one server connection runs decode, a worker
# pool and encode concurrently), race-test the durable-state subsystem
# (its group-commit writer batches concurrent appenders and the store is
# shared by three journal sources plus the checkpointer), then race-test
# everything.
check: vet build race-par race-te race-chaos race-sched race-ctl race-wal race

race-par:
	$(GO) test -race ./internal/par/...

race-te:
	$(GO) test -race ./internal/te/...

race-chaos:
	$(GO) test -race ./internal/chaos/...

race-sched:
	$(GO) test -race ./internal/sched/... ./internal/superpod/...

race-ctl:
	$(GO) test -race ./internal/ctlrpc/...

race-wal:
	$(GO) test -race ./internal/wal/...

# gofmt -l prints unformatted files; any hit fails the target with a
# readable diagnostic. vet folds in the project analyzer suite (lint):
# go vet catches generic Go mistakes, lwlint enforces the lightwave
# contracts (determinism, virtual time, lock order, hot-path allocation,
# durability) documented in DESIGN.md §15.
vet: lint
	$(GO) vet ./...
	@fmtout=$$(gofmt -l cmd internal); if [ -n "$$fmtout" ]; then echo "gofmt needed:"; echo "$$fmtout"; exit 1; fi

# The project-invariant analyzer suite. Exits non-zero on any finding;
# findings are fixed or suppressed in-line with //lwlint:ignore plus a
# written reason. `go run ./cmd/lwlint -json ./...` gives the same
# results machine-readably.
lint:
	$(GO) run ./cmd/lwlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Repeated runs of the parallelized Monte Carlo benchmarks (Fig 11b BER,
# Fig 13 fleet BER, Fig 15 goodput) in machine-readable form, for tracking
# the internal/par speedup across changes.
bench-sim:
	$(GO) test -json -run '^$$' -bench 'Fig11b|Fig13|Fig15' -benchmem -count=5 . > BENCH_sim.json

# Repeated runs of the DCN flow-simulator benchmarks in machine-readable
# form: the end-to-end §4.2 reproduction (DCNTopologyEngineering), the
# per-event hot loop (FlowSimEvents, MaxMinRates — the latter two must stay
# at 0 allocs/op), and the control-plane composition path (ComposeFullPod)
# for contrast. Run before and after any change to internal/dcn's hot paths
# and commit BENCH_dcn.json so the perf trajectory is tracked in-repo.
bench-dcn:
	$(GO) test -json -run '^$$' -bench 'DCNTopologyEngineering|FlowSimEvents|MaxMinRates|ComposeFullPod' -benchmem -count=5 . ./internal/dcn > BENCH_dcn.json

# Repeated runs of the TE-loop hot paths in machine-readable form: the
# per-epoch predictor update and the full planner decision (engineer +
# two fluid solves + staging). Commit BENCH_te.json so the decision
# latency trajectory is tracked in-repo.
bench-te:
	$(GO) test -json -run '^$$' -bench 'PredictorUpdate|PlannerDecide' -benchmem -count=5 ./internal/te > BENCH_te.json

# CPU profile of the heaviest bench; inspect with
# `$(GO) tool pprof dcn.test dcn.cpuprof` (live daemons expose the same
# data on <metrics-addr>/debug/pprof/profile).
# Repeated runs of the fault-injection hot paths in machine-readable form:
# full scenario replay through a live fleet manager (ScenarioReplay) and the
# injector's trunk bookkeeping (InjectorHotPath — must stay at 0 allocs/op).
# Commit BENCH_chaos.json so the injection overhead trajectory is tracked
# in-repo.
bench-chaos:
	$(GO) test -json -run '^$$' -bench 'ScenarioReplay|InjectorHotPath' -benchmem -count=5 ./internal/chaos > BENCH_chaos.json

# Repeated runs of the online-scheduler hot paths in machine-readable form:
# the steady-state submit/advance loop (SchedulerHotPath) and the bare
# placement decision per policy (PlacementDecision). Commit BENCH_sched.json
# so the per-job scheduling overhead is tracked in-repo.
bench-sched:
	$(GO) test -json -run '^$$' -bench 'SchedulerHotPath|PlacementDecision' -benchmem -count=5 ./internal/sched > BENCH_sched.json

# Repeated runs of the control-plane load harness in machine-readable form:
# the single-in-flight baseline (CtlRPCThroughput) against the pipelined
# configurations (CtlRPCPipelined at 8 conns x 8 in-flight, and
# CtlRPCPipelinedOneConn isolating pipelining from connection fan-out).
# Each run reports sustained req/s plus p50/p99 latency. Commit
# BENCH_ctl.json so the control-plane throughput trajectory is tracked
# in-repo; the pipelined configuration must sustain >=5x the baseline.
bench-ctl:
	$(GO) test -json -run '^$$' -bench 'CtlRPCThroughput|CtlRPCPipelined' -benchmem -count=5 ./internal/ctlrpc > BENCH_ctl.json

# Repeated runs of the WAL hot paths in machine-readable form: the
# group-commit append under real fsyncs (WALAppend), the fsync-free
# framing cost (WALAppendNoSync), fsync amortization across concurrent
# appenders (WALAppendParallel), and cold-start replay (WALReplay).
# Commit BENCH_wal.json so the durability overhead trajectory is tracked
# in-repo.
bench-wal:
	$(GO) test -json -run '^$$' -bench 'WALAppend|WALReplay' -benchmem -count=5 ./internal/wal > BENCH_wal.json

profile-dcn:
	$(GO) test -run '^$$' -bench 'DCNTopologyEngineering' -benchtime 5x -cpuprofile dcn.cpuprof -o dcn.test .

experiments:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
