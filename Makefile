GO ?= go

.PHONY: check vet build test race race-par bench bench-sim experiments clean

# The gate every change must pass: vet, build everything, race-test the
# parallel engine under contention, then race-test everything.
check: vet build race-par race

race-par:
	$(GO) test -race ./internal/par/...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Repeated runs of the parallelized Monte Carlo benchmarks (Fig 11b BER,
# Fig 13 fleet BER, Fig 15 goodput) in machine-readable form, for tracking
# the internal/par speedup across changes.
bench-sim:
	$(GO) test -json -run '^$$' -bench 'Fig11b|Fig13|Fig15' -benchmem -count=5 . > BENCH_sim.json

experiments:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
