// Package lightwave is a from-scratch Go reproduction of "Lightwave
// Fabrics: At-Scale Optical Circuit Switching for Datacenter and Machine
// Learning Systems" (Liu et al., ACM SIGCOMM 2023).
//
// The implementation lives under internal/: the Palomar OCS model (ocs),
// WDM transceivers and link budgets (optics), the PAM4/OIM DSP engine
// (dsp), real Reed-Solomon and soft-decision FEC codecs (fec), the TPU v4
// superpod topology (topo), collective communication models (collective),
// the LLM slice-shape optimizer (mlperf), the cluster scheduler (sched),
// availability analysis (avail), the spine-free DCN with topology
// engineering (dcn), cost/power models (cost), telemetry (telemetry), and
// the fabric control plane (core) with its TCP control protocol (ctlrpc).
//
// The benchmarks in this directory regenerate every table and figure of
// the paper's evaluation; cmd/experiments prints the full rows/series, and
// EXPERIMENTS.md records paper-versus-measured values.
package lightwave
