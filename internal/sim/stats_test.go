package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Errorf("Var = %v, want 2.5", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Error("empty summary not zero")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := NewRand(seed)
		n := 100
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = r.NormFloat64()*3 + 10
			s.Add(xs[i])
		}
		mean := Mean(xs)
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-v) < 1e-9
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0.5)
	h.Add(9.5)
	h.Add(5.0)
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(5)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("out-of-range values not clamped: %v", h.Counts)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if c := h.BinCenter(0); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("BinCenter(0) = %v", c)
	}
	if c := h.BinCenter(9); math.Abs(c-9.5) > 1e-12 {
		t.Errorf("BinCenter(9) = %v", c)
	}
}

func TestHistogramFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Error("fraction of empty histogram should be 0")
	}
	h.Add(0.25)
	h.Add(0.25)
	h.Add(0.75)
	if f := h.Fraction(0); math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("Fraction(0) = %v", f)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); math.Abs(p-5.5) > 1e-12 {
		t.Errorf("p50 = %v", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("percentile of empty slice should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{2, 4}); m != 3 {
		t.Errorf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}
