package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(3, func() { got = append(got, 3) })
	q.At(1, func() { got = append(got, 1) })
	q.At(2, func() { got = append(got, 2) })
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired in order %v", got)
	}
	if q.Now() != 3 {
		t.Errorf("final time = %v, want 3", q.Now())
	}
}

func TestQueueTieBreakFIFO(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(1, func() { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order %v, want FIFO", got)
		}
	}
}

func TestQueueAfter(t *testing.T) {
	var q Queue
	fired := Time(-1)
	q.At(2, func() {
		q.After(3, func() { fired = q.Now() })
	})
	q.Run()
	if fired != 5 {
		t.Fatalf("After fired at %v, want 5", fired)
	}
}

func TestQueueCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.At(1, func() { fired = true })
	q.Cancel(e)
	q.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-fire are no-ops.
	q.Cancel(e)
	e2 := q.At(2, func() {})
	q.Run()
	q.Cancel(e2)
}

func TestQueuePastPanics(t *testing.T) {
	var q Queue
	q.At(5, func() {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.At(1, func() {})
}

func TestQueueRunUntil(t *testing.T) {
	var q Queue
	count := 0
	for i := 1; i <= 10; i++ {
		q.At(Time(i), func() { count++ })
	}
	q.RunUntil(5)
	if count != 5 {
		t.Fatalf("RunUntil(5) fired %d events, want 5", count)
	}
	if q.Now() != 5 {
		t.Fatalf("clock = %v, want 5", q.Now())
	}
	if q.Len() != 5 {
		t.Fatalf("pending = %d, want 5", q.Len())
	}
}

func TestQueueRunUntilAdvancesIdleClock(t *testing.T) {
	var q Queue
	q.RunUntil(7)
	if q.Now() != 7 {
		t.Fatalf("idle clock = %v, want 7", q.Now())
	}
}

func TestQueueMonotonicClock(t *testing.T) {
	var q Queue
	r := NewRand(99)
	last := Time(-1)
	for i := 0; i < 200; i++ {
		at := Time(r.Float64() * 100)
		q.At(at, func() {
			if q.Now() < last {
				t.Errorf("clock went backwards: %v after %v", q.Now(), last)
			}
			last = q.Now()
		})
	}
	q.Run()
}

func TestQueueStepEmpty(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestQueueProperty(t *testing.T) {
	// Property: however events are inserted, they fire in nondecreasing time
	// order and all fire exactly once.
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		var q Queue
		r := NewRand(seed)
		fired := 0
		last := Time(-1)
		ok := true
		for i := 0; i < n; i++ {
			at := Time(r.Intn(50))
			q.At(at, func() {
				fired++
				if q.Now() < last {
					ok = false
				}
				last = q.Now()
			})
		}
		q.Run()
		return ok && fired == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
