package sim

import "container/heap"

// Time is a virtual simulation time in seconds.
type Time float64

// Event is a scheduled callback in a discrete-event simulation.
type Event struct {
	At Time
	Fn func()

	index int // heap bookkeeping
	seq   uint64
}

// Queue is a discrete-event simulation queue with a virtual clock.
// The zero value is an empty queue at time zero, ready to use.
type Queue struct {
	now    Time
	events eventHeap
	nextID uint64
}

// Now returns the current virtual time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// simulated causality must be preserved.
func (q *Queue) At(t Time, fn func()) *Event {
	if t < q.now {
		panic("sim: scheduling event in the past")
	}
	e := &Event{At: t, Fn: fn, seq: q.nextID}
	q.nextID++
	heap.Push(&q.events, e)
	return e
}

// After schedules fn to run d seconds from the current virtual time.
func (q *Queue) After(d float64, fn func()) *Event {
	return q.At(q.now+Time(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(q.events) || q.events[e.index] != e {
		return
	}
	heap.Remove(&q.events, e.index)
	e.index = -1
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (q *Queue) Step() bool {
	if len(q.events) == 0 {
		return false
	}
	e := heap.Pop(&q.events).(*Event)
	q.now = e.At
	e.index = -1
	e.Fn()
	return true
}

// Run fires events until the queue is empty and returns the final time.
func (q *Queue) Run() Time {
	for q.Step() {
	}
	return q.now
}

// RunUntil fires events with At <= deadline and advances the clock to
// exactly deadline (even if no event fired at that instant).
func (q *Queue) RunUntil(deadline Time) {
	for len(q.events) > 0 && q.events[0].At <= deadline {
		q.Step()
	}
	if deadline > q.now {
		q.now = deadline
	}
}

// eventHeap orders events by time, breaking ties by scheduling order so the
// simulation is deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
