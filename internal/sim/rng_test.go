package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandFloat64Uniform(t *testing.T) {
	r := NewRand(11)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", s.Mean())
	}
	// Variance of U(0,1) is 1/12.
	if math.Abs(s.Var()-1.0/12) > 0.005 {
		t.Errorf("var = %v, want ~%v", s.Var(), 1.0/12)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(5)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(9)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64())
	}
	if math.Abs(s.Mean()) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", s.Mean())
	}
	if math.Abs(s.Stddev()-1) > 0.01 {
		t.Errorf("normal stddev = %v, want ~1", s.Stddev())
	}
}

func TestRandExpFloat64Mean(t *testing.T) {
	r := NewRand(13)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.ExpFloat64())
	}
	if math.Abs(s.Mean()-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", s.Mean())
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(21)
	child := r.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams matched %d times", same)
	}
}

func TestRandBernoulli(t *testing.T) {
	r := NewRand(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) hit rate = %v", frac)
	}
}

func TestRandShuffle(t *testing.T) {
	r := NewRand(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost in shuffle", i)
		}
	}
}

func TestZeroValueRandUsable(t *testing.T) {
	var r Rand
	if r.Uint64() == r.Uint64() {
		t.Fatal("zero-value Rand is not advancing")
	}
}

func TestSubstreamDeterministic(t *testing.T) {
	a, b := Substream(42, 7), Substream(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, index) diverged at step %d", i)
		}
	}
}

func TestSubstreamsIndependent(t *testing.T) {
	// Distinct indices, and the parent stream itself, must not collide.
	streams := []*Rand{NewRand(42), Substream(42, 0), Substream(42, 1), Substream(42, 2)}
	draws := make([][]uint64, len(streams))
	for i, s := range streams {
		for j := 0; j < 200; j++ {
			draws[i] = append(draws[i], s.Uint64())
		}
	}
	for i := 0; i < len(streams); i++ {
		for j := i + 1; j < len(streams); j++ {
			same := 0
			for k := range draws[i] {
				if draws[i][k] == draws[j][k] {
					same++
				}
			}
			if same > 0 {
				t.Fatalf("streams %d and %d matched %d of %d draws", i, j, same, len(draws[i]))
			}
		}
	}
}

func TestSubstreamDoesNotAdvanceReceiver(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	_ = a.Substream(3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Substream advanced the receiver")
	}
}

func TestSubstreamMatchesSeedForm(t *testing.T) {
	r := NewRand(99)
	got := r.Substream(4).Uint64()
	want := Substream(99, 4).Uint64()
	if got != want {
		t.Fatal("method and package forms disagree for an unadvanced generator")
	}
}

func TestSubstreamMeanUniform(t *testing.T) {
	// Hash-derived seeds must still give uniform output.
	var s Summary
	for i := uint64(0); i < 2000; i++ {
		r := Substream(1234, i)
		for j := 0; j < 50; j++ {
			s.Add(r.Float64())
		}
	}
	if math.Abs(s.Mean()-0.5) > 0.01 {
		t.Errorf("substream mean = %v, want ~0.5", s.Mean())
	}
}
