// Package sim provides the deterministic simulation kernel shared by the
// lightwave fabric substrates: a fast seedable random number generator and a
// discrete-event queue with a virtual clock.
//
// Every Monte-Carlo experiment in this repository (BER sweeps, availability
// studies, scheduler traces) draws randomness through sim.Rand so that runs
// are reproducible from a single seed and independent streams can be split
// without correlation.
package sim

import "math"

// Rand is a deterministic pseudo-random number generator based on the
// SplitMix64 mixing function. The zero value is a valid generator seeded
// with zero; use NewRand to seed explicitly.
//
// Rand is not safe for concurrent use and must never be shared across
// goroutines: concurrent callers would race on the state word and, worse,
// make the draw order (and therefore every downstream result) depend on
// the scheduler. Parallel simulations instead derive one independent
// substream per shard with Substream, the only sanctioned way to split a
// generator for concurrent use — substream i is a pure function of
// (seed, i), so results stay bit-identical at any worker count.
type Rand struct {
	state     uint64
	spare     float64
	haveSpare bool
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// SubstreamSeed derives the seed of substream i of a base seed by double
// SplitMix64 finalization of the pair. Two mixing rounds decorrelate the
// substream both from its siblings and from the parent's own output
// sequence (a single round would make Substream(seed, 0) collide with the
// parent's next draw).
func SubstreamSeed(seed, i uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(i+1)
	for round := 0; round < 2; round++ {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		z += 0x9e3779b97f4a7c15
	}
	return z
}

// Substream returns the i'th deterministic substream of seed. Substreams
// with distinct indices are statistically independent of each other and of
// the stream seeded directly with seed.
func Substream(seed, i uint64) *Rand {
	return NewRand(SubstreamSeed(seed, i))
}

// Substream returns the i'th substream of the receiver's current state
// without advancing the receiver. Callers must use distinct indices:
// calling r.Substream(0) twice without drawing from r in between yields
// identical generators.
func (r *Rand) Substream(i uint64) *Rand {
	return Substream(r.state, i)
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a new generator whose stream is statistically independent of
// the receiver's. The receiver advances by one step.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64()}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal deviate using the Box-Muller
// transform. Deviates are generated in pairs; the spare is cached.
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.haveSpare = true
	return u * m
}

// ExpFloat64 returns an exponential deviate with rate 1 (mean 1).
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}
