package sim

import (
	"math"
	"sort"
)

// Summary accumulates streaming summary statistics (Welford's algorithm).
// The zero value is an empty summary.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are clamped into the first/last bin so tails remain visible.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("sim: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Percentile returns the p-th percentile (p in [0,100]) of xs, interpolating
// linearly between order statistics. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
