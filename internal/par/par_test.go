package par

import (
	"strings"
	"sync"
	"testing"

	"lightwave/internal/sim"
	"lightwave/internal/telemetry"
)

// withWorkers runs fn with the worker count pinned to n.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func mcSums(trials int, seed uint64) []float64 {
	return MonteCarlo[float64]("test_mc", trials, seed, func(sh Shard) float64 {
		s := 0.0
		for i := sh.Start; i < sh.End; i++ {
			s += sh.Rng.Float64()
		}
		return s
	})
}

func TestMonteCarloDeterministicAcrossWorkerCounts(t *testing.T) {
	var base []float64
	withWorkers(t, 1, func() { base = mcSums(10000, 42) })
	for _, w := range []int{2, 3, 4, 8, 16} {
		withWorkers(t, w, func() {
			got := mcSums(10000, 42)
			if len(got) != len(base) {
				t.Fatalf("workers=%d: %d shards, want %d", w, len(got), len(base))
			}
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("workers=%d: shard %d = %v, want %v (not bit-identical)", w, i, got[i], base[i])
				}
			}
		})
	}
}

func TestMonteCarloSeedSensitivity(t *testing.T) {
	a, b := mcSums(1000, 1), mcSums(1000, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d of %d shard results identical across seeds", same, len(a))
	}
}

func TestMonteCarloShardStructure(t *testing.T) {
	shards := MonteCarlo[Shard]("test_mc", 1000, 7, func(sh Shard) Shard { return sh })
	if len(shards) != NumShards(1000) {
		t.Fatalf("%d shards, want %d", len(shards), NumShards(1000))
	}
	covered := 0
	for i, sh := range shards {
		if sh.Index != i || sh.Count != len(shards) {
			t.Fatalf("shard %d mislabeled: %+v", i, sh)
		}
		if i > 0 && sh.Start != shards[i-1].End {
			t.Fatalf("shard %d not contiguous: starts at %d, previous ends at %d", i, sh.Start, shards[i-1].End)
		}
		covered += sh.Trials()
	}
	if covered != 1000 || shards[0].Start != 0 || shards[len(shards)-1].End != 1000 {
		t.Fatalf("shards cover %d trials, want 1000", covered)
	}
}

func TestMonteCarloFewTrials(t *testing.T) {
	// Fewer trials than shards: one shard per trial.
	got := MonteCarlo[int]("test_mc", 3, 9, func(sh Shard) int { return sh.Trials() })
	if len(got) != 3 {
		t.Fatalf("%d shards for 3 trials", len(got))
	}
	for _, n := range got {
		if n != 1 {
			t.Fatalf("shard sizes = %v, want all 1", got)
		}
	}
	if MonteCarlo[int]("test_mc", 0, 9, func(Shard) int { return 1 }) != nil {
		t.Fatal("zero trials should return nil")
	}
}

func TestSweepPreservesOrder(t *testing.T) {
	pts := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	withWorkers(t, 4, func() {
		got := Sweep("test_sweep", pts, func(i int, p float64) float64 { return 10 * p })
		for i := range pts {
			if got[i] != 10*pts[i] {
				t.Fatalf("point %d = %v, want %v", i, got[i], 10*pts[i])
			}
		}
	})
}

func TestMapCoversAllIndicesOnce(t *testing.T) {
	const n = 5000
	counts := make([]int32, n)
	withWorkers(t, 8, func() {
		Map("test_map", n, func(i int) { counts[i]++ })
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	withWorkers(t, 4, func() {
		Map("test_panic", 100, func(i int) {
			if i == 37 {
				panic("boom 37")
			}
		})
	})
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	prev := Registry()
	SetRegistry(reg)
	defer SetRegistry(prev)

	MonteCarlo[int]("counted", 500, 1, func(sh Shard) int { return sh.Trials() })
	if got := reg.Counter("par_counted_trials_total").Value(); got != 500 {
		t.Fatalf("trials counter = %d, want 500", got)
	}
	if got := reg.Counter("par_counted_shards_total").Value(); got != int64(NumShards(500)) {
		t.Fatalf("shards counter = %d, want %d", got, NumShards(500))
	}
	if got := reg.Counter("par_counted_calls_total").Value(); got != 1 {
		t.Fatalf("calls counter = %d, want 1", got)
	}
	if !strings.Contains(reg.Text(), "par_counted_trials_total 500") {
		t.Fatal("counter missing from text exposition")
	}
}

// TestSharedTelemetryRaceStress hammers one registry from many concurrent
// fan-outs; `make check` runs this package under -race.
func TestSharedTelemetryRaceStress(t *testing.T) {
	reg := telemetry.NewRegistry()
	prev := Registry()
	SetRegistry(reg)
	defer SetRegistry(prev)

	defer SetWorkers(0)
	dist := reg.Distribution("stress_sums", 1, 10, 100)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			withWorkersRace(8, func() {
				for rep := 0; rep < 10; rep++ {
					sums := MonteCarlo[float64]("stress", 2000, uint64(g), func(sh Shard) float64 {
						s := 0.0
						for i := sh.Start; i < sh.End; i++ {
							s += sh.Rng.Float64()
						}
						return s
					})
					for _, s := range sums {
						dist.Observe(s)
					}
				}
			})
		}()
	}
	wg.Wait()
	snap := dist.Snapshot()
	if snap.N != 4*10*int64(NumShards(2000)) {
		t.Fatalf("observed %d shard sums, want %d", snap.N, 4*10*NumShards(2000))
	}
	if got := reg.Counter("par_stress_trials_total").Value(); got != 4*10*2000 {
		t.Fatalf("trials counter = %d, want %d", got, 4*10*2000)
	}
}

// withWorkersRace avoids t.Helper bookkeeping inside goroutines.
func withWorkersRace(n int, fn func()) {
	// Concurrent SetWorkers calls would race on the expected value, so the
	// stress test pins workers once per goroutine without restoring.
	SetWorkers(n)
	fn()
}

func TestShardRngsMatchSubstreamContract(t *testing.T) {
	shards := MonteCarlo[uint64]("test_mc", 200, 77, func(sh Shard) uint64 { return sh.Rng.Uint64() })
	for i, got := range shards {
		if want := sim.Substream(77, uint64(i)).Uint64(); got != want {
			t.Fatalf("shard %d rng not Substream(seed, %d)", i, i)
		}
	}
}
