// Package par is the deterministic parallel simulation engine: it fans
// Monte-Carlo trials and parameter sweeps out across a worker pool sized by
// GOMAXPROCS while keeping results bit-identical at any worker count.
//
// Determinism rests on two rules. First, work is divided into a fixed
// number of shards that depends only on the trial count — never on the
// worker count — so the same shard always covers the same trial range.
// Second, each shard draws randomness from its own sim.Rand substream
// derived by hashing (base seed, shard index) via sim.Substream, the only
// sanctioned way to split a generator across goroutines. Workers merely
// decide which shard runs when; results are collected by shard index, so
// scheduling order can never leak into the output. `go test -cpu 1,4,8`
// therefore produces byte-identical simulation results.
//
// Every fan-out call records telemetry (calls, trials, shards, busy wall
// time) under par_<name>_* in a telemetry.Registry, so daemons that mount
// the registry on /metrics expose the engine's speedups.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lightwave/internal/sim"
	"lightwave/internal/telemetry"
)

// maxShards bounds the shard count of one fan-out. It is a constant — NOT
// derived from GOMAXPROCS — because the shard structure is part of the
// deterministic contract. 64 shards keep every machine up to 64 cores busy
// while staying cheap to merge.
const maxShards = 64

// workerOverride, when positive, pins the worker count (tests use it to
// prove worker-count independence without re-running the binary under
// different -cpu values).
var workerOverride atomic.Int64

// registry holds the engine's metrics; swap it with SetRegistry to surface
// the counters on a daemon's /metrics endpoint.
var registry atomic.Pointer[telemetry.Registry]

func init() {
	registry.Store(telemetry.NewRegistry())
}

// Workers returns the number of goroutines fan-out calls use: the
// SetWorkers override when set, otherwise runtime.GOMAXPROCS(0).
func Workers() int {
	if w := workerOverride.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count and returns the previous override
// (0 means automatic). Passing 0 restores GOMAXPROCS sizing. Results are
// identical for any setting; only wall time changes.
func SetWorkers(n int) int {
	return int(workerOverride.Swap(int64(n)))
}

// SetRegistry redirects the engine's telemetry to r (nil restores a fresh
// private registry). Daemons call this once at startup so par_* counters
// appear alongside their other metrics.
func SetRegistry(r *telemetry.Registry) {
	if r == nil {
		r = telemetry.NewRegistry()
	}
	registry.Store(r)
}

// Registry returns the registry currently receiving the engine's metrics.
func Registry() *telemetry.Registry {
	return registry.Load()
}

// Shard is one contiguous block of trials of a MonteCarlo fan-out.
type Shard struct {
	// Index is the shard number in [0, Count); Count depends only on the
	// trial count.
	Index, Count int
	// Start and End delimit the shard's trial range [Start, End).
	Start, End int
	// Rng is the shard's private substream, derived from (seed, Index).
	// It must not be shared with other shards.
	Rng *sim.Rand
}

// Trials returns the number of trials in the shard.
func (s Shard) Trials() int { return s.End - s.Start }

// NumShards returns the shard count used for n trials: min(n, 64),
// independent of the worker count by design.
func NumShards(n int) int {
	if n < maxShards {
		if n < 0 {
			return 0
		}
		return n
	}
	return maxShards
}

// MonteCarlo shards trials across the worker pool and returns one result
// per shard, in shard order. Each shard's body receives an independent
// substream of seed; for a fixed seed the returned slice is identical at
// any worker count. name labels the telemetry counters.
func MonteCarlo[R any](name string, trials int, seed uint64, body func(Shard) R) []R {
	nsh := NumShards(trials)
	if nsh == 0 {
		return nil
	}
	results := make([]R, nsh)
	per, extra := trials/nsh, trials%nsh
	start := 0
	shards := make([]Shard, nsh)
	for i := 0; i < nsh; i++ {
		n := per
		if i < extra {
			n++
		}
		shards[i] = Shard{
			Index: i, Count: nsh,
			Start: start, End: start + n,
			Rng: sim.Substream(seed, uint64(i)),
		}
		start += n
	}
	run(name, trials, nsh, func(i int) {
		results[i] = body(shards[i])
	})
	return results
}

// Sweep runs fn once per sweep point on the worker pool and returns the
// results in input order. Each point's computation stays sequential; use it
// for parameter sweeps whose points are independent (load fractions, power
// levels, slice sizes).
func Sweep[T, R any](name string, points []T, fn func(i int, pt T) R) []R {
	if len(points) == 0 {
		return nil
	}
	results := make([]R, len(points))
	run(name, len(points), len(points), func(i int) {
		results[i] = fn(i, points[i])
	})
	return results
}

// Map runs fn(i) for every i in [0, n) on the worker pool. fn must only
// write to index-disjoint state.
func Map(name string, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	run(name, n, n, fn)
}

// run executes fn(0..n-1) on min(Workers, n) goroutines, propagating the
// first panic to the caller, and records telemetry for the call.
func run(name string, trials, n int, fn func(int)) {
	//lwlint:ignore walltime busy-time telemetry only; shard results are merged in index order regardless of timing
	startT := time.Now()
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
	} else {
		var next atomic.Int64
		var panicked atomic.Pointer[any]
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicked.CompareAndSwap(nil, &r)
					}
				}()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fn(i)
				}
			}()
		}
		wg.Wait()
		if p := panicked.Load(); p != nil {
			panic(*p)
		}
	}
	reg := Registry()
	reg.Counter("par_" + name + "_calls_total").Inc()
	reg.Counter("par_" + name + "_trials_total").Add(int64(trials))
	reg.Counter("par_" + name + "_shards_total").Add(int64(n))
	//lwlint:ignore walltime busy-time telemetry only; feeds a metrics counter, never a result
	reg.Counter("par_" + name + "_busy_micros_total").Add(time.Since(startT).Microseconds())
	reg.Gauge("par_" + name + "_workers").Set(float64(w))
}
