package avail

import (
	"lightwave/internal/par"
	"lightwave/internal/sim"
)

// MonteCarloGoodput estimates the goodput by sampling cube health
// directly: in each trial every cube is independently healthy with
// CubeAvail probability, the advertised slices are checked against the
// realized failures, and the goodput is accepted only if the advertised
// capacity was actually deliverable in at least Target of the trials. It
// cross-validates the closed-form binomial analysis.
//
// Trials are sharded across the worker pool; each shard samples an
// independent substream of rng, so the estimate is deterministic for a
// given rng state at any worker count.
//
// On the static path the pod is partitioned into Cubes/k fixed k-cube
// groups; when Cubes is not a multiple of k the Cubes%k leftover cubes
// cannot form a group and are modeled as permanently held back (never
// advertised, never sampled), exactly as the closed-form StaticSlices
// sizing treats them.
func (p PodModel) MonteCarloGoodput(k int, reconfigurable bool, trials int, rng *sim.Rand) float64 {
	if trials <= 0 {
		trials = 10000
	}
	if rng == nil {
		rng = sim.NewRand(0xF15B)
	}
	var m int
	if reconfigurable {
		m = p.ReconfigurableSlices(k)
	} else {
		m = p.StaticSlices(k)
	}
	if m == 0 {
		return 0
	}
	pc := p.CubeAvail()
	groups, _ := p.staticGroups(k)
	seed := rng.Uint64()
	ok := 0
	for _, shardOK := range par.MonteCarlo("avail_mc_goodput", trials, seed, func(sh par.Shard) int {
		shardOK := 0
		for t := 0; t < sh.Trials(); t++ {
			if reconfigurable {
				healthy := 0
				for c := 0; c < p.Cubes; c++ {
					if sh.Rng.Bernoulli(pc) {
						healthy++
					}
				}
				if healthy >= m*k {
					shardOK++
				}
			} else {
				groupsOK := 0
				for g := 0; g < groups; g++ {
					allOK := true
					for c := 0; c < k; c++ {
						if !sh.Rng.Bernoulli(pc) {
							allOK = false
						}
					}
					if allOK {
						groupsOK++
					}
				}
				if groupsOK >= m {
					shardOK++
				}
			}
		}
		return shardOK
	}) {
		ok += shardOK
	}
	if float64(ok)/float64(trials) < p.Target {
		// The advertisement would not actually meet the target; report the
		// shortfall by returning zero so tests catch any divergence between
		// the analytic sizing and reality.
		return 0
	}
	return float64(m*k) / float64(p.Cubes)
}
