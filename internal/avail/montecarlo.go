package avail

import "lightwave/internal/sim"

// MonteCarloGoodput estimates the goodput by sampling cube health
// directly: in each trial every cube is independently healthy with
// CubeAvail probability, the advertised slices are checked against the
// realized failures, and the goodput is accepted only if the advertised
// capacity was actually deliverable in at least Target of the trials. It
// cross-validates the closed-form binomial analysis.
func (p PodModel) MonteCarloGoodput(k int, reconfigurable bool, trials int, rng *sim.Rand) float64 {
	if trials <= 0 {
		trials = 10000
	}
	if rng == nil {
		rng = sim.NewRand(0xF15B)
	}
	var m int
	if reconfigurable {
		m = p.ReconfigurableSlices(k)
	} else {
		m = p.StaticSlices(k)
	}
	if m == 0 {
		return 0
	}
	pc := p.CubeAvail()
	ok := 0
	for t := 0; t < trials; t++ {
		healthy := 0
		groupsOK := 0
		if reconfigurable {
			for c := 0; c < p.Cubes; c++ {
				if rng.Bernoulli(pc) {
					healthy++
				}
			}
			if healthy >= m*k {
				ok++
			}
		} else {
			groups := p.Cubes / k
			for g := 0; g < groups; g++ {
				allOK := true
				for c := 0; c < k; c++ {
					if !rng.Bernoulli(pc) {
						allOK = false
					}
				}
				if allOK {
					groupsOK++
				}
			}
			if groupsOK >= m {
				ok++
			}
		}
	}
	if float64(ok)/float64(trials) < p.Target {
		// The advertisement would not actually meet the target; report the
		// shortfall by returning zero so tests catch any divergence between
		// the analytic sizing and reality.
		return 0
	}
	return float64(m*k) / float64(p.Cubes)
}
