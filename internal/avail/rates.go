package avail

import "math"

// Rates is the per-component failure/repair rate table — the single
// source of truth shared by the continuous-time Monte Carlo models in
// this package and internal/chaos's random-scenario generator. The
// numbers are calibrated against the paper's operational story: cube
// repairs are day-scale server operations (§4.3), a whole OCS chassis
// delivers >99.98% availability with an 8h field-repair SLO (§4.1.1 and
// ocs.DefaultReliability), and transceiver/circuit impairments are
// transient events handled by telemetry and drains (§3.2.2, §3.4).
type Rates struct {
	// CubeMTTRHours is the mean elemental-cube repair time.
	CubeMTTRHours float64
	// OCSMTBFHours and OCSRepairHours describe whole-chassis failure:
	// with an 8h repair and >99.98% availability, MTBF ≈ 8·A/(1−A) ≈
	// 40000h (consistent with ocs.DefaultReliability's FRU model).
	OCSMTBFHours   float64
	OCSRepairHours float64
	// TransceiverBERPerHour is the per-trunk rate of transient BER
	// degradations (dirty connector, marginal module) that trip the
	// 2e-4 KP4 hard limit.
	TransceiverBERPerHour float64
	// CircuitFlapPerHour is the per-trunk rate of short circuit flaps
	// (fiber bumps, brief loss-of-light).
	CircuitFlapPerHour float64
	// FlapMeanSeconds is the mean duration of a flap or BER episode.
	FlapMeanSeconds float64
	// DrainStuckProb is the probability that an injected drain workflow
	// wedges and never undrains on its own (operator intervention).
	DrainStuckProb float64
	// PodBackendMTBFHours is the MTBF of a pod's control backend (pod
	// manager / CSM path); repair takes CubeMTTRHours.
	PodBackendMTBFHours float64
	// OCSMaintenancePerYear is the planned per-OCS maintenance-drain
	// rate (matches ocs.DefaultReliability).
	OCSMaintenancePerYear float64
}

// DefaultRates returns the calibrated table.
func DefaultRates() Rates {
	return Rates{
		CubeMTTRHours:         24,
		OCSMTBFHours:          40000,
		OCSRepairHours:        8,
		TransceiverBERPerHour: 1.0 / 2000,
		CircuitFlapPerHour:    1.0 / 500,
		FlapMeanSeconds:       90,
		DrainStuckProb:        0.02,
		PodBackendMTBFHours:   20000,
		OCSMaintenancePerYear: 1.5,
	}
}

// CubeMTBFHours derives the per-cube MTBF from a steady-state
// availability: A = MTBF/(MTBF+MTTR) → MTBF = MTTR·A/(1−A). The
// timeline Monte Carlo uses this to turn PodModel.CubeAvail into a
// failure rate; a ≥ 1 returns +Inf (a cube that never fails).
func (r Rates) CubeMTBFHours(a float64) float64 {
	if a >= 1 {
		return math.Inf(1)
	}
	return r.CubeMTTRHours * a / (1 - a)
}

// OCSAvailability is the steady-state chassis availability implied by
// the table: MTBF/(MTBF+MTTR).
func (r Rates) OCSAvailability() float64 {
	return r.OCSMTBFHours / (r.OCSMTBFHours + r.OCSRepairHours)
}
