package avail

import (
	"errors"
	"math"
	"testing"

	"lightwave/internal/par"
	"lightwave/internal/sim"
)

func TestSampleTimelinesDeterministicAcrossWorkerCounts(t *testing.T) {
	p := timelineParams(true)
	p.Years = 5 // keep the stress short; 8 runs × 5 years is plenty of events
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	base, err := SampleTimelines(p, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		par.SetWorkers(w)
		got, err := SampleTimelines(p, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		if got.MeanDelivered != base.MeanDelivered || got.Failures != base.Failures || got.Swaps != base.Swaps {
			t.Fatalf("workers=%d: %+v != %+v", w, got, base)
		}
		for i := range got.Results {
			if got.Results[i] != base.Results[i] {
				t.Fatalf("workers=%d: run %d differs", w, i)
			}
		}
	}
}

func TestSampleTimelinesAggregates(t *testing.T) {
	p := timelineParams(true)
	p.Years = 5
	stats, err := SampleTimelines(p, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Results) != 6 {
		t.Fatalf("got %d runs, want 6", len(stats.Results))
	}
	if stats.MinDelivered > stats.MeanDelivered || stats.MeanDelivered > 1 {
		t.Fatalf("inconsistent stats: %+v", stats)
	}
	if stats.Failures == 0 {
		t.Fatal("no failures over 30 simulated years of runs is implausible")
	}
}

func TestSampleTimelinesRejectsDegenerateParams(t *testing.T) {
	p := timelineParams(true)
	p.Years = 0
	if _, err := SampleTimelines(p, 4, 1); !errors.Is(err, ErrTimeline) {
		t.Fatalf("err = %v", err)
	}
}

func TestGoodputSurfaceMatchesPointwise(t *testing.T) {
	avails := []float64{0.99, 0.999}
	ks := []int{1, 16, 32}
	pts := GoodputSurface(avails, ks)
	if len(pts) != len(avails)*len(ks) {
		t.Fatalf("got %d points", len(pts))
	}
	i := 0
	for _, a := range avails {
		for _, k := range ks {
			p := DefaultPod(a)
			pt := pts[i]
			i++
			if pt.ServerAvail != a || pt.SliceCubes != k {
				t.Fatalf("point %d mislabeled: %+v", i-1, pt)
			}
			if pt.Static != p.Goodput(k, false) || pt.Reconfigurable != p.Goodput(k, true) {
				t.Fatalf("point %d diverges from pointwise Goodput: %+v", i-1, pt)
			}
		}
	}
}

func TestStaticGroupsRemainder(t *testing.T) {
	p := DefaultPod(0.999)
	p.Cubes = 10
	if g, l := p.staticGroups(3); g != 3 || l != 1 {
		t.Fatalf("staticGroups(3) on 10 cubes = (%d, %d), want (3, 1)", g, l)
	}
	if g, l := p.staticGroups(5); g != 2 || l != 0 {
		t.Fatalf("staticGroups(5) on 10 cubes = (%d, %d), want (2, 0)", g, l)
	}
}

// TestStaticRemainderAgainstClosedForm pins the static advertisement and
// its Monte-Carlo cross-check to the closed-form binomial result for both
// a divisible and a non-divisible pod, so the Cubes%k leftover handling is
// explicit: leftover cubes are held back, the advertised groups follow
// Binomial(groups, CubeAvail^k).
func TestStaticRemainderAgainstClosedForm(t *testing.T) {
	for _, tc := range []struct {
		cubes, k int
	}{
		{12, 3}, // divisible: 4 groups, no leftover
		{10, 3}, // remainder: 3 groups, 1 held-back cube
	} {
		p := DefaultPod(0.999)
		p.Cubes = tc.cubes
		p.Target = 0.9
		groups, leftover := p.staticGroups(tc.k)
		if groups*tc.k+leftover != tc.cubes {
			t.Fatalf("groups accounting broken: %d*%d+%d != %d", groups, tc.k, leftover, tc.cubes)
		}
		// Closed form: largest m with P(X >= m) >= Target, X ~ Bin(groups, pSlice).
		pSlice := math.Pow(p.CubeAvail(), float64(tc.k))
		wantM := 0
		for wantM+1 <= groups && binomialSurvival(groups, pSlice, wantM+1) >= p.Target {
			wantM++
		}
		if got := p.StaticSlices(tc.k); got != wantM {
			t.Fatalf("cubes=%d k=%d: StaticSlices = %d, closed form %d", tc.cubes, tc.k, got, wantM)
		}
		wantGoodput := float64(wantM*tc.k) / float64(tc.cubes)
		if got := p.Goodput(tc.k, false); math.Abs(got-wantGoodput) > 1e-12 {
			t.Fatalf("cubes=%d k=%d: goodput %v, want %v", tc.cubes, tc.k, got, wantGoodput)
		}
		// The Monte-Carlo sampler must agree: the advertisement derived from
		// the closed form is deliverable in the sampled fleet too.
		if got := p.MonteCarloGoodput(tc.k, false, 8000, sim.NewRand(5)); got != wantGoodput {
			t.Fatalf("cubes=%d k=%d: MC goodput %v, want %v", tc.cubes, tc.k, got, wantGoodput)
		}
	}
}

func TestMonteCarloGoodputDeterministicAcrossWorkerCounts(t *testing.T) {
	p := DefaultPod(0.999)
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	base := p.MonteCarloGoodput(16, true, 4000, sim.NewRand(3))
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		if got := p.MonteCarloGoodput(16, true, 4000, sim.NewRand(3)); got != base {
			t.Fatalf("workers=%d: %v != %v", w, got, base)
		}
	}
}
