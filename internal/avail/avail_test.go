package avail

import (
	"errors"
	"math"
	"testing"

	"lightwave/internal/optics"
	"lightwave/internal/sim"
)

func TestFig15aFabricAvailability(t *testing.T) {
	// Paper: at 99.9% per-OCS availability the fabric availability is 90%
	// with CWDM4 duplex (96 OCSes), 95% with CWDM4 bidi (48), 98% with
	// CWDM8 bidi (24).
	cases := []struct {
		n    int
		want float64
	}{{96, 0.90}, {48, 0.95}, {24, 0.98}}
	for _, c := range cases {
		got := FabricAvailability(0.999, c.n)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("FabricAvailability(0.999, %d) = %.3f, want ≈%.2f", c.n, got, c.want)
		}
	}
	if FabricAvailability(0.999, 0) != 1 {
		t.Error("zero OCSes should be fully available")
	}
}

func TestOCSCountPerModule(t *testing.T) {
	cases := []struct {
		gen  string
		want int
	}{
		{"200G-CWDM4", 96},        // standard duplex
		{"2x200G-bidi-CWDM4", 48}, // the production choice
		{"800G-bidi-CWDM8", 24},
	}
	for _, c := range cases {
		g, err := optics.GenerationByName(c.gen)
		if err != nil {
			t.Fatal(err)
		}
		got, err := OCSCount(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("OCSCount(%s) = %d, want %d", c.gen, got, c.want)
		}
	}
}

func TestOCSCountBadModule(t *testing.T) {
	g := optics.Generation{Name: "weird", Grid: optics.Grid{Channels: []float64{1, 2, 3}}}
	if _, err := OCSCount(g); !errors.Is(err, ErrBadModule) {
		t.Fatalf("err = %v", err)
	}
}

func TestFig15bHeadlineNumbers(t *testing.T) {
	// §4.2.2: "for a server availability of 99.9%, the static configuration
	// can only support a 1024 TPU slice size with 25% goodput, whereas the
	// reconfigurable superpod can support 1024 slice size with 75% goodput."
	p := DefaultPod(0.999)
	const k = 16 // 1024 TPUs = 16 cubes
	if g := p.Goodput(k, false); math.Abs(g-0.25) > 1e-9 {
		t.Errorf("static goodput = %v, want 0.25", g)
	}
	if g := p.Goodput(k, true); math.Abs(g-0.75) > 1e-9 {
		t.Errorf("reconfigurable goodput = %v, want 0.75", g)
	}
}

func TestFig15bConvergenceAt1024(t *testing.T) {
	// "At a slice size of 1024, this leads to the convergence of the
	// goodput for a server availability of 99.9% with ... 99.5%" (both 75%)
	// while 99% supports "only two 1024 slices with a goodput of 50%".
	if g := DefaultPod(0.995).Goodput(16, true); math.Abs(g-0.75) > 1e-9 {
		t.Errorf("99.5%% goodput = %v, want 0.75", g)
	}
	if g := DefaultPod(0.99).Goodput(16, true); math.Abs(g-0.50) > 1e-9 {
		t.Errorf("99%% goodput = %v, want 0.50", g)
	}
}

func TestFig15bHalfPodSlice(t *testing.T) {
	// "At a slice size of 2048 ... only one slice can be composed—leading
	// to a goodput of 50%—regardless of the server/host availability."
	for _, a := range []float64{0.99, 0.995, 0.999} {
		if g := DefaultPod(a).Goodput(32, true); math.Abs(g-0.50) > 1e-9 {
			t.Errorf("avail %v: 2048-slice goodput = %v, want 0.50", a, g)
		}
	}
}

func TestGoodputMonotoneInServerAvailability(t *testing.T) {
	// Fig 15b: "As the server availability increases ... the goodput
	// increases because fewer elemental cubes need to be held back."
	for _, k := range []int{1, 4, 16} {
		prev := -1.0
		for _, a := range []float64{0.99, 0.995, 0.999, 0.9999} {
			g := DefaultPod(a).Goodput(k, true)
			if g < prev {
				t.Fatalf("k=%d: goodput fell from %v to %v at avail %v", k, prev, g, a)
			}
			prev = g
		}
	}
}

func TestStaticNeverBeatsReconfigurable(t *testing.T) {
	for _, a := range []float64{0.99, 0.995, 0.999} {
		p := DefaultPod(a)
		for _, k := range []int{1, 2, 4, 8, 16, 32} {
			if p.Goodput(k, false) > p.Goodput(k, true) {
				t.Fatalf("avail %v k=%d: static beats reconfigurable", a, k)
			}
		}
	}
}

func TestSingleCubeSliceEqualForBothFabrics(t *testing.T) {
	// "For a slice that is a single cube, no reconfiguration between cubes
	// is used and thus the goodput is the same for both" fabrics.
	for _, a := range []float64{0.99, 0.995, 0.999} {
		p := DefaultPod(a)
		if p.Goodput(1, true) != p.Goodput(1, false) {
			t.Fatalf("avail %v: single-cube goodputs differ", a)
		}
	}
}

func TestStaticDegradesRapidlyWithSliceSize(t *testing.T) {
	// The dashed static lines of Fig 15b fall much faster than the solid
	// reconfigurable ones.
	p := DefaultPod(0.999)
	staticDrop := p.Goodput(1, false) - p.Goodput(16, false)
	reconfDrop := p.Goodput(1, true) - p.Goodput(16, true)
	if staticDrop <= reconfDrop {
		t.Fatalf("static drop %v not worse than reconfigurable %v", staticDrop, reconfDrop)
	}
}

func TestHoldBackProportionalToFailureRate(t *testing.T) {
	// "The number of elemental cubes that are held back is directly
	// proportional to the failure rate of an individual server."
	h1 := DefaultPod(0.999).HoldBack()
	h2 := DefaultPod(0.995).HoldBack()
	h3 := DefaultPod(0.99).HoldBack()
	if !(h1 < h2 && h2 < h3) {
		t.Fatalf("holdback not increasing: %d %d %d", h1, h2, h3)
	}
	// Roughly linear: failure rate ratios 1:5:10 → holdback within 2× of
	// proportionality.
	if h3 < 5*h1 || h3 > 20*h1 {
		t.Errorf("holdback %d vs %d not roughly proportional to failure rate", h3, h1)
	}
}

func TestCubeAvail(t *testing.T) {
	p := DefaultPod(0.999)
	want := math.Pow(0.999, 24)
	if math.Abs(p.CubeAvail()-want) > 1e-12 {
		t.Fatalf("CubeAvail = %v", p.CubeAvail())
	}
}

func TestSliceSizeBounds(t *testing.T) {
	p := DefaultPod(0.999)
	if p.ReconfigurableSlices(0) != 0 || p.ReconfigurableSlices(65) != 0 {
		t.Error("degenerate k not rejected")
	}
	if p.StaticSlices(0) != 0 || p.StaticSlices(65) != 0 {
		t.Error("degenerate k not rejected for static")
	}
}

func TestBinomialSurvival(t *testing.T) {
	// P(X>=1), X~Bin(2, 0.5) = 0.75.
	if got := binomialSurvival(2, 0.5, 1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("got %v", got)
	}
	if binomialSurvival(10, 0.5, 0) != 1 {
		t.Error("m=0 should be certain")
	}
	if binomialSurvival(10, 0.5, 11) != 0 {
		t.Error("m>n should be impossible")
	}
	if binomialSurvival(10, 0, 1) != 0 || binomialSurvival(10, 1, 10) != 1 {
		t.Error("degenerate probabilities wrong")
	}
}

func TestMonteCarloAgreesWithAnalytic(t *testing.T) {
	rng := sim.NewRand(7)
	for _, a := range []float64{0.99, 0.999} {
		p := DefaultPod(a)
		for _, k := range []int{1, 16, 32} {
			for _, reconf := range []bool{true, false} {
				mc := p.MonteCarloGoodput(k, reconf, 4000, rng.Split())
				an := p.Goodput(k, reconf)
				if mc != an {
					t.Fatalf("avail %v k=%d reconf=%v: MC %v != analytic %v (advertised capacity not deliverable)",
						a, k, reconf, mc, an)
				}
			}
		}
	}
}
