package avail

import (
	"errors"
	"testing"

	"lightwave/internal/sim"
)

func timelineParams(reconf bool) TimelineParams {
	return TimelineParams{
		Pod:            DefaultPod(0.999),
		SliceCubes:     16,
		Reconfigurable: reconf,
		MTTRHours:      8,
		ReconfigHours:  0.01,
		Years:          30,
	}
}

func TestTimelineReconfigurableMeetsTarget(t *testing.T) {
	res, err := SimulateTimeline(timelineParams(true), sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.AdvertisedSlices != 3 {
		t.Fatalf("advertised = %d, want 3 (Fig 15b)", res.AdvertisedSlices)
	}
	// The static sizing promised 97% deliverability; the time-domain
	// simulation with fast swaps must meet it.
	if res.Delivered < 0.97 {
		t.Fatalf("delivered = %.4f, below the 97%% target", res.Delivered)
	}
	if res.Swaps == 0 {
		t.Fatal("no cube swaps over 30 years is implausible")
	}
}

func TestTimelineStaticWorse(t *testing.T) {
	reconf, err := SimulateTimeline(timelineParams(true), sim.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	static, err := SimulateTimeline(timelineParams(false), sim.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	// The static fabric advertises less (Fig 15b: 1 vs 3 slices) and each
	// broken slice stays down for a full repair instead of a swap.
	if static.AdvertisedSlices >= reconf.AdvertisedSlices {
		t.Fatalf("static advertised %d, reconfigurable %d",
			static.AdvertisedSlices, reconf.AdvertisedSlices)
	}
	if static.Swaps != 0 {
		t.Fatal("static fabric cannot swap")
	}
	// Per-advertised-slice delivery: static loses full repair windows.
	if static.Delivered >= reconf.Delivered {
		t.Fatalf("static delivered %.4f not worse than reconfigurable %.4f",
			static.Delivered, reconf.Delivered)
	}
}

func TestTimelineValidation(t *testing.T) {
	p := timelineParams(true)
	p.Years = 0
	if _, err := SimulateTimeline(p, nil); !errors.Is(err, ErrTimeline) {
		t.Errorf("err = %v", err)
	}
	p = timelineParams(true)
	p.MTTRHours = 0
	if _, err := SimulateTimeline(p, nil); !errors.Is(err, ErrTimeline) {
		t.Errorf("err = %v", err)
	}
}

func TestTimelineZeroAdvertised(t *testing.T) {
	p := timelineParams(true)
	p.SliceCubes = 64 // cannot promise a full pod at 97%
	res, err := SimulateTimeline(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdvertisedSlices != 0 || res.Delivered != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestTimelineDeterministic(t *testing.T) {
	a, _ := SimulateTimeline(timelineParams(true), sim.NewRand(9))
	b, _ := SimulateTimeline(timelineParams(true), sim.NewRand(9))
	if a.Failures != b.Failures || a.Delivered != b.Delivered {
		t.Fatal("same seed produced different timelines")
	}
}
