package avail

import (
	"errors"

	"lightwave/internal/sim"
)

// Time-domain validation of the Fig 15b sizing: cubes fail and repair as
// continuous-time processes, and the pod continuously tries to keep its
// advertised slices composed. Delivered availability — the fraction of
// time all advertised slices are up — must meet the target the static
// binomial sizing promised. The reconfigurable fabric recomposes a broken
// slice from any healthy spare cube after a reconfiguration delay; the
// static fabric must wait for the repair of the exact failed cube.

// TimelineParams drives the continuous-time simulation.
type TimelineParams struct {
	Pod PodModel
	// SliceCubes is the advertised slice size in cubes.
	SliceCubes int
	// Reconfigurable selects cube-swap repair.
	Reconfigurable bool
	// MTTRHours is the mean cube repair time; the failure rate is derived
	// from the pod's CubeAvail (unavailability = rate·MTTR).
	MTTRHours float64
	// ReconfigHours is the time to recompose a slice on the lightwave
	// fabric (milliseconds in reality; kept as a parameter).
	ReconfigHours float64
	// Years simulated.
	Years float64
}

// TimelineResult reports delivered availability.
type TimelineResult struct {
	AdvertisedSlices int
	// Delivered is the time-average fraction of advertised slices that
	// were actually up.
	Delivered float64
	// AllUpFraction is the fraction of time every advertised slice was up.
	AllUpFraction float64
	Failures      int
	Swaps         int
}

// ErrTimeline is returned for degenerate parameters.
var ErrTimeline = errors.New("avail: invalid timeline parameters")

// SimulateTimeline runs the continuous-time model.
func SimulateTimeline(p TimelineParams, rng *sim.Rand) (TimelineResult, error) {
	if p.Years <= 0 || p.MTTRHours <= 0 || p.SliceCubes <= 0 {
		return TimelineResult{}, ErrTimeline
	}
	if rng == nil {
		rng = sim.NewRand(0x71E)
	}
	var res TimelineResult
	if p.Reconfigurable {
		res.AdvertisedSlices = p.Pod.ReconfigurableSlices(p.SliceCubes)
	} else {
		res.AdvertisedSlices = p.Pod.StaticSlices(p.SliceCubes)
	}
	if res.AdvertisedSlices == 0 {
		return res, nil
	}

	// Per-cube failure rate from steady-state availability, via the
	// shared Rates table (A = MTBF/(MTBF+MTTR) → MTBF = MTTR·A/(1−A)).
	mtbf := Rates{CubeMTTRHours: p.MTTRHours}.CubeMTBFHours(p.Pod.CubeAvail())
	horizon := p.Years * 8766

	n := p.Pod.Cubes
	healthy := make([]bool, n)
	for i := range healthy {
		healthy[i] = true
	}
	// sliceOf[c] = slice index using cube c, or -1.
	sliceOf := make([]int, n)
	for i := range sliceOf {
		sliceOf[i] = -1
	}
	next := 0
	for s := 0; s < res.AdvertisedSlices; s++ {
		for k := 0; k < p.SliceCubes; k++ {
			sliceOf[next] = s
			next++
		}
	}
	brokenSlices := map[int]int{} // slice -> missing cubes

	var q sim.Queue
	upIntegral := 0.0
	deliveredIntegral := 0.0
	lastT := 0.0
	account := func() {
		now := float64(q.Now())
		dt := now - lastT
		lastT = now
		up := res.AdvertisedSlices - len(brokenSlices)
		deliveredIntegral += float64(up) * dt
		if len(brokenSlices) == 0 {
			upIntegral += dt
		}
	}

	tryRecompose := func(s int) {
		// Find healthy unassigned cubes to fill the slice's holes.
		need := brokenSlices[s]
		for c := 0; c < n && need > 0; c++ {
			if healthy[c] && sliceOf[c] == -1 {
				sliceOf[c] = s
				need--
				res.Swaps++
			}
		}
		if need == 0 {
			delete(brokenSlices, s)
		} else {
			brokenSlices[s] = need
		}
	}

	var failCube func()
	failCube = func() {
		account()
		c := rng.Intn(n)
		if healthy[c] {
			healthy[c] = false
			res.Failures++
			if s := sliceOf[c]; s >= 0 {
				sliceOf[c] = -1
				brokenSlices[s]++
				if p.Reconfigurable {
					s := s
					q.After(p.ReconfigHours, func() {
						account()
						tryRecompose(s)
					})
				} else {
					// Static: the slice waits for this exact cube.
					cc, ss := c, s
					q.After(rng.ExpFloat64()*p.MTTRHours, func() {
						account()
						healthy[cc] = true
						sliceOf[cc] = ss
						brokenSlices[ss]--
						if brokenSlices[ss] == 0 {
							delete(brokenSlices, ss)
						}
					})
					// Schedule next failure and return: repair handled above.
					q.After(rng.ExpFloat64()*mtbf/float64(n), failCube)
					return
				}
			}
			// Reconfigurable (or spare cube): generic repair returns the
			// cube to the healthy pool.
			cc := c
			q.After(rng.ExpFloat64()*p.MTTRHours, func() {
				account()
				healthy[cc] = true
				// On the reconfigurable fabric a broken slice may be
				// waiting for capacity. Pick the lowest-numbered broken
				// slice: map iteration order is randomized, and letting it
				// choose would make the timeline differ run-to-run.
				if p.Reconfigurable {
					waiting := -1
					for s, miss := range brokenSlices {
						if miss > 0 && (waiting < 0 || s < waiting) {
							waiting = s
						}
					}
					if waiting >= 0 {
						tryRecompose(waiting)
					}
				}
			})
		}
		q.After(rng.ExpFloat64()*mtbf/float64(n), failCube)
	}
	q.After(rng.ExpFloat64()*mtbf/float64(n), failCube)

	q.RunUntil(sim.Time(horizon))
	account()

	res.Delivered = deliveredIntegral / (float64(res.AdvertisedSlices) * horizon)
	res.AllUpFraction = upIntegral / horizon
	return res, nil
}
