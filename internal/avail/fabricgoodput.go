package avail

// Combining the two halves of Fig 15: slices larger than one cube depend on
// the lightwave fabric itself ("a single failure in the set of OCSes ...
// will degrade the performance of any slice composed of more than one
// elemental cube"), so the probability that an advertised multi-cube slice
// is deliverable is the product of cube availability and fabric
// availability. Single-cube slices ride only intra-rack electrical links
// and are immune to OCS failures.

// PodWithFabric extends the goodput model with the OCS fabric.
type PodWithFabric struct {
	PodModel
	// FabricAvail is the probability that every OCS of the fabric is up
	// (from FabricAvailability).
	FabricAvail float64
}

// DefaultPodWithFabric returns the Fig 15 configuration with the given
// per-OCS availability and OCS count.
func DefaultPodWithFabric(serverAvail, perOCS float64, numOCS int) PodWithFabric {
	return PodWithFabric{
		PodModel:    DefaultPod(serverAvail),
		FabricAvail: FabricAvailability(perOCS, numOCS),
	}
}

// ReconfigurableSlices sizes the advertisement with the fabric folded in:
// for k > 1 the deliverability target must be met by
// FabricAvail · P(enough cubes).
func (p PodWithFabric) ReconfigurableSlices(k int) int {
	if k <= 1 {
		return p.PodModel.ReconfigurableSlices(k)
	}
	if p.FabricAvail <= 0 || p.FabricAvail < p.Target {
		return 0
	}
	adjusted := p.PodModel
	adjusted.Target = p.Target / p.FabricAvail
	if adjusted.Target > 1 {
		return 0
	}
	return adjusted.ReconfigurableSlices(k)
}

// Goodput returns the advertised fraction of the pod under the combined
// model.
func (p PodWithFabric) Goodput(k int) float64 {
	return float64(p.ReconfigurableSlices(k)*k) / float64(p.Cubes)
}
