// Package avail models the availability benefits of the reconfigurable
// lightwave fabric (§4.2.2, Fig 15): fabric availability as a function of
// per-OCS availability and OCS count (which the bidi transceivers halve and
// halve again), and the goodput of a superpod that must hold back elemental
// cubes to meet a 97% system-availability target — where a reconfigurable
// fabric can swap any healthy cube into a slice while a static fabric
// cannot.
package avail

import (
	"errors"
	"fmt"
	"math"

	"lightwave/internal/optics"
)

// FabricAvailability returns the probability that every OCS of the fabric
// is up: "a single failure in the set of OCSes that provide full
// connectivity between the elemental cubes will degrade the performance of
// any slice composed of more than one elemental cube", so the fabric is
// available only when all OCSes are.
func FabricAvailability(perOCS float64, numOCS int) float64 {
	if numOCS <= 0 {
		return 1
	}
	return math.Pow(perOCS, float64(numOCS))
}

// LanesPerConnection is the number of optical lanes of one inter-cube
// connection (§4.2.2: "Each connection has 8 optical lanes").
const LanesPerConnection = 8

// ErrBadModule is returned for transceiver generations that cannot carry a
// superpod connection.
var ErrBadModule = errors.New("avail: module unsuitable for superpod connection")

// OCSCount returns the number of OCSes a 64-cube superpod needs when built
// with the given transceiver generation: 96 for standard CWDM4 duplex, 48
// for CWDM4 bidi, 24 for CWDM8 bidi (Fig 15a). The count scales with the
// fiber strands per 8-lane connection: a duplex module needs separate
// transmit and receive strands; a bidi module needs one strand per WDM
// engine.
func OCSCount(gen optics.Generation) (int, error) {
	lanes := gen.Grid.Lanes()
	if lanes <= 0 || LanesPerConnection%lanes != 0 {
		return 0, fmt.Errorf("%w: %s has %d lanes", ErrBadModule, gen.Name, lanes)
	}
	engines := LanesPerConnection / lanes
	strands := engines
	if !gen.Bidi {
		strands = 2 * engines
	}
	// The baseline wiring (48 OCSes, Appendix A) corresponds to two
	// strands per connection.
	return 48 * strands / 2, nil
}

// PodModel parameterizes the goodput analysis of Fig 15b.
type PodModel struct {
	// Cubes is the number of elemental cubes in the pod (64).
	Cubes int
	// ServerAvail is the availability of one CPU host/server.
	ServerAvail float64
	// FailureDomain is the effective number of serially-required
	// server-class components per cube (16 hosts plus shared rack
	// components; calibrated so the published goodput points of Fig 15b
	// hold).
	FailureDomain int
	// Target is the required system availability (the paper holds it at
	// 97%).
	Target float64
}

// DefaultPod returns the Fig 15b configuration for the given server
// availability.
func DefaultPod(serverAvail float64) PodModel {
	return PodModel{Cubes: 64, ServerAvail: serverAvail, FailureDomain: 24, Target: 0.97}
}

// CubeAvail returns the probability that one elemental cube is fully
// healthy.
func (p PodModel) CubeAvail() float64 {
	return math.Pow(p.ServerAvail, float64(p.FailureDomain))
}

// ReconfigurableSlices returns the number of k-cube slices the pod can
// advertise with a reconfigurable fabric: the largest m such that the
// probability of at least m·k healthy cubes (anywhere in the pod — the OCS
// can swap a bad cube for any healthy one) meets the target.
func (p PodModel) ReconfigurableSlices(k int) int {
	if k <= 0 || k > p.Cubes {
		return 0
	}
	pc := p.CubeAvail()
	m := 0
	for (m+1)*k <= p.Cubes {
		if binomialSurvival(p.Cubes, pc, (m+1)*k) < p.Target {
			break
		}
		m++
	}
	return m
}

// staticGroups partitions the pod into fixed k-cube groups for the static
// fabric: groups full slices plus leftover cubes that cannot form one. A
// static fabric cannot recombine cubes across group boundaries, so the
// leftover cubes are modeled as permanently held back — excluded from the
// advertisement by both the closed-form sizing and the Monte Carlo
// sampler, never silently dropped.
func (p PodModel) staticGroups(k int) (groups, leftover int) {
	return p.Cubes / k, p.Cubes % k
}

// StaticSlices returns the number of k-cube slices a static fabric can
// advertise: the pod is partitioned into fixed contiguous slices and a
// slice is lost if any of its cubes fails ("a static configuration cannot
// [swap out a bad elemental cube]"). The largest m such that at least m of
// the fixed slices are fully healthy with target probability. When Cubes
// is not a multiple of k the remainder cubes are held back (see
// staticGroups).
func (p PodModel) StaticSlices(k int) int {
	if k <= 0 || k > p.Cubes {
		return 0
	}
	groups, _ := p.staticGroups(k)
	pSlice := math.Pow(p.CubeAvail(), float64(k))
	m := 0
	for m+1 <= groups {
		if binomialSurvival(groups, pSlice, m+1) < p.Target {
			break
		}
		m++
	}
	return m
}

// Goodput returns the fraction of the pod's TPUs that can be advertised in
// k-cube slices while meeting the availability target.
func (p PodModel) Goodput(k int, reconfigurable bool) float64 {
	var m int
	if reconfigurable {
		m = p.ReconfigurableSlices(k)
	} else {
		m = p.StaticSlices(k)
	}
	return float64(m*k) / float64(p.Cubes)
}

// HoldBack returns the number of cubes that must be held back (not
// advertised) for single-cube slices under the reconfigurable fabric — the
// quantity the paper notes is "directly proportional to the failure rate of
// an individual server".
func (p PodModel) HoldBack() int {
	return p.Cubes - p.ReconfigurableSlices(1)
}

// binomialSurvival returns P(X >= m) for X ~ Binomial(n, prob), computed
// with log-domain terms for numerical stability.
func binomialSurvival(n int, prob float64, m int) float64 {
	if m <= 0 {
		return 1
	}
	if m > n {
		return 0
	}
	if prob <= 0 {
		return 0
	}
	if prob >= 1 {
		return 1
	}
	lp := math.Log(prob)
	lq := math.Log1p(-prob)
	sum := 0.0
	for i := m; i <= n; i++ {
		sum += math.Exp(logChoose(n, i) + float64(i)*lp + float64(n-i)*lq)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
