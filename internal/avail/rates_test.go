package avail

import (
	"math"
	"testing"
)

func TestCubeMTBFRoundTrip(t *testing.T) {
	r := DefaultRates()
	for _, a := range []float64{0.9, 0.99, 0.999} {
		mtbf := r.CubeMTBFHours(a)
		got := mtbf / (mtbf + r.CubeMTTRHours)
		if math.Abs(got-a) > 1e-12 {
			t.Errorf("availability %g: MTBF %g h implies %g", a, mtbf, got)
		}
	}
	if !math.IsInf(r.CubeMTBFHours(1), 1) {
		t.Errorf("availability 1 should imply infinite MTBF")
	}
}

func TestDefaultRatesMeetOCSAvailTarget(t *testing.T) {
	// The paper reports >99.98% per-OCS availability (§4.1.1); the
	// default table must be consistent with it.
	if a := DefaultRates().OCSAvailability(); a < 0.9998 {
		t.Errorf("default OCS availability %.6f below the 99.98%% target", a)
	}
}

func TestDefaultRatesArePositive(t *testing.T) {
	r := DefaultRates()
	for name, v := range map[string]float64{
		"CubeMTTRHours":         r.CubeMTTRHours,
		"OCSMTBFHours":          r.OCSMTBFHours,
		"OCSRepairHours":        r.OCSRepairHours,
		"TransceiverBERPerHour": r.TransceiverBERPerHour,
		"CircuitFlapPerHour":    r.CircuitFlapPerHour,
		"FlapMeanSeconds":       r.FlapMeanSeconds,
		"DrainStuckProb":        r.DrainStuckProb,
		"PodBackendMTBFHours":   r.PodBackendMTBFHours,
		"OCSMaintenancePerYear": r.OCSMaintenancePerYear,
	} {
		if v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
}
