package avail

import "lightwave/internal/par"

// Parallel samplers for the Fig 15 experiments: many independent timeline
// runs (the continuous-time cross-check of the binomial sizing) and the
// goodput-vs-slice-size surface, both fanned out across the worker pool
// with deterministic substreams.

// TimelineStats aggregates independent SimulateTimeline runs.
type TimelineStats struct {
	// Results holds every run's outcome in run order.
	Results []TimelineResult
	// MeanDelivered / MinDelivered summarize delivered availability across
	// runs; MeanAllUp is the mean fraction of time all slices were up.
	MeanDelivered, MinDelivered float64
	MeanAllUp                   float64
	// Failures and Swaps total across runs.
	Failures, Swaps int
}

// SampleTimelines runs `runs` independent continuous-time simulations of p
// in parallel. Each shard of runs draws from its own substream of seed, so
// the sample is deterministic for a given seed at any worker count.
func SampleTimelines(p TimelineParams, runs int, seed uint64) (TimelineStats, error) {
	if runs <= 0 {
		runs = 1
	}
	// Validate once up front so degenerate parameters fail fast instead of
	// per-shard.
	if p.Years <= 0 || p.MTTRHours <= 0 || p.SliceCubes <= 0 {
		return TimelineStats{}, ErrTimeline
	}
	type shardOut struct {
		res []TimelineResult
		err error
	}
	outs := par.MonteCarlo("avail_timeline", runs, seed, func(sh par.Shard) shardOut {
		var o shardOut
		for i := 0; i < sh.Trials(); i++ {
			r, err := SimulateTimeline(p, sh.Rng)
			if err != nil {
				o.err = err
				return o
			}
			o.res = append(o.res, r)
		}
		return o
	})

	var stats TimelineStats
	stats.MinDelivered = 1
	for _, o := range outs {
		if o.err != nil {
			return TimelineStats{}, o.err
		}
		for _, r := range o.res {
			stats.Results = append(stats.Results, r)
			stats.MeanDelivered += r.Delivered
			stats.MeanAllUp += r.AllUpFraction
			if r.Delivered < stats.MinDelivered {
				stats.MinDelivered = r.Delivered
			}
			stats.Failures += r.Failures
			stats.Swaps += r.Swaps
		}
	}
	n := float64(len(stats.Results))
	stats.MeanDelivered /= n
	stats.MeanAllUp /= n
	return stats, nil
}

// GoodputPoint is one cell of the Fig 15b surface.
type GoodputPoint struct {
	ServerAvail    float64
	SliceCubes     int
	Static         float64
	Reconfigurable float64
}

// GoodputSurface computes the goodput-vs-slice-size family of curves
// (Fig 15b) for every (server availability, slice size) pair, in parallel
// over grid points. The result is in row-major order: all slice sizes for
// avails[0], then avails[1], and so on.
func GoodputSurface(avails []float64, ks []int) []GoodputPoint {
	grid := make([]GoodputPoint, 0, len(avails)*len(ks))
	for _, a := range avails {
		for _, k := range ks {
			grid = append(grid, GoodputPoint{ServerAvail: a, SliceCubes: k})
		}
	}
	return par.Sweep("avail_goodput_surface", grid, func(_ int, pt GoodputPoint) GoodputPoint {
		p := DefaultPod(pt.ServerAvail)
		pt.Static = p.Goodput(pt.SliceCubes, false)
		pt.Reconfigurable = p.Goodput(pt.SliceCubes, true)
		return pt
	})
}
