package avail

import "testing"

func TestFabricFoldedGoodputMatchesPureModelWhenPerfect(t *testing.T) {
	p := DefaultPodWithFabric(0.999, 1.0, 48) // perfect OCSes
	base := DefaultPod(0.999)
	for _, k := range []int{1, 4, 16, 32} {
		if p.Goodput(k) != base.Goodput(k, true) {
			t.Fatalf("k=%d: %v vs %v", k, p.Goodput(k), base.Goodput(k, true))
		}
	}
}

func TestSingleCubeSlicesImmuneToFabric(t *testing.T) {
	// Single-cube slices use only intra-rack electrical links.
	bad := DefaultPodWithFabric(0.999, 0.99, 48) // terrible OCSes
	good := DefaultPodWithFabric(0.999, 0.9999, 48)
	if bad.Goodput(1) != good.Goodput(1) {
		t.Fatal("OCS availability affected single-cube slices")
	}
}

func TestWorseFabricReducesMultiCubeGoodput(t *testing.T) {
	// Sweep per-OCS availability down; at some point the 97% target
	// cannot be met even with perfect cubes.
	perfect := DefaultPodWithFabric(0.9999, 0.9999, 48)
	degraded := DefaultPodWithFabric(0.9999, 0.999, 48) // fabric ≈ 95.3%
	if degraded.Goodput(16) >= perfect.Goodput(16) {
		t.Fatalf("fabric degradation did not reduce goodput: %v vs %v",
			degraded.Goodput(16), perfect.Goodput(16))
	}
	if degraded.Goodput(16) != 0 {
		// 95.3% fabric < 97% target: no multi-cube slice can meet the
		// target at all.
		t.Fatalf("goodput = %v with fabric below target", degraded.Goodput(16))
	}
}

func TestBidiTransceiversRescueGoodput(t *testing.T) {
	// The Fig 15a ↔ Fig 15b connection: at 99.9% per-OCS availability a
	// 96-OCS duplex fabric (90.8%) cannot meet a 95% deliverability
	// target for multi-cube slices, while the 24-OCS CWDM8 fabric (97.6%)
	// can.
	duplex := DefaultPodWithFabric(0.9999, 0.999, 96)
	duplex.Target = 0.95
	cwdm8 := DefaultPodWithFabric(0.9999, 0.999, 24)
	cwdm8.Target = 0.95
	if duplex.Goodput(16) != 0 {
		t.Fatalf("duplex goodput = %v, want 0 (fabric 90.8%% < target)", duplex.Goodput(16))
	}
	if cwdm8.Goodput(16) == 0 {
		t.Fatal("CWDM8 fabric cannot advertise despite 97.6% availability")
	}
}

func TestFabricFoldedEdgeCases(t *testing.T) {
	p := DefaultPodWithFabric(0.999, 0.999, 48)
	p.FabricAvail = 0
	if p.ReconfigurableSlices(4) != 0 {
		t.Fatal("zero fabric availability advertised slices")
	}
}
