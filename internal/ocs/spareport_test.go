package ocs

import (
	"errors"
	"testing"
)

func TestFailPortDropsItsCircuits(t *testing.T) {
	s := newTestSwitch(t)
	mustConnect(t, s, 5, 9)
	mustConnect(t, s, 9, 5) // the same ports, opposite roles
	mustConnect(t, s, 1, 2) // unrelated
	dropped, err := s.FailPort(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 2 {
		t.Fatalf("dropped %d circuits, want 2", len(dropped))
	}
	if s.NumCircuits() != 1 {
		t.Fatalf("circuits = %d", s.NumCircuits())
	}
	// Failed port unusable on both sides.
	if _, err := s.Connect(5, 3); !errors.Is(err, ErrPortFailed) {
		t.Errorf("north use of failed port: %v", err)
	}
	if _, err := s.Connect(3, 5); !errors.Is(err, ErrPortFailed) {
		t.Errorf("south use of failed port: %v", err)
	}
	// Idempotent.
	if d, err := s.FailPort(5); err != nil || d != nil {
		t.Fatalf("second failure: %v %v", d, err)
	}
}

func TestSpareForAllocation(t *testing.T) {
	s := newTestSwitch(t)
	if s.SparesLeft() != 8 {
		t.Fatalf("spares = %d, want 8", s.SparesLeft())
	}
	if _, err := s.SpareFor(5); err == nil {
		t.Fatal("spare granted for a healthy port")
	}
	if _, err := s.FailPort(5); err != nil {
		t.Fatal(err)
	}
	spare, err := s.SpareFor(5)
	if err != nil {
		t.Fatal(err)
	}
	if int(spare) < s.Radix()-8 {
		t.Fatalf("spare %d not from the reserved pool", spare)
	}
	if s.SparesLeft() != 7 {
		t.Fatalf("spares = %d after allocation", s.SparesLeft())
	}
	// The spare is immediately usable.
	if _, err := s.Connect(spare, 9); err != nil {
		t.Fatalf("spare unusable: %v", err)
	}
}

func TestSpareExhaustion(t *testing.T) {
	s := newTestSwitch(t)
	for i := 0; i < 8; i++ {
		if _, err := s.FailPort(PortID(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SpareFor(PortID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.FailPort(20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SpareFor(20); !errors.Is(err, ErrNoSpare) {
		t.Fatalf("err = %v", err)
	}
}

func TestRepairPort(t *testing.T) {
	s := newTestSwitch(t)
	if err := s.RepairPort(3); err == nil {
		t.Fatal("repairing a healthy port accepted")
	}
	if _, err := s.FailPort(3); err != nil {
		t.Fatal(err)
	}
	if err := s.RepairPort(3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Connect(3, 4); err != nil {
		t.Fatalf("repaired port unusable: %v", err)
	}
	if _, err := s.FailPort(999); !errors.Is(err, ErrPortRange) {
		t.Errorf("err = %v", err)
	}
	if err := s.RepairPort(999); !errors.Is(err, ErrPortRange) {
		t.Errorf("err = %v", err)
	}
}
