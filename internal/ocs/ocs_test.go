package ocs

import (
	"errors"
	"testing"
	"testing/quick"

	"lightwave/internal/sim"
	"lightwave/internal/telemetry"
)

func newTestSwitch(t *testing.T) *Switch {
	t.Helper()
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDefault(t *testing.T) {
	s := newTestSwitch(t)
	if s.Radix() != 136 {
		t.Errorf("Radix = %d", s.Radix())
	}
	if s.UsablePorts() != 128 {
		t.Errorf("UsablePorts = %d", s.UsablePorts())
	}
	if !s.Up() {
		t.Error("new switch not up")
	}
}

func TestNewInvalidConfigs(t *testing.T) {
	cases := []Config{
		{Radix: 0, MirrorsPerDie: 10, DriverBoards: 1},
		{Radix: 20, MirrorsPerDie: 10, DriverBoards: 1},               // fewer mirrors than ports
		{Radix: 8, MirrorsPerDie: 10, DriverBoards: 3},                // boards don't divide mirrors
		{Radix: 8, MirrorsPerDie: 16, DriverBoards: 2, SparePorts: 8}, // all ports spare
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestConnectDisconnect(t *testing.T) {
	s := newTestSwitch(t)
	c, err := s.Connect(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if c.North != 3 || c.South != 77 {
		t.Fatalf("circuit = %+v", c)
	}
	if got, ok := s.ConnectionOf(3); !ok || got != 77 {
		t.Fatalf("ConnectionOf = %v %v", got, ok)
	}
	if s.NumCircuits() != 1 {
		t.Errorf("NumCircuits = %d", s.NumCircuits())
	}
	if err := s.Disconnect(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ConnectionOf(3); ok {
		t.Error("still connected after Disconnect")
	}
}

func TestConnectBusyPorts(t *testing.T) {
	s := newTestSwitch(t)
	mustConnect(t, s, 1, 2)
	if _, err := s.Connect(1, 3); !errors.Is(err, ErrPortBusy) {
		t.Errorf("north busy: err = %v", err)
	}
	if _, err := s.Connect(4, 2); !errors.Is(err, ErrPortBusy) {
		t.Errorf("south busy: err = %v", err)
	}
}

func TestConnectOutOfRange(t *testing.T) {
	s := newTestSwitch(t)
	if _, err := s.Connect(-1, 0); !errors.Is(err, ErrPortRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := s.Connect(0, 136); !errors.Is(err, ErrPortRange) {
		t.Errorf("err = %v", err)
	}
}

func TestDisconnectErrors(t *testing.T) {
	s := newTestSwitch(t)
	if err := s.Disconnect(0); !errors.Is(err, ErrNotConnected) {
		t.Errorf("err = %v", err)
	}
	if err := s.Disconnect(999); !errors.Is(err, ErrPortRange) {
		t.Errorf("err = %v", err)
	}
}

func TestBijectivityInvariant(t *testing.T) {
	// Property: after arbitrary connect/disconnect sequences the map stays
	// a partial bijection.
	err := quick.Check(func(seed uint64) bool {
		s, _ := New(DefaultConfig())
		r := sim.NewRand(seed)
		for i := 0; i < 300; i++ {
			n := PortID(r.Intn(136))
			so := PortID(r.Intn(136))
			if r.Bernoulli(0.7) {
				_, _ = s.Connect(n, so)
			} else {
				_ = s.Disconnect(n)
			}
		}
		seen := make(map[PortID]bool)
		for _, c := range s.Circuits() {
			if seen[c.South] {
				return false
			}
			seen[c.South] = true
			got, ok := s.ConnectionOf(c.North)
			if !ok || got != c.South {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestInsertionLossCalibration(t *testing.T) {
	// Fig 10a: insertion losses are "typically less than 2 dB" across all
	// permutations, with a small tail.
	s := newTestSwitch(t)
	var sum sim.Summary
	over2, over3 := 0, 0
	n := 0
	for a := 0; a < 136; a += 3 {
		for b := 0; b < 136; b += 3 {
			l := s.IntrinsicLossDB(PortID(a), PortID(b))
			sum.Add(l)
			if l > 2 {
				over2++
			}
			if l > 3.5 {
				over3++
			}
			n++
		}
	}
	if sum.Mean() < 1.0 || sum.Mean() > 2.0 {
		t.Errorf("mean intrinsic loss = %.2f dB, want in [1,2]", sum.Mean())
	}
	if frac := float64(over2) / float64(n); frac > 0.15 {
		t.Errorf("%.1f%% of paths over 2 dB, want small tail", 100*frac)
	}
	if frac := float64(over3) / float64(n); frac > 0.005 {
		t.Errorf("%.2f%% of paths over 3.5 dB", 100*frac)
	}
	if sum.Min() <= 0 {
		t.Errorf("non-physical loss %.2f dB", sum.Min())
	}
}

func TestInsertionLossDeterministic(t *testing.T) {
	a, _ := New(DefaultConfig())
	b, _ := New(DefaultConfig())
	for i := 0; i < 50; i++ {
		p, q := PortID(i), PortID((i*7)%136)
		if a.IntrinsicLossDB(p, q) != b.IntrinsicLossDB(p, q) {
			t.Fatal("same seed produced different loss")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	c, _ := New(cfg)
	diff := false
	for i := 0; i < 20; i++ {
		if a.IntrinsicLossDB(PortID(i), PortID(i+1)) != c.IntrinsicLossDB(PortID(i), PortID(i+1)) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical units")
	}
}

func TestConnectedLossIncludesAlignmentResidual(t *testing.T) {
	s := newTestSwitch(t)
	c, err := s.Connect(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	floor := s.IntrinsicLossDB(10, 20)
	if c.InsertionLossDB <= floor {
		t.Errorf("connected loss %.3f <= intrinsic floor %.3f", c.InsertionLossDB, floor)
	}
	if c.InsertionLossDB > floor+0.2 {
		t.Errorf("alignment residual too large: %.3f dB over floor", c.InsertionLossDB-floor)
	}
}

func TestSetupTimeMillisecondClass(t *testing.T) {
	s := newTestSwitch(t)
	c, _ := s.Connect(0, 1)
	if c.SetupTime < 1e-3 || c.SetupTime > 0.1 {
		t.Errorf("setup time %.4f s, want millisecond class", c.SetupTime)
	}
}

func TestReturnLossCalibration(t *testing.T) {
	// Fig 10b: typically −46 dB, spec < −38 dB.
	s := newTestSwitch(t)
	var sum sim.Summary
	for p := 0; p < 136; p++ {
		rl, err := s.ReturnLossDB(PortID(p))
		if err != nil {
			t.Fatal(err)
		}
		if rl > -38 {
			t.Errorf("port %d return loss %.1f dB violates −38 dB spec", p, rl)
		}
		sum.Add(rl)
	}
	if sum.Mean() > -43 || sum.Mean() < -49 {
		t.Errorf("mean return loss %.1f dB, want ≈ −46", sum.Mean())
	}
	if _, err := s.ReturnLossDB(200); !errors.Is(err, ErrPortRange) {
		t.Errorf("err = %v", err)
	}
}

func TestPowerBudget(t *testing.T) {
	s := newTestSwitch(t)
	if s.PowerW() > 108+1e-9 {
		t.Errorf("power %.1f W exceeds 108 W max", s.PowerW())
	}
	if s.PowerW() < 50 {
		t.Errorf("power %.1f W implausibly low for a full chassis", s.PowerW())
	}
}

func TestMetricsExport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metrics = telemetry.NewRegistry()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, s, 0, 1)
	mustConnect(t, s, 2, 3)
	if got := cfg.Metrics.Counter("ocs.reconfigurations").Value(); got != 2 {
		t.Errorf("reconfigurations = %d", got)
	}
	if got := cfg.Metrics.Distribution("ocs.insertion_loss_db").Snapshot().N; got != 2 {
		t.Errorf("loss observations = %d", got)
	}
}

func mustConnect(t *testing.T, s *Switch, n, so PortID) Circuit {
	t.Helper()
	c, err := s.Connect(n, so)
	if err != nil {
		t.Fatalf("Connect(%d,%d): %v", n, so, err)
	}
	return c
}
