package ocs

import (
	"errors"

	"lightwave/internal/sim"
)

// This file models the long-run field behaviour of §4.1.1: "On-going
// reliability tests, manufacturing screens, and the ability to field
// replace failed sub-assemblies leads to the chassis typically achieving
// greater than 99.98% availability in the field today." The lifetime
// simulation injects component failures at their MTBFs, applies the
// redundancy rules of the FRU design (redundant PSUs and fans, hot-
// swappable driver boards, a non-redundant control board), and accounts
// downtime until field repair completes.

// ReliabilityParams are the component failure/repair statistics.
type ReliabilityParams struct {
	// Mean time between failures per component instance, hours.
	PSUMTBFHours     float64
	FanMTBFHours     float64
	DriverMTBFHours  float64
	ControlMTBFHours float64
	MirrorMTBFHours  float64
	// RepairHours is the mean field-replacement time for a FRU.
	RepairHours float64
	// MaintenancePerYear scheduled maintenance windows per year, each
	// MaintenanceHours of downtime.
	MaintenancePerYear float64
	MaintenanceHours   float64
}

// DefaultReliability returns the calibrated production figures.
func DefaultReliability() ReliabilityParams {
	return ReliabilityParams{
		PSUMTBFHours:       175000,
		FanMTBFHours:       60000,
		DriverMTBFHours:    90000, // the HV drivers were the largest reliability challenge
		ControlMTBFHours:   150000,
		MirrorMTBFHours:    4.0e6, // per mirror; repaired from on-die spares
		RepairHours:        8,
		MaintenancePerYear: 1.5,
		MaintenanceHours:   0.5,
	}
}

// LifetimeReport summarizes a simulated deployment.
type LifetimeReport struct {
	Years          float64
	DowntimeHours  float64
	Availability   float64
	FRUReplaced    int
	DriverFailures int
	MirrorFailures int
	// PortsLost counts ports permanently failed after mirror-spare
	// exhaustion.
	PortsLost int
}

// ErrBadLifetime is returned for degenerate simulation spans.
var ErrBadLifetime = errors.New("ocs: non-positive lifetime")

// SimulateLifetime runs one chassis for the given number of years and
// reports downtime and repair activity. The chassis is considered down
// when power or cooling redundancy is exhausted, the control board is
// dead, or a maintenance window is open; driver-board failures degrade
// circuits but do not down the chassis (they are hot-swapped).
func SimulateLifetime(p ReliabilityParams, years float64, rng *sim.Rand) (LifetimeReport, error) {
	if years <= 0 {
		return LifetimeReport{}, ErrBadLifetime
	}
	if rng == nil {
		rng = sim.NewRand(0x0C5)
	}
	horizon := years * 8766 // hours

	var q sim.Queue
	rep := LifetimeReport{Years: years}

	psuDown, fanDown, boardDown := 0, 0, 0
	controlDown := false
	maintenance := false
	mirrorSpares := 2 * 40 // two dies × (176-136) manufacturing spares

	downSince := -1.0
	isDown := func() bool {
		return psuDown >= 2 || fanDown >= 2 || controlDown || maintenance
	}
	reassess := func() {
		now := float64(q.Now())
		if isDown() {
			if downSince < 0 {
				downSince = now
			}
		} else if downSince >= 0 {
			rep.DowntimeHours += now - downSince
			downSince = -1
		}
	}

	// Failure processes: one recurring generator per component class.
	type proc struct {
		rate float64 // failures/hour across the population
		fire func()
	}
	var procs []proc
	repair := func(fix func()) {
		q.After(rng.ExpFloat64()*p.RepairHours, func() {
			fix()
			rep.FRUReplaced++
			reassess()
		})
	}
	procs = append(procs,
		proc{2 / p.PSUMTBFHours, func() {
			if psuDown < 2 {
				psuDown++
				repair(func() { psuDown-- })
			}
			reassess()
		}},
		proc{4 / p.FanMTBFHours, func() {
			if fanDown < 4 {
				fanDown++
				repair(func() { fanDown-- })
			}
			reassess()
		}},
		proc{8 / p.DriverMTBFHours, func() {
			rep.DriverFailures++
			if boardDown < 8 {
				boardDown++
				repair(func() { boardDown-- })
			}
			reassess()
		}},
		proc{1 / p.ControlMTBFHours, func() {
			if !controlDown {
				controlDown = true
				repair(func() { controlDown = false })
			}
			reassess()
		}},
		proc{272 / p.MirrorMTBFHours, func() { // 2 dies × 136 in-service mirrors
			rep.MirrorFailures++
			if mirrorSpares > 0 {
				mirrorSpares--
			} else {
				rep.PortsLost++
			}
		}},
	)
	if p.MaintenancePerYear > 0 {
		procs = append(procs, proc{p.MaintenancePerYear / 8766, func() {
			if !maintenance {
				maintenance = true
				q.After(p.MaintenanceHours, func() {
					maintenance = false
					reassess()
				})
			}
			reassess()
		}})
	}

	var arm func(i int)
	arm = func(i int) {
		pr := procs[i]
		if pr.rate <= 0 {
			return
		}
		q.After(rng.ExpFloat64()/pr.rate, func() {
			if float64(q.Now()) > horizon {
				return
			}
			pr.fire()
			arm(i)
		})
	}
	for i := range procs {
		arm(i)
	}

	q.RunUntil(sim.Time(horizon))
	if downSince >= 0 {
		rep.DowntimeHours += horizon - downSince
	}
	rep.Availability = 1 - rep.DowntimeHours/horizon
	return rep, nil
}

// FleetAvailability runs n independent chassis lifetimes and returns the
// mean availability — the field statistic of §4.1.1.
func FleetAvailability(p ReliabilityParams, years float64, n int, rng *sim.Rand) (float64, error) {
	if n <= 0 {
		return 0, ErrBadLifetime
	}
	if rng == nil {
		rng = sim.NewRand(0xF1EE7)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		rep, err := SimulateLifetime(p, years, rng.Split())
		if err != nil {
			return 0, err
		}
		sum += rep.Availability
	}
	return sum / float64(n), nil
}
