package ocs

import "fmt"

// Permutation describes a desired partial cross-connect state: for each
// north port present in the map, the south port it must reach. Ports absent
// from the map are left untouched — this is the paper's §2.3 requirement of
// "the ability to keep certain connections undisturbed while making changes
// elsewhere", which provides job isolation.
type Permutation map[PortID]PortID

// Validate checks that the permutation is injective and in range, and that
// it does not steal a south port from a circuit it does not also move.
func (s *Switch) validatePermutation(p Permutation) error {
	seenSouth := make(map[PortID]bool, len(p))
	for n, so := range p {
		if int(n) < 0 || int(n) >= s.cfg.Radix || int(so) < 0 || int(so) >= s.cfg.Radix {
			return fmt.Errorf("%w: %d->%d", ErrPortRange, n, so)
		}
		if seenSouth[so] {
			return fmt.Errorf("%w: south %d targeted twice", ErrNotBijective, so)
		}
		seenSouth[so] = true
		// A south port currently owned by a north port that the permutation
		// does not reassign would be disturbed — reject.
		if owner := s.rconn[so]; owner != -1 && owner != int(n) {
			if _, moved := p[PortID(owner)]; !moved {
				return fmt.Errorf("%w: south %d busy with untouched north %d", ErrPortBusy, so, owner)
			}
		}
	}
	return nil
}

// ReconfigResult reports what a batch reconfiguration did.
type ReconfigResult struct {
	// Established are the circuits set up by this reconfiguration.
	Established []Circuit
	// Changed is the number of north ports whose connection changed.
	Changed int
	// Duration is the simulated wall time of the batch. Mirror moves within
	// one switch proceed in parallel (each mirror has its own driver), so
	// the batch takes one settle + alignment interval, not one per circuit.
	Duration float64
}

// Apply atomically applies a partial permutation. Circuits not named in the
// permutation are untouched (their loss and connectivity provably
// unchanged). On any validation error nothing is modified.
func (s *Switch) Apply(p Permutation) (ReconfigResult, error) {
	if !s.up {
		return ReconfigResult{}, ErrSwitchDown
	}
	if err := s.validatePermutation(p); err != nil {
		return ReconfigResult{}, err
	}
	for n, so := range p {
		if s.portFailed[n] || s.portFailed[so] {
			return ReconfigResult{}, fmt.Errorf("%w: %d->%d", ErrPortFailed, n, so)
		}
		if s.conn[n] == int(so) {
			continue // already in place; will count as unchanged
		}
		if !s.portDrivable(n) || !s.portDrivable(so) {
			return ReconfigResult{}, fmt.Errorf("%w: %d->%d mirror undrivable", ErrPortFailed, n, so)
		}
	}

	var res ReconfigResult
	// Tear down the connections being moved.
	for n, so := range p {
		if s.conn[n] == int(so) {
			continue
		}
		if s.conn[n] != -1 {
			if err := s.Disconnect(n); err != nil {
				return ReconfigResult{}, err
			}
		}
		// If the target south port is held by another north port that is
		// also being moved, tear that one down too (validated above).
		if owner := s.rconn[so]; owner != -1 && owner != int(n) {
			if err := s.Disconnect(PortID(owner)); err != nil {
				return ReconfigResult{}, err
			}
		}
	}
	for n, so := range p {
		if s.conn[n] == int(so) {
			continue
		}
		c, err := s.Connect(n, so)
		if err != nil {
			return res, err
		}
		res.Established = append(res.Established, c)
		res.Changed++
		if c.SetupTime > res.Duration {
			res.Duration = c.SetupTime
		}
	}
	return res, nil
}

// FullPermutation builds a Permutation connecting north port i to south port
// perm[i] for all i; perm must be a bijection on [0, len(perm)).
func FullPermutation(perm []int) (Permutation, error) {
	seen := make([]bool, len(perm))
	p := make(Permutation, len(perm))
	for n, so := range perm {
		if so < 0 || so >= len(perm) || seen[so] {
			return nil, ErrNotBijective
		}
		seen[so] = true
		p[PortID(n)] = PortID(so)
	}
	return p, nil
}
