// Package ocs models the Palomar optical circuit switch described in §3.2 of
// the paper: a non-blocking 136×136 MEMS switch with bijective any-to-any
// North-to-South port connectivity, camera-based closed-loop mirror
// alignment, millisecond-class switching, sub-2 dB insertion loss, −46 dB
// typical return loss, and a field-replaceable-unit design whose high-voltage
// mirror driver boards were "one of the largest reliability challenges for
// the switch".
//
// The switch is a simulation substrate: it reproduces everything the control
// plane and the paper's evaluation observe about a real Palomar OCS — the
// port map, reconfiguration semantics (circuits not being changed stay up),
// switching time, per-connection optical loss, and failure/repair behaviour —
// without any optical hardware.
package ocs

import (
	"errors"
	"fmt"
	"sort"

	"lightwave/internal/sim"
	"lightwave/internal/telemetry"
)

// PortID identifies a duplex port (a North/South collimator pair) on one
// switch, in [0, Radix).
type PortID int

// Errors returned by switch operations.
var (
	ErrPortRange    = errors.New("ocs: port out of range")
	ErrPortBusy     = errors.New("ocs: port already connected")
	ErrPortFailed   = errors.New("ocs: port failed")
	ErrNotConnected = errors.New("ocs: port not connected")
	ErrSwitchDown   = errors.New("ocs: switch unavailable")
	ErrNoSpare      = errors.New("ocs: no spare resource available")
	ErrNotBijective = errors.New("ocs: permutation is not bijective")
	ErrDriverBoard  = errors.New("ocs: driver board out of range")
	ErrBoardHealthy = errors.New("ocs: driver board is healthy")
	ErrMirrorRange  = errors.New("ocs: mirror out of range")
)

// Config parameterizes a Palomar-class switch. The zero value is not
// usable; call DefaultConfig and adjust.
type Config struct {
	// Radix is the number of duplex ports (paper: 136, of which 8 are
	// spares kept for link testing and repairs).
	Radix int
	// SparePorts of the radix are reserved; usable production ports are
	// Radix-SparePorts.
	SparePorts int
	// MirrorsPerDie is the number of micro-mirrors fabricated on each of
	// the two MEMS dies (paper: 176, best 136 selected at manufacture).
	MirrorsPerDie int
	// DriverBoards is the number of high-voltage driver boards; each board
	// actuates an equal contiguous share of each die's mirrors.
	DriverBoards int
	// MirrorSettle is the electromechanical settling time of one mirror
	// move, in seconds (milliseconds class for MEMS, Table C.1).
	MirrorSettle float64
	// AlignIterations is the number of camera-feedback alignment rounds run
	// per connection (§3.2.2: image-based closed-loop alignment).
	AlignIterations int
	// AlignRound is the duration of one alignment round in seconds.
	AlignRound float64
	// MaxPowerW is the maximum power draw of the chassis (paper: 108 W).
	MaxPowerW float64
	// Seed fixes the manufacturing variation of this physical unit.
	Seed uint64
	// Metrics receives telemetry; nil disables metric export.
	Metrics *telemetry.Registry
}

// DefaultConfig returns the production Palomar configuration from the paper.
func DefaultConfig() Config {
	return Config{
		Radix:           136,
		SparePorts:      8,
		MirrorsPerDie:   176,
		DriverBoards:    8,
		MirrorSettle:    2e-3,
		AlignIterations: 6,
		AlignRound:      0.5e-3,
		MaxPowerW:       108,
		Seed:            1,
	}
}

// Circuit is an established North→South cross-connection.
type Circuit struct {
	North, South PortID
	// InsertionLossDB is the optical loss of this path after closed-loop
	// alignment, in dB.
	InsertionLossDB float64
	// SetupTime is the simulated wall time the connection took to
	// establish, in seconds.
	SetupTime float64
}

// Switch is one Palomar OCS. Methods are not safe for concurrent use; the
// fabric control plane serializes access per switch (matching the real
// system, where the chassis CPU applies one command stream).
type Switch struct {
	cfg Config

	// conn[n] = south port connected to north port n, or -1.
	conn []int
	// rconn[s] = north port connected to south port s, or -1.
	rconn []int
	loss  map[[2]int]float64 // established circuit loss

	dies       [2]die
	portMirror [2][]int // portMirror[d][p] = mirror index on die d serving port p
	boards     []bool   // boards[b] = healthy

	portFailed []bool
	portRL     []float64    // per-port return loss, dB (negative)
	spareUsed  map[int]bool // spare ports already allocated to repairs

	psu  [2]bool
	fans []bool

	up           bool
	reconfigs    int64
	droppedByFRU int64
	metricLoss   *telemetry.Distribution
	metricReconf *telemetry.Counter
	metricDrops  *telemetry.Counter

	mfg *sim.Rand // manufacturing/alignment variation stream
}

type die struct {
	quality []float64 // per-mirror loss contribution, dB
	ok      []bool    // per-mirror health
}

// New builds a switch with manufacturing variation drawn from cfg.Seed.
// Mirror selection follows the paper: MirrorsPerDie mirrors are fabricated
// and the best Radix of them (lowest loss) are bonded to ports; the rest are
// qualified spares.
func New(cfg Config) (*Switch, error) {
	if cfg.Radix <= 0 || cfg.MirrorsPerDie < cfg.Radix {
		return nil, fmt.Errorf("ocs: invalid config: radix %d, mirrors/die %d", cfg.Radix, cfg.MirrorsPerDie)
	}
	if cfg.SparePorts < 0 || cfg.SparePorts >= cfg.Radix {
		return nil, fmt.Errorf("ocs: invalid spare ports %d", cfg.SparePorts)
	}
	if cfg.DriverBoards <= 0 || cfg.MirrorsPerDie%cfg.DriverBoards != 0 {
		return nil, fmt.Errorf("ocs: driver boards %d must evenly divide %d mirrors", cfg.DriverBoards, cfg.MirrorsPerDie)
	}
	s := &Switch{
		cfg:        cfg,
		conn:       make([]int, cfg.Radix),
		rconn:      make([]int, cfg.Radix),
		loss:       make(map[[2]int]float64),
		boards:     make([]bool, cfg.DriverBoards),
		portFailed: make([]bool, cfg.Radix),
		portRL:     make([]float64, cfg.Radix),
		psu:        [2]bool{true, true},
		fans:       make([]bool, 4),
		up:         true,
		mfg:        sim.NewRand(cfg.Seed),
	}
	for i := range s.conn {
		s.conn[i], s.rconn[i] = -1, -1
	}
	for b := range s.boards {
		s.boards[b] = true
	}
	for f := range s.fans {
		s.fans[f] = true
	}
	for d := 0; d < 2; d++ {
		s.dies[d] = die{
			quality: make([]float64, cfg.MirrorsPerDie),
			ok:      make([]bool, cfg.MirrorsPerDie),
		}
		for m := 0; m < cfg.MirrorsPerDie; m++ {
			// Per-mirror loss contribution: mean 0.30 dB, sigma 0.08,
			// floored at a physical minimum.
			q := 0.30 + 0.08*s.mfg.NormFloat64()
			if q < 0.10 {
				q = 0.10
			}
			s.dies[d].quality[m] = q
			s.dies[d].ok[m] = true
		}
		s.portMirror[d] = selectBestMirrors(s.dies[d].quality, cfg.Radix)
	}
	for p := 0; p < cfg.Radix; p++ {
		// Return loss: typically −46 dB with manufacturing spread
		// (Fig 10b); spec is < −38 dB.
		rl := -46 + 1.5*s.mfg.NormFloat64()
		if rl > -39 {
			rl = -39 - s.mfg.Float64()
		}
		s.portRL[p] = rl
	}
	if cfg.Metrics != nil {
		s.metricLoss = cfg.Metrics.Distribution("ocs.insertion_loss_db", 0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
		s.metricReconf = cfg.Metrics.Counter("ocs.reconfigurations")
		s.metricDrops = cfg.Metrics.Counter("ocs.circuits_dropped_by_fru")
	}
	return s, nil
}

// selectBestMirrors returns, for each port, the index of the mirror assigned
// to it: the cfg.Radix lowest-loss mirrors in fabrication order.
func selectBestMirrors(quality []float64, n int) []int {
	idx := make([]int, len(quality))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return quality[idx[a]] < quality[idx[b]] })
	best := append([]int(nil), idx[:n]...)
	sort.Ints(best) // keep port→mirror map in stable fabrication order
	return best
}

// Radix returns the number of duplex ports.
func (s *Switch) Radix() int { return s.cfg.Radix }

// UsablePorts returns the number of production (non-spare) ports.
func (s *Switch) UsablePorts() int { return s.cfg.Radix - s.cfg.SparePorts }

// Up reports whether the chassis is serving (power and cooling redundancy
// not exhausted).
func (s *Switch) Up() bool { return s.up }

// PowerW returns the present power draw. An OCS does no per-packet
// processing, so draw is dominated by the HV drivers and control electronics
// and is effectively independent of traffic (paper: max 108 W).
func (s *Switch) PowerW() float64 {
	if !s.up {
		return 0
	}
	base := 0.55 * s.cfg.MaxPowerW
	perBoard := 0.45 * s.cfg.MaxPowerW / float64(s.cfg.DriverBoards)
	w := base
	for _, ok := range s.boards {
		if ok {
			w += perBoard
		}
	}
	return w
}

func (s *Switch) checkPort(p PortID) error {
	if int(p) < 0 || int(p) >= s.cfg.Radix {
		return fmt.Errorf("%w: %d (radix %d)", ErrPortRange, p, s.cfg.Radix)
	}
	if s.portFailed[p] {
		return fmt.Errorf("%w: %d", ErrPortFailed, p)
	}
	return nil
}

// boardOf returns the driver board actuating mirror m.
func (s *Switch) boardOf(m int) int {
	return m / (s.cfg.MirrorsPerDie / s.cfg.DriverBoards)
}

// portDrivable reports whether both mirrors serving port p have healthy
// mirrors and powered driver boards.
func (s *Switch) portDrivable(p PortID) bool {
	for d := 0; d < 2; d++ {
		m := s.portMirror[d][p]
		if !s.dies[d].ok[m] || !s.boards[s.boardOf(m)] {
			return false
		}
	}
	return true
}

// Connect establishes a North→South circuit and returns it. The connection
// runs the camera-feedback alignment loop, so setup time is
// MirrorSettle + AlignIterations×AlignRound and the final loss includes a
// small alignment residual.
func (s *Switch) Connect(north, south PortID) (Circuit, error) {
	if !s.up {
		return Circuit{}, ErrSwitchDown
	}
	if err := s.checkPort(north); err != nil {
		return Circuit{}, err
	}
	if err := s.checkPort(south); err != nil {
		return Circuit{}, err
	}
	if s.conn[north] != -1 {
		return Circuit{}, fmt.Errorf("%w: north %d", ErrPortBusy, north)
	}
	if s.rconn[south] != -1 {
		return Circuit{}, fmt.Errorf("%w: south %d", ErrPortBusy, south)
	}
	if !s.portDrivable(north) {
		return Circuit{}, fmt.Errorf("%w: north %d mirror undrivable", ErrPortFailed, north)
	}
	if !s.portDrivable(south) {
		return Circuit{}, fmt.Errorf("%w: south %d mirror undrivable", ErrPortFailed, south)
	}

	loss, setup := s.align(north, south)
	s.conn[north] = int(south)
	s.rconn[south] = int(north)
	s.loss[[2]int{int(north), int(south)}] = loss
	s.reconfigs++
	if s.metricReconf != nil {
		s.metricReconf.Inc()
	}
	if s.metricLoss != nil {
		s.metricLoss.Observe(loss)
	}
	return Circuit{North: north, South: south, InsertionLossDB: loss, SetupTime: setup}, nil
}

// align runs the simulated closed-loop camera alignment for a path and
// returns the settled insertion loss and elapsed time. Alignment starts from
// a coarse open-loop pointing error and converges geometrically toward the
// path's intrinsic loss floor, mirroring the image-feedback loop of §3.2.2.
func (s *Switch) align(north, south PortID) (lossDB, setup float64) {
	floor := s.IntrinsicLossDB(north, south)
	// Open-loop pointing error before feedback: up to a few dB excess.
	r := s.pairRand(north, south, 0xA11)
	excess := 1.5 + 1.0*r.Float64()
	for i := 0; i < s.cfg.AlignIterations; i++ {
		excess *= 0.35 // each camera round removes ~65% of residual error
	}
	// Residual jitter of the servo.
	res := 0.02 + 0.02*r.Float64()
	setup = s.cfg.MirrorSettle + float64(s.cfg.AlignIterations)*s.cfg.AlignRound
	return floor + excess + res, setup
}

// IntrinsicLossDB returns the manufacturing loss floor of the optical path
// north→south: both collimators, both mirrors, and the fiber splice and
// connector variation of the port pair. It is deterministic for a given
// physical unit (seed) and does not require the circuit to be connected —
// the paper's Fig 10a histogram samples all Radix² cross-connections this
// way.
func (s *Switch) IntrinsicLossDB(north, south PortID) float64 {
	r := s.pairRand(north, south, 0x10)
	// Collimator insertion per side: mean 0.35 dB.
	col := 0.35 + 0.05*r.NormFloat64()
	if col < 0.15 {
		col = 0.15
	}
	col2 := 0.35 + 0.05*r.NormFloat64()
	if col2 < 0.15 {
		col2 = 0.15
	}
	// Mirror contributions from the two dies' assigned mirrors.
	m1 := s.dies[0].quality[s.portMirror[0][north]]
	m2 := s.dies[1].quality[s.portMirror[1][south]]
	// Splice/connector variation: mostly tight, occasional heavy tail —
	// the paper attributes the histogram tail to exactly this.
	splice := 0.25 + 0.08*r.NormFloat64()
	if splice < 0.05 {
		splice = 0.05
	}
	if r.Float64() < 0.06 {
		splice += r.ExpFloat64() * 0.35
	}
	return col + col2 + m1 + m2 + splice
}

// pairRand derives a deterministic stream for a port pair and purpose tag.
func (s *Switch) pairRand(a, b PortID, tag uint64) *sim.Rand {
	seed := s.cfg.Seed
	seed = seed*0x9E3779B97F4A7C15 + uint64(a) + 1
	seed = seed*0x9E3779B97F4A7C15 + uint64(b) + 1
	seed = seed*0x9E3779B97F4A7C15 + tag
	return sim.NewRand(seed)
}

// ReturnLossDB returns the return loss of port p in dB (a negative number;
// more negative is better). Spec is < −38 dB.
func (s *Switch) ReturnLossDB(p PortID) (float64, error) {
	if int(p) < 0 || int(p) >= s.cfg.Radix {
		return 0, ErrPortRange
	}
	return s.portRL[p], nil
}

// Disconnect tears down the circuit on north. Teardown is fast (mirrors are
// simply parked).
func (s *Switch) Disconnect(north PortID) error {
	if int(north) < 0 || int(north) >= s.cfg.Radix {
		return ErrPortRange
	}
	so := s.conn[north]
	if so == -1 {
		return fmt.Errorf("%w: north %d", ErrNotConnected, north)
	}
	s.conn[north] = -1
	s.rconn[so] = -1
	delete(s.loss, [2]int{int(north), so})
	return nil
}

// ConnectionOf returns the south port connected to north, if any.
func (s *Switch) ConnectionOf(north PortID) (PortID, bool) {
	if int(north) < 0 || int(north) >= s.cfg.Radix || s.conn[north] == -1 {
		return 0, false
	}
	return PortID(s.conn[north]), true
}

// Circuits returns all established circuits in north-port order.
func (s *Switch) Circuits() []Circuit {
	var cs []Circuit
	for n, so := range s.conn {
		if so == -1 {
			continue
		}
		cs = append(cs, Circuit{
			North:           PortID(n),
			South:           PortID(so),
			InsertionLossDB: s.loss[[2]int{n, so}],
		})
	}
	return cs
}

// NumCircuits returns the number of established circuits.
func (s *Switch) NumCircuits() int { return len(s.loss) }

// Reconfigs returns the total number of circuit establishments performed.
func (s *Switch) Reconfigs() int64 { return s.reconfigs }
