package ocs

import (
	"errors"
	"testing"
)

func TestDriverBoardFailureDropsCircuits(t *testing.T) {
	s := newTestSwitch(t)
	for i := 0; i < 20; i++ {
		mustConnect(t, s, PortID(i), PortID(i+50))
	}
	before := s.NumCircuits()
	dropped, err := s.FailDriverBoard(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) == 0 {
		t.Fatal("board failure dropped no circuits (implausible for 20 circuits, 8 boards)")
	}
	if s.NumCircuits() != before-len(dropped) {
		t.Errorf("circuits = %d, want %d", s.NumCircuits(), before-len(dropped))
	}
	if s.DroppedByFRU() != int64(len(dropped)) {
		t.Errorf("DroppedByFRU = %d, want %d", s.DroppedByFRU(), len(dropped))
	}
	// Remaining circuits are untouched and still drivable.
	for _, c := range s.Circuits() {
		if got, ok := s.ConnectionOf(c.North); !ok || got != c.South {
			t.Error("surviving circuit corrupted")
		}
	}
}

func TestDriverBoardFailureBlocksNewCircuits(t *testing.T) {
	s := newTestSwitch(t)
	if _, err := s.FailDriverBoard(0); err != nil {
		t.Fatal(err)
	}
	// Find a port served by board 0 on die 0 and try to connect it.
	blocked := false
	for p := 0; p < s.Radix(); p++ {
		if !s.portDrivable(PortID(p)) {
			if _, err := s.Connect(PortID(p), PortID((p+1)%s.Radix())); !errors.Is(err, ErrPortFailed) {
				t.Fatalf("undrivable port connected: %v", err)
			}
			blocked = true
			break
		}
	}
	if !blocked {
		t.Fatal("no port affected by board 0 failure")
	}
}

func TestDriverBoardReplace(t *testing.T) {
	s := newTestSwitch(t)
	if _, err := s.FailDriverBoard(3); err != nil {
		t.Fatal(err)
	}
	if s.DriverBoardHealthy(3) {
		t.Fatal("board still healthy after failure")
	}
	if err := s.ReplaceDriverBoard(3); err != nil {
		t.Fatal(err)
	}
	if !s.DriverBoardHealthy(3) {
		t.Fatal("board not healthy after replace")
	}
	if err := s.ReplaceDriverBoard(3); !errors.Is(err, ErrBoardHealthy) {
		t.Errorf("replacing healthy board: err = %v", err)
	}
	if _, err := s.FailDriverBoard(99); !errors.Is(err, ErrDriverBoard) {
		t.Errorf("err = %v", err)
	}
}

func TestDriverBoardFailureIdempotent(t *testing.T) {
	s := newTestSwitch(t)
	if _, err := s.FailDriverBoard(1); err != nil {
		t.Fatal(err)
	}
	dropped, err := s.FailDriverBoard(1)
	if err != nil || dropped != nil {
		t.Fatalf("second failure: dropped=%v err=%v", dropped, err)
	}
}

func TestMirrorFailureRepairsFromSpares(t *testing.T) {
	s := newTestSwitch(t)
	if s.SpareMirrors(0) != 40 {
		t.Fatalf("SpareMirrors = %d, want 40 (176-136)", s.SpareMirrors(0))
	}
	// Fail the mirror serving port 5 on die 0.
	m := s.portMirror[0][5]
	dropped, repaired, err := s.FailMirror(0, m)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired {
		t.Fatal("port not repaired despite spares")
	}
	_ = dropped
	if s.SpareMirrors(0) != 39 {
		t.Errorf("SpareMirrors = %d after repair, want 39", s.SpareMirrors(0))
	}
	// Port 5 must be usable again.
	if _, err := s.Connect(5, 9); err != nil {
		t.Fatalf("repaired port unusable: %v", err)
	}
}

func TestMirrorFailureDropsActiveCircuit(t *testing.T) {
	s := newTestSwitch(t)
	mustConnect(t, s, 5, 9)
	m := s.portMirror[0][5]
	dropped, _, err := s.FailMirror(0, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0].North != 5 {
		t.Fatalf("dropped = %v", dropped)
	}
}

func TestMirrorExhaustionFailsPort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MirrorsPerDie = 136 // no spares
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.portMirror[0][7]
	_, repaired, err := s.FailMirror(0, m)
	if err != nil {
		t.Fatal(err)
	}
	if repaired {
		t.Fatal("repair reported with zero spares")
	}
	if _, err := s.Connect(7, 8); !errors.Is(err, ErrPortFailed) {
		t.Fatalf("dead port connected: %v", err)
	}
}

func TestMirrorFailureErrors(t *testing.T) {
	s := newTestSwitch(t)
	if _, _, err := s.FailMirror(2, 0); !errors.Is(err, ErrMirrorRange) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := s.FailMirror(0, 999); !errors.Is(err, ErrMirrorRange) {
		t.Errorf("err = %v", err)
	}
}

func TestPSURedundancy(t *testing.T) {
	s := newTestSwitch(t)
	mustConnect(t, s, 0, 1)
	if err := s.FailPSU(0); err != nil {
		t.Fatal(err)
	}
	if !s.Up() {
		t.Fatal("switch down with one healthy PSU")
	}
	if s.NumCircuits() != 1 {
		t.Fatal("single PSU failure dropped circuits")
	}
	if err := s.FailPSU(1); err != nil {
		t.Fatal(err)
	}
	if s.Up() {
		t.Fatal("switch up with no PSUs")
	}
	// Mirrors are non-latching: all circuits lost on power failure.
	if s.NumCircuits() != 0 {
		t.Fatal("circuits survived total power loss")
	}
	if _, err := s.Connect(2, 3); !errors.Is(err, ErrSwitchDown) {
		t.Errorf("err = %v", err)
	}
	if err := s.ReplacePSU(0); err != nil {
		t.Fatal(err)
	}
	if !s.Up() {
		t.Fatal("switch not up after PSU replace")
	}
}

func TestFanRedundancy(t *testing.T) {
	s := newTestSwitch(t)
	if err := s.FailFan(0); err != nil {
		t.Fatal(err)
	}
	if !s.Up() {
		t.Fatal("down after single fan failure")
	}
	if err := s.FailFan(1); err != nil {
		t.Fatal(err)
	}
	if s.Up() {
		t.Fatal("up after two fan failures")
	}
	if err := s.ReplaceFan(0); err != nil {
		t.Fatal(err)
	}
	if !s.Up() {
		t.Fatal("not up after fan replaced")
	}
}

func TestFRUOutOfRange(t *testing.T) {
	s := newTestSwitch(t)
	if err := s.FailPSU(2); err == nil {
		t.Error("psu 2 accepted")
	}
	if err := s.ReplacePSU(-1); err == nil {
		t.Error("psu -1 accepted")
	}
	if err := s.FailFan(10); err == nil {
		t.Error("fan 10 accepted")
	}
	if err := s.ReplaceFan(-1); err == nil {
		t.Error("fan -1 accepted")
	}
}

func TestPowerDropsWithFailedBoard(t *testing.T) {
	s := newTestSwitch(t)
	p0 := s.PowerW()
	_, _ = s.FailDriverBoard(0)
	if s.PowerW() >= p0 {
		t.Error("power did not drop with a failed driver board")
	}
}
