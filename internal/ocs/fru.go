package ocs

import "fmt"

// This file models the serviceability design of §3.2.2 / Fig 7: redundant
// hot-swappable power supplies and fans, field-replaceable high-voltage
// driver boards (whose mirror state is lost on swap), and per-mirror
// failures repaired by remapping a port to one of the die's qualified spare
// mirrors (176 fabricated, 136 in service).

// FailDriverBoard marks HV driver board b failed. Every circuit whose
// north- or south-side mirror is actuated by board b drops immediately and
// is returned so the control plane can react. This mirrors the paper's note
// that "the mirror state cannot be maintained when driver boards are hot
// swapped" and that the HV drivers were the switch's largest reliability
// challenge.
func (s *Switch) FailDriverBoard(b int) ([]Circuit, error) {
	if b < 0 || b >= s.cfg.DriverBoards {
		return nil, ErrDriverBoard
	}
	if !s.boards[b] {
		return nil, nil // already failed; idempotent
	}
	s.boards[b] = false
	dropped := s.dropUndrivable()
	return dropped, nil
}

// ReplaceDriverBoard hot-swaps board b back into service. Circuits dropped
// by its failure are not re-established automatically; that is the control
// plane's job.
func (s *Switch) ReplaceDriverBoard(b int) error {
	if b < 0 || b >= s.cfg.DriverBoards {
		return ErrDriverBoard
	}
	if s.boards[b] {
		return ErrBoardHealthy
	}
	s.boards[b] = true
	return nil
}

// DriverBoardHealthy reports the health of board b.
func (s *Switch) DriverBoardHealthy(b int) bool {
	return b >= 0 && b < s.cfg.DriverBoards && s.boards[b]
}

// dropUndrivable tears down every circuit whose path lost actuation and
// returns them.
func (s *Switch) dropUndrivable() []Circuit {
	var dropped []Circuit
	for n, so := range s.conn {
		if so == -1 {
			continue
		}
		if s.portDrivable(PortID(n)) && s.portDrivable(PortID(so)) {
			continue
		}
		c := Circuit{North: PortID(n), South: PortID(so), InsertionLossDB: s.loss[[2]int{n, so}]}
		// Ignore error: the connection provably exists.
		_ = s.Disconnect(PortID(n))
		dropped = append(dropped, c)
		s.droppedByFRU++
		if s.metricDrops != nil {
			s.metricDrops.Inc()
		}
	}
	return dropped
}

// FailMirror marks mirror m on die d (0 or 1) failed and attempts the
// manufacturing-spare repair: the affected port is remapped to the
// best-quality unused healthy mirror on that die. It returns the circuits
// dropped by the failure and whether a spare was available.
func (s *Switch) FailMirror(d, m int) (dropped []Circuit, repaired bool, err error) {
	if d < 0 || d > 1 || m < 0 || m >= s.cfg.MirrorsPerDie {
		return nil, false, ErrMirrorRange
	}
	if !s.dies[d].ok[m] {
		return nil, false, nil // already failed
	}
	s.dies[d].ok[m] = false
	dropped = s.dropUndrivable()

	// Find the port (if any) served by this mirror and remap it to a spare.
	port := -1
	for p, mm := range s.portMirror[d] {
		if mm == m {
			port = p
			break
		}
	}
	if port == -1 {
		return dropped, false, nil // spare mirror failed; nothing to repair
	}
	spare := s.bestSpareMirror(d)
	if spare == -1 {
		// No spare: the port is dead.
		s.portFailed[port] = true
		return dropped, false, nil
	}
	s.portMirror[d][port] = spare
	return dropped, true, nil
}

// bestSpareMirror returns the healthiest unassigned mirror on die d, or -1.
func (s *Switch) bestSpareMirror(d int) int {
	inUse := make(map[int]bool, len(s.portMirror[d]))
	for _, m := range s.portMirror[d] {
		inUse[m] = true
	}
	best, bestQ := -1, 0.0
	for m := 0; m < s.cfg.MirrorsPerDie; m++ {
		if inUse[m] || !s.dies[d].ok[m] {
			continue
		}
		if best == -1 || s.dies[d].quality[m] < bestQ {
			best, bestQ = m, s.dies[d].quality[m]
		}
	}
	return best
}

// SpareMirrors returns the number of healthy unassigned mirrors on die d.
func (s *Switch) SpareMirrors(d int) int {
	if d < 0 || d > 1 {
		return 0
	}
	inUse := make(map[int]bool, len(s.portMirror[d]))
	for _, m := range s.portMirror[d] {
		inUse[m] = true
	}
	n := 0
	for m := 0; m < s.cfg.MirrorsPerDie; m++ {
		if !inUse[m] && s.dies[d].ok[m] {
			n++
		}
	}
	return n
}

// FailPort marks a duplex port failed (damaged pigtail or collimator) and
// drops every circuit touching it. The paper reserves 8 ports per switch
// as "spares for link testing and repairs"; SpareFor hands one out.
func (s *Switch) FailPort(p PortID) ([]Circuit, error) {
	if int(p) < 0 || int(p) >= s.cfg.Radix {
		return nil, ErrPortRange
	}
	if s.portFailed[p] {
		return nil, nil
	}
	s.portFailed[p] = true
	var dropped []Circuit
	for n, so := range s.conn {
		if so == -1 {
			continue
		}
		if PortID(n) != p && PortID(so) != p {
			continue
		}
		c := Circuit{North: PortID(n), South: PortID(so), InsertionLossDB: s.loss[[2]int{n, so}]}
		_ = s.Disconnect(PortID(n))
		dropped = append(dropped, c)
		s.droppedByFRU++
		if s.metricDrops != nil {
			s.metricDrops.Inc()
		}
	}
	return dropped, nil
}

// RepairPort returns a failed port to service (after a pigtail replacement
// or collimator repair).
func (s *Switch) RepairPort(p PortID) error {
	if int(p) < 0 || int(p) >= s.cfg.Radix {
		return ErrPortRange
	}
	if !s.portFailed[p] {
		return fmt.Errorf("ocs: port %d not failed", p)
	}
	s.portFailed[p] = false
	return nil
}

// SpareFor allocates one of the reserved spare ports (the top SparePorts of
// the radix) to stand in for a failed production port: the field tech
// repatches the damaged fiber to the spare position and the control plane
// reprograms. It returns ErrNoSpare when the pool is exhausted.
func (s *Switch) SpareFor(failed PortID) (PortID, error) {
	if int(failed) < 0 || int(failed) >= s.cfg.Radix {
		return 0, ErrPortRange
	}
	if !s.portFailed[failed] {
		return 0, fmt.Errorf("ocs: port %d is healthy; no spare needed", failed)
	}
	if s.spareUsed == nil {
		s.spareUsed = make(map[int]bool)
	}
	for p := s.cfg.Radix - s.cfg.SparePorts; p < s.cfg.Radix; p++ {
		if s.portFailed[p] || s.spareUsed[p] {
			continue
		}
		s.spareUsed[p] = true
		return PortID(p), nil
	}
	return 0, ErrNoSpare
}

// SparesLeft returns the number of unallocated healthy spare ports.
func (s *Switch) SparesLeft() int {
	n := 0
	for p := s.cfg.Radix - s.cfg.SparePorts; p < s.cfg.Radix; p++ {
		if !s.portFailed[p] && !s.spareUsed[p] {
			n++
		}
	}
	return n
}

// FailPSU marks power supply i (0 or 1) failed. The supplies are redundant:
// the chassis stays up unless both fail.
func (s *Switch) FailPSU(i int) error {
	if i < 0 || i > 1 {
		return fmt.Errorf("ocs: psu %d out of range", i)
	}
	s.psu[i] = false
	s.updateUp()
	return nil
}

// ReplacePSU hot-swaps power supply i back.
func (s *Switch) ReplacePSU(i int) error {
	if i < 0 || i > 1 {
		return fmt.Errorf("ocs: psu %d out of range", i)
	}
	s.psu[i] = true
	s.updateUp()
	return nil
}

// FailFan marks fan i failed. Cooling tolerates a single fan failure.
func (s *Switch) FailFan(i int) error {
	if i < 0 || i >= len(s.fans) {
		return fmt.Errorf("ocs: fan %d out of range", i)
	}
	s.fans[i] = false
	s.updateUp()
	return nil
}

// ReplaceFan hot-swaps fan i back.
func (s *Switch) ReplaceFan(i int) error {
	if i < 0 || i >= len(s.fans) {
		return fmt.Errorf("ocs: fan %d out of range", i)
	}
	s.fans[i] = true
	s.updateUp()
	return nil
}

func (s *Switch) updateUp() {
	wasUp := s.up
	psuOK := s.psu[0] || s.psu[1]
	fanFailures := 0
	for _, ok := range s.fans {
		if !ok {
			fanFailures++
		}
	}
	s.up = psuOK && fanFailures <= 1
	if wasUp && !s.up {
		// Chassis down: MEMS mirrors are not latching (Table C.1), so all
		// circuit state is lost.
		for n, so := range s.conn {
			if so != -1 {
				_ = s.Disconnect(PortID(n))
				s.droppedByFRU++
			}
		}
	}
}

// DroppedByFRU returns the cumulative number of circuits dropped by
// hardware failures.
func (s *Switch) DroppedByFRU() int64 { return s.droppedByFRU }
