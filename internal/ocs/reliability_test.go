package ocs

import (
	"errors"
	"testing"

	"lightwave/internal/sim"
)

func TestLifetimeFieldAvailability(t *testing.T) {
	// §4.1.1: "greater than 99.98% availability in the field". Average
	// over a fleet to wash out sampling noise.
	av, err := FleetAvailability(DefaultReliability(), 10, 40, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if av < 0.9998 {
		t.Fatalf("fleet availability = %.6f, want > 0.9998", av)
	}
	if av >= 1 {
		t.Fatalf("fleet availability = %v with maintenance windows enabled", av)
	}
}

func TestLifetimeReportConsistency(t *testing.T) {
	rep, err := SimulateLifetime(DefaultReliability(), 20, sim.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Availability < 0 || rep.Availability > 1 {
		t.Fatalf("availability = %v", rep.Availability)
	}
	if rep.DowntimeHours < 0 {
		t.Fatalf("downtime = %v", rep.DowntimeHours)
	}
	// Over 20 years some FRU activity is near-certain with these MTBFs.
	if rep.FRUReplaced == 0 && rep.MirrorFailures == 0 {
		t.Error("20-year lifetime with zero component events is implausible")
	}
}

func TestLifetimeErrors(t *testing.T) {
	if _, err := SimulateLifetime(DefaultReliability(), 0, nil); !errors.Is(err, ErrBadLifetime) {
		t.Fatalf("err = %v", err)
	}
	if _, err := FleetAvailability(DefaultReliability(), 1, 0, nil); !errors.Is(err, ErrBadLifetime) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorseMTBFWorseAvailability(t *testing.T) {
	good := DefaultReliability()
	bad := good
	bad.ControlMTBFHours = 2000
	bad.RepairHours = 72
	avGood, err := FleetAvailability(good, 5, 20, sim.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	avBad, err := FleetAvailability(bad, 5, 20, sim.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if avBad >= avGood {
		t.Fatalf("degraded MTBF/MTTR did not reduce availability: %v vs %v", avBad, avGood)
	}
}

func TestRedundancyAbsorbsSingleFaults(t *testing.T) {
	// With maintenance disabled and generous repair, single PSU/fan
	// failures never down the chassis — availability should be ≈1.
	p := DefaultReliability()
	p.MaintenancePerYear = 0
	p.ControlMTBFHours = 1e12 // exclude the single point of failure
	p.RepairHours = 1
	rep, err := SimulateLifetime(p, 10, sim.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Availability < 0.99999 {
		t.Fatalf("availability = %v with full redundancy", rep.Availability)
	}
}

func TestMirrorSparesAbsorbFailures(t *testing.T) {
	// With 80 on-die spares and the default per-mirror MTBF, a 10-year
	// lifetime should essentially never exhaust spares.
	rep, err := SimulateLifetime(DefaultReliability(), 10, sim.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PortsLost != 0 {
		t.Fatalf("%d ports lost in 10 years", rep.PortsLost)
	}
}

func TestMaintenanceDominatesDowntime(t *testing.T) {
	// With the calibrated parameters the scheduled maintenance windows
	// are a visible share of downtime — availability without them must be
	// strictly better.
	with := DefaultReliability()
	without := with
	without.MaintenancePerYear = 0
	avWith, err := FleetAvailability(with, 10, 20, sim.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	avWithout, err := FleetAvailability(without, 10, 20, sim.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	if avWithout <= avWith {
		t.Fatalf("maintenance-free fleet not more available: %v vs %v", avWithout, avWith)
	}
}
