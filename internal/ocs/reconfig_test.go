package ocs

import (
	"errors"
	"testing"
	"testing/quick"

	"lightwave/internal/sim"
)

func TestApplyBuildsPermutation(t *testing.T) {
	s := newTestSwitch(t)
	p := Permutation{0: 5, 1: 6, 2: 7}
	res, err := s.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed != 3 || len(res.Established) != 3 {
		t.Fatalf("result = %+v", res)
	}
	for n, so := range p {
		if got, ok := s.ConnectionOf(n); !ok || got != so {
			t.Errorf("port %d -> %v (%v), want %d", n, got, ok, so)
		}
	}
}

func TestApplyLeavesUntouchedCircuitsUndisturbed(t *testing.T) {
	// §2.3 requirement: keep certain connections undisturbed while making
	// changes elsewhere. Untouched circuits must keep identical loss.
	s := newTestSwitch(t)
	keep := mustConnect(t, s, 0, 100)
	mustConnect(t, s, 1, 101)
	res, err := s.Apply(Permutation{1: 102, 2: 103})
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed != 2 {
		t.Fatalf("Changed = %d", res.Changed)
	}
	got, ok := s.ConnectionOf(0)
	if !ok || got != 100 {
		t.Fatal("untouched circuit disturbed")
	}
	for _, c := range s.Circuits() {
		if c.North == 0 && c.InsertionLossDB != keep.InsertionLossDB {
			t.Error("untouched circuit loss changed (was realigned)")
		}
	}
}

func TestApplyRejectsStealingBusySouth(t *testing.T) {
	s := newTestSwitch(t)
	mustConnect(t, s, 0, 100)
	_, err := s.Apply(Permutation{1: 100})
	if !errors.Is(err, ErrPortBusy) {
		t.Fatalf("err = %v, want ErrPortBusy", err)
	}
	// Original circuit must be intact after the rejected apply.
	if got, ok := s.ConnectionOf(0); !ok || got != 100 {
		t.Fatal("rejected apply disturbed existing circuit")
	}
}

func TestApplyAllowsRotation(t *testing.T) {
	// Moving a set of circuits among themselves in one batch is legal.
	s := newTestSwitch(t)
	mustConnect(t, s, 0, 10)
	mustConnect(t, s, 1, 11)
	_, err := s.Apply(Permutation{0: 11, 1: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s.ConnectionOf(0); got != 11 {
		t.Errorf("0 -> %d, want 11", got)
	}
	if got, _ := s.ConnectionOf(1); got != 10 {
		t.Errorf("1 -> %d, want 10", got)
	}
}

func TestApplyIdempotentConnectionsNotCounted(t *testing.T) {
	s := newTestSwitch(t)
	mustConnect(t, s, 0, 10)
	res, err := s.Apply(Permutation{0: 10, 1: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed != 1 {
		t.Fatalf("Changed = %d, want 1 (0->10 already in place)", res.Changed)
	}
}

func TestApplyRejectsDuplicateSouth(t *testing.T) {
	s := newTestSwitch(t)
	_, err := s.Apply(Permutation{0: 5, 1: 5})
	if !errors.Is(err, ErrNotBijective) {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyOutOfRange(t *testing.T) {
	s := newTestSwitch(t)
	if _, err := s.Apply(Permutation{0: 999}); !errors.Is(err, ErrPortRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyBatchDurationIsParallel(t *testing.T) {
	// All mirrors move concurrently: a 50-circuit batch should take about
	// one connection's setup time, not 50×.
	s := newTestSwitch(t)
	p := Permutation{}
	for i := 0; i < 50; i++ {
		p[PortID(i)] = PortID(i + 60)
	}
	res, err := s.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := New(DefaultConfig())
	c, _ := single.Connect(0, 1)
	if res.Duration > 2*c.SetupTime {
		t.Errorf("batch duration %.4f s, single setup %.4f s: not parallel", res.Duration, c.SetupTime)
	}
}

func TestFullPermutation(t *testing.T) {
	p, err := FullPermutation([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 2 || p[1] != 0 || p[2] != 1 {
		t.Fatalf("p = %v", p)
	}
	if _, err := FullPermutation([]int{0, 0}); !errors.Is(err, ErrNotBijective) {
		t.Errorf("duplicate accepted: %v", err)
	}
	if _, err := FullPermutation([]int{1, 2}); !errors.Is(err, ErrNotBijective) {
		t.Errorf("out-of-range accepted: %v", err)
	}
}

func TestApplyPropertyPreservesBijection(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s, _ := New(DefaultConfig())
		r := sim.NewRand(seed)
		for round := 0; round < 10; round++ {
			p := Permutation{}
			perm := r.Perm(136)
			k := r.Intn(30)
			for i := 0; i < k; i++ {
				p[PortID(perm[i])] = PortID(perm[(i+40)%136])
			}
			_, _ = s.Apply(p) // may fail; state must stay consistent
			seen := make(map[PortID]bool)
			for _, c := range s.Circuits() {
				if seen[c.South] {
					return false
				}
				seen[c.South] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}
