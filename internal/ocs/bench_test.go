package ocs

import "testing"

func BenchmarkConnectDisconnect(b *testing.B) {
	s, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		n := PortID(i % 136)
		so := PortID((i + 17) % 136)
		if _, err := s.Connect(n, so); err != nil {
			b.Fatal(err)
		}
		if err := s.Disconnect(n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyFullPermutation(b *testing.B) {
	perm := make([]int, 136)
	for i := range perm {
		perm[i] = (i + 67) % 136
	}
	p, err := FullPermutation(perm)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Apply(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntrinsicLoss(b *testing.B) {
	s, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = s.IntrinsicLossDB(PortID(i%136), PortID((i*31)%136))
	}
}

func BenchmarkLifetimeSimulation(b *testing.B) {
	p := DefaultReliability()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateLifetime(p, 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}
