package ctlrpc

import (
	"context"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

// memBackend is a minimal in-memory fleet.Backend for wire-level tests.
type memBackend struct {
	mu     sync.Mutex
	slices map[string]topo.Shape
	fail   error
}

func newMemBackend() *memBackend { return &memBackend{slices: make(map[string]topo.Shape)} }

func (b *memBackend) setFail(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fail = err
}

func (b *memBackend) Ensure(name string, shape topo.Shape, cubes []int) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fail != nil {
		return false, b.fail
	}
	prev, ok := b.slices[name]
	b.slices[name] = shape
	return !ok || prev != shape, nil
}

func (b *memBackend) Destroy(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fail != nil {
		return b.fail
	}
	delete(b.slices, name)
	return nil
}

func (b *memBackend) Slices() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var names []string
	for n := range b.slices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (b *memBackend) Info() fleet.PodInfo {
	return fleet.PodInfo{InstalledCubes: 64, FreeCubes: 64, Slices: b.Slices()}
}

// startFleetServer brings up a manager with the given pods behind a
// FleetServer and returns a dialer for fresh clients.
func startFleetServer(t *testing.T, pods map[string]fleet.Backend) (dial func() *Client, m *fleet.Manager) {
	t.Helper()
	m = fleet.NewManager(fleet.Options{
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      8 * time.Millisecond,
		QuarantineAfter: 3,
	})
	t.Cleanup(m.Close)
	for name, b := range pods {
		if err := m.AddPod(name, b); err != nil {
			t.Fatal(err)
		}
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = NewFleetServer(m).Serve(ctx, lis)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return func() *Client {
		c, err := Dial(lis.Addr().String(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}, m
}

func TestFleetApplyIntentAndWatchOverWire(t *testing.T) {
	b0, b1 := newMemBackend(), newMemBackend()
	dial, _ := startFleetServer(t, map[string]fleet.Backend{"p0": b0, "p1": b1})

	// Watch on a dedicated connection, established before intents land.
	wc := dial()
	stream, err := wc.Watch()
	if err != nil {
		t.Fatal(err)
	}
	// The watch connection rejects unary calls.
	if _, err := wc.FleetStatus(); err != ErrClientStreaming {
		t.Fatalf("unary call on watch conn: %v", err)
	}

	c := dial()
	res, err := c.ApplyIntent(ApplyIntentParams{Pod: "p0", Slices: []SliceIntentSpec{
		{Name: "a", Shape: [3]int{4, 4, 8}},
		{Name: "b", Shape: [3]int{4, 4, 4}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 {
		t.Fatalf("accepted = %d", res.Accepted)
	}
	if _, err := c.ApplyIntent(ApplyIntentParams{Pod: "p1", Slices: []SliceIntentSpec{
		{Name: "c", Shape: [3]int{4, 4, 4}},
	}}); err != nil {
		t.Fatal(err)
	}

	// The stream must deliver a slice-ready event for every applied intent.
	want := map[string]bool{"p0/a": true, "p0/b": true, "p1/c": true}
	deadline := time.Now().Add(10 * time.Second)
	for len(want) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("still waiting for %v", want)
		}
		ev, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type == string(fleet.EventSliceReady) {
			delete(want, ev.Pod+"/"+ev.Slice)
		}
	}

	st, err := c.FleetStatus()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Pods) != 2 {
		t.Fatalf("pods = %+v", st.Pods)
	}
	for _, ps := range st.Pods {
		if !ps.Converged {
			t.Errorf("pod %s not converged: %+v", ps.Name, ps)
		}
	}
	if got := b0.Slices(); len(got) != 2 {
		t.Fatalf("p0 slices = %v", got)
	}

	// Remove over the wire.
	if _, err := c.ApplyIntent(ApplyIntentParams{Pod: "p0", Slices: []SliceIntentSpec{
		{Name: "a", Remove: true},
	}}); err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type == string(fleet.EventSliceRemoved) && ev.Pod == "p0" && ev.Slice == "a" {
			break
		}
	}
}

func TestFleetDrainUndrainOverWire(t *testing.T) {
	b := newMemBackend()
	dial, m := startFleetServer(t, map[string]fleet.Backend{"p0": b})
	c := dial()

	if _, err := c.ApplyIntent(ApplyIntentParams{Pod: "p0", Slices: []SliceIntentSpec{
		{Name: "a", Shape: [3]int{4, 4, 4}},
	}}); err != nil {
		t.Fatal(err)
	}
	waitPod(t, m, "p0", func(ps fleet.PodStatus) bool { return ps.Converged && len(ps.ActualSlices) == 1 })

	if err := c.Drain("p0", nil); err != nil {
		t.Fatal(err)
	}
	waitPod(t, m, "p0", func(ps fleet.PodStatus) bool { return ps.Drained && len(ps.ActualSlices) == 0 })

	if err := c.Undrain("p0", nil); err != nil {
		t.Fatal(err)
	}
	waitPod(t, m, "p0", func(ps fleet.PodStatus) bool { return !ps.Drained && len(ps.ActualSlices) == 1 })

	// OCS-level drain round-trips too.
	ocs := 5
	if err := c.Drain("p0", &ocs); err != nil {
		t.Fatal(err)
	}
	st, err := c.FleetStatus()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Pods) != 1 || len(st.Pods[0].DrainedOCS) != 1 || st.Pods[0].DrainedOCS[0] != 5 {
		t.Fatalf("status = %+v", st.Pods)
	}
	if err := c.Undrain("p0", &ocs); err != nil {
		t.Fatal(err)
	}
}

func waitPod(t *testing.T, m *fleet.Manager, pod string, pred func(fleet.PodStatus) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ps, err := m.PodStatus(pod)
		if err != nil {
			t.Fatal(err)
		}
		if pred(ps) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pod %s never reached state; last = %+v", pod, ps)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFleetErrorsOverWire(t *testing.T) {
	dial, _ := startFleetServer(t, map[string]fleet.Backend{"p0": newMemBackend()})
	c := dial()
	if _, err := c.ApplyIntent(ApplyIntentParams{Pod: "ghost", Slices: []SliceIntentSpec{
		{Name: "a", Shape: [3]int{4, 4, 4}},
	}}); err == nil || !strings.Contains(err.Error(), "no such pod") {
		t.Fatalf("unknown pod: %v", err)
	}
	if _, err := c.ApplyIntent(ApplyIntentParams{Slices: []SliceIntentSpec{
		{Name: "a", Shape: [3]int{4, 4, 4}},
	}}); err == nil || !strings.Contains(err.Error(), "missing pod") {
		t.Fatalf("missing pod: %v", err)
	}
	if _, err := c.ApplyIntent(ApplyIntentParams{Pod: "p0", Replace: true, Slices: []SliceIntentSpec{
		{Name: "a", Remove: true},
	}}); err == nil || !strings.Contains(err.Error(), "remove is meaningless") {
		t.Fatalf("replace+remove: %v", err)
	}
	if err := c.Drain("ghost", nil); err == nil {
		t.Fatal("drain of unknown pod accepted")
	}
	if err := c.call("bogus", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("unknown method: %v", err)
	}
}
