package ctlrpc

import "lightwave/internal/te"

// LoopTEProvider adapts a te.Loop to the TEStatusProvider interface, so
// both daemons serve te-status with one line of wiring.
type LoopTEProvider struct {
	L *te.Loop
}

// TEStatus implements TEStatusProvider.
func (p LoopTEProvider) TEStatus() TEStatusResult {
	s := p.L.Status()
	return TEStatusResult{
		Enabled:                   true,
		Blocks:                    s.Blocks,
		Uplinks:                   s.Uplinks,
		Epoch:                     s.Epoch,
		Reconfigs:                 s.Reconfigs,
		SkippedReconfigs:          s.SkippedReconfigs,
		Stages:                    s.Stages,
		TrunksMoved:               s.TrunksMoved,
		LastGain:                  s.LastGain,
		LastPredictionError:       s.LastPredictionError,
		MinResidualFraction:       s.MinResidualFraction,
		DrainedCapacityBpsSeconds: s.DrainedCapacityBpsSeconds,
		LastReconfigEpoch:         s.LastReconfigEpoch,
		LastReason:                s.LastReason,
		CurrentTrunks:             s.CurrentTrunks,
	}
}
