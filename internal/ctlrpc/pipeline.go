package ctlrpc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lightwave/internal/telemetry"
)

// Per-connection request pipeline shared by the fabric and fleet servers.
//
// The old servers ran decode → execute → encode strictly sequentially per
// connection, so a slow mutation stalled every queued request and encoding
// never overlapped execution. The pipeline splits the stages: one reader
// goroutine decodes newline-delimited requests, a small worker pool
// executes them (read-only methods run concurrently under the server's
// RWMutex), and one writer goroutine drains encoded responses through a
// buffered writer, coalescing bursts of pipelined responses into a single
// flush/syscall. Responses are matched to requests by ID, so out-of-order
// completion is part of the protocol contract.

const (
	// DefaultMaxRequestBytes caps one request line. Oversized lines are
	// drained and answered with a typed "request too large" error instead
	// of killing the connection (the old bufio.Scanner path dropped the
	// conn with no response at all).
	DefaultMaxRequestBytes = 4 << 20

	// connWorkers is the per-connection execution width. Read-heavy
	// pollers (status/metrics/te-status/...) overlap under the server's
	// read lock; mutations still serialize on the write lock.
	connWorkers = 4

	// writeBufBytes sizes the per-connection buffered writer responses
	// are coalesced into.
	writeBufBytes = 32 * 1024
)

// ctlMetrics carries the control-plane serving metrics both daemons expose
// on /metrics. A nil *ctlMetrics is a valid no-op.
type ctlMetrics struct {
	requests *telemetry.Counter
	inflight *telemetry.Gauge
	latency  *telemetry.Distribution
}

// latencyBounds buckets request latency from 1µs to 5s.
var latencyBounds = []float64{
	1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1, 2, 5,
}

func newCtlMetrics(reg *telemetry.Registry) *ctlMetrics {
	if reg == nil {
		return nil
	}
	return &ctlMetrics{
		requests: reg.Counter("ctl_requests_total"),
		inflight: reg.Gauge("ctl_inflight"),
		latency:  reg.Distribution("ctl_request_latency_seconds", latencyBounds...),
	}
}

func (m *ctlMetrics) begin() time.Time {
	if m == nil {
		return time.Time{}
	}
	m.inflight.Add(1)
	return time.Now()
}

func (m *ctlMetrics) end(start time.Time) {
	if m == nil {
		return
	}
	m.inflight.Add(-1)
	m.requests.Inc()
	m.latency.Observe(time.Since(start).Seconds())
}

// abort undoes begin without recording a request — used when an inline
// attempt declines and the request is re-counted on the worker path.
func (m *ctlMetrics) abort() {
	if m == nil {
		return
	}
	m.inflight.Add(-1)
}

// connWriter owns the connection's write half. Senders encode responses
// directly into a shared batch buffer under a mutex and nudge the flusher
// through a one-slot wake channel; the flusher swaps in an empty buffer
// and writes the whole batch in one syscall. Compared to a line-per-
// channel-element design this makes goroutine wakeups per-batch instead
// of per-response, which is most of the win on loaded connections.
type connWriter struct {
	mu     sync.Mutex
	buf    []byte        // responses encoded since the last flush
	closed bool          // no more sends; flush what remains and exit
	kick   chan struct{} // one-slot wake signal for the flusher
	sent   atomic.Int64  // total responses encoded; batch-growth probe
	done   chan struct{}
	failed atomic.Bool
}

func newConnWriter() *connWriter {
	return &connWriter{
		buf:  make([]byte, 0, writeBufBytes),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
}

func (w *connWriter) run(conn net.Conn) {
	defer close(w.done)
	local := make([]byte, 0, writeBufBytes)
	for range w.kick {
		// Yield while the batch is still growing: each yield lets runnable
		// workers encode the responses they just finished, so one write
		// (one syscall) carries the whole burst instead of one response
		// each. Stop as soon as a yield adds nothing — latency only pays
		// for batching that actually happens.
		for prev, spins := w.sent.Load(), 0; spins < 4; spins++ {
			runtime.Gosched()
			n := w.sent.Load()
			if n <= prev {
				break
			}
			prev = n
		}
		w.mu.Lock()
		local, w.buf = w.buf, local[:0]
		closed := w.closed
		w.mu.Unlock()
		if len(local) > 0 {
			if _, err := conn.Write(local); err != nil {
				// Closing the connection wakes the reader; workers keep
				// appending into a buffer nobody flushes, which is bounded
				// by the requests already in flight.
				w.failed.Store(true)
				conn.Close()
				return
			}
		}
		if closed {
			return
		}
	}
}

// send enqueues one response; it reports false once the write half failed
// (useful for event streams that should stop pumping a dead connection).
func (w *connWriter) send(resp Response) bool {
	w.mu.Lock()
	w.buf = appendResponse(w.buf, &resp)
	w.mu.Unlock()
	w.sent.Add(1)
	select {
	case w.kick <- struct{}{}:
	default: // flusher already scheduled to run
	}
	return !w.failed.Load()
}

// sendBytes appends a batch of pre-encoded responses in one buffer-lock
// acquisition — the reader's inline batch takes this path, so a burst of
// cached reads costs one lock and at most one flusher wakeup.
func (w *connWriter) sendBytes(b []byte) bool {
	if len(b) == 0 {
		return !w.failed.Load()
	}
	w.mu.Lock()
	w.buf = append(w.buf, b...)
	w.mu.Unlock()
	w.sent.Add(1)
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return !w.failed.Load()
}

// close flushes whatever is still buffered and stops the flusher. It must
// only be called after the last send.
func (w *connWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.done
}

// watchHook intercepts one method before it reaches the worker pool,
// dedicating the connection to a server-push stream. It runs after all
// in-flight workers for the connection have drained.
type watchHook struct {
	method string
	run    func(ctx context.Context, send func(Response) bool, id uint64)
}

// servePipelinedConn runs the pipelined request loop for one connection.
// maxLine ≤ 0 uses DefaultMaxRequestBytes. inline, when non-nil, gives the
// reader a chance to execute a request in place of the worker handoff; it
// must decline (ok=false) rather than block, and a batch of inline-served
// requests then completes synchronously inside one read timeslice — the
// whole response batch is already encoded when the flusher next runs.
func servePipelinedConn(ctx context.Context, conn net.Conn, maxLine int, m *ctlMetrics, dispatch func(Request) Response, inline func(Request) (Response, bool), watch *watchHook) {
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	if maxLine <= 0 {
		maxLine = DefaultMaxRequestBytes
	}

	w := newConnWriter()
	go w.run(conn)

	reqCh := make(chan Request, connWorkers)
	var wg sync.WaitGroup
	for i := 0; i < connWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range reqCh {
				start := m.begin()
				resp := dispatch(req)
				m.end(start)
				w.send(resp)
			}
		}()
	}

	var watchID uint64
	watching := false
	br := bufio.NewReaderSize(conn, 64*1024)
	// inlineBuf accumulates inline-served responses while more complete
	// requests are already buffered, so a pipelined burst of cached reads
	// reaches the flusher as one append instead of one per response.
	var inlineBuf []byte
	// Hoisted out of the loop: &req escapes into parseRequest, so an
	// in-loop declaration heap-allocates per request. Each channel send
	// copies the value, so reuse is safe.
	var req Request
	for {
		line, tooLong, err := readLimitedLine(br, maxLine)
		if tooLong {
			// The request was drained without killing the connection;
			// answer with the typed error under whatever ID we could
			// salvage from the line's prefix.
			w.send(Response{
				ID:    peekRequestID(line),
				Error: fmt.Sprintf("%s: request line exceeds %d bytes", errRequestTooLarge, maxLine),
			})
			continue
		}
		if err != nil {
			break
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if uerr := parseRequest(line, &req); uerr != nil {
			w.send(Response{Error: fmt.Sprintf("bad request: %v", uerr)})
			continue
		}
		if watch != nil && req.Method == watch.method {
			watchID = req.ID
			watching = true
			break
		}
		if inline != nil {
			// Inline execution consumes Params before the next read, so
			// the buffer-aliasing fast-path slices need no detach copy.
			start := m.begin()
			if resp, ok := inline(req); ok {
				m.end(start)
				inlineBuf = appendResponse(inlineBuf, &resp)
				if !hasCompleteLine(br) {
					// The next read may block; hand the accumulated batch
					// to the flusher before parking.
					w.sendBytes(inlineBuf)
					inlineBuf = inlineBuf[:0]
				}
				continue
			}
			m.abort() // the worker path re-counts the request
		}
		// The fast-path Params alias the reader buffer; the worker outlives
		// the next read, so detach them.
		if len(req.Params) != 0 {
			req.Params = append(json.RawMessage(nil), req.Params...)
		}
		if len(inlineBuf) > 0 {
			// The worker handoff below may block on a busy pool; finished
			// inline responses must not wait behind it.
			w.sendBytes(inlineBuf)
			inlineBuf = inlineBuf[:0]
		}
		reqCh <- req
	}

	w.sendBytes(inlineBuf) // responses still parked when the loop exited
	close(reqCh)
	wg.Wait()
	if watching {
		// The connection is now dedicated to the stream; in-flight unary
		// responses are already queued, and the client demuxes by ID.
		watch.run(ctx, w.send, watchID)
	}
	w.close()
}

// readLimitedLine reads one newline-terminated line, growing up to max
// bytes. When the line exceeds max it drains the remainder and returns
// tooLong=true with the first-kilobyte prefix (for request-ID salvage).
// json.Unmarshal of the returned line must complete before the next call:
// the slice aliases the reader's internal buffer.
func readLimitedLine(br *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	frag, err := br.ReadSlice('\n')
	if err == nil || err == io.EOF {
		// The line (or final unterminated fragment) is fully consumed;
		// nothing is left to drain even if it is over the cap.
		if err == io.EOF && len(frag) == 0 {
			return nil, false, io.EOF
		}
		if len(frag) > max {
			return capPrefix(frag), true, nil
		}
		return frag, false, nil
	}
	if err != bufio.ErrBufferFull {
		return nil, false, err
	}
	// Line longer than the reader's buffer: accumulate up to max.
	acc := append([]byte(nil), frag...)
	for {
		frag, err = br.ReadSlice('\n')
		acc = append(acc, frag...)
		switch err {
		case nil, io.EOF:
			if len(acc) > max {
				return capPrefix(acc), true, nil
			}
			return acc, false, nil
		case bufio.ErrBufferFull:
			if len(acc) > max {
				// Over the cap with the newline still ahead: discard the
				// rest of the line so the next read starts a fresh request.
				return capPrefix(acc), true, drainLine(br)
			}
		default:
			return nil, false, err
		}
	}
}

// hasCompleteLine reports whether the reader already holds a full request
// line, i.e. whether the next read is guaranteed not to block.
func hasCompleteLine(br *bufio.Reader) bool {
	n := br.Buffered()
	if n == 0 {
		return false
	}
	peek, _ := br.Peek(n)
	return bytes.IndexByte(peek, '\n') >= 0
}

// drainLine discards input until the end of the current (overlong) line.
func drainLine(br *bufio.Reader) error {
	for {
		_, err := br.ReadSlice('\n')
		switch err {
		case bufio.ErrBufferFull:
			continue
		case nil, io.EOF:
			return nil
		default:
			return err
		}
	}
}

// capPrefix copies at most 1 KB of an oversized line so the reader buffer
// can be reused while the error response is built.
func capPrefix(b []byte) []byte {
	if len(b) > 1024 {
		b = b[:1024]
	}
	return append([]byte(nil), b...)
}

// peekRequestID salvages the "id" field from an oversized request's
// prefix so the typed error lands on the right pending call. The client
// marshals Request with id first, so the field is almost always within
// the first kilobyte; 0 (matching no call) is returned when it is not.
func peekRequestID(prefix []byte) uint64 {
	i := bytes.Index(prefix, []byte(`"id"`))
	if i < 0 {
		return 0
	}
	i += len(`"id"`)
	for i < len(prefix) && (prefix[i] == ':' || prefix[i] == ' ' || prefix[i] == '\t') {
		i++
	}
	var id uint64
	start := i
	for i < len(prefix) && prefix[i] >= '0' && prefix[i] <= '9' {
		id = id*10 + uint64(prefix[i]-'0')
		i++
	}
	if i == start {
		return 0
	}
	return id
}
