package ctlrpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lightwave/internal/telemetry"
)

// Closed-loop control-plane load harness: K connections × M in-flight
// callers per connection hammer one daemon with a single method and
// report sustained request rate plus latency quantiles. This is the
// committed measurement behind `make bench-ctl` — the paper's control
// plane programs thousands of OCS ports through the same management
// interfaces as the rest of the network, so the management protocol
// itself has to sustain fleet-scale request rates.

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Addr is the daemon's ctlrpc address.
	Addr string
	// Conns is the number of client connections (K). Default 1.
	Conns int
	// InFlight is the number of concurrent callers per connection (M);
	// each caller keeps one request in flight, so the run sustains K×M
	// outstanding requests. Default 1.
	InFlight int
	// Method is the method under load; it must need no params. Default
	// MethodStatus.
	Method string
	// Requests is the total request budget across all callers. Default
	// 1000.
	Requests int
	// Timeout bounds the whole run. It is enforced by closing the
	// clients — every in-flight call then fails fast with
	// ErrClientBroken — rather than by threading a cancellable context
	// through each call, so the closed loop is not taxed with select
	// machinery per request. Default 60s.
	Timeout time.Duration
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Method         string  `json:"method"`
	Conns          int     `json:"conns"`
	InFlight       int     `json:"inFlight"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	ReqPerSec      float64 `json:"reqPerSec"`
	P50Seconds     float64 `json:"p50Seconds"`
	P99Seconds     float64 `json:"p99Seconds"`
	// IDMismatches counts responses dropped for an unknown request ID
	// across all connections; anything but 0 is a framing bug.
	IDMismatches int64 `json:"idMismatches"`
}

func (r LoadReport) String() string {
	return fmt.Sprintf("%s %dx%d: %.0f req/s over %d requests (p50 %.0fµs, p99 %.0fµs, %d errors, %d id mismatches)",
		r.Method, r.Conns, r.InFlight, r.ReqPerSec, r.Requests,
		r.P50Seconds*1e6, r.P99Seconds*1e6, r.Errors, r.IDMismatches)
}

// RunLoad executes one closed-loop run: every caller issues its next
// request as soon as the previous response lands, until the shared budget
// is spent or ctx cancels. Latency is sampled (one call in eight per
// caller) into a telemetry.Distribution; quantiles are
// bucket-interpolated.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.InFlight <= 0 {
		cfg.InFlight = 1
	}
	if cfg.Method == "" {
		cfg.Method = MethodStatus
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	clients := make([]*Client, cfg.Conns)
	for i := range clients {
		c, err := Dial(cfg.Addr, 5*time.Second)
		if err != nil {
			for _, prev := range clients[:i] {
				prev.Close()
			}
			return LoadReport{}, err
		}
		defer c.Close()
		clients[i] = c
	}
	// Timeout/cancellation fires by closing the clients: every blocked
	// call unwinds with ErrClientBroken, so the per-call path stays a
	// plain channel receive instead of a context select.
	go func() {
		<-ctx.Done()
		for _, c := range clients {
			c.Close()
		}
	}()

	lat := telemetry.NewDistribution(latencyBounds...)
	var (
		remaining = int64(cfg.Requests)
		done      atomic.Int64
		errs      atomic.Int64
		wg        sync.WaitGroup
	)
	start := time.Now()
	for _, c := range clients {
		for m := 0; m < cfg.InFlight; m++ {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				var myDone, myErrs int64
				defer func() {
					done.Add(myDone)
					errs.Add(myErrs)
				}()
				for i := 0; atomic.AddInt64(&remaining, -1) >= 0; i++ {
					// Latency is sampled 1-in-8 per caller: timing every
					// call costs two clock reads per request, which is
					// real overhead at these request rates and would
					// distort the throughput the harness exists to measure.
					sample := i&7 == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					// The result is discarded undecoded: the harness
					// measures the protocol, not the payload schema.
					err := c.call(cfg.Method, nil, nil)
					if sample {
						lat.Observe(time.Since(t0).Seconds())
					}
					myDone++
					if err != nil {
						myErrs++
						if ctx.Err() != nil || errors.Is(err, ErrClientBroken) {
							return
						}
					}
				}
			}(c)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	var mismatches int64
	for _, c := range clients {
		mismatches += c.UnknownResponses()
	}
	snap := lat.Snapshot()
	completed := int(done.Load())
	rep := LoadReport{
		Method:         cfg.Method,
		Conns:          cfg.Conns,
		InFlight:       cfg.InFlight,
		Requests:       completed,
		Errors:         int(errs.Load()),
		ElapsedSeconds: elapsed.Seconds(),
		P50Seconds:     snap.Quantile(0.50),
		P99Seconds:     snap.Quantile(0.99),
		IDMismatches:   mismatches,
	}
	if elapsed > 0 {
		rep.ReqPerSec = float64(completed) / elapsed.Seconds()
	}
	if err := ctx.Err(); err != nil && completed == 0 {
		return rep, err
	}
	return rep, nil
}
