package ctlrpc

// Fleet-scoped methods served by FleetServer (cmd/lwfleetd). They ride the
// same NDJSON framing as the per-fabric methods; MethodWatch upgrades the
// connection to a server-push event stream (every subsequent Response
// carries one event under the watch request's ID).
const (
	MethodFleetStatus = "fleet-status"
	MethodApplyIntent = "apply-intent"
	MethodDrain       = "drain"
	MethodUndrain     = "undrain"
	MethodWatch       = "watch"
)

// SliceIntentSpec is one slice's desired state inside an apply-intent call.
type SliceIntentSpec struct {
	Name  string `json:"name"`
	Shape [3]int `json:"shape"`
	// Cubes optionally pins placement; empty lets the pod place the slice.
	Cubes []int `json:"cubes,omitempty"`
	// Remove drops the slice from the desired state instead.
	Remove bool `json:"remove,omitempty"`
}

// ApplyIntentParams updates one pod's desired slice set.
type ApplyIntentParams struct {
	Pod    string            `json:"pod"`
	Slices []SliceIntentSpec `json:"slices"`
	// Replace swaps the pod's entire desired set for the given slices
	// (Remove entries are illegal) instead of merging.
	Replace bool `json:"replace,omitempty"`
}

// ApplyIntentResult acknowledges an intent update.
type ApplyIntentResult struct {
	Accepted int `json:"accepted"`
}

// DrainParams addresses a pod, or one OCS within it when OCS is set.
type DrainParams struct {
	Pod string `json:"pod"`
	OCS *int   `json:"ocs,omitempty"`
}

// FleetPodStatus reports one pod's reconcile state.
type FleetPodStatus struct {
	Name                string   `json:"name"`
	Drained             bool     `json:"drained,omitempty"`
	DrainedOCS          []int    `json:"drainedOcs,omitempty"`
	Quarantined         bool     `json:"quarantined,omitempty"`
	Converged           bool     `json:"converged"`
	ConsecutiveFailures int      `json:"consecutiveFailures,omitempty"`
	LastError           string   `json:"lastError,omitempty"`
	DesiredSlices       []string `json:"desiredSlices,omitempty"`
	ActualSlices        []string `json:"actualSlices,omitempty"`
	InstalledCubes      int      `json:"installedCubes"`
	FreeCubes           int      `json:"freeCubes"`
	Circuits            int      `json:"circuits"`
}

// FleetStatusResult reports fleet state.
type FleetStatusResult struct {
	Pods            []FleetPodStatus `json:"pods"`
	QueueDepth      int              `json:"queueDepth"`
	QuarantinedPods int              `json:"quarantinedPods"`
}

// WatchAck acknowledges a watch request before the event stream begins.
type WatchAck struct {
	Watching bool `json:"watching"`
}

// WatchEvent is one fleet event on a watch stream.
type WatchEvent struct {
	Seq        uint64 `json:"seq"`
	UnixMillis int64  `json:"unixMillis"`
	Pod        string `json:"pod"`
	Type       string `json:"type"`
	Slice      string `json:"slice,omitempty"`
	Detail     string `json:"detail,omitempty"`
}
