package ctlrpc

import (
	"context"
	"net"
	"testing"

	"lightwave/internal/core"
)

// benchServer brings up a fabric daemon for load benchmarks and returns
// its address.
func benchServer(b *testing.B) string {
	b.Helper()
	f, err := core.New(core.DefaultConfig(16))
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = NewServer(f).Serve(ctx, lis)
	}()
	b.Cleanup(func() {
		cancel()
		<-done
	})
	return lis.Addr().String()
}

// runLoadBench drives the closed-loop harness at K conns × M in-flight and
// reports sustained req/s plus latency quantiles as benchmark metrics. Each
// b.N iteration is one request, so ns/op is the per-request wall cost at
// that concurrency.
func runLoadBench(b *testing.B, conns, inflight int) {
	addr := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := RunLoad(context.Background(), LoadConfig{
		Addr:     addr,
		Conns:    conns,
		InFlight: inflight,
		Method:   MethodStatus,
		Requests: b.N,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("%d request errors", rep.Errors)
	}
	if rep.IDMismatches != 0 {
		b.Fatalf("%d request-ID mismatches", rep.IDMismatches)
	}
	b.ReportMetric(rep.ReqPerSec, "req/s")
	b.ReportMetric(rep.P50Seconds*1e6, "p50-µs")
	b.ReportMetric(rep.P99Seconds*1e6, "p99-µs")
}

// BenchmarkCtlRPCThroughput is the single-connection, single-in-flight
// baseline: the old client's lockstep request/response behaviour.
func BenchmarkCtlRPCThroughput(b *testing.B) {
	runLoadBench(b, 1, 1)
}

// BenchmarkCtlRPCPipelined is the headline configuration from the issue:
// 8 connections × 8 in-flight read-only requests. The acceptance bar is
// ≥5× the sustained req/s of BenchmarkCtlRPCThroughput in the same run.
func BenchmarkCtlRPCPipelined(b *testing.B) {
	runLoadBench(b, 8, 8)
}

// BenchmarkCtlRPCPipelinedOneConn isolates pipelining from connection
// fan-out: one connection, 8 requests in flight.
func BenchmarkCtlRPCPipelinedOneConn(b *testing.B) {
	runLoadBench(b, 1, 8)
}
