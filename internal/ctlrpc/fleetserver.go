package ctlrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"

	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

// FleetServer serves the fleet-scoped control protocol for a fleet.Manager
// (cmd/lwfleetd). Unlike the per-fabric Server it needs no dispatch lock:
// the manager is safe for concurrent use and reconciliation runs in its own
// workers, so slow pods never block the control socket.
type FleetServer struct {
	m     *fleet.Manager
	te    TEStatusProvider
	chaos ChaosProvider
	sched SchedProvider
}

// NewFleetServer wraps a fleet manager.
func NewFleetServer(m *fleet.Manager) *FleetServer {
	return &FleetServer{m: m}
}

// SetTE attaches a topology-engineering status provider. Call before
// Serve; a nil provider reports TE as disabled.
func (s *FleetServer) SetTE(p TEStatusProvider) { s.te = p }

// SetChaos attaches a fault-injection provider. Call before Serve; a nil
// provider reports chaos as disabled and rejects chaos-inject.
func (s *FleetServer) SetChaos(p ChaosProvider) { s.chaos = p }

// SetSched attaches a slice-scheduler provider. Call before Serve; a nil
// provider reports the scheduler disabled and rejects sched-submit.
func (s *FleetServer) SetSched(p SchedProvider) { s.sched = p }

// Serve accepts connections until the listener closes or ctx is cancelled.
func (s *FleetServer) Serve(ctx context.Context, lis net.Listener) error {
	return serveLoop(ctx, lis, s.handleConn)
}

func (s *FleetServer) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else if req.Method == MethodWatch {
			// The watch upgrade dedicates this connection to the event
			// stream; it ends when the client hangs up or ctx cancels.
			s.streamEvents(ctx, enc, req.ID)
			return
		} else {
			result, err := s.call(req.Method, req.Params)
			resp = marshalResponse(req.ID, result, err)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// streamEvents acknowledges the watch and pushes every fleet event as a
// Response carrying a WatchEvent, all under the watch request's ID.
func (s *FleetServer) streamEvents(ctx context.Context, enc *json.Encoder, id uint64) {
	sub := s.m.Subscribe(256)
	defer sub.Close()
	if err := enc.Encode(marshalResponse(id, WatchAck{Watching: true}, nil)); err != nil {
		return
	}
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			we := WatchEvent{
				Seq:        ev.Seq,
				UnixMillis: ev.Time.UnixMilli(),
				Pod:        ev.Pod,
				Type:       string(ev.Type),
				Slice:      ev.Slice,
				Detail:     ev.Detail,
			}
			if err := enc.Encode(marshalResponse(id, we, nil)); err != nil {
				return
			}
		}
	}
}

func (s *FleetServer) call(method string, params json.RawMessage) (any, error) {
	switch method {
	case MethodFleetStatus:
		st := s.m.Status()
		out := FleetStatusResult{
			QueueDepth:      st.QueueDepth,
			QuarantinedPods: st.QuarantinedPods,
		}
		for _, ps := range st.Pods {
			out.Pods = append(out.Pods, FleetPodStatus{
				Name:                ps.Name,
				Drained:             ps.Drained,
				DrainedOCS:          ps.DrainedOCS,
				Quarantined:         ps.Quarantined,
				Converged:           ps.Converged,
				ConsecutiveFailures: ps.ConsecutiveFailures,
				LastError:           ps.LastError,
				DesiredSlices:       ps.DesiredSlices,
				ActualSlices:        ps.ActualSlices,
				InstalledCubes:      ps.InstalledCubes,
				FreeCubes:           ps.FreeCubes,
				Circuits:            ps.Circuits,
			})
		}
		return out, nil

	case MethodApplyIntent:
		var p ApplyIntentParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		if p.Pod == "" {
			return nil, fmt.Errorf("apply-intent: missing pod")
		}
		if p.Replace {
			ins := make([]fleet.SliceIntent, 0, len(p.Slices))
			for _, sp := range p.Slices {
				if sp.Remove {
					return nil, fmt.Errorf("apply-intent: remove is meaningless with replace")
				}
				ins = append(ins, intentFromSpec(sp))
			}
			if err := s.m.ReplaceIntent(p.Pod, ins); err != nil {
				return nil, err
			}
			return ApplyIntentResult{Accepted: len(ins)}, nil
		}
		accepted := 0
		for _, sp := range p.Slices {
			var err error
			if sp.Remove {
				err = s.m.RemoveSliceIntent(p.Pod, sp.Name)
			} else {
				err = s.m.SetSliceIntent(p.Pod, intentFromSpec(sp))
			}
			if err != nil {
				return nil, err
			}
			accepted++
		}
		return ApplyIntentResult{Accepted: accepted}, nil

	case MethodDrain:
		var p DrainParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		if p.OCS != nil {
			return struct{}{}, s.m.DrainOCS(p.Pod, *p.OCS)
		}
		return struct{}{}, s.m.DrainPod(p.Pod)

	case MethodUndrain:
		var p DrainParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		if p.OCS != nil {
			return struct{}{}, s.m.UndrainOCS(p.Pod, *p.OCS)
		}
		return struct{}{}, s.m.UndrainPod(p.Pod)

	case MethodTEStatus:
		if s.te == nil {
			return TEStatusResult{}, nil
		}
		return s.te.TEStatus(), nil

	case MethodChaosInject, MethodChaosStatus:
		return chaosCall(s.chaos, method, func(v any) error { return json.Unmarshal(params, v) })

	case MethodSchedStatus, MethodSchedSubmit:
		return schedCall(s.sched, method, func(v any) error { return json.Unmarshal(params, v) })

	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

func intentFromSpec(sp SliceIntentSpec) fleet.SliceIntent {
	return fleet.SliceIntent{
		Name:  sp.Name,
		Shape: topo.Shape{X: sp.Shape[0], Y: sp.Shape[1], Z: sp.Shape[2]},
		Cubes: sp.Cubes,
	}
}
