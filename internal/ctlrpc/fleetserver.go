package ctlrpc

import (
	"context"
	"encoding/json"
	"fmt"
	"net"

	"lightwave/internal/fleet"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// FleetServer serves the fleet-scoped control protocol for a fleet.Manager
// (cmd/lwfleetd). Unlike the per-fabric Server it needs no dispatch lock:
// the manager is safe for concurrent use and reconciliation runs in its own
// workers, so slow pods never block the control socket. Each connection
// runs the shared decode/execute/encode pipeline, so pipelined clients get
// several requests in flight at once.
type FleetServer struct {
	m       *fleet.Manager
	te      TEStatusProvider
	chaos   ChaosProvider
	sched   SchedProvider
	wal     WALProvider
	metrics *ctlMetrics

	// MaxRequestBytes caps one request line; 0 means
	// DefaultMaxRequestBytes. Set before Serve.
	MaxRequestBytes int
}

// NewFleetServer wraps a fleet manager.
func NewFleetServer(m *fleet.Manager) *FleetServer {
	return &FleetServer{m: m}
}

// SetTE attaches a topology-engineering status provider. Call before
// Serve; a nil provider reports TE as disabled.
func (s *FleetServer) SetTE(p TEStatusProvider) { s.te = p }

// SetChaos attaches a fault-injection provider. Call before Serve; a nil
// provider reports chaos as disabled and rejects chaos-inject.
func (s *FleetServer) SetChaos(p ChaosProvider) { s.chaos = p }

// SetSched attaches a slice-scheduler provider. Call before Serve; a nil
// provider reports the scheduler disabled and rejects sched-submit.
func (s *FleetServer) SetSched(p SchedProvider) { s.sched = p }

// SetWAL attaches a durable-state status provider. Call before Serve; a
// nil provider reports the WAL as disabled.
func (s *FleetServer) SetWAL(p WALProvider) { s.wal = p }

// SetMetrics exposes ctl_requests_total / ctl_inflight /
// ctl_request_latency_seconds on the registry. Call before Serve.
func (s *FleetServer) SetMetrics(reg *telemetry.Registry) { s.metrics = newCtlMetrics(reg) }

// Serve accepts connections until the listener closes or ctx is cancelled.
func (s *FleetServer) Serve(ctx context.Context, lis net.Listener) error {
	return serveLoop(ctx, lis, s.handleConn)
}

func (s *FleetServer) handleConn(ctx context.Context, conn net.Conn) {
	// The watch upgrade dedicates the connection to the event stream: the
	// pipeline stops decoding further requests, drains in-flight workers,
	// and hands the writer to streamEvents until the client hangs up or
	// ctx cancels.
	// No inline hook: fleet methods call into the manager, whose own
	// locking the reader cannot probe with a TryRLock.
	servePipelinedConn(ctx, conn, s.MaxRequestBytes, s.metrics, s.dispatch, nil,
		&watchHook{method: MethodWatch, run: s.streamEvents})
}

func (s *FleetServer) dispatch(req Request) Response {
	result, err := s.call(req.Method, req.Params)
	return marshalResponse(req.ID, result, err)
}

// streamEvents acknowledges the watch and pushes every fleet event as a
// Response carrying a WatchEvent, all under the watch request's ID. send
// reports false once the connection's write half failed, which ends the
// stream.
func (s *FleetServer) streamEvents(ctx context.Context, send func(Response) bool, id uint64) {
	sub := s.m.Subscribe(256)
	defer sub.Close()
	if !send(marshalResponse(id, WatchAck{Watching: true}, nil)) {
		return
	}
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			we := WatchEvent{
				Seq:        ev.Seq,
				UnixMillis: ev.Time.UnixMilli(),
				Pod:        ev.Pod,
				Type:       string(ev.Type),
				Slice:      ev.Slice,
				Detail:     ev.Detail,
			}
			if !send(marshalResponse(id, we, nil)) {
				return
			}
		}
	}
}

func (s *FleetServer) call(method string, params json.RawMessage) (any, error) {
	switch method {
	case MethodFleetStatus:
		st := s.m.Status()
		out := FleetStatusResult{
			QueueDepth:      st.QueueDepth,
			QuarantinedPods: st.QuarantinedPods,
		}
		for _, ps := range st.Pods {
			out.Pods = append(out.Pods, FleetPodStatus{
				Name:                ps.Name,
				Drained:             ps.Drained,
				DrainedOCS:          ps.DrainedOCS,
				Quarantined:         ps.Quarantined,
				Converged:           ps.Converged,
				ConsecutiveFailures: ps.ConsecutiveFailures,
				LastError:           ps.LastError,
				DesiredSlices:       ps.DesiredSlices,
				ActualSlices:        ps.ActualSlices,
				InstalledCubes:      ps.InstalledCubes,
				FreeCubes:           ps.FreeCubes,
				Circuits:            ps.Circuits,
			})
		}
		return out, nil

	case MethodApplyIntent:
		var p ApplyIntentParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		if p.Pod == "" {
			return nil, fmt.Errorf("apply-intent: missing pod")
		}
		if p.Replace {
			ins := make([]fleet.SliceIntent, 0, len(p.Slices))
			for _, sp := range p.Slices {
				if sp.Remove {
					return nil, fmt.Errorf("apply-intent: remove is meaningless with replace")
				}
				ins = append(ins, intentFromSpec(sp))
			}
			if err := s.m.ReplaceIntent(p.Pod, ins); err != nil {
				return nil, err
			}
			return ApplyIntentResult{Accepted: len(ins)}, nil
		}
		accepted := 0
		for _, sp := range p.Slices {
			var err error
			if sp.Remove {
				err = s.m.RemoveSliceIntent(p.Pod, sp.Name)
			} else {
				err = s.m.SetSliceIntent(p.Pod, intentFromSpec(sp))
			}
			if err != nil {
				return nil, err
			}
			accepted++
		}
		return ApplyIntentResult{Accepted: accepted}, nil

	case MethodDrain:
		var p DrainParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		if p.OCS != nil {
			return struct{}{}, s.m.DrainOCS(p.Pod, *p.OCS)
		}
		return struct{}{}, s.m.DrainPod(p.Pod)

	case MethodUndrain:
		var p DrainParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		if p.OCS != nil {
			return struct{}{}, s.m.UndrainOCS(p.Pod, *p.OCS)
		}
		return struct{}{}, s.m.UndrainPod(p.Pod)

	case MethodTEStatus:
		if s.te == nil {
			return TEStatusResult{}, nil
		}
		return s.te.TEStatus(), nil

	case MethodChaosInject, MethodChaosStatus:
		return chaosCall(s.chaos, method, func(v any) error { return json.Unmarshal(params, v) })

	case MethodSchedStatus, MethodSchedSubmit:
		return schedCall(s.sched, method, func(v any) error { return json.Unmarshal(params, v) })

	case MethodWALStatus:
		return walCall(s.wal)

	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

func intentFromSpec(sp SliceIntentSpec) fleet.SliceIntent {
	return fleet.SliceIntent{
		Name:  sp.Name,
		Shape: topo.Shape{X: sp.Shape[0], Y: sp.Shape[1], Z: sp.Shape[2]},
		Cubes: sp.Cubes,
	}
}
