package ctlrpc

import (
	"bytes"
	"encoding/json"
	"strconv"
)

// Hand-rolled encode/decode for the two wire frames. The protocol is
// NDJSON, but both frame types are tiny fixed-shape envelopes around an
// opaque result/params payload, and at fleet-scale request rates the
// generic encoding/json machinery dominates the control plane's CPU
// profile. Encoding appends the fields directly (the payload is already
// marshaled JSON); decoding takes a fast path through the envelope when
// the fields arrive in the canonical order both our encoder and
// encoding/json produce, and falls back to encoding/json for anything
// else, so interoperability is unchanged.

// appendJSONString appends s as a JSON string literal. Strings needing
// escapes take the encoding/json path.
//
//lwlint:hotpath
func appendJSONString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			//lwlint:ignore hotalloc cold fallback: strings needing escapes are rare on the wire, and correctness beats the box here
			quoted, err := json.Marshal(s)
			if err != nil {
				// A Go string always marshals; keep the frame well-formed
				// regardless.
				return append(dst, `""`...)
			}
			return append(dst, quoted...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// appendRequest appends req as one newline-terminated wire line.
//
//lwlint:hotpath
func appendRequest(dst []byte, req *Request) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, req.ID, 10)
	dst = append(dst, `,"method":`...)
	dst = appendJSONString(dst, req.Method)
	if len(req.Params) != 0 {
		dst = append(dst, `,"params":`...)
		dst = append(dst, req.Params...)
	}
	return append(dst, '}', '\n')
}

// appendResponse appends resp as one newline-terminated wire line.
//
//lwlint:hotpath
func appendResponse(dst []byte, resp *Response) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, resp.ID, 10)
	if resp.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, resp.Error)
	}
	if len(resp.Result) != 0 {
		dst = append(dst, `,"result":`...)
		dst = append(dst, resp.Result...)
	}
	return append(dst, '}', '\n')
}

// internedMethods maps every known method name to itself, so the request
// parser's string(bytes) conversion is alloc-free for real traffic (a
// map[string]X lookup keyed by []byte does not allocate).
var internedMethods = map[string]string{}

func init() {
	for _, m := range []string{
		MethodStatus, MethodCompose, MethodDestroy, MethodEnsure,
		MethodSlice, MethodFailCube, MethodRepairCube, MethodInstallCube,
		MethodObserveBER, MethodReshape, MethodMetrics, MethodRepairLink,
		MethodTEStatus, MethodChaosInject, MethodChaosStatus,
		MethodFleetStatus, MethodApplyIntent, MethodDrain, MethodUndrain,
		MethodWatch, MethodSchedStatus, MethodSchedSubmit, MethodWALStatus,
	} {
		internedMethods[m] = m
	}
}

// internMethod converts a method token without allocating when known.
//
//lwlint:hotpath
func internMethod(b []byte) string {
	if m, ok := internedMethods[string(b)]; ok {
		return m
	}
	return string(b)
}

// eatUint consumes a decimal literal at line[i:].
//
//lwlint:hotpath
func eatUint(line []byte, i int) (uint64, int, bool) {
	var v uint64
	start := i
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		v = v*10 + uint64(line[i]-'0')
		i++
	}
	return v, i, i > start
}

// tail trims one closing brace plus surrounding whitespace off the end of
// a frame, returning the payload span and whether the frame ended cleanly.
//
//lwlint:hotpath
func tail(line []byte, i int) ([]byte, bool) {
	rest := bytes.TrimRight(line[i:], " \t\r\n")
	if len(rest) == 0 || rest[len(rest)-1] != '}' {
		return nil, false
	}
	return rest[:len(rest)-1], true
}

// parseResponse decodes one response line. The returned Result aliases
// line on the fast path; callers must copy it if it outlives the buffer.
//
//lwlint:hotpath
func parseResponse(line []byte, resp *Response) error {
	// Fast path: {"id":N} / {"id":N,"result":...}; anything else —
	// reordered fields, an error string needing unescaping — falls back.
	if rest, ok := bytes.CutPrefix(line, []byte(`{"id":`)); ok {
		id, i, ok := eatUint(rest, 0)
		if ok {
			switch {
			case i < len(rest) && rest[i] == '}':
				*resp = Response{ID: id}
				return nil
			case bytes.HasPrefix(rest[i:], []byte(`,"result":`)):
				if payload, ok := tail(rest, i+len(`,"result":`)); ok {
					*resp = Response{ID: id, Result: payload}
					return nil
				}
			}
		}
	}
	*resp = Response{}
	return json.Unmarshal(line, resp)
}

// parseRequest decodes one request line. The returned Method and Params
// alias line on the fast path; callers must copy what outlives the buffer.
//
//lwlint:hotpath
func parseRequest(line []byte, req *Request) error {
	if rest, ok := bytes.CutPrefix(line, []byte(`{"id":`)); ok {
		id, i, ok := eatUint(rest, 0)
		if ok && bytes.HasPrefix(rest[i:], []byte(`,"method":"`)) {
			i += len(`,"method":"`)
			j := i
			for j < len(rest) && rest[j] != '"' && rest[j] != '\\' {
				j++
			}
			if j < len(rest) && rest[j] == '"' {
				method := rest[i:j]
				switch {
				case j+1 < len(rest) && rest[j+1] == '}':
					*req = Request{ID: id, Method: internMethod(method)}
					return nil
				case bytes.HasPrefix(rest[j+1:], []byte(`,"params":`)):
					if payload, ok := tail(rest, j+1+len(`,"params":`)); ok {
						*req = Request{ID: id, Method: internMethod(method), Params: payload}
						return nil
					}
				}
			}
		}
	}
	*req = Request{}
	return json.Unmarshal(line, req)
}
