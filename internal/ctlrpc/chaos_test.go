package ctlrpc

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"lightwave/internal/chaos"
	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

// startChaosFleetServer brings up a one-pod manager whose backend is
// wrapped in a chaos.FaultyBackend, with fault injection enabled on the
// server, and returns a dialer plus the manager for settle-waits.
func startChaosFleetServer(t *testing.T) (dial func() *Client, m *fleet.Manager) {
	t.Helper()
	m = fleet.NewManager(fleet.Options{
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      8 * time.Millisecond,
		QuarantineAfter: 3,
		Seed:            42,
	})
	t.Cleanup(m.Close)
	fb := chaos.NewFaultyBackend(newMemBackend())
	if err := m.AddPod("p0", fb); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("p0", fleet.SliceIntent{
		Name:  "job",
		Shape: topo.Shape{X: 4, Y: 4, Z: 4},
	}); err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.NewInjector(chaos.Targets{
		Fleet:    m,
		Backends: map[string]*chaos.FaultyBackend{"p0": fb},
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewFleetServer(m)
	srv.SetChaos(InjectorProvider{In: inj})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, lis)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return func() *Client {
		c, err := Dial(lis.Addr().String(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}, m
}

func TestChaosDisabledOverWire(t *testing.T) {
	dial, _ := startFleetServer(t, map[string]fleet.Backend{"p0": newMemBackend()})
	c := dial()

	st, err := c.ChaosStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatalf("chaos reported enabled on a plain server: %+v", st)
	}
	if _, err := c.ChaosInject(ChaosInjectParams{Kind: "pod-loss", Pod: "p0"}); err == nil ||
		!strings.Contains(err.Error(), "chaos injection disabled") {
		t.Fatalf("inject on disabled server: %v", err)
	}
}

func TestChaosInjectOverWire(t *testing.T) {
	dial, m := startChaosFleetServer(t)
	c := dial()
	waitPod(t, m, "p0", func(ps fleet.PodStatus) bool { return ps.Converged })

	// A bad event is rejected by scenario validation before it touches
	// anything.
	if _, err := c.ChaosInject(ChaosInjectParams{Kind: "warp-core-breach"}); err == nil ||
		!strings.Contains(err.Error(), "chaos") {
		t.Fatalf("bad kind: %v", err)
	}

	res, err := c.ChaosInject(ChaosInjectParams{Kind: "pod-loss", Pod: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Applied, "pod-loss") {
		t.Fatalf("applied = %q", res.Applied)
	}
	waitPod(t, m, "p0", func(ps fleet.PodStatus) bool { return ps.Quarantined })

	st, err := c.ChaosStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.InjectedTotal != 1 || st.LastFault == "" {
		t.Fatalf("status = %+v", st)
	}

	if _, err := c.ChaosInject(ChaosInjectParams{Kind: "pod-restore", Pod: "p0"}); err != nil {
		t.Fatal(err)
	}
	waitPod(t, m, "p0", func(ps fleet.PodStatus) bool { return !ps.Quarantined && ps.Converged })

	st, err = c.ChaosStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.InjectedTotal != 2 {
		t.Fatalf("status after restore = %+v", st)
	}
}
