package ctlrpc

import (
	"context"
	"encoding/json"
	"fmt"
)

// Fleet-scoped typed calls for a FleetServer (cmd/lwfleetd).

// FleetStatus fetches fleet state.
func (c *Client) FleetStatus() (FleetStatusResult, error) {
	var r FleetStatusResult
	err := c.call(MethodFleetStatus, nil, &r)
	return r, err
}

// FleetStatusContext is FleetStatus with a deadline.
func (c *Client) FleetStatusContext(ctx context.Context) (FleetStatusResult, error) {
	var r FleetStatusResult
	err := c.CallContext(ctx, MethodFleetStatus, nil, &r)
	return r, err
}

// ApplyIntent updates a pod's desired slice set.
func (c *Client) ApplyIntent(p ApplyIntentParams) (ApplyIntentResult, error) {
	var r ApplyIntentResult
	err := c.call(MethodApplyIntent, p, &r)
	return r, err
}

// Drain drains a pod, or one OCS within it when ocs is non-nil.
func (c *Client) Drain(pod string, ocs *int) error {
	return c.call(MethodDrain, DrainParams{Pod: pod, OCS: ocs}, nil)
}

// Undrain returns a pod (or one OCS) to service; a pod undrain also
// releases any quarantine.
func (c *Client) Undrain(pod string, ocs *int) error {
	return c.call(MethodUndrain, DrainParams{Pod: pod, OCS: ocs}, nil)
}

// WatchStream is a live fleet event feed. It owns the client's connection:
// after Watch succeeds, unary calls on the same client fail with
// ErrClientStreaming. Close the stream (or the client) to release the
// connection.
type WatchStream struct {
	c  *Client
	id uint64
}

// Watch subscribes to the fleet event stream. Events emitted before the
// subscription is acknowledged are not replayed.
func (c *Client) Watch() (*WatchStream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return nil, fmt.Errorf("%w: %v", ErrClientBroken, c.broken)
	}
	if c.streaming {
		return nil, ErrClientStreaming
	}
	c.nextID++
	req := Request{ID: c.nextID, Method: MethodWatch}
	line, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	line = append(line, '\n')
	if _, err := c.conn.Write(line); err != nil {
		c.broken = err
		return nil, fmt.Errorf("ctlrpc: write: %w", err)
	}
	ackLine, err := c.reader.ReadBytes('\n')
	if err != nil {
		c.broken = err
		return nil, fmt.Errorf("ctlrpc: read: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(ackLine, &resp); err != nil {
		c.broken = err
		return nil, fmt.Errorf("ctlrpc: decoding watch ack: %w", err)
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("ctlrpc: server: %s", resp.Error)
	}
	var ack WatchAck
	if err := json.Unmarshal(resp.Result, &ack); err != nil || !ack.Watching {
		return nil, fmt.Errorf("ctlrpc: bad watch ack %s", ackLine)
	}
	c.streaming = true
	return &WatchStream{c: c, id: req.ID}, nil
}

// Next blocks for the next event. It returns an error when the stream or
// connection closes.
func (w *WatchStream) Next() (WatchEvent, error) {
	var ev WatchEvent
	line, err := w.c.reader.ReadBytes('\n')
	if err != nil {
		return ev, fmt.Errorf("ctlrpc: watch read: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return ev, fmt.Errorf("ctlrpc: decoding event: %w", err)
	}
	if resp.ID != w.id {
		return ev, fmt.Errorf("ctlrpc: event under id %d, want %d", resp.ID, w.id)
	}
	if resp.Error != "" {
		return ev, fmt.Errorf("ctlrpc: server: %s", resp.Error)
	}
	if err := json.Unmarshal(resp.Result, &ev); err != nil {
		return ev, fmt.Errorf("ctlrpc: decoding event: %w", err)
	}
	return ev, nil
}

// Close tears the stream down by closing the underlying connection (the
// watch upgrade dedicated the connection to the stream).
func (w *WatchStream) Close() error { return w.c.Close() }
