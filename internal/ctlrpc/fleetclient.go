package ctlrpc

import (
	"context"
	"encoding/json"
	"fmt"
)

// Fleet-scoped typed calls for a FleetServer (cmd/lwfleetd).

// FleetStatus fetches fleet state.
func (c *Client) FleetStatus() (FleetStatusResult, error) {
	var r FleetStatusResult
	err := c.call(MethodFleetStatus, nil, &r)
	return r, err
}

// FleetStatusContext is FleetStatus with a deadline.
func (c *Client) FleetStatusContext(ctx context.Context) (FleetStatusResult, error) {
	var r FleetStatusResult
	err := c.CallContext(ctx, MethodFleetStatus, nil, &r)
	return r, err
}

// ApplyIntent updates a pod's desired slice set.
func (c *Client) ApplyIntent(p ApplyIntentParams) (ApplyIntentResult, error) {
	var r ApplyIntentResult
	err := c.call(MethodApplyIntent, p, &r)
	return r, err
}

// Drain drains a pod, or one OCS within it when ocs is non-nil.
func (c *Client) Drain(pod string, ocs *int) error {
	return c.call(MethodDrain, DrainParams{Pod: pod, OCS: ocs}, nil)
}

// Undrain returns a pod (or one OCS) to service; a pod undrain also
// releases any quarantine.
func (c *Client) Undrain(pod string, ocs *int) error {
	return c.call(MethodUndrain, DrainParams{Pod: pod, OCS: ocs}, nil)
}

// WatchStream is a live fleet event feed. It owns the client's connection:
// after Watch succeeds, unary calls on the same client fail with
// ErrClientStreaming. Close the stream (or the client) to release the
// connection.
type WatchStream struct {
	c  *Client
	id uint64
	ch chan Response
}

// Watch subscribes to the fleet event stream. Events emitted before the
// subscription is acknowledged are not replayed. The watch rides the same
// demultiplexed reader as unary calls: in-flight calls issued before the
// upgrade still complete, and every event is matched to the watch by its
// request ID.
func (c *Client) Watch() (*WatchStream, error) {
	c.mu.Lock()
	if c.broken != nil {
		err := fmt.Errorf("%w: %v", ErrClientBroken, c.broken)
		c.mu.Unlock()
		return nil, err
	}
	if c.streaming {
		c.mu.Unlock()
		return nil, ErrClientStreaming
	}
	c.startLocked()
	c.nextID++
	id := c.nextID
	ch := make(chan Response, 256)
	c.watchID, c.watchCh = id, ch
	// Block unary calls from this point: once the server upgrades, it
	// stops reading further requests on this connection.
	c.streaming = true
	c.mu.Unlock()

	fail := func(err error) (*WatchStream, error) {
		c.mu.Lock()
		c.watchID, c.watchCh = 0, nil
		c.streaming = false
		c.mu.Unlock()
		return nil, err
	}

	req := Request{ID: id, Method: MethodWatch}
	c.enqueue(&req)

	select {
	case resp := <-ch:
		if resp.Error != "" {
			return fail(fmt.Errorf("ctlrpc: server: %s", resp.Error))
		}
		var ack WatchAck
		if err := json.Unmarshal(resp.Result, &ack); err != nil || !ack.Watching {
			return fail(fmt.Errorf("ctlrpc: bad watch ack %s", resp.Result))
		}
	case <-c.dead:
		return fail(c.brokenErr())
	}
	return &WatchStream{c: c, id: id, ch: ch}, nil
}

// Next blocks for the next event. It returns an error when the stream or
// connection closes; events already buffered when the connection died are
// still delivered first.
func (w *WatchStream) Next() (WatchEvent, error) {
	var ev WatchEvent
	var resp Response
	select {
	case resp = <-w.ch: // drain buffered events before reporting death
	default:
		select {
		case resp = <-w.ch:
		case <-w.c.dead:
			return ev, fmt.Errorf("ctlrpc: watch read: %w", w.c.brokenErr())
		}
	}
	if resp.Error != "" {
		return ev, fmt.Errorf("ctlrpc: server: %s", resp.Error)
	}
	if err := json.Unmarshal(resp.Result, &ev); err != nil {
		return ev, fmt.Errorf("ctlrpc: decoding event: %w", err)
	}
	return ev, nil
}

// Close tears the stream down by closing the underlying connection (the
// watch upgrade dedicated the connection to the stream).
func (w *WatchStream) Close() error { return w.c.Close() }
