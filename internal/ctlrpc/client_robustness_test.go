package ctlrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// silentListener accepts connections and reads requests without ever
// responding — a hung server.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	return lis
}

func TestCallContextDeadline(t *testing.T) {
	lis := silentListener(t)
	c, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.StatusContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not honoured: blocked %v", elapsed)
	}

	// The abandoned call desynced the wire: the client must fail fast now.
	if _, err := c.Status(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("call after broken: %v", err)
	}
}

func TestCallContextCancel(t *testing.T) {
	lis := silentListener(t)
	c, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := c.StatusContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestCallContextAlreadyExpired(t *testing.T) {
	c := startServer(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.StatusContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// A pre-call context error must NOT break the client: nothing hit the
	// wire.
	if _, err := c.Status(); err != nil {
		t.Fatalf("client broken by pre-call ctx error: %v", err)
	}
}

func TestClientBrokenAfterMidCallError(t *testing.T) {
	// A server that replies with a mismatched response id desyncs the
	// request pairing; the client must refuse further calls.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		fmt.Fprintf(conn, "{\"id\":999}\n")
		// Keep the connection open so only the framing error is at play.
		time.Sleep(time.Second)
	}()
	c, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Status(); err == nil {
		t.Fatal("mismatched response id accepted")
	}
	if _, err := c.Status(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("second call: %v", err)
	}
	if _, err := c.Watch(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("watch on broken client: %v", err)
	}
}

// TestConcurrentMultiClientStress hammers one daemon from many clients and
// goroutines issuing compose/destroy/status; run under -race it checks the
// server's serialization end to end.
func TestConcurrentMultiClientStress(t *testing.T) {
	c0 := startServer(t, 16)
	addr := c0.conn.RemoteAddr().String()

	const clients = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters*3)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			// Each client owns two cubes, so composes never collide.
			cubes := []int{2 * id, 2*id + 1}
			name := fmt.Sprintf("job-%d", id)
			for it := 0; it < iters; it++ {
				if _, err := c.Compose(name, [3]int{4, 4, 8}, cubes); err != nil {
					errs <- fmt.Errorf("client %d compose: %w", id, err)
					return
				}
				if _, err := c.Status(); err != nil {
					errs <- fmt.Errorf("client %d status: %w", id, err)
					return
				}
				if _, err := c.ObserveBER(id%48, id, 1e-6); err != nil {
					errs <- fmt.Errorf("client %d ber: %w", id, err)
					return
				}
				if err := c.Destroy(name); err != nil {
					errs <- fmt.Errorf("client %d destroy: %w", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st, err := c0.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCircuits != 0 || len(st.Slices) != 0 {
		t.Fatalf("daemon left dirty: %+v", st)
	}
}
