package ctlrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// silentListener accepts connections and reads requests without ever
// responding — a hung server.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	return lis
}

func TestCallContextDeadline(t *testing.T) {
	lis := silentListener(t)
	c, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.StatusContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not honoured: blocked %v", elapsed)
	}

	// Abandoning a call does NOT break the client: the ID is forgotten and
	// the client stays usable, so a second call times out the same way
	// instead of failing fast with ErrClientBroken.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if _, err := c.StatusContext(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call after abandoned call: %v", err)
	}
}

// TestAbandonedCallDoesNotPoisonLater drives the full late-response path: a
// server that answers the first request slowly makes the caller's deadline
// expire, the late response arrives after abandonment and is dropped by ID,
// and a subsequent call on the same client succeeds.
func TestAbandonedCallDoesNotPoisonLater(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		first := true
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				return
			}
			var req Request
			if err := json.Unmarshal(line, &req); err != nil {
				return
			}
			if first {
				first = false
				time.Sleep(300 * time.Millisecond) // past the caller's deadline
			}
			resp := marshalResponse(req.ID, StatusResult{InstalledCubes: 1}, nil)
			out, _ := json.Marshal(&resp)
			if _, err := conn.Write(append(out, '\n')); err != nil {
				return
			}
		}
	}()
	c, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.StatusContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first call: %v", err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatalf("call after abandoned call: %v", err)
	}
	if st.InstalledCubes != 1 {
		t.Fatalf("status = %+v", st)
	}
	if n := c.UnknownResponses(); n != 0 {
		t.Fatalf("late response for an abandoned ID counted as unknown (%d)", n)
	}
}

func TestCallContextCancel(t *testing.T) {
	lis := silentListener(t)
	c, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := c.StatusContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestCallContextAlreadyExpired(t *testing.T) {
	c := startServer(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.StatusContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// A pre-call context error must NOT break the client: nothing hit the
	// wire.
	if _, err := c.Status(); err != nil {
		t.Fatalf("client broken by pre-call ctx error: %v", err)
	}
}

// TestUnknownResponseIDLoggedAndDropped feeds the client a response with an
// ID it never issued: the stray is logged, counted and dropped, and the call
// it was interleaved with still completes with the right payload.
func TestUnknownResponseIDLoggedAndDropped(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		stray := true
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				return
			}
			var req Request
			if err := json.Unmarshal(line, &req); err != nil {
				return
			}
			if stray {
				stray = false
				fmt.Fprintf(conn, "{\"id\":999}\n") // never issued
			}
			resp := marshalResponse(req.ID, StatusResult{InstalledCubes: 2}, nil)
			out, _ := json.Marshal(&resp)
			if _, err := conn.Write(append(out, '\n')); err != nil {
				return
			}
		}
	}()
	c, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var logged atomic.Int64
	c.Logf = func(format string, args ...any) { logged.Add(1) }

	st, err := c.Status()
	if err != nil {
		t.Fatalf("call interleaved with stray response: %v", err)
	}
	if st.InstalledCubes != 2 {
		t.Fatalf("status = %+v", st)
	}
	// The stray may race the real response; wait for the reader to count it.
	deadline := time.Now().Add(time.Second)
	for c.UnknownResponses() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := c.UnknownResponses(); n != 1 {
		t.Fatalf("unknown responses = %d, want 1", n)
	}
	if logged.Load() != 1 {
		t.Fatalf("logged %d drops, want 1", logged.Load())
	}
	// The stream stayed in sync: later calls keep working.
	if _, err := c.Status(); err != nil {
		t.Fatalf("call after stray response: %v", err)
	}
}

// TestClientBrokenAfterTransportError: an undecodable response is a genuine
// transport fault — the stream is unusable, so the client goes sticky-broken
// and later calls (and Watch) fail fast.
func TestClientBrokenAfterTransportError(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		fmt.Fprintf(conn, "not json\n")
		// Keep the connection open so only the decode error is at play.
		time.Sleep(time.Second)
	}()
	c, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Status(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("first call: %v", err)
	}
	if _, err := c.Status(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("second call: %v", err)
	}
	if _, err := c.Watch(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("watch on broken client: %v", err)
	}
}

// TestConcurrentMultiClientStress hammers one daemon from many clients and
// goroutines issuing compose/destroy/status; run under -race it checks the
// server's serialization end to end.
func TestConcurrentMultiClientStress(t *testing.T) {
	c0 := startServer(t, 16)
	addr := c0.conn.RemoteAddr().String()

	const clients = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters*3)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			// Each client owns two cubes, so composes never collide.
			cubes := []int{2 * id, 2*id + 1}
			name := fmt.Sprintf("job-%d", id)
			for it := 0; it < iters; it++ {
				if _, err := c.Compose(name, [3]int{4, 4, 8}, cubes); err != nil {
					errs <- fmt.Errorf("client %d compose: %w", id, err)
					return
				}
				if _, err := c.Status(); err != nil {
					errs <- fmt.Errorf("client %d status: %w", id, err)
					return
				}
				if _, err := c.ObserveBER(id%48, id, 1e-6); err != nil {
					errs <- fmt.Errorf("client %d ber: %w", id, err)
					return
				}
				if err := c.Destroy(name); err != nil {
					errs <- fmt.Errorf("client %d destroy: %w", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st, err := c0.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCircuits != 0 || len(st.Slices) != 0 {
		t.Fatalf("daemon left dirty: %+v", st)
	}
}
