package ctlrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lightwave/internal/core"
)

// startServerOn brings up a fabric daemon with explicit knobs and returns
// its address.
func startServerOn(t *testing.T, cubes, maxRequestBytes int, te TEStatusProvider) string {
	t.Helper()
	f, err := core.New(core.DefaultConfig(cubes))
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := NewServer(f)
	srv.MaxRequestBytes = maxRequestBytes
	if te != nil {
		srv.SetTE(te)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, lis)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return lis.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// bigParams marshals to at least n bytes (the payload is ignored by
// status, which takes no params).
type bigParams struct {
	Pad string `json:"pad"`
}

func pad(n int) bigParams { return bigParams{Pad: strings.Repeat("x", n)} }

// TestOversizedRequestTypedError: a request line over the server's cap gets
// the typed "request too large" error — under the caller's request ID — and
// the connection survives for later calls. The old bufio.Scanner path
// silently dropped the connection instead.
func TestOversizedRequestTypedError(t *testing.T) {
	addr := startServerOn(t, 2, 4096, nil)
	c := dialT(t, addr)

	// A normal call first, so the oversized one is mid-stream.
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	err := c.call(MethodStatus, pad(8192), nil)
	if err == nil {
		t.Fatal("oversized request accepted")
	}
	if !IsRequestTooLarge(err) {
		t.Fatalf("err = %v, want request-too-large", err)
	}
	// Same connection keeps working, and the stream is still in sync.
	st, err := c.Status()
	if err != nil {
		t.Fatalf("connection dead after oversized request: %v", err)
	}
	if st.InstalledCubes != 2 {
		t.Fatalf("status = %+v", st)
	}
	if n := c.UnknownResponses(); n != 0 {
		t.Fatalf("id mismatches after oversized request: %d", n)
	}
}

// TestLargeRequestUnder64KBScannerLimit: a valid request far beyond
// bufio.Scanner's 64KB default token limit round-trips fine — the regression
// the limited line reader exists to prevent.
func TestLargeRequestBeyond64KB(t *testing.T) {
	c := startServer(t, 2)
	// ~256KB of ignored params on a status call.
	if err := c.call(MethodStatus, pad(256*1024), nil); err != nil {
		t.Fatalf(">64KB request rejected: %v", err)
	}
}

// gatedTE blocks TEStatus until released, to hold a read-only request
// in-flight on the server.
type gatedTE struct {
	entered chan struct{} // closed once TEStatus is running
	release chan struct{}
	once    sync.Once
}

func newGatedTE() *gatedTE {
	return &gatedTE{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedTE) TEStatus() TEStatusResult {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return TEStatusResult{Enabled: true}
}

// TestPipelinedRequestsOverlapOnOneConnection proves true pipelining end to
// end: while one read-only call (te-status) is blocked inside its handler,
// a second call issued on the SAME client connection completes. Neither the
// single-in-flight client nor the sequential per-connection server loop of
// the old implementation could do this.
func TestPipelinedRequestsOverlapOnOneConnection(t *testing.T) {
	gate := newGatedTE()
	addr := startServerOn(t, 2, 0, gate)
	c := dialT(t, addr)

	teDone := make(chan error, 1)
	go func() {
		_, err := c.TEStatus()
		teDone <- err
	}()
	select {
	case <-gate.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("te-status never reached the handler")
	}

	// te-status is parked inside the server; status must still round-trip.
	statusDone := make(chan error, 1)
	go func() {
		_, err := c.Status()
		statusDone <- err
	}()
	select {
	case err := <-statusDone:
		if err != nil {
			t.Fatalf("overlapped status: %v", err)
		}
	case err := <-teDone:
		t.Fatalf("te-status finished before release (err %v)", err)
	case <-time.After(2 * time.Second):
		t.Fatal("status call queued behind a blocked read: no pipelining")
	}

	close(gate.release)
	if err := <-teDone; err != nil {
		t.Fatalf("te-status after release: %v", err)
	}
}

// TestSharedClientConcurrentMixedMethods hammers ONE client from many
// goroutines with interleaved read-only and mutating methods; every
// response must land on the call that issued it (the per-call payload
// checks catch any demux error) and cancelling one call must not disturb
// the others. Run with -race this exercises the full pipeline: client
// writer/reader, server decode/worker/writer stages, and the RWMutex
// dispatch.
func TestSharedClientConcurrentMixedMethods(t *testing.T) {
	c := startServer(t, 16)

	const workers = 8
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters*4)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cubes := []int{2 * id, 2*id + 1}
			name := fmt.Sprintf("job-%d", id)
			for it := 0; it < iters; it++ {
				sl, err := c.Compose(name, [3]int{4, 4, 8}, cubes)
				if err != nil {
					errs <- fmt.Errorf("worker %d compose: %w", id, err)
					return
				}
				if sl.Name != name {
					errs <- fmt.Errorf("worker %d got slice %q: response/request mismatch", id, sl.Name)
					return
				}
				got, err := c.Slice(name)
				if err != nil {
					errs <- fmt.Errorf("worker %d slice: %w", id, err)
					return
				}
				if got.Name != name || len(got.Cubes) != 2 {
					errs <- fmt.Errorf("worker %d fetched %+v: response/request mismatch", id, got)
					return
				}
				if _, err := c.Status(); err != nil {
					errs <- fmt.Errorf("worker %d status: %w", id, err)
					return
				}
				// One caller abandoning on a dead context must not poison
				// the shared client.
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				if _, err := c.StatusContext(ctx); !errors.Is(err, context.Canceled) {
					errs <- fmt.Errorf("worker %d cancelled call: %w", id, err)
					return
				}
				if err := c.Destroy(name); err != nil {
					errs <- fmt.Errorf("worker %d destroy: %w", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := c.UnknownResponses(); n != 0 {
		t.Fatalf("request-ID mismatches under concurrency: %d", n)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCircuits != 0 || len(st.Slices) != 0 {
		t.Fatalf("fabric left dirty: %+v", st)
	}
}

// TestPeekRequestID pins the ID-salvage behaviour for oversized lines.
func TestPeekRequestID(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{`{"id":42,"method":"status"}`, 42},
		{`{"id": 7}`, 7},
		{`{"method":"status","id":3}`, 3},
		{`{"method":"status"}`, 0},
		{`garbage`, 0},
		{`{"id":}`, 0},
	}
	for _, tc := range cases {
		if got := peekRequestID([]byte(tc.in)); got != tc.want {
			t.Errorf("peekRequestID(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
