package ctlrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lightwave/internal/core"
	"lightwave/internal/telemetry"
)

// startServer brings up a fabric daemon on a loopback listener and returns
// a connected client.
func startServer(t *testing.T, cubes int) *Client {
	t.Helper()
	f, err := core.New(core.DefaultConfig(cubes))
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := NewServer(f)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, lis)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	c, err := Dial(lis.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestStatusRoundTrip(t *testing.T) {
	c := startServer(t, 8)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.InstalledCubes != 8 || len(st.FreeCubes) != 8 || st.TotalCircuits != 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestComposeDestroyOverWire(t *testing.T) {
	c := startServer(t, 8)
	sl, err := c.Compose("job", [3]int{4, 4, 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Circuits != 192 || sl.Name != "job" {
		t.Fatalf("slice = %+v", sl)
	}
	if sl.WorstMarginDB <= 0 {
		t.Fatal("no margin reported")
	}
	got, err := c.Slice("job")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "job" || len(got.Cubes) != 4 {
		t.Fatalf("slice fetch = %+v", got)
	}
	st, _ := c.Status()
	if len(st.Slices) != 1 || st.Slices[0] != "job" || st.TotalCircuits != 192 {
		t.Fatalf("status = %+v", st)
	}
	if err := c.Destroy("job"); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Status()
	if st.TotalCircuits != 0 {
		t.Fatalf("circuits after destroy = %d", st.TotalCircuits)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	c := startServer(t, 4)
	if _, err := c.Compose("bad", [3]int{3, 4, 4}, []int{0}); err == nil {
		t.Fatal("invalid shape accepted")
	} else if !strings.Contains(err.Error(), "server:") {
		t.Fatalf("err = %v", err)
	}
	if err := c.Destroy("missing"); err == nil {
		t.Fatal("missing slice accepted")
	}
	if _, err := c.Slice("missing"); err == nil {
		t.Fatal("missing slice fetched")
	}
}

func TestFailRepairInstallOverWire(t *testing.T) {
	c := startServer(t, 4)
	if _, err := c.Compose("j", [3]int{4, 4, 8}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	rc, err := c.FailCube(0)
	if err != nil {
		t.Fatal(err)
	}
	if rc < 2 {
		t.Fatalf("replacement = %d", rc)
	}
	if err := c.RepairCube(0); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallCube(10); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Status()
	if st.InstalledCubes != 5 {
		t.Fatalf("installed = %d", st.InstalledCubes)
	}
}

func TestObserveBEROverWire(t *testing.T) {
	c := startServer(t, 2)
	anom, err := c.ObserveBER(0, 0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if anom {
		t.Fatal("healthy BER flagged")
	}
	anom, err = c.ObserveBER(0, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !anom {
		t.Fatal("KP4 breach not flagged")
	}
}

func TestConcurrentClients(t *testing.T) {
	c := startServer(t, 16)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Status(); err != nil {
				errs <- err
			}
			if _, err := c.ObserveBER(i%48, i, 1e-6); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestUnknownMethod(t *testing.T) {
	c := startServer(t, 2)
	err := c.call("bogus", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

func TestMalformedRequestDoesNotKillConnection(t *testing.T) {
	c := startServer(t, 2)
	// Speak the wire protocol directly on a second connection: garbage,
	// then a valid request on the same connection.
	conn, err := net.Dial("tcp", c.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("not json\n")); err != nil {
		t.Fatal(err)
	}
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("error response not JSON: %v (%q)", err, line)
	}
	if !strings.Contains(resp.Error, "bad request") {
		t.Fatalf("error = %q", resp.Error)
	}
	if _, err := conn.Write([]byte(`{"id":7,"method":"status"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err = br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("connection broken after malformed request: %v", err)
	}
	resp = Response{}
	if err := json.Unmarshal(line, &resp); err != nil || resp.ID != 7 || resp.Error != "" {
		t.Fatalf("status after garbage = %+v (err %v)", resp, err)
	}
}

func TestReshapeOverWire(t *testing.T) {
	c := startServer(t, 8)
	if _, err := c.Compose("j", [3]int{4, 4, 16}, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	sl, err := c.Reshape("j", [3]int{4, 8, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Shape != [3]int{4, 8, 8} {
		t.Fatalf("shape = %v", sl.Shape)
	}
	if _, err := c.Reshape("missing", [3]int{4, 4, 4}, nil); err == nil {
		t.Fatal("missing slice reshaped")
	}
}

func TestMetricsOverWire(t *testing.T) {
	// startServer builds the fabric without a registry: empty exposition.
	c := startServer(t, 2)
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if text != "" {
		t.Fatalf("metrics without a registry = %q", text)
	}
}

func TestMetricsWithRegistry(t *testing.T) {
	cfg := core.DefaultConfig(4)
	cfg.Metrics = telemetry.NewRegistry()
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = NewServer(f).Serve(ctx, lis)
	}()
	t.Cleanup(func() { cancel(); <-done })
	c, err := Dial(lis.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if _, err := c.Compose("j", [3]int{4, 4, 4}, []int{0}); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "fabric.slices_composed 1") {
		t.Fatalf("exposition missing slice counter:\n%s", text)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
}

func TestServeStopsOnContextCancel(t *testing.T) {
	f, err := core.New(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- NewServer(f).Serve(ctx, lis) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on cancel", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop on context cancel")
	}
}

func TestServerConnectionCloseMidStream(t *testing.T) {
	c := startServer(t, 2)
	// Close the client abruptly; the server must keep serving others.
	c2 := startServer(t, 2)
	c.Close()
	if _, err := c2.Status(); err != nil {
		t.Fatalf("second server session broken: %v", err)
	}
}
