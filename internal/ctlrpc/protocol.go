// Package ctlrpc is the fabric's SDN control protocol: a newline-delimited
// JSON request/response protocol over TCP, mirroring how the production
// OCSes "receive port connection commands from the control plane" (§3.2.2)
// through the same management-plane interfaces as the rest of the network
// infrastructure. The server wraps a core.Fabric; the client provides typed
// calls for tooling such as cmd/lwfctl.
package ctlrpc

import (
	"encoding/json"
	"strings"
)

// Request is one control-plane call.
type Request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response is the reply to a Request with the same ID.
type Response struct {
	ID     uint64          `json:"id"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Method names.
const (
	MethodStatus      = "status"
	MethodCompose     = "compose"
	MethodDestroy     = "destroy"
	MethodEnsure      = "ensure"
	MethodSlice       = "slice"
	MethodFailCube    = "fail-cube"
	MethodRepairCube  = "repair-cube"
	MethodInstallCube = "install-cube"
	MethodObserveBER  = "observe-ber"
	MethodReshape     = "reshape"
	MethodMetrics     = "metrics"
	MethodRepairLink  = "repair-link"
	MethodTEStatus    = "te-status"
)

// errRequestTooLarge is the wire error text for a request line exceeding
// the server's size cap. The oversized line is drained and the connection
// stays usable; IsRequestTooLarge recognizes the error on the client side.
const errRequestTooLarge = "request too large"

// IsRequestTooLarge reports whether a call failed because the request line
// exceeded the server's per-request size cap.
func IsRequestTooLarge(err error) bool {
	return err != nil && strings.Contains(err.Error(), errRequestTooLarge)
}

// TEStatusResult reports the state of a daemon's topology-engineering
// loop. Enabled is false when the daemon runs no TE loop; the remaining
// fields then carry zero values.
type TEStatusResult struct {
	Enabled                   bool    `json:"enabled"`
	Blocks                    int     `json:"blocks"`
	Uplinks                   int     `json:"uplinks"`
	Epoch                     int     `json:"epoch"`
	Reconfigs                 int     `json:"reconfigs"`
	SkippedReconfigs          int     `json:"skippedReconfigs"`
	Stages                    int     `json:"stages"`
	TrunksMoved               int     `json:"trunksMoved"`
	LastGain                  float64 `json:"lastGain"`
	LastPredictionError       float64 `json:"lastPredictionError"`
	MinResidualFraction       float64 `json:"minResidualFraction"`
	DrainedCapacityBpsSeconds float64 `json:"drainedCapacityBpsSeconds"`
	LastReconfigEpoch         int     `json:"lastReconfigEpoch"`
	LastReason                string  `json:"lastReason"`
	CurrentTrunks             int     `json:"currentTrunks"`
}

// TEStatusProvider supplies the te-status method; daemons adapt their TE
// loop to it. Implementations must be safe for concurrent use.
type TEStatusProvider interface {
	TEStatus() TEStatusResult
}

// RepairLinkParams addresses a cube's fiber pair on one OCS.
type RepairLinkParams struct {
	OCS  int `json:"ocs"`
	Cube int `json:"cube"`
}

// RepairLinkResult reports the spare port now carrying the fibers.
type RepairLinkResult struct {
	SparePort int `json:"sparePort"`
}

// MetricsResult carries the registry's text exposition.
type MetricsResult struct {
	Text string `json:"text"`
}

// ReshapeParams requests an in-place slice reshape; Cubes may be empty to
// reuse the slice's current cubes.
type ReshapeParams struct {
	Name  string `json:"name"`
	Shape [3]int `json:"shape"`
	Cubes []int  `json:"cubes,omitempty"`
}

// StatusResult reports fabric state.
type StatusResult struct {
	InstalledCubes int      `json:"installedCubes"`
	FreeCubes      []int    `json:"freeCubes"`
	Slices         []string `json:"slices"`
	TotalCircuits  int      `json:"totalCircuits"`
}

// ComposeParams requests slice composition.
type ComposeParams struct {
	Name  string `json:"name"`
	Shape [3]int `json:"shape"`
	Cubes []int  `json:"cubes"`
}

// SliceResult describes a slice.
type SliceResult struct {
	Name          string  `json:"name"`
	Shape         [3]int  `json:"shape"`
	Cubes         []int   `json:"cubes"`
	Circuits      int     `json:"circuits"`
	WorstMarginDB float64 `json:"worstMarginDb"`
}

// NameParams addresses a slice by name. IfPresent makes a destroy of an
// absent slice succeed as a no-op (reconciler idempotency); it is ignored
// by the other name-addressed methods.
type NameParams struct {
	Name      string `json:"name"`
	IfPresent bool   `json:"ifPresent,omitempty"`
}

// EnsureParams drives core.Fabric.EnsureSlice over the wire: make the
// named slice exist with the given shape. An empty cube list reuses an
// existing slice's cubes and is an error for a new slice.
type EnsureParams struct {
	Name  string `json:"name"`
	Shape [3]int `json:"shape"`
	Cubes []int  `json:"cubes,omitempty"`
}

// EnsureResult reports the ensured slice and whether hardware changed.
type EnsureResult struct {
	Slice   SliceResult `json:"slice"`
	Changed bool        `json:"changed"`
}

// CubeParams addresses a cube.
type CubeParams struct {
	Cube int `json:"cube"`
}

// FailCubeResult reports the outcome of a cube failure.
type FailCubeResult struct {
	// Replacement is the cube swapped in, or -1 when no slice was
	// affected.
	Replacement int `json:"replacement"`
}

// ObserveBERParams feeds a BER telemetry sample.
type ObserveBERParams struct {
	OCS  int     `json:"ocs"`
	Port int     `json:"port"`
	BER  float64 `json:"ber"`
}

// ObserveBERResult reports whether the sample was anomalous.
type ObserveBERResult struct {
	Anomalous bool `json:"anomalous"`
}
