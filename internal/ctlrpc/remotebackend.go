package ctlrpc

import (
	"strings"

	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

// RemoteBackend adapts a fabric daemon reached over ctlrpc to the
// fleet.Backend interface, so a fleet.Manager can reconcile pods that live
// behind remote lwfd daemons. Many backends (one per pod) share ONE
// pipelined Client: the manager's per-pod reconcile workers issue their
// ensure/destroy/status calls concurrently and the client keeps them all
// in flight on the one connection, instead of queueing every worker
// behind a single request/response exchange.
//
// Pods are scoped onto the shared fabric by a slice-name prefix
// ("<pod>/"): Ensure and Destroy prepend it, Slices and Info see only
// slices carrying it. Intents must pin cubes — the remote fabric does not
// place slices (core.EnsureSlice rejects a new slice with no cubes).
type RemoteBackend struct {
	c      *Client
	prefix string
}

// NewRemoteBackend wraps a shared client; pod names the backend's scope
// prefix (it must be unique per backend on one daemon).
func NewRemoteBackend(c *Client, pod string) *RemoteBackend {
	return &RemoteBackend{c: c, prefix: pod + "/"}
}

// Ensure implements fleet.Backend over MethodEnsure.
func (b *RemoteBackend) Ensure(name string, shape topo.Shape, cubes []int) (bool, error) {
	_, changed, err := b.c.Ensure(b.prefix+name, [3]int{shape.X, shape.Y, shape.Z}, cubes)
	return changed, err
}

// Destroy implements fleet.Backend; destroying an absent slice is a no-op.
func (b *RemoteBackend) Destroy(name string) error {
	return b.c.DestroyIfPresent(b.prefix + name)
}

// Slices implements fleet.Backend: the daemon's slices carrying this
// backend's prefix, names unscoped, sorted (the daemon reports them
// sorted already).
func (b *RemoteBackend) Slices() []string {
	st, err := b.c.Status()
	if err != nil {
		return nil
	}
	var names []string
	for _, s := range st.Slices {
		if strings.HasPrefix(s, b.prefix) {
			names = append(names, strings.TrimPrefix(s, b.prefix))
		}
	}
	return names
}

// Info implements fleet.Backend. Cube and circuit counts are fabric-wide
// (the daemon hosts every scoped pod), slice names are this pod's.
func (b *RemoteBackend) Info() fleet.PodInfo {
	st, err := b.c.Status()
	if err != nil {
		return fleet.PodInfo{}
	}
	return fleet.PodInfo{
		InstalledCubes: st.InstalledCubes,
		FreeCubes:      len(st.FreeCubes),
		Slices:         b.Slices(),
		Circuits:       st.TotalCircuits,
	}
}
