package ctlrpc

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"lightwave/internal/fleet"
	"lightwave/internal/sched"
	"lightwave/internal/topo"
)

// nopOps satisfies sched.ClusterOps without a fabric: the RPC tests only
// exercise the wire protocol and the scheduler's bookkeeping.
type nopOps struct{}

func (nopOps) EnsureJobSlice(pod, slice string, shape topo.Shape, cubes []int) error { return nil }
func (nopOps) RemoveJobSlice(pod, slice string) error                                { return nil }

func startSchedFleetServer(t *testing.T) func() *Client {
	t.Helper()
	m := fleet.NewManager(fleet.Options{
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      8 * time.Millisecond,
		QuarantineAfter: 3,
		Seed:            42,
	})
	t.Cleanup(m.Close)
	s, err := sched.NewScheduler(sched.SchedulerConfig{
		Pods:           []string{"p0", "p1"},
		InstalledCubes: 8,
		Ops:            nopOps{},
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewFleetServer(m)
	srv.SetSched(SchedulerProvider{S: s})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, lis)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return func() *Client {
		c, err := Dial(lis.Addr().String(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
}

func TestSchedDisabledOverWire(t *testing.T) {
	dial, _ := startChaosFleetServer(t)
	c := dial()
	st, err := c.SchedStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatalf("scheduler reported enabled on a daemon without one: %+v", st)
	}
	if _, err := c.SchedSubmit(4, 100); err == nil ||
		!strings.Contains(err.Error(), "scheduler disabled") {
		t.Fatalf("sched-submit without a scheduler: err=%v", err)
	}
}

func TestSchedSubmitStatusOverWire(t *testing.T) {
	dial := startSchedFleetServer(t)
	c := dial()

	st, err := c.SchedStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Policy != "reconfigurable" || len(st.Pods) != 2 {
		t.Fatalf("unexpected initial status: %+v", st)
	}
	if st.RunningJobs != 0 || st.Submitted != 0 {
		t.Fatalf("fresh scheduler not idle: %+v", st)
	}

	res, err := c.SchedSubmit(4, 250)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placed {
		t.Fatalf("4-cube job on an empty 2x8-cube fleet not placed: %+v", res)
	}
	// Oversized jobs are rejected by the scheduler, and the error crosses
	// the wire.
	if _, err := c.SchedSubmit(1000, 10); err == nil {
		t.Fatal("oversized job accepted")
	}

	st, err = c.SchedStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Started != 1 || st.RunningJobs != 1 {
		t.Fatalf("status after one placement: %+v", st)
	}
}
