package ctlrpc

import (
	"errors"
	"fmt"

	"lightwave/internal/chaos"
)

// Chaos method names. Both daemons serve them, but only when started
// with their explicit chaos enable flag — fault injection is a sharp
// tool, so a daemon without the flag rejects chaos-inject outright.
const (
	MethodChaosInject = "chaos-inject"
	MethodChaosStatus = "chaos-status"
)

// ErrChaosDisabled is returned for chaos-inject on a daemon that was not
// started with fault injection enabled.
var ErrChaosDisabled = errors.New("chaos injection disabled (start the daemon with -chaos)")

// ChaosInjectParams is one fault event. Kind takes the internal/chaos
// kind strings (pod-loss, pod-restore, ocs-outage, ocs-restore,
// circuit-flap, ber-degrade, stuck-drain, slow-drain).
type ChaosInjectParams struct {
	Kind            string  `json:"kind"`
	Pod             string  `json:"pod,omitempty"`
	OCS             int     `json:"ocs,omitempty"`
	Port            int     `json:"port,omitempty"` // fabric-daemon ber-degrade only
	TrunkA          int     `json:"trunkA,omitempty"`
	TrunkB          int     `json:"trunkB,omitempty"`
	BER             float64 `json:"ber,omitempty"`
	DurationSeconds float64 `json:"durationSeconds,omitempty"`
}

// Event converts the wire form to a chaos.Event (onset at time zero:
// live injection is immediate; durations schedule the lift).
func (p ChaosInjectParams) Event() chaos.Event {
	return chaos.Event{
		Kind:            chaos.Kind(p.Kind),
		Pod:             p.Pod,
		OCS:             p.OCS,
		Trunk:           [2]int{p.TrunkA, p.TrunkB},
		BER:             p.BER,
		DurationSeconds: p.DurationSeconds,
	}
}

// ChaosInjectResult acknowledges an injection.
type ChaosInjectResult struct {
	Applied string `json:"applied"`
}

// ChaosStatusResult reports a daemon's fault-injection state. Enabled is
// false when the daemon runs without the chaos flag; the remaining
// fields then carry zero values.
type ChaosStatusResult struct {
	Enabled       bool   `json:"enabled"`
	InjectedTotal int    `json:"injectedTotal"`
	ActiveFaults  int    `json:"activeFaults"`
	TrunksDown    int    `json:"trunksDown"`
	DownSwitches  int    `json:"downSwitches"`
	LastFault     string `json:"lastFault,omitempty"`
}

// ChaosProvider supplies the chaos methods; daemons adapt their injector
// to it. Implementations must be safe for concurrent use.
type ChaosProvider interface {
	ChaosInject(ChaosInjectParams) (ChaosInjectResult, error)
	ChaosStatus() ChaosStatusResult
}

// InjectorProvider adapts a chaos.Injector to ChaosProvider: events are
// validated against a one-event scenario, applied live, and bounded
// transients lift on a wall-clock timer.
type InjectorProvider struct {
	In *chaos.Injector
}

// ChaosInject implements ChaosProvider.
func (p InjectorProvider) ChaosInject(params ChaosInjectParams) (ChaosInjectResult, error) {
	ev := params.Event()
	probe := chaos.Scenario{Name: "rpc", HorizonSeconds: ev.DurationSeconds + 1, Events: []chaos.Event{ev}}
	if err := probe.Validate(); err != nil {
		return ChaosInjectResult{}, err
	}
	if err := p.In.ApplyLive(ev); err != nil {
		return ChaosInjectResult{}, err
	}
	return ChaosInjectResult{Applied: ev.String()}, nil
}

// ChaosStatus implements ChaosProvider.
func (p InjectorProvider) ChaosStatus() ChaosStatusResult {
	st := p.In.Status()
	return ChaosStatusResult{
		Enabled:       true,
		InjectedTotal: st.InjectedTotal,
		ActiveFaults:  st.ActiveFaults,
		TrunksDown:    st.TrunksDown,
		DownSwitches:  st.DownSwitches,
		LastFault:     st.LastFault,
	}
}

// chaosCall dispatches the chaos methods against an optional provider —
// shared by the fabric and fleet servers.
func chaosCall(p ChaosProvider, method string, unmarshal func(any) error) (any, error) {
	if method == MethodChaosStatus {
		if p == nil {
			return ChaosStatusResult{}, nil
		}
		return p.ChaosStatus(), nil
	}
	if p == nil {
		return nil, ErrChaosDisabled
	}
	var params ChaosInjectParams
	if err := unmarshal(&params); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	return p.ChaosInject(params)
}
