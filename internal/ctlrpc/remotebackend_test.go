package ctlrpc

import (
	"testing"
	"time"

	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

// waitConverged polls until every named pod reports converged.
func waitConverged(t *testing.T, m *fleet.Manager, pods ...string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, name := range pods {
			ps, err := m.PodStatus(name)
			if err != nil {
				t.Fatal(err)
			}
			if !ps.Converged || ps.Quarantined {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, name := range pods {
		ps, _ := m.PodStatus(name)
		t.Errorf("pod %s not converged: %+v", name, ps)
	}
	t.FailNow()
}

// TestRemoteBackendFleetReconcile reconciles a multi-pod fleet.Manager
// against ONE remote fabric daemon through ONE shared pipelined client:
// each pod is a prefix-scoped RemoteBackend, and the per-pod reconcile
// workers issue their ensure/destroy/status calls concurrently over the
// single connection.
func TestRemoteBackendFleetReconcile(t *testing.T) {
	c := startServer(t, 16)

	m := fleet.NewManager(fleet.Options{})
	defer m.Close()
	pods := []string{"podA", "podB"}
	for _, name := range pods {
		if err := m.AddPod(name, NewRemoteBackend(c, name)); err != nil {
			t.Fatal(err)
		}
	}

	// Remote intents must pin cubes: the daemon does not place slices.
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	if err := m.SetSliceIntent("podA", fleet.SliceIntent{Name: "a0", Shape: shape, Cubes: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("podA", fleet.SliceIntent{Name: "a1", Shape: shape, Cubes: []int{2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("podB", fleet.SliceIntent{Name: "b0", Shape: shape, Cubes: []int{4, 5}}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, m, pods...)

	// Pod views are scoped by prefix; the daemon sees the scoped names.
	psA, err := m.PodStatus("podA")
	if err != nil {
		t.Fatal(err)
	}
	if len(psA.ActualSlices) != 2 || psA.ActualSlices[0] != "a0" || psA.ActualSlices[1] != "a1" {
		t.Fatalf("podA slices = %v", psA.ActualSlices)
	}
	psB, _ := m.PodStatus("podB")
	if len(psB.ActualSlices) != 1 || psB.ActualSlices[0] != "b0" {
		t.Fatalf("podB slices = %v", psB.ActualSlices)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Slices) != 3 {
		t.Fatalf("daemon slices = %v", st.Slices)
	}
	for _, want := range []string{"podA/a0", "podA/a1", "podB/b0"} {
		found := false
		for _, s := range st.Slices {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("daemon slices = %v, missing %s", st.Slices, want)
		}
	}

	// Removing an intent destroys only that pod's slice; re-removal (absent
	// slice) stays converged because Destroy is idempotent over the wire.
	if err := m.RemoveSliceIntent("podA", "a1"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, m, pods...)
	psA, _ = m.PodStatus("podA")
	if len(psA.ActualSlices) != 1 || psA.ActualSlices[0] != "a0" {
		t.Fatalf("podA slices after remove = %v", psA.ActualSlices)
	}
	psB, _ = m.PodStatus("podB")
	if len(psB.ActualSlices) != 1 {
		t.Fatalf("podB slices disturbed: %v", psB.ActualSlices)
	}
	if n := c.UnknownResponses(); n != 0 {
		t.Fatalf("id mismatches on shared reconcile client: %d", n)
	}
}

// TestRemoteBackendDestroyAbsentIsNoOp pins the DestroyIfPresent contract
// RemoteBackend relies on.
func TestRemoteBackendDestroyAbsentIsNoOp(t *testing.T) {
	c := startServer(t, 4)
	b := NewRemoteBackend(c, "pod0")
	if err := b.Destroy("never-existed"); err != nil {
		t.Fatalf("destroying an absent slice: %v", err)
	}
	// Plain Destroy still errors, so operator tooling keeps its feedback.
	if err := c.Destroy("never-existed"); err == nil {
		t.Fatal("non-idempotent destroy of an absent slice succeeded")
	}
}
