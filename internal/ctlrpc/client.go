package ctlrpc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a synchronous control-protocol client. It is safe for
// concurrent use; calls are serialized on the wire.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	reader *bufio.Reader
	nextID uint64
}

// Dial connects to a fabric daemon.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ctlrpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, reader: bufio.NewReader(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one request/response exchange.
func (c *Client) call(method string, params, result any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req := Request{ID: c.nextID, Method: method}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("ctlrpc: encoding params: %w", err)
		}
		req.Params = raw
	}
	line, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := c.conn.Write(line); err != nil {
		return fmt.Errorf("ctlrpc: write: %w", err)
	}
	respLine, err := c.reader.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("ctlrpc: read: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(respLine, &resp); err != nil {
		return fmt.Errorf("ctlrpc: decoding response: %w", err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("ctlrpc: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return fmt.Errorf("ctlrpc: server: %s", resp.Error)
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("ctlrpc: decoding result: %w", err)
		}
	}
	return nil
}

// Status fetches fabric state.
func (c *Client) Status() (StatusResult, error) {
	var r StatusResult
	err := c.call(MethodStatus, nil, &r)
	return r, err
}

// Compose composes a slice.
func (c *Client) Compose(name string, shape [3]int, cubes []int) (SliceResult, error) {
	var r SliceResult
	err := c.call(MethodCompose, ComposeParams{Name: name, Shape: shape, Cubes: cubes}, &r)
	return r, err
}

// Destroy destroys a slice.
func (c *Client) Destroy(name string) error {
	return c.call(MethodDestroy, NameParams{Name: name}, nil)
}

// Slice fetches a slice's details.
func (c *Client) Slice(name string) (SliceResult, error) {
	var r SliceResult
	err := c.call(MethodSlice, NameParams{Name: name}, &r)
	return r, err
}

// Reshape changes a slice's shape in place; cubes may be nil to reuse the
// current cube set.
func (c *Client) Reshape(name string, shape [3]int, cubes []int) (SliceResult, error) {
	var r SliceResult
	err := c.call(MethodReshape, ReshapeParams{Name: name, Shape: shape, Cubes: cubes}, &r)
	return r, err
}

// FailCube reports a cube failure and returns the replacement cube (-1
// when no slice was affected).
func (c *Client) FailCube(cube int) (int, error) {
	var r FailCubeResult
	err := c.call(MethodFailCube, CubeParams{Cube: cube}, &r)
	return r.Replacement, err
}

// RepairCube returns a cube to service.
func (c *Client) RepairCube(cube int) error {
	return c.call(MethodRepairCube, CubeParams{Cube: cube}, nil)
}

// InstallCube adds a cube to the fabric.
func (c *Client) InstallCube(cube int) error {
	return c.call(MethodInstallCube, CubeParams{Cube: cube}, nil)
}

// RepairLink repatches a cube's damaged fiber pair on an OCS to a spare
// port and returns the spare port id.
func (c *Client) RepairLink(ocsID, cube int) (int, error) {
	var r RepairLinkResult
	err := c.call(MethodRepairLink, RepairLinkParams{OCS: ocsID, Cube: cube}, &r)
	return r.SparePort, err
}

// Metrics fetches the daemon's telemetry exposition (empty when metrics
// are disabled).
func (c *Client) Metrics() (string, error) {
	var r MetricsResult
	err := c.call(MethodMetrics, nil, &r)
	return r.Text, err
}

// ObserveBER feeds a BER sample and reports whether it was anomalous.
func (c *Client) ObserveBER(ocsID, port int, ber float64) (bool, error) {
	var r ObserveBERResult
	err := c.call(MethodObserveBER, ObserveBERParams{OCS: ocsID, Port: port, BER: ber}, &r)
	return r.Anomalous, err
}
