package ctlrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client errors.
var (
	// ErrClientBroken marks a client whose connection desynced: a mid-call
	// transport error (partial write, short read, timeout) leaves the
	// request/response framing in an undefined state, so every later call
	// fails fast instead of pairing responses with the wrong requests.
	ErrClientBroken = errors.New("ctlrpc: client broken by earlier transport error")
	// ErrClientStreaming marks a client whose connection was dedicated to
	// a watch event stream; open a second client for unary calls.
	ErrClientStreaming = errors.New("ctlrpc: connection dedicated to a watch stream")
)

// Client is a synchronous control-protocol client. It is safe for
// concurrent use; calls are serialized on the wire.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	reader    *bufio.Reader
	nextID    uint64
	broken    error // first transport error; sticky
	streaming bool  // connection handed over to a Watch
}

// Dial connects to a fabric or fleet daemon.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ctlrpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, reader: bufio.NewReader(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one request/response exchange with no deadline.
func (c *Client) call(method string, params, result any) error {
	return c.CallContext(context.Background(), method, params, result)
}

// CallContext performs one request/response exchange, honouring the
// context's deadline and cancellation — a hung server no longer blocks the
// caller forever. A call abandoned mid-exchange leaves the wire in an
// undefined state, so it marks the client broken (ErrClientBroken) and all
// subsequent calls fail fast; reconnect to recover.
func (c *Client) CallContext(ctx context.Context, method string, params, result any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return fmt.Errorf("%w: %v", ErrClientBroken, c.broken)
	}
	if c.streaming {
		return ErrClientStreaming
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	c.nextID++
	req := Request{ID: c.nextID, Method: method}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("ctlrpc: encoding params: %w", err)
		}
		req.Params = raw
	}
	line, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	line = append(line, '\n')

	disarm := c.armContext(ctx)
	defer disarm()

	if _, err := c.conn.Write(line); err != nil {
		return c.transportErr(ctx, "write", err)
	}
	respLine, err := c.reader.ReadBytes('\n')
	if err != nil {
		return c.transportErr(ctx, "read", err)
	}
	var resp Response
	if err := json.Unmarshal(respLine, &resp); err != nil {
		return c.transportErr(ctx, "decoding response", err)
	}
	if resp.ID != req.ID {
		return c.transportErr(ctx, "framing",
			fmt.Errorf("response id %d for request %d", resp.ID, req.ID))
	}
	if resp.Error != "" {
		return fmt.Errorf("ctlrpc: server: %s", resp.Error)
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("ctlrpc: decoding result: %w", err)
		}
	}
	return nil
}

// transportErr records the first mid-call failure and makes the client fail
// fast from then on. When the context expired, the context error is
// surfaced so errors.Is(err, context.DeadlineExceeded) works.
func (c *Client) transportErr(ctx context.Context, op string, err error) error {
	c.broken = fmt.Errorf("%s: %v", op, err)
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("ctlrpc: %s: %v: %w", op, err, cerr)
	}
	// The connection deadline can fire a hair before the context's own
	// timer; surface the deadline error the caller armed for.
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		if _, ok := ctx.Deadline(); ok {
			return fmt.Errorf("ctlrpc: %s: %v: %w", op, err, context.DeadlineExceeded)
		}
	}
	return fmt.Errorf("ctlrpc: %s: %w", op, err)
}

// armContext maps the context onto connection deadlines: an expired or
// cancelled context interrupts the in-flight read/write. The returned
// function disarms the watchdog and clears the deadline.
func (c *Client) armContext(ctx context.Context) func() {
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline && ctx.Done() == nil {
		return func() {}
	}
	if hasDeadline {
		_ = c.conn.SetDeadline(deadline)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			_ = c.conn.SetDeadline(time.Unix(1, 0)) // unblock immediately
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		<-done
		_ = c.conn.SetDeadline(time.Time{})
	}
}

// Status fetches fabric state.
func (c *Client) Status() (StatusResult, error) {
	var r StatusResult
	err := c.call(MethodStatus, nil, &r)
	return r, err
}

// StatusContext is Status with a deadline.
func (c *Client) StatusContext(ctx context.Context) (StatusResult, error) {
	var r StatusResult
	err := c.CallContext(ctx, MethodStatus, nil, &r)
	return r, err
}

// Compose composes a slice.
func (c *Client) Compose(name string, shape [3]int, cubes []int) (SliceResult, error) {
	var r SliceResult
	err := c.call(MethodCompose, ComposeParams{Name: name, Shape: shape, Cubes: cubes}, &r)
	return r, err
}

// Destroy destroys a slice.
func (c *Client) Destroy(name string) error {
	return c.call(MethodDestroy, NameParams{Name: name}, nil)
}

// Slice fetches a slice's details.
func (c *Client) Slice(name string) (SliceResult, error) {
	var r SliceResult
	err := c.call(MethodSlice, NameParams{Name: name}, &r)
	return r, err
}

// Reshape changes a slice's shape in place; cubes may be nil to reuse the
// current cube set.
func (c *Client) Reshape(name string, shape [3]int, cubes []int) (SliceResult, error) {
	var r SliceResult
	err := c.call(MethodReshape, ReshapeParams{Name: name, Shape: shape, Cubes: cubes}, &r)
	return r, err
}

// FailCube reports a cube failure and returns the replacement cube (-1
// when no slice was affected).
func (c *Client) FailCube(cube int) (int, error) {
	var r FailCubeResult
	err := c.call(MethodFailCube, CubeParams{Cube: cube}, &r)
	return r.Replacement, err
}

// RepairCube returns a cube to service.
func (c *Client) RepairCube(cube int) error {
	return c.call(MethodRepairCube, CubeParams{Cube: cube}, nil)
}

// InstallCube adds a cube to the fabric.
func (c *Client) InstallCube(cube int) error {
	return c.call(MethodInstallCube, CubeParams{Cube: cube}, nil)
}

// RepairLink repatches a cube's damaged fiber pair on an OCS to a spare
// port and returns the spare port id.
func (c *Client) RepairLink(ocsID, cube int) (int, error) {
	var r RepairLinkResult
	err := c.call(MethodRepairLink, RepairLinkParams{OCS: ocsID, Cube: cube}, &r)
	return r.SparePort, err
}

// Metrics fetches the daemon's telemetry exposition (empty when metrics
// are disabled).
func (c *Client) Metrics() (string, error) {
	var r MetricsResult
	err := c.call(MethodMetrics, nil, &r)
	return r.Text, err
}

// TEStatus fetches the daemon's topology-engineering loop state; Enabled
// is false when the daemon runs no TE loop.
func (c *Client) TEStatus() (TEStatusResult, error) {
	var r TEStatusResult
	err := c.call(MethodTEStatus, nil, &r)
	return r, err
}

// ChaosStatus fetches the daemon's fault-injection state; Enabled is
// false when the daemon runs without its chaos flag.
func (c *Client) ChaosStatus() (ChaosStatusResult, error) {
	var r ChaosStatusResult
	err := c.call(MethodChaosStatus, nil, &r)
	return r, err
}

// ChaosInject applies one live fault event on the daemon.
func (c *Client) ChaosInject(p ChaosInjectParams) (ChaosInjectResult, error) {
	var r ChaosInjectResult
	err := c.call(MethodChaosInject, p, &r)
	return r, err
}

// SchedStatus fetches the daemon's slice-scheduler state; Enabled is
// false when the daemon runs no scheduler loop.
func (c *Client) SchedStatus() (SchedStatusResult, error) {
	var r SchedStatusResult
	err := c.call(MethodSchedStatus, nil, &r)
	return r, err
}

// SchedSubmit enqueues one job on the daemon's scheduler.
func (c *Client) SchedSubmit(cubes int, durationSeconds float64) (SchedSubmitResult, error) {
	var r SchedSubmitResult
	err := c.call(MethodSchedSubmit, SchedSubmitParams{Cubes: cubes, DurationSeconds: durationSeconds}, &r)
	return r, err
}

// ObserveBER feeds a BER sample and reports whether it was anomalous.
func (c *Client) ObserveBER(ocsID, port int, ber float64) (bool, error) {
	var r ObserveBERResult
	err := c.call(MethodObserveBER, ObserveBERParams{OCS: ocsID, Port: port, BER: ber}, &r)
	return r.Anomalous, err
}
