package ctlrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Client errors.
var (
	// ErrClientBroken marks a client whose connection died: a transport
	// error (write failure, read failure, undecodable response, close)
	// leaves the stream unusable, so every later call fails fast instead
	// of hanging on a dead wire. Reconnect to recover.
	ErrClientBroken = errors.New("ctlrpc: client broken by earlier transport error")
	// ErrClientStreaming marks a client whose connection was dedicated to
	// a watch event stream; open a second client for unary calls.
	ErrClientStreaming = errors.New("ctlrpc: connection dedicated to a watch stream")

	// errClientClosed is the sticky error recorded by Close.
	errClientClosed = errors.New("client closed")
)

// Client is a fully pipelined control-protocol client, safe for concurrent
// use: N goroutines sharing one Client get N requests in flight on the one
// connection. A writer goroutine coalesces queued request lines into
// batched writes; a reader goroutine demultiplexes responses by request ID
// to per-call channels, so calls complete in whatever order the server
// answers.
//
// Context semantics: a call abandoned on deadline or cancellation simply
// forgets its ID — the late response is dropped when it arrives — and the
// client stays healthy for every other call. Only genuine transport errors
// (write/read/decode failures, Close) mark the client broken.
type Client struct {
	conn net.Conn

	mu        sync.Mutex
	nextID    uint64
	pending   map[uint64]pendingCall // in-flight unary calls by ID
	abandoned map[uint64]bool        // context-abandoned IDs: drop silently
	broken    error                  // first transport error; sticky
	streaming bool                   // connection handed over to a Watch
	watchID   uint64
	watchCh   chan Response
	started   bool

	// Write batching: callers encode requests directly into wbuf under
	// wmu and nudge the writer through the one-slot wkick channel; the
	// writer swaps in an empty buffer and sends the whole batch in one
	// syscall, so wakeups are per-batch instead of per-request.
	wmu   sync.Mutex
	wbuf  []byte
	wkick chan struct{}
	wsent atomic.Int64 // total requests encoded; batch-growth probe

	dead chan struct{} // closed on the first transport error

	unknown atomic.Int64 // responses dropped for an unknown (never-issued) ID

	// Logf, when non-nil, receives diagnostics about dropped responses
	// with unknown IDs. It defaults to log.Printf; set it before the
	// first call.
	Logf func(format string, args ...any)
}

// pendingCall parks one in-flight call. discard marks callers that will
// not read the result payload, so the reader skips detaching it from the
// read buffer.
type pendingCall struct {
	ch      chan Response
	discard bool
}

// Dial connects to a fabric or fleet daemon.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ctlrpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:      conn,
		pending:   make(map[uint64]pendingCall),
		abandoned: make(map[uint64]bool),
		wbuf:      make([]byte, 0, 4096),
		wkick:     make(chan struct{}, 1),
		dead:      make(chan struct{}),
		Logf:      log.Printf,
	}
}

// Close closes the connection; in-flight calls fail with ErrClientBroken.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(errClientClosed)
	return err
}

// startLocked launches the reader and writer goroutines on first use;
// c.mu must be held.
func (c *Client) startLocked() {
	if c.started {
		return
	}
	c.started = true
	go c.readLoop()
	go c.writeLoop()
}

// fail records the first transport error, wakes everything waiting on the
// client, and fails all pending calls. Idempotent.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.broken != nil {
		c.mu.Unlock()
		return
	}
	c.broken = err
	pending := c.pending
	c.pending = make(map[uint64]pendingCall)
	c.abandoned = make(map[uint64]bool)
	close(c.dead)
	c.mu.Unlock()
	for _, pc := range pending {
		close(pc.ch)
	}
}

func (c *Client) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Errorf("%w: %v", ErrClientBroken, c.broken)
}

// enqueue appends one encoded request to the write batch and wakes the
// writer. It never blocks: if the client broke, the bytes are simply
// never written and the caller's response channel reports the failure.
func (c *Client) enqueue(req *Request) {
	c.wmu.Lock()
	c.wbuf = appendRequest(c.wbuf, req)
	c.wmu.Unlock()
	c.wsent.Add(1)
	select {
	case c.wkick <- struct{}{}:
	default: // writer already scheduled to run
	}
}

// writeLoop flushes the request batch: it swaps the shared buffer for an
// empty one and sends everything encoded since the last flush in a single
// syscall.
func (c *Client) writeLoop() {
	local := make([]byte, 0, 4096)
	for {
		select {
		case <-c.dead:
			return
		case <-c.wkick:
		}
		// Yield while the batch is still growing: each yield lets
		// pipelined callers that just received responses encode their
		// next requests, so one write syscall carries the whole burst.
		// Stop as soon as a yield adds nothing.
		for prev, spins := c.wsent.Load(), 0; spins < 4; spins++ {
			runtime.Gosched()
			n := c.wsent.Load()
			if n <= prev {
				break
			}
			prev = n
		}
		c.wmu.Lock()
		local, c.wbuf = c.wbuf, local[:0]
		c.wmu.Unlock()
		if len(local) == 0 {
			continue
		}
		if _, err := c.conn.Write(local); err != nil {
			c.fail(fmt.Errorf("write: %v", err))
			return
		}
	}
}

// readLoop demultiplexes responses to the pending call (or watch stream)
// registered under their ID. A response carrying an ID that was never
// issued is logged and dropped — a stray ID must not desynchronize every
// other call on the stream.
func (c *Client) readLoop() {
	br := newLineReader(c.conn)
	// Hoisted out of the loop: &resp escapes into parseResponse, so an
	// in-loop declaration heap-allocates per response. Each channel send
	// copies the value, so reuse is safe.
	var resp Response
	for {
		line, err := br.next()
		if err != nil {
			c.fail(fmt.Errorf("read: %v", err))
			return
		}
		if err := parseResponse(line, &resp); err != nil {
			c.fail(fmt.Errorf("decoding response: %v", err))
			return
		}
		c.mu.Lock()
		if c.watchCh != nil && resp.ID == c.watchID {
			ch := c.watchCh
			c.mu.Unlock()
			// The fast-path Result aliases the reader buffer; the stream
			// consumer outlives the next read, so detach it.
			if len(resp.Result) != 0 {
				resp.Result = append(json.RawMessage(nil), resp.Result...)
			}
			select {
			case ch <- resp:
			case <-c.dead:
				return
			}
			continue
		}
		if pc, ok := c.pending[resp.ID]; ok {
			delete(c.pending, resp.ID)
			c.mu.Unlock()
			if pc.discard {
				// The caller will not decode the payload; dropping it here
				// saves the detach copy on the hot fire-and-check path.
				resp.Result = nil
			} else if len(resp.Result) != 0 {
				// Detach the buffer-aliasing Result before it crosses to a
				// caller that outlives the next read.
				resp.Result = append(json.RawMessage(nil), resp.Result...)
			}
			pc.ch <- resp // buffered; never blocks
			continue
		}
		if c.abandoned[resp.ID] {
			// The call's context expired before the server answered; the
			// response is late, not wrong.
			delete(c.abandoned, resp.ID)
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()
		c.unknown.Add(1)
		if c.Logf != nil {
			c.Logf("ctlrpc: dropping response with unknown id %d", resp.ID)
		}
	}
}

// UnknownResponses reports how many responses were dropped because their
// ID matched no issued request — the request-ID mismatch count; it stays
// 0 on a healthy stream.
func (c *Client) UnknownResponses() int64 { return c.unknown.Load() }

// respChPool recycles per-call response channels; a channel is pooled
// only after its single buffered send was consumed, so pooled channels are
// always empty and open.
var respChPool = sync.Pool{New: func() any { return make(chan Response, 1) }}

// register assigns the next request ID and parks a response channel for
// it; discard marks calls that will not read the result payload. It also
// lazily starts the reader/writer goroutines.
func (c *Client) register(discard bool) (uint64, chan Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrClientBroken, c.broken)
	}
	if c.streaming {
		return 0, nil, ErrClientStreaming
	}
	c.startLocked()
	c.nextID++
	ch := respChPool.Get().(chan Response)
	c.pending[c.nextID] = pendingCall{ch: ch, discard: discard}
	return c.nextID, ch, nil
}

// abandon forgets an in-flight call whose context expired; the eventual
// response is dropped silently.
func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	if _, ok := c.pending[id]; ok {
		delete(c.pending, id)
		c.abandoned[id] = true
	}
	c.mu.Unlock()
}

// call performs one request/response exchange with no deadline.
func (c *Client) call(method string, params, result any) error {
	return c.CallContext(context.Background(), method, params, result)
}

// CallContext performs one request/response exchange, honouring the
// context's deadline and cancellation — a hung server no longer blocks the
// caller forever. Abandoning a call on deadline does NOT break the client:
// the response is matched by ID when it eventually arrives and dropped, so
// concurrent calls sharing the client are unaffected. Transport errors
// still mark the client broken (ErrClientBroken) and fail every later
// call fast; reconnect to recover.
func (c *Client) CallContext(ctx context.Context, method string, params, result any) error {
	if err := ctx.Err(); err != nil {
		return err // nothing hit the wire; client stays healthy
	}
	id, ch, err := c.register(result == nil)
	if err != nil {
		return err
	}
	req := Request{ID: id, Method: method}
	if params != nil {
		raw, merr := json.Marshal(params)
		if merr != nil {
			c.abandon(id)
			return fmt.Errorf("ctlrpc: encoding params: %w", merr)
		}
		req.Params = raw
	}
	c.enqueue(&req)

	if ctx.Done() == nil {
		// The context can never fire (context.Background and friends), so
		// a plain receive skips the select machinery — the common case for
		// reconcilers and the load harness. A broken client still closes
		// ch, so this cannot hang on a dead wire.
		resp, ok := <-ch
		return c.finish(resp, ok, ch, result)
	}
	select {
	case resp, ok := <-ch:
		return c.finish(resp, ok, ch, result)
	case <-ctx.Done():
		// Do not pool ch: the late response may still land in it.
		c.abandon(id)
		return ctx.Err()
	}
}

// finish consumes one delivered response: it recycles the call's channel
// and decodes the result (ok=false means the client broke mid-call).
func (c *Client) finish(resp Response, ok bool, ch chan Response, result any) error {
	if !ok {
		return c.brokenErr()
	}
	respChPool.Put(ch)
	if resp.Error != "" {
		return fmt.Errorf("ctlrpc: server: %s", resp.Error)
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("ctlrpc: decoding result: %w", err)
		}
	}
	return nil
}

// lineReader yields newline-terminated lines without a per-line
// allocation: short lines alias the bufio buffer (valid until the next
// call, long enough for json.Unmarshal to copy what it keeps), and longer
// lines accumulate into one reusable spill buffer.
type lineReader struct {
	br  *bufio.Reader
	acc []byte
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(r, 64*1024)}
}

func (l *lineReader) next() ([]byte, error) {
	frag, err := l.br.ReadSlice('\n')
	if err == nil {
		return frag, nil
	}
	if err != bufio.ErrBufferFull {
		if err == io.EOF && len(frag) > 0 {
			return frag, nil
		}
		return nil, err
	}
	l.acc = append(l.acc[:0], frag...)
	for {
		frag, err = l.br.ReadSlice('\n')
		l.acc = append(l.acc, frag...)
		switch err {
		case nil:
			return l.acc, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(l.acc) > 0 {
				return l.acc, nil
			}
			return nil, err
		default:
			return nil, err
		}
	}
}

// Status fetches fabric state.
func (c *Client) Status() (StatusResult, error) {
	var r StatusResult
	err := c.call(MethodStatus, nil, &r)
	return r, err
}

// StatusContext is Status with a deadline.
func (c *Client) StatusContext(ctx context.Context) (StatusResult, error) {
	var r StatusResult
	err := c.CallContext(ctx, MethodStatus, nil, &r)
	return r, err
}

// Compose composes a slice.
func (c *Client) Compose(name string, shape [3]int, cubes []int) (SliceResult, error) {
	var r SliceResult
	err := c.call(MethodCompose, ComposeParams{Name: name, Shape: shape, Cubes: cubes}, &r)
	return r, err
}

// Destroy destroys a slice.
func (c *Client) Destroy(name string) error {
	return c.call(MethodDestroy, NameParams{Name: name}, nil)
}

// DestroyIfPresent destroys a slice, succeeding as a no-op when the slice
// does not exist — the idempotent form reconcilers retry.
func (c *Client) DestroyIfPresent(name string) error {
	return c.call(MethodDestroy, NameParams{Name: name, IfPresent: true}, nil)
}

// Ensure drives the fabric toward "slice exists with this shape on these
// cubes" (core.EnsureSlice over the wire) and reports whether hardware
// changed.
func (c *Client) Ensure(name string, shape [3]int, cubes []int) (SliceResult, bool, error) {
	var r EnsureResult
	err := c.call(MethodEnsure, EnsureParams{Name: name, Shape: shape, Cubes: cubes}, &r)
	return r.Slice, r.Changed, err
}

// Slice fetches a slice's details.
func (c *Client) Slice(name string) (SliceResult, error) {
	var r SliceResult
	err := c.call(MethodSlice, NameParams{Name: name}, &r)
	return r, err
}

// Reshape changes a slice's shape in place; cubes may be nil to reuse the
// current cube set.
func (c *Client) Reshape(name string, shape [3]int, cubes []int) (SliceResult, error) {
	var r SliceResult
	err := c.call(MethodReshape, ReshapeParams{Name: name, Shape: shape, Cubes: cubes}, &r)
	return r, err
}

// FailCube reports a cube failure and returns the replacement cube (-1
// when no slice was affected).
func (c *Client) FailCube(cube int) (int, error) {
	var r FailCubeResult
	err := c.call(MethodFailCube, CubeParams{Cube: cube}, &r)
	return r.Replacement, err
}

// RepairCube returns a cube to service.
func (c *Client) RepairCube(cube int) error {
	return c.call(MethodRepairCube, CubeParams{Cube: cube}, nil)
}

// InstallCube adds a cube to the fabric.
func (c *Client) InstallCube(cube int) error {
	return c.call(MethodInstallCube, CubeParams{Cube: cube}, nil)
}

// RepairLink repatches a cube's damaged fiber pair on an OCS to a spare
// port and returns the spare port id.
func (c *Client) RepairLink(ocsID, cube int) (int, error) {
	var r RepairLinkResult
	err := c.call(MethodRepairLink, RepairLinkParams{OCS: ocsID, Cube: cube}, &r)
	return r.SparePort, err
}

// Metrics fetches the daemon's telemetry exposition (empty when metrics
// are disabled).
func (c *Client) Metrics() (string, error) {
	var r MetricsResult
	err := c.call(MethodMetrics, nil, &r)
	return r.Text, err
}

// TEStatus fetches the daemon's topology-engineering loop state; Enabled
// is false when the daemon runs no TE loop.
func (c *Client) TEStatus() (TEStatusResult, error) {
	var r TEStatusResult
	err := c.call(MethodTEStatus, nil, &r)
	return r, err
}

// ChaosStatus fetches the daemon's fault-injection state; Enabled is
// false when the daemon runs without its chaos flag.
func (c *Client) ChaosStatus() (ChaosStatusResult, error) {
	var r ChaosStatusResult
	err := c.call(MethodChaosStatus, nil, &r)
	return r, err
}

// ChaosInject applies one live fault event on the daemon.
func (c *Client) ChaosInject(p ChaosInjectParams) (ChaosInjectResult, error) {
	var r ChaosInjectResult
	err := c.call(MethodChaosInject, p, &r)
	return r, err
}

// SchedStatus fetches the daemon's slice-scheduler state; Enabled is
// false when the daemon runs no scheduler loop.
func (c *Client) SchedStatus() (SchedStatusResult, error) {
	var r SchedStatusResult
	err := c.call(MethodSchedStatus, nil, &r)
	return r, err
}

// SchedSubmit enqueues one job on the daemon's scheduler.
func (c *Client) SchedSubmit(cubes int, durationSeconds float64) (SchedSubmitResult, error) {
	var r SchedSubmitResult
	err := c.call(MethodSchedSubmit, SchedSubmitParams{Cubes: cubes, DurationSeconds: durationSeconds}, &r)
	return r, err
}

// ObserveBER feeds a BER sample and reports whether it was anomalous.
func (c *Client) ObserveBER(ocsID, port int, ber float64) (bool, error) {
	var r ObserveBERResult
	err := c.call(MethodObserveBER, ObserveBERParams{OCS: ocsID, Port: port, BER: ber}, &r)
	return r.Anomalous, err
}
