package ctlrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"lightwave/internal/core"
	"lightwave/internal/topo"
)

// Server serves the control protocol for one fabric. Fabric methods are
// not concurrency-safe, so the server serializes all mutations.
type Server struct {
	mu     sync.Mutex
	fabric *core.Fabric
	te     TEStatusProvider
	chaos  ChaosProvider
}

// NewServer wraps a fabric.
func NewServer(f *core.Fabric) *Server {
	return &Server{fabric: f}
}

// SetTE attaches a topology-engineering status provider. Call before
// Serve; a nil provider reports TE as disabled.
func (s *Server) SetTE(p TEStatusProvider) { s.te = p }

// SetChaos attaches a fault-injection provider. Call before Serve; a nil
// provider reports chaos as disabled and rejects chaos-inject.
func (s *Server) SetChaos(p ChaosProvider) { s.chaos = p }

// Serve accepts connections until the listener closes or ctx is cancelled.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	return serveLoop(ctx, lis, s.handleConn)
}

// serveLoop accepts connections and runs handle per connection until the
// listener closes or ctx is cancelled. Shared by the fabric and fleet
// servers.
func serveLoop(ctx context.Context, lis net.Listener, handle func(context.Context, net.Conn)) error {
	go func() {
		<-ctx.Done()
		lis.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			handle(ctx, conn)
		}()
	}
}

func (s *Server) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		resp := Response{}
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = s.dispatch(req)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	result, err := s.call(req.Method, req.Params)
	return marshalResponse(req.ID, result, err)
}

// marshalResponse packages a call's outcome as the wire response.
func marshalResponse(id uint64, result any, err error) Response {
	resp := Response{ID: id}
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	raw, err := json.Marshal(result)
	if err != nil {
		resp.Error = fmt.Sprintf("encoding result: %v", err)
		return resp
	}
	resp.Result = raw
	return resp
}

func (s *Server) call(method string, params json.RawMessage) (any, error) {
	switch method {
	case MethodStatus:
		st := StatusResult{
			InstalledCubes: s.fabric.InstalledCubes(),
			FreeCubes:      s.fabric.FreeCubes(),
			TotalCircuits:  s.fabric.TotalCircuits(),
		}
		for _, sl := range s.fabric.Slices() {
			st.Slices = append(st.Slices, sl.Name)
		}
		return st, nil

	case MethodCompose:
		var p ComposeParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		shape := topo.Shape{X: p.Shape[0], Y: p.Shape[1], Z: p.Shape[2]}
		sl, err := s.fabric.ComposeSlice(p.Name, shape, p.Cubes)
		if err != nil {
			return nil, err
		}
		return sliceResult(sl), nil

	case MethodDestroy:
		var p NameParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		if err := s.fabric.DestroySlice(p.Name); err != nil {
			return nil, err
		}
		return struct{}{}, nil

	case MethodSlice:
		var p NameParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		sl, err := s.fabric.GetSlice(p.Name)
		if err != nil {
			return nil, err
		}
		return sliceResult(sl), nil

	case MethodFailCube:
		var p CubeParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		rc, err := s.fabric.MarkCubeFailed(p.Cube)
		if err != nil {
			return nil, err
		}
		return FailCubeResult{Replacement: rc}, nil

	case MethodRepairCube:
		var p CubeParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		if err := s.fabric.RepairCube(p.Cube); err != nil {
			return nil, err
		}
		return struct{}{}, nil

	case MethodInstallCube:
		var p CubeParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		if err := s.fabric.InstallCube(p.Cube); err != nil {
			return nil, err
		}
		return struct{}{}, nil

	case MethodRepairLink:
		var p RepairLinkParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		spare, err := s.fabric.RepairLink(topo.OCSID(p.OCS), p.Cube)
		if err != nil {
			return nil, err
		}
		return RepairLinkResult{SparePort: int(spare)}, nil

	case MethodMetrics:
		reg := s.fabric.Metrics()
		if reg == nil {
			return MetricsResult{}, nil
		}
		return MetricsResult{Text: reg.Text()}, nil

	case MethodTEStatus:
		if s.te == nil {
			return TEStatusResult{}, nil
		}
		return s.te.TEStatus(), nil

	case MethodChaosInject, MethodChaosStatus:
		return chaosCall(s.chaos, method, func(v any) error { return json.Unmarshal(params, v) })

	case MethodReshape:
		var p ReshapeParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		shape := topo.Shape{X: p.Shape[0], Y: p.Shape[1], Z: p.Shape[2]}
		sl, err := s.fabric.ReshapeSlice(p.Name, shape, p.Cubes)
		if err != nil {
			return nil, err
		}
		return sliceResult(sl), nil

	case MethodObserveBER:
		var p ObserveBERParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
		anom := s.fabric.ObserveLinkBER(topo.OCSID(p.OCS), p.Port, p.BER)
		return ObserveBERResult{Anomalous: anom}, nil

	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

func sliceResult(sl *core.Slice) SliceResult {
	return SliceResult{
		Name:          sl.Name,
		Shape:         [3]int{sl.Shape.X, sl.Shape.Y, sl.Shape.Z},
		Cubes:         sl.Cubes,
		Circuits:      len(sl.Circuits),
		WorstMarginDB: sl.WorstMarginDB,
	}
}
