package ctlrpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"lightwave/internal/core"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// Server serves the control protocol for one fabric. Fabric methods are
// not concurrency-safe, so mutations serialize on a write lock; the
// methods marked read-only in the dispatch table (status, slice, metrics,
// te-status, chaos-status) share a read lock and run concurrently — with
// each other, and across connections.
type Server struct {
	mu      sync.RWMutex
	fabric  *core.Fabric
	te      TEStatusProvider
	chaos   ChaosProvider
	wal     WALProvider
	journal Journal
	metrics *ctlMetrics

	// gen counts fabric mutations; statusCache holds the marshaled status
	// result for one generation, so the read-mostly pollers that dominate
	// control-plane load skip both the fabric walk and the marshal.
	gen         atomic.Uint64
	statusCache atomic.Pointer[cachedStatus]

	// MaxRequestBytes caps one request line; 0 means
	// DefaultMaxRequestBytes. Set before Serve.
	MaxRequestBytes int
}

// cachedStatus is one generation's marshaled status result.
type cachedStatus struct {
	gen uint64
	raw json.RawMessage
}

// NewServer wraps a fabric.
func NewServer(f *core.Fabric) *Server {
	return &Server{fabric: f}
}

// SetTE attaches a topology-engineering status provider. Call before
// Serve; a nil provider reports TE as disabled.
func (s *Server) SetTE(p TEStatusProvider) { s.te = p }

// SetChaos attaches a fault-injection provider. Call before Serve; a nil
// provider reports chaos as disabled and rejects chaos-inject.
func (s *Server) SetChaos(p ChaosProvider) { s.chaos = p }

// SetWAL attaches a durable-state status provider. Call before Serve; a
// nil provider reports the WAL as disabled.
func (s *Server) SetWAL(p WALProvider) { s.wal = p }

// SetJournal attaches a command journal: every mutating fabric method the
// server executes successfully is journaled before its response is
// written. Call before Serve (and after replaying recovered commands); a
// nil journal disables command journaling.
func (s *Server) SetJournal(j Journal) { s.journal = j }

// SetMetrics exposes ctl_requests_total / ctl_inflight /
// ctl_request_latency_seconds on the registry. Call before Serve.
func (s *Server) SetMetrics(reg *telemetry.Registry) { s.metrics = newCtlMetrics(reg) }

// Serve accepts connections until the listener closes or ctx is cancelled.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	return serveLoop(ctx, lis, s.handleConn)
}

// serveLoop accepts connections and runs handle per connection until the
// listener closes or ctx is cancelled. Shared by the fabric and fleet
// servers.
func serveLoop(ctx context.Context, lis net.Listener, handle func(context.Context, net.Conn)) error {
	go func() {
		<-ctx.Done()
		lis.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			handle(ctx, conn)
		}()
	}
}

func (s *Server) handleConn(ctx context.Context, conn net.Conn) {
	servePipelinedConn(ctx, conn, s.MaxRequestBytes, s.metrics, s.dispatch, s.tryInline, nil)
}

// fabricHandler is one dispatch-table entry: the read/mutate
// classification decides which side of the server's RWMutex the call
// takes, and inline marks read-only handlers the connection reader may
// execute in place of a worker handoff.
type fabricHandler struct {
	readOnly bool
	// inline is set only on handlers that read the server's own fabric
	// or telemetry state and therefore cannot block once the read lock is
	// held. Handlers that call out to attached providers (te, chaos) stay
	// off the reader even though they are read-only: a slow provider must
	// stall one worker, never request decoding.
	inline bool
	// journal marks fabric mutations that must be durable before their
	// response: on success the dispatch hands method+params to the
	// attached Journal. Telemetry feeds (observe-ber) and provider
	// methods (chaos-inject) are not journaled — they are not fabric
	// state.
	journal bool
	fn      func(*Server, json.RawMessage) (any, error)
}

// fabricHandlers classifies every fabric method. Read-only methods must
// not mutate the fabric, its slices, or any provider state guarded by the
// server lock; providers (te/chaos) are concurrency-safe by contract, so
// their status calls are reads even though chaos-inject is a mutation.
var fabricHandlers = map[string]fabricHandler{
	MethodStatus:      {readOnly: true, inline: true, fn: (*Server).handleStatus},
	MethodSlice:       {readOnly: true, inline: true, fn: (*Server).handleSlice},
	MethodMetrics:     {readOnly: true, inline: true, fn: (*Server).handleMetrics},
	MethodTEStatus:    {readOnly: true, fn: (*Server).handleTEStatus},
	MethodChaosStatus: {readOnly: true, fn: chaosHandler(MethodChaosStatus)},
	MethodWALStatus:   {readOnly: true, fn: (*Server).handleWALStatus},

	MethodCompose:     {journal: true, fn: (*Server).handleCompose},
	MethodDestroy:     {journal: true, fn: (*Server).handleDestroy},
	MethodEnsure:      {journal: true, fn: (*Server).handleEnsure},
	MethodReshape:     {journal: true, fn: (*Server).handleReshape},
	MethodFailCube:    {journal: true, fn: (*Server).handleFailCube},
	MethodRepairCube:  {journal: true, fn: (*Server).handleRepairCube},
	MethodInstallCube: {journal: true, fn: (*Server).handleInstallCube},
	MethodRepairLink:  {journal: true, fn: (*Server).handleRepairLink},
	MethodObserveBER:  {fn: (*Server).handleObserveBER},
	MethodChaosInject: {fn: chaosHandler(MethodChaosInject)},
}

// chaosHandler adapts chaosCall to a dispatch-table entry for one of the
// two chaos methods.
func chaosHandler(method string) func(*Server, json.RawMessage) (any, error) {
	return func(s *Server, params json.RawMessage) (any, error) {
		return chaosCall(s.chaos, method, func(v any) error { return json.Unmarshal(params, v) })
	}
}

func (s *Server) dispatch(req Request) Response {
	h, ok := fabricHandlers[req.Method]
	if !ok {
		return marshalResponse(req.ID, nil, fmt.Errorf("unknown method %q", req.Method))
	}
	if h.readOnly {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.dispatchReadLocked(req, h)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen.Add(1) // any mutation invalidates the status cache
	result, err := h.fn(s, req.Params)
	if err == nil && h.journal && s.journal != nil {
		// Journal after success, before the response: the fabric state
		// already changed, so a journal failure is surfaced as the call's
		// error — the client retries and the command is re-journaled
		// (handlers are idempotent or fail cleanly on re-execution).
		if jerr := s.journal.JournalCommand(req.Method, req.Params); jerr != nil {
			return marshalResponse(req.ID, nil, fmt.Errorf("journal: %w", jerr))
		}
	}
	return marshalResponse(req.ID, result, err)
}

// ApplyCommand re-executes one journaled command during recovery replay,
// before the server starts serving. It accepts only journaled mutating
// methods.
func (s *Server) ApplyCommand(method string, params json.RawMessage) error {
	h, ok := fabricHandlers[method]
	if !ok || !h.journal {
		return fmt.Errorf("ctlrpc: method %q is not replayable", method)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen.Add(1)
	_, err := h.fn(s, params)
	return err
}

func (s *Server) handleWALStatus(json.RawMessage) (any, error) {
	return walCall(s.wal)
}

// tryInline executes read-only, provider-free methods on the connection
// reader's goroutine, skipping the worker handoff. It declines — sending
// the request down the normal worker path — when the method is not
// inline-safe or a mutation currently holds the write lock, so decoding
// never stalls behind the fabric.
func (s *Server) tryInline(req Request) (Response, bool) {
	h, ok := fabricHandlers[req.Method]
	if !ok || !h.inline {
		return Response{}, false
	}
	if !s.mu.TryRLock() {
		return Response{}, false
	}
	defer s.mu.RUnlock()
	return s.dispatchReadLocked(req, h), true
}

// dispatchReadLocked runs one read-only handler; s.mu must be read-held.
func (s *Server) dispatchReadLocked(req Request, h fabricHandler) Response {
	if req.Method == MethodStatus {
		// Serve status from the generation-keyed cache: under the read
		// lock no mutation can interleave, so a hit is exactly the
		// fabric's current state and a rebuild is safe to publish.
		gen := s.gen.Load()
		if c := s.statusCache.Load(); c != nil && c.gen == gen {
			return Response{ID: req.ID, Result: c.raw}
		}
		resp := marshalResponse(req.ID, mustStatus(s.handleStatus(nil)), nil)
		if resp.Error == "" {
			s.statusCache.Store(&cachedStatus{gen: gen, raw: resp.Result})
		}
		return resp
	}
	result, err := h.fn(s, req.Params)
	return marshalResponse(req.ID, result, err)
}

// mustStatus narrows handleStatus's (any, error) — it never fails.
func mustStatus(result any, _ error) any { return result }

// marshalResponse packages a call's outcome as the wire response.
func marshalResponse(id uint64, result any, err error) Response {
	resp := Response{ID: id}
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	raw, err := json.Marshal(result)
	if err != nil {
		resp.Error = fmt.Sprintf("encoding result: %v", err)
		return resp
	}
	resp.Result = raw
	return resp
}

func (s *Server) handleStatus(json.RawMessage) (any, error) {
	st := StatusResult{
		InstalledCubes: s.fabric.InstalledCubes(),
		FreeCubes:      s.fabric.FreeCubes(),
		TotalCircuits:  s.fabric.TotalCircuits(),
	}
	for _, sl := range s.fabric.Slices() {
		st.Slices = append(st.Slices, sl.Name)
	}
	return st, nil
}

func (s *Server) handleCompose(params json.RawMessage) (any, error) {
	var p ComposeParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	shape := topo.Shape{X: p.Shape[0], Y: p.Shape[1], Z: p.Shape[2]}
	sl, err := s.fabric.ComposeSlice(p.Name, shape, p.Cubes)
	if err != nil {
		return nil, err
	}
	return sliceResult(sl), nil
}

func (s *Server) handleDestroy(params json.RawMessage) (any, error) {
	var p NameParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	if err := s.fabric.DestroySlice(p.Name); err != nil {
		if p.IfPresent && errors.Is(err, core.ErrNoSlice) {
			return struct{}{}, nil
		}
		return nil, err
	}
	return struct{}{}, nil
}

func (s *Server) handleEnsure(params json.RawMessage) (any, error) {
	var p EnsureParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	shape := topo.Shape{X: p.Shape[0], Y: p.Shape[1], Z: p.Shape[2]}
	sl, changed, err := s.fabric.EnsureSlice(p.Name, shape, p.Cubes)
	if err != nil {
		return nil, err
	}
	return EnsureResult{Slice: sliceResult(sl), Changed: changed}, nil
}

func (s *Server) handleReshape(params json.RawMessage) (any, error) {
	var p ReshapeParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	shape := topo.Shape{X: p.Shape[0], Y: p.Shape[1], Z: p.Shape[2]}
	sl, err := s.fabric.ReshapeSlice(p.Name, shape, p.Cubes)
	if err != nil {
		return nil, err
	}
	return sliceResult(sl), nil
}

func (s *Server) handleSlice(params json.RawMessage) (any, error) {
	var p NameParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	sl, err := s.fabric.GetSlice(p.Name)
	if err != nil {
		return nil, err
	}
	return sliceResult(sl), nil
}

func (s *Server) handleFailCube(params json.RawMessage) (any, error) {
	var p CubeParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	rc, err := s.fabric.MarkCubeFailed(p.Cube)
	if err != nil {
		return nil, err
	}
	return FailCubeResult{Replacement: rc}, nil
}

func (s *Server) handleRepairCube(params json.RawMessage) (any, error) {
	var p CubeParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	if err := s.fabric.RepairCube(p.Cube); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

func (s *Server) handleInstallCube(params json.RawMessage) (any, error) {
	var p CubeParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	if err := s.fabric.InstallCube(p.Cube); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

func (s *Server) handleRepairLink(params json.RawMessage) (any, error) {
	var p RepairLinkParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	spare, err := s.fabric.RepairLink(topo.OCSID(p.OCS), p.Cube)
	if err != nil {
		return nil, err
	}
	return RepairLinkResult{SparePort: int(spare)}, nil
}

func (s *Server) handleMetrics(json.RawMessage) (any, error) {
	reg := s.fabric.Metrics()
	if reg == nil {
		return MetricsResult{}, nil
	}
	return MetricsResult{Text: reg.Text()}, nil
}

func (s *Server) handleObserveBER(params json.RawMessage) (any, error) {
	var p ObserveBERParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	anom := s.fabric.ObserveLinkBER(topo.OCSID(p.OCS), p.Port, p.BER)
	return ObserveBERResult{Anomalous: anom}, nil
}

func (s *Server) handleTEStatus(json.RawMessage) (any, error) {
	if s.te == nil {
		return TEStatusResult{}, nil
	}
	return s.te.TEStatus(), nil
}

func sliceResult(sl *core.Slice) SliceResult {
	return SliceResult{
		Name:          sl.Name,
		Shape:         [3]int{sl.Shape.X, sl.Shape.Y, sl.Shape.Z},
		Cubes:         sl.Cubes,
		Circuits:      len(sl.Circuits),
		WorstMarginDB: sl.WorstMarginDB,
	}
}
