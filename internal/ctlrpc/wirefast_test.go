package ctlrpc

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestAppendRequestMatchesEncodingJSON: the hand-rolled encoder must emit
// exactly what encoding/json emits for the same frame, so either side can
// be upgraded independently.
func TestAppendRequestMatchesEncodingJSON(t *testing.T) {
	cases := []Request{
		{ID: 1, Method: "status"},
		{ID: 18446744073709551615, Method: "fail-cube", Params: json.RawMessage(`{"cube":3}`)},
		{ID: 7, Method: `we"ird\method`, Params: json.RawMessage(`[1,2]`)},
		{ID: 0, Method: "täst<>&"},
	}
	for _, req := range cases {
		want, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		got := appendRequest(nil, &req)
		if !bytes.Equal(got, want) {
			t.Errorf("appendRequest(%+v)\n got %s want %s", req, got, want)
		}
	}
}

func TestAppendResponseMatchesEncodingJSON(t *testing.T) {
	cases := []Response{
		{ID: 1},
		{ID: 2, Error: "no such slice \"x\""},
		{ID: 3, Result: json.RawMessage(`{"slices":["a","b"]}`)},
		{ID: 4, Error: "bad <input> & more"},
	}
	for _, resp := range cases {
		want, err := json.Marshal(&resp)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		got := appendResponse(nil, &resp)
		if !bytes.Equal(got, want) {
			t.Errorf("appendResponse(%+v)\n got %s want %s", resp, got, want)
		}
	}
}

// TestParseRoundTrip drives every frame shape through encode→parse,
// including ones that must take the encoding/json fallback (reordered
// fields, escaped strings, whitespace).
func TestParseRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Method: "status"},
		{ID: 2, Method: "compose", Params: json.RawMessage(`{"name":"j","shape":[4,4,8]}`)},
		{ID: 3, Method: `esc"aped`},
	}
	for _, want := range reqs {
		line := appendRequest(nil, &want)
		var got Request
		if err := parseRequest(line, &got); err != nil {
			t.Fatalf("parseRequest(%s): %v", line, err)
		}
		if got.ID != want.ID || got.Method != want.Method || !bytes.Equal(got.Params, want.Params) {
			t.Errorf("round trip %+v -> %+v", want, got)
		}
	}
	resps := []Response{
		{ID: 1},
		{ID: 2, Error: "boom"},
		{ID: 3, Result: json.RawMessage(`"x}"`)}, // brace inside the payload
		{ID: 4, Result: json.RawMessage(`{"n":[1,2,{"m":3}]}`)},
	}
	for _, want := range resps {
		line := appendResponse(nil, &want)
		var got Response
		if err := parseResponse(line, &got); err != nil {
			t.Fatalf("parseResponse(%s): %v", line, err)
		}
		if got.ID != want.ID || got.Error != want.Error || !bytes.Equal(got.Result, want.Result) {
			t.Errorf("round trip %+v -> %+v", want, got)
		}
	}
	// Fallback shapes the fast path cannot claim.
	var req Request
	if err := parseRequest([]byte(`{"method":"status","id":9}`), &req); err != nil || req.ID != 9 || req.Method != "status" {
		t.Errorf("reordered request parse = %+v (err %v)", req, err)
	}
	var resp Response
	if err := parseResponse([]byte(`{"result":[1],"id":8}`), &resp); err != nil || resp.ID != 8 || string(resp.Result) != "[1]" {
		t.Errorf("reordered response parse = %+v (err %v)", resp, err)
	}
	if err := parseRequest([]byte(`not json`), &req); err == nil {
		t.Error("garbage request parsed")
	}
	if err := parseResponse([]byte(`not json`), &resp); err == nil {
		t.Error("garbage response parsed")
	}
}
