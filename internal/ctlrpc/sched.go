package ctlrpc

import (
	"errors"
	"fmt"

	"lightwave/internal/sched"
)

// Scheduler method names. Only the fleet daemon serves them, and only
// when started with -sched; a daemon without the flag reports the
// scheduler disabled and rejects submissions.
const (
	MethodSchedStatus = "sched-status"
	MethodSchedSubmit = "sched-submit"
)

// ErrSchedDisabled is returned for sched-submit on a daemon that runs no
// scheduler loop.
var ErrSchedDisabled = errors.New("scheduler disabled (start the daemon with -sched)")

// SchedStatusResult snapshots the daemon's slice-scheduler loop. Enabled
// is false when the daemon runs without -sched; the remaining fields
// then carry zero values.
type SchedStatusResult struct {
	Enabled         bool     `json:"enabled"`
	Policy          string   `json:"policy,omitempty"`
	Pods            []string `json:"pods,omitempty"`
	QueueDepth      int      `json:"queueDepth"`
	RunningJobs     int      `json:"runningJobs"`
	Submitted       int      `json:"submitted"`
	Started         int      `json:"started"`
	Completed       int      `json:"completed"`
	Preempted       int      `json:"preempted"`
	Swaps           int      `json:"swaps"`
	MigratedCubes   int      `json:"migratedCubes"`
	Utilization     float64  `json:"utilization"`
	MeanWaitSeconds float64  `json:"meanWaitSeconds"`
	VirtualSeconds  float64  `json:"virtualSeconds"`
}

// SchedSubmitParams is one manual job submission.
type SchedSubmitParams struct {
	Cubes           int     `json:"cubes"`
	DurationSeconds float64 `json:"durationSeconds"`
}

// SchedSubmitResult acknowledges a submission. Placed reports whether the
// job started immediately; otherwise it waits in the queue.
type SchedSubmitResult struct {
	JobID  int  `json:"jobID"`
	Placed bool `json:"placed"`
}

// SchedProvider supplies the scheduler methods. Implementations must be
// safe for concurrent use.
type SchedProvider interface {
	SchedStatus() SchedStatusResult
	SchedSubmit(SchedSubmitParams) (SchedSubmitResult, error)
}

// SchedulerProvider adapts a live sched.Scheduler to SchedProvider.
type SchedulerProvider struct {
	S *sched.Scheduler
}

// SchedStatus implements SchedProvider.
func (p SchedulerProvider) SchedStatus() SchedStatusResult {
	st := p.S.Stats()
	return SchedStatusResult{
		Enabled:         true,
		Policy:          p.S.Policy(),
		Pods:            p.S.Pods(),
		QueueDepth:      st.QueueDepth,
		RunningJobs:     st.RunningJobs,
		Submitted:       st.Submitted,
		Started:         st.Started,
		Completed:       st.Completed,
		Preempted:       st.Preempted,
		Swaps:           st.Swaps,
		MigratedCubes:   st.MigratedCubes,
		Utilization:     st.Utilization,
		MeanWaitSeconds: st.MeanWaitSeconds,
		VirtualSeconds:  st.Now,
	}
}

// SchedSubmit implements SchedProvider.
func (p SchedulerProvider) SchedSubmit(params SchedSubmitParams) (SchedSubmitResult, error) {
	id, placed, err := p.S.Submit(sched.JobSpec{
		Cubes:           params.Cubes,
		DurationSeconds: params.DurationSeconds,
	})
	if err != nil {
		return SchedSubmitResult{}, err
	}
	return SchedSubmitResult{JobID: id, Placed: placed}, nil
}

// schedCall dispatches the scheduler methods against an optional provider.
func schedCall(p SchedProvider, method string, unmarshal func(any) error) (any, error) {
	if method == MethodSchedStatus {
		if p == nil {
			return SchedStatusResult{}, nil
		}
		return p.SchedStatus(), nil
	}
	if p == nil {
		return nil, ErrSchedDisabled
	}
	var params SchedSubmitParams
	if err := unmarshal(&params); err != nil {
		return nil, fmt.Errorf("bad params: %w", err)
	}
	return p.SchedSubmit(params)
}
