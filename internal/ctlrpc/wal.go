package ctlrpc

import (
	"encoding/json"

	"lightwave/internal/wal"
)

// MethodWALStatus reports the daemon's durable-state subsystem.
const MethodWALStatus = "wal-status"

// WALStatusResult snapshots a daemon's WAL. Enabled is false when the
// daemon runs without -state-dir; the remaining fields then carry zero
// values.
type WALStatusResult struct {
	Enabled         bool   `json:"enabled"`
	Dir             string `json:"dir,omitempty"`
	LastLSN         uint64 `json:"lastLSN"`
	SnapshotLSN     uint64 `json:"snapshotLSN"`
	Segments        int    `json:"segments"`
	TotalBytes      int64  `json:"totalBytes"`
	Appends         int64  `json:"appends"`
	AppendBytes     int64  `json:"appendBytes"`
	Fsyncs          int64  `json:"fsyncs"`
	Snapshots       int64  `json:"snapshots"`
	Compactions     int64  `json:"compactions"`
	ReplayRecords   int    `json:"replayRecords"`
	ReplayErrors    int    `json:"replayErrors"`
	TruncatedBytes  int64  `json:"truncatedBytes"`
	DroppedSegments int    `json:"droppedSegments"`
	FleetPods       int    `json:"fleetPods"`
	FleetSlices     int    `json:"fleetSlices"`
	FleetDigest     string `json:"fleetDigest,omitempty"`
}

// WALProvider supplies the wal-status method. Implementations must be
// safe for concurrent use.
type WALProvider interface {
	WALStatus() WALStatusResult
}

// Journal is the server-side command journal seam: the per-fabric server
// hands every successfully executed mutating command to it before the
// response is written, so the command is durable before the client sees
// success. Implementations must be safe for concurrent use and must copy
// params if they retain them past the call.
type Journal interface {
	JournalCommand(method string, params json.RawMessage) error
}

// StoreWALProvider adapts a wal.Store to WALProvider.
type StoreWALProvider struct {
	Store *wal.Store
}

// WALStatus implements WALProvider.
func (p StoreWALProvider) WALStatus() WALStatusResult {
	st := p.Store.Status()
	return WALStatusResult{
		Enabled:         true,
		Dir:             st.Log.Dir,
		LastLSN:         st.Log.LastLSN,
		SnapshotLSN:     st.Log.SnapshotLSN,
		Segments:        st.Log.Segments,
		TotalBytes:      st.Log.TotalBytes,
		Appends:         st.Log.Appends,
		AppendBytes:     st.Log.AppendBytes,
		Fsyncs:          st.Log.Fsyncs,
		Snapshots:       st.Log.Snapshots,
		Compactions:     st.Log.Compactions,
		ReplayRecords:   st.ReplayRecords,
		ReplayErrors:    st.ReplayErrors,
		TruncatedBytes:  st.TruncatedBytes,
		DroppedSegments: st.DroppedSegments,
		FleetPods:       st.FleetPods,
		FleetSlices:     st.FleetSlices,
		FleetDigest:     st.FleetDigest,
	}
}

// SnapshotCommands captures the fabric's current state as a replayable
// command list: install-cube for every cube installed beyond the boot
// config's first bootCubes, ensure for every composed slice (explicit
// cube lists, so replay reproduces placement exactly), then fail-cube
// for every installed-but-unhealthy cube. Replaying the list through
// ApplyCommand on a freshly built fabric reproduces the state. The
// capture takes the server's read lock so it never interleaves with a
// mutating RPC.
func (s *Server) SnapshotCommands(bootCubes int) ([]wal.Command, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var cmds []wal.Command
	add := func(method string, params any) error {
		b, err := json.Marshal(params)
		if err != nil {
			return err
		}
		cmds = append(cmds, wal.Command{Method: method, Params: b})
		return nil
	}
	for c := bootCubes; c < 64; c++ {
		if s.fabric.CubeInstalled(c) {
			if err := add(MethodInstallCube, CubeParams{Cube: c}); err != nil {
				return nil, err
			}
		}
	}
	for _, sl := range s.fabric.Slices() {
		if err := add(MethodEnsure, EnsureParams{
			Name:  sl.Name,
			Shape: [3]int{sl.Shape.X, sl.Shape.Y, sl.Shape.Z},
			Cubes: append([]int(nil), sl.Cubes...),
		}); err != nil {
			return nil, err
		}
	}
	for c := 0; c < 64; c++ {
		if s.fabric.CubeInstalled(c) && !s.fabric.CubeHealthy(c) {
			if err := add(MethodFailCube, CubeParams{Cube: c}); err != nil {
				return nil, err
			}
		}
	}
	return cmds, nil
}

// walCall dispatches wal-status against an optional provider; a nil
// provider reports the WAL disabled.
func walCall(p WALProvider) (any, error) {
	if p == nil {
		return WALStatusResult{}, nil
	}
	return p.WALStatus(), nil
}

// WALStatus reports the daemon's durable-state subsystem.
func (c *Client) WALStatus() (WALStatusResult, error) {
	var out WALStatusResult
	err := c.call(MethodWALStatus, nil, &out)
	return out, err
}
