package sched

import (
	"sync/atomic"

	"lightwave/internal/telemetry"
)

// registry holds the subsystem's metrics; swap it with SetRegistry to
// surface the counters on a daemon's /metrics endpoint.
var registry atomic.Pointer[telemetry.Registry]

func init() {
	registry.Store(telemetry.NewRegistry())
}

// SetRegistry redirects the subsystem's telemetry to r (nil restores a
// fresh private registry). Daemons call this once at startup so sched_*
// counters appear alongside their other metrics.
func SetRegistry(r *telemetry.Registry) {
	if r == nil {
		r = telemetry.NewRegistry()
	}
	registry.Store(r)
}

// Registry returns the registry currently receiving the subsystem's
// metrics.
func Registry() *telemetry.Registry {
	return registry.Load()
}
