package sched

import (
	"container/heap"
	"fmt"
	"sort"

	"lightwave/internal/topo"
)

// State is a full export of a Scheduler, precise enough that ImportState
// followed by replaying journal entries with LSN > WALLSN reproduces the
// live scheduler exactly — including counters and the utilization/wait
// integrals, so sched-status output is identical after a restart.
type State struct {
	WALLSN uint64 `json:"walLSN,omitempty"`

	Now         float64 `json:"now"`
	LastAccount float64 `json:"lastAccount"`
	NextID      int     `json:"nextID"`

	Submitted     int `json:"submitted"`
	Started       int `json:"started"`
	Completed     int `json:"completed"`
	Preempted     int `json:"preempted"`
	Swaps         int `json:"swaps"`
	MigratedCubes int `json:"migratedCubes"`
	Failures      int `json:"failures"`
	Repairs       int `json:"repairs"`

	BusyIntegral  float64 `json:"busyIntegral"`
	AvailIntegral float64 `json:"availIntegral"`
	WaitSum       float64 `json:"waitSum"`
	WaitCount     int     `json:"waitCount"`

	Queue   []QueuedJobState  `json:"queue,omitempty"`
	Running []RunningJobState `json:"running,omitempty"`
	Pods    []PodState        `json:"pods"`
}

// PodState exports one pod mirror: which cubes are failed and whether the
// pod is down. Busy cubes are implied by Running.
type PodState struct {
	Name   string `json:"name"`
	Down   bool   `json:"down,omitempty"`
	Failed []int  `json:"failed,omitempty"`
}

// QueuedJobState exports one waiting job.
type QueuedJobState struct {
	ID      int     `json:"id"`
	Spec    JobSpec `json:"spec"`
	Arrived float64 `json:"arrived"`
}

// RunningJobState exports one placed job.
type RunningJobState struct {
	ID    int        `json:"id"`
	Pod   string     `json:"pod"`
	Spec  JobSpec    `json:"spec"`
	Shape topo.Shape `json:"shape"`
	Cubes []int      `json:"cubes"`
	Start float64    `json:"start"`
	End   float64    `json:"end"`
}

// ExportState snapshots the scheduler for a WAL checkpoint.
func (s *Scheduler) ExportState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{
		WALLSN:        s.walLSN,
		Now:           s.now,
		LastAccount:   s.lastAccount,
		NextID:        s.nextID,
		Submitted:     s.submitted,
		Started:       s.started,
		Completed:     s.completed,
		Preempted:     s.preempted,
		Swaps:         s.swaps,
		MigratedCubes: s.migrated,
		Failures:      s.failures,
		Repairs:       s.repairs,
		BusyIntegral:  s.busyIntegral,
		AvailIntegral: s.availIntegral,
		WaitSum:       s.waitSum,
		WaitCount:     s.waitCount,
	}
	for _, j := range s.queue {
		st.Queue = append(st.Queue, QueuedJobState{ID: j.id, Spec: j.spec, Arrived: j.arrived})
	}
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rj := s.running[id]
		st.Running = append(st.Running, RunningJobState{
			ID:    rj.id,
			Pod:   rj.pod.name,
			Spec:  rj.spec,
			Shape: rj.shape,
			Cubes: append([]int(nil), rj.cubes...),
			Start: rj.start,
			End:   rj.end,
		})
	}
	for _, sp := range s.pods {
		ps := PodState{Name: sp.name, Down: sp.down}
		for c := 0; c < sp.mirror.Cubes(); c++ {
			if sp.mirror.State(c) == Failed {
				ps.Failed = append(ps.Failed, c)
			}
		}
		st.Pods = append(st.Pods, ps)
	}
	return st
}

// ImportState loads an export into a freshly constructed scheduler (same
// pods and config as the exporter). It errors on a scheduler that has
// already processed work or an export naming unknown pods.
func (s *Scheduler) ImportState(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.submitted != 0 || len(s.running) != 0 || len(s.queue) != 0 {
		return fmt.Errorf("sched: ImportState on a non-fresh scheduler")
	}
	for _, ps := range st.Pods {
		sp := s.byName[ps.Name]
		if sp == nil {
			return fmt.Errorf("%w: %q in state export", ErrUnknownPod, ps.Name)
		}
		sp.down = ps.Down
		want := make(map[int]bool, len(ps.Failed))
		for _, c := range ps.Failed {
			want[c] = true
		}
		for c := 0; c < sp.mirror.Cubes(); c++ {
			cur := sp.mirror.State(c)
			switch {
			case want[c] && cur != Failed:
				if _, _, err := sp.mirror.Fail(c); err != nil {
					return err
				}
			case !want[c] && cur == Failed:
				if err := sp.mirror.Repair(c); err != nil {
					return err
				}
			}
		}
	}
	for _, rs := range st.Running {
		sp := s.byName[rs.Pod]
		if sp == nil {
			return fmt.Errorf("%w: %q owns job %d", ErrUnknownPod, rs.Pod, rs.ID)
		}
		if err := sp.mirror.Occupy(rs.ID, rs.Cubes); err != nil {
			return fmt.Errorf("sched: restore job %d: %w", rs.ID, err)
		}
		rj := &runningJob{
			id:    rs.ID,
			pod:   sp,
			spec:  rs.Spec,
			shape: rs.Shape,
			cubes: append([]int(nil), rs.Cubes...),
			start: rs.Start,
			end:   rs.End,
		}
		s.running[rj.id] = rj
		heap.Push(&s.done, rj)
	}
	for _, qs := range st.Queue {
		s.queue = append(s.queue, &queuedJob{id: qs.ID, spec: qs.Spec, arrived: qs.Arrived})
	}
	s.walLSN = st.WALLSN
	s.now = st.Now
	s.lastAccount = st.LastAccount
	s.nextID = st.NextID
	s.submitted = st.Submitted
	s.started = st.Started
	s.completed = st.Completed
	s.preempted = st.Preempted
	s.swaps = st.Swaps
	s.migrated = st.MigratedCubes
	s.failures = st.Failures
	s.repairs = st.Repairs
	s.busyIntegral = st.BusyIntegral
	s.availIntegral = st.AvailIntegral
	s.waitSum = st.WaitSum
	s.waitCount = st.WaitCount
	s.cSubmitted.Add(int64(st.Submitted))
	s.cStarted.Add(int64(st.Started))
	s.cCompleted.Add(int64(st.Completed))
	s.cPreempted.Add(int64(st.Preempted))
	s.cSwaps.Add(int64(st.Swaps))
	s.cMigrated.Add(int64(st.MigratedCubes))
	s.cFailures.Add(int64(st.Failures))
	s.cRepairs.Add(int64(st.Repairs))
	s.updateGaugesLocked()
	return nil
}

// WALLSN returns the highest journal LSN the scheduler has recorded.
func (s *Scheduler) WALLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walLSN
}
