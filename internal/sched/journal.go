package sched

// The scheduler journal seam. Unlike the fleet intent store — whose
// journal records *state* — the scheduler journals its *inputs* (submit,
// advance, fail, repair, pod-down): the scheduler is deterministic given
// its input sequence, so command-sourcing replays to the exact pre-crash
// placement state, ids included. Snapshots break the replay chain with a
// full state export (see state.go); WALLSN in the export tells replay
// which journaled inputs the snapshot already includes.
//
// Replay equivalence assumes ClusterOps errors repeat (normally: none) —
// a placement the cluster rejected live is rolled back in the mirror, so
// a replay where the same ensure succeeds would diverge. Recovery
// tolerates this: the fleet reconcilers converge the fabric to whatever
// the replayed scheduler believes, which is the recovery-restores-intent
// contract.

// JournalOp identifies a scheduler journal entry.
type JournalOp string

// Scheduler journal operations.
const (
	OpSubmit     JournalOp = "submit"
	OpAdvance    JournalOp = "advance"
	OpFailCube   JournalOp = "fail-cube"
	OpRepairCube JournalOp = "repair-cube"
	OpPodDown    JournalOp = "pod-down"
	OpMeasure    JournalOp = "start-measurement"
)

// JournalEntry is one scheduler input. Fields beyond Op are op-specific.
type JournalEntry struct {
	Op   JournalOp `json:"op"`
	Spec *JobSpec  `json:"spec,omitempty"`
	T    float64   `json:"t,omitempty"`
	Pod  string    `json:"pod,omitempty"`
	Cube int       `json:"cube,omitempty"`
	Down bool      `json:"down,omitempty"`
}

// Journal receives scheduler journal entries and returns the log sequence
// number each was assigned, so state exports can record how much of the
// log they cover. Implementations must be safe for concurrent use and are
// called with the scheduler's lock held, so they must not call back into
// the Scheduler.
type Journal interface {
	JournalSched(e JournalEntry) (uint64, error)
}

// SetJournal attaches a journal. Attach after recovery replay and before
// live traffic; a nil journal disables journaling.
func (s *Scheduler) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// journalLocked writes one input record ahead of applying it; a journal
// failure rejects the input so durable state never lags accepted state.
func (s *Scheduler) journalLocked(e JournalEntry) error {
	if s.journal == nil {
		return nil
	}
	lsn, err := s.journal.JournalSched(e)
	if err != nil {
		return err
	}
	if lsn > s.walLSN {
		s.walLSN = lsn
	}
	return nil
}

// Apply replays one journal entry. It is the recovery path's dispatcher;
// the entry is re-executed through the ordinary mutators, so placement and
// id assignment repeat exactly.
func (s *Scheduler) Apply(e JournalEntry) error {
	switch e.Op {
	case OpSubmit:
		if e.Spec == nil {
			return nil
		}
		_, _, err := s.Submit(*e.Spec)
		return err
	case OpAdvance:
		return s.AdvanceTo(e.T)
	case OpFailCube:
		return s.FailCube(e.Pod, e.Cube)
	case OpRepairCube:
		return s.RepairCube(e.Pod, e.Cube)
	case OpPodDown:
		return s.SetPodDown(e.Pod, e.Down)
	case OpMeasure:
		s.StartMeasurement()
		return nil
	}
	return nil
}
