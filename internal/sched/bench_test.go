package sched

import "testing"

// BenchmarkSchedulerHotPath measures the steady-state submit/advance cycle
// (mirror-only): one 1-cube job arrives per virtual second with a 50s
// runtime, so the pod sits at ~50 running jobs with a completion and a
// placement per iteration. The Makefile's bench-sched target commits the
// numbers to BENCH_sched.json; the gate is a few allocs/op.
func BenchmarkSchedulerHotPath(b *testing.B) {
	s, err := NewScheduler(SchedulerConfig{Pods: []string{"pod0"}})
	if err != nil {
		b.Fatal(err)
	}
	t := 0.0
	// Prime to steady state.
	for i := 0; i < 128; i++ {
		t++
		if err := s.AdvanceTo(t); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Submit(JobSpec{Cubes: 1, DurationSeconds: 50}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t++
		if err := s.AdvanceTo(t); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Submit(JobSpec{Cubes: 1, DurationSeconds: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementDecision measures one placement decision per policy on
// a half-loaded fragmented pod — the latency the sched_place_seconds
// distribution tracks online.
func BenchmarkPlacementDecision(b *testing.B) {
	fragment := func() *Pod {
		p := FullPod()
		r := Reconfigurable{}
		for j := 0; j < 32; j++ {
			if _, err := r.Place(p, j, 2); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < 32; j += 2 {
			p.Release(j)
		}
		return p
	}
	for _, tc := range []struct {
		name   string
		placer Placer
	}{
		{"reconfigurable", Reconfigurable{}},
		{"contiguous", Contiguous{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := fragment()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tc.placer.Place(p, 1000, 4); err != nil {
					b.Fatal(err)
				}
				p.Release(1000)
			}
		})
	}
}
