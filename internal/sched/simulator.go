package sched

import (
	"errors"

	"lightwave/internal/sim"
)

// JobMix describes the offered workload: a distribution over slice sizes
// (in cubes) with mean job duration.
type JobMix struct {
	// Sizes and Weights define the slice-size distribution.
	Sizes   []int
	Weights []float64
	// MeanDuration is the mean (exponential) job runtime in seconds.
	MeanDuration float64
	// ArrivalRate is jobs per second (Poisson).
	ArrivalRate float64
}

// ProductionMix returns a TPU-fleet-like mix: many small slices, a steady
// stream of mid-size slices, occasional very large ones (§4.2.2: "In
// practice, a distribution of slice sizes running different size models is
// used").
func ProductionMix() JobMix {
	return JobMix{
		Sizes:        []int{1, 2, 4, 8, 16, 32},
		Weights:      []float64{0.30, 0.25, 0.20, 0.15, 0.07, 0.03},
		MeanDuration: 1000,
		ArrivalRate:  0.03,
	}
}

// ReferenceConfig returns the calibrated §4.2.4 experiment configuration:
// a saturating job stream with aggressive backfill, long enough to wash out
// warmup.
func ReferenceConfig() SimConfig {
	return SimConfig{Duration: 300000, Seed: 5, BackfillWindow: 64}
}

// Stats summarizes one scheduling simulation.
type Stats struct {
	// Utilization is allocated cube-time over total cube-time.
	Utilization float64
	Completed   int
	// MeanWait is the mean queueing delay of started jobs.
	MeanWait float64
	// Preempted counts jobs killed by cube failures (static fabric only;
	// the reconfigurable fabric swaps a spare cube in instead).
	Preempted int
	// Swaps counts cube swaps performed after failures.
	Swaps int
	// Started counts jobs placed on cubes; Running is how many were still
	// on cubes when the horizon ended. Completed + Preempted + Running
	// always equals Started.
	Started int
	Running int
}

// SimConfig controls the simulation.
type SimConfig struct {
	Duration float64
	Seed     uint64
	// CubeMTBF is the mean time between failures of one cube (0 disables
	// failures); repairs take MeanRepair seconds.
	CubeMTBF   float64
	MeanRepair float64
	// BackfillWindow is how many queued jobs may jump a blocked head job
	// (0 = default 6).
	BackfillWindow int
}

type pendingJob struct {
	id      int
	cubes   int
	dur     float64
	arrived float64
}

// Simulate runs the job stream against a pod under the given placement
// policy and returns utilization statistics.
func Simulate(pod *Pod, placer Placer, mix JobMix, cfg SimConfig) (Stats, error) {
	if cfg.Duration <= 0 || mix.ArrivalRate <= 0 || mix.MeanDuration <= 0 {
		return Stats{}, errors.New("sched: non-positive simulation parameters")
	}
	if len(mix.Sizes) == 0 || len(mix.Sizes) != len(mix.Weights) {
		return Stats{}, errors.New("sched: invalid job mix")
	}
	rng := sim.NewRand(cfg.Seed)
	var q sim.Queue
	var st Stats

	totalWeight := 0.0
	for _, w := range mix.Weights {
		totalWeight += w
	}

	var queue []*pendingJob
	nextID := 0
	busyIntegral := 0.0
	lastT := 0.0
	var waits []float64

	account := func() {
		now := float64(q.Now())
		busyIntegral += float64(pod.BusyCubes()) * (now - lastT)
		lastT = now
	}

	backfill := cfg.BackfillWindow
	if backfill <= 0 {
		backfill = 6
	}
	// running tracks each placed job's completion event so preemption can
	// cancel it — otherwise the stale event later fires, counts the killed
	// job as completed, and releases cubes the job no longer owns.
	running := make(map[int]*sim.Event)
	var tryPlace func()
	tryPlace = func() {
		// FIFO with a bounded backfill window: the head job starts first
		// when it fits; otherwise up to BackfillWindow younger jobs may
		// jump ahead. Placement flexibility is where the fabrics differ:
		// the reconfigurable fabric only blocks when too few cubes are
		// free, while the contiguous policy also blocks on fragmentation.
		for {
			placedAny := false
			limit := backfill
			if limit > len(queue) {
				limit = len(queue)
			}
			for i := 0; i < limit; i++ {
				j := queue[i]
				if _, err := placer.Place(pod, j.id, j.cubes); err != nil {
					continue
				}
				queue = append(queue[:i], queue[i+1:]...)
				waits = append(waits, float64(q.Now())-j.arrived)
				job := j
				st.Started++
				running[job.id] = q.After(job.dur, func() {
					account()
					delete(running, job.id)
					pod.Release(job.id)
					st.Completed++
					tryPlace()
				})
				placedAny = true
				break
			}
			if !placedAny {
				return
			}
		}
	}

	sampleSize := func() int {
		x := rng.Float64() * totalWeight
		for i, w := range mix.Weights {
			if x < w {
				return mix.Sizes[i]
			}
			x -= w
		}
		return mix.Sizes[len(mix.Sizes)-1]
	}

	var arrive func()
	arrive = func() {
		account()
		j := &pendingJob{
			id:      nextID,
			cubes:   sampleSize(),
			dur:     rng.ExpFloat64() * mix.MeanDuration,
			arrived: float64(q.Now()),
		}
		nextID++
		queue = append(queue, j)
		tryPlace()
		q.After(rng.ExpFloat64()/mix.ArrivalRate, arrive)
	}
	q.After(rng.ExpFloat64()/mix.ArrivalRate, arrive)

	// Failure injection.
	if cfg.CubeMTBF > 0 {
		rate := float64(pod.Cubes()) / cfg.CubeMTBF
		preempt := func(job int) {
			if ev, ok := running[job]; ok {
				q.Cancel(ev)
				delete(running, job)
			}
			pod.Release(job)
			st.Preempted++
		}
		var fail func()
		fail = func() {
			account()
			cube := rng.Intn(pod.Cubes())
			// An already-failed cube has no owner to evict and already has
			// a repair in flight; injecting again would schedule a
			// duplicate repair timer.
			if pod.State(cube) != Failed {
				if job, wasBusy, err := pod.Fail(cube); err == nil {
					if wasBusy {
						if _, isReconf := placer.(Reconfigurable); isReconf {
							if _, err := pod.SwapCube(job); err == nil {
								st.Swaps++
							} else {
								preempt(job)
							}
						} else {
							// Static fabric: the job loses its slice.
							preempt(job)
						}
					}
					repairT := cfg.MeanRepair
					if repairT <= 0 {
						repairT = 3600
					}
					q.After(rng.ExpFloat64()*repairT, func() {
						account()
						_ = pod.Repair(cube)
						tryPlace()
					})
				}
			}
			q.After(rng.ExpFloat64()/rate, fail)
		}
		q.After(rng.ExpFloat64()/rate, fail)
	}

	q.RunUntil(sim.Time(cfg.Duration))
	account()
	st.Running = len(running)

	st.Utilization = busyIntegral / (float64(pod.Cubes()) * cfg.Duration)
	if len(waits) > 0 {
		st.MeanWait = sim.Mean(waits)
	}
	return st, nil
}

// CompareUtilization runs the same stream under both policies on fresh
// pods and returns (reconfigurable, contiguous) stats — the §4.2.4
// experiment.
func CompareUtilization(mix JobMix, cfg SimConfig) (reconf, contig Stats, err error) {
	reconf, err = Simulate(FullPod(), Reconfigurable{}, mix, cfg)
	if err != nil {
		return
	}
	contig, err = Simulate(FullPod(), Contiguous{}, mix, cfg)
	return
}
