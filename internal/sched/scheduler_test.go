package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"lightwave/internal/topo"
)

// fakeOps records ClusterOps calls and tracks the implied slice set.
type fakeOps struct {
	calls  []string
	slices map[string]map[string][]int // pod -> slice -> cubes
	fail   error
}

func newFakeOps() *fakeOps { return &fakeOps{slices: map[string]map[string][]int{}} }

func (f *fakeOps) EnsureJobSlice(pod, slice string, shape topo.Shape, cubes []int) error {
	if f.fail != nil {
		return f.fail
	}
	if shape.Cubes() != len(cubes) {
		return fmt.Errorf("shape %v does not cover %d cubes", shape, len(cubes))
	}
	if f.slices[pod] == nil {
		f.slices[pod] = map[string][]int{}
	}
	f.slices[pod][slice] = append([]int(nil), cubes...)
	f.calls = append(f.calls, fmt.Sprintf("ensure %s/%s %v", pod, slice, cubes))
	return nil
}

func (f *fakeOps) RemoveJobSlice(pod, slice string) error {
	if f.fail != nil {
		return f.fail
	}
	delete(f.slices[pod], slice)
	f.calls = append(f.calls, fmt.Sprintf("remove %s/%s", pod, slice))
	return nil
}

// names returns the slice names present on a pod, sorted.
func (f *fakeOps) names(pod string) []string {
	var out []string
	for s := range f.slices[pod] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestSchedulerLifecycle(t *testing.T) {
	ops := newFakeOps()
	s, err := NewScheduler(SchedulerConfig{Pods: []string{"pod0"}, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	id0, placed, err := s.Submit(JobSpec{Cubes: 8, DurationSeconds: 100})
	if err != nil || !placed {
		t.Fatalf("submit = (%d, %v, %v)", id0, placed, err)
	}
	id1, placed, err := s.Submit(JobSpec{Cubes: 56, DurationSeconds: 50})
	if err != nil || !placed {
		t.Fatalf("submit = (%d, %v, %v)", id1, placed, err)
	}
	// Pod is full: a third job queues.
	id2, placed, err := s.Submit(JobSpec{Cubes: 4, DurationSeconds: 10})
	if err != nil || placed {
		t.Fatalf("submit on full pod = (%d, %v, %v)", id2, placed, err)
	}
	if got := s.Stats(); got.QueueDepth != 1 || got.RunningJobs != 2 || got.Started != 2 {
		t.Fatalf("stats %+v", got)
	}
	if got := ops.names("pod0"); !reflect.DeepEqual(got, []string{"job-0", "job-1"}) {
		t.Fatalf("fleet slices %v", got)
	}
	// At t=50 job 1 ends, freeing room for job 2 (ends t=60).
	if err := s.AdvanceTo(70); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed != 2 || st.RunningJobs != 1 || st.QueueDepth != 0 {
		t.Fatalf("stats after advance %+v", st)
	}
	if got := ops.names("pod0"); !reflect.DeepEqual(got, []string{"job-0"}) {
		t.Fatalf("fleet slices %v", got)
	}
	if err := s.AdvanceTo(200); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Completed+st.Preempted+st.RunningJobs != st.Started {
		t.Fatalf("accounting %+v", st)
	}
	if len(ops.names("pod0")) != 0 {
		t.Fatalf("fleet slices %v after drain", ops.names("pod0"))
	}
	if err := s.AdvanceTo(100); !errors.Is(err, ErrTimeWarp) {
		t.Fatalf("AdvanceTo backwards = %v", err)
	}
}

func TestSchedulerFailSwapReshapesSlice(t *testing.T) {
	ops := newFakeOps()
	s, err := NewScheduler(SchedulerConfig{Pods: []string{"pod0"}, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := s.Submit(JobSpec{Cubes: 4, DurationSeconds: 100})
	if err != nil {
		t.Fatal(err)
	}
	before := ops.slices["pod0"][sliceName(id)]
	if err := s.FailCube("pod0", before[0]); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Swaps != 1 || st.Preempted != 0 || st.RunningJobs != 1 {
		t.Fatalf("stats after swap %+v", st)
	}
	after := ops.slices["pod0"][sliceName(id)]
	if reflect.DeepEqual(before, after) || len(after) != 4 {
		t.Fatalf("slice not reshaped: %v -> %v", before, after)
	}
	// Double-fail of the same cube is a no-op.
	if err := s.FailCube("pod0", before[0]); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.Failures != 1 {
		t.Fatalf("double fail counted: %+v", got)
	}
}

func TestSchedulerFailPreemptsOnStatic(t *testing.T) {
	ops := newFakeOps()
	s, err := NewScheduler(SchedulerConfig{Pods: []string{"pod0"}, Placer: Contiguous{}, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := s.Submit(JobSpec{Cubes: 8, DurationSeconds: 100})
	if err != nil {
		t.Fatal(err)
	}
	cubes := ops.slices["pod0"][sliceName(id)]
	if err := s.FailCube("pod0", cubes[0]); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Preempted != 1 || st.Swaps != 0 || st.RunningJobs != 0 {
		t.Fatalf("stats after static-fabric failure %+v", st)
	}
	if len(ops.names("pod0")) != 0 {
		t.Fatalf("slice still present after preemption: %v", ops.names("pod0"))
	}
	// Repair frees the cube again.
	if err := s.RepairCube("pod0", cubes[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.RepairCube("pod0", cubes[0]); err != nil {
		t.Fatal(err) // idempotent
	}
	if got := s.Stats(); got.Repairs != 1 {
		t.Fatalf("repairs %+v", got)
	}
}

func TestSchedulerPodDownPreemptsAndRestores(t *testing.T) {
	ops := newFakeOps()
	s, err := NewScheduler(SchedulerConfig{Pods: []string{"a", "b"}, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	// Fill pod a so the second job lands on b.
	if _, _, err := s.Submit(JobSpec{Cubes: 64, DurationSeconds: 500}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(JobSpec{Cubes: 16, DurationSeconds: 500}); err != nil {
		t.Fatal(err)
	}
	if got := ops.names("b"); !reflect.DeepEqual(got, []string{"job-1"}) {
		t.Fatalf("pod b slices %v", got)
	}
	if err := s.SetPodDown("b", true); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Preempted != 1 || st.RunningJobs != 1 {
		t.Fatalf("stats after pod loss %+v", st)
	}
	// While down, nothing places on b even though it has free cubes.
	id, placed, err := s.Submit(JobSpec{Cubes: 16, DurationSeconds: 10})
	if err != nil || placed {
		t.Fatalf("submit while pod down = (%d, %v, %v)", id, placed, err)
	}
	if err := s.SetPodDown("b", false); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.RunningJobs != 2 || got.QueueDepth != 0 {
		t.Fatalf("stats after restore %+v", got)
	}
	if err := s.SetPodDown("missing", true); !errors.Is(err, ErrUnknownPod) {
		t.Fatalf("unknown pod error = %v", err)
	}
}

func TestSchedulerDefragReplaysMoves(t *testing.T) {
	ops := newFakeOps()
	s, err := NewScheduler(SchedulerConfig{
		Pods:   []string{"pod0"},
		Placer: ContiguousWithDefrag{}, // normalized to contiguous + defrag
		Ops:    ops,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy() != "contiguous+defrag" {
		t.Fatalf("policy %q", s.Policy())
	}
	// Checkerboard the pod with 1-cube jobs, then release every other one:
	// a 32-cube job only fits after compaction.
	var ids []int
	for i := 0; i < 64; i++ {
		id, placed, err := s.Submit(JobSpec{Cubes: 1, DurationSeconds: 1000})
		if err != nil || !placed {
			t.Fatalf("fill submit %d = (%v, %v)", i, placed, err)
		}
		ids = append(ids, id)
	}
	// Complete the even-indexed jobs early by ending them at t=1.
	for i, id := range ids {
		if i%2 == 0 {
			s.mu.Lock()
			rj := s.running[id]
			rj.end = 1
			heap.Fix(&s.done, rj.heapIdx)
			s.mu.Unlock()
		}
	}
	if err := s.AdvanceTo(2); err != nil {
		t.Fatal(err)
	}
	id, placed, err := s.Submit(JobSpec{Cubes: 32, DurationSeconds: 10})
	if err != nil || !placed {
		t.Fatalf("large submit = (%d, %v, %v)", id, placed, err)
	}
	st := s.Stats()
	if st.MigratedCubes == 0 {
		t.Fatalf("no migrations recorded: %+v", st)
	}
	// Every fleet slice must match the scheduler's running set exactly.
	want := append([]string(nil), s.RunningSlices()["pod0"]...)
	sort.Strings(want)
	if got := ops.names("pod0"); !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet slices %v, scheduler wants %v", got, want)
	}
}

func TestSchedulerUtilizationExcludesDownAndFailed(t *testing.T) {
	s, err := NewScheduler(SchedulerConfig{Pods: []string{"pod0"}})
	if err != nil {
		t.Fatal(err)
	}
	// 32 busy of 64 for 100s.
	if _, _, err := s.Submit(JobSpec{Cubes: 32, DurationSeconds: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Utilization; got < 0.499 || got > 0.501 {
		t.Fatalf("utilization %v, want 0.5", got)
	}
	// Fail 16 free cubes: availability drops to 48, so 32/48.
	s.StartMeasurement()
	failed := 0
	for c := 0; c < 64 && failed < 16; c++ {
		if s.byName["pod0"].mirror.State(c) == Free {
			if err := s.FailCube("pod0", c); err != nil {
				t.Fatal(err)
			}
			failed++
		}
	}
	if err := s.AdvanceTo(200); err != nil {
		t.Fatal(err)
	}
	want := 32.0 / 48.0
	if got := s.Stats().Utilization; got < want-0.001 || got > want+0.001 {
		t.Fatalf("utilization %v, want %v", got, want)
	}
}

func TestSchedulerEnsureFailureRollsBackMirror(t *testing.T) {
	ops := newFakeOps()
	ops.fail = errors.New("fabric says no")
	s, err := NewScheduler(SchedulerConfig{Pods: []string{"pod0"}, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	if _, placed, err := s.Submit(JobSpec{Cubes: 8, DurationSeconds: 10}); err == nil || placed {
		t.Fatalf("submit with failing ops = (%v, %v)", placed, err)
	}
	st := s.Stats()
	if st.Started != 0 || st.RunningJobs != 0 || st.QueueDepth != 1 {
		t.Fatalf("stats after rejected placement %+v", st)
	}
	if free := s.byName["pod0"].mirror.FreeCubes(); free != 64 {
		t.Fatalf("%d free cubes after rollback, want 64", free)
	}
	// Once the fabric recovers, the queued job places on the next event.
	ops.fail = nil
	if err := s.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.RunningJobs != 1 || got.QueueDepth != 0 {
		t.Fatalf("stats after recovery %+v", got)
	}
}
