package sched

import "testing"

// checkerboard fills the pod with 1-cube jobs and releases alternating
// positions, producing maximal fragmentation.
func checkerboard(t *testing.T) *Pod {
	t.Helper()
	p := FullPod()
	r := Reconfigurable{}
	for i := 0; i < 64; i++ {
		if _, err := r.Place(p, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			for z := 0; z < 4; z++ {
				if (x+y+z)%2 == 0 {
					p.Release(p.index(x, y, z))
				}
			}
		}
	}
	return p
}

func TestFragmentationScore(t *testing.T) {
	p := FullPod()
	if s := p.FragmentationScore(); s != 0 {
		t.Fatalf("empty pod fragmentation = %v", s)
	}
	cb := checkerboard(t)
	if s := cb.FragmentationScore(); s <= 0.9 {
		t.Fatalf("checkerboard fragmentation = %v, want near 1", s)
	}
}

func TestDefragmentEnablesPlacement(t *testing.T) {
	p := checkerboard(t)
	c := Contiguous{}
	if _, err := c.Place(p, 900, 8); err == nil {
		t.Fatal("checkerboard should block an 8-cube box")
	}
	res := p.Defragment()
	if res.MigratedCubes == 0 {
		t.Fatal("defragmentation moved nothing")
	}
	if _, err := c.Place(p, 900, 8); err != nil {
		t.Fatalf("8-cube box still blocked after defrag: %v", err)
	}
	if s := p.FragmentationScore(); s > 0.5 {
		t.Fatalf("fragmentation %v after defrag", s)
	}
}

func TestDefragmentPreservesJobSizes(t *testing.T) {
	p := FullPod()
	c := Contiguous{}
	sizes := map[int]int{1: 8, 2: 4, 3: 2, 4: 1}
	for j, n := range sizes {
		if _, err := c.Place(p, j, n); err != nil {
			t.Fatal(err)
		}
	}
	p.Defragment()
	got := map[int]int{}
	for cube := range p.state {
		if p.state[cube] == Busy {
			got[p.owner[cube]]++
		}
	}
	for j, n := range sizes {
		if got[j] != n {
			t.Fatalf("job %d has %d cubes after defrag, want %d", j, got[j], n)
		}
	}
}

func TestDefragmentIdempotentWhenCompact(t *testing.T) {
	p := FullPod()
	c := Contiguous{}
	_, _ = c.Place(p, 1, 32)
	_, _ = c.Place(p, 2, 16)
	p.Defragment()
	res := p.Defragment()
	if res.MigratedCubes != 0 {
		t.Fatalf("second defrag moved %d cubes", res.MigratedCubes)
	}
}

func TestContiguousWithDefragPolicy(t *testing.T) {
	p := checkerboard(t)
	migrations := 0
	d := ContiguousWithDefrag{Migrations: &migrations}
	ids, err := d.Place(p, 900, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 {
		t.Fatalf("ids = %v", ids)
	}
	if migrations == 0 {
		t.Fatal("no migration cost recorded")
	}
}

func TestContiguousWithDefragStillBoundByCapacity(t *testing.T) {
	p := checkerboard(t) // 32 free cubes
	d := ContiguousWithDefrag{}
	if _, err := d.Place(p, 901, 40); err == nil {
		t.Fatal("placed beyond free capacity")
	}
}

// TestDefragVsReconfigurableUtilization quantifies §4.2.4: compaction lets
// the contiguous pod approach the reconfigurable pod's utilization, but
// only by paying continual migrations, which the lightwave fabric avoids
// entirely.
func TestDefragVsReconfigurableUtilization(t *testing.T) {
	mix := ProductionMix()
	cfg := ReferenceConfig()
	cfg.Duration = 150000

	reconf, err := Simulate(FullPod(), Reconfigurable{}, mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Simulate(FullPod(), Contiguous{}, mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	migrations := 0
	defrag, err := Simulate(FullPod(), ContiguousWithDefrag{Migrations: &migrations}, mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if defrag.Utilization <= plain.Utilization {
		t.Fatalf("defrag did not improve utilization: %.3f vs %.3f",
			defrag.Utilization, plain.Utilization)
	}
	if migrations == 0 {
		t.Fatal("defrag policy recorded no migrations under load")
	}
	if reconf.Utilization < defrag.Utilization-0.01 {
		t.Fatalf("reconfigurable %.3f should match or beat defrag %.3f without migrations",
			reconf.Utilization, defrag.Utilization)
	}
}
