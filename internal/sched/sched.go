// Package sched implements the slice scheduling of §4.2.4: the cluster
// scheduler composes workload-sized slices from idle elemental cubes. With
// the reconfigurable lightwave fabric, any set of idle cubes can form a
// slice (the OCS provides the connectivity), while the previous-generation
// static interconnect required physically contiguous nodes — so the
// reconfigurable pod schedules at much higher utilization ("we are able to
// run the TPU V4 fleet at a higher (>98%) utilization than earlier-
// generation superpods despite the need to support 4× larger slices").
package sched

import (
	"errors"
	"fmt"

	"lightwave/internal/topo"
)

// CubeState is the state of one elemental cube.
type CubeState int

// Cube states.
const (
	Free CubeState = iota
	Busy
	Failed
)

// Pod tracks cube occupancy. The physical layout is a 4×4×4 grid of cubes
// (the full pod), which only matters to the contiguous policy.
type Pod struct {
	Grid  [3]int // cubes per physical dimension
	state []CubeState
	owner []int // job id per cube, -1 when free
}

// NewPod returns an all-free pod with the given cube grid.
func NewPod(grid [3]int) (*Pod, error) {
	n := grid[0] * grid[1] * grid[2]
	if n <= 0 {
		return nil, fmt.Errorf("sched: invalid grid %v", grid)
	}
	p := &Pod{Grid: grid, state: make([]CubeState, n), owner: make([]int, n)}
	for i := range p.owner {
		p.owner[i] = -1
	}
	return p, nil
}

// FullPod returns the production 64-cube pod.
func FullPod() *Pod {
	p, err := NewPod([3]int{4, 4, 4})
	if err != nil {
		panic(err)
	}
	return p
}

// Cubes returns the total cube count.
func (p *Pod) Cubes() int { return len(p.state) }

// FreeCubes returns the number of free cubes.
func (p *Pod) FreeCubes() int {
	n := 0
	for _, s := range p.state {
		if s == Free {
			n++
		}
	}
	return n
}

// BusyCubes returns the number of allocated cubes.
func (p *Pod) BusyCubes() int {
	n := 0
	for _, s := range p.state {
		if s == Busy {
			n++
		}
	}
	return n
}

// index maps a grid coordinate to a cube id.
func (p *Pod) index(x, y, z int) int {
	return (x*p.Grid[1]+y)*p.Grid[2] + z
}

// Errors returned by pod operations.
var (
	ErrNotPlaced = errors.New("sched: job does not fit")
	ErrBadCube   = errors.New("sched: invalid cube")
	ErrNotOwner  = errors.New("sched: cube not owned by job")
)

// allocate marks the cubes busy for job id.
func (p *Pod) allocate(cubes []int, job int) error {
	for _, c := range cubes {
		if c < 0 || c >= len(p.state) {
			return ErrBadCube
		}
		if p.state[c] != Free {
			return fmt.Errorf("%w: cube %d not free", ErrBadCube, c)
		}
	}
	for _, c := range cubes {
		p.state[c] = Busy
		p.owner[c] = job
	}
	return nil
}

// Occupy marks the given cubes busy for a job — state import uses it to
// rebuild a mirror from a snapshot. Every cube must be free.
func (p *Pod) Occupy(job int, cubes []int) error { return p.allocate(cubes, job) }

// Release frees every cube owned by job and returns them.
func (p *Pod) Release(job int) []int {
	var freed []int
	for c := range p.state {
		if p.owner[c] == job {
			p.state[c] = Free
			p.owner[c] = -1
			freed = append(freed, c)
		}
	}
	return freed
}

// State returns the state of one cube; out-of-range cubes report Failed so
// callers can treat unknown ids as unusable.
func (p *Pod) State(cube int) CubeState {
	if cube < 0 || cube >= len(p.state) {
		return Failed
	}
	return p.state[cube]
}

// Owner returns the job occupying a cube, or -1 when it is free, failed, or
// out of range.
func (p *Pod) Owner(cube int) int {
	if cube < 0 || cube >= len(p.state) {
		return -1
	}
	return p.owner[cube]
}

// JobCubes returns the cubes owned by a job, ascending.
func (p *Pod) JobCubes(job int) []int {
	var cubes []int
	for c := range p.state {
		if p.owner[c] == job {
			cubes = append(cubes, c)
		}
	}
	return cubes
}

// clone copies the pod's occupancy state (for scratch planning).
func (p *Pod) clone() *Pod {
	return &Pod{
		Grid:  p.Grid,
		state: append([]CubeState(nil), p.state...),
		owner: append([]int(nil), p.owner...),
	}
}

// Fail marks a cube failed. If it was busy, the owning job id is returned.
// Failing an already-failed cube is an idempotent no-op — there is no owner
// to evict and the repair clock must not restart — reported as
// (0, false, nil).
func (p *Pod) Fail(cube int) (job int, wasBusy bool, err error) {
	if cube < 0 || cube >= len(p.state) {
		return 0, false, ErrBadCube
	}
	if p.state[cube] == Failed {
		return 0, false, nil
	}
	job = p.owner[cube]
	wasBusy = p.state[cube] == Busy
	p.state[cube] = Failed
	p.owner[cube] = -1
	return job, wasBusy, nil
}

// Repair returns a failed cube to service.
func (p *Pod) Repair(cube int) error {
	if cube < 0 || cube >= len(p.state) {
		return ErrBadCube
	}
	if p.state[cube] != Failed {
		return fmt.Errorf("%w: cube %d not failed", ErrBadCube, cube)
	}
	p.state[cube] = Free
	return nil
}

// SwapCube replaces a failed cube of a job with a free one (only possible
// on the reconfigurable fabric). It returns the replacement cube.
func (p *Pod) SwapCube(job int) (int, error) {
	for c := range p.state {
		if p.state[c] == Free {
			p.state[c] = Busy
			p.owner[c] = job
			return c, nil
		}
	}
	return 0, ErrNotPlaced
}

// Placer decides which cubes a job occupies.
type Placer interface {
	// Place returns the cube ids for a job needing the given cube count,
	// or ErrNotPlaced.
	Place(p *Pod, job, cubes int) ([]int, error)
	// Name identifies the policy.
	Name() string
}

// Reconfigurable places a job on any free cubes: the lightwave fabric
// connects them regardless of physical position.
type Reconfigurable struct{}

// Name implements Placer.
func (Reconfigurable) Name() string { return "reconfigurable" }

// Place implements Placer.
func (Reconfigurable) Place(p *Pod, job, cubes int) ([]int, error) {
	if cubes <= 0 {
		return nil, ErrNotPlaced
	}
	var picked []int
	for c := range p.state {
		if p.state[c] == Free {
			picked = append(picked, c)
			if len(picked) == cubes {
				if err := p.allocate(picked, job); err != nil {
					return nil, err
				}
				return picked, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: need %d cubes, %d free", ErrNotPlaced, cubes, len(picked))
}

// Contiguous places a job only on an axis-aligned box of free cubes — the
// TPU v3-style constraint ("scheduling a 256-node slice required finding
// 256 contiguous nodes that were idle and functional").
type Contiguous struct{}

// Name implements Placer.
func (Contiguous) Name() string { return "contiguous" }

// Place implements Placer.
func (c Contiguous) Place(p *Pod, job, cubes int) ([]int, error) {
	if cubes <= 0 {
		return nil, ErrNotPlaced
	}
	for _, box := range boxesFor(cubes, p.Grid) {
		for x := 0; x+box[0] <= p.Grid[0]; x++ {
			for y := 0; y+box[1] <= p.Grid[1]; y++ {
				for z := 0; z+box[2] <= p.Grid[2]; z++ {
					ids := p.boxCubes(x, y, z, box)
					if ids != nil {
						if err := p.allocate(ids, job); err != nil {
							return nil, err
						}
						return ids, nil
					}
				}
			}
		}
	}
	return nil, fmt.Errorf("%w: no free %d-cube box", ErrNotPlaced, cubes)
}

// boxCubes returns the cube ids of the box if all free, else nil.
func (p *Pod) boxCubes(x, y, z int, box [3]int) []int {
	ids := make([]int, 0, box[0]*box[1]*box[2])
	for dx := 0; dx < box[0]; dx++ {
		for dy := 0; dy < box[1]; dy++ {
			for dz := 0; dz < box[2]; dz++ {
				id := p.index(x+dx, y+dy, z+dz)
				if p.state[id] != Free {
					return nil
				}
				ids = append(ids, id)
			}
		}
	}
	return ids
}

// boxesFor enumerates the axis-aligned box dimensions with the given
// volume that fit in the grid, most-compact first.
func boxesFor(cubes int, grid [3]int) [][3]int {
	var out [][3]int
	for a := 1; a <= cubes && a <= grid[0]; a++ {
		if cubes%a != 0 {
			continue
		}
		rest := cubes / a
		for b := 1; b <= rest && b <= grid[1]; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			if c <= grid[2] {
				out = append(out, [3]int{a, b, c})
			}
		}
	}
	// Order by compactness (surface area): compact boxes leave more
	// usable space behind.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && surface(out[j]) < surface(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func surface(b [3]int) int {
	return 2 * (b[0]*b[1] + b[1]*b[2] + b[0]*b[2])
}

// SliceShapesFor returns the chip-level shapes a job of the given cube
// count can take — used by callers that co-optimize placement and slice
// shape (§4.2.1).
func SliceShapesFor(cubes int) []topo.Shape {
	return topo.ShapesFor(cubes)
}
