package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// The online scheduler: the §4.2.4 job stream run against live pods
// instead of the offline simulator. The Scheduler keeps a cube-occupancy
// mirror per pod (the same *Pod the simulator uses), makes every placement
// decision on the mirror, and pushes the resulting slice intents to the
// cluster through a ClusterOps seam — in production a fleet.Manager, in
// tests nothing at all. Virtual time is advanced explicitly by the caller
// (AdvanceTo), so a daemon ticks it against the wall clock while an
// evaluator replays a deterministic event stream; the scheduler itself
// never reads a clock for anything but latency metrics.

// ClusterOps is the seam between scheduling decisions and the cluster
// control plane. The production implementation translates calls into
// fleet.Manager slice intents; a nil ClusterOps runs the scheduler
// mirror-only (pure simulation).
type ClusterOps interface {
	// EnsureJobSlice declares that a job's slice must exist on the pod
	// with the given chip-level shape and cube set. Called again with a
	// changed cube set (swap, defrag migration), it reshapes the slice.
	EnsureJobSlice(pod, slice string, shape topo.Shape, cubes []int) error
	// RemoveJobSlice declares that a job's slice must no longer exist.
	RemoveJobSlice(pod, slice string) error
}

// ShapeChooser picks the chip-level slice shape for a job of the given
// cube count. The returned shape must satisfy Shape.Cubes() == cubes.
type ShapeChooser func(cubes int) topo.Shape

// SchedulerConfig configures an online scheduler.
type SchedulerConfig struct {
	// Pods names the pods under management (order does not matter; the
	// scheduler sorts them so placement scans are deterministic).
	Pods []string
	// InstalledCubes is the usable cube count per pod (default 64; fewer
	// marks the remainder permanently failed in the mirror).
	InstalledCubes int
	// Placer is the placement policy (default Reconfigurable).
	// ContiguousWithDefrag is normalized to Contiguous with Defrag set so
	// compaction migrations replay through Ops.
	Placer Placer
	// Defrag enables compaction-on-blocked-placement for the contiguous
	// policy; migrations are replayed as slice updates through Ops.
	Defrag bool
	// BackfillWindow is how many queued jobs may jump a blocked head job
	// (0 = default 6).
	BackfillWindow int
	// Shapes picks each job's slice shape (default topo.MaxBisectionShape).
	Shapes ShapeChooser
	// Ops receives slice intents; nil runs mirror-only.
	Ops ClusterOps
}

// JobSpec describes one submitted job.
type JobSpec struct {
	Cubes           int
	DurationSeconds float64
}

// SchedulerStats is a point-in-time snapshot of the scheduler.
type SchedulerStats struct {
	Now           float64
	Submitted     int
	Started       int
	Completed     int
	Preempted     int
	Swaps         int
	MigratedCubes int
	Failures      int
	Repairs       int
	QueueDepth    int
	RunningJobs   int
	// Utilization is busy cube-time over available (healthy, pod-up)
	// cube-time since StartMeasurement (or since construction).
	Utilization float64
	// MeanWaitSeconds is the mean queueing delay of jobs started since
	// StartMeasurement.
	MeanWaitSeconds float64
}

// Scheduler errors.
var (
	ErrUnknownPod = errors.New("sched: unknown pod")
	ErrTimeWarp   = errors.New("sched: AdvanceTo before current time")
)

type schedPod struct {
	name   string
	mirror *Pod
	down   bool
}

type queuedJob struct {
	id      int
	spec    JobSpec
	arrived float64
}

type runningJob struct {
	id      int
	pod     *schedPod
	spec    JobSpec
	shape   topo.Shape
	cubes   []int
	start   float64
	end     float64
	heapIdx int
}

type completionHeap []*runningJob

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].end != h[j].end {
		return h[i].end < h[j].end
	}
	return h[i].id < h[j].id
}
func (h completionHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *completionHeap) Push(x any) {
	rj := x.(*runningJob)
	rj.heapIdx = len(*h)
	*h = append(*h, rj)
}
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	rj := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return rj
}

// Scheduler is the online §4.2.4 slice scheduler. All methods are safe for
// concurrent use; virtual time only moves through AdvanceTo.
type Scheduler struct {
	mu       sync.Mutex
	cfg      SchedulerConfig
	placer   Placer
	defrag   bool
	shapes   ShapeChooser
	backfill int
	maxJob   int // largest placeable job: one pod's installed cubes

	pods   []*schedPod // sorted by name
	byName map[string]*schedPod

	journal Journal
	walLSN  uint64 // highest LSN journaled; exports record it

	queue   []*queuedJob
	running map[int]*runningJob
	done    completionHeap
	now     float64
	nextID  int

	submitted, started, completed, preempted int
	swaps, migrated, failures, repairs       int
	busyIntegral, availIntegral              float64
	lastAccount                              float64
	waitSum                                  float64
	waitCount                                int

	cSubmitted, cStarted, cCompleted, cPreempted *telemetry.Counter
	cSwaps, cMigrated, cFailures, cRepairs       *telemetry.Counter
	gQueue, gRunning, gUtil                      *telemetry.Gauge
	dWait, dPlace                                *telemetry.Distribution
}

// NewScheduler builds a scheduler over the named pods.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if len(cfg.Pods) == 0 {
		return nil, errors.New("sched: no pods")
	}
	installed := cfg.InstalledCubes
	if installed <= 0 || installed > 64 {
		installed = 64
	}
	placer := cfg.Placer
	if placer == nil {
		placer = Reconfigurable{}
	}
	defrag := cfg.Defrag
	if _, ok := placer.(ContiguousWithDefrag); ok {
		placer = Contiguous{}
		defrag = true
	}
	if _, ok := placer.(Contiguous); !ok {
		defrag = false // compaction never helps the reconfigurable policy
	}
	shapes := cfg.Shapes
	if shapes == nil {
		shapes = topo.MaxBisectionShape
	}
	backfill := cfg.BackfillWindow
	if backfill <= 0 {
		backfill = 6
	}
	s := &Scheduler{
		cfg:      cfg,
		placer:   placer,
		defrag:   defrag,
		shapes:   shapes,
		backfill: backfill,
		maxJob:   installed,
		byName:   make(map[string]*schedPod, len(cfg.Pods)),
		running:  make(map[int]*runningJob),
	}
	names := append([]string(nil), cfg.Pods...)
	sort.Strings(names)
	for _, name := range names {
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("sched: duplicate pod %q", name)
		}
		sp := &schedPod{name: name, mirror: FullPod()}
		for c := installed; c < sp.mirror.Cubes(); c++ {
			if _, _, err := sp.mirror.Fail(c); err != nil {
				return nil, err
			}
		}
		s.pods = append(s.pods, sp)
		s.byName[name] = sp
	}

	reg := Registry()
	s.cSubmitted = reg.Counter("sched_submitted_total")
	s.cStarted = reg.Counter("sched_started_total")
	s.cCompleted = reg.Counter("sched_completed_total")
	s.cPreempted = reg.Counter("sched_preempted_total")
	s.cSwaps = reg.Counter("sched_swaps_total")
	s.cMigrated = reg.Counter("sched_migrated_cubes_total")
	s.cFailures = reg.Counter("sched_cube_failures_total")
	s.cRepairs = reg.Counter("sched_cube_repairs_total")
	s.gQueue = reg.Gauge("sched_queue_depth")
	s.gRunning = reg.Gauge("sched_running_jobs")
	s.gUtil = reg.Gauge("sched_utilization")
	s.dWait = reg.Distribution("sched_wait_seconds")
	s.dPlace = reg.Distribution("sched_place_seconds")
	return s, nil
}

// Policy names the effective placement policy.
func (s *Scheduler) Policy() string {
	if s.defrag {
		return s.placer.Name() + "+defrag"
	}
	return s.placer.Name()
}

// Pods returns the managed pod names, sorted.
func (s *Scheduler) Pods() []string {
	names := make([]string, len(s.pods))
	for i, sp := range s.pods {
		names[i] = sp.name
	}
	return names
}

// Now returns the current virtual time.
func (s *Scheduler) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// sliceName is the fleet slice name carrying a job.
func sliceName(job int) string { return fmt.Sprintf("job-%d", job) }

// accrueTo integrates busy and available cube-time up to t and moves the
// virtual clock there.
func (s *Scheduler) accrueTo(t float64) {
	dt := t - s.lastAccount
	if dt > 0 {
		busy, avail := 0, 0
		for _, sp := range s.pods {
			if sp.down {
				continue
			}
			for _, st := range sp.mirror.state {
				switch st {
				case Busy:
					busy++
					avail++
				case Free:
					avail++
				}
			}
		}
		s.busyIntegral += float64(busy) * dt
		s.availIntegral += float64(avail) * dt
		s.lastAccount = t
	}
	if t > s.now {
		s.now = t
	}
}

func (s *Scheduler) updateGaugesLocked() {
	s.gQueue.Set(float64(len(s.queue)))
	s.gRunning.Set(float64(len(s.running)))
	if s.availIntegral > 0 {
		s.gUtil.Set(s.busyIntegral / s.availIntegral)
	}
}

// Submit enqueues a job at the current virtual time and immediately tries
// to place it (and anything else in the backfill window). It reports the
// job id and whether the job started right away. An error means the
// cluster rejected a slice intent; the mirror is rolled back for the
// failed placement but earlier placements in the same pass stand.
func (s *Scheduler) Submit(spec JobSpec) (int, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if spec.Cubes <= 0 || spec.DurationSeconds <= 0 {
		return 0, false, errors.New("sched: non-positive job spec")
	}
	if spec.Cubes > s.maxJob {
		// An unplaceable job would pin the head of the FIFO queue forever
		// once the backfill window fills behind it; reject it up front.
		return 0, false, fmt.Errorf("sched: job wants %d cubes, pods install %d", spec.Cubes, s.maxJob)
	}
	if err := s.journalLocked(JournalEntry{Op: OpSubmit, Spec: &spec}); err != nil {
		return 0, false, err
	}
	id := s.nextID
	s.nextID++
	s.submitted++
	s.cSubmitted.Inc()
	s.queue = append(s.queue, &queuedJob{id: id, spec: spec, arrived: s.now})
	err := s.tryPlaceLocked()
	_, placed := s.running[id]
	s.updateGaugesLocked()
	return id, placed, err
}

// AdvanceTo moves virtual time forward, completing jobs whose end time has
// passed (in deterministic (end, id) order) and starting queued jobs as
// cubes free up.
func (s *Scheduler) AdvanceTo(t float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		return fmt.Errorf("%w: %.3f < %.3f", ErrTimeWarp, t, s.now)
	}
	// A same-time tick with an empty queue cannot change state; skip the
	// journal write so idle daemon ticks do not grow the log.
	if t > s.now || len(s.queue) > 0 {
		if err := s.journalLocked(JournalEntry{Op: OpAdvance, T: t}); err != nil {
			return err
		}
	}
	var firstErr error
	for len(s.done) > 0 && s.done[0].end <= t {
		rj := heap.Pop(&s.done).(*runningJob)
		s.accrueTo(rj.end)
		delete(s.running, rj.id)
		rj.pod.mirror.Release(rj.id)
		s.completed++
		s.cCompleted.Inc()
		if s.cfg.Ops != nil {
			if err := s.cfg.Ops.RemoveJobSlice(rj.pod.name, sliceName(rj.id)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := s.tryPlaceLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.accrueTo(t)
	// Retry queued jobs even when nothing completed: a placement the
	// cluster transiently rejected becomes eligible again on the next tick.
	if len(s.queue) > 0 {
		if err := s.tryPlaceLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.updateGaugesLocked()
	return firstErr
}

// tryPlaceLocked runs the FIFO-with-bounded-backfill placement loop over
// the queue: the head job starts first when it fits on any up pod;
// otherwise up to backfill younger jobs may jump ahead. Pods are scanned
// in name order.
func (s *Scheduler) tryPlaceLocked() error {
	for {
		placedAny := false
		limit := s.backfill
		if limit > len(s.queue) {
			limit = len(s.queue)
		}
		for i := 0; i < limit; i++ {
			j := s.queue[i]
			sp, cubes, err := s.placeOnAnyLocked(j)
			if err != nil {
				return err
			}
			if sp == nil {
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			wait := s.now - j.arrived
			s.waitSum += wait
			s.waitCount++
			s.dWait.Observe(wait)
			rj := &runningJob{
				id:    j.id,
				pod:   sp,
				spec:  j.spec,
				cubes: cubes,
				start: s.now,
				end:   s.now + j.spec.DurationSeconds,
			}
			rj.shape = s.shapes(j.spec.Cubes)
			s.running[j.id] = rj
			heap.Push(&s.done, rj)
			s.started++
			s.cStarted.Inc()
			placedAny = true
			break
		}
		if !placedAny {
			return nil
		}
	}
}

// placeOnAnyLocked tries to place one job on each up pod in name order,
// compacting first when defrag is enabled and compaction could help. It
// returns (nil, nil, nil) when the job does not fit anywhere.
func (s *Scheduler) placeOnAnyLocked(j *queuedJob) (*schedPod, []int, error) {
	//lwlint:ignore walltime placement-latency histogram only; placement decisions depend solely on pod state
	t0 := time.Now()
	for _, sp := range s.pods {
		if sp.down {
			continue
		}
		cubes, err := s.placer.Place(sp.mirror, j.id, j.spec.Cubes)
		if err != nil && s.defrag && j.spec.Cubes <= sp.mirror.FreeCubes() {
			if err := s.defragPodLocked(sp); err != nil {
				return nil, nil, err
			}
			cubes, err = s.placer.Place(sp.mirror, j.id, j.spec.Cubes)
		}
		if err != nil {
			continue
		}
		if s.cfg.Ops != nil {
			shape := s.shapes(j.spec.Cubes)
			if err := s.cfg.Ops.EnsureJobSlice(sp.name, sliceName(j.id), shape, cubes); err != nil {
				sp.mirror.Release(j.id)
				return nil, nil, err
			}
		}
		//lwlint:ignore walltime placement-latency histogram only; never a result
		s.dPlace.Observe(time.Since(t0).Seconds())
		return sp, cubes, nil
	}
	//lwlint:ignore walltime placement-latency histogram only; never a result
	s.dPlace.Observe(time.Since(t0).Seconds())
	return nil, nil, nil
}

// defragPodLocked compacts one pod's mirror and replays the migrations as
// slice reshapes so the cluster follows the moves.
func (s *Scheduler) defragPodLocked(sp *schedPod) error {
	res := sp.mirror.Defragment()
	if res.MigratedCubes == 0 {
		return nil
	}
	s.migrated += res.MigratedCubes
	s.cMigrated.Add(int64(res.MigratedCubes))
	var firstErr error
	for _, mv := range res.Moves {
		rj := s.running[mv.Job]
		if rj == nil {
			continue
		}
		rj.cubes = append(rj.cubes[:0], mv.Cubes...)
		if s.cfg.Ops != nil {
			if err := s.cfg.Ops.EnsureJobSlice(sp.name, sliceName(rj.id), rj.shape, rj.cubes); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// preemptLocked kills a running job (cube failure on the static fabric, or
// pod loss) and releases its cubes.
func (s *Scheduler) preemptLocked(rj *runningJob) error {
	heap.Remove(&s.done, rj.heapIdx)
	delete(s.running, rj.id)
	rj.pod.mirror.Release(rj.id)
	s.preempted++
	s.cPreempted.Inc()
	if s.cfg.Ops != nil {
		return s.cfg.Ops.RemoveJobSlice(rj.pod.name, sliceName(rj.id))
	}
	return nil
}

// FailCube records a cube failure at the current virtual time. On the
// reconfigurable policy the victim job swaps onto a free cube (reshaping
// its slice); otherwise — or when no spare exists — the job is preempted.
// Failing an already-failed cube is a no-op.
func (s *Scheduler) FailCube(pod string, cube int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.byName[pod]
	if sp == nil {
		return fmt.Errorf("%w: %q", ErrUnknownPod, pod)
	}
	if sp.mirror.State(cube) == Failed {
		return nil
	}
	if err := s.journalLocked(JournalEntry{Op: OpFailCube, Pod: pod, Cube: cube}); err != nil {
		return err
	}
	s.accrueTo(s.now)
	job, wasBusy, err := sp.mirror.Fail(cube)
	if err != nil {
		return err
	}
	s.failures++
	s.cFailures.Inc()
	var firstErr error
	if wasBusy {
		rj := s.running[job]
		swapped := false
		if _, reconf := s.placer.(Reconfigurable); reconf && rj != nil {
			if _, err := sp.mirror.SwapCube(job); err == nil {
				swapped = true
				s.swaps++
				s.cSwaps.Inc()
				rj.cubes = sp.mirror.JobCubes(job)
				if s.cfg.Ops != nil {
					firstErr = s.cfg.Ops.EnsureJobSlice(sp.name, sliceName(job), rj.shape, rj.cubes)
				}
			}
		}
		if !swapped && rj != nil {
			if err := s.preemptLocked(rj); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := s.tryPlaceLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.updateGaugesLocked()
	return firstErr
}

// RepairCube returns a failed cube to service and retries placement.
// Repairing a healthy cube is a no-op.
func (s *Scheduler) RepairCube(pod string, cube int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.byName[pod]
	if sp == nil {
		return fmt.Errorf("%w: %q", ErrUnknownPod, pod)
	}
	if sp.mirror.State(cube) != Failed {
		return nil
	}
	if err := s.journalLocked(JournalEntry{Op: OpRepairCube, Pod: pod, Cube: cube}); err != nil {
		return err
	}
	s.accrueTo(s.now)
	if err := sp.mirror.Repair(cube); err != nil {
		return err
	}
	s.repairs++
	s.cRepairs.Inc()
	err := s.tryPlaceLocked()
	s.updateGaugesLocked()
	return err
}

// SetPodDown marks a whole pod lost (down=true: every job on it is
// preempted and it stops receiving placements) or restored (down=false:
// it rejoins the placement scan). Setting the current state again is a
// no-op.
func (s *Scheduler) SetPodDown(pod string, down bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.byName[pod]
	if sp == nil {
		return fmt.Errorf("%w: %q", ErrUnknownPod, pod)
	}
	if sp.down == down {
		return nil
	}
	if err := s.journalLocked(JournalEntry{Op: OpPodDown, Pod: pod, Down: down}); err != nil {
		return err
	}
	s.accrueTo(s.now)
	sp.down = down
	var firstErr error
	if down {
		var victims []int
		for id, rj := range s.running {
			if rj.pod == sp {
				victims = append(victims, id)
			}
		}
		sort.Ints(victims)
		for _, id := range victims {
			if err := s.preemptLocked(s.running[id]); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := s.tryPlaceLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.updateGaugesLocked()
	return firstErr
}

// CubeState reports a cube's state in a pod's mirror — evaluators use it
// to decide whether a pre-generated fault event still applies.
func (s *Scheduler) CubeState(pod string, cube int) (CubeState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.byName[pod]
	if sp == nil {
		return Failed, fmt.Errorf("%w: %q", ErrUnknownPod, pod)
	}
	return sp.mirror.State(cube), nil
}

// StartMeasurement zeroes the utilization and wait accumulators — called
// after warmup so steady-state numbers are not diluted by the fill-up
// transient. Counters (submitted, started, …) keep accumulating.
func (s *Scheduler) StartMeasurement() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Best-effort journal: a measurement reset is observability state, not
	// placement state, so a journal failure must not block it.
	_ = s.journalLocked(JournalEntry{Op: OpMeasure})
	s.accrueTo(s.now)
	s.busyIntegral = 0
	s.availIntegral = 0
	s.waitSum = 0
	s.waitCount = 0
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SchedulerStats{
		Now:           s.now,
		Submitted:     s.submitted,
		Started:       s.started,
		Completed:     s.completed,
		Preempted:     s.preempted,
		Swaps:         s.swaps,
		MigratedCubes: s.migrated,
		Failures:      s.failures,
		Repairs:       s.repairs,
		QueueDepth:    len(s.queue),
		RunningJobs:   len(s.running),
	}
	if s.availIntegral > 0 {
		st.Utilization = s.busyIntegral / s.availIntegral
	}
	if s.waitCount > 0 {
		st.MeanWaitSeconds = s.waitSum / float64(s.waitCount)
	}
	return st
}

// RunningSlices returns the slice names the cluster should currently be
// carrying, per pod — evaluators verify the fabric converged to exactly
// this set.
func (s *Scheduler) RunningSlices() map[string][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]string, len(s.pods))
	for _, sp := range s.pods {
		out[sp.name] = nil
	}
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rj := s.running[id]
		out[rj.pod.name] = append(out[rj.pod.name], sliceName(id))
	}
	return out
}
