package sched

import (
	"sync"

	"lightwave/internal/mlperf"
	"lightwave/internal/topo"
)

// NewOptimizedShapeChooser returns a ShapeChooser that picks each cube
// count's slice shape by the mlperf step-time model for workload m — the
// §4.2.1 co-optimization of placement and topology, with the shape search
// fanned out through internal/par. Results are memoized (the cube-count
// domain is tiny), and cube counts with no feasible mapping fall back to
// the max-bisection static shape.
func NewOptimizedShapeChooser(sys mlperf.System, m mlperf.LLM) ShapeChooser {
	var mu sync.Mutex
	memo := make(map[int]topo.Shape)
	return func(cubes int) topo.Shape {
		mu.Lock()
		defer mu.Unlock()
		if sh, ok := memo[cubes]; ok {
			return sh
		}
		sh := topo.MaxBisectionShape(cubes)
		if res, err := sys.OptimizeSlicePar(m, cubes); err == nil {
			sh = res.Best.Shape
		}
		memo[cubes] = sh
		return sh
	}
}
