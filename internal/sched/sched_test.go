package sched

import (
	"errors"
	"testing"
)

func TestPodBasics(t *testing.T) {
	p := FullPod()
	if p.Cubes() != 64 || p.FreeCubes() != 64 || p.BusyCubes() != 0 {
		t.Fatalf("fresh pod: %d/%d/%d", p.Cubes(), p.FreeCubes(), p.BusyCubes())
	}
	if _, err := NewPod([3]int{0, 4, 4}); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestReconfigurablePlacesAnywhere(t *testing.T) {
	p := FullPod()
	r := Reconfigurable{}
	ids, err := r.Place(p, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 || p.BusyCubes() != 10 {
		t.Fatalf("ids=%v busy=%d", ids, p.BusyCubes())
	}
	// Fill the rest and confirm exhaustion error.
	if _, err := r.Place(p, 2, 54); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Place(p, 3, 1); !errors.Is(err, ErrNotPlaced) {
		t.Fatalf("err = %v", err)
	}
}

func TestReleaseFreesExactly(t *testing.T) {
	p := FullPod()
	r := Reconfigurable{}
	ids1, _ := r.Place(p, 1, 5)
	_, _ = r.Place(p, 2, 5)
	freed := p.Release(1)
	if len(freed) != len(ids1) {
		t.Fatalf("freed %d, want %d", len(freed), len(ids1))
	}
	if p.BusyCubes() != 5 {
		t.Fatalf("busy = %d after release", p.BusyCubes())
	}
}

func TestContiguousNeedsBox(t *testing.T) {
	p := FullPod()
	c := Contiguous{}
	ids, err := c.Place(p, 1, 8) // 2×2×2 box
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestContiguousSuffersFragmentation(t *testing.T) {
	// Checkerboard the pod with 1-cube jobs, then free half: 32 free cubes
	// but no contiguous 2×2×2 region.
	p := FullPod()
	r := Reconfigurable{}
	for i := 0; i < 64; i++ {
		if _, err := r.Place(p, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			for z := 0; z < 4; z++ {
				if (x+y+z)%2 == 0 {
					p.Release(p.index(x, y, z))
				}
			}
		}
	}
	if p.FreeCubes() != 32 {
		t.Fatalf("free = %d", p.FreeCubes())
	}
	c := Contiguous{}
	if _, err := c.Place(p, 999, 8); !errors.Is(err, ErrNotPlaced) {
		t.Fatalf("contiguous placed into checkerboard: %v", err)
	}
	// The reconfigurable fabric places the same job trivially — the core
	// §4.2.4 advantage.
	if _, err := r.Place(p, 999, 8); err != nil {
		t.Fatalf("reconfigurable failed on 32 free cubes: %v", err)
	}
}

func TestContiguousAfterDefragmentation(t *testing.T) {
	// If the free cubes are compact, contiguous placement succeeds.
	p := FullPod()
	c := Contiguous{}
	if _, err := c.Place(p, 1, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(p, 2, 32); err != nil {
		t.Fatalf("second half-pod box: %v", err)
	}
}

func TestFailAndRepair(t *testing.T) {
	p := FullPod()
	r := Reconfigurable{}
	_, _ = r.Place(p, 7, 4)
	job, busy, err := p.Fail(0)
	if err != nil {
		t.Fatal(err)
	}
	if !busy || job != 7 {
		t.Fatalf("fail: job=%d busy=%v", job, busy)
	}
	if err := p.Repair(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Repair(0); err == nil {
		t.Fatal("double repair accepted")
	}
	if _, _, err := p.Fail(99); !errors.Is(err, ErrBadCube) {
		t.Fatalf("err = %v", err)
	}
}

func TestSwapCube(t *testing.T) {
	p := FullPod()
	r := Reconfigurable{}
	_, _ = r.Place(p, 1, 4)
	_, _, _ = p.Fail(0)
	cube, err := p.SwapCube(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.owner[cube] != 1 {
		t.Fatal("swap did not assign ownership")
	}
	// Busy count restored to 4.
	if p.BusyCubes() != 4 {
		t.Fatalf("busy = %d", p.BusyCubes())
	}
}

func TestBoxesForOrderedByCompactness(t *testing.T) {
	boxes := boxesFor(8, [3]int{4, 4, 4})
	if len(boxes) == 0 {
		t.Fatal("no boxes for 8 cubes")
	}
	if boxes[0] != [3]int{2, 2, 2} {
		t.Fatalf("most compact box = %v, want 2×2×2", boxes[0])
	}
	for i := 1; i < len(boxes); i++ {
		if surface(boxes[i]) < surface(boxes[i-1]) {
			t.Fatal("boxes not ordered by compactness")
		}
	}
}

func TestBoxesForRespectsGrid(t *testing.T) {
	for _, b := range boxesFor(16, [3]int{4, 4, 4}) {
		if b[0] > 4 || b[1] > 4 || b[2] > 4 {
			t.Fatalf("box %v exceeds grid", b)
		}
		if b[0]*b[1]*b[2] != 16 {
			t.Fatalf("box %v wrong volume", b)
		}
	}
}

func TestSliceShapesForDelegation(t *testing.T) {
	if len(SliceShapesFor(4)) == 0 {
		t.Fatal("no shapes")
	}
}
