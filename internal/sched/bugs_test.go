package sched

import (
	"testing"

	"lightwave/internal/sim"
)

// checkConsistent verifies the pod's ownership/occupancy invariants: Busy
// cubes have owners, non-busy cubes do not, and every job's cube count
// matches want (when non-nil).
func checkConsistent(t *testing.T, p *Pod, want map[int]int) {
	t.Helper()
	got := map[int]int{}
	for c := range p.state {
		switch p.state[c] {
		case Busy:
			if p.owner[c] < 0 {
				t.Fatalf("busy cube %d has no owner", c)
			}
			got[p.owner[c]]++
		default:
			if p.owner[c] != -1 {
				t.Fatalf("%v cube %d owned by job %d", p.state[c], c, p.owner[c])
			}
		}
	}
	if want == nil {
		return
	}
	for j, n := range want {
		if got[j] != n {
			t.Fatalf("job %d owns %d cubes, want %d (all: %v)", j, got[j], n, got)
		}
	}
	for j := range got {
		if _, ok := want[j]; !ok {
			t.Fatalf("unexpected job %d owns %d cubes", j, got[j])
		}
	}
}

// TestSimulatePreemptionAccounting is the regression test for the stale
// completion event: under heavy failure injection on the static fabric,
// every preempted job used to also count as completed when its never-
// cancelled completion timer fired (double-releasing cubes another job may
// have reused). The invariant Started = Completed + Preempted + Running
// only holds when preemption cancels the completion event.
func TestSimulatePreemptionAccounting(t *testing.T) {
	mix := ProductionMix()
	for _, tc := range []struct {
		name   string
		placer Placer
	}{
		{"contiguous", Contiguous{}},
		{"reconfigurable", Reconfigurable{}},
		{"contiguous+defrag", ContiguousWithDefrag{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// MTBF low enough that preemptions are plentiful.
			cfg := SimConfig{Duration: 100000, Seed: 11, CubeMTBF: 20000, MeanRepair: 4000}
			st, err := Simulate(FullPod(), tc.placer, mix, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, static := tc.placer.(Reconfigurable); !static && st.Preempted == 0 {
				t.Fatal("failure injection preempted nothing; test is vacuous")
			}
			if st.Completed+st.Preempted+st.Running != st.Started {
				t.Fatalf("accounting broken: completed %d + preempted %d + running %d != started %d",
					st.Completed, st.Preempted, st.Running, st.Started)
			}
		})
	}
}

// TestDefragmentUnmovableJobDoesNotCorrupt is the regression test for the
// defrag fallback: on a 1x1x6 pod, job 2 on {0,2} cannot be re-boxed once
// job 1 has been compacted onto {0,1} (cubes 3,4 are failed), and the old
// force-restore of {0,2} left cube 0 owned by both jobs.
func TestDefragmentUnmovableJobDoesNotCorrupt(t *testing.T) {
	p, err := NewPod([3]int{1, 1, 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.allocate([]int{1, 5}, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.allocate([]int{0, 2}, 2); err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{3, 4} {
		if _, _, err := p.Fail(c); err != nil {
			t.Fatal(err)
		}
	}
	res := p.Defragment()
	checkConsistent(t, p, map[int]int{1: 2, 2: 2})
	if res.Unmovable == 0 {
		t.Fatal("no job reported unmovable despite failed cubes blocking compaction")
	}
	// Releasing each job must free exactly its cubes — the old corruption
	// leaked a cube here because two jobs claimed it.
	if freed := p.Release(1); len(freed) != 2 {
		t.Fatalf("job 1 released %v, want 2 cubes", freed)
	}
	if freed := p.Release(2); len(freed) != 2 {
		t.Fatalf("job 2 released %v, want 2 cubes", freed)
	}
	if p.BusyCubes() != 0 {
		t.Fatalf("%d busy cubes left after releasing every job", p.BusyCubes())
	}
}

// TestDefragmentConsistentUnderChurn hammers place/release/fail/defrag
// cycles and checks ownership consistency after every pass.
func TestDefragmentConsistentUnderChurn(t *testing.T) {
	rng := sim.NewRand(7)
	p := FullPod()
	placer := Contiguous{}
	live := map[int]int{}
	next := 0
	for step := 0; step < 400; step++ {
		switch rng.Intn(4) {
		case 0, 1: // place
			n := []int{1, 1, 2, 2, 4, 8}[rng.Intn(6)]
			if _, err := placer.Place(p, next, n); err == nil {
				live[next] = n
				next++
			}
		case 2: // release a random live job
			for j := range live {
				p.Release(j)
				delete(live, j)
				break
			}
		case 3: // fail or repair a cube
			c := rng.Intn(p.Cubes())
			if p.State(c) == Failed {
				if err := p.Repair(c); err != nil {
					t.Fatal(err)
				}
			} else {
				job, wasBusy, err := p.Fail(c)
				if err != nil {
					t.Fatal(err)
				}
				if wasBusy {
					p.Release(job)
					delete(live, job)
				}
			}
		}
		res := p.Defragment()
		checkConsistent(t, p, live)
		for _, mv := range res.Moves {
			if len(mv.Cubes) != live[mv.Job] {
				t.Fatalf("move for job %d reports %d cubes, want %d", mv.Job, len(mv.Cubes), live[mv.Job])
			}
		}
	}
}

// TestFailIdempotent is the regression test for the double-fail bug:
// failing a failed cube must be a no-op — no owner evicted, no state
// change — so the caller never schedules a duplicate repair timer.
func TestFailIdempotent(t *testing.T) {
	p := FullPod()
	if _, err := (Reconfigurable{}).Place(p, 1, 2); err != nil {
		t.Fatal(err)
	}
	job, wasBusy, err := p.Fail(0)
	if err != nil || !wasBusy || job != 1 {
		t.Fatalf("first Fail = (%d, %v, %v), want (1, true, nil)", job, wasBusy, err)
	}
	job, wasBusy, err = p.Fail(0)
	if err != nil || wasBusy || job != 0 {
		t.Fatalf("second Fail = (%d, %v, %v), want (0, false, nil)", job, wasBusy, err)
	}
	if p.State(0) != Failed {
		t.Fatalf("cube 0 state %v after double fail", p.State(0))
	}
	if err := p.Repair(0); err != nil {
		t.Fatal(err)
	}
	// Exactly one repair outstanding: a second Repair (the duplicate timer
	// the old code scheduled) errors.
	if err := p.Repair(0); err == nil {
		t.Fatal("second Repair of a healthy cube succeeded")
	}
	if p.State(0) != Free {
		t.Fatalf("cube 0 state %v after repair", p.State(0))
	}
}

// TestSimulateDeterministicAcrossReruns pins the full Stats struct across
// reruns with failures and preemptions in play.
func TestSimulateDeterministicAcrossReruns(t *testing.T) {
	cfg := SimConfig{Duration: 80000, Seed: 4, CubeMTBF: 40000, MeanRepair: 3000}
	a, err := Simulate(FullPod(), Contiguous{}, ProductionMix(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(FullPod(), Contiguous{}, ProductionMix(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a, b)
	}
}
