package sched

import "sort"

// Defragmentation (§4.2.4: "the scheduler is able to defragment the pods
// more effectively"). A contiguous-placement pod fragments as jobs come
// and go; compaction migrates running jobs into a corner of the pod so a
// blocked large job can fit. Migration is expensive (checkpoint, move,
// restore), so the simulator counts migrated cubes. The reconfigurable
// fabric never needs this: any set of free cubes is as good as any other.

// FragmentationScore measures how scattered the free cubes are for the
// contiguous policy: 1 − (largest free axis-aligned box) / (free cubes).
// Zero means all free capacity is usable by one box-shaped job; values
// near one mean the free space is confetti.
func (p *Pod) FragmentationScore() float64 {
	free := p.FreeCubes()
	if free == 0 {
		return 0
	}
	best := p.largestFreeBox()
	return 1 - float64(best)/float64(free)
}

// largestFreeBox returns the volume of the largest all-free axis-aligned
// box.
func (p *Pod) largestFreeBox() int {
	best := 0
	for x := 0; x < p.Grid[0]; x++ {
		for y := 0; y < p.Grid[1]; y++ {
			for z := 0; z < p.Grid[2]; z++ {
				for dx := 1; x+dx <= p.Grid[0]; dx++ {
					for dy := 1; y+dy <= p.Grid[1]; dy++ {
						for dz := 1; z+dz <= p.Grid[2]; dz++ {
							vol := dx * dy * dz
							if vol <= best {
								continue
							}
							if p.boxCubes(x, y, z, [3]int{dx, dy, dz}) != nil {
								best = vol
							}
						}
					}
				}
			}
		}
	}
	return best
}

// JobMove records one job's relocation in a compaction pass.
type JobMove struct {
	Job int
	// Cubes is the job's new cube set, ascending.
	Cubes []int
}

// DefragResult reports a compaction pass.
type DefragResult struct {
	// MigratedCubes is the number of cube-slots whose job moved.
	MigratedCubes int
	// Jobs is the number of jobs relocated.
	Jobs int
	// Unmovable counts jobs left on their original cubes because no free
	// box could hold them (failed cubes in the way).
	Unmovable int
	// Moves lists each relocated job's new cube set, ascending by job id —
	// online schedulers replay these as slice intent updates.
	Moves []JobMove
}

// Defragment repacks every running job into boxes allocated greedily from
// the origin, largest job first — the classic compaction that a static
// fabric needs and a reconfigurable one does not. It returns the migration
// cost. Failed cubes stay where they are.
//
// The pass is planned on a scratch copy so the pod is only ever committed
// to a consistent single-owner assignment: a job that cannot be re-boxed is
// pinned to its original cubes and planning restarts around the pin, rather
// than force-restoring cubes an earlier-placed job may already hold.
func (p *Pod) Defragment() DefragResult {
	// Snapshot jobs and their sizes.
	sizes := map[int]int{}
	before := map[int]map[int]bool{}
	for c := range p.state {
		if p.state[c] == Busy {
			j := p.owner[c]
			sizes[j]++
			if before[j] == nil {
				before[j] = map[int]bool{}
			}
			before[j][c] = true
		}
	}
	jobs := make([]int, 0, len(sizes))
	for j := range sizes {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if sizes[jobs[i]] != sizes[jobs[k]] {
			return sizes[jobs[i]] > sizes[jobs[k]]
		}
		return jobs[i] < jobs[k]
	})

	// Plan on a scratch pod. Each failed attempt pins at least one more
	// job, so the loop runs at most len(jobs)+1 times; in the worst case
	// every job is pinned and the plan is the original assignment.
	pinned := map[int]bool{}
	var scratch *Pod
	placer := Contiguous{}
plan:
	for {
		scratch = p.clone()
		for c := range scratch.state {
			if scratch.state[c] == Busy && !pinned[scratch.owner[c]] {
				scratch.state[c] = Free
				scratch.owner[c] = -1
			}
		}
		for _, j := range jobs {
			if pinned[j] {
				continue
			}
			if _, err := placer.Place(scratch, j, sizes[j]); err != nil {
				pinned[j] = true
				continue plan
			}
		}
		break
	}
	copy(p.state, scratch.state)
	copy(p.owner, scratch.owner)

	after := map[int][]int{}
	for c := range p.state {
		if p.state[c] == Busy {
			after[p.owner[c]] = append(after[p.owner[c]], c)
		}
	}
	res := DefragResult{Unmovable: len(pinned)}
	for _, j := range jobs {
		if pinned[j] {
			continue
		}
		moved := 0
		for _, c := range after[j] {
			if !before[j][c] {
				moved++
			}
		}
		if moved > 0 {
			res.Jobs++
			res.MigratedCubes += moved
			res.Moves = append(res.Moves, JobMove{Job: j, Cubes: after[j]})
		}
	}
	sort.Slice(res.Moves, func(i, k int) bool { return res.Moves[i].Job < res.Moves[k].Job })
	return res
}

// ContiguousWithDefrag is the contiguous policy plus compaction: when a
// job does not fit, the pod is defragmented once and placement retried.
// Migration cost is accumulated in Migrations.
type ContiguousWithDefrag struct {
	Migrations *int
}

// Name implements Placer.
func (ContiguousWithDefrag) Name() string { return "contiguous+defrag" }

// Place implements Placer.
func (d ContiguousWithDefrag) Place(p *Pod, job, cubes int) ([]int, error) {
	c := Contiguous{}
	ids, err := c.Place(p, job, cubes)
	if err == nil {
		return ids, nil
	}
	if cubes > p.FreeCubes() {
		return nil, err // no amount of compaction helps
	}
	res := p.Defragment()
	if d.Migrations != nil {
		*d.Migrations += res.MigratedCubes
	}
	return c.Place(p, job, cubes)
}
