package sched

import "sort"

// Defragmentation (§4.2.4: "the scheduler is able to defragment the pods
// more effectively"). A contiguous-placement pod fragments as jobs come
// and go; compaction migrates running jobs into a corner of the pod so a
// blocked large job can fit. Migration is expensive (checkpoint, move,
// restore), so the simulator counts migrated cubes. The reconfigurable
// fabric never needs this: any set of free cubes is as good as any other.

// FragmentationScore measures how scattered the free cubes are for the
// contiguous policy: 1 − (largest free axis-aligned box) / (free cubes).
// Zero means all free capacity is usable by one box-shaped job; values
// near one mean the free space is confetti.
func (p *Pod) FragmentationScore() float64 {
	free := p.FreeCubes()
	if free == 0 {
		return 0
	}
	best := p.largestFreeBox()
	return 1 - float64(best)/float64(free)
}

// largestFreeBox returns the volume of the largest all-free axis-aligned
// box.
func (p *Pod) largestFreeBox() int {
	best := 0
	for x := 0; x < p.Grid[0]; x++ {
		for y := 0; y < p.Grid[1]; y++ {
			for z := 0; z < p.Grid[2]; z++ {
				for dx := 1; x+dx <= p.Grid[0]; dx++ {
					for dy := 1; y+dy <= p.Grid[1]; dy++ {
						for dz := 1; z+dz <= p.Grid[2]; dz++ {
							vol := dx * dy * dz
							if vol <= best {
								continue
							}
							if p.boxCubes(x, y, z, [3]int{dx, dy, dz}) != nil {
								best = vol
							}
						}
					}
				}
			}
		}
	}
	return best
}

// DefragResult reports a compaction pass.
type DefragResult struct {
	// MigratedCubes is the number of cube-slots whose job moved.
	MigratedCubes int
	// Jobs is the number of jobs relocated.
	Jobs int
}

// Defragment repacks every running job into boxes allocated greedily from
// the origin, largest job first — the classic compaction that a static
// fabric needs and a reconfigurable one does not. It returns the migration
// cost. Failed cubes stay where they are.
func (p *Pod) Defragment() DefragResult {
	// Snapshot jobs and their sizes.
	sizes := map[int]int{}
	for c := range p.state {
		if p.state[c] == Busy {
			sizes[p.owner[c]]++
		}
	}
	jobs := make([]int, 0, len(sizes))
	for j := range sizes {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if sizes[jobs[i]] != sizes[jobs[k]] {
			return sizes[jobs[i]] > sizes[jobs[k]]
		}
		return jobs[i] < jobs[k]
	})

	before := map[int]map[int]bool{}
	for c := range p.state {
		if p.state[c] == Busy {
			j := p.owner[c]
			if before[j] == nil {
				before[j] = map[int]bool{}
			}
			before[j][c] = true
		}
	}

	// Clear all busy cubes and replace jobs with the contiguous policy.
	for c := range p.state {
		if p.state[c] == Busy {
			p.state[c] = Free
			p.owner[c] = -1
		}
	}
	var res DefragResult
	placer := Contiguous{}
	for _, j := range jobs {
		ids, err := placer.Place(p, j, sizes[j])
		if err != nil {
			// Cannot box this job (failed cubes in the way); fall back to
			// its original cubes.
			for c := range before[j] {
				p.state[c] = Busy
				p.owner[c] = j
			}
			continue
		}
		moved := 0
		for _, c := range ids {
			if !before[j][c] {
				moved++
			}
		}
		if moved > 0 {
			res.Jobs++
			res.MigratedCubes += moved
		}
	}
	return res
}

// ContiguousWithDefrag is the contiguous policy plus compaction: when a
// job does not fit, the pod is defragmented once and placement retried.
// Migration cost is accumulated in Migrations.
type ContiguousWithDefrag struct {
	Migrations *int
}

// Name implements Placer.
func (ContiguousWithDefrag) Name() string { return "contiguous+defrag" }

// Place implements Placer.
func (d ContiguousWithDefrag) Place(p *Pod, job, cubes int) ([]int, error) {
	c := Contiguous{}
	ids, err := c.Place(p, job, cubes)
	if err == nil {
		return ids, nil
	}
	if cubes > p.FreeCubes() {
		return nil, err // no amount of compaction helps
	}
	res := p.Defragment()
	if d.Migrations != nil {
		*d.Migrations += res.MigratedCubes
	}
	return c.Place(p, job, cubes)
}
