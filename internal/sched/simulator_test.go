package sched

import "testing"

// TestUtilizationAdvantage reproduces §4.2.4: the reconfigurable fabric
// sustains >98% pod utilization under a saturating mixed-size job stream,
// clearly above the contiguous-placement baseline.
func TestUtilizationAdvantage(t *testing.T) {
	reconf, contig, err := CompareUtilization(ProductionMix(), ReferenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if reconf.Utilization < 0.98 {
		t.Errorf("reconfigurable utilization = %.3f, want > 0.98", reconf.Utilization)
	}
	if contig.Utilization >= reconf.Utilization-0.02 {
		t.Errorf("contiguous %.3f not clearly below reconfigurable %.3f",
			contig.Utilization, reconf.Utilization)
	}
	if reconf.Completed <= contig.Completed {
		t.Errorf("reconfigurable completed %d <= contiguous %d", reconf.Completed, contig.Completed)
	}
}

func TestSimulateValidation(t *testing.T) {
	mix := ProductionMix()
	if _, err := Simulate(FullPod(), Reconfigurable{}, mix, SimConfig{Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
	bad := mix
	bad.Sizes = nil
	if _, err := Simulate(FullPod(), Reconfigurable{}, bad, SimConfig{Duration: 10}); err == nil {
		t.Fatal("empty mix accepted")
	}
	bad2 := mix
	bad2.ArrivalRate = 0
	if _, err := Simulate(FullPod(), Reconfigurable{}, bad2, SimConfig{Duration: 10}); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := SimConfig{Duration: 50000, Seed: 3}
	a, err := Simulate(FullPod(), Reconfigurable{}, ProductionMix(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(FullPod(), Reconfigurable{}, ProductionMix(), cfg)
	if a.Completed != b.Completed || a.Utilization != b.Utilization {
		t.Fatal("same seed, different stats")
	}
}

func TestLightLoadLowWait(t *testing.T) {
	mix := ProductionMix()
	mix.ArrivalRate = 0.001 // far below capacity
	st, err := Simulate(FullPod(), Reconfigurable{}, mix, SimConfig{Duration: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanWait > mix.MeanDuration/10 {
		t.Fatalf("light-load wait %.0f too high", st.MeanWait)
	}
	if st.Utilization > 0.5 {
		t.Fatalf("light-load utilization %.2f too high", st.Utilization)
	}
}

func TestFailureSwapKeepsJobsAlive(t *testing.T) {
	mix := ProductionMix()
	cfg := SimConfig{Duration: 100000, Seed: 2, CubeMTBF: 50000, MeanRepair: 5000}
	reconf, err := Simulate(FullPod(), Reconfigurable{}, mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	contig, err := Simulate(FullPod(), Contiguous{}, mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The reconfigurable fabric swaps spare cubes in; the static fabric
	// loses the slice (§4.2.2: it "can swap out a bad elemental cube
	// whereas a static configuration cannot").
	if reconf.Swaps == 0 {
		t.Error("no cube swaps recorded under failure injection")
	}
	if contig.Swaps != 0 {
		t.Error("contiguous policy should never swap")
	}
	if contig.Preempted == 0 {
		t.Error("contiguous policy lost no jobs despite failures")
	}
	if reconf.Preempted > contig.Preempted {
		t.Errorf("reconfigurable preempted %d > contiguous %d", reconf.Preempted, contig.Preempted)
	}
}

func TestUtilizationBounded(t *testing.T) {
	st, err := Simulate(FullPod(), Reconfigurable{}, ProductionMix(), SimConfig{Duration: 20000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st.Utilization < 0 || st.Utilization > 1 {
		t.Fatalf("utilization = %v", st.Utilization)
	}
}
