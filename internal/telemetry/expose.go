package telemetry

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// Text exposition of a registry, one metric per line, in the flat
// name/value format the fleet monitoring systems scrape.

// WriteText writes every metric in sorted-name order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	metrics := make(map[string]any, len(names))
	for _, n := range names {
		metrics[n] = r.metrics[n]
	}
	r.mu.Unlock()

	for _, n := range names {
		switch m := metrics[n].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s %d\n", n, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s %g\n", n, m.Value()); err != nil {
				return err
			}
		case *Distribution:
			s := m.Snapshot()
			if _, err := fmt.Fprintf(w, "%s_count %d\n", n, s.N); err != nil {
				return err
			}
			if s.N > 0 {
				if _, err := fmt.Fprintf(w, "%s_mean %g\n%s_min %g\n%s_max %g\n",
					n, s.Mean, n, s.Min, n, s.Max); err != nil {
					return err
				}
			}
			for i, c := range s.Counts {
				label := "+Inf"
				if i < len(s.Bounds) {
					label = fmt.Sprintf("%g", s.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, label, c); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Text returns the exposition as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

// Handler returns an http.Handler serving the text exposition, so daemons
// can mount the registry on a scrapeable /metrics endpoint instead of only
// answering the ctlrpc metrics call.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// ServeMetrics binds addr and serves the registry on /metrics until ctx is
// cancelled. It returns the bound listener so callers learn the resolved
// port; the server shuts down in the background on cancellation.
//
// The same listener doubles as the debug mux: the standard net/http/pprof
// handlers are mounted under /debug/pprof/, so CPU and heap profiles of
// the simulation hot paths (dcn flow simulator, par fan-outs) are only
// exposed when the operator opted into the metrics port in the first
// place.
func (r *Registry) ServeMetrics(ctx context.Context, addr string) (net.Listener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		_ = srv.Close()
	}()
	go func() { _ = srv.Serve(lis) }()
	return lis, nil
}
