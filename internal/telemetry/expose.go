package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Text exposition of a registry, one metric per line, in the flat
// name/value format the fleet monitoring systems scrape.

// WriteText writes every metric in sorted-name order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	metrics := make(map[string]any, len(names))
	for _, n := range names {
		metrics[n] = r.metrics[n]
	}
	r.mu.Unlock()

	for _, n := range names {
		switch m := metrics[n].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s %d\n", n, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s %g\n", n, m.Value()); err != nil {
				return err
			}
		case *Distribution:
			s := m.Snapshot()
			if _, err := fmt.Fprintf(w, "%s_count %d\n", n, s.N); err != nil {
				return err
			}
			if s.N > 0 {
				if _, err := fmt.Fprintf(w, "%s_mean %g\n%s_min %g\n%s_max %g\n",
					n, s.Mean, n, s.Min, n, s.Max); err != nil {
					return err
				}
			}
			for i, c := range s.Counts {
				label := "+Inf"
				if i < len(s.Bounds) {
					label = fmt.Sprintf("%g", s.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, label, c); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Text returns the exposition as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}
