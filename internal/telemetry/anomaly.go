package telemetry

import (
	"fmt"
	"math"
	"sync"
)

// Severity classifies an alert.
type Severity int

// Alert severities, in increasing order of urgency.
const (
	Info Severity = iota
	Warning
	Critical
)

// String returns the conventional lowercase name of the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Alert is an anomaly report emitted by a Detector.
type Alert struct {
	Source   string
	Severity Severity
	Message  string
	Value    float64
}

// AlertSink receives alerts. Implementations must be safe for concurrent
// use; the fabric control plane registers one to react to link degradation.
type AlertSink interface {
	Post(Alert)
}

// SinkFunc adapts a function to the AlertSink interface.
type SinkFunc func(Alert)

// Post implements AlertSink.
func (f SinkFunc) Post(a Alert) { f(a) }

// MemorySink is an AlertSink that retains alerts in memory, for tests and
// in-process consumers.
type MemorySink struct {
	mu     sync.Mutex
	alerts []Alert
}

// Post implements AlertSink.
func (m *MemorySink) Post(a Alert) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alerts = append(m.alerts, a)
}

// Alerts returns a copy of all alerts posted so far.
func (m *MemorySink) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Detector flags anomalous observations in a telemetry stream using an
// exponentially weighted moving average and variance: a sample more than
// Threshold standard deviations above the EWMA (after a warmup period)
// raises a Warning, and a sample above the HardLimit raises a Critical alert
// regardless of history. This mirrors the production pattern of combining
// adaptive baselines with absolute specifications (e.g. the −38 dB return
// loss spec and the 2e-4 KP4 BER threshold).
type Detector struct {
	Source    string
	Alpha     float64 // EWMA weight for new samples, in (0, 1]
	Threshold float64 // stddev multiplier for Warning
	HardLimit float64 // absolute Critical limit
	Warmup    int     // samples before adaptive alerts fire

	sink AlertSink

	mu   sync.Mutex
	n    int
	mean float64
	vari float64
}

// NewDetector returns a detector posting to sink. A nil sink discards
// alerts.
func NewDetector(source string, sink AlertSink) *Detector {
	if sink == nil {
		sink = SinkFunc(func(Alert) {})
	}
	return &Detector{
		Source:    source,
		Alpha:     0.1,
		Threshold: 4,
		HardLimit: math.Inf(1),
		Warmup:    16,
		sink:      sink,
	}
}

// Observe feeds one sample and reports whether it was flagged anomalous.
func (d *Detector) Observe(v float64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()

	anomalous := false
	if v > d.HardLimit {
		d.sink.Post(Alert{
			Source:   d.Source,
			Severity: Critical,
			Message:  fmt.Sprintf("value %.4g exceeds hard limit %.4g", v, d.HardLimit),
			Value:    v,
		})
		anomalous = true
	} else if d.n >= d.Warmup {
		sd := math.Sqrt(d.vari)
		if sd > 0 && v > d.mean+d.Threshold*sd {
			d.sink.Post(Alert{
				Source:   d.Source,
				Severity: Warning,
				Message:  fmt.Sprintf("value %.4g is %.1f sigma above baseline %.4g", v, (v-d.mean)/sd, d.mean),
				Value:    v,
			})
			anomalous = true
		}
	}

	// Update the baseline with non-anomalous samples only, so a fault does
	// not teach the detector that faults are normal.
	if !anomalous {
		if d.n == 0 {
			d.mean = v
		}
		delta := v - d.mean
		d.mean += d.Alpha * delta
		d.vari = (1 - d.Alpha) * (d.vari + d.Alpha*delta*delta)
		d.n++
	}
	return anomalous
}

// Baseline returns the current EWMA mean and standard deviation.
func (d *Detector) Baseline() (mean, stddev float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mean, math.Sqrt(d.vari)
}
