package telemetry

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatal("zero gauge not 0")
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("Value = %v", g.Value())
	}
}

func TestDistributionBuckets(t *testing.T) {
	d := NewDistribution(1, 2, 3)
	for _, v := range []float64{0.5, 1.5, 2.5, 10} {
		d.Observe(v)
	}
	s := d.Snapshot()
	want := []int64{1, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", s.Counts, want)
		}
	}
	if s.N != 4 || s.Min != 0.5 || s.Max != 10 {
		t.Errorf("snapshot = %+v", s)
	}
	if math.Abs(s.Mean-14.5/4) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
}

func TestDistributionBoundaryGoesToLowerBucket(t *testing.T) {
	// A sample exactly on a bound belongs to the bucket whose upper bound it
	// is (SearchFloat64s returns the index of the first bound >= v).
	d := NewDistribution(1, 2)
	d.Observe(1)
	s := d.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("Counts = %v", s.Counts)
	}
}

func TestDistributionUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewDistribution(2, 1)
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name returned different counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters not shared")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Distribution("c", 1, 2)
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names = %v", names)
	}
}

func TestDetectorHardLimit(t *testing.T) {
	var sink MemorySink
	d := NewDetector("ber", &sink)
	d.HardLimit = 2e-4
	if !d.Observe(3e-4) {
		t.Fatal("hard-limit breach not flagged")
	}
	alerts := sink.Alerts()
	if len(alerts) != 1 || alerts[0].Severity != Critical {
		t.Fatalf("alerts = %v", alerts)
	}
	if alerts[0].Source != "ber" {
		t.Errorf("source = %q", alerts[0].Source)
	}
}

func TestDetectorAdaptive(t *testing.T) {
	var sink MemorySink
	d := NewDetector("loss", &sink)
	d.Threshold = 4
	// Establish a baseline around 1.5 with small spread.
	vals := []float64{1.4, 1.5, 1.6, 1.5, 1.45, 1.55, 1.5, 1.48, 1.52, 1.5,
		1.47, 1.53, 1.5, 1.49, 1.51, 1.5, 1.5, 1.5, 1.5, 1.5}
	for _, v := range vals {
		if d.Observe(v) {
			t.Fatalf("baseline sample %v flagged", v)
		}
	}
	if !d.Observe(3.0) {
		t.Fatal("6-sigma excursion not flagged")
	}
	if len(sink.Alerts()) != 1 {
		t.Fatalf("alerts = %v", sink.Alerts())
	}
	if sink.Alerts()[0].Severity != Warning {
		t.Errorf("severity = %v", sink.Alerts()[0].Severity)
	}
}

func TestDetectorWarmupSuppresses(t *testing.T) {
	var sink MemorySink
	d := NewDetector("x", &sink)
	// Before warmup no adaptive alerts fire even for wild swings.
	for _, v := range []float64{1, 100, 1, 100, 1} {
		if d.Observe(v) {
			t.Fatal("alert during warmup")
		}
	}
}

func TestDetectorAnomalyDoesNotPolluteBaseline(t *testing.T) {
	var sink MemorySink
	d := NewDetector("x", &sink)
	d.Warmup = 4
	for i := 0; i < 20; i++ {
		d.Observe(1.0 + 0.01*float64(i%3))
	}
	mBefore, _ := d.Baseline()
	d.Observe(50) // anomalous
	mAfter, _ := d.Baseline()
	if mBefore != mAfter {
		t.Fatalf("anomaly shifted baseline %v -> %v", mBefore, mAfter)
	}
}

func TestDetectorNilSink(t *testing.T) {
	d := NewDetector("x", nil)
	d.HardLimit = 1
	if !d.Observe(2) {
		t.Fatal("nil-sink detector should still flag")
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Critical.String() != "critical" {
		t.Fatal("severity names wrong")
	}
	if Severity(9).String() != "severity(9)" {
		t.Fatalf("unknown severity = %q", Severity(9).String())
	}
}

func TestSinkFunc(t *testing.T) {
	var got []Alert
	s := SinkFunc(func(a Alert) { got = append(got, a) })
	s.Post(Alert{Message: "hi"})
	if len(got) != 1 || got[0].Message != "hi" {
		t.Fatalf("got = %v", got)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("reconfigs").Add(5)
	r.Gauge("margin").Set(2.5)
	d := r.Distribution("loss", 1, 2)
	d.Observe(0.5)
	d.Observe(1.5)
	text := r.Text()
	for _, want := range []string{
		"reconfigs 5\n",
		"margin 2.5\n",
		"loss_count 2\n",
		`loss_bucket{le="1"} 1`,
		`loss_bucket{le="+Inf"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestWriteTextEmptyRegistry(t *testing.T) {
	if got := NewRegistry().Text(); got != "" {
		t.Fatalf("empty registry exposition = %q", got)
	}
}

func TestWriteTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz")
	r.Counter("aa")
	text := r.Text()
	if strings.Index(text, "aa") > strings.Index(text, "zz") {
		t.Fatal("exposition not sorted")
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reconfigs").Add(7)
	r.Gauge("queue_depth").Set(3)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "reconfigs 7\n") || !strings.Contains(body, "queue_depth 3\n") {
		t.Fatalf("body:\n%s", body)
	}
}

// TestServeMetricsMountsPprof verifies the debug listener serves both the
// exposition and the pprof handlers: the profiling endpoints must only
// exist behind the opt-in metrics port, and must actually be there when it
// is enabled (the profile-dcn workflow depends on them for live daemons).
func TestServeMetricsMountsPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("reconfigs").Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lis, err := r.ServeMetrics(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + lis.Addr().String()
	for _, path := range []string{"/metrics", "/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d, body %q", path, resp.StatusCode, body)
		}
	}
}
