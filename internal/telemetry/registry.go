// Package telemetry provides the metrics and anomaly-reporting substrate the
// paper describes as essential for operating lightwave fabrics at scale
// (§3.2.2: "We invested heavily in improving telemetry and anomaly reporting
// ... the ability to deeply integrate the control and monitoring software
// with the rest of our network infrastructure was essential given that the
// switches had a large blast radius").
//
// It offers a concurrency-safe metric registry (counters, gauges,
// histograms), an EWMA-based anomaly detector used for BER and insertion-loss
// monitoring, and an alert sink abstraction that the fabric control plane
// subscribes to.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d; d must be non-negative.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("telemetry: negative Counter.Add")
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add atomically adds d to the gauge (d may be negative), so concurrent
// in-flight style accounting needs no external lock.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFromBits(old)+d)) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// Distribution is a concurrency-safe streaming distribution with fixed
// exponential-ish buckets plus summary moments, suitable for BER and loss
// telemetry.
type Distribution struct {
	mu      sync.Mutex
	n       int64
	sum     float64
	sumSq   float64
	min     float64
	max     float64
	buckets []float64 // upper bounds
	counts  []int64
}

// NewDistribution returns a distribution with the given bucket upper bounds
// (must be sorted ascending); a final +Inf bucket is implicit.
func NewDistribution(bounds ...float64) *Distribution {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: distribution bounds not ascending")
		}
	}
	return &Distribution{buckets: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (d *Distribution) Observe(v float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		d.min, d.max = v, v
	} else {
		if v < d.min {
			d.min = v
		}
		if v > d.max {
			d.max = v
		}
	}
	d.n++
	d.sum += v
	d.sumSq += v * v
	i := sort.SearchFloat64s(d.buckets, v)
	d.counts[i]++
}

// Snapshot returns a consistent copy of the distribution state.
func (d *Distribution) Snapshot() DistSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DistSnapshot{
		N: d.n, Sum: d.sum, Min: d.min, Max: d.max,
		Bounds: append([]float64(nil), d.buckets...),
		Counts: append([]int64(nil), d.counts...),
	}
	if d.n > 0 {
		s.Mean = d.sum / float64(d.n)
	}
	return s
}

// DistSnapshot is a point-in-time copy of a Distribution.
type DistSnapshot struct {
	N         int64
	Sum, Mean float64
	Min, Max  float64
	Bounds    []float64
	Counts    []int64 // len(Bounds)+1; last bucket is overflow
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank, clamped to the observed
// [Min, Max] range. It returns 0 when the snapshot is empty.
func (s DistSnapshot) Quantile(q float64) float64 {
	if s.N == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.N)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := s.Min
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < hi {
				hi = s.Bounds[i]
			}
			if lo > hi {
				lo = hi
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Max
}

// Registry is a named collection of metrics. The zero value is unusable; use
// NewRegistry. Metric creation is idempotent per name and type; requesting an
// existing name with a different type panics, surfacing wiring bugs early.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	return registryGet(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	return registryGet(r, name, func() *Gauge { return &Gauge{} })
}

// Distribution returns the distribution registered under name, creating it
// with the supplied bounds if needed. Bounds are ignored when the metric
// already exists.
func (r *Registry) Distribution(name string, bounds ...float64) *Distribution {
	return registryGet(r, name, func() *Distribution { return NewDistribution(bounds...) })
}

// Names returns the sorted names of all registered metrics.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func registryGet[T any](r *Registry, name string, mk func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(T)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q registered with a different type", name))
		}
		return t
	}
	t := mk()
	r.metrics[name] = t
	return t
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
