package telemetry

import (
	"math"
	"testing"
)

// Burst-then-silence: a fault burst must be flagged without being absorbed
// into the baseline, so that post-burst normal traffic is not flagged and a
// repeat burst still is. This is the property the te predictor's burst
// guard relies on when chaos injects BER/flap storms.
func TestDetectorBurstThenSilence(t *testing.T) {
	sink := &MemorySink{}
	d := NewDetector("trunk0/ber", sink)

	// Warm up on a noisy-but-healthy baseline (1e-9 ± small wiggle).
	for i := 0; i < 64; i++ {
		v := 1e-9 * (1 + 0.01*float64(i%5))
		if d.Observe(v) {
			t.Fatalf("warmup sample %d flagged", i)
		}
	}
	mean0, sd0 := d.Baseline()

	// Burst: three decades above baseline.
	for i := 0; i < 10; i++ {
		if !d.Observe(1e-6) {
			t.Fatalf("burst sample %d not flagged", i)
		}
	}
	mean1, sd1 := d.Baseline()
	if mean1 != mean0 || sd1 != sd0 {
		t.Fatalf("burst moved the baseline: %g/%g -> %g/%g", mean0, sd0, mean1, sd1)
	}

	// Silence: traffic back to normal must not be flagged.
	for i := 0; i < 32; i++ {
		if d.Observe(1e-9 * (1 + 0.01*float64(i%5))) {
			t.Fatalf("post-burst sample %d flagged", i)
		}
	}

	// A second burst is still caught — the detector did not learn that
	// faults are normal.
	if !d.Observe(1e-6) {
		t.Fatal("repeat burst not flagged")
	}
	for _, a := range sink.Alerts() {
		if a.Severity != Warning {
			t.Fatalf("unexpected severity %v for adaptive alert", a.Severity)
		}
	}
}

// Before warmup completes, only the hard limit fires: a cold detector must
// not raise adaptive alerts off a near-empty baseline.
func TestDetectorBurstDuringWarmup(t *testing.T) {
	sink := &MemorySink{}
	d := NewDetector("trunk1/ber", sink)
	d.HardLimit = 2e-4 // the KP4 FEC threshold

	for i := 0; i < d.Warmup-1; i++ {
		if d.Observe(1e-9) {
			t.Fatalf("warmup sample %d flagged", i)
		}
	}
	if d.Observe(1e-6) {
		t.Fatal("pre-warmup burst below the hard limit was flagged")
	}
	if !d.Observe(3e-4) {
		t.Fatal("hard-limit violation not flagged during warmup")
	}
	alerts := sink.Alerts()
	if len(alerts) != 1 || alerts[0].Severity != Critical {
		t.Fatalf("want exactly one critical alert, got %+v", alerts)
	}
}

// A perfectly flat baseline has zero variance, so the sigma rule cannot
// fire; the hard limit is the only defense and must still work.
func TestDetectorZeroVarianceStream(t *testing.T) {
	sink := &MemorySink{}
	d := NewDetector("trunk2/ber", sink)
	d.HardLimit = 2e-4

	for i := 0; i < 64; i++ {
		if d.Observe(1e-9) {
			t.Fatalf("flat sample %d flagged", i)
		}
	}
	if _, sd := d.Baseline(); sd != 0 {
		t.Fatalf("flat stream should have zero stddev, got %g", sd)
	}
	// Above baseline but below the hard limit: undetectable by sigma on a
	// zero-variance stream, by design (no division by zero, no panic).
	if d.Observe(1e-7) {
		t.Fatal("sub-limit sample flagged on zero-variance stream")
	}
	if !d.Observe(1e-3) {
		t.Fatal("hard-limit violation not flagged")
	}
}

// Alternating burst/silence cycles: each burst is flagged, each silent
// phase is clean, and the baseline stays near the healthy level
// throughout.
func TestDetectorRepeatedBurstSilenceCycles(t *testing.T) {
	d := NewDetector("trunk3/ber", nil)
	for i := 0; i < 64; i++ {
		d.Observe(1e-9 * (1 + 0.02*float64(i%7)))
	}
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 8; i++ {
			if !d.Observe(5e-7) {
				t.Fatalf("cycle %d burst sample %d not flagged", cycle, i)
			}
		}
		for i := 0; i < 16; i++ {
			if d.Observe(1e-9 * (1 + 0.02*float64(i%7))) {
				t.Fatalf("cycle %d silence sample %d flagged", cycle, i)
			}
		}
	}
	mean, _ := d.Baseline()
	if mean > 2e-9 || mean < 0.5e-9 || math.IsNaN(mean) {
		t.Fatalf("baseline drifted to %g after burst/silence cycles", mean)
	}
}
