package cost

import (
	"math"
	"testing"
)

func techByName(t *testing.T, name string) OCSTechnology {
	t.Helper()
	for _, x := range Technologies() {
		if x.Name == name {
			return x
		}
	}
	t.Fatalf("no technology %q", name)
	return OCSTechnology{}
}

func TestMEMSReconfigIsBatchParallel(t *testing.T) {
	mems := techByName(t, "MEMS")
	one := mems.ReconfigTime(1)
	many := mems.ReconfigTime(64)
	if many != one {
		t.Fatalf("MEMS batch %v != single %v: mirrors move in parallel", many, one)
	}
}

func TestRoboticReconfigSerializes(t *testing.T) {
	rob := techByName(t, "Robotic")
	if rob.ReconfigTime(64) != 64*rob.SwitchingTime {
		t.Fatal("robotic switching should serialize")
	}
}

func TestPodReconfigComparison(t *testing.T) {
	cmp := ReconfigComparison()
	// MEMS: a full-pod reslice completes in milliseconds; the robotic
	// panel needs 64 serialized moves per switch at a minute each ≈ an
	// hour — operationally unusable for slice scheduling.
	if cmp["MEMS"] > 0.1 {
		t.Fatalf("MEMS pod reconfig = %v s", cmp["MEMS"])
	}
	if cmp["Robotic"] < 1800 {
		t.Fatalf("robotic pod reconfig = %v s, implausibly fast", cmp["Robotic"])
	}
	if cmp["MEMS"] >= cmp["Robotic"] {
		t.Fatal("MEMS should reconfigure faster than robotic")
	}
}

func TestReconfigEdgeCases(t *testing.T) {
	mems := techByName(t, "MEMS")
	if mems.ReconfigTime(0) != 0 {
		t.Fatal("zero circuits should be free")
	}
	if !math.IsInf(mems.PodReconfigTime(10, 0), 1) {
		t.Fatal("zero switches should be infinite")
	}
}
