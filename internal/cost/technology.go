package cost

// Table C.1: cost, scale, performance, and reliability/availability
// comparison of OCS technologies.

// CostClass is a coarse relative-cost bucket.
type CostClass int

// Cost classes.
const (
	CostUnknown CostClass = iota
	CostLow
	CostMedium
	CostHigh
)

// String returns the table's label.
func (c CostClass) String() string {
	switch c {
	case CostLow:
		return "Low"
	case CostMedium:
		return "Medium"
	case CostHigh:
		return "High"
	default:
		return "TBD"
	}
}

// OCSTechnology is one row of Table C.1.
type OCSTechnology struct {
	Name            string
	RelativeCost    CostClass
	MaxPortCount    int
	SwitchingTime   float64 // seconds, representative
	InsertionLossDB float64 // upper bound, including connectors
	DrivingVoltageV float64 // 0 = not applicable
	Latching        bool    // keeps state across power failure
	// PerConnectionSwitching marks technologies that must serialize
	// reconfiguration (the robotic patch panel).
	PerConnectionSwitching bool
}

// Technologies returns Table C.1.
func Technologies() []OCSTechnology {
	return []OCSTechnology{
		{Name: "MEMS", RelativeCost: CostMedium, MaxPortCount: 320,
			SwitchingTime: 5e-3, InsertionLossDB: 3, DrivingVoltageV: 100, Latching: false},
		{Name: "Robotic", RelativeCost: CostMedium, MaxPortCount: 1008,
			SwitchingTime: 60, InsertionLossDB: 1, DrivingVoltageV: 0, Latching: true,
			PerConnectionSwitching: true},
		{Name: "Piezo", RelativeCost: CostHigh, MaxPortCount: 576,
			SwitchingTime: 5e-3, InsertionLossDB: 2.5, DrivingVoltageV: 10, Latching: false},
		{Name: "Guided Wave", RelativeCost: CostLow, MaxPortCount: 16,
			SwitchingTime: 10e-9, InsertionLossDB: 6, DrivingVoltageV: 1, Latching: false},
		{Name: "Wavelength", RelativeCost: CostUnknown, MaxPortCount: 100,
			SwitchingTime: 10e-9, InsertionLossDB: 6, DrivingVoltageV: 0, Latching: true},
	}
}

// Requirement captures the §2.3 requirements relevant to technology
// selection.
type Requirement struct {
	MinPorts         int
	MaxInsertionDB   float64
	MaxSwitchingTime float64
}

// SuperpodRequirement returns the ML use case's needs: ≥128 duplex ports,
// <3 dB loss, and reconfiguration well under the slice-scheduling
// timescale.
func SuperpodRequirement() Requirement {
	return Requirement{MinPorts: 128, MaxInsertionDB: 3, MaxSwitchingTime: 1}
}

// Meets reports whether a technology satisfies a requirement.
func (t OCSTechnology) Meets(r Requirement) bool {
	return t.MaxPortCount >= r.MinPorts &&
		t.InsertionLossDB <= r.MaxInsertionDB &&
		t.SwitchingTime <= r.MaxSwitchingTime &&
		!t.PerConnectionSwitching
}

// SelectTechnology returns the technologies meeting a requirement,
// best-cost first (Low < Medium < High < TBD in preference order, ties by
// port count descending).
func SelectTechnology(r Requirement) []OCSTechnology {
	var out []OCSTechnology
	for _, t := range Technologies() {
		if t.Meets(r) {
			out = append(out, t)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && better(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func better(a, b OCSTechnology) bool {
	ra, rb := rank(a.RelativeCost), rank(b.RelativeCost)
	if ra != rb {
		return ra < rb
	}
	return a.MaxPortCount > b.MaxPortCount
}

func rank(c CostClass) int {
	switch c {
	case CostLow:
		return 0
	case CostMedium:
		return 1
	case CostHigh:
		return 2
	default:
		return 3
	}
}
