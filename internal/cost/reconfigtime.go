package cost

import "math"

// Fabric-wide reconfiguration time per technology: MEMS and piezo switches
// move all mirrors of a batch concurrently, so a full-fabric topology
// change costs one switching time regardless of circuit count; the robotic
// patch panel "suffers from slow switching speeds that are further
// compounded by the need to serialize switching of connections" (App C.2).

// ReconfigTime returns the time to apply `circuits` cross-connect changes
// on one switch of the given technology.
func (t OCSTechnology) ReconfigTime(circuits int) float64 {
	if circuits <= 0 {
		return 0
	}
	if t.PerConnectionSwitching {
		return float64(circuits) * t.SwitchingTime
	}
	return t.SwitchingTime
}

// PodReconfigTime returns the time to reconfigure an entire superpod slice
// (circuits spread over numSwitches switches working in parallel).
func (t OCSTechnology) PodReconfigTime(circuits, numSwitches int) float64 {
	if numSwitches <= 0 {
		return math.Inf(1)
	}
	per := (circuits + numSwitches - 1) / numSwitches
	return t.ReconfigTime(per)
}

// ReconfigComparison returns the full-pod reconfiguration time (3072
// circuits over 48 switches) for every Table C.1 technology, in the
// table's order.
func ReconfigComparison() map[string]float64 {
	out := make(map[string]float64)
	for _, t := range Technologies() {
		out[t.Name] = t.PodReconfigTime(3072, 48)
	}
	return out
}
