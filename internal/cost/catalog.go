// Package cost implements the cost and power models behind Table 1 (pod
// fabric options), the spine-free DCN savings quoted in §4.2 (from [47]),
// the deployment-modularity savings of §4.2.3, and the OCS technology
// comparison of Table C.1. Costs are in relative catalog units (the paper
// publishes only ratios); power is in watts. Unit values are calibrated so
// the published ratios hold — see DESIGN.md.
package cost

import "fmt"

// Component is one purchasable part.
type Component struct {
	Name      string
	CostUnits float64
	PowerW    float64
}

// Catalog components.
var (
	// TPUCube is one 64-chip rack including chips, hosts, and intra-rack
	// electrical ICI.
	TPUCube = Component{Name: "tpu-cube", CostUnits: 1500, PowerW: 7000}
	// SRModule is the short-range, low-cost optical module of the static
	// baseline fabric.
	SRModule = Component{Name: "sr-module", CostUnits: 1.0, PowerW: 9}
	// BidiModule is the custom bidi CWDM4 OSFP module.
	BidiModule = Component{Name: "bidi-osfp", CostUnits: 1.35, PowerW: 9}
	// DCNModule is the 800G module used in the EPS fabric option.
	DCNModule = Component{Name: "dcn-800g", CostUnits: 1.5, PowerW: 9}
	// PalomarOCS is one 136×136 OCS chassis.
	PalomarOCS = Component{Name: "palomar-ocs", CostUnits: 77, PowerW: 108}
	// EPSChassis is one 64×800G packet switch.
	EPSChassis = Component{Name: "eps-64x800g", CostUnits: 265, PowerW: 435}
	// HostNIC is one DCN NIC.
	HostNIC = Component{Name: "host-nic", CostUnits: 1.0, PowerW: 15}
	// CablePair is a short-reach cable assembly for one connection.
	CablePair = Component{Name: "cable-pair", CostUnits: 0.2, PowerW: 0}
	// FiberStrand is structured single-mode fiber with patching for one
	// strand.
	FiberStrand = Component{Name: "fiber-strand", CostUnits: 0.15, PowerW: 0}
)

// Line is a quantity of one component.
type Line struct {
	Component Component
	Qty       int
}

// BOM is a bill of materials.
type BOM struct {
	Name  string
	Lines []Line
}

// Add appends qty of component c.
func (b *BOM) Add(c Component, qty int) {
	if qty == 0 {
		return
	}
	b.Lines = append(b.Lines, Line{Component: c, Qty: qty})
}

// Merge appends all lines of other.
func (b *BOM) Merge(other BOM) {
	b.Lines = append(b.Lines, other.Lines...)
}

// Cost returns the total cost in catalog units.
func (b BOM) Cost() float64 {
	t := 0.0
	for _, l := range b.Lines {
		t += l.Component.CostUnits * float64(l.Qty)
	}
	return t
}

// Power returns the total power in watts.
func (b BOM) Power() float64 {
	t := 0.0
	for _, l := range b.Lines {
		t += l.Component.PowerW * float64(l.Qty)
	}
	return t
}

// Qty returns the total quantity of the named component.
func (b BOM) Qty(name string) int {
	n := 0
	for _, l := range b.Lines {
		if l.Component.Name == name {
			n += l.Qty
		}
	}
	return n
}

// String summarizes the BOM.
func (b BOM) String() string {
	return fmt.Sprintf("%s: cost=%.1f power=%.0fW (%d lines)", b.Name, b.Cost(), b.Power(), len(b.Lines))
}
