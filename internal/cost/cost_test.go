package cost

import (
	"math"
	"testing"
)

func TestBOMArithmetic(t *testing.T) {
	var b BOM
	b.Add(SRModule, 10)
	b.Add(CablePair, 5)
	b.Add(SRModule, 0) // ignored
	if got := b.Cost(); math.Abs(got-11) > 1e-12 {
		t.Fatalf("cost = %v", got)
	}
	if got := b.Power(); math.Abs(got-90) > 1e-12 {
		t.Fatalf("power = %v", got)
	}
	if b.Qty("sr-module") != 10 {
		t.Fatalf("qty = %d", b.Qty("sr-module"))
	}
	if len(b.Lines) != 2 {
		t.Fatalf("lines = %d", len(b.Lines))
	}
}

func TestBOMMerge(t *testing.T) {
	var a, b BOM
	a.Add(SRModule, 1)
	b.Add(CablePair, 2)
	a.Merge(b)
	if a.Qty("cable-pair") != 2 {
		t.Fatal("merge lost lines")
	}
}

// TestTable1 reproduces Table 1: relative cost 1.24×/1.06×/1× and relative
// power 1.10×/1.01×/1× for DCN / lightwave / static pod fabrics.
func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	want := []struct {
		fabric      string
		cost, power float64
	}{
		{"DCN", 1.24, 1.10},
		{"Lightwave Fabric", 1.06, 1.01},
		{"Static", 1.00, 1.00},
	}
	for i, w := range want {
		r := rows[i]
		if r.Fabric != w.fabric {
			t.Errorf("row %d fabric = %q", i, r.Fabric)
		}
		if math.Abs(r.RelativeCost-w.cost) > 0.01 {
			t.Errorf("%s relative cost = %.3f, want ≈%.2f", w.fabric, r.RelativeCost, w.cost)
		}
		if math.Abs(r.RelativePower-w.power) > 0.005 {
			t.Errorf("%s relative power = %.3f, want ≈%.2f", w.fabric, r.RelativePower, w.power)
		}
	}
}

func TestFabricShareUnder6Percent(t *testing.T) {
	// "despite constituting less than 6% of the total system cost".
	share := FabricShareOfSystem()
	if share >= 0.13 || share <= 0.03 {
		t.Fatalf("fabric share = %.3f, implausible", share)
	}
}

func TestBidiHalvesOCSPlantCost(t *testing.T) {
	// §4.2.3: bidi transceivers save 50% of OCS and fiber cost.
	s := OCSSavingsFromBidi()
	if math.Abs(s-0.5) > 0.01 {
		t.Fatalf("bidi OCS+fiber savings = %.3f, want ≈0.50", s)
	}
}

func TestPodFabricScalesWithCubes(t *testing.T) {
	full := LightwavePodFabric(64)
	half := LightwavePodFabric(32)
	if half.Qty("bidi-osfp")*2 != full.Qty("bidi-osfp") {
		t.Fatal("module count should scale with cubes")
	}
	// OCS count is fixed infrastructure ("part of the building
	// infrastructure", amortized over the pod's life).
	if half.Qty("palomar-ocs") != full.Qty("palomar-ocs") {
		t.Fatal("OCS plant should not scale with cubes")
	}
}

func TestDCNSpineFreeSavings(t *testing.T) {
	// §4.2 (from [47]): "a spine-free DCN delivers 30% reduction in CapEx
	// and 40% reduction in OpEx" (41% power in §2.1).
	capex, power := DefaultDCN().DCNSavings()
	if math.Abs(capex-0.30) > 0.02 {
		t.Errorf("capex savings = %.3f, want ≈0.30", capex)
	}
	if math.Abs(power-0.41) > 0.02 {
		t.Errorf("power savings = %.3f, want ≈0.41", power)
	}
}

func TestSpineFreeEliminatesSpineParts(t *testing.T) {
	p := DefaultDCN()
	full := p.SpineFullDCN()
	free := p.SpineFreeDCN()
	if full.Qty("spine-port") == 0 {
		t.Fatal("spine-full has no spine ports")
	}
	if free.Qty("spine-port") != 0 {
		t.Fatal("spine-free still has spine ports")
	}
	// Spine-free halves the transceiver count.
	if free.Qty("bidi-osfp")*2 != full.Qty("bidi-osfp") {
		t.Fatal("spine-free should halve transceivers")
	}
}

func TestPodSystemIncludesCompute(t *testing.T) {
	s := PodSystem(StaticPodFabric(64), 64)
	if s.Qty("tpu-cube") != 64 {
		t.Fatal("system BOM missing cubes")
	}
	if s.Cost() <= StaticPodFabric(64).Cost() {
		t.Fatal("system cost should exceed fabric cost")
	}
}

func TestTechnologiesTableC1(t *testing.T) {
	techs := Technologies()
	if len(techs) != 5 {
		t.Fatalf("%d technologies", len(techs))
	}
	byName := map[string]OCSTechnology{}
	for _, x := range techs {
		byName[x.Name] = x
	}
	mems := byName["MEMS"]
	if mems.MaxPortCount < 128 {
		t.Error("MEMS port count too low for the superpod")
	}
	if byName["Robotic"].SwitchingTime < 1 {
		t.Error("robotic switching should be minutes-class")
	}
	if !byName["Robotic"].Latching || mems.Latching {
		t.Error("latching flags wrong")
	}
	if byName["Guided Wave"].MaxPortCount > 64 {
		t.Error("guided wave should be small-radix")
	}
}

func TestSelectTechnologyPicksMEMS(t *testing.T) {
	// §3.2.1: "MEMS OCS technology currently provides the best match" for
	// the datacenter and ML requirements.
	got := SelectTechnology(SuperpodRequirement())
	if len(got) == 0 || got[0].Name != "MEMS" {
		t.Fatalf("selection = %v", got)
	}
	// Robotic is excluded despite its port count (serialized minutes-class
	// switching); guided wave is excluded by radix and loss.
	for _, x := range got {
		if x.Name == "Robotic" || x.Name == "Guided Wave" {
			t.Errorf("%s should not qualify", x.Name)
		}
	}
}

func TestCostClassString(t *testing.T) {
	if CostLow.String() != "Low" || CostMedium.String() != "Medium" ||
		CostHigh.String() != "High" || CostUnknown.String() != "TBD" {
		t.Fatal("cost class names wrong")
	}
}
