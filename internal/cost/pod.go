package cost

import "lightwave/internal/topo"

// Pod fabric construction for Table 1. A 64-cube pod has 96 optical links
// per cube (Appendix A): 6144 link endpoints, 3072 point-to-point
// connections of 8 lanes each.

// PodCubes is the cube count of a full superpod.
const PodCubes = 64

// podEndpoints returns the optical link endpoints of a pod with the given
// cube count (6 faces × 16 links per cube).
func podEndpoints(cubes int) int { return cubes * 6 * topo.FaceLinks }

// podConnections returns the point-to-point connections.
func podConnections(cubes int) int { return podEndpoints(cubes) / 2 }

// StaticPodFabric returns the baseline fabric of Table 1: short-range,
// low-cost optics directly connecting the 64 elemental cubes in a fixed
// 3D torus.
func StaticPodFabric(cubes int) BOM {
	b := BOM{Name: "static-fabric"}
	b.Add(SRModule, podEndpoints(cubes))
	b.Add(CablePair, podConnections(cubes))
	return b
}

// LightwavePodFabric returns the reconfigurable lightwave fabric: bidi
// modules on every endpoint, 48 Palomar OCSes, and the fiber plant.
func LightwavePodFabric(cubes int) BOM {
	b := BOM{Name: "lightwave-fabric"}
	b.Add(BidiModule, podEndpoints(cubes))
	b.Add(PalomarOCS, topo.NumOCS)
	b.Add(FiberStrand, podEndpoints(cubes))
	return b
}

// DCNPodFabric returns the EPS-based option: every CPU host gets a NIC and
// connects into a 3-tier Clos of 800G packet switches (per-TPU bandwidth is
// far below ICI; the paper's point is that even this costs more than the
// lightwave fabric).
func DCNPodFabric(cubes int) BOM {
	hosts := cubes * topo.HostsPerCube
	b := BOM{Name: "dcn-fabric"}
	b.Add(HostNIC, hosts)
	// Host links plus two tiers of fabric links, modules at both ends of
	// every fabric link and one per host link (NIC side is the NIC).
	b.Add(DCNModule, 6*hosts)
	// 80 chassis serve the 1024-host pod (32 leaf + 32 spine + 16 super).
	b.Add(EPSChassis, 80*cubes/PodCubes)
	return b
}

// PodSystem wraps a fabric BOM with the compute cost of the pod.
func PodSystem(fabric BOM, cubes int) BOM {
	b := BOM{Name: fabric.Name + "-system"}
	b.Add(TPUCube, cubes)
	b.Merge(fabric)
	return b
}

// Table1Row is one row of the Table 1 reproduction.
type Table1Row struct {
	Fabric        string
	RelativeCost  float64
	RelativePower float64
}

// Table1 reproduces Table 1: total pod cost and power for the DCN,
// lightwave, and static fabric options, normalized to static.
func Table1() []Table1Row {
	static := PodSystem(StaticPodFabric(PodCubes), PodCubes)
	lightwave := PodSystem(LightwavePodFabric(PodCubes), PodCubes)
	dcn := PodSystem(DCNPodFabric(PodCubes), PodCubes)
	rows := []Table1Row{
		{"DCN", dcn.Cost() / static.Cost(), dcn.Power() / static.Power()},
		{"Lightwave Fabric", lightwave.Cost() / static.Cost(), lightwave.Power() / static.Power()},
		{"Static", 1, 1},
	}
	return rows
}

// FabricShareOfSystem returns the lightwave fabric's absolute share of
// total system cost.
func FabricShareOfSystem() float64 {
	f := LightwavePodFabric(PodCubes)
	s := PodSystem(LightwavePodFabric(PodCubes), PodCubes)
	return f.Cost() / s.Cost()
}

// IncrementalFabricShare returns the lightwave fabric's cost premium over
// the static baseline as a fraction of system cost — the paper's "less
// than 6% of the total system cost" framing (consistent with Table 1's
// 1.06×).
func IncrementalFabricShare() float64 {
	static := PodSystem(StaticPodFabric(PodCubes), PodCubes)
	lw := PodSystem(LightwavePodFabric(PodCubes), PodCubes)
	return lw.Cost()/static.Cost() - 1
}

// OCSSavingsFromBidi returns the fractional OCS+fiber cost saved by bidi
// transceivers versus standard duplex (§4.2.3: "This saves 50% in the cost
// of the OCSes and fiber").
func OCSSavingsFromBidi() float64 {
	// Duplex needs 96 OCSes and twice the strands; bidi needs 48.
	duplex := BOM{Name: "duplex-ocs-plant"}
	duplex.Add(PalomarOCS, 96)
	duplex.Add(FiberStrand, 2*podEndpoints(PodCubes))
	bidi := BOM{Name: "bidi-ocs-plant"}
	bidi.Add(PalomarOCS, 48)
	bidi.Add(FiberStrand, podEndpoints(PodCubes))
	return 1 - bidi.Cost()/duplex.Cost()
}
