package cost

import "lightwave/internal/eps"

// Spine-full vs spine-free DCN comparison (§2.1/§4.2, results from [47]):
// replacing the spine layer with OCSes eliminates the spine chassis and the
// spine-side transceivers, delivering ≈30% capex and ≈41% power reduction.

// DCNParams sizes a datacenter network of aggregation blocks.
type DCNParams struct {
	// AggregationBlocks is the number of ABs.
	AggregationBlocks int
	// UplinksPerBlock is the number of fabric-facing links per AB.
	UplinksPerBlock int
	// ABCost / ABPowerW cover one aggregation block (its own switches and
	// server-facing optics), identical across both designs.
	ABCost   float64
	ABPowerW float64
}

// DefaultDCN returns a representative Jupiter-scale configuration.
func DefaultDCN() DCNParams {
	return DCNParams{
		AggregationBlocks: 64,
		UplinksPerBlock:   256,
		ABCost:            1000,
		ABPowerW:          5000,
	}
}

// abComponent wraps the AB cost/power as a catalog line.
func (p DCNParams) abComponent() Component {
	return Component{Name: "aggregation-block", CostUnits: p.ABCost, PowerW: p.ABPowerW}
}

// spinePort wraps the per-port share of a spine block.
func spinePort() Component {
	return Component{Name: "spine-port", CostUnits: eps.SpinePortCost, PowerW: eps.SpinePortPowerW}
}

// ocsPort wraps the per-duplex-port share of a Palomar OCS.
func ocsPort() Component {
	return Component{
		Name:      "ocs-port",
		CostUnits: PalomarOCS.CostUnits / 128,
		PowerW:    PalomarOCS.PowerW / 128,
	}
}

// SpineFullDCN returns the traditional Fig 1a design: every AB uplink runs
// to a spine block port with transceivers at both ends.
func (p DCNParams) SpineFullDCN() BOM {
	b := BOM{Name: "spine-full-dcn"}
	uplinks := p.AggregationBlocks * p.UplinksPerBlock
	b.Add(p.abComponent(), p.AggregationBlocks)
	b.Add(BidiModule, 2*uplinks) // AB side + spine side
	b.Add(spinePort(), uplinks)
	return b
}

// SpineFreeDCN returns the Fig 1b design: AB uplinks terminate on OCS
// ports; there is no spine layer and no spine-side transceivers.
func (p DCNParams) SpineFreeDCN() BOM {
	b := BOM{Name: "spine-free-dcn"}
	uplinks := p.AggregationBlocks * p.UplinksPerBlock
	b.Add(p.abComponent(), p.AggregationBlocks)
	b.Add(BidiModule, uplinks) // AB side only
	b.Add(ocsPort(), uplinks)
	return b
}

// DCNSavings returns the capex and power reductions of the spine-free
// design relative to the spine-full design.
func (p DCNParams) DCNSavings() (capex, power float64) {
	full := p.SpineFullDCN()
	free := p.SpineFreeDCN()
	return 1 - free.Cost()/full.Cost(), 1 - free.Power()/full.Power()
}
