package optics

import (
	"errors"
	"fmt"
)

// Modulation is the per-lane line modulation format.
type Modulation int

// Supported modulation formats.
const (
	NRZ Modulation = iota
	PAM4
)

// String returns the conventional name.
func (m Modulation) String() string {
	switch m {
	case NRZ:
		return "NRZ"
	case PAM4:
		return "PAM4"
	default:
		return fmt.Sprintf("modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns bits carried per symbol.
func (m Modulation) BitsPerSymbol() int {
	if m == PAM4 {
		return 2
	}
	return 1
}

// LaserType distinguishes directly and externally modulated lasers.
// Appendix C.1: EMLs were critical for mitigating MPI effects enhanced by
// bidirectional communication (lower chirp).
type LaserType int

// Laser types.
const (
	DML LaserType = iota // directly modulated laser
	EML                  // externally modulated laser
)

// String returns the conventional name.
func (l LaserType) String() string {
	if l == EML {
		return "EML"
	}
	return "DML"
}

// Generation describes one transceiver generation from the Fig 8 roadmap.
type Generation struct {
	Name         string
	FormFactor   string
	LaneRateGbps float64
	Modulation   Modulation
	Grid         Grid
	Laser        LaserType
	// Engines is the number of independent WDM transmitter/receiver pairs
	// in the module (the bidi OSFP of Fig 3 has two CWDM4 engines).
	Engines int
	// Bidi reports whether the module integrates circulators for
	// single-strand bidirectional operation.
	Bidi bool
	// FibersPerModule is the number of fiber strands the module drives:
	// one per engine for bidi modules, two per engine for duplex.
	FibersPerModule int
	// TxPowerDBm is the per-lane launch power.
	TxPowerDBm float64
	// SensitivityDBm is the per-lane receiver sensitivity at the KP4
	// threshold (2e-4) on a clean (MPI-free, back-to-back) channel.
	SensitivityDBm float64
	// PowerW is the module's electrical power draw.
	PowerW float64
	// RelativeCost is the module cost normalized to the 100G CWDM4 unit.
	RelativeCost float64
}

// TotalGbps returns the module's aggregate bandwidth across all engines.
func (g Generation) TotalGbps() float64 {
	e := g.Engines
	if e == 0 {
		e = 1
	}
	return g.LaneRateGbps * float64(g.Grid.Lanes()) * float64(e)
}

// Roadmap returns the WDM interconnect roadmap of Fig 8 plus the custom
// bidi modules of Fig 9, oldest first. Power/cost values are representative
// datacom figures normalized for the cost model; the paper reports only the
// 20× bandwidth growth and continuous efficiency improvement, which this
// table preserves.
func Roadmap() []Generation {
	return []Generation{
		{Name: "40G-QSFP+", FormFactor: "QSFP+", LaneRateGbps: 10, Modulation: NRZ,
			Grid: CWDM4(), Laser: DML, Engines: 1, FibersPerModule: 2, TxPowerDBm: 1.0, SensitivityDBm: -13,
			PowerW: 3.5, RelativeCost: 0.5},
		{Name: "100G-CWDM4", FormFactor: "QSFP28", LaneRateGbps: 25, Modulation: NRZ,
			Grid: CWDM4(), Laser: DML, Engines: 1, FibersPerModule: 2, TxPowerDBm: 1.5, SensitivityDBm: -12,
			PowerW: 4.0, RelativeCost: 1.0},
		{Name: "200G-CWDM4", FormFactor: "QSFP56", LaneRateGbps: 50, Modulation: PAM4,
			Grid: CWDM4(), Laser: EML, Engines: 1, FibersPerModule: 2, TxPowerDBm: 2.0, SensitivityDBm: -9,
			PowerW: 5.0, RelativeCost: 1.6},
		{Name: "2x200G-bidi-CWDM4", FormFactor: "OSFP", LaneRateGbps: 50, Modulation: PAM4,
			Grid: CWDM4(), Laser: EML, Engines: 2, Bidi: true, FibersPerModule: 2, TxPowerDBm: 2.5, SensitivityDBm: -9,
			PowerW: 9.0, RelativeCost: 3.0},
		{Name: "2x400G-bidi-CWDM4", FormFactor: "OSFP", LaneRateGbps: 100, Modulation: PAM4,
			Grid: CWDM4(), Laser: EML, Engines: 2, Bidi: true, FibersPerModule: 2, TxPowerDBm: 3.0, SensitivityDBm: -6,
			PowerW: 13.0, RelativeCost: 4.5},
		{Name: "800G-bidi-CWDM8", FormFactor: "OSFP", LaneRateGbps: 100, Modulation: PAM4,
			Grid: CWDM8(), Laser: EML, Engines: 1, Bidi: true, FibersPerModule: 1, TxPowerDBm: 3.0, SensitivityDBm: -6,
			PowerW: 11.0, RelativeCost: 6.0},
	}
}

// GenerationByName looks a generation up in the roadmap.
func GenerationByName(name string) (Generation, error) {
	for _, g := range Roadmap() {
		if g.Name == name {
			return g, nil
		}
	}
	return Generation{}, fmt.Errorf("optics: unknown generation %q", name)
}

// RateCapability is one (lane rate, modulation) operating mode.
type RateCapability struct {
	LaneRateGbps float64
	Modulation   Modulation
}

// Transceiver is one pluggable module: a generation plus its programmable
// operating modes (§3.3.1 backward compatibility: "the latest generation
// OSFP transceiver running at 100G PAM4 per lane must also support 50G PAM4
// and 25G NRZ operation").
type Transceiver struct {
	Gen   Generation
	Modes []RateCapability
}

// ErrIncompatible is returned when two transceivers share no operating mode.
var ErrIncompatible = errors.New("optics: transceivers share no operating mode")

// NewTransceiver builds a module of the given generation with its full
// backward-compatible mode set.
func NewTransceiver(gen Generation) *Transceiver {
	t := &Transceiver{Gen: gen}
	t.Modes = append(t.Modes, RateCapability{gen.LaneRateGbps, gen.Modulation})
	// Each generation also runs the prior generations' lane rates.
	switch gen.LaneRateGbps {
	case 100:
		t.Modes = append(t.Modes,
			RateCapability{50, PAM4},
			RateCapability{25, NRZ})
	case 50:
		t.Modes = append(t.Modes, RateCapability{25, NRZ})
	case 25:
		t.Modes = append(t.Modes, RateCapability{10, NRZ})
	}
	return t
}

// Negotiate returns the highest common operating mode of two modules, the
// software-programmable interop step that lets new ABs join an old fabric.
func (t *Transceiver) Negotiate(o *Transceiver) (RateCapability, error) {
	best := RateCapability{}
	found := false
	for _, a := range t.Modes {
		for _, b := range o.Modes {
			if a == b && (!found || a.LaneRateGbps > best.LaneRateGbps) {
				best = a
				found = true
			}
		}
	}
	if !found {
		return RateCapability{}, ErrIncompatible
	}
	return best, nil
}

// Circulator is the three-port non-reciprocal device of Appendix B that
// turns a duplex transceiver into a bidirectional one, "saving 50% of the
// OCS ports required for operation".
type Circulator struct {
	// InsertionLossDB is the port-1→2 and port-2→3 loss.
	InsertionLossDB float64
	// ReturnLossDB is the reflection back into an input port (negative).
	ReturnLossDB float64
	// CrosstalkDB is the direct port-1→3 leakage (negative); the paper
	// notes this "is effectively equivalent to having a reflection in the
	// link" and had to be re-engineered down.
	CrosstalkDB float64
}

// DefaultCirculator returns the re-engineered datacenter circulator of
// §3.3.1 / Appendix B.
func DefaultCirculator() Circulator {
	return Circulator{InsertionLossDB: 0.8, ReturnLossDB: -50, CrosstalkDB: -45}
}

// TelecomCirculator returns a legacy telecom-grade part, before the paper's
// re-engineering for wavelength range, return loss, and crosstalk — useful
// for ablation studies.
func TelecomCirculator() Circulator {
	return Circulator{InsertionLossDB: 1.0, ReturnLossDB: -42, CrosstalkDB: -35}
}
