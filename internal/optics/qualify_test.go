package optics

import "testing"

func TestQualifyRoadmapAllPass(t *testing.T) {
	// Every production generation must qualify at every supported rate on
	// the reference deployment link — the §3.3.1 interop guarantee.
	reports, err := QualifyRoadmap(DefaultQualSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Roadmap()) {
		t.Fatalf("%d reports", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			for _, m := range r.Modes {
				t.Logf("%s @ %gG %s: margin %.2f dB pass=%v",
					r.Generation, m.Mode.LaneRateGbps, m.Mode.Modulation, m.Budget.MarginDB, m.Pass)
			}
			t.Errorf("%s failed qualification", r.Generation)
		}
	}
}

func TestQualifyLegacyModesEasier(t *testing.T) {
	// Within one module, lower line rates must have at least the margin of
	// the native rate (relaxed sensitivity + smaller dispersion penalty).
	gen, _ := GenerationByName("2x400G-bidi-CWDM4")
	rep, err := Qualify(gen, DefaultQualSpec())
	if err != nil {
		t.Fatal(err)
	}
	var native, legacy float64
	for _, m := range rep.Modes {
		if m.Mode.LaneRateGbps == gen.LaneRateGbps {
			native = m.Budget.MarginDB
		}
		if m.Mode.LaneRateGbps == 25 {
			legacy = m.Budget.MarginDB
		}
	}
	if legacy <= native {
		t.Fatalf("legacy 25G margin %.2f not above native %.2f", legacy, native)
	}
}

func TestQualifyFailsOnImpossibleSpec(t *testing.T) {
	gen, _ := GenerationByName("2x200G-bidi-CWDM4")
	spec := DefaultQualSpec()
	spec.FiberKM = 200 // absurd reach
	rep, err := Qualify(gen, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("module qualified over 200 km")
	}
}

func TestQualifyModeCount(t *testing.T) {
	gen, _ := GenerationByName("2x400G-bidi-CWDM4")
	rep, err := Qualify(gen, DefaultQualSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Modes) != 3 {
		t.Fatalf("%d modes qualified, want 3 (100G/50G/25G)", len(rep.Modes))
	}
}
