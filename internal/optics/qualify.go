package optics

import (
	"fmt"
	"math"
)

// Module qualification (§3.3.1: backward compatibility required
// "programmable modules and DSP blocks that can run at multiple line rates
// along with the corresponding qualification testing for all supported
// rates"). Qualify exercises every operating mode of a module over the
// reference deployment link and checks the optical budget closes with the
// required margin.

// QualSpec is the reference link a module must close.
type QualSpec struct {
	// OCSLossDB is the worst-case cross-connect loss.
	OCSLossDB float64
	// OCSReturnDB is the worst-case port return loss.
	OCSReturnDB float64
	// FiberKM is the qualification reach.
	FiberKM float64
	// MinMarginDB is the required end-of-life margin.
	MinMarginDB float64
}

// DefaultQualSpec returns the pod-deployment qualification point: a 3 dB
// OCS path (the §3.2.1 design ceiling), spec-limit return loss, 1 km
// reach, 1 dB margin.
func DefaultQualSpec() QualSpec {
	return QualSpec{OCSLossDB: 3.0, OCSReturnDB: -38, FiberKM: 1.0, MinMarginDB: 1.0}
}

// ModeReport is the qualification result of one operating mode.
type ModeReport struct {
	Mode   RateCapability
	Budget Budget
	Pass   bool
}

// QualReport is the qualification result of one module.
type QualReport struct {
	Generation string
	Modes      []ModeReport
	Pass       bool
}

// Qualify runs the module's full backward-compatible mode set against the
// spec. Lower line rates have easier sensitivity requirements (the
// dispersion penalty shrinks quadratically with symbol rate), so a module
// that closes its native rate must also close the legacy rates — exactly
// what makes in-place interop with old fabrics safe.
func Qualify(gen Generation, spec QualSpec) (QualReport, error) {
	t := NewTransceiver(gen)
	rep := QualReport{Generation: gen.Name, Pass: true}
	for _, mode := range t.Modes {
		// Evaluate the budget at this mode's lane rate by swapping the
		// generation's rate fields (the analog front end is programmable).
		g := gen
		g.LaneRateGbps = mode.LaneRateGbps
		g.Modulation = mode.Modulation
		// Legacy rates relax the sensitivity requirement by the SNR-per-
		// bit difference: halving the rate buys ≈1.5 optical dB.
		g.SensitivityDBm = gen.SensitivityDBm - 1.5*math.Log2(gen.LaneRateGbps/mode.LaneRateGbps)
		a := NewTransceiver(g)
		bcv := NewTransceiver(g)
		var link *Link
		if gen.Bidi {
			link = NewBidiLink(a, bcv, DefaultCirculator(), spec.OCSLossDB, spec.OCSReturnDB, spec.FiberKM)
		} else {
			link = NewDuplexLink(a, bcv, spec.OCSLossDB, spec.OCSReturnDB, spec.FiberKM)
		}
		bud, err := link.BudgetTowardB()
		if err != nil {
			return rep, fmt.Errorf("optics: qualifying %s at %g G: %w", gen.Name, mode.LaneRateGbps, err)
		}
		m := ModeReport{Mode: mode, Budget: bud, Pass: bud.MarginDB >= spec.MinMarginDB}
		if !m.Pass {
			rep.Pass = false
		}
		rep.Modes = append(rep.Modes, m)
	}
	return rep, nil
}

// QualifyRoadmap qualifies every generation of the roadmap against the
// spec.
func QualifyRoadmap(spec QualSpec) ([]QualReport, error) {
	var out []QualReport
	for _, g := range Roadmap() {
		r, err := Qualify(g, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
