package optics

import (
	"fmt"
	"math"
)

// Thin-film wavelength mux/demux model (§3.3.1: "low-loss optical
// components (thin-film-based wavelength mux/demux) ... were used to
// minimize optical path loss"). Narrower channel spacing (CWDM8's 10 nm vs
// CWDM4's 20 nm) needs sharper filters: more insertion loss, band-edge
// rolloff, and tighter adjacent-channel isolation requirements.

// Mux is a WDM multiplexer/demultiplexer for one grid.
type Mux struct {
	Grid Grid
	// CenterLossDB is the through loss at a channel center.
	CenterLossDB float64
	// EdgeRolloffDB is the extra loss of the outermost channels (filter
	// concatenation and passband edges).
	EdgeRolloffDB float64
	// AdjacentIsolationDB is the rejection of the neighboring channel
	// (positive dB).
	AdjacentIsolationDB float64
}

// NewMux returns the thin-film part for the grid: the tighter the channel
// spacing, the lossier and harder to isolate.
func NewMux(g Grid) Mux {
	if g.SpacingNM <= 10 {
		return Mux{Grid: g, CenterLossDB: 1.5, EdgeRolloffDB: 0.5, AdjacentIsolationDB: 25}
	}
	return Mux{Grid: g, CenterLossDB: 1.0, EdgeRolloffDB: 0.3, AdjacentIsolationDB: 30}
}

// ChannelLossDB returns the through loss of channel i: center loss plus a
// quadratic rolloff toward the band edges.
func (m Mux) ChannelLossDB(i int) (float64, error) {
	n := m.Grid.Lanes()
	if i < 0 || i >= n {
		return 0, fmt.Errorf("optics: channel %d outside grid %s", i, m.Grid.Name)
	}
	if n == 1 {
		return m.CenterLossDB, nil
	}
	// Normalized distance from band center in [-1, 1].
	x := 2*float64(i)/float64(n-1) - 1
	return m.CenterLossDB + m.EdgeRolloffDB*x*x, nil
}

// CrosstalkDB returns the leakage of channel `from` into channel `to`
// (negative dB; more negative is better), falling by 15 dB per additional
// channel of separation.
func (m Mux) CrosstalkDB(from, to int) (float64, error) {
	n := m.Grid.Lanes()
	if from < 0 || from >= n || to < 0 || to >= n {
		return 0, fmt.Errorf("optics: channels %d,%d outside grid %s", from, to, m.Grid.Name)
	}
	if from == to {
		return 0, nil
	}
	sep := from - to
	if sep < 0 {
		sep = -sep
	}
	return -(m.AdjacentIsolationDB + 15*float64(sep-1)), nil
}

// LaneBudget is the per-wavelength-lane budget of a WDM link.
type LaneBudget struct {
	Lane     int
	LambdaNM float64
	Budget
}

// WDMBudget computes per-lane budgets for one direction of the link,
// adding the mux+demux channel losses and replacing the worst-lane
// dispersion penalty with each lane's own (band-edge lanes suffer most).
func WDMBudget(l *Link, tx *Transceiver, m Mux) ([]LaneBudget, error) {
	base, err := l.BudgetTowardB()
	if err != nil {
		return nil, err
	}
	lanes := make([]LaneBudget, 0, m.Grid.Lanes())
	symbolRate := tx.Gen.LaneRateGbps / float64(tx.Gen.Modulation.BitsPerSymbol())
	for i, lambda := range m.Grid.Channels {
		muxLoss, err := m.ChannelLossDB(i)
		if err != nil {
			return nil, err
		}
		lane := LaneBudget{Lane: i, LambdaNM: lambda, Budget: base}
		// Mux at the transmitter + demux at the receiver.
		lane.PathLossDB += 2 * muxLoss
		lane.RxPowerDBm -= 2 * muxLoss
		// Lane-specific effective MPI: link reflections plus demux
		// crosstalk from the other lanes.
		mpi, err := m.LaneMPIDB(i, base.MPIDB)
		if err != nil {
			return nil, err
		}
		lane.MPIDB = mpi
		// Lane-specific dispersion penalty.
		d := math.Abs(DispersionPsPerNMKM(lambda)) * l.FiberKM
		lane.DispersionPenaltyDB = 1.0 * (symbolRate / 50) * (symbolRate / 50) * d / 7.5
		if lane.DispersionPenaltyDB > 6 {
			lane.DispersionPenaltyDB = 6
		}
		lane.MarginDB = lane.RxPowerDBm - tx.Gen.SensitivityDBm - lane.DispersionPenaltyDB
		lanes = append(lanes, lane)
	}
	return lanes, nil
}

// WorstLane returns the lane with the lowest margin.
func WorstLane(lanes []LaneBudget) (LaneBudget, error) {
	if len(lanes) == 0 {
		return LaneBudget{}, fmt.Errorf("optics: no lanes")
	}
	worst := lanes[0]
	for _, l := range lanes[1:] {
		if l.MarginDB < worst.MarginDB {
			worst = l
		}
	}
	return worst, nil
}

// LaneMPIDB returns the effective in-band interferer-to-signal ratio of
// lane i: the link's own MPI (reflections of the counter-propagating
// transmitter) plus the demux's leakage from every other lane. Crosstalk
// is "effectively equivalent to having a reflection in the link" (§3.3.1),
// so the powers add; middle lanes with two close neighbors fare slightly
// worse than band-edge lanes.
func (m Mux) LaneMPIDB(lane int, linkMPIDB float64) (float64, error) {
	n := m.Grid.Lanes()
	if lane < 0 || lane >= n {
		return 0, fmt.Errorf("optics: lane %d outside grid %s", lane, m.Grid.Name)
	}
	sum := 0.0
	if linkMPIDB > NoReflection {
		sum += math.Pow(10, linkMPIDB/10)
	}
	for other := 0; other < n; other++ {
		if other == lane {
			continue
		}
		xt, err := m.CrosstalkDB(other, lane)
		if err != nil {
			return 0, err
		}
		sum += math.Pow(10, xt/10)
	}
	if sum <= 0 {
		return NoReflection, nil
	}
	return 10 * math.Log10(sum), nil
}

// SharedChannels returns the channel indices (in the receiver's grid) whose
// center wavelengths a transmitter's grid also carries — the interop
// subset that lets a CWDM8 module talk to CWDM4 gear at reduced lane count
// (§3.3.1 backward compatibility via "careful design of the wavelength
// grid").
func SharedChannels(rx, tx Grid) []int {
	var out []int
	for i, a := range rx.Channels {
		for _, b := range tx.Channels {
			if a == b {
				out = append(out, i)
				break
			}
		}
	}
	return out
}
