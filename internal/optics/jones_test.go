package optics

import (
	"math"
	"testing"
	"testing/quick"

	"lightwave/internal/sim"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJonesPower(t *testing.T) {
	j := Jones{S: complex(3, 4), P: complex(0, 0)}
	if !almostEq(j.Power(), 25) {
		t.Fatalf("power = %v", j.Power())
	}
}

func TestRotatorPreservesPower(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		j := Jones{
			S: complex(r.NormFloat64(), r.NormFloat64()),
			P: complex(r.NormFloat64(), r.NormFloat64()),
		}
		theta := r.Float64() * 2 * math.Pi
		out := Rotator(theta).Apply(j)
		return math.Abs(out.Power()-j.Power()) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestRotatorComposition(t *testing.T) {
	// R(a)·R(b) = R(a+b).
	a, b := 0.3, 1.1
	composed := Rotator(a).Mul(Rotator(b))
	direct := Rotator(a + b)
	j := Jones{S: 1, P: complex(0.5, 0.2)}
	x, y := composed.Apply(j), direct.Apply(j)
	if !almostEq(real(x.S), real(y.S)) || !almostEq(real(x.P), real(y.P)) {
		t.Fatal("rotation composition broken")
	}
}

func TestFaradayNonReciprocity(t *testing.T) {
	// The defining property: a round trip through a Faraday rotator
	// accumulates rotation (2×45° = 90°), while a round trip through the
	// reciprocal wave plate cancels.
	fr := FaradayRotator{Theta: math.Pi / 4}
	hwp := HalfWavePlate{Theta: math.Pi / 4}
	in := Jones{S: 1}

	frRound := fr.Forward().Mul(fr.Backward()).Apply(in)
	// 90° rotation: s → p.
	if !almostEq(cmplxPow(frRound.P), 1) || !almostEq(cmplxPow(frRound.S), 0) {
		t.Fatalf("FR round trip = %+v, want full s→p", frRound)
	}

	hwpRound := hwp.Forward().Mul(hwp.Backward()).Apply(in)
	if !almostEq(cmplxPow(hwpRound.S), 1) || !almostEq(cmplxPow(hwpRound.P), 0) {
		t.Fatalf("HWP round trip = %+v, want identity", hwpRound)
	}
}

func TestCirculatorForwardPolarizationPreserved(t *testing.T) {
	// Appendix B: "These two polarization rotations cancel so that the
	// state of polarization remains the same" from port 1 to port 2.
	core := NewCirculatorCore()
	toPort2, leaked := core.RouteForward(Jones{P: 1})
	if !almostEq(toPort2, 1) {
		t.Fatalf("port 1→2 transmission = %v", toPort2)
	}
	if !almostEq(leaked, 0) {
		t.Fatalf("forward leakage = %v", leaked)
	}
}

func TestCirculatorBackwardRoutesToPort3(t *testing.T) {
	// Appendix B: the unpolarized return light has every component rotated
	// by 90°, so the PBS pair recombines it all at port 3. Test arbitrary
	// elliptical input states.
	core := NewCirculatorCore()
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		in := Jones{
			S: complex(r.NormFloat64(), r.NormFloat64()),
			P: complex(r.NormFloat64(), r.NormFloat64()),
		}
		toPort3, back := core.RouteBackward(in)
		return math.Abs(toPort3-in.Power()) < 1e-9 && math.Abs(back) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestCirculatorPowerConservation(t *testing.T) {
	core := NewCirculatorCore()
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		in := Jones{
			S: complex(r.NormFloat64(), r.NormFloat64()),
			P: complex(r.NormFloat64(), r.NormFloat64()),
		}
		p3, p1 := core.RouteBackward(in)
		return math.Abs((p3+p1)-in.Power()) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestImperfectRotatorLeaksBackToLaser(t *testing.T) {
	// A Faraday rotation error leaks return light back into the
	// transmitter — the crosstalk/return-loss engineering problem of
	// §3.3.1.
	core := CirculatorCore{
		FR:  FaradayRotator{Theta: -math.Pi/4 + 0.05},
		HWP: HalfWavePlate{Theta: math.Pi / 4},
	}
	_, back := core.RouteBackward(Jones{S: 1, P: 0})
	if back <= 0 {
		t.Fatal("imperfect rotator should leak")
	}
	if back > 0.05 {
		t.Fatalf("leak %v implausibly large for 0.05 rad error", back)
	}
}

func TestCirculatorIsolationDB(t *testing.T) {
	if !math.IsInf(CirculatorIsolationDB(0), 1) {
		t.Fatal("perfect rotator should have infinite isolation")
	}
	// sin²(0.01) ≈ 1e-4 → ≈40 dB.
	iso := CirculatorIsolationDB(0.01)
	if iso < 39 || iso > 41 {
		t.Fatalf("isolation at 0.01 rad = %v dB", iso)
	}
	// Isolation degrades with rotation error.
	if CirculatorIsolationDB(0.05) >= CirculatorIsolationDB(0.01) {
		t.Fatal("isolation not monotone in error")
	}
}

func TestIsolationConsistentWithRouting(t *testing.T) {
	// The closed-form isolation must match the Jones-propagated leakage.
	for _, errRad := range []float64{0.005, 0.02, 0.08} {
		core := CirculatorCore{
			FR:  FaradayRotator{Theta: -math.Pi/4 + errRad},
			HWP: HalfWavePlate{Theta: math.Pi / 4},
		}
		_, back := core.RouteBackward(Jones{S: 1})
		want := math.Pow(10, -CirculatorIsolationDB(errRad)/10)
		if math.Abs(back-want)/want > 1e-6 {
			t.Fatalf("err %v: leak %v vs closed form %v", errRad, back, want)
		}
	}
}
