package optics

import (
	"math"
	"testing"
)

func TestMuxCWDM8LossierThanCWDM4(t *testing.T) {
	m4, m8 := NewMux(CWDM4()), NewMux(CWDM8())
	l4, _ := m4.ChannelLossDB(0)
	l8, _ := m8.ChannelLossDB(0)
	if l8 <= l4 {
		t.Fatal("tighter 10 nm filters should cost more loss")
	}
	if m8.AdjacentIsolationDB >= m4.AdjacentIsolationDB {
		t.Fatal("tighter spacing should have worse isolation")
	}
}

func TestMuxChannelLossProfile(t *testing.T) {
	m := NewMux(CWDM8())
	center, _ := m.ChannelLossDB(3)
	edge, _ := m.ChannelLossDB(0)
	if edge <= center {
		t.Fatal("band-edge channel should be lossier")
	}
	if _, err := m.ChannelLossDB(8); err == nil {
		t.Fatal("out-of-grid channel accepted")
	}
	// Symmetric profile.
	lo, _ := m.ChannelLossDB(0)
	hi, _ := m.ChannelLossDB(7)
	if math.Abs(lo-hi) > 1e-12 {
		t.Fatal("loss profile not symmetric")
	}
}

func TestMuxCrosstalkFallsWithSeparation(t *testing.T) {
	m := NewMux(CWDM4())
	adj, _ := m.CrosstalkDB(0, 1)
	far, _ := m.CrosstalkDB(0, 3)
	if far >= adj {
		t.Fatal("crosstalk should fall with channel separation")
	}
	if adj != -30 {
		t.Fatalf("adjacent crosstalk = %v", adj)
	}
	same, _ := m.CrosstalkDB(2, 2)
	if same != 0 {
		t.Fatal("self crosstalk should be 0 dB (it is the signal)")
	}
	if _, err := m.CrosstalkDB(0, 9); err == nil {
		t.Fatal("out-of-grid accepted")
	}
}

func TestWDMBudgetPerLane(t *testing.T) {
	gen, _ := GenerationByName("800G-bidi-CWDM8")
	a, b := NewTransceiver(gen), NewTransceiver(gen)
	l := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 2.0)
	lanes, err := WDMBudget(l, a, NewMux(gen.Grid))
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != 8 {
		t.Fatalf("%d lanes", len(lanes))
	}
	// The 1311 nm lane (index 4) sits near the zero-dispersion point; the
	// 1271 nm lane (index 0) is the dispersion band edge.
	if lanes[0].DispersionPenaltyDB <= lanes[4].DispersionPenaltyDB {
		t.Fatal("band-edge lane should have higher dispersion penalty")
	}
	// Every lane pays the mux+demux loss on top of the base path.
	base, _ := l.BudgetTowardB()
	for _, lane := range lanes {
		if lane.PathLossDB <= base.PathLossDB {
			t.Fatalf("lane %d loss %v not above base %v", lane.Lane, lane.PathLossDB, base.PathLossDB)
		}
	}
}

func TestWorstLaneIsBandEdge(t *testing.T) {
	gen, _ := GenerationByName("800G-bidi-CWDM8")
	a, b := NewTransceiver(gen), NewTransceiver(gen)
	l := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 2.0)
	lanes, err := WDMBudget(l, a, NewMux(gen.Grid))
	if err != nil {
		t.Fatal(err)
	}
	worst, err := WorstLane(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Lane != 0 && worst.Lane != 7 {
		t.Fatalf("worst lane = %d, want a band edge", worst.Lane)
	}
	if _, err := WorstLane(nil); err == nil {
		t.Fatal("empty lanes accepted")
	}
}

func TestSharedChannelsInterop(t *testing.T) {
	// CWDM8 carries every CWDM4 wavelength: a CWDM8 module can interop at
	// 4 lanes.
	shared := SharedChannels(CWDM8(), CWDM4())
	if len(shared) != 4 {
		t.Fatalf("shared channels = %v", shared)
	}
	// And symmetric case.
	if len(SharedChannels(CWDM4(), CWDM8())) != 4 {
		t.Fatal("reverse interop broken")
	}
	if len(SharedChannels(CWDM4(), Grid{Channels: []float64{1550}})) != 0 {
		t.Fatal("disjoint grids should share nothing")
	}
}

func TestLaneMPIIncludesCrosstalk(t *testing.T) {
	m := NewMux(CWDM8())
	linkMPI := -40.0
	mid, err := m.LaneMPIDB(4, linkMPI)
	if err != nil {
		t.Fatal(err)
	}
	// Adding crosstalk must worsen (raise) the effective MPI.
	if mid <= linkMPI {
		t.Fatalf("lane MPI %v not above link MPI %v", mid, linkMPI)
	}
	// A band-edge lane has one close neighbor; a middle lane has two.
	edge, _ := m.LaneMPIDB(0, linkMPI)
	if edge >= mid {
		t.Fatalf("edge lane MPI %v not better than middle %v", edge, mid)
	}
	if _, err := m.LaneMPIDB(99, linkMPI); err == nil {
		t.Fatal("out-of-grid lane accepted")
	}
}

func TestLaneMPICWDM8WorseThanCWDM4(t *testing.T) {
	// 10 nm spacing has worse isolation, so the same link MPI yields a
	// worse effective lane MPI.
	m4, _ := NewMux(CWDM4()).LaneMPIDB(1, -40)
	m8, _ := NewMux(CWDM8()).LaneMPIDB(4, -40)
	if m8 <= m4 {
		t.Fatalf("CWDM8 lane MPI %v not worse than CWDM4 %v", m8, m4)
	}
}

func TestLaneMPINoInputs(t *testing.T) {
	// Even with no link MPI the demux crosstalk floor remains.
	m := NewMux(CWDM4())
	got, err := m.LaneMPIDB(0, NoReflection)
	if err != nil {
		t.Fatal(err)
	}
	if got <= NoReflection || got > -25 {
		t.Fatalf("crosstalk-only MPI = %v", got)
	}
}

func TestWDMBudgetCarriesLaneMPI(t *testing.T) {
	gen, _ := GenerationByName("800G-bidi-CWDM8")
	a, b := NewTransceiver(gen), NewTransceiver(gen)
	l := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 1.0)
	base, _ := l.BudgetTowardB()
	lanes, err := WDMBudget(l, a, NewMux(gen.Grid))
	if err != nil {
		t.Fatal(err)
	}
	for _, lane := range lanes {
		if lane.MPIDB <= base.MPIDB {
			t.Fatalf("lane %d MPI %v not above link MPI %v", lane.Lane, lane.MPIDB, base.MPIDB)
		}
	}
}
