// Package optics models the photonic layer of the lightwave fabric (§3.1,
// §3.3, Appendices B and C.1): coarse-WDM wavelength grids, the transceiver
// generations of Fig 8, optical circulators, and the optical link-budget
// engine that the control plane uses to validate circuits before bringing
// them up. All powers are in dBm and all losses/ratios in dB unless noted.
package optics

import "fmt"

// Grid is a coarse wavelength-division-multiplexing grid: a set of channel
// center wavelengths within the O-band around 1300 nm.
type Grid struct {
	Name      string
	SpacingNM float64
	Channels  []float64 // center wavelengths, nm
}

// CWDM4 returns the standard 4-channel, 20 nm spacing grid used by the DCN
// transceivers (1271/1291/1311/1331 nm).
func CWDM4() Grid {
	return Grid{
		Name:      "CWDM4",
		SpacingNM: 20,
		Channels:  []float64{1271, 1291, 1311, 1331},
	}
}

// CWDM8 returns the paper's custom 8-channel, 10 nm spacing grid: twice the
// lanes of CWDM4 in the same 80 nm spectral width (§3.3.1).
func CWDM8() Grid {
	return Grid{
		Name:      "CWDM8",
		SpacingNM: 10,
		Channels:  []float64{1271, 1281, 1291, 1301, 1311, 1321, 1331, 1341},
	}
}

// SpectralWidthNM returns the span from the lowest to the highest channel
// center plus one spacing (the occupied spectral width).
func (g Grid) SpectralWidthNM() float64 {
	if len(g.Channels) == 0 {
		return 0
	}
	return g.Channels[len(g.Channels)-1] - g.Channels[0] + g.SpacingNM
}

// Lanes returns the number of wavelength channels.
func (g Grid) Lanes() int { return len(g.Channels) }

// Validate checks channel ordering and spacing consistency.
func (g Grid) Validate() error {
	for i := 1; i < len(g.Channels); i++ {
		if g.Channels[i] <= g.Channels[i-1] {
			return fmt.Errorf("optics: grid %s channels not ascending", g.Name)
		}
		if d := g.Channels[i] - g.Channels[i-1]; d != g.SpacingNM {
			return fmt.Errorf("optics: grid %s spacing %g != %g", g.Name, d, g.SpacingNM)
		}
	}
	return nil
}

// Overlaps reports whether two grids share any channel center (interop
// across generations requires a shared grid subset; §3.3.1 "backward
// compatibility ... careful design of the wavelength grid").
func (g Grid) Overlaps(o Grid) bool {
	for _, a := range g.Channels {
		for _, b := range o.Channels {
			if a == b {
				return true
			}
		}
	}
	return false
}

// DispersionPsPerNMKM returns the chromatic dispersion coefficient of
// standard single-mode fiber at wavelength λ (nm) using the usual G.652
// Sellmeier slope approximation around the 1310 nm zero-dispersion point.
func DispersionPsPerNMKM(lambdaNM float64) float64 {
	const s0 = 0.092 // ps/(nm²·km) dispersion slope
	const l0 = 1310.0
	return s0 / 4 * (lambdaNM - l0*l0*l0/(lambdaNM*lambdaNM))
}
