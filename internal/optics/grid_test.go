package optics

import (
	"math"
	"testing"
)

func TestCWDM4Grid(t *testing.T) {
	g := CWDM4()
	if g.Lanes() != 4 {
		t.Fatalf("lanes = %d", g.Lanes())
	}
	if g.SpacingNM != 20 {
		t.Errorf("spacing = %v", g.SpacingNM)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Channels[2] != 1311 {
		t.Errorf("channel 2 = %v, want 1311", g.Channels[2])
	}
}

func TestCWDM8Grid(t *testing.T) {
	g := CWDM8()
	if g.Lanes() != 8 {
		t.Fatalf("lanes = %d", g.Lanes())
	}
	if g.SpacingNM != 10 {
		t.Errorf("spacing = %v", g.SpacingNM)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridsShareSpectralWidth(t *testing.T) {
	// §3.3.1: CWDM8 doubles the lanes "within the same spectral width
	// (80nm) as a standard CWDM4 transceiver".
	if w4, w8 := CWDM4().SpectralWidthNM(), CWDM8().SpectralWidthNM(); w4 != w8 {
		t.Fatalf("CWDM4 width %v != CWDM8 width %v", w4, w8)
	}
	if w := CWDM4().SpectralWidthNM(); w != 80 {
		t.Fatalf("spectral width = %v, want 80", w)
	}
}

func TestGridsOverlapForInterop(t *testing.T) {
	if !CWDM4().Overlaps(CWDM8()) {
		t.Fatal("CWDM4 and CWDM8 share no channels; interop impossible")
	}
}

func TestGridValidateRejectsBadSpacing(t *testing.T) {
	g := Grid{Name: "bad", SpacingNM: 20, Channels: []float64{1271, 1301}}
	if err := g.Validate(); err == nil {
		t.Fatal("inconsistent spacing accepted")
	}
	g2 := Grid{Name: "bad2", SpacingNM: 20, Channels: []float64{1291, 1271}}
	if err := g2.Validate(); err == nil {
		t.Fatal("descending channels accepted")
	}
}

func TestEmptyGrid(t *testing.T) {
	var g Grid
	if g.SpectralWidthNM() != 0 || g.Lanes() != 0 {
		t.Fatal("empty grid not zero")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDispersionZeroAt1310(t *testing.T) {
	if d := DispersionPsPerNMKM(1310); math.Abs(d) > 1e-9 {
		t.Fatalf("D(1310) = %v, want 0", d)
	}
	// Negative below, positive above the zero-dispersion wavelength.
	if DispersionPsPerNMKM(1271) >= 0 {
		t.Error("D(1271) should be negative")
	}
	if DispersionPsPerNMKM(1341) <= 0 {
		t.Error("D(1341) should be positive")
	}
	// Band edge magnitude is a few ps/nm/km.
	if d := math.Abs(DispersionPsPerNMKM(1271)); d < 1 || d > 6 {
		t.Errorf("D(1271) = %v ps/nm/km, implausible", d)
	}
}
