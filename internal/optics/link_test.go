package optics

import (
	"errors"
	"math"
	"testing"
)

func testModules(t *testing.T) (*Transceiver, *Transceiver) {
	t.Helper()
	g, err := GenerationByName("2x200G-bidi-CWDM4")
	if err != nil {
		t.Fatal(err)
	}
	return NewTransceiver(g), NewTransceiver(g)
}

func TestBidiLinkBudgetPositiveMargin(t *testing.T) {
	a, b := testModules(t)
	l := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 1.0)
	bud, err := l.BudgetTowardB()
	if err != nil {
		t.Fatal(err)
	}
	if bud.MarginDB <= 0 {
		t.Fatalf("production-style link has negative margin: %+v", bud)
	}
	if bud.PathLossDB <= 0 {
		t.Fatal("path loss not positive")
	}
	// Loss components: 2×circulator (1.6) + 2×connector (0.6) + OCS (1.8)
	// + 1 km fiber (0.35) ≈ 4.35 dB.
	if math.Abs(bud.PathLossDB-4.35) > 0.01 {
		t.Errorf("path loss = %v dB, want ≈4.35", bud.PathLossDB)
	}
}

func TestBidiBudgetSymmetric(t *testing.T) {
	a, b := testModules(t)
	l := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 1.0)
	f, _ := l.BudgetTowardB()
	r, _ := l.BudgetTowardA()
	if math.Abs(f.PathLossDB-r.PathLossDB) > 1e-9 {
		t.Fatalf("asymmetric loss: %v vs %v", f.PathLossDB, r.PathLossDB)
	}
	if math.Abs(f.MPIDB-r.MPIDB) > 1e-9 {
		t.Fatalf("asymmetric MPI on a symmetric link: %v vs %v", f.MPIDB, r.MPIDB)
	}
}

func TestBidiMPIInPlausibleRange(t *testing.T) {
	// Fig 11 sweeps MPI from −35 to −29 dB; a production link with the
	// re-engineered circulator should land in or below that band.
	a, b := testModules(t)
	l := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 1.0)
	bud, _ := l.BudgetTowardB()
	if bud.MPIDB > -25 || bud.MPIDB < -55 {
		t.Fatalf("MPI = %.1f dB, outside plausible bidi range", bud.MPIDB)
	}
}

func TestDuplexLinkHasNegligibleMPI(t *testing.T) {
	a, b := testModules(t)
	l := NewDuplexLink(a, b, 1.8, -46, 1.0)
	bud, err := l.BudgetTowardB()
	if err != nil {
		t.Fatal(err)
	}
	if bud.MPIDB > -100 {
		t.Fatalf("duplex link MPI = %v dB, want negligible", bud.MPIDB)
	}
}

func TestBidiMPIWorseThanDuplex(t *testing.T) {
	a, b := testModules(t)
	bidi := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 1.0)
	dup := NewDuplexLink(a, b, 1.8, -46, 1.0)
	bb, _ := bidi.BudgetTowardB()
	db, _ := dup.BudgetTowardB()
	if bb.MPIDB <= db.MPIDB {
		t.Fatal("bidi link should have more MPI than duplex")
	}
}

func TestWorseOCSReturnLossWorsensMPI(t *testing.T) {
	// §4.1.1: "This stringent return loss requirement stems from the use of
	// bidirectional links" — degrade the OCS return loss and MPI must rise.
	a, b := testModules(t)
	good := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 1.0)
	bad := NewBidiLink(a, b, DefaultCirculator(), 1.8, -30, 1.0)
	gb, _ := good.BudgetTowardB()
	bb, _ := bad.BudgetTowardB()
	if bb.MPIDB <= gb.MPIDB {
		t.Fatalf("MPI with −30 dB RL (%v) not worse than with −46 dB (%v)", bb.MPIDB, gb.MPIDB)
	}
}

func TestTelecomCirculatorWorsensMPI(t *testing.T) {
	a, b := testModules(t)
	good := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 1.0)
	bad := NewBidiLink(a, b, TelecomCirculator(), 1.8, -46, 1.0)
	gb, _ := good.BudgetTowardB()
	bb, _ := bad.BudgetTowardB()
	if bb.MPIDB <= gb.MPIDB {
		t.Fatal("legacy telecom circulator should worsen MPI")
	}
}

func TestHigherOCSLossReducesMargin(t *testing.T) {
	a, b := testModules(t)
	l1 := NewBidiLink(a, b, DefaultCirculator(), 1.0, -46, 1.0)
	l2 := NewBidiLink(a, b, DefaultCirculator(), 3.0, -46, 1.0)
	b1, _ := l1.BudgetTowardB()
	b2, _ := l2.BudgetTowardB()
	if math.Abs((b1.MarginDB-b2.MarginDB)-2.0) > 1e-9 {
		t.Fatalf("margin delta = %v, want 2 dB", b1.MarginDB-b2.MarginDB)
	}
}

func TestDispersionPenaltyScalesWithRate(t *testing.T) {
	gOld, _ := GenerationByName("100G-CWDM4")        // 25G NRZ lanes
	gNew, _ := GenerationByName("2x400G-bidi-CWDM4") // 100G PAM4 lanes
	a25, b25 := NewTransceiver(gOld), NewTransceiver(gOld)
	a100, b100 := NewTransceiver(gNew), NewTransceiver(gNew)
	l25 := NewBidiLink(a25, b25, DefaultCirculator(), 1.8, -46, 2.0)
	l100 := NewBidiLink(a100, b100, DefaultCirculator(), 1.8, -46, 2.0)
	p25, _ := l25.BudgetTowardB()
	p100, _ := l100.BudgetTowardB()
	if p100.DispersionPenaltyDB <= p25.DispersionPenaltyDB {
		t.Fatal("dispersion penalty should grow with lane rate")
	}
	// Calibration: ≈1 dB for 100G PAM4 at 2 km, negligible for 25G NRZ.
	if p100.DispersionPenaltyDB < 0.5 || p100.DispersionPenaltyDB > 2 {
		t.Errorf("100G penalty = %v dB", p100.DispersionPenaltyDB)
	}
	if p25.DispersionPenaltyDB > 0.3 {
		t.Errorf("25G penalty = %v dB", p25.DispersionPenaltyDB)
	}
}

func TestDispersionPenaltyCapped(t *testing.T) {
	g, _ := GenerationByName("800G-bidi-CWDM8")
	a, b := NewTransceiver(g), NewTransceiver(g)
	l := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 100) // absurd reach
	bud, _ := l.BudgetTowardB()
	if bud.DispersionPenaltyDB > 6 {
		t.Fatalf("penalty %v dB not capped", bud.DispersionPenaltyDB)
	}
}

func TestZeroFiberNoDispersionPenalty(t *testing.T) {
	a, b := testModules(t)
	l := NewBidiLink(a, b, DefaultCirculator(), 1.8, -46, 0)
	bud, _ := l.BudgetTowardB()
	if bud.DispersionPenaltyDB != 0 {
		t.Fatalf("penalty = %v with zero fiber", bud.DispersionPenaltyDB)
	}
}

func TestBudgetNilEndpoint(t *testing.T) {
	l := &Link{}
	if _, err := l.BudgetTowardB(); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestElementConstructors(t *testing.T) {
	if c := Connector(); c.LossDB != 0.3 || c.ReflectDB != -45 {
		t.Errorf("Connector = %+v", c)
	}
	if f := FiberSpan(2); math.Abs(f.LossDB-0.7) > 1e-12 || f.ReflectDB != NoReflection {
		t.Errorf("FiberSpan(2) = %+v", f)
	}
	if o := OCSElement(1.8, -46); o.LossDB != 1.8 || o.ReflectDB != -46 {
		t.Errorf("OCSElement = %+v", o)
	}
}
