package optics

import (
	"errors"
	"math"
)

// Element is one passive component on the optical path between two
// transceivers: its through loss and the reflection at its input interface.
// ReflectDB is a (negative) return loss; NoReflection marks interfaces with
// negligible reflection.
type Element struct {
	Name      string
	LossDB    float64
	ReflectDB float64
}

// NoReflection is the ReflectDB value for interfaces with negligible
// reflection (e.g. a fusion splice or the fiber itself).
const NoReflection = -200.0

// Connector returns a typical physical-contact connector: 0.3 dB loss,
// −45 dB return loss.
func Connector() Element {
	return Element{Name: "connector", LossDB: 0.3, ReflectDB: -45}
}

// FiberSpan returns a single-mode fiber span of the given length with
// 0.35 dB/km O-band attenuation and negligible reflection.
func FiberSpan(km float64) Element {
	return Element{Name: "fiber", LossDB: 0.35 * km, ReflectDB: NoReflection}
}

// OCSElement returns the OCS as a path element: its measured insertion loss
// for this cross-connection and the port return loss (Fig 10).
func OCSElement(insertionLossDB, returnLossDB float64) Element {
	return Element{Name: "ocs", LossDB: insertionLossDB, ReflectDB: returnLossDB}
}

// Link is one optical path between transceivers A and B. For bidi links
// both directions share the element chain and each end has a circulator;
// duplex links (CircA/CircB nil) use separate strands per direction and see
// far less MPI.
type Link struct {
	A, B         *Transceiver
	CircA, CircB *Circulator
	// Elements are ordered from A to B, excluding the circulators.
	Elements []Element
	// FiberKM is the total fiber length, used for the dispersion penalty.
	FiberKM float64
}

// ErrNoPath is returned for a link with no usable signal path.
var ErrNoPath = errors.New("optics: link has no path")

// Budget is the computed optical budget for one direction of a link.
type Budget struct {
	// RxPowerDBm is the signal power at the receiver.
	RxPowerDBm float64
	// PathLossDB is the end-to-end loss including circulators.
	PathLossDB float64
	// MPIDB is the aggregate interferer-to-signal ratio at the receiver
	// (negative; closer to zero is worse). For duplex links it reflects
	// only double-Rayleigh-order terms and is effectively negligible.
	MPIDB float64
	// DispersionPenaltyDB is the unequalized chromatic dispersion penalty
	// of the worst wavelength lane.
	DispersionPenaltyDB float64
	// MarginDB is RxPower − (sensitivity + dispersion penalty). MPI is
	// accounted separately by the DSP model, which can mitigate it.
	MarginDB float64
}

// BudgetTowardB computes the budget for the A→B direction (receiver at B).
func (l *Link) BudgetTowardB() (Budget, error) {
	return l.budget(l.A, l.B, l.CircA, l.CircB, false)
}

// BudgetTowardA computes the budget for the B→A direction (receiver at A).
func (l *Link) BudgetTowardA() (Budget, error) {
	return l.budget(l.B, l.A, l.CircB, l.CircA, true)
}

func (l *Link) budget(tx, rx *Transceiver, circTx, circRx *Circulator, reversed bool) (Budget, error) {
	if tx == nil || rx == nil {
		return Budget{}, ErrNoPath
	}
	var b Budget
	loss := 0.0
	if circTx != nil {
		loss += circTx.InsertionLossDB
	}
	for _, e := range l.Elements {
		loss += e.LossDB
	}
	if circRx != nil {
		loss += circRx.InsertionLossDB
	}
	b.PathLossDB = loss
	b.RxPowerDBm = tx.Gen.TxPowerDBm - loss
	b.MPIDB = l.mpi(rx, circRx, b.RxPowerDBm, reversed)
	b.DispersionPenaltyDB = l.dispersionPenalty(tx.Gen)
	b.MarginDB = b.RxPowerDBm - rx.Gen.SensitivityDBm - b.DispersionPenaltyDB
	return b, nil
}

// mpi aggregates the in-band interference at the receiver of a bidirectional
// link: the co-located transmitter's light leaking directly through the
// circulator (crosstalk) and its reflections off every interface in the
// path, which return through the circulator into the receiver (§4.1.2).
func (l *Link) mpi(rx *Transceiver, circRx *Circulator, rxSignalDBm float64, reversed bool) float64 {
	if circRx == nil {
		return NoReflection // duplex link: no counter-propagating Tx on the strand
	}
	txDBm := rx.Gen.TxPowerDBm // the co-located transmitter
	sumLin := 0.0

	// Direct port-1→3 crosstalk.
	sumLin += math.Pow(10, (txDBm+circRx.CrosstalkDB)/10)

	// Reflections: walk the elements from the receiver's side outward.
	elems := l.Elements
	cum := 0.0 // loss accumulated from the local circulator to the interface
	for i := range elems {
		e := elems[i]
		if reversed {
			e = elems[len(elems)-1-i]
		}
		if e.ReflectDB > NoReflection {
			// Tx→(port1→2 IL)→path to interface→reflection→path back→
			// (port2→3 IL)→Rx.
			p := txDBm - circRx.InsertionLossDB - cum + e.ReflectDB - cum - circRx.InsertionLossDB
			sumLin += math.Pow(10, p/10)
		}
		cum += e.LossDB
	}
	if sumLin <= 0 {
		return NoReflection
	}
	return 10*math.Log10(sumLin) - rxSignalDBm
}

// dispersionPenalty returns the unequalized chromatic dispersion penalty of
// the worst (band-edge) lane. The penalty grows with the square of the
// symbol rate and linearly with accumulated dispersion, matching the paper's
// observation that dispersion "is an issue for data rates above 100 Gb/s for
// the link lengths used" over the 80 nm CWDM spectral range (§3.3.1). The
// DSP's MLSE equalizer reduces it (see dsp.Equalizer).
func (l *Link) dispersionPenalty(gen Generation) float64 {
	if len(gen.Grid.Channels) == 0 || l.FiberKM <= 0 {
		return 0
	}
	worst := 0.0
	for _, lambda := range gen.Grid.Channels {
		d := math.Abs(DispersionPsPerNMKM(lambda)) * l.FiberKM // ps/nm accumulated
		if d > worst {
			worst = d
		}
	}
	symbolRate := gen.LaneRateGbps / float64(gen.Modulation.BitsPerSymbol()) // GBd
	// Calibration: 100G PAM4 (50 GBd) at the 1271 nm band edge over 2 km
	// (≈7.5 ps/nm) costs about 1 dB unequalized.
	penalty := 1.0 * (symbolRate / 50) * (symbolRate / 50) * worst / 7.5
	if penalty > 6 {
		penalty = 6 // beyond this the eye is closed; cap keeps sweeps sane
	}
	return penalty
}

// NewBidiLink assembles a single-strand bidirectional link through an OCS:
// transceiver A — circulator — connectors/fiber — OCS — fiber/connectors —
// circulator — transceiver B. ocsLossDB/ocsReturnDB come from the OCS model
// for the specific cross-connection in use.
func NewBidiLink(a, b *Transceiver, circ Circulator, ocsLossDB, ocsReturnDB, fiberKM float64) *Link {
	ca, cb := circ, circ
	half := fiberKM / 2
	return &Link{
		A: a, B: b, CircA: &ca, CircB: &cb, FiberKM: fiberKM,
		Elements: []Element{
			Connector(),
			FiberSpan(half),
			OCSElement(ocsLossDB, ocsReturnDB),
			FiberSpan(half),
			Connector(),
		},
	}
}

// NewDuplexLink assembles a classic two-strand duplex link through an OCS
// (one strand per direction, no circulators).
func NewDuplexLink(a, b *Transceiver, ocsLossDB, ocsReturnDB, fiberKM float64) *Link {
	half := fiberKM / 2
	return &Link{
		A: a, B: b, FiberKM: fiberKM,
		Elements: []Element{
			Connector(),
			FiberSpan(half),
			OCSElement(ocsLossDB, ocsReturnDB),
			FiberSpan(half),
			Connector(),
		},
	}
}
