package optics

import (
	"errors"
	"testing"
)

func TestRoadmapBandwidthGrowth(t *testing.T) {
	// Fig 8: bandwidth grew 20× from 40G QSFP+ to 800G OSFP.
	rm := Roadmap()
	first, last := rm[0], rm[len(rm)-1]
	if ratio := last.TotalGbps() / first.TotalGbps(); ratio != 20 {
		t.Fatalf("bandwidth growth = %v×, want 20×", ratio)
	}
	if first.TotalGbps() != 40 || last.TotalGbps() != 800 {
		t.Fatalf("endpoints %v / %v Gbps", first.TotalGbps(), last.TotalGbps())
	}
}

func TestRoadmapEnergyEfficiencyImproves(t *testing.T) {
	// "continuous improvement in energy efficiency": W per Gbps must fall
	// monotonically through the roadmap.
	rm := Roadmap()
	prev := rm[0].PowerW / rm[0].TotalGbps()
	for _, g := range rm[1:] {
		eff := g.PowerW / g.TotalGbps()
		if eff >= prev {
			t.Fatalf("%s efficiency %.4f W/Gbps not better than predecessor %.4f", g.Name, eff, prev)
		}
		prev = eff
	}
}

func TestRoadmapGridsValidate(t *testing.T) {
	for _, g := range Roadmap() {
		if err := g.Grid.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestGenerationByName(t *testing.T) {
	g, err := GenerationByName("800G-bidi-CWDM8")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Bidi || g.FibersPerModule != 1 || g.Grid.Lanes() != 8 {
		t.Fatalf("CWDM8 module = %+v", g)
	}
	if _, err := GenerationByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestBidiModulesUseEML(t *testing.T) {
	// Appendix C.1: EMLs were critical for mitigating MPI in bidi links.
	for _, g := range Roadmap() {
		if g.Bidi && g.Laser != EML {
			t.Errorf("%s is bidi but uses %v", g.Name, g.Laser)
		}
	}
}

func TestBackwardCompatModes(t *testing.T) {
	g, _ := GenerationByName("2x400G-bidi-CWDM4")
	tr := NewTransceiver(g)
	want := map[RateCapability]bool{
		{100, PAM4}: true, {50, PAM4}: true, {25, NRZ}: true,
	}
	if len(tr.Modes) != len(want) {
		t.Fatalf("modes = %v", tr.Modes)
	}
	for _, m := range tr.Modes {
		if !want[m] {
			t.Errorf("unexpected mode %v", m)
		}
	}
}

func TestNegotiateAcrossGenerations(t *testing.T) {
	// §3.3.1: a 100G-per-lane module must interoperate with 25G NRZ legacy
	// gear and run 100G with its own generation.
	newGen, _ := GenerationByName("2x400G-bidi-CWDM4")
	oldGen, _ := GenerationByName("100G-CWDM4")
	a, b := NewTransceiver(newGen), NewTransceiver(oldGen)

	mode, err := a.Negotiate(b)
	if err != nil {
		t.Fatal(err)
	}
	if mode.LaneRateGbps != 25 || mode.Modulation != NRZ {
		t.Fatalf("cross-generation mode = %+v, want 25G NRZ", mode)
	}

	mode, err = a.Negotiate(NewTransceiver(newGen))
	if err != nil {
		t.Fatal(err)
	}
	if mode.LaneRateGbps != 100 || mode.Modulation != PAM4 {
		t.Fatalf("same-generation mode = %+v, want 100G PAM4", mode)
	}
}

func TestNegotiateOrderOfMagnitudeSpan(t *testing.T) {
	// §6: "we have maintained interoperability across an order of magnitude
	// difference in data rates (400 Gb/s vs. 40 Gb/s)" — the mode chain
	// must connect adjacent generations all the way down.
	rm := Roadmap()
	for i := 1; i < len(rm); i++ {
		a, b := NewTransceiver(rm[i-1]), NewTransceiver(rm[i])
		if _, err := a.Negotiate(b); err != nil {
			t.Errorf("generations %s and %s cannot interoperate", rm[i-1].Name, rm[i].Name)
		}
	}
}

func TestNegotiateIncompatible(t *testing.T) {
	a := &Transceiver{Modes: []RateCapability{{100, PAM4}}}
	b := &Transceiver{Modes: []RateCapability{{10, NRZ}}}
	if _, err := a.Negotiate(b); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("err = %v", err)
	}
}

func TestModulationHelpers(t *testing.T) {
	if NRZ.BitsPerSymbol() != 1 || PAM4.BitsPerSymbol() != 2 {
		t.Fatal("bits per symbol wrong")
	}
	if NRZ.String() != "NRZ" || PAM4.String() != "PAM4" {
		t.Fatal("modulation names wrong")
	}
	if Modulation(5).String() == "" {
		t.Fatal("unknown modulation should still print")
	}
	if DML.String() != "DML" || EML.String() != "EML" {
		t.Fatal("laser names wrong")
	}
}

func TestCirculatorVariants(t *testing.T) {
	d, tc := DefaultCirculator(), TelecomCirculator()
	// The re-engineered part must beat the telecom part on both return loss
	// and crosstalk (§3.3.1).
	if d.ReturnLossDB >= tc.ReturnLossDB {
		t.Error("re-engineered circulator return loss not improved")
	}
	if d.CrosstalkDB >= tc.CrosstalkDB {
		t.Error("re-engineered circulator crosstalk not improved")
	}
}
