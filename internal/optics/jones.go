package optics

import "math"

// This file implements the polarization optics of Appendix B with Jones
// calculus: polarizing beam splitters, the non-reciprocal Faraday rotator,
// and the half-wave plate that together form the integrated optical
// circulator. The circulator model in transceiver.go captures the
// engineering parameters (loss, return loss, crosstalk); this file verifies
// the *physics* — that the element stack actually routes port 1 → 2 and
// port 2 → 3 for arbitrary input polarization, which is what lets one fiber
// strand carry both directions.

// Jones is a polarization state: complex amplitudes of the s and p field
// components.
type Jones struct {
	S, P complex128
}

// Power returns the total optical power |s|² + |p|².
func (j Jones) Power() float64 {
	return real(j.S)*real(j.S) + imag(j.S)*imag(j.S) +
		real(j.P)*real(j.P) + imag(j.P)*imag(j.P)
}

// JonesMatrix is a 2×2 polarization transfer matrix.
type JonesMatrix struct {
	SS, SP, PS, PP complex128
}

// Apply transforms a polarization state.
func (m JonesMatrix) Apply(j Jones) Jones {
	return Jones{
		S: m.SS*j.S + m.SP*j.P,
		P: m.PS*j.S + m.PP*j.P,
	}
}

// Mul composes two matrices (m then n ⇒ n·m).
func (m JonesMatrix) Mul(n JonesMatrix) JonesMatrix {
	return JonesMatrix{
		SS: n.SS*m.SS + n.SP*m.PS,
		SP: n.SS*m.SP + n.SP*m.PP,
		PS: n.PS*m.SS + n.PP*m.PS,
		PP: n.PS*m.SP + n.PP*m.PP,
	}
}

// Rotator returns the Jones matrix of a polarization rotation by theta
// radians.
func Rotator(theta float64) JonesMatrix {
	c := complex(math.Cos(theta), 0)
	s := complex(math.Sin(theta), 0)
	return JonesMatrix{SS: c, SP: -s, PS: s, PP: c}
}

// FaradayRotator models the magneto-optic rotator: the rotation angle has
// the same handedness in the lab frame regardless of propagation direction,
// which is what makes the device non-reciprocal (Appendix B: "the sign of
// the rotation depending on the direction of light propagation").
type FaradayRotator struct {
	// Theta is the rotation for forward propagation, radians.
	Theta float64
}

// Forward returns the Jones matrix for forward propagation.
func (f FaradayRotator) Forward() JonesMatrix { return Rotator(f.Theta) }

// Backward returns the Jones matrix seen by a backward-propagating wave:
// in the wave's own frame the rotation sense is reversed... but for a
// Faraday rotator it is NOT — the lab-frame rotation keeps its sign, so in
// the backward wave's frame the matrix is the same rotation again (a
// reciprocal element would invert it).
func (f FaradayRotator) Backward() JonesMatrix { return Rotator(f.Theta) }

// HalfWavePlate models the reciprocal birefringent wave plate with its fast
// axis at angle axis/2, rotating polarization by `axis` for forward
// propagation and −`axis` for backward propagation (in the backward wave's
// frame).
type HalfWavePlate struct {
	// Theta is the polarization rotation for forward propagation, radians.
	Theta float64
}

// Forward returns the forward Jones matrix.
func (h HalfWavePlate) Forward() JonesMatrix { return Rotator(h.Theta) }

// Backward returns the matrix for backward propagation: reciprocal, so the
// rotation reverses in the propagating frame.
func (h HalfWavePlate) Backward() JonesMatrix { return Rotator(-h.Theta) }

// CirculatorCore is the FR+HWP stack of Fig B.1b: a 45° Faraday rotator
// followed by a 45° half-wave plate.
type CirculatorCore struct {
	FR  FaradayRotator
	HWP HalfWavePlate
}

// NewCirculatorCore returns the Appendix B design: −45° Faraday rotation
// cancelled by +45° wave-plate rotation in the forward direction.
func NewCirculatorCore() CirculatorCore {
	return CirculatorCore{
		FR:  FaradayRotator{Theta: -math.Pi / 4},
		HWP: HalfWavePlate{Theta: math.Pi / 4},
	}
}

// Forward is the port-1→2 pass: FR then HWP. For the Appendix B design the
// two rotations cancel, so the transmit polarization is unchanged.
func (c CirculatorCore) Forward() JonesMatrix {
	return c.FR.Forward().Mul(c.HWP.Forward())
}

// Backward is the port-2→3 pass: HWP then FR, with the reciprocal plate
// reversing its rotation and the non-reciprocal rotator keeping its sign.
// The net effect is a 90° rotation: s-polarized light exits p-polarized and
// vice versa, so the return beam takes the polarizing-beam-splitter exit
// toward the receiver instead of back into the laser.
func (c CirculatorCore) Backward() JonesMatrix {
	return c.HWP.Backward().Mul(c.FR.Backward())
}

// RouteForward reports how the forward (port-1) launch power splits at the
// output polarizing beam splitter: the fraction that kept its launch
// polarization continues to port 2 (the fiber); rotated power is dumped.
// The input PBS guarantees the launch is polarized, so only the P
// component of `in` is considered (the Tx laser convention of Fig B.1).
func (c CirculatorCore) RouteForward(in Jones) (toPort2, leaked float64) {
	launch := Jones{P: in.P} // input PBS passes p-polarization to the core
	out := c.Forward().Apply(launch)
	kept := cmplxPow(out.P)
	return kept, out.Power() - kept
}

// RouteBackward reports how the backward (port-2 input) power splits: the
// input PBS separates the unpolarized fiber return into its s and p
// components, each traverses the core, and each component that *flipped*
// polarization is routed by the output PBS pair toward port 3 (the
// receiver) while unflipped power leaks back toward port 1 (the laser).
// For the ideal core the backward pass rotates every state by 90°, so all
// power reaches port 3 — this is the non-reciprocity that makes single-
// strand bidirectional links possible.
func (c CirculatorCore) RouteBackward(in Jones) (toPort3, backToPort1 float64) {
	m := c.Backward()
	// s-polarized component of the return light.
	outS := m.Apply(Jones{S: in.S})
	toPort3 += cmplxPow(outS.P)     // flipped s→p: routed to the receiver
	backToPort1 += cmplxPow(outS.S) // unflipped: leaks toward the laser
	// p-polarized component.
	outP := m.Apply(Jones{P: in.P})
	toPort3 += cmplxPow(outP.S)
	backToPort1 += cmplxPow(outP.P)
	return toPort3, backToPort1
}

func cmplxPow(c complex128) float64 {
	return real(c)*real(c) + imag(c)*imag(c)
}

// CirculatorIsolationDB returns the worst-case port-2→1 isolation of a core
// whose Faraday rotation errs by errRad from the ideal ±45° (manufacturing
// or temperature drift). Perfect rotation gives infinite isolation; the
// backward pass then rotates by 90°±err, leaking sin²(err) of the power
// back into the transmitter.
func CirculatorIsolationDB(errRad float64) float64 {
	leak := math.Sin(errRad) * math.Sin(errRad)
	if leak <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(leak)
}
