package collective

import (
	"errors"
	"math"
	"testing"
)

func testHier() Hierarchical {
	return Hierarchical{
		Pods:     4,
		PodTorus: Torus{Dims: []int{16, 16, 16}, Link: ICILink()},
		DCN:      DCNLink(),
	}
}

func TestHierarchicalAllReduceComposition(t *testing.T) {
	h := testHier()
	s := 256e6
	total, err := h.AllReduceTime(s)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := h.PodTorus.ReduceScatterTime(s)
	ag, _ := h.PodTorus.AllGatherTime(s)
	ring := Ring{N: 4, Link: h.DCN}
	cross, _ := ring.AllReduceTime(s / 4096)
	want := rs + ag + cross
	if math.Abs(total-want)/want > 1e-12 {
		t.Fatalf("total %v != composition %v", total, want)
	}
}

func TestHierarchicalSinglePodNoDCN(t *testing.T) {
	h := testHier()
	h.Pods = 1
	s := 256e6
	total, err := h.AllReduceTime(s)
	if err != nil {
		t.Fatal(err)
	}
	ar, _ := h.PodTorus.AllReduceTime(s)
	if math.Abs(total-ar)/ar > 1e-12 {
		t.Fatalf("single pod %v != pod allreduce %v", total, ar)
	}
	f, _ := h.DCNFraction(s)
	if f != 0 {
		t.Fatalf("DCN fraction = %v for single pod", f)
	}
}

func TestHierarchicalDCNOnCriticalPath(t *testing.T) {
	// §2.2.2: DCN transfers are on the critical path — the fraction must
	// be substantial despite the tiny shard, because DCN bandwidth is ~80×
	// lower.
	h := testHier()
	f, err := h.DCNFraction(256e6)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0.01 || f >= 1 {
		t.Fatalf("DCN fraction = %v", f)
	}
}

func TestHierarchicalErrors(t *testing.T) {
	h := testHier()
	h.Pods = 0
	if _, err := h.AllReduceTime(1); !errors.Is(err, ErrBadRing) {
		t.Fatalf("err = %v", err)
	}
	h2 := testHier()
	if _, err := h2.SpeedupFromDCNTE(1e8, 0); !errors.Is(err, ErrBadRing) {
		t.Fatalf("err = %v", err)
	}
}

func TestDCNTopologyEngineeringSpeedup(t *testing.T) {
	// Doubling DCN bandwidth must speed the hierarchical collective up,
	// but by less than 2× (ICI phases unchanged) — the paper's motivation
	// for co-optimizing DCN topology with job placement.
	h := testHier()
	sp, err := h.SpeedupFromDCNTE(256e6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1 || sp >= 2 {
		t.Fatalf("speedup = %v, want in (1,2)", sp)
	}
}

func TestMorePodsMoreDCNTime(t *testing.T) {
	h2, h8 := testHier(), testHier()
	h2.Pods, h8.Pods = 2, 8
	t2, _ := h2.AllReduceTime(256e6)
	t8, _ := h8.AllReduceTime(256e6)
	if t8 <= t2 {
		t.Fatalf("8 pods (%v) not slower than 2 pods (%v)", t8, t2)
	}
}
