package collective

import "fmt"

// Additional collectives and an asymmetric-torus variant. Slices composed
// by the lightwave fabric can have very different per-dimension ring
// lengths (4×4×256), and scale-out jobs mix ICI and DCN dimensions with
// very different link classes; AsymmetricTorus models a torus whose
// dimensions have distinct links.

// BroadcastTime returns the pipelined-ring broadcast time of S bytes from
// one root around a ring: the payload is chunked and streamed, so the time
// approaches S/B plus pipeline fill.
func (r Ring) BroadcastTime(s float64, chunks int) (float64, error) {
	if err := r.check(); err != nil {
		return 0, err
	}
	if r.N == 1 || s <= 0 {
		return 0, nil
	}
	if chunks < 1 {
		chunks = 1
	}
	chunk := s / float64(chunks)
	steps := float64(r.N - 2 + chunks)
	return steps * (chunk/r.Link.BandwidthBps + r.Link.LatencySec), nil
}

// BarrierTime returns the time of a synchronization barrier implemented as
// a zero-payload all-reduce: purely latency-bound.
func (r Ring) BarrierTime() (float64, error) {
	if err := r.check(); err != nil {
		return 0, err
	}
	return 2 * float64(r.N-1) * r.Link.LatencySec, nil
}

// AsymmetricTorus is a torus whose dimensions use different link classes —
// e.g. intra-pod ICI dimensions plus a cross-pod DCN dimension.
type AsymmetricTorus struct {
	Dims  []int
	Links []Link
}

// Validate checks the dimension/link pairing.
func (t AsymmetricTorus) Validate() error {
	if len(t.Dims) != len(t.Links) {
		return fmt.Errorf("%w: %d dims, %d links", ErrBadRing, len(t.Dims), len(t.Links))
	}
	for i, d := range t.Dims {
		if d < 1 || t.Links[i].BandwidthBps <= 0 {
			return fmt.Errorf("%w: dim %d", ErrBadRing, i)
		}
	}
	return nil
}

// Nodes returns the torus size.
func (t AsymmetricTorus) Nodes() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// AllReduceTime composes per-dimension ring phases like Torus.AllReduceTime
// but with each dimension's own link class.
func (t AsymmetricTorus) AllReduceTime(s float64) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	total := 0.0
	cur := s
	sizes := make([]float64, 0, len(t.Dims))
	for i, d := range t.Dims {
		r := Ring{N: d, Link: t.Links[i]}
		rt, err := r.ReduceScatterTime(cur)
		if err != nil {
			return 0, err
		}
		total += rt
		sizes = append(sizes, cur)
		cur /= float64(d)
	}
	for i := len(t.Dims) - 1; i >= 0; i-- {
		r := Ring{N: t.Dims[i], Link: t.Links[i]}
		at, err := r.AllGatherTime(sizes[i])
		if err != nil {
			return 0, err
		}
		total += at
	}
	return total, nil
}

// BottleneckDim returns the index of the dimension contributing the most
// time to an all-reduce of S bytes — the dimension topology engineering
// should widen first.
func (t AsymmetricTorus) BottleneckDim(s float64) (int, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	worst, worstT := -1, -1.0
	cur := s
	for i, d := range t.Dims {
		r := Ring{N: d, Link: t.Links[i]}
		rt, err := r.ReduceScatterTime(cur)
		if err != nil {
			return 0, err
		}
		if 2*rt > worstT {
			worst, worstT = i, 2*rt
		}
		cur /= float64(d)
	}
	return worst, nil
}
