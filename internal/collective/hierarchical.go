package collective

import "fmt"

// Hierarchical models the hybrid ICI-DCN collective of §2.2.2 / Fig 2: for
// models too large for one superpod, each pod reduce-scatters over its ICI
// torus, the pods all-reduce the shards over the DCN (two counter-rotating
// rings, Fig 2c), and each pod all-gathers the result over ICI. "The
// transfers over the DCN ... are still on the critical path and delays can
// substantially affect the model throughput."
type Hierarchical struct {
	// Pods is the number of superpods in the job.
	Pods int
	// PodTorus is the intra-pod slice topology.
	PodTorus Torus
	// DCN is the per-chip effective cross-pod link class.
	DCN Link
}

// AllReduceTime returns the end-to-end hierarchical all-reduce time for S
// bytes per chip.
func (h Hierarchical) AllReduceTime(s float64) (float64, error) {
	if h.Pods < 1 {
		return 0, fmt.Errorf("%w: pods %d", ErrBadRing, h.Pods)
	}
	rs, err := h.PodTorus.ReduceScatterTime(s)
	if err != nil {
		return 0, err
	}
	ag, err := h.PodTorus.AllGatherTime(s)
	if err != nil {
		return 0, err
	}
	cross := 0.0
	if h.Pods > 1 {
		shard := s / float64(h.PodTorus.Nodes())
		ring := Ring{N: h.Pods, Link: h.DCN}
		cross, err = ring.AllReduceTime(shard)
		if err != nil {
			return 0, err
		}
	}
	return rs + cross + ag, nil
}

// DCNFraction returns the share of the hierarchical all-reduce spent on the
// DCN phase — the critical-path exposure the paper optimizes with DCN-level
// topology engineering.
func (h Hierarchical) DCNFraction(s float64) (float64, error) {
	total, err := h.AllReduceTime(s)
	if err != nil || total == 0 {
		return 0, err
	}
	if h.Pods <= 1 {
		return 0, nil
	}
	shard := s / float64(h.PodTorus.Nodes())
	ring := Ring{N: h.Pods, Link: h.DCN}
	cross, err := ring.AllReduceTime(shard)
	if err != nil {
		return 0, err
	}
	return cross / total, nil
}

// SpeedupFromDCNTE returns the hierarchical all-reduce speedup obtained by
// improving the cross-pod DCN bandwidth by the given factor (the effect of
// reconfiguring the DCN lightwave fabric to add direct inter-pod trunks).
func (h Hierarchical) SpeedupFromDCNTE(s, bwFactor float64) (float64, error) {
	if bwFactor <= 0 {
		return 0, fmt.Errorf("%w: bandwidth factor %g", ErrBadRing, bwFactor)
	}
	base, err := h.AllReduceTime(s)
	if err != nil {
		return 0, err
	}
	improved := h
	improved.DCN = Link{BandwidthBps: h.DCN.BandwidthBps * bwFactor, LatencySec: h.DCN.LatencySec}
	opt, err := improved.AllReduceTime(s)
	if err != nil {
		return 0, err
	}
	return base / opt, nil
}
