// Package collective provides cost models and an event-timed simulator for
// the collective communication patterns of §2.2 and Fig 2: bidirectional
// ring reduce-scatter / all-gather / all-reduce on torus dimensions over the
// ICI, all-to-all bounds, and the hierarchical ICI-DCN all-reduce used to
// scale training across superpods. Sizes are bytes, bandwidths bytes/s,
// times seconds.
package collective

import (
	"errors"
	"fmt"
)

// Link describes one interconnect link class.
type Link struct {
	// BandwidthBps is the per-direction bandwidth in bytes per second.
	BandwidthBps float64
	// LatencySec is the per-hop latency.
	LatencySec float64
}

// ICILink returns the TPU v4 inter-chip-interconnect link class: ~50 GB/s
// per direction with sub-microsecond deterministic per-hop latency (§3.2.1:
// an OCS adds "only a small amount of deterministic latency").
func ICILink() Link {
	return Link{BandwidthBps: 50e9, LatencySec: 0.8e-6}
}

// DCNLink returns the per-chip effective datacenter-network bandwidth for
// cross-pod transfers. §2.2: the scale-up ICI provides "50–100× more
// bandwidth than the DCN" per TPU.
func DCNLink() Link {
	return Link{BandwidthBps: 0.625e9, LatencySec: 10e-6} // 80× below ICI
}

// ErrBadRing is returned for degenerate ring parameters.
var ErrBadRing = errors.New("collective: invalid ring")

// Ring models a bidirectional ring of n members over a link class. Ring
// collectives split the payload across the two directions (the red and blue
// rings of Fig 2b/2c).
type Ring struct {
	N    int
	Link Link
}

func (r Ring) check() error {
	if r.N < 1 || r.Link.BandwidthBps <= 0 {
		return fmt.Errorf("%w: n=%d bw=%g", ErrBadRing, r.N, r.Link.BandwidthBps)
	}
	return nil
}

// ReduceScatterTime returns the time to reduce-scatter S bytes per member:
// (n−1) steps, each moving S/(2n) bytes per direction.
func (r Ring) ReduceScatterTime(s float64) (float64, error) {
	if err := r.check(); err != nil {
		return 0, err
	}
	if r.N == 1 || s <= 0 {
		return 0, nil
	}
	steps := float64(r.N - 1)
	chunk := s / (2 * float64(r.N))
	return steps * (chunk/r.Link.BandwidthBps + r.Link.LatencySec), nil
}

// AllGatherTime returns the time to all-gather to S total bytes per member.
// It is symmetric to reduce-scatter.
func (r Ring) AllGatherTime(s float64) (float64, error) {
	return r.ReduceScatterTime(s)
}

// AllReduceTime returns the bidirectional-ring all-reduce time for S bytes:
// a reduce-scatter followed by an all-gather.
func (r Ring) AllReduceTime(s float64) (float64, error) {
	rs, err := r.ReduceScatterTime(s)
	if err != nil {
		return 0, err
	}
	return 2 * rs, nil
}

// Torus composes ring collectives over multiple torus dimensions.
type Torus struct {
	Dims []int
	Link Link
}

// Nodes returns the torus size.
func (t Torus) Nodes() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// AllReduceTime returns the multi-dimensional torus all-reduce time for S
// bytes per node: reduce-scatter along each dimension in turn (payload
// shrinking by the dimension size each phase), then all-gather in reverse.
func (t Torus) AllReduceTime(s float64) (float64, error) {
	if len(t.Dims) == 0 {
		return 0, nil
	}
	total := 0.0
	cur := s
	sizes := make([]float64, 0, len(t.Dims))
	for _, d := range t.Dims {
		if d < 1 {
			return 0, fmt.Errorf("%w: dim %d", ErrBadRing, d)
		}
		r := Ring{N: d, Link: t.Link}
		rt, err := r.ReduceScatterTime(cur)
		if err != nil {
			return 0, err
		}
		total += rt
		sizes = append(sizes, cur)
		cur /= float64(d)
	}
	for i := len(t.Dims) - 1; i >= 0; i-- {
		r := Ring{N: t.Dims[i], Link: t.Link}
		at, err := r.AllGatherTime(sizes[i])
		if err != nil {
			return 0, err
		}
		total += at
	}
	return total, nil
}

// ReduceScatterTime reduce-scatters S bytes per node across all dimensions.
func (t Torus) ReduceScatterTime(s float64) (float64, error) {
	total := 0.0
	cur := s
	for _, d := range t.Dims {
		r := Ring{N: d, Link: t.Link}
		rt, err := r.ReduceScatterTime(cur)
		if err != nil {
			return 0, err
		}
		total += rt
		cur /= float64(d)
	}
	return total, nil
}

// AllGatherTime all-gathers to S bytes per node across all dimensions.
func (t Torus) AllGatherTime(s float64) (float64, error) {
	// Mirror of reduce-scatter.
	return t.ReduceScatterTime(s)
}

// AllToAllTime lower-bounds an all-to-all where every node contributes S
// bytes spread uniformly over all peers: half the total payload must cross
// the minimum bisection.
func (t Torus) AllToAllTime(s float64, bisectionLinks int) (float64, error) {
	if bisectionLinks <= 0 {
		return 0, fmt.Errorf("%w: bisection %d", ErrBadRing, bisectionLinks)
	}
	n := float64(t.Nodes())
	crossing := n * s / 2
	return crossing / (float64(bisectionLinks) * t.Link.BandwidthBps), nil
}
