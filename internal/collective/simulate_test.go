package collective

import (
	"math"
	"testing"
)

func TestSimulationMatchesRingFormula(t *testing.T) {
	link := Link{BandwidthBps: 10e9, LatencySec: 2e-6}
	for _, n := range []int{2, 4, 16, 64} {
		r := Ring{N: n, Link: link}
		want, _ := r.AllReduceTime(64e6)
		got := SimulateRingAllReduce(n, 64e6, link)
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("n=%d: sim %v vs formula %v", n, got, want)
		}
	}
}

func TestSimulationMatchesTorusFormula(t *testing.T) {
	link := ICILink()
	dims := []int{4, 8, 16}
	tr := Torus{Dims: dims, Link: link}
	want, _ := tr.AllReduceTime(128e6)
	got := SimulateTorusAllReduce(dims, 128e6, link)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("sim %v vs formula %v", got, want)
	}
}

func TestSimulateDegenerate(t *testing.T) {
	if SimulateRingAllReduce(1, 1e6, ICILink()) != 0 {
		t.Fatal("1-node ring should be free")
	}
	if SimulateRingAllReduce(4, 0, ICILink()) != 0 {
		t.Fatal("zero payload should be free")
	}
}
