package collective

import "lightwave/internal/sim"

// SimulateRingAllReduce runs an event-timed simulation of the
// bidirectional-ring all-reduce: 2(n−1) steps, each a neighbor exchange of
// S/(2n) bytes per direction, with every member synchronizing at step
// boundaries (the synchronous execution model of the XLA collectives). It
// returns the completion time and is used to validate the closed-form
// model.
func SimulateRingAllReduce(n int, s float64, link Link) float64 {
	if n <= 1 || s <= 0 {
		return 0
	}
	var q sim.Queue
	chunk := s / (2 * float64(n))
	stepTime := chunk/link.BandwidthBps + link.LatencySec
	steps := 2 * (n - 1)

	// Each member posts its step completion; the barrier fires when all
	// members of the step have completed, then schedules the next step.
	var runStep func(step int)
	pending := 0
	runStep = func(step int) {
		if step >= steps {
			return
		}
		pending = n
		for m := 0; m < n; m++ {
			q.After(stepTime, func() {
				pending--
				if pending == 0 {
					runStep(step + 1)
				}
			})
		}
	}
	runStep(0)
	return float64(q.Run())
}

// SimulateTorusAllReduce composes ring simulations per dimension, mirroring
// Torus.AllReduceTime phase by phase.
func SimulateTorusAllReduce(dims []int, s float64, link Link) float64 {
	total := 0.0
	cur := s
	sizes := make([]float64, 0, len(dims))
	for _, d := range dims {
		total += simulateRingPhase(d, cur, link)
		sizes = append(sizes, cur)
		cur /= float64(d)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		total += simulateRingPhase(dims[i], sizes[i], link)
	}
	return total
}

// simulateRingPhase simulates one reduce-scatter (or all-gather) phase.
func simulateRingPhase(n int, s float64, link Link) float64 {
	if n <= 1 || s <= 0 {
		return 0
	}
	var q sim.Queue
	chunk := s / (2 * float64(n))
	stepTime := chunk/link.BandwidthBps + link.LatencySec
	steps := n - 1
	var runStep func(step int)
	pending := 0
	runStep = func(step int) {
		if step >= steps {
			return
		}
		pending = n
		for m := 0; m < n; m++ {
			q.After(stepTime, func() {
				pending--
				if pending == 0 {
					runStep(step + 1)
				}
			})
		}
	}
	runStep(0)
	return float64(q.Run())
}
