package collective

import (
	"errors"
	"math"
	"testing"
)

func TestRingReduceScatterFormula(t *testing.T) {
	r := Ring{N: 4, Link: Link{BandwidthBps: 1e9, LatencySec: 1e-6}}
	// (n-1)·(S/(2n)/B + lat) = 3·(100e6/8/1e9 + 1e-6).
	got, err := r.ReduceScatterTime(100e6)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * (100e6/8/1e9 + 1e-6)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRingAllReduceIsTwiceRS(t *testing.T) {
	r := Ring{N: 8, Link: ICILink()}
	rs, _ := r.ReduceScatterTime(1e9)
	ar, _ := r.AllReduceTime(1e9)
	if math.Abs(ar-2*rs) > 1e-15 {
		t.Fatalf("allreduce %v != 2×rs %v", ar, rs)
	}
}

func TestRingSingleMemberFree(t *testing.T) {
	r := Ring{N: 1, Link: ICILink()}
	if got, _ := r.AllReduceTime(1e9); got != 0 {
		t.Fatalf("1-member allreduce = %v", got)
	}
}

func TestRingErrors(t *testing.T) {
	r := Ring{N: 0, Link: ICILink()}
	if _, err := r.ReduceScatterTime(1); !errors.Is(err, ErrBadRing) {
		t.Errorf("err = %v", err)
	}
	r2 := Ring{N: 4}
	if _, err := r2.AllReduceTime(1); !errors.Is(err, ErrBadRing) {
		t.Errorf("err = %v", err)
	}
}

func TestRingBandwidthScaling(t *testing.T) {
	a := Ring{N: 16, Link: Link{BandwidthBps: 1e9}}
	b := Ring{N: 16, Link: Link{BandwidthBps: 2e9}}
	ta, _ := a.AllReduceTime(1e9)
	tb, _ := b.AllReduceTime(1e9)
	if math.Abs(ta/tb-2) > 1e-9 {
		t.Fatalf("doubling bandwidth: ratio %v", ta/tb)
	}
}

func TestLargeRingApproachesBandwidthBound(t *testing.T) {
	// As n→∞ (latency-free), allreduce time → S/B per the 2(n-1)/n·S/(2B)
	// limit.
	r := Ring{N: 4096, Link: Link{BandwidthBps: 1e9}}
	got, _ := r.AllReduceTime(1e9)
	want := 1.0 // S/B seconds
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("asymptotic allreduce = %v, want ≈%v", got, want)
	}
}

func TestTorusAllReduceVsSingleRing(t *testing.T) {
	// A multi-dimensional torus all-reduce beats a single flat ring of the
	// same node count (fewer latency-bound steps, same bandwidth bound).
	link := Link{BandwidthBps: 50e9, LatencySec: 1e-6}
	torus := Torus{Dims: []int{16, 16, 16}, Link: link}
	flat := Ring{N: 4096, Link: link}
	tt, err := torus.AllReduceTime(256e6)
	if err != nil {
		t.Fatal(err)
	}
	ft, _ := flat.AllReduceTime(256e6)
	if tt >= ft {
		t.Fatalf("torus %v not faster than flat ring %v", tt, ft)
	}
}

func TestTorusNodes(t *testing.T) {
	if (Torus{Dims: []int{4, 4, 256}}).Nodes() != 4096 {
		t.Fatal("Nodes wrong")
	}
	if (Torus{}).Nodes() != 1 {
		t.Fatal("empty torus nodes")
	}
}

func TestTorusAllReduceEmptyAndErrors(t *testing.T) {
	tr := Torus{Link: ICILink()}
	if got, err := tr.AllReduceTime(1e9); err != nil || got != 0 {
		t.Fatalf("empty torus: %v, %v", got, err)
	}
	bad := Torus{Dims: []int{4, 0}, Link: ICILink()}
	if _, err := bad.AllReduceTime(1e9); !errors.Is(err, ErrBadRing) {
		t.Fatalf("err = %v", err)
	}
}

func TestTorusRSThenAGEqualsAllReduce(t *testing.T) {
	tr := Torus{Dims: []int{8, 16}, Link: ICILink()}
	rs, _ := tr.ReduceScatterTime(1e8)
	ag, _ := tr.AllGatherTime(1e8)
	ar, _ := tr.AllReduceTime(1e8)
	if math.Abs(ar-(rs+ag))/ar > 1e-12 {
		t.Fatalf("allreduce %v != rs+ag %v", ar, rs+ag)
	}
}

func TestAllToAllBisectionBound(t *testing.T) {
	tr := Torus{Dims: []int{16, 16, 16}, Link: Link{BandwidthBps: 1e9}}
	got, err := tr.AllToAllTime(1e6, 512)
	if err != nil {
		t.Fatal(err)
	}
	want := 4096.0 * 1e6 / 2 / (512 * 1e9)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
	if _, err := tr.AllToAllTime(1e6, 0); err == nil {
		t.Fatal("zero bisection accepted")
	}
}

func TestICIFasterThanDCN(t *testing.T) {
	// §2.2: ICI provides 50-100× more bandwidth than the DCN per TPU.
	ratio := ICILink().BandwidthBps / DCNLink().BandwidthBps
	if ratio < 50 || ratio > 100 {
		t.Fatalf("ICI/DCN bandwidth ratio = %v, want in [50,100]", ratio)
	}
}
