package collective

import (
	"math"
	"testing"
)

func TestBroadcastPipelined(t *testing.T) {
	r := Ring{N: 16, Link: Link{BandwidthBps: 1e9, LatencySec: 1e-6}}
	// More chunks → closer to the S/B bound.
	coarse, err := r.BroadcastTime(1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := r.BroadcastTime(1e9, 64)
	if err != nil {
		t.Fatal(err)
	}
	if fine >= coarse {
		t.Fatalf("pipelining did not help: %v vs %v", fine, coarse)
	}
	bound := 1e9 / 1e9
	if fine < bound {
		t.Fatalf("broadcast %v beat the bandwidth bound %v", fine, bound)
	}
	if fine > 1.5*bound {
		t.Fatalf("fine-chunked broadcast %v far from bound %v", fine, bound)
	}
}

func TestBroadcastDegenerate(t *testing.T) {
	r := Ring{N: 1, Link: ICILink()}
	if got, _ := r.BroadcastTime(1e9, 8); got != 0 {
		t.Fatal("single-member broadcast should be free")
	}
	bad := Ring{N: 0, Link: ICILink()}
	if _, err := bad.BroadcastTime(1, 1); err == nil {
		t.Fatal("invalid ring accepted")
	}
	r2 := Ring{N: 4, Link: ICILink()}
	if got, _ := r2.BroadcastTime(1e6, 0); got <= 0 {
		t.Fatal("chunks=0 should clamp to 1")
	}
}

func TestBarrierLatencyBound(t *testing.T) {
	r := Ring{N: 64, Link: ICILink()}
	got, err := r.BarrierTime()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 63 * ICILink().LatencySec
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("barrier = %v, want %v", got, want)
	}
}

func TestAsymmetricMatchesSymmetricWhenUniform(t *testing.T) {
	dims := []int{8, 16}
	link := ICILink()
	sym := Torus{Dims: dims, Link: link}
	asym := AsymmetricTorus{Dims: dims, Links: []Link{link, link}}
	a, err := sym.AllReduceTime(1e8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := asym.AllReduceTime(1e8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b)/a > 1e-12 {
		t.Fatalf("asymmetric with uniform links %v != symmetric %v", b, a)
	}
}

func TestAsymmetricSlowDimensionDominates(t *testing.T) {
	// A torus with one DCN dimension: that dimension is the bottleneck.
	at := AsymmetricTorus{
		Dims:  []int{16, 16, 4},
		Links: []Link{ICILink(), ICILink(), DCNLink()},
	}
	slow, err := at.AllReduceTime(256e6)
	if err != nil {
		t.Fatal(err)
	}
	fast := AsymmetricTorus{
		Dims:  []int{16, 16, 4},
		Links: []Link{ICILink(), ICILink(), ICILink()},
	}
	fastT, _ := fast.AllReduceTime(256e6)
	if slow <= fastT {
		t.Fatal("DCN dimension did not slow the all-reduce")
	}
	// Phase ordering matters: later phases handle shrunken shards, so a
	// trailing DCN dimension sees little data. Put the DCN dimension
	// first and it dominates outright.
	first := AsymmetricTorus{
		Dims:  []int{4, 16, 16},
		Links: []Link{DCNLink(), ICILink(), ICILink()},
	}
	dim, err := first.BottleneckDim(256e6)
	if err != nil {
		t.Fatal(err)
	}
	if dim != 0 {
		t.Fatalf("bottleneck dim = %d, want 0 (the DCN dimension)", dim)
	}
}

func TestAsymmetricValidate(t *testing.T) {
	bad := AsymmetricTorus{Dims: []int{4, 4}, Links: []Link{ICILink()}}
	if _, err := bad.AllReduceTime(1); err == nil {
		t.Fatal("mismatched dims/links accepted")
	}
	bad2 := AsymmetricTorus{Dims: []int{0}, Links: []Link{ICILink()}}
	if _, err := bad2.AllReduceTime(1); err == nil {
		t.Fatal("zero dim accepted")
	}
	if (AsymmetricTorus{Dims: []int{4, 8}, Links: []Link{ICILink(), ICILink()}}).Nodes() != 32 {
		t.Fatal("Nodes wrong")
	}
}
