package topo

import (
	"errors"
	"testing"
)

func TestPodConstants(t *testing.T) {
	if CubeChips != 64 || FaceLinks != 16 || HostsPerCube != 16 {
		t.Fatal("cube constants wrong")
	}
	if NumOCS != 48 {
		t.Fatalf("NumOCS = %d, want 48 (Appendix A)", NumOCS)
	}
}

func TestNewPodBounds(t *testing.T) {
	if _, err := NewPod(64); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPod(0); err == nil {
		t.Error("0 cubes accepted")
	}
	if _, err := NewPod(65); err == nil {
		t.Error("65 cubes accepted")
	}
}

func TestOCSForMapping(t *testing.T) {
	o, err := OCSFor(2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if o != 47 {
		t.Fatalf("OCSFor(2,15) = %d", o)
	}
	if o.DimOf() != 2 || o.IndexOf() != 15 {
		t.Fatalf("round trip broken: dim %d idx %d", o.DimOf(), o.IndexOf())
	}
	if _, err := OCSFor(3, 0); err == nil {
		t.Error("dim 3 accepted")
	}
	if _, err := OCSFor(0, 16); err == nil {
		t.Error("idx 16 accepted")
	}
}

func TestOCSForDistinct(t *testing.T) {
	seen := map[OCSID]bool{}
	for d := 0; d < 3; d++ {
		for i := 0; i < FaceLinks; i++ {
			o, _ := OCSFor(d, i)
			if seen[o] {
				t.Fatalf("OCS %d assigned twice", o)
			}
			seen[o] = true
		}
	}
	if len(seen) != NumOCS {
		t.Fatalf("%d distinct OCSes", len(seen))
	}
}

func seqCubes(n int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = i
	}
	return c
}

func TestComposeSliceErrors(t *testing.T) {
	if _, err := ComposeSlice(Shape{5, 4, 4}, seqCubes(1)); !errors.Is(err, ErrBadShape) {
		t.Errorf("err = %v", err)
	}
	if _, err := ComposeSlice(Shape{8, 8, 8}, seqCubes(3)); !errors.Is(err, ErrCubeCount) {
		t.Errorf("err = %v", err)
	}
	if _, err := ComposeSlice(Shape{8, 4, 4}, []int{1, 1}); !errors.Is(err, ErrDupCube) {
		t.Errorf("err = %v", err)
	}
}

func TestComposeSliceNonContiguous(t *testing.T) {
	// §4.2.4: "a set of four idle, not-necessarily-contiguous 4×4×4
	// elemental cubes" can form a 256-chip slice.
	cubes := []int{7, 23, 41, 60}
	sl, err := ComposeSlice(Shape{4, 4, 16}, cubes)
	if err != nil {
		t.Fatal(err)
	}
	got := sl.Cubes()
	for i, c := range cubes {
		if got[i] != c {
			t.Fatalf("Cubes() = %v", got)
		}
	}
}

func TestRequiredCircuitsSingleCube(t *testing.T) {
	// A single-cube slice still needs wraparound circuits: each face index
	// of each dimension loops the cube's + face to its own − face.
	sl, err := ComposeSlice(Shape{4, 4, 4}, []int{9})
	if err != nil {
		t.Fatal(err)
	}
	reqs := sl.RequiredCircuits()
	if len(reqs) != 48 {
		t.Fatalf("%d circuits, want 48 (3 dims × 16 indices)", len(reqs))
	}
	for _, r := range reqs {
		if r.North != 9 || r.South != 9 {
			t.Fatalf("self-wrap circuit %+v", r)
		}
	}
}

func TestRequiredCircuitsCount(t *testing.T) {
	shapes := []Shape{{4, 4, 16}, {8, 8, 8}, {16, 16, 16}}
	for _, s := range shapes {
		sl, err := ComposeSlice(s, seqCubes(s.Cubes()))
		if err != nil {
			t.Fatal(err)
		}
		if got := len(sl.RequiredCircuits()); got != CircuitsPerSlice(s) {
			t.Fatalf("%v: %d circuits, want %d", s, got, CircuitsPerSlice(s))
		}
	}
	// Full pod: 3 × 16 × 64 = 3072 circuits, i.e. 64 per OCS across 48
	// OCSes — exactly the usable port count of each 128-port OCS.
	if got := CircuitsPerSlice(Shape{16, 16, 16}); got != 3072 {
		t.Fatalf("full pod circuits = %d", got)
	}
}

func TestRequiredCircuitsArePerOCSPermutations(t *testing.T) {
	// On each OCS, every cube appears at most once as north and once as
	// south — otherwise the circuits would collide on physical ports.
	sl, err := ComposeSlice(Shape{8, 16, 8}, seqCubes(Shape{8, 16, 8}.Cubes()))
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		o OCSID
		p int
	}
	north := map[key]bool{}
	south := map[key]bool{}
	for _, r := range sl.RequiredCircuits() {
		kn := key{r.OCS, r.North}
		ks := key{r.OCS, r.South}
		if north[kn] {
			t.Fatalf("north port %d reused on OCS %d", r.North, r.OCS)
		}
		if south[ks] {
			t.Fatalf("south port %d reused on OCS %d", r.South, r.OCS)
		}
		north[kn] = true
		south[ks] = true
	}
}

func TestRequiredCircuitsFormRings(t *testing.T) {
	// Along each dimension the circuits on one OCS must form closed rings
	// covering all slice cubes (follow north→south pointers).
	s := Shape{8, 8, 16}
	sl, err := ComposeSlice(s, seqCubes(s.Cubes()))
	if err != nil {
		t.Fatal(err)
	}
	// Collect the successor map of OCS (dim 2, idx 0).
	o, _ := OCSFor(2, 0)
	next := map[int]int{}
	for _, r := range sl.RequiredCircuits() {
		if r.OCS == o {
			next[r.North] = r.South
		}
	}
	if len(next) != s.Cubes() {
		t.Fatalf("OCS has %d circuits, want one per cube", len(next))
	}
	// Every cube must be on a cycle of length = cubes along dim 2 (= 4).
	_, _, czs := s.CubeGrid()
	for start := range next {
		cur, steps := start, 0
		for {
			cur = next[cur]
			steps++
			if cur == start {
				break
			}
			if steps > s.Cubes() {
				t.Fatal("broken ring")
			}
		}
		if steps != czs {
			t.Fatalf("ring length %d, want %d", steps, czs)
		}
	}
}

func TestCircuitsPerSliceScalesWithCubes(t *testing.T) {
	small := CircuitsPerSlice(Shape{4, 4, 16})
	big := CircuitsPerSlice(Shape{16, 16, 16})
	if big != 16*small {
		t.Fatalf("scaling broken: %d vs %d", small, big)
	}
}
