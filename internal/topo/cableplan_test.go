package topo

import (
	"strings"
	"testing"
)

func TestCablePlanFullPod(t *testing.T) {
	plan, err := CablePlan(64)
	if err != nil {
		t.Fatal(err)
	}
	// 64 cubes × 96 fibers = 6144 runs.
	if len(plan) != 6144 {
		t.Fatalf("%d cable runs, want 6144", len(plan))
	}
	if err := ValidatePlan(plan); err != nil {
		t.Fatal(err)
	}
}

func TestCablePlanPerOCSLoad(t *testing.T) {
	plan, err := CablePlan(64)
	if err != nil {
		t.Fatal(err)
	}
	sum := PlanSummary(plan)
	if len(sum) != NumOCS {
		t.Fatalf("%d OCSes in plan", len(sum))
	}
	for o, n := range sum {
		// 64 cubes × 2 fibers (one N, one S) per OCS = 128 fibers: exactly
		// the usable ports of a 136-port Palomar.
		if n != 128 {
			t.Fatalf("OCS %d carries %d fibers, want 128", o, n)
		}
	}
}

func TestCablePlanBounds(t *testing.T) {
	if _, err := CablePlan(0); err == nil {
		t.Error("0 cubes accepted")
	}
	if _, err := CablePlan(65); err == nil {
		t.Error("65 cubes accepted")
	}
}

func TestValidatePlanCatchesCollision(t *testing.T) {
	plan, _ := CablePlan(2)
	plan[1] = plan[0] // duplicate run
	if err := ValidatePlan(plan); err == nil {
		t.Fatal("duplicate port accepted")
	}
}

func TestValidatePlanCatchesSplitPair(t *testing.T) {
	plan, _ := CablePlan(1)
	// Move a − face fiber to a different OCS than its + partner.
	for i := range plan {
		if !plan[i].Plus && plan[i].Dim == 0 && plan[i].Index == 0 {
			plan[i].OCS = 5
			plan[i].Port = 63 // avoid a port collision masking the real error
			break
		}
	}
	if err := ValidatePlan(plan); err == nil {
		t.Fatal("split ± pair accepted")
	}
}

func TestIncrementalRunsTouchOnlyNewCube(t *testing.T) {
	runs, err := IncrementalRuns(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 96 {
		t.Fatalf("%d incremental runs, want 96", len(runs))
	}
	for _, r := range runs {
		if r.Cube != 17 {
			t.Fatalf("run for cube %d in incremental plan", r.Cube)
		}
	}
}

func TestCableRunString(t *testing.T) {
	plan, _ := CablePlan(1)
	s := plan[0].String()
	if !strings.Contains(s, "cube00") || !strings.Contains(s, "ocs") {
		t.Fatalf("pull-sheet line = %q", s)
	}
}

func TestCablePlanConsistentWithSliceCircuits(t *testing.T) {
	// Every circuit a slice needs must connect ports that the cable plan
	// actually wired: OCS o north port = +face fiber of the north cube,
	// south port = −face fiber of the south cube.
	plan, _ := CablePlan(8)
	wired := map[[3]int]bool{} // (ocs, side, port)
	for _, r := range plan {
		wired[[3]int{int(r.OCS), int(r.Side), r.Port}] = true
	}
	sl, err := ComposeSlice(Shape{X: 8, Y: 8, Z: 8}, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sl.RequiredCircuits() {
		if !wired[[3]int{int(c.OCS), int(North), c.North}] {
			t.Fatalf("circuit %+v needs an unwired north port", c)
		}
		if !wired[[3]int{int(c.OCS), int(South), c.South}] {
			t.Fatalf("circuit %+v needs an unwired south port", c)
		}
	}
}
