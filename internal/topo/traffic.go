package topo

import "fmt"

// Per-circuit traffic accounting: walk chip-level routes over a slice and
// attribute every optical hop to the OCS circuit that carries it. This is
// how the control plane answers "which circuits does this collective
// stress, and evenly?" — the deterministic-routing property of §4.2.1
// makes the answer exact.

// LoadMap counts messages per optical circuit.
type LoadMap map[CircuitReq]int

// RouteLoad walks the dimension-ordered route src→dst and adds one message
// to every optical circuit it crosses, returning the number of optical
// hops (intra-cube electrical hops are free).
func (sl *Slice) RouteLoad(src, dst Coord, load LoadMap) (optical int, err error) {
	if load == nil {
		return 0, fmt.Errorf("topo: nil load map")
	}
	cur := src
	for cur != dst {
		h, err := NextHop(sl.Shape, cur, dst)
		if err != nil {
			return optical, err
		}
		req, ok, err := sl.CircuitForHop(cur, h)
		if err != nil {
			return optical, err
		}
		if ok {
			load[req]++
			optical++
		}
		cur = h.Apply(sl.Shape, cur)
	}
	return optical, nil
}

// RingExchangeLoad adds one neighbor-exchange step of a ring collective
// along dim: every chip sends one message to its +1 neighbor (with
// wraparound). Ring collectives repeat this step n−1 times per phase; the
// per-step load shape is what matters for balance.
func (sl *Slice) RingExchangeLoad(dim int, load LoadMap) error {
	if dim < 0 || dim > 2 {
		return fmt.Errorf("topo: invalid dimension %d", dim)
	}
	s := sl.Shape
	for x := 0; x < s.X; x++ {
		for y := 0; y < s.Y; y++ {
			for z := 0; z < s.Z; z++ {
				cur := Coord{x, y, z}
				h := Hop{Dim: dim, Dir: Plus}
				req, ok, err := sl.CircuitForHop(cur, h)
				if err != nil {
					return err
				}
				if ok {
					load[req]++
				}
			}
		}
	}
	return nil
}

// Balance summarizes a load map: min, max, and the number of loaded
// circuits.
func (l LoadMap) Balance() (min, max, circuits int) {
	first := true
	for _, n := range l {
		if first {
			min, max = n, n
			first = false
			continue
		}
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max, len(l)
}

// AllProvisioned reports whether every loaded circuit is in the slice's
// provisioned circuit set — traffic must never need an unprogrammed path.
func (l LoadMap) AllProvisioned(sl *Slice) bool {
	prov := make(map[CircuitReq]bool, len(sl.Circuits()))
	for _, r := range sl.RequiredCircuits() {
		prov[r] = true
	}
	for r := range l {
		if !prov[r] {
			return false
		}
	}
	return true
}

// Circuits is a convenience alias used by AllProvisioned.
func (sl *Slice) Circuits() []CircuitReq { return sl.RequiredCircuits() }
