package topo

import "testing"

func BenchmarkRequiredCircuitsFullPod(b *testing.B) {
	cubes := make([]int, 64)
	for i := range cubes {
		cubes[i] = i
	}
	sl, err := ComposeSlice(Shape{X: 16, Y: 16, Z: 16}, cubes)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if got := sl.RequiredCircuits(); len(got) != 3072 {
			b.Fatal("wrong circuit count")
		}
	}
}

func BenchmarkBuildRoutingTable(b *testing.B) {
	s := Shape{X: 16, Y: 16, Z: 16}
	for i := 0; i < b.N; i++ {
		if _, err := BuildRoutingTable(s, Coord{3, 7, 11}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShapesFor64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := ShapesFor(64); len(got) == 0 {
			b.Fatal("no shapes")
		}
	}
}

func BenchmarkRoutePodDiameter(b *testing.B) {
	s := Shape{X: 16, Y: 16, Z: 16}
	for i := 0; i < b.N; i++ {
		if _, err := Route(s, Coord{0, 0, 0}, Coord{8, 8, 8}); err != nil {
			b.Fatal(err)
		}
	}
}
