package topo

import (
	"errors"
	"fmt"
)

// Pod describes the physical plant of one superpod: how many cubes exist
// and how their faces are cabled to OCSes. The production pod has 64 cubes
// and 48 OCSes (Appendix A).
type Pod struct {
	// Cubes is the number of elemental cubes installed.
	Cubes int
}

// NewPod returns a pod with the given cube count (1..64 for the production
// Palomar wiring, which has 64 cube positions per OCS plus spares).
func NewPod(cubes int) (*Pod, error) {
	if cubes < 1 || cubes > 64 {
		return nil, fmt.Errorf("topo: pod cube count %d out of range [1,64]", cubes)
	}
	return &Pod{Cubes: cubes}, nil
}

// NumOCS is the number of OCSes in a full pod wiring plan: one per
// (dimension, face index) pair = 3×16 = 48 (Appendix A: "each 4×4×4 block
// connects to 6 × 16 ÷ 2 = 48 OCSes").
const NumOCS = 3 * FaceLinks

// OCSID identifies one OCS in the pod wiring plan.
type OCSID int

// OCSFor returns the OCS serving face index idx of dimension dim. The plus
// and minus faces of a cube for (dim, idx) land on the same OCS: the plus
// side on north port c, the minus side on south port c (c = cube id).
func OCSFor(dim, idx int) (OCSID, error) {
	if dim < 0 || dim > 2 || idx < 0 || idx >= FaceLinks {
		return 0, fmt.Errorf("topo: invalid face (dim %d, idx %d)", dim, idx)
	}
	return OCSID(dim*FaceLinks + idx), nil
}

// DimOf returns the torus dimension an OCS serves.
func (o OCSID) DimOf() int { return int(o) / FaceLinks }

// IndexOf returns the face index an OCS serves.
func (o OCSID) IndexOf() int { return int(o) % FaceLinks }

// CircuitReq is one OCS cross-connection required to realize a slice: on
// OCS, connect north port North (the + face of cube North) to south port
// South (the − face of cube South), creating a directed inter-cube torus
// link North→South along the OCS's dimension.
type CircuitReq struct {
	OCS          OCSID
	North, South int // cube IDs
}

// Slice is a composed 3D-torus sub-machine: a shape plus the assignment of
// physical cubes to logical torus positions.
type Slice struct {
	Shape Shape
	// CubeAt[x][y][z] is the physical cube at logical cube-grid position
	// (x, y, z).
	CubeAt [][][]int
}

// Errors returned by slice composition.
var (
	ErrCubeCount = errors.New("topo: cube count does not match shape")
	ErrDupCube   = errors.New("topo: duplicate cube in slice")
	ErrBadShape  = errors.New("topo: invalid shape")
)

// ComposeSlice assigns the given physical cubes (in row-major logical
// order) to a slice of the given shape. Thanks to the OCS indirection the
// cubes need not be physically contiguous — that is the scheduling
// flexibility of §4.2.4.
func ComposeSlice(shape Shape, cubes []int) (*Slice, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("%w: %v", ErrBadShape, shape)
	}
	a, b, c := shape.CubeGrid()
	if len(cubes) != a*b*c {
		return nil, fmt.Errorf("%w: %d cubes for %v (need %d)", ErrCubeCount, len(cubes), shape, a*b*c)
	}
	seen := make(map[int]bool, len(cubes))
	for _, id := range cubes {
		if seen[id] {
			return nil, fmt.Errorf("%w: cube %d", ErrDupCube, id)
		}
		seen[id] = true
	}
	sl := &Slice{Shape: shape}
	sl.CubeAt = make([][][]int, a)
	i := 0
	for x := 0; x < a; x++ {
		sl.CubeAt[x] = make([][]int, b)
		for y := 0; y < b; y++ {
			sl.CubeAt[x][y] = make([]int, c)
			for z := 0; z < c; z++ {
				sl.CubeAt[x][y][z] = cubes[i]
				i++
			}
		}
	}
	return sl, nil
}

// Cubes returns the physical cube IDs of the slice in row-major order.
func (sl *Slice) Cubes() []int {
	a, b, c := sl.Shape.CubeGrid()
	out := make([]int, 0, a*b*c)
	for x := 0; x < a; x++ {
		for y := 0; y < b; y++ {
			for z := 0; z < c; z++ {
				out = append(out, sl.CubeAt[x][y][z])
			}
		}
	}
	return out
}

// RequiredCircuits returns every OCS cross-connection needed to realize the
// slice's 3D torus with wraparound links. For each dimension the cubes on
// each line form a ring: + face of each cube connects to the − face of its
// successor. A dimension of one cube wraps onto itself (the OCS connects
// the cube's + face to its own − face), which is why opposing faces share
// an OCS (Fig A.1).
func (sl *Slice) RequiredCircuits() []CircuitReq {
	a, b, c := sl.Shape.CubeGrid()
	dims := [3]int{a, b, c}
	var reqs []CircuitReq
	at := func(d, i, u, v int) int {
		switch d {
		case 0:
			return sl.CubeAt[i][u][v]
		case 1:
			return sl.CubeAt[u][i][v]
		default:
			return sl.CubeAt[u][v][i]
		}
	}
	for d := 0; d < 3; d++ {
		var du, dv int
		switch d {
		case 0:
			du, dv = b, c
		case 1:
			du, dv = a, c
		default:
			du, dv = a, b
		}
		for u := 0; u < du; u++ {
			for v := 0; v < dv; v++ {
				for i := 0; i < dims[d]; i++ {
					from := at(d, i, u, v)
					to := at(d, (i+1)%dims[d], u, v)
					for idx := 0; idx < FaceLinks; idx++ {
						o, _ := OCSFor(d, idx)
						reqs = append(reqs, CircuitReq{OCS: o, North: from, South: to})
					}
				}
			}
		}
	}
	return reqs
}

// CircuitsPerSlice returns the number of OCS circuits a slice of the given
// shape needs without materializing them.
func CircuitsPerSlice(shape Shape) int {
	a, b, c := shape.CubeGrid()
	// Rings along each dimension: every cube has one outgoing + link per
	// dimension per face index.
	return 3 * FaceLinks * a * b * c
}
