package topo

import (
	"fmt"
	"sort"
)

// The physical cabling manifest of Appendix A / Fig A.1: which fiber of
// which cube face plugs into which OCS port. The plan is static building
// infrastructure — cubes and OCSes are cabled once at construction, and
// every future slice is realized purely by mirror moves. This is the
// "consider the fabric as part of the building" amortization argument of
// §6, and the reason incremental cube turn-up (§4.2.3) needs no recabling.

// Side is which crossbar side of an OCS a fiber lands on.
type Side int

// Sides.
const (
	North Side = iota
	South
)

// String returns the side name.
func (s Side) String() string {
	if s == North {
		return "N"
	}
	return "S"
}

// CableRun is one fiber of the plan: a cube face position to an OCS port.
type CableRun struct {
	Cube  int
	Dim   int // 0=X, 1=Y, 2=Z
	Plus  bool
	Index int // face link index 0..15
	OCS   OCSID
	Port  int
	Side  Side
}

// String formats the run as a pull-sheet line.
func (c CableRun) String() string {
	sign := "-"
	if c.Plus {
		sign = "+"
	}
	return fmt.Sprintf("cube%02d %s%s[%02d] -> ocs%02d %s%03d",
		c.Cube, [3]string{"X", "Y", "Z"}[c.Dim], sign, c.Index, c.OCS, c.Side, c.Port)
}

// CablePlan generates the full manifest for a pod with the given cube
// count: every cube contributes 6 faces × 16 fibers; the + face of
// (dim, index) lands on the north side of OCS dim·16+index at port =
// cube id, the − face on the south side at the same port.
func CablePlan(cubes int) ([]CableRun, error) {
	if cubes < 1 || cubes > 64 {
		return nil, fmt.Errorf("topo: cable plan for %d cubes out of range", cubes)
	}
	var plan []CableRun
	for c := 0; c < cubes; c++ {
		for dim := 0; dim < 3; dim++ {
			for idx := 0; idx < FaceLinks; idx++ {
				o, err := OCSFor(dim, idx)
				if err != nil {
					return nil, err
				}
				plan = append(plan,
					CableRun{Cube: c, Dim: dim, Plus: true, Index: idx, OCS: o, Port: c, Side: North},
					CableRun{Cube: c, Dim: dim, Plus: false, Index: idx, OCS: o, Port: c, Side: South},
				)
			}
		}
	}
	return plan, nil
}

// ValidatePlan checks the manifest: every (OCS, side, port) is used at
// most once, every cube contributes exactly 96 fibers, and opposing faces
// of a (dim, index) land on the same OCS.
func ValidatePlan(plan []CableRun) error {
	ports := make(map[[3]int]CableRun)
	perCube := make(map[int]int)
	pairOCS := make(map[[3]int]OCSID) // (cube, dim, index) -> OCS, must agree for ±
	for _, r := range plan {
		key := [3]int{int(r.OCS), int(r.Side), r.Port}
		if prev, dup := ports[key]; dup {
			return fmt.Errorf("topo: port collision: %s vs %s", r, prev)
		}
		ports[key] = r
		perCube[r.Cube]++
		pk := [3]int{r.Cube, r.Dim, r.Index}
		if prev, seen := pairOCS[pk]; seen && prev != r.OCS {
			return fmt.Errorf("topo: cube %d (dim %d, idx %d) split across OCS %d and %d",
				r.Cube, r.Dim, r.Index, prev, r.OCS)
		}
		pairOCS[pk] = r.OCS
	}
	for cube, n := range perCube {
		if n != 6*FaceLinks {
			return fmt.Errorf("topo: cube %d has %d fibers, want %d", cube, n, 6*FaceLinks)
		}
	}
	return nil
}

// PlanSummary aggregates the manifest per OCS for pull-sheet headers.
func PlanSummary(plan []CableRun) map[OCSID]int {
	out := make(map[OCSID]int)
	for _, r := range plan {
		out[r.OCS]++
	}
	return out
}

// IncrementalRuns returns the cable runs needed to add cube `newCube` to
// an existing pod — exactly the new cube's own 96 fibers, touching nothing
// else (§4.2.3 modular deployment).
func IncrementalRuns(newCube int) ([]CableRun, error) {
	full, err := CablePlan(newCube + 1)
	if err != nil {
		return nil, err
	}
	var out []CableRun
	for _, r := range full {
		if r.Cube == newCube {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}
