package topo

import "fmt"

// Coord is a chip coordinate in a slice's 3D torus.
type Coord struct {
	X, Y, Z int
}

// InShape reports whether the coordinate is inside shape s.
func (c Coord) InShape(s Shape) bool {
	return c.X >= 0 && c.X < s.X && c.Y >= 0 && c.Y < s.Y && c.Z >= 0 && c.Z < s.Z
}

// torusStep returns the signed step (+1 or −1) that moves src toward dst
// along a ring of the given size by the shorter way, and the distance.
func torusStep(src, dst, size int) (step, dist int) {
	if src == dst {
		return 0, 0
	}
	fwd := (dst - src + size) % size
	bwd := (src - dst + size) % size
	if fwd <= bwd {
		return 1, fwd
	}
	return -1, bwd
}

// TorusDistance returns the minimal hop count between two chips on the
// torus of shape s.
func TorusDistance(s Shape, a, b Coord) int {
	_, dx := torusStep(a.X, b.X, s.X)
	_, dy := torusStep(a.Y, b.Y, s.Y)
	_, dz := torusStep(a.Z, b.Z, s.Z)
	return dx + dy + dz
}

// Route returns the dimension-ordered (X, then Y, then Z) shortest path
// from src to dst on the torus, including both endpoints. In normal
// operation "the routing is deterministic and set by the slice
// configuration" (§4.2.1); dimension order is the standard deadlock-free
// deterministic choice.
func Route(s Shape, src, dst Coord) ([]Coord, error) {
	if !src.InShape(s) || !dst.InShape(s) {
		return nil, fmt.Errorf("topo: route endpoints %v -> %v outside shape %v", src, dst, s)
	}
	path := []Coord{src}
	cur := src
	for cur.X != dst.X {
		step, _ := torusStep(cur.X, dst.X, s.X)
		cur.X = (cur.X + step + s.X) % s.X
		path = append(path, cur)
	}
	for cur.Y != dst.Y {
		step, _ := torusStep(cur.Y, dst.Y, s.Y)
		cur.Y = (cur.Y + step + s.Y) % s.Y
		path = append(path, cur)
	}
	for cur.Z != dst.Z {
		step, _ := torusStep(cur.Z, dst.Z, s.Z)
		cur.Z = (cur.Z + step + s.Z) % s.Z
		path = append(path, cur)
	}
	return path, nil
}

// AvgHopDistance returns the exact mean pairwise hop distance of the torus
// of shape s (sum of per-dimension ring mean distances).
func AvgHopDistance(s Shape) float64 {
	return ringMeanDistance(s.X) + ringMeanDistance(s.Y) + ringMeanDistance(s.Z)
}

// ringMeanDistance is the mean shortest-path distance between two uniform
// random nodes of a ring of n nodes (including the zero self-distance).
func ringMeanDistance(n int) float64 {
	if n <= 1 {
		return 0
	}
	sum := 0
	for d := 0; d < n; d++ {
		fwd := d
		bwd := n - d
		if bwd < fwd {
			fwd = bwd
		}
		sum += fwd
	}
	return float64(sum) / float64(n)
}

// Diameter returns the maximum shortest-path hop count of the torus.
func Diameter(s Shape) int {
	return s.X/2 + s.Y/2 + s.Z/2
}

// CubeOf returns the cube-grid position containing a chip coordinate.
func CubeOf(c Coord) Coord {
	return Coord{c.X / CubeDim, c.Y / CubeDim, c.Z / CubeDim}
}

// CrossesCubeBoundary reports whether the hop from a to b (adjacent chips
// on the torus) traverses an optical inter-cube link rather than an
// intra-rack electrical link.
func CrossesCubeBoundary(a, b Coord) bool {
	return CubeOf(a) != CubeOf(b)
}
