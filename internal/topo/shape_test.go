package topo

import "testing"

func TestShapeBasics(t *testing.T) {
	s := Shape{16, 16, 16}
	if s.Chips() != 4096 {
		t.Fatalf("Chips = %d", s.Chips())
	}
	if s.Cubes() != 64 {
		t.Fatalf("Cubes = %d", s.Cubes())
	}
	a, b, c := s.CubeGrid()
	if a != 4 || b != 4 || c != 4 {
		t.Fatalf("CubeGrid = %d,%d,%d", a, b, c)
	}
	if s.String() != "16x16x16" {
		t.Errorf("String = %q", s.String())
	}
}

func TestShapeValid(t *testing.T) {
	valid := []Shape{{4, 4, 4}, {4, 4, 256}, {16, 16, 16}, {8, 16, 32}}
	for _, s := range valid {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	invalid := []Shape{{0, 4, 4}, {3, 4, 4}, {4, 4, 6}, {-4, 4, 4}}
	for _, s := range invalid {
		if s.Valid() {
			t.Errorf("%v should be invalid", s)
		}
	}
}

func TestShapesForFullPod(t *testing.T) {
	shapes := ShapesFor(64)
	// All shapes must have 64 cubes and be valid.
	want := map[Shape]bool{}
	for _, s := range shapes {
		if s.Cubes() != 64 {
			t.Fatalf("%v has %d cubes", s, s.Cubes())
		}
		if !s.Valid() {
			t.Fatalf("%v invalid", s)
		}
		want[s] = true
	}
	// §4.2.1: configurations range from 4×4×256 to 16×16×16, including
	// the Table 2 optima.
	for _, s := range []Shape{{4, 4, 256}, {16, 16, 16}, {8, 16, 32}, {4, 256, 4}} {
		if !want[s] {
			t.Errorf("shape %v missing from enumeration", s)
		}
	}
}

func TestShapesForCountsOrderedFactorizations(t *testing.T) {
	// Ordered factorizations of 8 into 3 factors: (1,1,8)(1,8,1)(8,1,1)
	// (1,2,4)(1,4,2)(2,1,4)(2,4,1)(4,1,2)(4,2,1)(2,2,2) = 10.
	if got := len(ShapesFor(8)); got != 10 {
		t.Fatalf("ShapesFor(8) = %d shapes, want 10", got)
	}
	if got := len(ShapesFor(1)); got != 1 {
		t.Fatalf("ShapesFor(1) = %d", got)
	}
}

func TestBisectionSymmetricIsBest(t *testing.T) {
	// §4.2.1: "the symmetric 16×16×16 static configuration is chosen as
	// the baseline because it has the highest bisection bandwidth among
	// all possible static configurations".
	best := MaxBisectionShape(64)
	if (best != Shape{16, 16, 16}) {
		t.Fatalf("MaxBisectionShape(64) = %v", best)
	}
	sym := Shape{16, 16, 16}.BisectionLinks()
	for _, s := range ShapesFor(64) {
		if s.BisectionLinks() > sym {
			t.Fatalf("%v has more bisection links than 16³", s)
		}
	}
}

func TestBisectionLinksValues(t *testing.T) {
	// 16³: cut across any dim severs 2·4096/16 = 512 links.
	if got := (Shape{16, 16, 16}).BisectionLinks(); got != 512 {
		t.Fatalf("16³ bisection = %d, want 512", got)
	}
	// 4×4×256: worst cut across z: 2·4096/256 = 32.
	if got := (Shape{4, 4, 256}).BisectionLinks(); got != 32 {
		t.Fatalf("4×4×256 bisection = %d, want 32", got)
	}
	if got := (Shape{16, 16, 16}).BisectionBandwidthGbps(100); got != 51200 {
		t.Fatalf("bw = %v", got)
	}
}

func TestHigherDimShapes(t *testing.T) {
	// §6 future work: 4D tori at pod scale (4096 chips).
	shapes := HigherDimShapes(4096, 4)
	if len(shapes) == 0 {
		t.Fatal("no 4D shapes")
	}
	for _, s := range shapes {
		if s.Chips() != 4096 {
			t.Fatalf("%v has %d chips", s, s.Chips())
		}
		if len(s) != 4 {
			t.Fatalf("%v not 4D", s)
		}
		for _, d := range s {
			if d < 2 {
				t.Fatalf("%v has a degenerate dimension", s)
			}
		}
	}
	if HigherDimShapes(0, 3) != nil || HigherDimShapes(4, 0) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestHigherDimBisectionBeats3D(t *testing.T) {
	// A 4D torus has larger bisection than the best 3D torus at the same
	// size (§6: "a 4D or 6D torus ... has a larger bisection bandwidth").
	best3 := MaxBisectionShape(64).BisectionLinks()
	best4 := 0
	for _, s := range HigherDimShapes(4096, 4) {
		if b := s.BisectionLinks(); b > best4 {
			best4 = b
		}
	}
	if best4 <= best3 {
		t.Fatalf("best 4D bisection %d not above best 3D %d", best4, best3)
	}
}

func TestShapeNDEdgeCases(t *testing.T) {
	if (ShapeND{1, 1, 1}).BisectionLinks() != 0 {
		t.Error("degenerate ND shape should have 0 bisection")
	}
	if (ShapeND{}).Chips() != 1 {
		t.Error("empty shape chips")
	}
}
