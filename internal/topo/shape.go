// Package topo models the TPU v4 superpod interconnect topology of Fig 14
// and Appendix A: 4×4×4 elemental cubes (64 chips, one rack) whose six faces
// carry 16 optical links each, wired so that the + and − faces of every
// (dimension, face-index) pair land on the same OCS — 48 OCSes for a
// 64-cube, 4096-chip pod. Slices are 3D-torus sub-machines composed of
// cubes; the package enumerates legal slice shapes, generates the OCS
// circuits that realize a slice, routes on the resulting torus, and computes
// bisection bandwidth.
package topo

import (
	"fmt"
	"sort"
)

// CubeDim is the side of an elemental cube in chips (4×4×4 = 64).
const CubeDim = 4

// CubeChips is the number of TPU chips per elemental cube.
const CubeChips = CubeDim * CubeDim * CubeDim

// HostsPerCube is the number of CPU hosts per cube (4 TPUs per host).
const HostsPerCube = CubeChips / 4

// FaceLinks is the number of optical links per cube face (4×4).
const FaceLinks = CubeDim * CubeDim

// Shape is a slice shape in chips per dimension. Each dimension is a
// multiple of CubeDim. Order matters: by convention (§4.2.1) the 1st
// dimension carries model parallelism and the 2nd/3rd data parallelism.
type Shape struct {
	X, Y, Z int
}

// Chips returns the total chip count X·Y·Z.
func (s Shape) Chips() int { return s.X * s.Y * s.Z }

// Cubes returns the total cube count.
func (s Shape) Cubes() int { return s.Chips() / CubeChips }

// CubeGrid returns the shape in cubes per dimension.
func (s Shape) CubeGrid() (a, b, c int) {
	return s.X / CubeDim, s.Y / CubeDim, s.Z / CubeDim
}

// String formats the shape as "XxYxZ".
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.X, s.Y, s.Z) }

// Valid reports whether every dimension is a positive multiple of CubeDim.
func (s Shape) Valid() bool {
	for _, d := range []int{s.X, s.Y, s.Z} {
		if d <= 0 || d%CubeDim != 0 {
			return false
		}
	}
	return true
}

// Dims returns the dimensions as a slice.
func (s Shape) Dims() [3]int { return [3]int{s.X, s.Y, s.Z} }

// ShapesFor enumerates every ordered slice shape with exactly the given
// number of cubes (all ordered factorizations a·b·c = cubes, as shapes
// 4a×4b×4c). For a full 4096-chip pod (64 cubes) this spans 4×4×256
// through 16×16×16 (§4.2.1).
func ShapesFor(cubes int) []Shape {
	var shapes []Shape
	for a := 1; a <= cubes; a++ {
		if cubes%a != 0 {
			continue
		}
		rest := cubes / a
		for b := 1; b <= rest; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			shapes = append(shapes, Shape{a * CubeDim, b * CubeDim, c * CubeDim})
		}
	}
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].X != shapes[j].X {
			return shapes[i].X < shapes[j].X
		}
		if shapes[i].Y != shapes[j].Y {
			return shapes[i].Y < shapes[j].Y
		}
		return shapes[i].Z < shapes[j].Z
	})
	return shapes
}

// BisectionLinks returns the number of ICI links crossing the minimum
// bisection of the 3D torus: cutting across dimension d severs 2·N/S_d
// links (each line along d crosses the cut twice thanks to the wraparound),
// except that a dimension of size 2 has direct and wrap links between the
// same node pair (N/S_d distinct pairs ×2 links kept as 2·N/S_d — they are
// physically distinct cables) and a dimension of size 1 contributes no
// inter-node links and is skipped.
func (s Shape) BisectionLinks() int {
	n := s.Chips()
	best := -1
	for _, d := range s.Dims() {
		if d == 1 {
			continue
		}
		links := 2 * n / d
		if best == -1 || links < best {
			best = links
		}
	}
	if best == -1 {
		return 0
	}
	return best
}

// BisectionBandwidthGbps returns the bisection bandwidth given a per-link
// rate.
func (s Shape) BisectionBandwidthGbps(linkGbps float64) float64 {
	return float64(s.BisectionLinks()) * linkGbps
}

// MaxBisectionShape returns the shape among ShapesFor(cubes) with the
// highest bisection bandwidth — the paper's static baseline (16×16×16 for a
// full pod).
func MaxBisectionShape(cubes int) Shape {
	best := Shape{}
	bestLinks := -1
	for _, s := range ShapesFor(cubes) {
		if l := s.BisectionLinks(); l > bestLinks {
			best, bestLinks = s, l
		}
	}
	return best
}

// ShapeND is an n-dimensional torus shape (chips per dimension), supporting
// the paper's §6 future-work direction of 4D/6D tori.
type ShapeND []int

// Chips returns the total chip count.
func (s ShapeND) Chips() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// BisectionLinks generalizes Shape.BisectionLinks to n dimensions.
func (s ShapeND) BisectionLinks() int {
	n := s.Chips()
	best := -1
	for _, d := range s {
		if d <= 1 {
			continue
		}
		links := 2 * n / d
		if best == -1 || links < best {
			best = links
		}
	}
	if best == -1 {
		return 0
	}
	return best
}

// HigherDimShapes enumerates ND torus shapes with exactly the given total
// chip count and dimension count, every dimension at least 2 (a dimension
// of 1 is degenerate). This supports the §6 future-work exploration of
// 4D/6D tori, which use a different elemental block than the 3D cube.
func HigherDimShapes(chips, dims int) []ShapeND {
	if dims < 1 || chips < 1 {
		return nil
	}
	var out []ShapeND
	var rec func(rem, d int, cur []int)
	rec = func(rem, d int, cur []int) {
		if d == 1 {
			if rem < 2 {
				return
			}
			shape := make(ShapeND, 0, dims)
			shape = append(shape, cur...)
			shape = append(shape, rem)
			out = append(out, shape)
			return
		}
		for a := 2; a <= rem; a++ {
			if rem%a == 0 {
				rec(rem/a, d-1, append(cur, a))
			}
		}
	}
	rec(chips, dims, nil)
	return out
}
