package topo_test

import (
	"fmt"

	"lightwave/internal/topo"
)

// Example composes a 256-chip slice from four non-contiguous cubes and
// shows the OCS circuits realizing its torus.
func Example() {
	slice, err := topo.ComposeSlice(topo.Shape{X: 4, Y: 4, Z: 16}, []int{7, 23, 41, 60})
	if err != nil {
		panic(err)
	}
	circuits := slice.RequiredCircuits()
	fmt.Println("circuits:", len(circuits))
	fmt.Println("first:", circuits[0].OCS, circuits[0].North, "->", circuits[0].South)
	// Output:
	// circuits: 192
	// first: 0 7 -> 7
}
