package topo

import (
	"errors"
	"testing"
	"testing/quick"

	"lightwave/internal/sim"
)

func TestNextHopReachesDestination(t *testing.T) {
	// Property: repeatedly following NextHop reaches dst in exactly
	// TorusDistance steps.
	s := Shape{8, 4, 16}
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		cur := Coord{r.Intn(s.X), r.Intn(s.Y), r.Intn(s.Z)}
		dst := Coord{r.Intn(s.X), r.Intn(s.Y), r.Intn(s.Z)}
		if cur == dst {
			return true
		}
		want := TorusDistance(s, cur, dst)
		for step := 0; step < want; step++ {
			h, err := NextHop(s, cur, dst)
			if err != nil {
				return false
			}
			cur = h.Apply(s, cur)
		}
		return cur == dst
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestNextHopErrors(t *testing.T) {
	s := Shape{4, 4, 4}
	if _, err := NextHop(s, Coord{0, 0, 0}, Coord{0, 0, 0}); !errors.Is(err, ErrSameChip) {
		t.Errorf("err = %v", err)
	}
	if _, err := NextHop(s, Coord{9, 0, 0}, Coord{0, 0, 0}); err == nil {
		t.Error("out-of-shape accepted")
	}
}

func TestRoutingTableMatchesNextHop(t *testing.T) {
	s := Shape{4, 8, 4}
	self := Coord{1, 5, 2}
	table, err := BuildRoutingTable(s, self)
	if err != nil {
		t.Fatal(err)
	}
	if table.Entries() != s.Chips()-1 {
		t.Fatalf("entries = %d", table.Entries())
	}
	for x := 0; x < s.X; x++ {
		for y := 0; y < s.Y; y++ {
			for z := 0; z < s.Z; z++ {
				dst := Coord{x, y, z}
				if dst == self {
					continue
				}
				got, err := table.Lookup(dst)
				if err != nil {
					t.Fatal(err)
				}
				want, _ := NextHop(s, self, dst)
				if got != want {
					t.Fatalf("dst %v: table %v, direct %v", dst, got, want)
				}
			}
		}
	}
}

func TestRoutingTableErrors(t *testing.T) {
	s := Shape{4, 4, 4}
	if _, err := BuildRoutingTable(s, Coord{5, 0, 0}); err == nil {
		t.Error("out-of-shape self accepted")
	}
	table, _ := BuildRoutingTable(s, Coord{0, 0, 0})
	if _, err := table.Lookup(Coord{0, 0, 0}); !errors.Is(err, ErrSameChip) {
		t.Errorf("err = %v", err)
	}
	if _, err := table.Lookup(Coord{9, 9, 9}); err == nil {
		t.Error("out-of-shape dst accepted")
	}
}

func TestFaceIndexForHopRange(t *testing.T) {
	for dim := 0; dim < 3; dim++ {
		seen := map[int]bool{}
		for a := 0; a < CubeDim; a++ {
			for b := 0; b < CubeDim; b++ {
				var c Coord
				switch dim {
				case 0:
					c = Coord{0, a, b}
				case 1:
					c = Coord{a, 0, b}
				default:
					c = Coord{a, b, 0}
				}
				idx := FaceIndexForHop(c, dim)
				if idx < 0 || idx >= FaceLinks {
					t.Fatalf("face index %d out of range", idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != FaceLinks {
			t.Fatalf("dim %d: only %d distinct face indices", dim, len(seen))
		}
	}
}

func TestCircuitForHopIntraCube(t *testing.T) {
	sl, err := ComposeSlice(Shape{8, 4, 4}, []int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Hop within the first cube: electrical, no circuit.
	_, ok, err := sl.CircuitForHop(Coord{0, 0, 0}, Hop{Dim: 1, Dir: Plus})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("intra-cube hop mapped to a circuit")
	}
}

func TestCircuitForHopMatchesProvisionedCircuits(t *testing.T) {
	// Every optical hop a route can take must land on a circuit the slice
	// actually provisioned.
	s := Shape{8, 8, 4}
	sl, err := ComposeSlice(s, []int{1, 4, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	provisioned := map[CircuitReq]bool{}
	for _, r := range sl.RequiredCircuits() {
		provisioned[r] = true
	}
	rng := sim.NewRand(5)
	optical := 0
	for trial := 0; trial < 500; trial++ {
		cur := Coord{rng.Intn(s.X), rng.Intn(s.Y), rng.Intn(s.Z)}
		dst := Coord{rng.Intn(s.X), rng.Intn(s.Y), rng.Intn(s.Z)}
		if cur == dst {
			continue
		}
		h, err := NextHop(s, cur, dst)
		if err != nil {
			t.Fatal(err)
		}
		req, ok, err := sl.CircuitForHop(cur, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		optical++
		if !provisioned[req] {
			t.Fatalf("hop %v from %v uses unprovisioned circuit %+v", h, cur, req)
		}
	}
	if optical == 0 {
		t.Fatal("no optical hops sampled")
	}
}

func TestCircuitForHopOutOfShape(t *testing.T) {
	sl, _ := ComposeSlice(Shape{4, 4, 4}, []int{0})
	if _, _, err := sl.CircuitForHop(Coord{9, 0, 0}, Hop{Dim: 0, Dir: Plus}); err == nil {
		t.Fatal("out-of-shape accepted")
	}
}
