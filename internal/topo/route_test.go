package topo

import (
	"testing"
	"testing/quick"

	"lightwave/internal/sim"
)

func TestTorusStep(t *testing.T) {
	// Ring of 8: 1→6 backward is shorter (3 vs 5).
	step, dist := torusStep(1, 6, 8)
	if step != -1 || dist != 3 {
		t.Fatalf("step=%d dist=%d", step, dist)
	}
	step, dist = torusStep(6, 1, 8)
	if step != 1 || dist != 3 {
		t.Fatalf("step=%d dist=%d", step, dist)
	}
	if s, d := torusStep(3, 3, 8); s != 0 || d != 0 {
		t.Fatalf("self step=%d dist=%d", s, d)
	}
}

func TestTorusDistanceWraparound(t *testing.T) {
	s := Shape{16, 16, 16}
	// Corner to corner: with wraparound each dim is 1 hop.
	if d := TorusDistance(s, Coord{0, 0, 0}, Coord{15, 15, 15}); d != 3 {
		t.Fatalf("corner distance = %d, want 3", d)
	}
	if d := TorusDistance(s, Coord{0, 0, 0}, Coord{8, 8, 8}); d != 24 {
		t.Fatalf("antipode distance = %d, want 24", d)
	}
}

func TestRoutePathProperties(t *testing.T) {
	s := Shape{8, 16, 4}
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		src := Coord{r.Intn(s.X), r.Intn(s.Y), r.Intn(s.Z)}
		dst := Coord{r.Intn(s.X), r.Intn(s.Y), r.Intn(s.Z)}
		path, err := Route(s, src, dst)
		if err != nil {
			return false
		}
		// Path starts at src, ends at dst, length = distance+1, and each
		// hop moves exactly one step in one dimension.
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		if len(path)-1 != TorusDistance(s, src, dst) {
			return false
		}
		for i := 1; i < len(path); i++ {
			if TorusDistance(s, path[i-1], path[i]) != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestRouteOutOfShape(t *testing.T) {
	s := Shape{4, 4, 4}
	if _, err := Route(s, Coord{5, 0, 0}, Coord{0, 0, 0}); err == nil {
		t.Fatal("out-of-shape src accepted")
	}
	if _, err := Route(s, Coord{0, 0, 0}, Coord{0, 0, 9}); err == nil {
		t.Fatal("out-of-shape dst accepted")
	}
}

func TestRouteDimensionOrdered(t *testing.T) {
	s := Shape{8, 8, 8}
	path, err := Route(s, Coord{0, 0, 0}, Coord{2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	// X moves must all come before Y moves.
	seenY := false
	for i := 1; i < len(path); i++ {
		dx := path[i].X != path[i-1].X
		dy := path[i].Y != path[i-1].Y
		if dy {
			seenY = true
		}
		if dx && seenY {
			t.Fatal("X move after Y move: not dimension ordered")
		}
	}
}

func TestAvgHopDistance(t *testing.T) {
	// Ring of 4: distances {0,1,2,1}, mean 1. Shape 4×4×4 → 3.
	if got := AvgHopDistance(Shape{4, 4, 4}); got != 3 {
		t.Fatalf("avg hop = %v", got)
	}
	// Symmetric shapes minimize average distance at fixed size.
	if AvgHopDistance(Shape{16, 16, 16}) >= AvgHopDistance(Shape{4, 4, 256}) {
		t.Fatal("16³ should have lower mean distance than 4×4×256")
	}
}

func TestDiameter(t *testing.T) {
	if d := Diameter(Shape{16, 16, 16}); d != 24 {
		t.Fatalf("diameter = %d", d)
	}
	if d := Diameter(Shape{4, 4, 256}); d != 132 {
		t.Fatalf("diameter = %d", d)
	}
}

func TestCubeBoundaryDetection(t *testing.T) {
	a := Coord{3, 0, 0}
	b := Coord{4, 0, 0}
	if !CrossesCubeBoundary(a, b) {
		t.Fatal("3→4 crosses a cube boundary")
	}
	if CrossesCubeBoundary(Coord{1, 2, 3}, Coord{2, 2, 3}) {
		t.Fatal("intra-cube hop misclassified")
	}
	if CubeOf(Coord{5, 9, 15}) != (Coord{1, 2, 3}) {
		t.Fatalf("CubeOf = %v", CubeOf(Coord{5, 9, 15}))
	}
}
