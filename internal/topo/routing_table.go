package topo

import (
	"errors"
	"fmt"
)

// This file generates the deterministic routing state of §4.2.1 ("In normal
// operation, the routing is deterministic and set by the slice
// configuration"): per-chip next-hop decisions for dimension-ordered torus
// routing, and the mapping from a chip-level inter-cube hop to the physical
// OCS circuit that carries it.

// Direction is a signed hop along one dimension.
type Direction int

// Directions.
const (
	Plus  Direction = 1
	Minus Direction = -1
)

// Hop is a routing decision: move one step along Dim in Dir.
type Hop struct {
	Dim int // 0=X, 1=Y, 2=Z
	Dir Direction
}

// ErrSameChip is returned when source equals destination.
var ErrSameChip = errors.New("topo: routing to self")

// NextHop returns the dimension-ordered routing decision at cur toward dst
// on the torus of shape s.
func NextHop(s Shape, cur, dst Coord) (Hop, error) {
	if !cur.InShape(s) || !dst.InShape(s) {
		return Hop{}, fmt.Errorf("topo: next hop %v->%v outside %v", cur, dst, s)
	}
	if cur == dst {
		return Hop{}, ErrSameChip
	}
	dims := s.Dims()
	curD := [3]int{cur.X, cur.Y, cur.Z}
	dstD := [3]int{dst.X, dst.Y, dst.Z}
	for d := 0; d < 3; d++ {
		if curD[d] == dstD[d] {
			continue
		}
		step, _ := torusStep(curD[d], dstD[d], dims[d])
		return Hop{Dim: d, Dir: Direction(step)}, nil
	}
	return Hop{}, ErrSameChip
}

// Apply moves a coordinate by one hop with wraparound.
func (h Hop) Apply(s Shape, c Coord) Coord {
	dims := s.Dims()
	switch h.Dim {
	case 0:
		c.X = (c.X + int(h.Dir) + dims[0]) % dims[0]
	case 1:
		c.Y = (c.Y + int(h.Dir) + dims[1]) % dims[1]
	default:
		c.Z = (c.Z + int(h.Dir) + dims[2]) % dims[2]
	}
	return c
}

// RoutingTable holds the next-hop decisions of one chip for every
// destination, the in-ASIC routing state the slice configuration programs.
type RoutingTable struct {
	Shape Shape
	Self  Coord
	// hops[dst] = next hop; destinations indexed by linear coordinate.
	hops []Hop
}

// linear maps a coordinate to its table index.
func linear(s Shape, c Coord) int {
	return (c.X*s.Y+c.Y)*s.Z + c.Z
}

// BuildRoutingTable computes the full table for one chip.
func BuildRoutingTable(s Shape, self Coord) (*RoutingTable, error) {
	if !self.InShape(s) {
		return nil, fmt.Errorf("topo: chip %v outside %v", self, s)
	}
	t := &RoutingTable{Shape: s, Self: self, hops: make([]Hop, s.Chips())}
	for x := 0; x < s.X; x++ {
		for y := 0; y < s.Y; y++ {
			for z := 0; z < s.Z; z++ {
				dst := Coord{x, y, z}
				if dst == self {
					continue
				}
				h, err := NextHop(s, self, dst)
				if err != nil {
					return nil, err
				}
				t.hops[linear(s, dst)] = h
			}
		}
	}
	return t, nil
}

// Lookup returns the next hop toward dst.
func (t *RoutingTable) Lookup(dst Coord) (Hop, error) {
	if !dst.InShape(t.Shape) {
		return Hop{}, fmt.Errorf("topo: destination %v outside %v", dst, t.Shape)
	}
	if dst == t.Self {
		return Hop{}, ErrSameChip
	}
	return t.hops[linear(t.Shape, dst)], nil
}

// Entries returns the number of destinations the table covers.
func (t *RoutingTable) Entries() int { return t.Shape.Chips() - 1 }

// FaceIndexForHop returns the face link index (0..15) a chip-level hop
// crossing a cube boundary uses: the hop exits through the face position
// given by the chip's coordinates within the two non-hop dimensions.
func FaceIndexForHop(c Coord, dim int) int {
	switch dim {
	case 0:
		return (c.Y%CubeDim)*CubeDim + c.Z%CubeDim
	case 1:
		return (c.X%CubeDim)*CubeDim + c.Z%CubeDim
	default:
		return (c.X%CubeDim)*CubeDim + c.Y%CubeDim
	}
}

// CircuitForHop maps a chip-level hop from cur (inside the slice) along h
// to the OCS circuit carrying it, or ok=false for an intra-cube electrical
// hop. The returned circuit is expressed in physical cube IDs via the
// slice's placement.
func (sl *Slice) CircuitForHop(cur Coord, h Hop) (req CircuitReq, ok bool, err error) {
	if !cur.InShape(sl.Shape) {
		return CircuitReq{}, false, fmt.Errorf("topo: %v outside slice %v", cur, sl.Shape)
	}
	next := h.Apply(sl.Shape, cur)
	if !CrossesCubeBoundary(cur, next) {
		return CircuitReq{}, false, nil
	}
	o, err := OCSFor(h.Dim, FaceIndexForHop(cur, h.Dim))
	if err != nil {
		return CircuitReq{}, false, err
	}
	cc, nc := CubeOf(cur), CubeOf(next)
	from := sl.CubeAt[cc.X][cc.Y][cc.Z]
	to := sl.CubeAt[nc.X][nc.Y][nc.Z]
	// Circuits are provisioned in the + direction: the physical light path
	// from the + face of one cube to the − face of the next. A − direction
	// hop rides the same bidirectional circuit in reverse.
	if h.Dir == Plus {
		return CircuitReq{OCS: o, North: from, South: to}, true, nil
	}
	return CircuitReq{OCS: o, North: to, South: from}, true, nil
}
