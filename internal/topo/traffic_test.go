package topo

import (
	"testing"

	"lightwave/internal/sim"
)

func testSlice(t *testing.T, s Shape) *Slice {
	t.Helper()
	cubes := make([]int, s.Cubes())
	for i := range cubes {
		cubes[i] = i
	}
	sl, err := ComposeSlice(s, cubes)
	if err != nil {
		t.Fatal(err)
	}
	return sl
}

func TestRouteLoadCountsOpticalHops(t *testing.T) {
	sl := testSlice(t, Shape{8, 4, 4})
	load := LoadMap{}
	// (0,0,0) → (7,0,0): route goes backward via wraparound (1 optical
	// hop from cube 0's −X face to cube 1's +X... direction Minus).
	optical, err := sl.RouteLoad(Coord{0, 0, 0}, Coord{7, 0, 0}, load)
	if err != nil {
		t.Fatal(err)
	}
	if optical != 1 {
		t.Fatalf("optical hops = %d, want 1 (wraparound)", optical)
	}
	if !load.AllProvisioned(sl) {
		t.Fatal("route used unprovisioned circuit")
	}
}

func TestRouteLoadIntraCubeFree(t *testing.T) {
	sl := testSlice(t, Shape{8, 4, 4})
	load := LoadMap{}
	optical, err := sl.RouteLoad(Coord{0, 0, 0}, Coord{3, 3, 3}, load)
	if err != nil {
		t.Fatal(err)
	}
	if optical != 0 || len(load) != 0 {
		t.Fatalf("intra-cube route used %d optical hops", optical)
	}
}

func TestRouteLoadNilMap(t *testing.T) {
	sl := testSlice(t, Shape{4, 4, 4})
	if _, err := sl.RouteLoad(Coord{0, 0, 0}, Coord{1, 0, 0}, nil); err == nil {
		t.Fatal("nil load map accepted")
	}
}

func TestRingExchangeLoadBalanced(t *testing.T) {
	// A ring step along X on an 8×8×8 slice loads every X-dimension
	// circuit exactly once: each (face index, cube pair) carries exactly
	// one chip's neighbor message.
	sl := testSlice(t, Shape{8, 8, 8})
	load := LoadMap{}
	if err := sl.RingExchangeLoad(0, load); err != nil {
		t.Fatal(err)
	}
	min, max, circuits := load.Balance()
	if min != max {
		t.Fatalf("unbalanced ring load: min %d, max %d", min, max)
	}
	if min != 1 {
		t.Fatalf("per-circuit load = %d, want 1", min)
	}
	// X rings: 2 cubes per line × 16 face indices × (8·8/16 lines of
	// cubes... ) — just require full coverage of the slice's X circuits.
	xCircuits := 0
	for _, r := range sl.RequiredCircuits() {
		if r.OCS.DimOf() == 0 {
			xCircuits++
		}
	}
	if circuits != xCircuits {
		t.Fatalf("loaded %d circuits, slice has %d X circuits", circuits, xCircuits)
	}
	if !load.AllProvisioned(sl) {
		t.Fatal("ring step used unprovisioned circuit")
	}
}

func TestRingExchangeLoadSingleCubeDim(t *testing.T) {
	// Along a dimension of one cube the ring closes through the self-wrap
	// circuits; chips at the cube edge cross, interior chips stay
	// electrical.
	sl := testSlice(t, Shape{4, 4, 16})
	load := LoadMap{}
	if err := sl.RingExchangeLoad(0, load); err != nil {
		t.Fatal(err)
	}
	for r := range load {
		if r.North != r.South {
			t.Fatalf("single-cube dim loaded non-self circuit %+v", r)
		}
	}
	if !load.AllProvisioned(sl) {
		t.Fatal("unprovisioned circuit")
	}
}

func TestRingExchangeBadDim(t *testing.T) {
	sl := testSlice(t, Shape{4, 4, 4})
	if err := sl.RingExchangeLoad(3, LoadMap{}); err == nil {
		t.Fatal("dim 3 accepted")
	}
}

func TestRandomRoutesAllProvisioned(t *testing.T) {
	// Property: any route within the slice uses only provisioned circuits.
	sl := testSlice(t, Shape{8, 8, 16})
	rng := sim.NewRand(3)
	load := LoadMap{}
	for trial := 0; trial < 300; trial++ {
		src := Coord{rng.Intn(8), rng.Intn(8), rng.Intn(16)}
		dst := Coord{rng.Intn(8), rng.Intn(8), rng.Intn(16)}
		if _, err := sl.RouteLoad(src, dst, load); err != nil {
			t.Fatal(err)
		}
	}
	if !load.AllProvisioned(sl) {
		t.Fatal("random route used unprovisioned circuit")
	}
}

func TestBalanceEmpty(t *testing.T) {
	min, max, n := LoadMap{}.Balance()
	if min != 0 || max != 0 || n != 0 {
		t.Fatal("empty balance not zero")
	}
}
