package fec

import (
	"errors"
	"testing"

	"lightwave/internal/sim"
)

func newTestCodec(t *testing.T) *Codec {
	t.Helper()
	c, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randMessages(r *sim.Rand, c *Codec) [][]int {
	msgs := make([][]int, c.Depth)
	for d := range msgs {
		msgs[d] = randMsg(r, c.Outer.K(), c.Outer.Field().Size())
	}
	return msgs
}

func sameMessages(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if len(a[d]) != len(b[d]) {
			return false
		}
		for i := range a[d] {
			if a[d][i] != b[d][i] {
				return false
			}
		}
	}
	return true
}

func TestCodecGeometry(t *testing.T) {
	c := newTestCodec(t)
	if c.MessageSymbols() != 8*514 {
		t.Errorf("payload = %d symbols", c.MessageSymbols())
	}
	if c.FrameBits()%c.Inner.N() != 0 {
		t.Error("frame not whole inner blocks")
	}
	if r := c.Rate(); r < 0.80 || r > 0.90 {
		t.Errorf("rate = %v", r)
	}
}

func TestCodecCleanRoundTrip(t *testing.T) {
	c := newTestCodec(t)
	r := sim.NewRand(1)
	msgs := randMessages(r, c)
	frame, err := c.Encode(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != c.FrameBits() {
		t.Fatalf("frame = %d bits", len(frame))
	}
	got, corrected, err := c.DecodeHard(frame)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 0 {
		t.Errorf("clean frame corrected %d symbols", corrected)
	}
	if !sameMessages(got, msgs) {
		t.Fatal("round trip corrupted payload")
	}
}

func TestCodecEncodeErrors(t *testing.T) {
	c := newTestCodec(t)
	if _, err := c.Encode(make([][]int, 3)); !errors.Is(err, ErrOuterCount) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := c.DecodeHard(make([]byte, 10)); !errors.Is(err, ErrFrameSize) {
		t.Errorf("err = %v", err)
	}
}

func TestCodecSurvivesDestroyedInnerBlock(t *testing.T) {
	// A completely destroyed inner block is a worst-case burst; the
	// cross-codeword interleaving must dilute it below every outer
	// decoder's correction radius.
	c := newTestCodec(t)
	r := sim.NewRand(2)
	msgs := randMessages(r, c)
	frame, _ := c.Encode(msgs)
	blk := 17
	for i := blk * c.Inner.N(); i < (blk+1)*c.Inner.N(); i++ {
		frame[i] ^= byte(r.Intn(2))
	}
	got, _, err := c.DecodeHard(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMessages(got, msgs) {
		t.Fatal("burst not corrected")
	}
}

func TestCodecRandomErrorsHard(t *testing.T) {
	// Random channel errors at 1e-3: hard inner decoding fixes singles,
	// the outer RS cleans the rest.
	c := newTestCodec(t)
	r := sim.NewRand(3)
	msgs := randMessages(r, c)
	frame, _ := c.Encode(msgs)
	flips := 0
	for i := range frame {
		if r.Bernoulli(1e-3) {
			frame[i] ^= 1
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("no errors injected")
	}
	got, _, err := c.DecodeHard(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMessages(got, msgs) {
		t.Fatal("random errors not corrected")
	}
}

func TestCodecSoftBeatsHard(t *testing.T) {
	// At a channel SNR where hard concatenated decoding starts failing,
	// Chase-2 soft decoding must still succeed (the soft-decision gain of
	// Fig 12, demonstrated with real codecs).
	c := newTestCodec(t)
	r := sim.NewRand(4)
	sigma := 0.42 // BPSK ±1, raw BER ≈ Q(1/0.42) ≈ 9e-3

	hardWins, softWins := 0, 0
	const frames = 6
	for f := 0; f < frames; f++ {
		msgs := randMessages(r, c)
		frame, err := c.Encode(msgs)
		if err != nil {
			t.Fatal(err)
		}
		llr := make([]float64, len(frame))
		for i, b := range frame {
			s := 1.0
			if b == 1 {
				s = -1.0
			}
			llr[i] = s + sigma*r.NormFloat64()
		}
		hard := make([]byte, len(frame))
		for i, v := range llr {
			if v < 0 {
				hard[i] = 1
			}
		}
		if got, _, err := c.DecodeHard(hard); err == nil && sameMessages(got, msgs) {
			hardWins++
		}
		if got, _, err := c.DecodeSoft(llr); err == nil && sameMessages(got, msgs) {
			softWins++
		}
	}
	if softWins <= hardWins {
		t.Fatalf("soft decoding (%d/%d) not better than hard (%d/%d)",
			softWins, frames, hardWins, frames)
	}
	if softWins < frames-1 {
		t.Fatalf("soft decoding too weak: %d/%d", softWins, frames)
	}
}

func TestCodecReportsCorrections(t *testing.T) {
	c := newTestCodec(t)
	r := sim.NewRand(5)
	msgs := randMessages(r, c)
	frame, _ := c.Encode(msgs)
	// Flip a pair of adjacent bits inside one inner block: hard inner
	// decoding detects-but-cannot-correct a double, so the outer decoder
	// must do work.
	frame[100] ^= 1
	frame[101] ^= 1
	_, corrected, err := c.DecodeHard(frame)
	if err != nil {
		t.Fatal(err)
	}
	if corrected == 0 {
		t.Fatal("outer corrections not reported")
	}
}
