package fec

import (
	"errors"
	"testing"
	"testing/quick"

	"lightwave/internal/sim"
)

func randMsg(r *sim.Rand, k, size int) []int {
	m := make([]int, k)
	for i := range m {
		m[i] = r.Intn(size)
	}
	return m
}

func TestKP4Parameters(t *testing.T) {
	rs := NewKP4()
	if rs.N() != 544 || rs.K() != 514 || rs.T() != 15 {
		t.Fatalf("KP4 = RS(%d,%d) t=%d", rs.N(), rs.K(), rs.T())
	}
	if rs.Field().Size() != 1024 {
		t.Error("KP4 not over GF(1024)")
	}
	if r := rs.Rate(); r < 0.94 || r > 0.95 {
		t.Errorf("rate = %v", r)
	}
}

func TestNewRSInvalid(t *testing.T) {
	f := GF1024()
	cases := [][2]int{{10, 10}, {10, 11}, {10, 0}, {2000, 100}, {11, 8}}
	for _, c := range cases {
		if _, err := NewRS(f, c[0], c[1]); err == nil {
			t.Errorf("RS(%d,%d) accepted", c[0], c[1])
		}
	}
}

func TestRSEncodeDecodeClean(t *testing.T) {
	rs := NewKP4()
	r := sim.NewRand(1)
	msg := randMsg(r, rs.K(), 1024)
	cw, err := rs.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != rs.N() {
		t.Fatalf("codeword length %d", len(cw))
	}
	got, n, err := rs.Decode(cw)
	if err != nil || n != 0 {
		t.Fatalf("clean decode: n=%d err=%v", n, err)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("clean decode corrupted message")
		}
	}
}

func TestRSEncodeErrors(t *testing.T) {
	rs := NewKP4()
	if _, err := rs.Encode(make([]int, 3)); !errors.Is(err, ErrMessageLength) {
		t.Errorf("err = %v", err)
	}
	bad := make([]int, rs.K())
	bad[0] = 5000
	if _, err := rs.Encode(bad); !errors.Is(err, ErrSymbolRange) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := rs.Decode(make([]int, 3)); !errors.Is(err, ErrCodewordLength) {
		t.Errorf("err = %v", err)
	}
}

func TestRSCorrectsUpToT(t *testing.T) {
	rs := NewKP4()
	r := sim.NewRand(7)
	for trial := 0; trial < 10; trial++ {
		msg := randMsg(r, rs.K(), 1024)
		cw, _ := rs.Encode(msg)
		nerr := 1 + r.Intn(rs.T())
		positions := r.Perm(rs.N())[:nerr]
		for _, p := range positions {
			cw[p] ^= 1 + r.Intn(1023)
		}
		got, n, err := rs.Decode(cw)
		if err != nil {
			t.Fatalf("trial %d: %d errors not corrected: %v", trial, nerr, err)
		}
		if n != nerr {
			t.Fatalf("trial %d: corrected %d, injected %d", trial, n, nerr)
		}
		for i := range msg {
			if got[i] != msg[i] {
				t.Fatalf("trial %d: message corrupted", trial)
			}
		}
	}
}

func TestRSCorrectsExactlyT(t *testing.T) {
	rs := NewKP4()
	r := sim.NewRand(11)
	msg := randMsg(r, rs.K(), 1024)
	cw, _ := rs.Encode(msg)
	for _, p := range r.Perm(rs.N())[:rs.T()] {
		cw[p] ^= 1 + r.Intn(1023)
	}
	_, n, err := rs.Decode(cw)
	if err != nil || n != rs.T() {
		t.Fatalf("t errors: n=%d err=%v", n, err)
	}
}

func TestRSDetectsBeyondT(t *testing.T) {
	rs := NewKP4()
	r := sim.NewRand(13)
	detected := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		msg := randMsg(r, rs.K(), 1024)
		cw, _ := rs.Encode(msg)
		for _, p := range r.Perm(rs.N())[:rs.T()+3] {
			cw[p] ^= 1 + r.Intn(1023)
		}
		if _, _, err := rs.Decode(cw); err != nil {
			detected++
		}
	}
	// Miscorrection beyond t is possible but rare; overwhelmingly these
	// patterns must be flagged.
	if detected < trials-1 {
		t.Fatalf("only %d/%d >t patterns detected", detected, trials)
	}
}

func TestRSParityPositionErrors(t *testing.T) {
	rs := NewKP4()
	r := sim.NewRand(17)
	msg := randMsg(r, rs.K(), 1024)
	cw, _ := rs.Encode(msg)
	// Corrupt only parity symbols.
	for i := rs.K(); i < rs.K()+5; i++ {
		cw[i] ^= 1 + r.Intn(1023)
	}
	got, n, err := rs.Decode(cw)
	if err != nil || n != 5 {
		t.Fatalf("parity errors: n=%d err=%v", n, err)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("message corrupted by parity-only errors")
		}
	}
}

func TestRSSmallCodeExhaustive(t *testing.T) {
	// RS(15,11) over GF(16): t=2; verify correction over many random
	// double-error patterns.
	f := NewField(4, 0x13)
	rs, err := NewRS(f, 15, 11)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRand(3)
	for trial := 0; trial < 200; trial++ {
		msg := randMsg(r, 11, 16)
		cw, _ := rs.Encode(msg)
		p1 := r.Intn(15)
		p2 := (p1 + 1 + r.Intn(14)) % 15
		cw[p1] ^= 1 + r.Intn(15)
		cw[p2] ^= 1 + r.Intn(15)
		got, n, err := rs.Decode(cw)
		if err != nil || n != 2 {
			t.Fatalf("trial %d: n=%d err=%v", trial, n, err)
		}
		for i := range msg {
			if got[i] != msg[i] {
				t.Fatalf("trial %d corrupted", trial)
			}
		}
	}
}

func TestRSRoundTripProperty(t *testing.T) {
	f := NewField(8, 0x11d)
	rs, err := NewRS(f, 255, 239)
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(seed uint64, nerrRaw uint8) bool {
		r := sim.NewRand(seed)
		nerr := int(nerrRaw) % (rs.T() + 1)
		msg := randMsg(r, rs.K(), 256)
		cw, _ := rs.Encode(msg)
		for _, p := range r.Perm(rs.N())[:nerr] {
			cw[p] ^= 1 + r.Intn(255)
		}
		got, n, err := rs.Decode(cw)
		if err != nil || n != nerr {
			return false
		}
		for i := range msg {
			if got[i] != msg[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestRSCodewordIsSystematic(t *testing.T) {
	rs := NewKP4()
	r := sim.NewRand(19)
	msg := randMsg(r, rs.K(), 1024)
	cw, _ := rs.Encode(msg)
	for i := range msg {
		if cw[i] != msg[i] {
			t.Fatal("codeword not systematic")
		}
	}
}
