package fec

import "fmt"

// Interleaver is a rows×cols block interleaver. Concatenated FEC systems
// interleave between the inner and outer code so that a burst of inner-
// decoder failures is spread across many outer codewords; the paper's
// transceivers do the same between SFEC and KP4 framing.
type Interleaver struct {
	rows, cols int
}

// NewInterleaver returns a block interleaver of the given dimensions.
func NewInterleaver(rows, cols int) (*Interleaver, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("fec: invalid interleaver %dx%d", rows, cols)
	}
	return &Interleaver{rows: rows, cols: cols}, nil
}

// Size returns the block size rows×cols.
func (iv *Interleaver) Size() int { return iv.rows * iv.cols }

// Interleave writes the block row-major and reads it column-major.
func (iv *Interleaver) Interleave(in []int) ([]int, error) {
	if len(in) != iv.Size() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrCodewordLength, len(in), iv.Size())
	}
	out := make([]int, len(in))
	i := 0
	for c := 0; c < iv.cols; c++ {
		for r := 0; r < iv.rows; r++ {
			out[i] = in[r*iv.cols+c]
			i++
		}
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func (iv *Interleaver) Deinterleave(in []int) ([]int, error) {
	if len(in) != iv.Size() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrCodewordLength, len(in), iv.Size())
	}
	out := make([]int, len(in))
	i := 0
	for c := 0; c < iv.cols; c++ {
		for r := 0; r < iv.rows; r++ {
			out[r*iv.cols+c] = in[i]
			i++
		}
	}
	return out, nil
}

// BurstSpread reports the maximum number of symbols any single row receives
// from a contiguous burst of the given length in the interleaved domain —
// the figure of merit for burst protection.
func (iv *Interleaver) BurstSpread(burst int) int {
	if burst <= 0 {
		return 0
	}
	// A contiguous burst of length L in column-major order touches each row
	// at most ceil(L/rows) times.
	return (burst + iv.rows - 1) / iv.rows
}
