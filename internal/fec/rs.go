package fec

import (
	"errors"
	"fmt"
)

// Errors returned by the Reed-Solomon codec.
var (
	ErrCodewordLength = errors.New("fec: wrong codeword length")
	ErrMessageLength  = errors.New("fec: wrong message length")
	ErrSymbolRange    = errors.New("fec: symbol out of field range")
	ErrUncorrectable  = errors.New("fec: uncorrectable codeword")
)

// RS is a systematic Reed-Solomon code RS(n, k) over a Field, correcting up
// to t = (n-k)/2 symbol errors.
type RS struct {
	f    *Field
	n, k int
	t    int
	gen  []int // generator polynomial, ascending degree, monic
}

// NewRS builds RS(n, k) over field f. n must not exceed the field's
// multiplicative group order and n-k must be even and positive.
func NewRS(f *Field, n, k int) (*RS, error) {
	if n <= k || k <= 0 || n > f.Size()-1 || (n-k)%2 != 0 {
		return nil, fmt.Errorf("fec: invalid RS(%d,%d) over GF(%d)", n, k, f.Size())
	}
	r := &RS{f: f, n: n, k: k, t: (n - k) / 2}
	// g(x) = Π_{i=0}^{2t-1} (x - α^i)
	r.gen = []int{1}
	for i := 0; i < n-k; i++ {
		r.gen = f.PolyMul(r.gen, []int{f.Exp(i), 1})
	}
	return r, nil
}

// NewKP4 returns the IEEE 802.3 "KP4" code RS(544, 514) over GF(2^10),
// t = 15, used as the outer code in the paper's concatenated FEC.
func NewKP4() *RS {
	r, err := NewRS(GF1024(), 544, 514)
	if err != nil {
		panic(err) // fixed parameters; cannot fail
	}
	return r
}

// N returns the codeword length in symbols.
func (r *RS) N() int { return r.n }

// K returns the message length in symbols.
func (r *RS) K() int { return r.k }

// T returns the symbol-error correcting capability.
func (r *RS) T() int { return r.t }

// Rate returns the code rate k/n.
func (r *RS) Rate() float64 { return float64(r.k) / float64(r.n) }

// Field returns the underlying field.
func (r *RS) Field() *Field { return r.f }

// Encode appends 2t parity symbols to msg and returns the n-symbol
// codeword laid out as [msg | parity].
func (r *RS) Encode(msg []int) ([]int, error) {
	if len(msg) != r.k {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrMessageLength, len(msg), r.k)
	}
	for _, s := range msg {
		if s < 0 || s >= r.f.Size() {
			return nil, ErrSymbolRange
		}
	}
	// Compute msg(x)·x^{2t} mod g(x) with synthetic division.
	parity := make([]int, r.n-r.k)
	for _, s := range msg {
		feedback := s ^ parity[len(parity)-1]
		copy(parity[1:], parity[:len(parity)-1])
		parity[0] = 0
		if feedback != 0 {
			for j := range parity {
				parity[j] ^= r.f.Mul(feedback, r.gen[j])
			}
		}
	}
	cw := make([]int, 0, r.n)
	cw = append(cw, msg...)
	// parity is stored with parity[0] the constant term; codeword carries
	// highest-degree parity first so that cw(x) = msg(x)·x^{2t} + rem(x).
	for i := len(parity) - 1; i >= 0; i-- {
		cw = append(cw, parity[i])
	}
	return cw, nil
}

// Decode corrects up to t symbol errors in place and returns the message
// symbols and the number of corrected errors. If more than t errors are
// present the decoder usually detects it and returns ErrUncorrectable
// (miscorrection is possible, as with any bounded-distance decoder).
func (r *RS) Decode(cw []int) (msg []int, corrected int, err error) {
	if len(cw) != r.n {
		return nil, 0, fmt.Errorf("%w: got %d, want %d", ErrCodewordLength, len(cw), r.n)
	}
	syn, allZero := r.syndromes(cw)
	if allZero {
		return cw[:r.k], 0, nil
	}
	lambda := r.berlekampMassey(syn)
	nerr := len(lambda) - 1
	if nerr == 0 || nerr > r.t {
		return nil, 0, ErrUncorrectable
	}
	positions := r.chienSearch(lambda)
	if len(positions) != nerr {
		return nil, 0, ErrUncorrectable
	}
	if err := r.forney(cw, syn, lambda, positions); err != nil {
		return nil, 0, err
	}
	// Re-check: corrected word must have zero syndromes.
	if _, zero := r.syndromes(cw); !zero {
		return nil, 0, ErrUncorrectable
	}
	return cw[:r.k], nerr, nil
}

// syndromes computes S_i = r(α^i) for i in [0, 2t). The codeword is stored
// highest-degree coefficient first (cw[0] is degree n-1).
func (r *RS) syndromes(cw []int) ([]int, bool) {
	syn := make([]int, r.n-r.k)
	allZero := true
	for i := range syn {
		x := r.f.Exp(i)
		s := 0
		for _, c := range cw {
			s = r.f.Add(r.f.Mul(s, x), c)
		}
		syn[i] = s
		if s != 0 {
			allZero = false
		}
	}
	return syn, allZero
}

// berlekampMassey returns the error-locator polynomial Λ(x), ascending
// degree, Λ(0)=1.
func (r *RS) berlekampMassey(syn []int) []int {
	f := r.f
	lambda := []int{1}
	b := []int{1}
	L := 0
	m := 1
	bb := 1
	for n := 0; n < len(syn); n++ {
		// Discrepancy d = S_n + Σ_{i=1}^{L} λ_i S_{n-i}.
		d := syn[n]
		for i := 1; i <= L && i < len(lambda); i++ {
			d ^= f.Mul(lambda[i], syn[n-i])
		}
		if d == 0 {
			m++
			continue
		}
		// lambda' = lambda - (d/bb)·x^m·b
		scale := f.Div(d, bb)
		nl := make([]int, max(len(lambda), len(b)+m))
		copy(nl, lambda)
		for i, bi := range b {
			nl[i+m] ^= f.Mul(scale, bi)
		}
		if 2*L <= n {
			b = append([]int(nil), lambda...)
			bb = d
			L = n + 1 - L
			m = 1
		} else {
			m++
		}
		lambda = nl
	}
	// Trim trailing zeros.
	for len(lambda) > 1 && lambda[len(lambda)-1] == 0 {
		lambda = lambda[:len(lambda)-1]
	}
	return lambda
}

// chienSearch returns the codeword positions (0 = first transmitted symbol,
// i.e. degree n-1) where Λ has roots.
func (r *RS) chienSearch(lambda []int) []int {
	var pos []int
	for j := 0; j < r.n; j++ {
		// Position j corresponds to location value α^{n-1-j}; it is an
		// error location iff Λ(α^{-(n-1-j)}) = 0.
		x := r.f.Exp(-(r.n - 1 - j))
		if r.f.PolyEval(lambda, x) == 0 {
			pos = append(pos, j)
		}
	}
	return pos
}

// forney computes error magnitudes and corrects cw in place.
func (r *RS) forney(cw, syn, lambda []int, positions []int) error {
	f := r.f
	// Error evaluator Ω(x) = [S(x)·Λ(x)] mod x^{2t}.
	omega := f.PolyMul(syn, lambda)
	if len(omega) > r.n-r.k {
		omega = omega[:r.n-r.k]
	}
	// Formal derivative Λ'(x): odd-degree terms shifted down.
	deriv := make([]int, 0, len(lambda)/2+1)
	for i := 1; i < len(lambda); i += 2 {
		deriv = append(deriv, lambda[i])
	}
	for _, j := range positions {
		xinv := f.Exp(-(r.n - 1 - j)) // X_j^{-1}
		num := f.PolyEval(omega, xinv)
		// Λ'(X^-1) evaluated over even powers: Λ'(x) = Σ λ_{2i+1} x^{2i}.
		den := 0
		xinv2 := f.Mul(xinv, xinv)
		pw := 1
		for _, d := range deriv {
			den ^= f.Mul(d, pw)
			pw = f.Mul(pw, xinv2)
		}
		if den == 0 {
			return ErrUncorrectable
		}
		// e_j = X_j · Ω(X_j^{-1}) / Λ'(X_j^{-1}) for b=0 codes.
		xj := f.Exp(r.n - 1 - j)
		mag := f.Mul(xj, f.Div(num, den))
		cw[j] ^= mag
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
