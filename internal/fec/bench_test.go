package fec

import (
	"testing"

	"lightwave/internal/sim"
)

func BenchmarkRSEncodeKP4(b *testing.B) {
	rs := NewKP4()
	r := sim.NewRand(1)
	msg := randMsg(r, rs.K(), 1024)
	b.SetBytes(int64(rs.K() * 10 / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSDecodeClean(b *testing.B) {
	rs := NewKP4()
	r := sim.NewRand(2)
	msg := randMsg(r, rs.K(), 1024)
	cw, _ := rs.Encode(msg)
	b.SetBytes(int64(rs.N() * 10 / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]int(nil), cw...)
		if _, _, err := rs.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSDecodeWithErrors(b *testing.B) {
	rs := NewKP4()
	r := sim.NewRand(3)
	msg := randMsg(r, rs.K(), 1024)
	cw, _ := rs.Encode(msg)
	positions := r.Perm(rs.N())[:rs.T()]
	b.SetBytes(int64(rs.N() * 10 / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]int(nil), cw...)
		for _, p := range positions {
			buf[p] ^= 0x155
		}
		if _, _, err := rs.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChaseDecode(b *testing.B) {
	h, _ := NewHamming(6)
	r := sim.NewRand(4)
	data := randBits(r, h.K())
	cw, _ := h.Encode(data)
	llr := make([]float64, h.N())
	for i, bit := range cw {
		s := 1.0
		if bit == 1 {
			s = -1.0
		}
		llr[i] = s + 0.4*r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.DecodeSoft(llr, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecFrameHard(b *testing.B) {
	c, err := NewCodec()
	if err != nil {
		b.Fatal(err)
	}
	r := sim.NewRand(5)
	msgs := make([][]int, c.Depth)
	for d := range msgs {
		msgs[d] = randMsg(r, c.Outer.K(), 1024)
	}
	frame, err := c.Encode(msgs)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame) / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]byte(nil), frame...)
		if _, _, err := c.DecodeHard(buf); err != nil {
			b.Fatal(err)
		}
	}
}
