package fec

import (
	"testing"
	"testing/quick"

	"lightwave/internal/sim"
)

func TestFieldBasics(t *testing.T) {
	f := GF1024()
	if f.Size() != 1024 || f.Bits() != 10 {
		t.Fatalf("size=%d bits=%d", f.Size(), f.Bits())
	}
	if f.Add(5, 5) != 0 {
		t.Error("a+a != 0 in char 2")
	}
	if f.Mul(0, 7) != 0 || f.Mul(7, 0) != 0 {
		t.Error("0 not absorbing")
	}
	if f.Mul(1, 7) != 7 {
		t.Error("1 not identity")
	}
}

func TestFieldInverse(t *testing.T) {
	f := GF1024()
	for a := 1; a < f.Size(); a++ {
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("a·a⁻¹ != 1 for a=%d", a)
		}
	}
}

func TestFieldDivMulRoundTrip(t *testing.T) {
	f := GF1024()
	r := sim.NewRand(1)
	for i := 0; i < 1000; i++ {
		a := r.Intn(1024)
		b := 1 + r.Intn(1023)
		if f.Mul(f.Div(a, b), b) != a {
			t.Fatalf("(a/b)·b != a for a=%d b=%d", a, b)
		}
	}
}

func TestFieldDistributive(t *testing.T) {
	f := GF1024()
	err := quick.Check(func(a, b, c uint16) bool {
		x, y, z := int(a)%1024, int(b)%1024, int(c)%1024
		return f.Mul(x, f.Add(y, z)) == f.Add(f.Mul(x, y), f.Mul(x, z))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFieldAssociativeCommutative(t *testing.T) {
	f := GF1024()
	err := quick.Check(func(a, b, c uint16) bool {
		x, y, z := int(a)%1024, int(b)%1024, int(c)%1024
		return f.Mul(x, y) == f.Mul(y, x) &&
			f.Mul(f.Mul(x, y), z) == f.Mul(x, f.Mul(y, z))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFieldExpLog(t *testing.T) {
	f := GF1024()
	for i := 0; i < 1023; i++ {
		if f.Log(f.Exp(i)) != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, f.Log(f.Exp(i)))
		}
	}
	if f.Exp(-1) != f.Exp(1022) {
		t.Error("negative exponent wrap broken")
	}
	if f.Exp(1023) != f.Exp(0) {
		t.Error("positive exponent wrap broken")
	}
}

func TestFieldGeneratorCoversGroup(t *testing.T) {
	f := GF1024()
	seen := make(map[int]bool)
	for i := 0; i < 1023; i++ {
		seen[f.Exp(i)] = true
	}
	if len(seen) != 1023 {
		t.Fatalf("α generated %d distinct elements, want 1023", len(seen))
	}
}

func TestFieldPanics(t *testing.T) {
	f := GF1024()
	for _, fn := range []func(){
		func() { f.Div(1, 0) },
		func() { f.Inv(0) },
		func() { f.Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNonPrimitivePolyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-primitive polynomial accepted")
		}
	}()
	// x^4 + 1 is not primitive over GF(2^4).
	NewField(4, 0x11)
}

func TestPolyEval(t *testing.T) {
	f := NewField(4, 0x13) // GF(16), x^4+x+1
	// p(x) = 1 + x: p(α) = 1 ^ α.
	p := []int{1, 1}
	if got := f.PolyEval(p, f.Exp(1)); got != 1^f.Exp(1) {
		t.Fatalf("PolyEval = %d", got)
	}
	if f.PolyEval(nil, 5) != 0 {
		t.Error("empty poly should evaluate to 0")
	}
}

func TestPolyMul(t *testing.T) {
	f := NewField(4, 0x13)
	// (1+x)(1+x) = 1 + x^2 over GF(2).
	got := f.PolyMul([]int{1, 1}, []int{1, 1})
	want := []int{1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if f.PolyMul(nil, []int{1}) != nil {
		t.Error("empty operand should give nil")
	}
}
