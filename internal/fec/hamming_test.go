package fec

import (
	"errors"
	"math"
	"testing"

	"lightwave/internal/sim"
)

func TestHammingParameters(t *testing.T) {
	h, err := NewHamming(7)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 128 || h.K() != 120 {
		t.Fatalf("(%d,%d)", h.N(), h.K())
	}
	if r := h.Rate(); math.Abs(r-120.0/128) > 1e-12 {
		t.Errorf("rate = %v", r)
	}
	if _, err := NewHamming(2); err == nil {
		t.Error("m=2 accepted")
	}
	if _, err := NewHamming(17); err == nil {
		t.Error("m=17 accepted")
	}
}

func randBits(r *sim.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		if r.Bernoulli(0.5) {
			b[i] = 1
		}
	}
	return b
}

func TestHammingEncodeDecodeClean(t *testing.T) {
	h, _ := NewHamming(6)
	r := sim.NewRand(1)
	data := randBits(r, h.K())
	cw, err := h.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.DecodeHard(append([]byte(nil), cw...))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("clean decode corrupted data")
		}
	}
}

func TestHammingCorrectsAllSingleErrors(t *testing.T) {
	h, _ := NewHamming(6)
	r := sim.NewRand(2)
	data := randBits(r, h.K())
	cw, _ := h.Encode(data)
	for pos := 0; pos < h.N(); pos++ {
		bad := append([]byte(nil), cw...)
		bad[pos] ^= 1
		got, err := h.DecodeHard(bad)
		if err != nil {
			t.Fatalf("single error at %d not corrected: %v", pos, err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("single error at %d miscorrected", pos)
			}
		}
	}
}

func TestHammingDetectsDoubleErrors(t *testing.T) {
	h, _ := NewHamming(6)
	r := sim.NewRand(3)
	data := randBits(r, h.K())
	cw, _ := h.Encode(data)
	for trial := 0; trial < 100; trial++ {
		p1 := r.Intn(h.N())
		p2 := (p1 + 1 + r.Intn(h.N()-1)) % h.N()
		bad := append([]byte(nil), cw...)
		bad[p1] ^= 1
		bad[p2] ^= 1
		if _, err := h.DecodeHard(bad); !errors.Is(err, ErrUncorrectable) {
			t.Fatalf("double error (%d,%d) not detected: %v", p1, p2, err)
		}
	}
}

func TestHammingEncodeLengthErrors(t *testing.T) {
	h, _ := NewHamming(5)
	if _, err := h.Encode(make([]byte, 3)); !errors.Is(err, ErrMessageLength) {
		t.Errorf("err = %v", err)
	}
	if _, err := h.DecodeHard(make([]byte, 3)); !errors.Is(err, ErrCodewordLength) {
		t.Errorf("err = %v", err)
	}
	if _, err := h.DecodeSoft(make([]float64, 3), 4); !errors.Is(err, ErrCodewordLength) {
		t.Errorf("err = %v", err)
	}
}

func TestHammingChaseFixesDoubleErrors(t *testing.T) {
	// Chase-2 with soft information can correct beyond hard-decision
	// capability when the flipped bits are among the least reliable.
	h, _ := NewHamming(6)
	r := sim.NewRand(4)
	data := randBits(r, h.K())
	cw, _ := h.Encode(data)
	llr := make([]float64, h.N())
	for i, b := range cw {
		v := 2.0 + 0.2*r.Float64()
		if b == 1 {
			v = -v
		}
		llr[i] = v
	}
	// Two channel errors with low reliability.
	llr[10] = -llr[10] * 0.05
	llr[40] = -llr[40] * 0.08
	got, err := h.DecodeSoft(llr, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("Chase failed to fix weak double error")
		}
	}
}

func TestHammingChaseMatchesHardOnCleanInput(t *testing.T) {
	h, _ := NewHamming(5)
	r := sim.NewRand(5)
	data := randBits(r, h.K())
	cw, _ := h.Encode(data)
	llr := make([]float64, h.N())
	for i, b := range cw {
		if b == 1 {
			llr[i] = -3
		} else {
			llr[i] = 3
		}
	}
	got, err := h.DecodeSoft(llr, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("clean soft decode corrupted data")
		}
	}
}

func TestHammingChaseInvalidTestBits(t *testing.T) {
	h, _ := NewHamming(5)
	if _, err := h.DecodeSoft(make([]float64, h.N()), -1); err == nil {
		t.Error("negative testBits accepted")
	}
	if _, err := h.DecodeSoft(make([]float64, h.N()), 20); err == nil {
		t.Error("huge testBits accepted")
	}
}

// TestHammingSoftGain measures the coding gain of Chase-2 soft decoding
// against an uncoded channel at the same energy per information bit; this is
// the measured counterpart of the calibrated InnerTransfer and must show a
// real positive gain.
func TestHammingSoftGain(t *testing.T) {
	h, _ := NewHamming(6) // (64,57)
	r := sim.NewRand(6)
	sigma := 0.45 // channel noise for BPSK ±1 signalling

	const words = 400
	rawErrs, softErrs, bits := 0, 0, 0
	for w := 0; w < words; w++ {
		data := randBits(r, h.K())
		cw, _ := h.Encode(data)
		llr := make([]float64, h.N())
		for i, b := range cw {
			s := 1.0
			if b == 1 {
				s = -1.0
			}
			y := s + sigma*r.NormFloat64()
			llr[i] = y
			if (y < 0) != (b == 1) {
				rawErrs++
			}
		}
		bits += h.N()
		got, err := h.DecodeSoft(llr, 5)
		if err != nil {
			softErrs += h.K() / 2
			continue
		}
		for i := range data {
			if got[i] != data[i] {
				softErrs++
			}
		}
	}
	rawBER := float64(rawErrs) / float64(bits)
	softBER := float64(softErrs) / float64(words*h.K())
	if rawBER < 1e-4 {
		t.Fatalf("channel too clean for the gain measurement: raw %.2g", rawBER)
	}
	if softBER >= rawBER/5 {
		t.Fatalf("soft decoding gain too small: raw %.3g, decoded %.3g", rawBER, softBER)
	}
}
