package fec_test

import (
	"fmt"

	"lightwave/internal/fec"
)

// ExampleRS demonstrates the KP4 Reed-Solomon codec correcting symbol
// errors.
func ExampleRS() {
	rs := fec.NewKP4()
	msg := make([]int, rs.K())
	for i := range msg {
		msg[i] = i % 1024
	}
	cw, _ := rs.Encode(msg)

	// Corrupt 15 symbols — the code's full correction radius.
	for i := 0; i < 15; i++ {
		cw[i*30] ^= 0x3FF
	}
	_, corrected, err := rs.Decode(cw)
	fmt.Println(corrected, err)
	// Output: 15 <nil>
}

// ExampleConcatenated shows the analytic transfer of the concatenated FEC
// stack cleaning a channel the outer code alone cannot.
func ExampleConcatenated() {
	stack := fec.NewConcatenated()
	outerOnly := fec.NewKP4()

	channelBER := 1e-3 // five times the KP4 threshold
	fmt.Println(outerOnly.Transfer(channelBER) < 1e-13)
	fmt.Println(stack.Transfer(channelBER) < 1e-13)
	// Output:
	// false
	// true
}
