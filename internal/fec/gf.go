// Package fec implements the forward-error-correction stack of the paper's
// bidi transceiver DSP (§3.3.2, Fig 12): the standard "KP4" Reed-Solomon
// RS(544,514) outer code over GF(2^10) with a Berlekamp-Massey decoder, an
// inner soft-decision code (extended Hamming with Chase-2 decoding, standing
// in for the proprietary low-latency SFEC with a matched ~1.5-1.7 dB coding
// gain), a block interleaver, the concatenation pipeline, and fast analytic
// input→output BER transfer functions for sweep-style experiments.
package fec

import "fmt"

// Field is a finite field GF(2^m) with precomputed log/antilog tables.
type Field struct {
	m    uint  // extension degree
	size int   // 2^m
	poly int   // primitive polynomial (including x^m term)
	exp  []int // exp[i] = α^i, doubled for wraparound-free multiply
	log  []int // log[x] = i such that α^i = x; log[0] unused
}

// NewField builds GF(2^m) from the given primitive polynomial. It panics if
// the polynomial does not generate the full multiplicative group, since that
// is a programming error, not an input error.
func NewField(m uint, poly int) *Field {
	size := 1 << m
	f := &Field{m: m, size: size, poly: poly,
		exp: make([]int, 2*size), log: make([]int, size)}
	x := 1
	for i := 0; i < size-1; i++ {
		f.exp[i] = x
		if f.log[x] != 0 && x != 1 {
			panic(fmt.Sprintf("fec: polynomial %#x is not primitive for GF(2^%d)", poly, m))
		}
		f.log[x] = i
		x <<= 1
		if x&size != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		panic(fmt.Sprintf("fec: polynomial %#x is not primitive for GF(2^%d)", poly, m))
	}
	// Duplicate the table so Mul can index exp[logA+logB] directly.
	for i := size - 1; i < 2*size; i++ {
		f.exp[i] = f.exp[i-(size-1)]
	}
	return f
}

// GF1024 is the field used by the KP4 RS(544,514) code: GF(2^10) with
// primitive polynomial x^10 + x^3 + 1.
func GF1024() *Field { return NewField(10, 0x409) }

// Size returns the number of field elements, 2^m.
func (f *Field) Size() int { return f.size }

// Bits returns the extension degree m (bits per symbol).
func (f *Field) Bits() int { return int(f.m) }

// Add returns a+b (XOR in characteristic 2).
func (f *Field) Add(a, b int) int { return a ^ b }

// Mul returns a·b.
func (f *Field) Mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a/b. It panics on division by zero.
func (f *Field) Div(a, b int) int {
	if b == 0 {
		panic("fec: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[f.log[a]-f.log[b]+f.size-1]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("fec: inverse of zero")
	}
	return f.exp[f.size-1-f.log[a]]
}

// Exp returns α^i for any integer i (negative allowed).
func (f *Field) Exp(i int) int {
	n := f.size - 1
	i %= n
	if i < 0 {
		i += n
	}
	return f.exp[i]
}

// Log returns log_α(a). It panics if a is zero.
func (f *Field) Log(a int) int {
	if a == 0 {
		panic("fec: log of zero")
	}
	return f.log[a]
}

// PolyEval evaluates the polynomial p (coefficients in ascending degree
// order) at x by Horner's rule.
func (f *Field) PolyEval(p []int, x int) int {
	y := 0
	for i := len(p) - 1; i >= 0; i-- {
		y = f.Add(f.Mul(y, x), p[i])
	}
	return y
}

// PolyMul multiplies two polynomials over the field.
func (f *Field) PolyMul(a, b []int) []int {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]int, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= f.Mul(ai, bj)
		}
	}
	return out
}
