package fec

import (
	"errors"
	"testing"
	"testing/quick"

	"lightwave/internal/sim"
)

func TestInterleaverRoundTrip(t *testing.T) {
	iv, err := NewInterleaver(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int, iv.Size())
	for i := range in {
		in[i] = i
	}
	mid, err := iv.Interleave(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iv.Deinterleave(mid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip broken at %d", i)
		}
	}
}

func TestInterleaverActuallyPermutes(t *testing.T) {
	iv, _ := NewInterleaver(4, 8)
	in := make([]int, iv.Size())
	for i := range in {
		in[i] = i
	}
	mid, _ := iv.Interleave(in)
	moved := 0
	for i := range in {
		if mid[i] != in[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("interleaver is identity")
	}
}

func TestInterleaverLengthErrors(t *testing.T) {
	iv, _ := NewInterleaver(4, 8)
	if _, err := iv.Interleave(make([]int, 3)); !errors.Is(err, ErrCodewordLength) {
		t.Errorf("err = %v", err)
	}
	if _, err := iv.Deinterleave(make([]int, 3)); !errors.Is(err, ErrCodewordLength) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewInterleaver(0, 8); err == nil {
		t.Error("0 rows accepted")
	}
}

func TestInterleaverBurstSpread(t *testing.T) {
	iv, _ := NewInterleaver(8, 16)
	if got := iv.BurstSpread(8); got != 1 {
		t.Errorf("spread(8) = %d, want 1", got)
	}
	if got := iv.BurstSpread(9); got != 2 {
		t.Errorf("spread(9) = %d, want 2", got)
	}
	if got := iv.BurstSpread(0); got != 0 {
		t.Errorf("spread(0) = %d", got)
	}
}

func TestInterleaverBurstSpreadEmpirical(t *testing.T) {
	// Inject a contiguous burst in the interleaved domain and verify no
	// row (outer codeword) takes more than BurstSpread symbols of it.
	iv, _ := NewInterleaver(8, 16)
	r := sim.NewRand(1)
	for trial := 0; trial < 50; trial++ {
		burst := 1 + r.Intn(30)
		start := r.Intn(iv.Size() - burst)
		marked := make([]int, iv.Size())
		for i := start; i < start+burst; i++ {
			marked[i] = 1
		}
		orig, _ := iv.Deinterleave(marked)
		perRow := make([]int, 8)
		for i, m := range orig {
			if m == 1 {
				perRow[i/16]++
			}
		}
		maxRow := 0
		for _, c := range perRow {
			if c > maxRow {
				maxRow = c
			}
		}
		if maxRow > iv.BurstSpread(burst) {
			t.Fatalf("burst %d spread %d > bound %d", burst, maxRow, iv.BurstSpread(burst))
		}
	}
}

func TestInterleaverProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, rRaw, cRaw uint8) bool {
		rows := int(rRaw%16) + 1
		cols := int(cRaw%16) + 1
		iv, err := NewInterleaver(rows, cols)
		if err != nil {
			return false
		}
		rnd := sim.NewRand(seed)
		in := make([]int, iv.Size())
		for i := range in {
			in[i] = rnd.Intn(1000)
		}
		mid, _ := iv.Interleave(in)
		out, _ := iv.Deinterleave(mid)
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
