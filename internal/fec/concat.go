package fec

import (
	"errors"
	"fmt"
)

// Codec is the full concatenated FEC pipeline of §3.3.2 with real codecs:
// Depth outer RS codewords are bit-interleaved across each other and
// wrapped in inner extended-Hamming blocks. Interleaving across the outer
// codewords converts an inner-block decoding failure (a burst of up to N
// consecutive line bits) into a few bit errors per outer codeword — well
// inside the RS correction radius.
type Codec struct {
	Outer *RS
	Inner *Hamming
	// Depth is the number of outer codewords interleaved per frame.
	Depth int
	// ChaseBits is the Chase-2 test-pattern width for soft decoding.
	ChaseBits int
}

// NewCodec returns the production-style stack: KP4 outer, (64,57) inner,
// depth-8 interleaving, 4-bit Chase decoding.
func NewCodec() (*Codec, error) {
	inner, err := NewHamming(6)
	if err != nil {
		return nil, err
	}
	return &Codec{Outer: NewKP4(), Inner: inner, Depth: 8, ChaseBits: 4}, nil
}

// Errors returned by the codec.
var (
	ErrFrameSize  = errors.New("fec: wrong frame size")
	ErrOuterCount = errors.New("fec: wrong number of outer messages")
)

// MessageSymbols returns the payload size per frame: Depth outer messages
// of K symbols each.
func (c *Codec) MessageSymbols() int { return c.Depth * c.Outer.K() }

// outerBits is the serialized size of the interleaved outer codewords.
func (c *Codec) outerBits() int {
	return c.Depth * c.Outer.N() * c.Outer.Field().Bits()
}

// innerBlocks is the number of inner codewords per frame (payload padded
// to a whole number of blocks).
func (c *Codec) innerBlocks() int {
	return (c.outerBits() + c.Inner.K() - 1) / c.Inner.K()
}

// FrameBits returns the line-side frame length in bits.
func (c *Codec) FrameBits() int { return c.innerBlocks() * c.Inner.N() }

// Rate returns the overall code rate.
func (c *Codec) Rate() float64 {
	payload := float64(c.MessageSymbols() * c.Outer.Field().Bits())
	return payload / float64(c.FrameBits())
}

// Encode maps Depth outer messages (each Outer.K() symbols) to line bits.
func (c *Codec) Encode(messages [][]int) ([]byte, error) {
	if len(messages) != c.Depth {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrOuterCount, len(messages), c.Depth)
	}
	m := c.Outer.Field().Bits()
	serial := make([]byte, c.outerBits())
	for d, msg := range messages {
		cw, err := c.Outer.Encode(msg)
		if err != nil {
			return nil, err
		}
		// Bit-interleave: bit b of codeword d lands at position b·Depth+d.
		for i, sym := range cw {
			for bit := 0; bit < m; bit++ {
				b := byte(sym >> (m - 1 - bit) & 1)
				pos := (i*m+bit)*c.Depth + d
				serial[pos] = b
			}
		}
	}
	// Wrap in inner blocks (zero padding at the tail).
	frame := make([]byte, 0, c.FrameBits())
	data := make([]byte, c.Inner.K())
	for blk := 0; blk < c.innerBlocks(); blk++ {
		for j := range data {
			idx := blk*c.Inner.K() + j
			if idx < len(serial) {
				data[j] = serial[idx]
			} else {
				data[j] = 0
			}
		}
		cw, err := c.Inner.Encode(data)
		if err != nil {
			return nil, err
		}
		frame = append(frame, cw...)
	}
	return frame, nil
}

// DecodeHard decodes a hard-decision frame and returns the Depth messages
// plus the total number of symbol corrections performed by the outer
// decoders. An inner block that fails hard decoding is passed through
// uncorrected (its bit errors are left for the outer code).
func (c *Codec) DecodeHard(frame []byte) ([][]int, int, error) {
	llr := make([]float64, len(frame))
	for i, b := range frame {
		if b&1 == 1 {
			llr[i] = -1
		} else {
			llr[i] = 1
		}
	}
	return c.decode(frame, llr, false)
}

// DecodeSoft decodes from soft channel values (llr[i] > 0 ⇒ bit 0 more
// likely) using Chase-2 inner decoding.
func (c *Codec) DecodeSoft(llr []float64) ([][]int, int, error) {
	hard := make([]byte, len(llr))
	for i, v := range llr {
		if v < 0 {
			hard[i] = 1
		}
	}
	return c.decode(hard, llr, true)
}

func (c *Codec) decode(hard []byte, llr []float64, soft bool) ([][]int, int, error) {
	if len(hard) != c.FrameBits() {
		return nil, 0, fmt.Errorf("%w: got %d bits, want %d", ErrFrameSize, len(hard), c.FrameBits())
	}
	serial := make([]byte, c.innerBlocks()*c.Inner.K())
	n := c.Inner.N()
	for blk := 0; blk < c.innerBlocks(); blk++ {
		var data []byte
		var err error
		if soft {
			data, err = c.Inner.DecodeSoft(llr[blk*n:(blk+1)*n], c.ChaseBits)
		} else {
			cw := append([]byte(nil), hard[blk*n:(blk+1)*n]...)
			data, err = c.Inner.DecodeHard(cw)
		}
		if err != nil {
			// Detected-uncorrectable inner block: pass the raw data bits
			// through and let the outer code mop up.
			data = c.Inner.extract(hard[blk*n : (blk+1)*n])
		}
		copy(serial[blk*c.Inner.K():], data)
	}

	m := c.Outer.Field().Bits()
	msgs := make([][]int, c.Depth)
	corrected := 0
	for d := 0; d < c.Depth; d++ {
		cw := make([]int, c.Outer.N())
		for i := range cw {
			sym := 0
			for bit := 0; bit < m; bit++ {
				pos := (i*m+bit)*c.Depth + d
				sym = sym<<1 | int(serial[pos]&1)
			}
			cw[i] = sym
		}
		msg, nerr, err := c.Outer.Decode(cw)
		if err != nil {
			return nil, corrected, fmt.Errorf("fec: outer codeword %d: %w", d, err)
		}
		msgs[d] = append([]int(nil), msg...)
		corrected += nerr
	}
	return msgs, corrected, nil
}
