package fec

import "math"

// KP4Threshold is the pre-FEC bit error ratio the KP4 RS(544,514) code is
// specified to clean up to effectively error-free operation (the horizontal
// dashed line in Figs 11-12 of the paper).
const KP4Threshold = 2e-4

// RSTransfer returns the post-FEC output BER of an RS(n,k) code over
// GF(2^m) symbols for an input (channel) bit error ratio p, assuming
// independent bit errors. It uses the standard bounded-distance-decoding
// analysis with log-domain binomial tails so it stays accurate at very low
// probabilities.
func (r *RS) Transfer(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 0.5
	}
	m := float64(r.f.Bits())
	ps := 1 - math.Pow(1-p, m) // symbol error probability
	if ps >= 1 {
		ps = 1
	}
	// Expected fraction of erroneous symbols after decoding:
	//   Σ_{i=t+1}^{n} (i/n)·C(n,i)·ps^i·(1-ps)^{n-i}
	// (the decoder fails and the i channel errors remain).
	n := r.n
	sum := 0.0
	lp := math.Log(ps)
	lq := math.Log1p(-ps)
	for i := r.t + 1; i <= n; i++ {
		lt := logChoose(n, i) + float64(i)*lp + float64(n-i)*lq
		term := math.Exp(lt) * float64(i) / float64(n)
		sum += term
		if term < sum*1e-15 && i > r.t+3 {
			break
		}
	}
	// Convert symbol errors back to bit errors: an erroneous symbol carries
	// on average m·p/ps errored bits.
	bitsPerBadSymbol := m * p / ps
	return sum * bitsPerBadSymbol / m
}

// logChoose returns ln C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// InnerTransfer models the inner soft-decision code of the concatenated FEC
// as an effective-SNR gain: an input BER p on the uncoded channel maps to
// the BER of a channel whose Q-factor is better by GainDB (electrical dB).
// The default gain is calibrated so the concatenated stack reproduces the
// paper's 1.6 dB optical sensitivity improvement at the KP4 threshold
// (Fig 12); the Chase decoder in this package achieves a comparable gain by
// measurement (see tests).
type InnerTransfer struct {
	// GainDB is the effective electrical SNR gain of the soft inner code.
	GainDB float64
	// RatePenaltyDB accounts for the inner code's rate overhead (the same
	// optical power carries more line bits).
	RatePenaltyDB float64
}

// DefaultInner returns the calibrated inner-code transfer. A d_min=4 code
// under soft decoding has an asymptotic gain of 10·log10(R·d_min) ≈ 5.6 dB;
// at the BER region of interest (1e-2..1e-4 input) the net effective gain
// after rate penalty is ≈ 3.2 electrical dB, which corresponds to ≈ 1.6
// optical dB for an intensity-modulated direct-detection link.
func DefaultInner() InnerTransfer {
	return InnerTransfer{GainDB: 3.6, RatePenaltyDB: 0.4}
}

// Transfer maps input BER to output BER.
func (it InnerTransfer) Transfer(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 0.5 {
		return 0.5
	}
	q := QInv(p)
	gain := math.Pow(10, (it.GainDB-it.RatePenaltyDB)/20)
	return QFunc(q * gain)
}

// Concatenated is the full receive-side FEC stack: inner soft code then
// outer RS.
type Concatenated struct {
	Inner InnerTransfer
	Outer *RS
}

// NewConcatenated returns the paper's concatenated stack: calibrated inner
// SFEC plus KP4.
func NewConcatenated() Concatenated {
	return Concatenated{Inner: DefaultInner(), Outer: NewKP4()}
}

// Transfer maps channel BER to post-FEC BER through both codes.
func (c Concatenated) Transfer(p float64) float64 {
	return c.Outer.Transfer(c.Inner.Transfer(p))
}

// QFunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// QInv inverts QFunc by bisection; it is exact enough for BER work
// (|error| < 1e-12 in x) over p ∈ (0, 0.5).
func QInv(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 0.5 {
		return 0
	}
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if QFunc(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
