package fec

import (
	"fmt"
	"math"
)

// Hamming is an extended Hamming code (2^m, 2^m − m − 1) with overall
// parity, minimum distance 4. With hard decisions it corrects single bit
// errors and detects doubles; with Chase-2 soft decoding it recovers most of
// the soft-decision coding gain, making it a faithful stand-in for the
// paper's proprietary low-latency inner SFEC (§3.3.2: "<20ns for 200Gb/s").
type Hamming struct {
	m int // parity bits (excluding the extension bit)
	n int // codeword length = 2^m
	k int // data bits = 2^m - m - 1
}

// NewHamming returns the extended Hamming code with 2^m total bits.
// m must be in [3, 16].
func NewHamming(m int) (*Hamming, error) {
	if m < 3 || m > 16 {
		return nil, fmt.Errorf("fec: invalid Hamming parameter m=%d", m)
	}
	n := 1 << m
	return &Hamming{m: m, n: n, k: n - m - 1}, nil
}

// N returns the codeword length in bits (including the extension bit).
func (h *Hamming) N() int { return h.n }

// K returns the number of data bits per codeword.
func (h *Hamming) K() int { return h.k }

// Rate returns the code rate k/n.
func (h *Hamming) Rate() float64 { return float64(h.k) / float64(h.n) }

// Encode maps k data bits to an n-bit codeword. The layout is the classic
// Hamming layout over positions 1..n-1 (parity at powers of two, data
// elsewhere) with the overall parity in position 0.
func (h *Hamming) Encode(data []byte) ([]byte, error) {
	if len(data) != h.k {
		return nil, fmt.Errorf("%w: got %d bits, want %d", ErrMessageLength, len(data), h.k)
	}
	cw := make([]byte, h.n)
	di := 0
	for pos := 1; pos < h.n; pos++ {
		if pos&(pos-1) == 0 {
			continue // parity position
		}
		cw[pos] = data[di] & 1
		di++
	}
	// Parity bits: parity p covers positions with bit p set.
	for p := 0; p < h.m; p++ {
		mask := 1 << p
		var x byte
		for pos := 1; pos < h.n; pos++ {
			if pos&mask != 0 && pos&(pos-1) != 0 {
				x ^= cw[pos]
			}
		}
		cw[mask] = x
	}
	// Overall parity over positions 1..n-1.
	var all byte
	for pos := 1; pos < h.n; pos++ {
		all ^= cw[pos]
	}
	cw[0] = all
	return cw, nil
}

// extract pulls the data bits out of a codeword.
func (h *Hamming) extract(cw []byte) []byte {
	data := make([]byte, 0, h.k)
	for pos := 1; pos < h.n; pos++ {
		if pos&(pos-1) != 0 {
			data = append(data, cw[pos]&1)
		}
	}
	return data
}

// syndrome returns the Hamming syndrome (error position, 0 if none) and the
// overall parity of a hard codeword.
func (h *Hamming) syndrome(cw []byte) (syn int, parity byte) {
	for pos := 1; pos < h.n; pos++ {
		if cw[pos]&1 != 0 {
			syn ^= pos
		}
	}
	for pos := 0; pos < h.n; pos++ {
		parity ^= cw[pos] & 1
	}
	return syn, parity
}

// DecodeHard decodes hard bits in place: single errors are corrected, and
// detected-uncorrectable patterns return ErrUncorrectable.
func (h *Hamming) DecodeHard(cw []byte) ([]byte, error) {
	if len(cw) != h.n {
		return nil, fmt.Errorf("%w: got %d bits, want %d", ErrCodewordLength, len(cw), h.n)
	}
	syn, parity := h.syndrome(cw)
	switch {
	case syn == 0 && parity == 0:
		// clean
	case parity == 1:
		// Odd number of errors; assume single and correct it. syn==0 with
		// odd parity means the extension bit itself flipped.
		if syn != 0 {
			cw[syn] ^= 1
		} else {
			cw[0] ^= 1
		}
	default:
		// syn != 0 with even parity: double error detected.
		return nil, ErrUncorrectable
	}
	return h.extract(cw), nil
}

// DecodeSoft runs Chase-2 decoding over soft channel values. llr[i] > 0
// means bit i is more likely 0; |llr[i]| is the reliability. The p least
// reliable positions (p = testBits) are exhaustively flipped and the
// candidate with the best correlation metric wins.
func (h *Hamming) DecodeSoft(llr []float64, testBits int) ([]byte, error) {
	if len(llr) != h.n {
		return nil, fmt.Errorf("%w: got %d values, want %d", ErrCodewordLength, len(llr), h.n)
	}
	if testBits < 0 || testBits > 16 {
		return nil, fmt.Errorf("fec: invalid Chase test bits %d", testBits)
	}
	hard := make([]byte, h.n)
	for i, v := range llr {
		if v < 0 {
			hard[i] = 1
		}
	}
	// Find the testBits least-reliable positions.
	weak := leastReliable(llr, testBits)

	bestMetric := math.Inf(1)
	var best []byte
	cand := make([]byte, h.n)
	for pattern := 0; pattern < 1<<testBits; pattern++ {
		copy(cand, hard)
		for b := 0; b < testBits; b++ {
			if pattern&(1<<b) != 0 {
				cand[weak[b]] ^= 1
			}
		}
		// Hard-decode the perturbed word to land on a codeword.
		trial := make([]byte, h.n)
		copy(trial, cand)
		if _, err := h.DecodeHard(trial); err != nil {
			continue
		}
		m := correlationMetric(llr, trial)
		if m < bestMetric {
			bestMetric = m
			best = append(best[:0], trial...)
		}
	}
	if best == nil {
		return nil, ErrUncorrectable
	}
	return h.extract(best), nil
}

// leastReliable returns the indices of the p smallest |llr| values.
func leastReliable(llr []float64, p int) []int {
	idx := make([]int, 0, p)
	for j := 0; j < p; j++ {
		best := -1
		for i, v := range llr {
			skip := false
			for _, u := range idx {
				if u == i {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			if best == -1 || math.Abs(v) < math.Abs(llr[best]) {
				best = i
			}
		}
		idx = append(idx, best)
	}
	return idx
}

// correlationMetric is the (negated) correlation between the candidate
// codeword and the soft values; lower is better.
func correlationMetric(llr []float64, cw []byte) float64 {
	m := 0.0
	for i, v := range llr {
		s := 1.0
		if cw[i] == 1 {
			s = -1.0
		}
		m -= s * v
	}
	return m
}
