package fec

import (
	"math"
	"testing"
)

func TestQFuncKnownValues(t *testing.T) {
	if got := QFunc(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Q(0) = %v", got)
	}
	// Q(1.2816) ≈ 0.1.
	if got := QFunc(1.2816); math.Abs(got-0.1) > 1e-3 {
		t.Errorf("Q(1.2816) = %v", got)
	}
	// Q(3.719) ≈ 1e-4.
	if got := QFunc(3.719); math.Abs(got-1e-4)/1e-4 > 0.02 {
		t.Errorf("Q(3.719) = %v", got)
	}
}

func TestQInvRoundTrip(t *testing.T) {
	for _, p := range []float64{0.4, 0.1, 1e-2, 1e-4, 1e-8, 1e-12} {
		q := QInv(p)
		if got := QFunc(q); math.Abs(got-p)/p > 1e-6 {
			t.Errorf("QFunc(QInv(%g)) = %g", p, got)
		}
	}
	if !math.IsInf(QInv(0), 1) {
		t.Error("QInv(0) should be +Inf")
	}
	if QInv(0.5) != 0 {
		t.Error("QInv(0.5) should be 0")
	}
}

func TestRSTransferMonotone(t *testing.T) {
	rs := NewKP4()
	prev := 0.0
	for _, p := range []float64{1e-6, 1e-5, 1e-4, 3e-4, 1e-3, 1e-2} {
		out := rs.Transfer(p)
		if out < prev {
			t.Fatalf("transfer not monotone at p=%g", p)
		}
		prev = out
	}
}

func TestRSTransferCleansKP4Threshold(t *testing.T) {
	rs := NewKP4()
	// At the KP4 threshold the output must be effectively error-free
	// (the point of the 2e-4 specification).
	out := rs.Transfer(KP4Threshold)
	if out > 1e-13 {
		t.Errorf("post-FEC BER at threshold = %g, want < 1e-13", out)
	}
	// Well above threshold the code must visibly fail.
	if rs.Transfer(5e-3) < 1e-9 {
		t.Error("code implausibly strong at 5e-3 input")
	}
}

func TestRSTransferEdgeCases(t *testing.T) {
	rs := NewKP4()
	if rs.Transfer(0) != 0 {
		t.Error("Transfer(0) != 0")
	}
	if rs.Transfer(1) != 0.5 {
		t.Error("Transfer(1) != 0.5")
	}
}

func TestInnerTransferGain(t *testing.T) {
	it := DefaultInner()
	// The inner code must improve any operating point in the waterfall
	// region.
	for _, p := range []float64{1e-2, 1e-3, 1e-4} {
		if out := it.Transfer(p); out >= p {
			t.Errorf("inner code worsened BER at %g: %g", p, out)
		}
	}
	if it.Transfer(0) != 0 {
		t.Error("Transfer(0) != 0")
	}
	if it.Transfer(0.6) != 0.5 {
		t.Error("Transfer(>=0.5) != 0.5")
	}
}

func TestConcatenatedStrongerThanOuterAlone(t *testing.T) {
	c := NewConcatenated()
	outer := NewKP4()
	for _, p := range []float64{1e-3, 5e-4, 2e-4} {
		if c.Transfer(p) > outer.Transfer(p) {
			t.Errorf("concatenation weaker than outer alone at %g", p)
		}
	}
}

func TestConcatenatedExtendsThreshold(t *testing.T) {
	// The concatenated stack must clean an input BER well above the bare
	// KP4 threshold — that is exactly the sensitivity gain of Fig 12.
	c := NewConcatenated()
	if got := c.Transfer(2e-3); got > 1e-13 {
		t.Errorf("concatenated stack output at 2e-3 input = %g", got)
	}
}

func TestLogChoose(t *testing.T) {
	// C(5,2) = 10.
	if got := math.Exp(logChoose(5, 2)); math.Abs(got-10) > 1e-9 {
		t.Errorf("C(5,2) = %v", got)
	}
	// C(544,15) computed without overflow.
	if v := logChoose(544, 15); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Error("logChoose overflow")
	}
}
