// Package eps models electrical packet switches and Clos fabrics built from
// them — the incumbent technology the lightwave fabric replaces (Fig 1a's
// spine blocks, and the EPS-based DCN option of Table 1). An EPS does
// per-packet processing, so unlike an OCS it pays per-hop latency and per-
// bit energy regardless of traffic pattern.
package eps

import (
	"errors"
	"fmt"
)

// Chassis describes one electrical packet switch.
type Chassis struct {
	Name string
	// Radix is the number of ports.
	Radix int
	// PortGbps is the per-port rate.
	PortGbps float64
	// HopLatencySec is the store-and-forward/pipeline latency per hop
	// (§3.2.1: hundreds of nanoseconds if not microseconds per hop).
	HopLatencySec float64
	// CostUnits is the chassis cost in catalog units.
	CostUnits float64
	// PowerW is the chassis power draw.
	PowerW float64
}

// DCNChassis returns the datacenter-class EPS used in the Table 1 DCN
// fabric option.
func DCNChassis() Chassis {
	return Chassis{
		Name:          "eps-64x800g",
		Radix:         64,
		PortGbps:      800,
		HopLatencySec: 600e-9,
		CostUnits:     265,
		PowerW:        435,
	}
}

// SpinePortCost and SpinePortPowerW are the per-port cost and power of a
// spine block in the spine-full DCN comparison (§4.2 / [47]).
const (
	SpinePortCost   = 1.67
	SpinePortPowerW = 12.25
)

// ErrInfeasible is returned when a Clos cannot be built from the chassis.
var ErrInfeasible = errors.New("eps: infeasible clos")

// Clos is a folded-Clos (leaf/spine, optionally 3-tier) fabric of identical
// chassis serving a number of endpoint ports.
type Clos struct {
	Chassis   Chassis
	Endpoints int
	Tiers     int // 2 or 3
	// Oversubscription is endpoint bandwidth over uplink bandwidth at the
	// leaf (1 = non-blocking).
	Oversubscription float64

	Leaves, Spines, Supers int
	// Links per tier boundary.
	LeafSpineLinks, SpineSuperLinks int
}

// NewClos sizes a non-blocking-or-oversubscribed Clos for the given number
// of endpoints.
func NewClos(ch Chassis, endpoints, tiers int, oversub float64) (*Clos, error) {
	if endpoints <= 0 || (tiers != 2 && tiers != 3) || oversub < 1 {
		return nil, fmt.Errorf("%w: endpoints=%d tiers=%d oversub=%g", ErrInfeasible, endpoints, tiers, oversub)
	}
	c := &Clos{Chassis: ch, Endpoints: endpoints, Tiers: tiers, Oversubscription: oversub}
	// Leaf: split radix between down (endpoints) and up, with oversub.
	down := int(float64(ch.Radix) * oversub / (1 + oversub))
	if down <= 0 || down >= ch.Radix {
		return nil, fmt.Errorf("%w: radix %d too small", ErrInfeasible, ch.Radix)
	}
	up := ch.Radix - down
	c.Leaves = ceilDiv(endpoints, down)
	c.LeafSpineLinks = c.Leaves * up
	if tiers == 2 {
		c.Spines = ceilDiv(c.LeafSpineLinks, ch.Radix)
		return c, nil
	}
	// 3-tier: spines split radix down/up equally.
	c.Spines = ceilDiv(c.LeafSpineLinks, ch.Radix/2)
	c.SpineSuperLinks = c.Spines * (ch.Radix / 2)
	c.Supers = ceilDiv(c.SpineSuperLinks, ch.Radix)
	return c, nil
}

// Switches returns the total chassis count.
func (c *Clos) Switches() int { return c.Leaves + c.Spines + c.Supers }

// FabricLinks returns the number of inter-switch links (each needing a
// transceiver at both ends).
func (c *Clos) FabricLinks() int { return c.LeafSpineLinks + c.SpineSuperLinks }

// Cost returns the chassis cost of the fabric (transceivers are accounted
// by the cost package).
func (c *Clos) Cost() float64 { return float64(c.Switches()) * c.Chassis.CostUnits }

// Power returns the chassis power of the fabric.
func (c *Clos) Power() float64 { return float64(c.Switches()) * c.Chassis.PowerW }

// PathHops returns the switch hops an endpoint-to-endpoint path takes:
// same-leaf traffic takes 1, cross-leaf 3 (leaf-spine-leaf), cross-pod in a
// 3-tier fabric 5.
func (c *Clos) PathHops(sameLeaf, samePod bool) int {
	switch {
	case sameLeaf:
		return 1
	case c.Tiers == 2 || samePod:
		return 3
	default:
		return 5
	}
}

// PathLatency returns the switching latency of a path.
func (c *Clos) PathLatency(sameLeaf, samePod bool) float64 {
	return float64(c.PathHops(sameLeaf, samePod)) * c.Chassis.HopLatencySec
}

// BisectionGbps returns the fabric's bisection bandwidth.
func (c *Clos) BisectionGbps() float64 {
	return float64(c.LeafSpineLinks) * c.Chassis.PortGbps / 2 / c.Oversubscription
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
