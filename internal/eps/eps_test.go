package eps

import (
	"errors"
	"testing"
)

func TestNewClosTwoTier(t *testing.T) {
	c, err := NewClos(DCNChassis(), 1024, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Non-blocking: down = up = 32 ports per leaf → 32 leaves, 1024
	// leaf-spine links, 16 spines.
	if c.Leaves != 32 {
		t.Errorf("leaves = %d", c.Leaves)
	}
	if c.LeafSpineLinks != 1024 {
		t.Errorf("leaf-spine links = %d", c.LeafSpineLinks)
	}
	if c.Spines != 16 {
		t.Errorf("spines = %d", c.Spines)
	}
	if c.Supers != 0 {
		t.Errorf("supers = %d in a 2-tier fabric", c.Supers)
	}
	if c.Switches() != 48 {
		t.Errorf("switches = %d", c.Switches())
	}
}

func TestNewClosThreeTier(t *testing.T) {
	c, err := NewClos(DCNChassis(), 1024, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Supers == 0 {
		t.Fatal("3-tier fabric has no supers")
	}
	if c.FabricLinks() != c.LeafSpineLinks+c.SpineSuperLinks {
		t.Fatal("FabricLinks inconsistent")
	}
}

func TestNewClosOversubscription(t *testing.T) {
	nb, _ := NewClos(DCNChassis(), 2048, 2, 1)
	os, err := NewClos(DCNChassis(), 2048, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if os.Switches() >= nb.Switches() {
		t.Fatal("oversubscribed fabric should need fewer switches")
	}
	if os.BisectionGbps() >= nb.BisectionGbps() {
		t.Fatal("oversubscription should reduce bisection bandwidth")
	}
}

func TestNewClosErrors(t *testing.T) {
	if _, err := NewClos(DCNChassis(), 0, 2, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewClos(DCNChassis(), 100, 4, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewClos(DCNChassis(), 100, 2, 0.5); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewClos(Chassis{Radix: 1}, 100, 2, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v", err)
	}
}

func TestPathHops(t *testing.T) {
	c2, _ := NewClos(DCNChassis(), 1024, 2, 1)
	if c2.PathHops(true, true) != 1 {
		t.Error("same-leaf hops")
	}
	if c2.PathHops(false, true) != 3 {
		t.Error("cross-leaf hops in 2-tier")
	}
	c3, _ := NewClos(DCNChassis(), 4096, 3, 1)
	if c3.PathHops(false, false) != 5 {
		t.Error("cross-pod hops in 3-tier")
	}
	if c3.PathHops(false, true) != 3 {
		t.Error("same-pod hops in 3-tier")
	}
}

func TestPathLatencyExceedsOCS(t *testing.T) {
	// §3.2.1: EPS fabrics "can add hundreds of nanoseconds if not
	// microseconds of delay per hop" — a 3-hop path must exceed 1 µs,
	// whereas a direct OCS circuit adds effectively none.
	c, _ := NewClos(DCNChassis(), 1024, 2, 1)
	if l := c.PathLatency(false, true); l < 1e-6 {
		t.Fatalf("3-hop latency = %v", l)
	}
}

func TestClosCostPowerScale(t *testing.T) {
	small, _ := NewClos(DCNChassis(), 512, 2, 1)
	big, _ := NewClos(DCNChassis(), 4096, 2, 1)
	if big.Cost() <= small.Cost() || big.Power() <= small.Power() {
		t.Fatal("bigger fabric should cost more")
	}
}
