package eps

import (
	"errors"
	"math"
)

// Latency under load: an EPS pays per-packet processing and queueing at
// every hop, while an OCS circuit is a piece of glass — §3.2.1: "The
// absence of per-packet processing within an OCS means only a small amount
// of deterministic latency is added on a per-hop basis ... other kinds of
// network fabrics ... can add hundreds of nanoseconds if not microseconds
// of delay per hop."

// ErrLoad is returned for utilizations outside [0, 1).
var ErrLoad = errors.New("eps: load must be in [0, 1)")

// ServiceTime returns the serialization time of a packet of the given size
// on one port.
func (c Chassis) ServiceTime(packetBytes int) float64 {
	return float64(packetBytes) * 8 / (c.PortGbps * 1e9)
}

// HopLatencyUnderLoad returns the mean per-hop latency at the given port
// utilization: pipeline latency + serialization + M/M/1 queueing delay.
func (c Chassis) HopLatencyUnderLoad(packetBytes int, load float64) (float64, error) {
	if load < 0 || load >= 1 {
		return 0, ErrLoad
	}
	s := c.ServiceTime(packetBytes)
	queue := s * load / (1 - load)
	return c.HopLatencySec + s + queue, nil
}

// PathLatencyUnderLoad returns the mean end-to-end switching latency of a
// Clos path at uniform port utilization.
func (c *Clos) PathLatencyUnderLoad(sameLeaf, samePod bool, packetBytes int, load float64) (float64, error) {
	per, err := c.Chassis.HopLatencyUnderLoad(packetBytes, load)
	if err != nil {
		return 0, err
	}
	return float64(c.PathHops(sameLeaf, samePod)) * per, nil
}

// OCSPathLatency returns the added latency of a direct OCS circuit: the
// light propagates through passive glass, so only the fiber flight time
// remains (≈5 ns/m, zero per-hop processing).
func OCSPathLatency(fiberM float64) float64 {
	const nsPerM = 5e-9
	return fiberM * nsPerM
}

// LatencyAdvantage returns how many times lower the direct-OCS path
// latency is than the loaded Clos path for the same endpoints.
func (c *Clos) LatencyAdvantage(fiberM float64, packetBytes int, load float64) (float64, error) {
	clos, err := c.PathLatencyUnderLoad(false, true, packetBytes, load)
	if err != nil {
		return 0, err
	}
	ocs := OCSPathLatency(fiberM)
	if ocs <= 0 {
		return math.Inf(1), nil
	}
	return clos / ocs, nil
}
