package eps

import (
	"errors"
	"math"
	"testing"
)

func TestHopLatencyGrowsWithLoad(t *testing.T) {
	ch := DCNChassis()
	prev := 0.0
	for _, load := range []float64{0, 0.3, 0.6, 0.9} {
		l, err := ch.HopLatencyUnderLoad(1500, load)
		if err != nil {
			t.Fatal(err)
		}
		if l <= prev {
			t.Fatalf("latency not increasing at load %v", load)
		}
		prev = l
	}
}

func TestHopLatencyLoadBounds(t *testing.T) {
	ch := DCNChassis()
	if _, err := ch.HopLatencyUnderLoad(1500, 1.0); !errors.Is(err, ErrLoad) {
		t.Errorf("err = %v", err)
	}
	if _, err := ch.HopLatencyUnderLoad(1500, -0.1); !errors.Is(err, ErrLoad) {
		t.Errorf("err = %v", err)
	}
}

func TestServiceTime(t *testing.T) {
	ch := DCNChassis() // 800G ports
	got := ch.ServiceTime(1500)
	want := 1500.0 * 8 / 800e9
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("service time = %v", got)
	}
}

func TestHundredsOfNanosecondsPerHop(t *testing.T) {
	// §3.2.1's claim: EPS hops cost hundreds of ns even moderately loaded.
	ch := DCNChassis()
	l, err := ch.HopLatencyUnderLoad(1500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if l < 100e-9 || l > 10e-6 {
		t.Fatalf("per-hop latency = %v", l)
	}
}

func TestOCSPathLatencyIsFlightTimeOnly(t *testing.T) {
	// 100 m of fiber ≈ 500 ns of flight time, nothing else.
	if got := OCSPathLatency(100); math.Abs(got-500e-9) > 1e-12 {
		t.Fatalf("OCS latency = %v", got)
	}
	if OCSPathLatency(0) != 0 {
		t.Fatal("zero fiber should be zero latency")
	}
}

func TestLatencyAdvantage(t *testing.T) {
	c, err := NewClos(DCNChassis(), 1024, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same 100 m physical separation: the Clos path pays 3 loaded hops on
	// top of flight time, the OCS circuit only flight time.
	adv, err := c.LatencyAdvantage(100, 1500, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if adv < 3 {
		t.Fatalf("advantage = %v, want several times lower latency", adv)
	}
	if _, err := c.LatencyAdvantage(100, 1500, 1.5); !errors.Is(err, ErrLoad) {
		t.Errorf("err = %v", err)
	}
	inf, _ := c.LatencyAdvantage(0, 1500, 0.5)
	if !math.IsInf(inf, 1) {
		t.Fatal("zero fiber should give infinite advantage")
	}
}
