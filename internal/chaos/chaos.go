// Package chaos is the deterministic fault-injection and
// resilience-evaluation subsystem. The paper's availability story (§3.4,
// §4.3) is about *operational* failure handling — OCS outages, circuit
// flaps, transceiver BER excursions, pod losses and maintenance drains
// that the control plane must absorb without fabric-wide outages. This
// package turns those fault classes into typed, virtual-time scenarios
// and replays them against the real control loops:
//
//   - a Scenario is a schedule of fault events, composable by hand,
//     from named templates, or from a random generator driven by
//     sim.Substream and the failure-rate table in internal/avail;
//   - an Injector applies each fault through the production seams —
//     fleet.Manager backend errors, Poke and DrainOCS/UndrainOCS, the
//     te collector's observed-traffic input, telemetry.Detector BER
//     feeds, and dcn trunk-capacity mutation — never by reaching around
//     the control plane;
//   - an Evaluator replays a scenario end-to-end against a live fleet
//     reconciler and te loop, measuring MTTR, convergence-event counts,
//     quarantine correctness and goodput-under-failure via the flow
//     simulator. Flow simulations fan out on internal/par with one
//     substream per epoch, so a report is bit-identical at any worker
//     count.
//
// Determinism contract: everything measured in a Report is a pure
// function of the (scenario, config, seed) triple. Fleet reconciliation
// runs on wall-clock goroutines, so the evaluator applies each
// fleet-touching fault and waits for its deterministic settle signature
// (exactly QuarantineAfter reconcile errors before a quarantine, a
// recovered edge after an undrain, one convergence per drain toggle)
// before advancing virtual time; wall-clock durations never enter the
// report.
package chaos

import (
	"errors"
	"sync/atomic"

	"lightwave/internal/telemetry"
)

// Errors returned by the package.
var (
	ErrScenario = errors.New("chaos: invalid scenario")
	ErrConfig   = errors.New("chaos: invalid configuration")
	ErrTarget   = errors.New("chaos: fault targets a seam the injector was not given")
)

// KP4BERLimit is the hard BER threshold above which a link is out of
// spec (the 2e-4 KP4 FEC limit the paper's telemetry enforces); a
// ber-degrade event at or above it administratively drains the trunk.
const KP4BERLimit = 2e-4

var registry atomic.Pointer[telemetry.Registry]

func init() {
	registry.Store(telemetry.NewRegistry())
}

// SetRegistry directs the package's chaos_* metrics to r (nil resets to
// a private registry). Daemons call this at startup so injected-fault
// counters appear on their /metrics endpoint.
func SetRegistry(r *telemetry.Registry) {
	if r == nil {
		r = telemetry.NewRegistry()
	}
	registry.Store(r)
}

// Registry returns the registry chaos_* metrics are recorded in.
func Registry() *telemetry.Registry {
	return registry.Load()
}
