package chaos

import (
	"testing"
)

// TestEvaluateCrashRestart is the chaos crash-restart scenario: churn a
// journaled control plane, kill it without a shutdown snapshot, tear the
// log tail, and recover. The recovered intent store must hash identically
// to the pre-crash one and fully reconverge on fresh backends.
func TestEvaluateCrashRestart(t *testing.T) {
	rep, err := EvaluateCrashRestart(CrashRestartConfig{
		Dir:        t.TempDir(),
		ChurnSteps: 30,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DigestMatch {
		t.Errorf("recovered intent store diverged: pre=%s post=%s",
			rep.PreCrashDigest, rep.RecoveredDigest)
	}
	if rep.TruncatedBytes == 0 {
		t.Error("torn tail not detected on replay")
	}
	if rep.ReplayErrors != 0 {
		t.Errorf("replay errors = %d", rep.ReplayErrors)
	}
	if rep.SnapshotLSN == 0 {
		t.Error("mid-churn checkpoint left no snapshot")
	}
	if !rep.Reconverged {
		t.Error("fleet did not reconverge after restart")
	}
	if rep.RealizedFraction != 1 {
		t.Errorf("realized fraction = %v (desired %d slices)", rep.RealizedFraction, rep.DesiredSlices)
	}
	if rep.Mutations == 0 || rep.DesiredSlices == 0 {
		t.Errorf("churn too quiet: %+v", rep)
	}
	if rep.Text() == "" {
		t.Error("empty report text")
	}
}

// TestEvaluateCrashRestartDeterministic: one seed, two runs, identical
// deterministic report text (wall-clock fields are excluded from Text).
func TestEvaluateCrashRestartDeterministic(t *testing.T) {
	run := func() string {
		rep, err := EvaluateCrashRestart(CrashRestartConfig{
			Dir:        t.TempDir(),
			ChurnSteps: 20,
			Seed:       5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Text()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("reports diverge:\n%s\n%s", a, b)
	}
}

func TestEvaluateCrashRestartNeedsDir(t *testing.T) {
	if _, err := EvaluateCrashRestart(CrashRestartConfig{}); err == nil {
		t.Fatal("missing state dir accepted")
	}
}
