package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lightwave/internal/dcn"
	"lightwave/internal/fleet"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// Targets names the control-plane seams the injector actuates through.
// Every fault travels a path the real system has: pod losses surface as
// backend errors to the fleet reconciler, OCS outages go through the
// fleet drain workflow before the switch dies, trunk impairments are
// admin-down bookkeeping that the evaluator feeds back into the te
// collector. Nothing writes around the control plane.
type Targets struct {
	// Fleet is the reconciler faults are steered through; required.
	Fleet *fleet.Manager
	// Backends maps compute-pod names to their injectable backends
	// (pod-loss / pod-restore targets).
	Backends map[string]*FaultyBackend
	// Fabric is the DCN OCS fabric for outage/restore faults; optional —
	// without it OCS outages are rejected.
	Fabric *dcn.Fabric
	// FabricPod is Fleet's pod name fronting the Fabric: OCS outages
	// drain it first, so the control plane sees the failure coming the
	// way a maintenance system would.
	FabricPod string
	// Detector receives BER samples from ber-degrade faults; optional.
	Detector *telemetry.Detector
}

// Injector applies scenario events to live targets. All methods are safe
// for concurrent use; the internal lock is always taken before any
// fleet.Manager call (lock order: Injector.mu → Manager.mu), and the
// manager never calls back in, so injection cannot deadlock the
// reconciler.
type Injector struct {
	mu sync.Mutex
	t  Targets

	// timers tracks pending ApplyLive lift timers so Close can stop them
	// before the daemon tears down the targets underneath; lifts holds
	// in-flight lift callbacks Close must wait out.
	timers map[*time.Timer]struct{}
	lifts  sync.WaitGroup
	closed bool

	// adminDown counts admin-removed trunks per block pair (a flap and a
	// BER drain on the same pair stack).
	adminDown map[[2]int]int
	downTotal int
	// downSwitches tracks injected OCS outages; needHeal is set whenever
	// the fabric changed under the live topology and a HealAfterFailure
	// pass is owed.
	downSwitches map[int]bool
	needHeal     bool

	active    int
	injected  int
	lastFault string

	// Hot-path metrics are resolved once at construction so TrunkDown /
	// TrunkUp stay allocation-free.
	cInjected   *telemetry.Counter
	cTrunkDown  *telemetry.Counter
	cBERDrains  *telemetry.Counter
	cOCSOutages *telemetry.Counter
	cPodLosses  *telemetry.Counter
	cDrains     *telemetry.Counter
	gActive     *telemetry.Gauge
	gTrunksDown *telemetry.Gauge
}

// NewInjector builds an injector over the targets.
func NewInjector(t Targets) (*Injector, error) {
	if t.Fleet == nil {
		return nil, fmt.Errorf("%w: injector needs a fleet manager", ErrTarget)
	}
	if t.Fabric != nil && t.FabricPod == "" {
		return nil, fmt.Errorf("%w: a fabric target needs its fleet pod name", ErrTarget)
	}
	reg := Registry()
	return &Injector{
		t:            t,
		adminDown:    make(map[[2]int]int),
		downSwitches: make(map[int]bool),
		timers:       make(map[*time.Timer]struct{}),
		cInjected:    reg.Counter("chaos_injected_total"),
		cTrunkDown:   reg.Counter("chaos_trunk_faults_total"),
		cBERDrains:   reg.Counter("chaos_ber_drains_total"),
		cOCSOutages:  reg.Counter("chaos_ocs_outages_total"),
		cPodLosses:   reg.Counter("chaos_pod_losses_total"),
		cDrains:      reg.Counter("chaos_drains_total"),
		gActive:      reg.Gauge("chaos_active_faults"),
		gTrunksDown:  reg.Gauge("chaos_trunks_admin_down"),
	}, nil
}

// Apply injects one event's onset.
func (in *Injector) Apply(ev Event) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if err := in.applyLocked(ev); err != nil {
		return err
	}
	in.noteLocked(ev)
	return nil
}

// Lift reverses a bounded transient previously applied with Apply. It is
// the evaluator's (and ApplyLive's timer's) counterpart to the onset;
// kinds without a lift are no-ops.
func (in *Injector) Lift(ev Event) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.liftLocked(ev)
}

// ApplyLive injects the event now and, for bounded transients, schedules
// the lift on a wall-clock timer DurationSeconds later — the mode the
// daemons' chaos-inject RPC uses. After Close the fault is still applied
// but no lift is scheduled: the daemon is tearing down anyway.
func (in *Injector) ApplyLive(ev Event) error {
	if err := in.Apply(ev); err != nil {
		return err
	}
	if !ev.needsDuration() {
		return nil
	}
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	in.lifts.Add(1)
	var tm *time.Timer
	//lwlint:ignore walltime ApplyLive is the live-daemon seam: lift timers run on wall clock by design; deterministic replay uses Apply/Lift driven by virtual time
	tm = time.AfterFunc(time.Duration(ev.DurationSeconds*float64(time.Second)), func() {
		defer in.lifts.Done()
		in.mu.Lock()
		closed := in.closed
		delete(in.timers, tm)
		in.mu.Unlock()
		if closed {
			return
		}
		in.Lift(ev) //nolint:errcheck // a failed lift leaves the fault armed; status shows it
	})
	in.timers[tm] = struct{}{}
	in.mu.Unlock()
	return nil
}

// Close stops pending lift timers and waits for in-flight lifts, after
// which the injector no longer touches its targets — call it before
// tearing down the fleet manager or fabric it actuates. Idempotent.
func (in *Injector) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	//lwlint:ignore maprange teardown of a timer set: each Stop/Done/delete is independent, so stop order cannot reach results
	for tm := range in.timers {
		if tm.Stop() {
			// The callback will never run; settle its WaitGroup slot.
			in.lifts.Done()
		}
		delete(in.timers, tm)
	}
	in.mu.Unlock()
	in.lifts.Wait()
}

func (in *Injector) applyLocked(ev Event) error {
	switch ev.Kind {
	case KindOCSOutage:
		return in.ocsOutageLocked(ev.OCS)
	case KindOCSRestore:
		return in.ocsRestoreLocked(ev.OCS)
	case KindCircuitFlap:
		in.trunkDownLocked(ev.Trunk)
		return nil
	case KindBERDegrade:
		return in.berDegradeLocked(ev)
	case KindPodLoss:
		return in.podLossLocked(ev.Pod)
	case KindPodRestore:
		return in.podRestoreLocked(ev.Pod)
	case KindStuckDrain, KindSlowDrain:
		in.cDrains.Inc()
		return in.t.Fleet.DrainOCS(ev.Pod, ev.OCS)
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrScenario, ev.Kind)
	}
}

func (in *Injector) liftLocked(ev Event) error {
	switch ev.Kind {
	case KindCircuitFlap:
		in.trunkUpLocked(ev.Trunk)
		return nil
	case KindBERDegrade:
		if ev.BER >= KP4BERLimit {
			in.trunkUpLocked(ev.Trunk)
		}
		return nil
	case KindSlowDrain:
		return in.t.Fleet.UndrainOCS(ev.Pod, ev.OCS)
	default:
		return nil
	}
}

// ocsOutageLocked kills a fabric switch the operational way: drain its
// fleet representation first (so the control plane knows capacity is
// going away), then fail both PSUs. The owed HealAfterFailure pass is
// deferred to the next Heal call — in the evaluator that is the next
// reconcile epoch, matching the paper's observe→react cadence.
func (in *Injector) ocsOutageLocked(idx int) error {
	if in.t.Fabric == nil {
		return fmt.Errorf("%w: no fabric target for %s", ErrTarget, KindOCSOutage)
	}
	if in.downSwitches[idx] {
		return nil
	}
	if err := in.t.Fleet.DrainOCS(in.t.FabricPod, idx); err != nil {
		return err
	}
	if _, err := in.t.Fabric.FailSwitch(idx); err != nil {
		return err
	}
	in.downSwitches[idx] = true
	in.needHeal = true
	in.active++
	in.cOCSOutages.Inc()
	in.gActive.Set(float64(in.active))
	return nil
}

func (in *Injector) ocsRestoreLocked(idx int) error {
	if in.t.Fabric == nil {
		return fmt.Errorf("%w: no fabric target for %s", ErrTarget, KindOCSRestore)
	}
	if !in.downSwitches[idx] {
		return nil
	}
	if err := in.t.Fabric.RepairSwitch(idx); err != nil {
		return err
	}
	if err := in.t.Fleet.UndrainOCS(in.t.FabricPod, idx); err != nil {
		return err
	}
	delete(in.downSwitches, idx)
	in.needHeal = true
	in.active--
	in.gActive.Set(float64(in.active))
	return nil
}

func (in *Injector) podLossLocked(pod string) error {
	b, ok := in.t.Backends[pod]
	if !ok {
		return fmt.Errorf("%w: pod %q has no injectable backend", ErrTarget, pod)
	}
	b.Fail(nil)
	in.active++
	in.cPodLosses.Inc()
	in.gActive.Set(float64(in.active))
	// Poke forces a reconcile pass so the loss is discovered now, not at
	// the next intent change — the reconciler then walks its ordinary
	// retry → quarantine path.
	return in.t.Fleet.Poke(pod)
}

func (in *Injector) podRestoreLocked(pod string) error {
	b, ok := in.t.Backends[pod]
	if !ok {
		return fmt.Errorf("%w: pod %q has no injectable backend", ErrTarget, pod)
	}
	if !b.Failed() {
		return nil
	}
	b.Heal()
	in.active--
	in.gActive.Set(float64(in.active))
	// UndrainPod releases the quarantine (if the retry budget ran out)
	// and re-reconciles retained intents either way.
	return in.t.Fleet.UndrainPod(pod)
}

// berDegradeLocked feeds the degraded sample to the telemetry detector —
// the same path production BER counters take — and admin-drains the
// trunk when the sample is at or beyond the KP4 FEC limit, mirroring the
// paper's link-SLO drain policy.
func (in *Injector) berDegradeLocked(ev Event) error {
	if in.t.Detector != nil {
		in.t.Detector.Observe(ev.BER)
	}
	if ev.BER >= KP4BERLimit {
		in.cBERDrains.Inc()
		in.trunkDownLocked(ev.Trunk)
	}
	return nil
}

// TrunkDown administratively removes one trunk between the block pair.
// This is the injector's allocation-free hot path: bookkeeping plus
// pre-resolved counters, no fabric mutation (the evaluator folds
// admin-down trunks into the degraded topology it simulates and the
// observed matrix it feeds the te collector).
//
//lwlint:hotpath
func (in *Injector) TrunkDown(pair [2]int) {
	in.mu.Lock()
	in.trunkDownLocked(pair)
	in.mu.Unlock()
}

// TrunkUp restores one admin-downed trunk.
//
//lwlint:hotpath
func (in *Injector) TrunkUp(pair [2]int) {
	in.mu.Lock()
	in.trunkUpLocked(pair)
	in.mu.Unlock()
}

//lwlint:hotpath
func (in *Injector) trunkDownLocked(pair [2]int) {
	in.adminDown[normPair(pair)]++
	in.downTotal++
	in.active++
	in.cTrunkDown.Inc()
	in.gActive.Set(float64(in.active))
	in.gTrunksDown.Set(float64(in.downTotal))
}

//lwlint:hotpath
func (in *Injector) trunkUpLocked(pair [2]int) {
	k := normPair(pair)
	if in.adminDown[k] == 0 {
		return
	}
	in.adminDown[k]--
	in.downTotal--
	in.active--
	in.gActive.Set(float64(in.active))
	in.gTrunksDown.Set(float64(in.downTotal))
}

//lwlint:hotpath
func normPair(p [2]int) [2]int {
	if p[0] > p[1] {
		p[0], p[1] = p[1], p[0]
	}
	return p
}

// noteLocked records bookkeeping common to every successful injection.
func (in *Injector) noteLocked(ev Event) {
	in.injected++
	in.lastFault = ev.String()
	in.cInjected.Inc()
}

// Heal gives the fabric its owed repair pass: if any OCS outage or
// restore changed the hardware since the last call, re-program the
// intended topology over the healthy switches. When the survivors cannot
// host the full topology the pass stays owed and is retried at the next
// call — capacity remains degraded until hardware comes back, exactly
// the operational behavior. The evaluator calls this once per reconcile
// epoch; daemons call it from their control loop.
func (in *Injector) Heal(intended *dcn.Topology) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.needHeal || in.t.Fabric == nil {
		return nil
	}
	if _, err := in.t.Fabric.HealAfterFailure(intended); err != nil {
		if errors.Is(err, dcn.ErrTooFewSwitches) {
			return nil
		}
		return err
	}
	in.needHeal = false
	return nil
}

// Program realizes a topology on the fabric under the injector's lock,
// using only healthy switches — the applier seam te reconfigurations use
// while a scenario may have switches down. When the surviving switches
// cannot host the topology, the hardware keeps its current circuits and
// the shortfall stays visible as degraded capacity (no error: a fabric
// that cannot follow a plan is a scenario outcome, not a replay bug).
// Without a fabric target it is a no-op.
func (in *Injector) Program(t *dcn.Topology) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.t.Fabric == nil {
		return nil
	}
	if _, err := in.t.Fabric.HealAfterFailure(t); err != nil {
		if errors.Is(err, dcn.ErrTooFewSwitches) {
			return nil
		}
		return err
	}
	return nil
}

// SwitchesTouching returns the sorted IDs of healthy switches hosting a
// circuit of any torn pair — the set a reconfiguration stage must drain.
func (in *Injector) SwitchesTouching(tears [][2]int) []int {
	if len(tears) == 0 || in.t.Fabric == nil {
		return nil
	}
	torn := make(map[[2]int]bool, len(tears))
	for _, t := range tears {
		torn[normPair(t)] = true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var ids []int
	for i, sw := range in.t.Fabric.Switches {
		if i >= topo.NumOCS {
			break
		}
		for _, c := range sw.Circuits() {
			x, y := int(c.North), int(c.South)
			if torn[normPair([2]int{x, y})] {
				ids = append(ids, i)
				break
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// Degraded returns the topology actually carrying traffic: the fabric's
// live trunks (post-outage, post-heal) minus admin-downed trunks. With
// no fabric target it is the intended topology minus admin-down.
func (in *Injector) Degraded(intended *dcn.Topology) *dcn.Topology {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := &dcn.Topology{
		Blocks:          intended.Blocks,
		UplinksPerBlock: intended.UplinksPerBlock,
		Links:           make([][]int, intended.Blocks),
	}
	var live [][]int
	if in.t.Fabric != nil {
		live = in.t.Fabric.LiveTrunks()
	}
	for i := 0; i < intended.Blocks; i++ {
		out.Links[i] = make([]int, intended.Blocks)
		for j := 0; j < intended.Blocks; j++ {
			n := intended.Links[i][j]
			if live != nil && i < len(live) && j < len(live[i]) {
				n = live[i][j]
			}
			if i < j {
				n -= in.adminDown[[2]int{i, j}]
			} else if j < i {
				n -= in.adminDown[[2]int{j, i}]
			}
			if n < 0 {
				n = 0
			}
			out.Links[i][j] = n
		}
	}
	return out
}

// PerturbObserved derates an offered-rate matrix by the live/intended
// capacity fraction per block pair — the te collector's input seam.
// Sources behind a degraded pair back off to what the pair can carry, so
// the collector observes the fault the way production telemetry would:
// as a traffic shift, not a magic capacity signal.
func (in *Injector) PerturbObserved(bps [][]float64, intended, degraded *dcn.Topology) {
	for i := range bps {
		for j := range bps[i] {
			if i == j || i >= intended.Blocks || j >= intended.Blocks {
				continue
			}
			want := intended.Links[i][j]
			have := degraded.Links[i][j]
			if want > 0 && have < want {
				bps[i][j] *= float64(have) / float64(want)
			}
		}
	}
}

// InjectorStatus snapshots an injector for chaos-status RPCs and tests.
type InjectorStatus struct {
	InjectedTotal int
	ActiveFaults  int
	TrunksDown    int
	DownSwitches  int
	LastFault     string
}

// Status snapshots the injector.
func (in *Injector) Status() InjectorStatus {
	in.mu.Lock()
	defer in.mu.Unlock()
	return InjectorStatus{
		InjectedTotal: in.injected,
		ActiveFaults:  in.active,
		TrunksDown:    in.downTotal,
		DownSwitches:  len(in.downSwitches),
		LastFault:     in.lastFault,
	}
}
