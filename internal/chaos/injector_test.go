package chaos

import (
	"errors"
	"testing"
	"time"

	"lightwave/internal/dcn"
	"lightwave/internal/fleet"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// testFleet builds a one-pod manager with an injectable backend and a
// standing slice intent, plus an injector over it (no fabric).
func testFleet(t *testing.T) (*fleet.Manager, *FaultyBackend, *Injector) {
	t.Helper()
	m := fleet.NewManager(fleet.Options{
		BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
		QuarantineAfter: 3, Seed: 42,
	})
	t.Cleanup(m.Close)
	b := NewFaultyBackend(NewMemoryBackend())
	if err := m.AddPod("pod0", b); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("pod0", fleet.SliceIntent{
		Name: "job", Shape: topo.Shape{X: 4, Y: 4, Z: 4},
	}); err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(Targets{Fleet: m, Backends: map[string]*FaultyBackend{"pod0": b}})
	if err != nil {
		t.Fatal(err)
	}
	return m, b, inj
}

func waitPod(t *testing.T, m *fleet.Manager, pred func(fleet.PodStatus) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, p := range m.Status().Pods {
			if p.Name == "pod0" && pred(p) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestInjectorPodLossQuarantinesThenRecovers(t *testing.T) {
	m, b, inj := testFleet(t)
	waitPod(t, m, func(p fleet.PodStatus) bool { return p.Converged }, "setup")

	if err := inj.Apply(Event{Kind: KindPodLoss, Pod: "pod0"}); err != nil {
		t.Fatal(err)
	}
	waitPod(t, m, func(p fleet.PodStatus) bool { return p.Quarantined }, "quarantine")
	if !b.Failed() {
		t.Fatal("backend not failed after pod-loss")
	}
	st := inj.Status()
	if st.ActiveFaults != 1 || st.InjectedTotal != 1 {
		t.Fatalf("status = %+v, want 1 active / 1 injected", st)
	}

	if err := inj.Apply(Event{Kind: KindPodRestore, Pod: "pod0"}); err != nil {
		t.Fatal(err)
	}
	waitPod(t, m, func(p fleet.PodStatus) bool { return p.Converged && !p.Quarantined }, "recovery")
	if st := inj.Status(); st.ActiveFaults != 0 {
		t.Fatalf("active faults = %d after restore, want 0", st.ActiveFaults)
	}
	// Restoring a healthy pod is a no-op, not a double-count.
	if err := inj.Apply(Event{Kind: KindPodRestore, Pod: "pod0"}); err != nil {
		t.Fatal(err)
	}
	if st := inj.Status(); st.ActiveFaults != 0 {
		t.Fatalf("active faults = %d after redundant restore, want 0", st.ActiveFaults)
	}
}

func TestInjectorRejectsUnknownTargets(t *testing.T) {
	_, _, inj := testFleet(t)
	if err := inj.Apply(Event{Kind: KindPodLoss, Pod: "ghost"}); !errors.Is(err, ErrTarget) {
		t.Errorf("unknown pod: err = %v, want ErrTarget", err)
	}
	if err := inj.Apply(Event{Kind: KindOCSOutage, OCS: 0}); !errors.Is(err, ErrTarget) {
		t.Errorf("no fabric: err = %v, want ErrTarget", err)
	}
	if _, err := NewInjector(Targets{}); !errors.Is(err, ErrTarget) {
		t.Errorf("no fleet: err = %v, want ErrTarget", err)
	}
}

func TestInjectorTrunkBookkeeping(t *testing.T) {
	_, _, inj := testFleet(t)
	top, err := dcn.UniformMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}

	inj.TrunkDown([2]int{1, 0}) // reversed pair normalizes
	inj.TrunkDown([2]int{0, 1})
	deg := inj.Degraded(top)
	want := top.Links[0][1] - 2
	if want < 0 {
		want = 0
	}
	if deg.Links[0][1] != want || deg.Links[1][0] != want {
		t.Fatalf("degraded [0][1] = %d/%d, want %d", deg.Links[0][1], deg.Links[1][0], want)
	}
	if st := inj.Status(); st.TrunksDown != 2 {
		t.Fatalf("trunks down = %d, want 2", st.TrunksDown)
	}

	inj.TrunkUp([2]int{0, 1})
	inj.TrunkUp([2]int{0, 1})
	inj.TrunkUp([2]int{0, 1}) // extra lift is a no-op, never negative
	if st := inj.Status(); st.TrunksDown != 0 || st.ActiveFaults != 0 {
		t.Fatalf("status after lifts = %+v, want all clear", st)
	}
	if deg := inj.Degraded(top); deg.Links[0][1] != top.Links[0][1] {
		t.Fatalf("degraded [0][1] = %d after lifts, want %d", deg.Links[0][1], top.Links[0][1])
	}
}

func TestInjectorBERPolicy(t *testing.T) {
	_, _, inj := testFleet(t)
	alerts := &telemetry.MemorySink{}
	det := telemetry.NewDetector("ber", alerts)
	det.HardLimit = KP4BERLimit
	inj.t.Detector = det
	top, err := dcn.UniformMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Below the KP4 limit: observed, not drained.
	below := Event{Kind: KindBERDegrade, Trunk: [2]int{0, 1}, BER: 1e-6, DurationSeconds: 5}
	if err := inj.Apply(below); err != nil {
		t.Fatal(err)
	}
	if st := inj.Status(); st.TrunksDown != 0 {
		t.Fatalf("sub-limit BER drained a trunk: %+v", st)
	}
	if err := inj.Lift(below); err != nil {
		t.Fatal(err)
	}

	// At the limit: the trunk drains for the duration and the detector
	// posts a critical alert.
	at := Event{Kind: KindBERDegrade, Trunk: [2]int{0, 1}, BER: KP4BERLimit * 2, DurationSeconds: 5}
	if err := inj.Apply(at); err != nil {
		t.Fatal(err)
	}
	if deg := inj.Degraded(top); deg.Links[0][1] != top.Links[0][1]-1 {
		t.Fatalf("limit-exceeding BER did not drain the trunk")
	}
	found := false
	for _, a := range alerts.Alerts() {
		if a.Severity == telemetry.Critical {
			found = true
		}
	}
	if !found {
		t.Error("no critical alert for a BER beyond the hard limit")
	}
	if err := inj.Lift(at); err != nil {
		t.Fatal(err)
	}
	if st := inj.Status(); st.TrunksDown != 0 {
		t.Fatalf("trunk still down after lift: %+v", st)
	}
}

func TestInjectorApplyLiveLiftsTransients(t *testing.T) {
	_, _, inj := testFleet(t)
	ev := Event{Kind: KindCircuitFlap, Trunk: [2]int{2, 3}, DurationSeconds: 0.02}
	if err := inj.ApplyLive(ev); err != nil {
		t.Fatal(err)
	}
	if st := inj.Status(); st.TrunksDown != 1 {
		t.Fatalf("trunks down = %d right after ApplyLive, want 1", st.TrunksDown)
	}
	deadline := time.Now().Add(5 * time.Second)
	for inj.Status().TrunksDown != 0 {
		if time.Now().After(deadline) {
			t.Fatal("flap never lifted")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestInjectorOCSOutageHealCycle(t *testing.T) {
	cfg := EvalConfig{Scenario: Scenario{Name: "unused", HorizonSeconds: 60}}.withDefaults()
	h, err := newHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.close()
	if err := h.converge(); err != nil {
		t.Fatal(err)
	}
	intended := h.loop.Current()
	full := trunkTotal(h.inj.Degraded(intended))

	if err := h.inj.Apply(Event{Kind: KindOCSOutage, OCS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.settle(allSettled, "outage"); err != nil {
		t.Fatal(err)
	}
	if got := trunkTotal(h.inj.Degraded(intended)); got >= full {
		t.Fatalf("degraded trunks = %d after outage, want < %d", got, full)
	}
	// Idempotent: a second outage of the same switch changes nothing.
	if err := h.inj.Apply(Event{Kind: KindOCSOutage, OCS: 1}); err != nil {
		t.Fatal(err)
	}

	// The owed heal re-places lost trunks on the surviving switches.
	if err := h.inj.Heal(intended); err != nil {
		t.Fatal(err)
	}
	if got := trunkTotal(h.inj.Degraded(intended)); got != full {
		t.Fatalf("degraded trunks = %d after heal, want %d", got, full)
	}

	if err := h.inj.Apply(Event{Kind: KindOCSRestore, OCS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.settle(allSettled, "restore"); err != nil {
		t.Fatal(err)
	}
	if st := h.inj.Status(); st.DownSwitches != 0 {
		t.Fatalf("down switches = %d after restore, want 0", st.DownSwitches)
	}
}

func trunkTotal(t *dcn.Topology) int {
	n := 0
	for i := range t.Links {
		for j := i + 1; j < len(t.Links[i]); j++ {
			n += t.Links[i][j]
		}
	}
	return n
}

func TestPerturbObservedDerates(t *testing.T) {
	_, _, inj := testFleet(t)
	top, err := dcn.UniformMesh(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	inj.TrunkDown([2]int{0, 1})
	deg := inj.Degraded(top)
	bps := [][]float64{
		{0, 100, 100, 100},
		{100, 0, 100, 100},
		{100, 100, 0, 100},
		{100, 100, 100, 0},
	}
	inj.PerturbObserved(bps, top, deg)
	wantFrac := float64(deg.Links[0][1]) / float64(top.Links[0][1])
	if bps[0][1] != 100*wantFrac || bps[1][0] != 100*wantFrac {
		t.Errorf("degraded pair rate = %g/%g, want %g", bps[0][1], bps[1][0], 100*wantFrac)
	}
	if bps[2][3] != 100 {
		t.Errorf("healthy pair rate = %g, want 100", bps[2][3])
	}
}
