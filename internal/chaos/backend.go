package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

// ErrInjected marks backend failures produced by fault injection, so
// operators (and tests) can tell an injected fault from an organic one
// in reconcile-error details.
var ErrInjected = errors.New("chaos: injected backend fault")

// FaultyBackend wraps a fleet.Backend with an injectable failure mode:
// while failed, every *mutating* call (Ensure, Destroy) returns the
// fault and read paths keep working — a dead pod manager still shows up
// in status scrapes, it just cannot actuate. This is the seam pod-loss
// faults flow through: the reconciler sees ordinary backend errors,
// retries with backoff, and quarantines, exactly as it would for a real
// outage.
type FaultyBackend struct {
	mu    sync.Mutex
	inner fleet.Backend
	fault error
}

// NewFaultyBackend wraps inner.
func NewFaultyBackend(inner fleet.Backend) *FaultyBackend {
	return &FaultyBackend{inner: inner}
}

// Fail arms the failure mode; a nil err installs ErrInjected.
func (b *FaultyBackend) Fail(err error) {
	if err == nil {
		err = ErrInjected
	}
	b.mu.Lock()
	b.fault = err
	b.mu.Unlock()
}

// Heal disarms the failure mode.
func (b *FaultyBackend) Heal() {
	b.mu.Lock()
	b.fault = nil
	b.mu.Unlock()
}

// Failed reports whether the failure mode is armed.
func (b *FaultyBackend) Failed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fault != nil
}

func (b *FaultyBackend) currentFault() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fault
}

// Ensure implements fleet.Backend.
func (b *FaultyBackend) Ensure(name string, shape topo.Shape, cubes []int) (bool, error) {
	if err := b.currentFault(); err != nil {
		return false, fmt.Errorf("ensure %q: %w", name, err)
	}
	return b.inner.Ensure(name, shape, cubes)
}

// Destroy implements fleet.Backend.
func (b *FaultyBackend) Destroy(name string) error {
	if err := b.currentFault(); err != nil {
		return fmt.Errorf("destroy %q: %w", name, err)
	}
	return b.inner.Destroy(name)
}

// Slices implements fleet.Backend; reads survive the fault.
func (b *FaultyBackend) Slices() []string { return b.inner.Slices() }

// Info implements fleet.Backend; reads survive the fault.
func (b *FaultyBackend) Info() fleet.PodInfo { return b.inner.Info() }

// MemoryBackend is a minimal in-memory fleet.Backend for evaluator pods:
// slices are bookkeeping entries on a 64-cube inventory. It exists so
// scenario replays can run thousands of reconcile passes without paying
// for full fabric simulation on the compute pods.
type MemoryBackend struct {
	mu     sync.Mutex
	slices map[string]int // name -> cubes occupied
	cubes  int
}

// NewMemoryBackend returns an empty 64-cube pod.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{slices: make(map[string]int), cubes: 64}
}

// Ensure implements fleet.Backend.
func (b *MemoryBackend) Ensure(name string, shape topo.Shape, _ []int) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := shape.Cubes()
	prev, ok := b.slices[name]
	b.slices[name] = n
	return !ok || prev != n, nil
}

// Destroy implements fleet.Backend.
func (b *MemoryBackend) Destroy(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.slices, name)
	return nil
}

// Slices implements fleet.Backend.
func (b *MemoryBackend) Slices() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.slices))
	for n := range b.slices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info implements fleet.Backend.
func (b *MemoryBackend) Info() fleet.PodInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	used := 0
	names := make([]string, 0, len(b.slices))
	for n, c := range b.slices {
		used += c
		names = append(names, n)
	}
	sort.Strings(names)
	return fleet.PodInfo{InstalledCubes: b.cubes, FreeCubes: b.cubes - used, Slices: names}
}
