package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"lightwave/internal/dcn"
	"lightwave/internal/fleet"
	"lightwave/internal/ocs"
	"lightwave/internal/par"
	"lightwave/internal/sim"
	"lightwave/internal/te"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// EvalConfig parameterizes a scenario replay against a full control
// plane: a fleet.Manager with injectable compute pods and a DCN fabric
// pod, a te.Loop reconfiguring that fabric through the fleet drain
// workflow, and the flow simulator measuring goodput on the degraded
// topology each epoch.
type EvalConfig struct {
	Scenario Scenario
	// Blocks/Uplinks size the DCN; NumOCS is the fabric's switch count
	// (default Uplinks+4: a block's degree can reach Uplinks and edge
	// coloring may need degree+1 switches, so the default rides out one
	// outage with enough slack to re-place every lost trunk).
	Blocks, Uplinks, NumOCS int
	// Pods are the injectable compute pods (default pod0..pod3), each
	// carrying one slice so backend faults have intent to fail against.
	Pods []string
	// TrunkBps is the per-trunk per-direction rate (default 50e9).
	TrunkBps float64
	// EpochSeconds is the virtual reconcile/te epoch (default 60).
	EpochSeconds float64
	// LoadFraction scales the synthetic trace so its peak epoch offers
	// this fraction of fabric capacity (default 0.6).
	LoadFraction float64
	// SimSeconds and MeanFlowBytes parameterize the per-epoch flow
	// simulation (defaults 2 and 1e9).
	SimSeconds    float64
	MeanFlowBytes float64
	// RecoveredFraction is the goodput fraction at or above which a
	// capacity fault counts as recovered (default 0.99).
	RecoveredFraction float64
	// QuarantineAfter is the reconciler's retry budget (default 3).
	QuarantineAfter int
	// SettleTimeout bounds each real-time wait for the reconciler to
	// reach a fault's deterministic post-state (default 10s; generous —
	// reconcile backoffs are milliseconds).
	SettleTimeout time.Duration
	Seed          uint64
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.Blocks == 0 {
		c.Blocks = 8
	}
	if c.Uplinks == 0 {
		c.Uplinks = c.Blocks
	}
	if c.NumOCS == 0 {
		c.NumOCS = c.Uplinks + 4
	}
	if len(c.Pods) == 0 {
		c.Pods = []string{"pod0", "pod1", "pod2", "pod3"}
	}
	if c.TrunkBps <= 0 {
		c.TrunkBps = 50e9
	}
	if c.EpochSeconds <= 0 {
		c.EpochSeconds = 60
	}
	if c.LoadFraction <= 0 {
		c.LoadFraction = 0.6
	}
	if c.SimSeconds <= 0 {
		c.SimSeconds = 2
	}
	if c.MeanFlowBytes <= 0 {
		c.MeanFlowBytes = 1e9
	}
	if c.RecoveredFraction <= 0 {
		c.RecoveredFraction = 0.99
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 10 * time.Second
	}
	return c
}

// FabricPodName is the fleet pod fronting the DCN fabric in evaluator
// replays.
const FabricPodName = "dcn"

// PodOutcome summarizes one compute pod's ride through the scenario.
type PodOutcome struct {
	Pod             string
	ReconcileErrors int
	Quarantines     int
	Recoveries      int
	Converged       int
	// BudgetRespected is false if any quarantine fired before (or after)
	// exactly QuarantineAfter consecutive reconcile errors.
	BudgetRespected bool
	// MTTRSeconds is the virtual loss→restore time of the pod's backend
	// fault (-1 when the scenario never restores it).
	MTTRSeconds float64
}

// Report is the evaluator's outcome. Text renders it in a fixed format,
// so two replays agree exactly iff their reports are byte-identical.
type Report struct {
	Scenario string
	Epochs   int
	// EventsApplied counts scenario actions (onsets and lifts) injected.
	EventsApplied int
	Pods          []PodOutcome
	// GoodputFraction[e] is epoch e's degraded/intended delivered
	// throughput; MinGoodputFraction is its minimum.
	GoodputFraction    []float64
	MinGoodputFraction float64
	// BlackoutEpochs counts epochs whose degraded topology could not
	// carry the demand at all (a demanded pair with no path).
	BlackoutEpochs int
	// CapacityMTTRSeconds is the virtual time from the first epoch whose
	// goodput fraction dropped below RecoveredFraction to the first
	// subsequent epoch at or above it (-1 if it never recovered, 0 if it
	// never dropped).
	CapacityMTTRSeconds float64
	// TEReconfigs and TEEpochs snapshot the te loop after the replay.
	TEReconfigs, TEEpochs int
	// QuarantineBudgetOK aggregates BudgetRespected over pods.
	QuarantineBudgetOK bool
}

// Text renders the report deterministically.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos report: scenario=%s epochs=%d events=%d\n", r.Scenario, r.Epochs, r.EventsApplied)
	fmt.Fprintf(&b, "goodput: min_fraction=%.6f blackout_epochs=%d capacity_mttr_s=%.3f\n",
		r.MinGoodputFraction, r.BlackoutEpochs, r.CapacityMTTRSeconds)
	fmt.Fprintf(&b, "te: reconfigs=%d epochs=%d\n", r.TEReconfigs, r.TEEpochs)
	fmt.Fprintf(&b, "quarantine_budget_ok=%t\n", r.QuarantineBudgetOK)
	for _, p := range r.Pods {
		fmt.Fprintf(&b, "pod %s: errors=%d quarantines=%d recoveries=%d converged=%d budget_ok=%t mttr_s=%.3f\n",
			p.Pod, p.ReconcileErrors, p.Quarantines, p.Recoveries, p.Converged, p.BudgetRespected, p.MTTRSeconds)
	}
	for e, g := range r.GoodputFraction {
		fmt.Fprintf(&b, "epoch %d: goodput_fraction=%.6f\n", e, g)
	}
	return b.String()
}

// Evaluate replays the scenario end-to-end. Phase A is sequential: build
// the control plane, converge it, then walk epochs — heal the fabric,
// inject the epoch's faults (waiting for the reconciler to reach each
// fault's deterministic post-state), snapshot the degraded topology, and
// feed the te loop a capacity-derated observation. Phase B fans the
// 2×Epochs flow simulations (intended and degraded topology per epoch)
// out on the worker pool with per-epoch substreams, so the whole replay
// is bit-identical at any par worker count.
func Evaluate(cfg EvalConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	epochs := int(cfg.Scenario.HorizonSeconds / cfg.EpochSeconds)
	if float64(epochs)*cfg.EpochSeconds < cfg.Scenario.HorizonSeconds {
		epochs++
	}

	h, err := newHarness(cfg)
	if err != nil {
		return nil, err
	}
	defer h.close()
	if err := h.converge(); err != nil {
		return nil, err
	}

	// Subscribe only after setup convergence: boot-time event counts
	// depend on reconcile interleaving, fault-driven ones do not.
	sub := h.mgr.Subscribe(4096)
	defer sub.Close()

	acts := cfg.Scenario.actions()
	ai := 0
	applied := 0
	demand := make([][][]float64, epochs)
	degraded := make([]*dcn.Topology, epochs)
	intended := make([]*dcn.Topology, epochs)
	for e := 0; e < epochs; e++ {
		// The fabric's owed repair pass lands at the epoch boundary —
		// the control plane reacts on its reconcile cadence, not
		// instantly.
		if err := h.inj.Heal(h.loop.Current()); err != nil {
			return nil, fmt.Errorf("chaos: heal before epoch %d: %w", e, err)
		}
		hi := float64(e+1) * cfg.EpochSeconds
		for ai < len(acts) && acts[ai].at < hi {
			if err := h.applyAction(acts[ai]); err != nil {
				return nil, fmt.Errorf("chaos: %s at %gs: %w", acts[ai].ev.Kind, acts[ai].at, err)
			}
			applied++
			ai++
		}
		intended[e] = h.loop.Current()
		degraded[e] = h.inj.Degraded(intended[e])
		m, err := h.trace.Epoch(e)
		if err != nil {
			return nil, err
		}
		scaleDemand(m, h.scale)
		demand[e] = m
		// The te collector sees the fault as backed-off traffic on the
		// degraded pairs — production telemetry's view.
		obs := cloneMatrix(m)
		h.inj.PerturbObserved(obs, intended[e], degraded[e])
		if err := h.loop.ObserveRates(obs); err != nil {
			return nil, err
		}
		if _, err := h.loop.Step(); err != nil {
			return nil, fmt.Errorf("chaos: te step at epoch %d: %w", e, err)
		}
	}

	// Phase B: goodput under failure. Job e simulates epoch e%epochs on
	// the intended (e<epochs) or degraded (e>=epochs) topology; both
	// share the epoch's arrival substream so only the topology differs.
	type simOut struct {
		bps      float64
		blackout bool
		err      error
	}
	jobs := make([]int, 2*epochs)
	for i := range jobs {
		jobs[i] = i
	}
	outs := par.Sweep("chaos_eval_sim", jobs, func(_ int, i int) simOut {
		e := i % epochs
		top := intended[e]
		if i >= epochs {
			top = degraded[e]
		}
		w := dcn.Workload{Demand: demand[e], MeanFlowBytes: cfg.MeanFlowBytes, Duration: cfg.SimSeconds}
		sc := dcn.SimConfig{TrunkBps: cfg.TrunkBps, Seed: sim.SubstreamSeed(cfg.Seed, uint64(e)), MaxTransit: 4}
		r, err := dcn.Simulate(top, w, sc)
		if errors.Is(err, dcn.ErrDegenerate) {
			// A demanded pair with no surviving path: the epoch is a
			// blackout, not an evaluator error.
			return simOut{blackout: true}
		}
		return simOut{bps: r.ThroughputBps, err: err}
	})

	rep := &Report{
		Scenario:           cfg.Scenario.Name,
		Epochs:             epochs,
		EventsApplied:      applied,
		GoodputFraction:    make([]float64, epochs),
		MinGoodputFraction: 1,
	}
	for e := 0; e < epochs; e++ {
		in, dg := outs[e], outs[epochs+e]
		if in.err != nil {
			return nil, fmt.Errorf("chaos: intended sim epoch %d: %w", e, in.err)
		}
		if dg.err != nil {
			return nil, fmt.Errorf("chaos: degraded sim epoch %d: %w", e, dg.err)
		}
		frac := 1.0
		switch {
		case dg.blackout || in.blackout:
			frac = 0
			rep.BlackoutEpochs++
		case in.bps > 0 && dg.bps < in.bps:
			frac = dg.bps / in.bps
		}
		rep.GoodputFraction[e] = frac
		if frac < rep.MinGoodputFraction {
			rep.MinGoodputFraction = frac
		}
	}
	rep.CapacityMTTRSeconds = capacityMTTR(rep.GoodputFraction, cfg.RecoveredFraction, cfg.EpochSeconds)

	rep.Pods = podOutcomes(cfg, drain(sub))
	rep.QuarantineBudgetOK = true
	for _, p := range rep.Pods {
		rep.QuarantineBudgetOK = rep.QuarantineBudgetOK && p.BudgetRespected
	}
	st := h.loop.Status()
	rep.TEReconfigs, rep.TEEpochs = st.Reconfigs, st.Epoch
	return rep, nil
}

// harness is the live control plane a scenario replays against.
type harness struct {
	cfg      EvalConfig
	mgr      *fleet.Manager
	loop     *te.Loop
	fabric   *dcn.Fabric
	inj      *Injector
	backends map[string]*FaultyBackend
	trace    te.TraceConfig
	scale    float64
}

func newHarness(cfg EvalConfig) (*harness, error) {
	ocsCfg := ocs.DefaultConfig()
	ocsCfg.Seed = sim.SubstreamSeed(cfg.Seed, 2000)
	fabric, err := dcn.NewFabric(cfg.Blocks, cfg.NumOCS, ocsCfg)
	if err != nil {
		return nil, err
	}
	mgr := fleet.NewManager(fleet.Options{
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      8 * time.Millisecond,
		QuarantineAfter: cfg.QuarantineAfter,
		Seed:            cfg.Seed,
	})
	h := &harness{cfg: cfg, mgr: mgr, fabric: fabric, backends: make(map[string]*FaultyBackend)}

	for _, name := range cfg.Pods {
		b := NewFaultyBackend(NewMemoryBackend())
		h.backends[name] = b
		if err := mgr.AddPod(name, b); err != nil {
			h.close()
			return nil, err
		}
		// One slice per pod: backend faults need standing intent to fail
		// against, or the reconciler has nothing to reconcile.
		if err := mgr.SetSliceIntent(name, fleet.SliceIntent{
			Name: "job-" + name, Shape: topo.Shape{X: 4, Y: 4, Z: 4},
		}); err != nil {
			h.close()
			return nil, err
		}
	}

	// BER samples ride the production telemetry path: a detector with the
	// KP4 FEC ceiling as its hard limit.
	det := telemetry.NewDetector("chaos-ber", nil)
	det.HardLimit = KP4BERLimit
	h.inj, err = NewInjector(Targets{
		Fleet:     mgr,
		Backends:  h.backends,
		Fabric:    fabric,
		FabricPod: FabricPodName,
		Detector:  det,
	})
	if err != nil {
		h.close()
		return nil, err
	}
	if err := mgr.AddPod(FabricPodName, &fabricBackend{inj: h.inj, f: fabric}); err != nil {
		h.close()
		return nil, err
	}

	h.loop, err = te.NewLoop(te.Config{
		Blocks: cfg.Blocks, Uplinks: cfg.Uplinks, TrunkBps: cfg.TrunkBps,
		EpochSeconds: cfg.EpochSeconds,
		Applier:      &fleetApplier{h: h},
	})
	if err != nil {
		h.close()
		return nil, err
	}
	if _, err := fabric.Program(h.loop.Current()); err != nil {
		h.close()
		return nil, err
	}

	h.trace = te.TraceConfig{
		Blocks: cfg.Blocks, Epochs: 1 << 20, BaseBps: 1,
		NumServices: 3 * cfg.Blocks, ServiceMeanBps: 10,
		ServiceMinEpochs: 16, Seed: sim.SubstreamSeed(cfg.Seed, 1000),
	}
	// Normalize like te.Evaluate: peak of the first horizon's epochs
	// offers LoadFraction of fabric capacity.
	epochs := int(cfg.Scenario.HorizonSeconds/cfg.EpochSeconds) + 1
	peak := 0.0
	for e := 0; e < epochs; e++ {
		m, err := h.trace.Epoch(e)
		if err != nil {
			h.close()
			return nil, err
		}
		if t := dcn.TotalDemand(m); t > peak {
			peak = t
		}
	}
	if peak <= 0 {
		h.close()
		return nil, fmt.Errorf("%w: trace offers no demand", ErrConfig)
	}
	h.scale = cfg.LoadFraction * float64(cfg.Blocks*cfg.Uplinks) * cfg.TrunkBps / peak
	return h, nil
}

func (h *harness) close() {
	if h.mgr != nil {
		h.mgr.Close()
	}
}

// converge waits for every pod's initial reconcile.
func (h *harness) converge() error {
	return h.settle(func(st fleet.Status) bool {
		for _, p := range st.Pods {
			if !p.Converged {
				return false
			}
		}
		return st.QueueDepth == 0
	}, "initial convergence")
}

// allSettled holds when every pod is either converged or quarantined —
// the reconciler's only two stable states (a quarantined pod stays dirty
// by design until an operator undrains it).
func allSettled(st fleet.Status) bool {
	for _, p := range st.Pods {
		if !p.Converged && !p.Quarantined {
			return false
		}
	}
	return true
}

// settle polls fleet status until pred holds — the evaluator's bridge
// between the reconciler's real-time workers and the replay's virtual
// clock. Each fault kind settles on a deterministic post-state, so event
// counts never race the epoch walk.
func (h *harness) settle(pred func(fleet.Status) bool, what string) error {
	//lwlint:ignore walltime settle waits on the fleet manager's real-time reconciler workers; the predicate it waits for is deterministic, only the wait itself is wall-clock
	deadline := time.Now().Add(h.cfg.SettleTimeout)
	for {
		if pred(h.mgr.Status()) {
			return nil
		}
		//lwlint:ignore walltime timeout guard for the live reconciler wait above; does not reach results
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: timed out waiting for %s", what)
		}
		//lwlint:ignore walltime poll backoff for the live reconciler wait; does not reach results
		time.Sleep(200 * time.Microsecond)
	}
}

func (h *harness) podStatus(st fleet.Status, name string) fleet.PodStatus {
	for _, p := range st.Pods {
		if p.Name == name {
			return p
		}
	}
	return fleet.PodStatus{}
}

// applyAction injects one primitive and waits for its deterministic
// post-state.
func (h *harness) applyAction(a action) error {
	ev := a.ev
	if a.lift {
		if err := h.inj.Lift(ev); err != nil {
			return err
		}
		if ev.Kind == KindSlowDrain {
			return h.settle(allSettled, "slow-drain lift")
		}
		return nil
	}
	if err := h.inj.Apply(ev); err != nil {
		return err
	}
	switch ev.Kind {
	case KindPodLoss:
		// The reconciler burns its retry budget and quarantines; waiting
		// for the quarantine pins the error-event count.
		return h.settle(func(st fleet.Status) bool {
			return h.podStatus(st, ev.Pod).Quarantined
		}, "quarantine of "+ev.Pod)
	case KindPodRestore:
		return h.settle(func(st fleet.Status) bool {
			p := h.podStatus(st, ev.Pod)
			return !p.Quarantined && p.Converged
		}, "recovery of "+ev.Pod)
	case KindOCSOutage, KindOCSRestore, KindStuckDrain, KindSlowDrain:
		return h.settle(allSettled, string(ev.Kind)+" settle")
	default:
		return nil
	}
}

// fleetApplier realizes te plans through the fleet drain workflow using
// only healthy switches — te.FleetApplier's discipline, tolerant of
// scenario-failed hardware.
type fleetApplier struct {
	h *harness
}

// Apply implements te.Applier.
func (a *fleetApplier) Apply(plan *te.Plan) error {
	for si, st := range plan.Stages {
		ids := a.h.inj.SwitchesTouching(st.Tear)
		for _, id := range ids {
			if err := a.h.mgr.DrainOCS(FabricPodName, id); err != nil {
				return fmt.Errorf("chaos: stage %d drain ocs %d: %w", si, id, err)
			}
		}
		err := a.h.inj.Program(st.After)
		for _, id := range ids {
			if uerr := a.h.mgr.UndrainOCS(FabricPodName, id); uerr != nil && err == nil {
				err = uerr
			}
		}
		if err != nil {
			return fmt.Errorf("chaos: stage %d: %w", si, err)
		}
	}
	return nil
}

// fabricBackend is the fleet.Backend fronting the DCN fabric: no compute
// slices, circuit inventory only, serialized with the injector's fabric
// access through the injector itself.
type fabricBackend struct {
	inj *Injector
	f   *dcn.Fabric
}

// Ensure implements fleet.Backend; the fabric pod hosts no slices.
func (b *fabricBackend) Ensure(name string, _ topo.Shape, _ []int) (bool, error) {
	return false, fmt.Errorf("%w: DCN fabric pod cannot host slice %q", fleet.ErrBadIntent, name)
}

// Destroy implements fleet.Backend.
func (b *fabricBackend) Destroy(string) error { return nil }

// Slices implements fleet.Backend.
func (b *fabricBackend) Slices() []string { return nil }

// Info implements fleet.Backend.
func (b *fabricBackend) Info() fleet.PodInfo {
	b.inj.mu.Lock()
	defer b.inj.mu.Unlock()
	n := 0
	for _, sw := range b.f.Switches {
		n += sw.NumCircuits()
	}
	return fleet.PodInfo{Circuits: n}
}

// drain collects everything the subscription buffered. The epoch walk
// settle-waited on every fault's post-state, so the feed is complete by
// the time the walk ends.
func drain(sub *fleet.Subscription) []fleet.Event {
	var evs []fleet.Event
	for {
		select {
		case ev := <-sub.Events():
			evs = append(evs, ev)
		default:
			return evs
		}
	}
}

// podOutcomes folds the event stream into per-pod outcomes, checking the
// quarantine budget: every quarantine must be preceded by exactly
// QuarantineAfter consecutive reconcile errors.
func podOutcomes(cfg EvalConfig, evs []fleet.Event) []PodOutcome {
	pods := append([]string(nil), cfg.Pods...)
	sort.Strings(pods)
	outs := make([]PodOutcome, 0, len(pods))
	for _, name := range pods {
		o := PodOutcome{Pod: name, BudgetRespected: true, MTTRSeconds: podMTTR(cfg.Scenario, name)}
		streak := 0
		for _, ev := range evs {
			if ev.Pod != name {
				continue
			}
			switch ev.Type {
			case fleet.EventReconcileError:
				o.ReconcileErrors++
				streak++
			case fleet.EventQuarantined:
				o.Quarantines++
				if streak != cfg.QuarantineAfter {
					o.BudgetRespected = false
				}
				streak = 0
			case fleet.EventRecovered:
				o.Recoveries++
				streak = 0
			case fleet.EventConverged:
				o.Converged++
				streak = 0
			}
		}
		outs = append(outs, o)
	}
	return outs
}

// podMTTR is the virtual loss→restore interval for a pod's backend
// fault: -1 when lost and never restored, 0 when never lost.
func podMTTR(s Scenario, pod string) float64 {
	loss := -1.0
	for _, ev := range s.Events {
		if ev.Pod != pod {
			continue
		}
		switch ev.Kind {
		case KindPodLoss:
			if loss < 0 {
				loss = ev.At
			}
		case KindPodRestore:
			if loss >= 0 {
				return ev.At - loss
			}
		}
	}
	if loss >= 0 {
		return -1
	}
	return 0
}

// capacityMTTR reads the goodput-fraction series: virtual time from the
// first epoch below the recovered threshold to the first subsequent
// epoch at or above it. 0 = never dropped; -1 = never recovered.
func capacityMTTR(fracs []float64, threshold, epochSeconds float64) float64 {
	first := -1
	for e, f := range fracs {
		if f < threshold {
			if first < 0 {
				first = e
			}
		} else if first >= 0 {
			return float64(e-first) * epochSeconds
		}
	}
	if first >= 0 {
		return -1
	}
	return 0
}

func scaleDemand(m [][]float64, scale float64) {
	for i := range m {
		for j := range m[i] {
			m[i][j] *= scale
		}
	}
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}
