package chaos

import (
	"errors"
	"testing"
)

func TestScenarioValidate(t *testing.T) {
	good := SingleOCSOutage(2, 30, 60, 300)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []Scenario{
		{Name: "", HorizonSeconds: 10},
		{Name: "x", HorizonSeconds: 0},
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 1, Kind: "nope"}}},
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 20, Kind: KindOCSOutage}}},
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 1, Kind: KindCircuitFlap, Trunk: [2]int{0, 1}}}},                                // no duration
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 1, Kind: KindPodLoss}}},                                                         // no pod
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 1, Kind: KindCircuitFlap, Trunk: [2]int{3, 3}, DurationSeconds: 1}}},            // degenerate trunk
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 1, Kind: KindBERDegrade, Trunk: [2]int{0, 1}, BER: 0, DurationSeconds: 1}}},     // no BER
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 1, Kind: KindSlowDrain, Pod: "p", OCS: 0, DurationSeconds: 0}}},                 // no duration
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: -1, Kind: KindPodLoss, Pod: "p"}}},                                              // negative onset
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 1, Kind: KindBERDegrade, Trunk: [2]int{-1, 2}, BER: 1e-4, DurationSeconds: 1}}}, // negative block
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 1, Kind: KindCircuitFlap, Trunk: [2]int{0, 1}, DurationSeconds: -5}}},           // negative duration
		{Name: "x", HorizonSeconds: 10, Events: []Event{{At: 1, Kind: KindStuckDrain, OCS: 1}}},                                              // no pod
	}
	for i, s := range cases {
		if err := s.Validate(); !errors.Is(err, ErrScenario) {
			t.Errorf("case %d: err = %v, want ErrScenario", i, err)
		}
	}
}

func TestActionsExpandAndOrder(t *testing.T) {
	s := Scenario{
		Name: "mix", HorizonSeconds: 100,
		Events: []Event{
			{At: 50, Kind: KindCircuitFlap, Trunk: [2]int{0, 1}, DurationSeconds: 10},
			{At: 10, Kind: KindPodLoss, Pod: "pod0"},
			{At: 90, Kind: KindSlowDrain, Pod: "pod1", OCS: 2, DurationSeconds: 30}, // lift at 120 clamps out
		},
	}
	acts := s.actions()
	if len(acts) != 4 {
		t.Fatalf("got %d actions, want 4 (one lift clamped past horizon)", len(acts))
	}
	for i := 1; i < len(acts); i++ {
		if acts[i].at < acts[i-1].at {
			t.Fatalf("actions out of order: %v after %v", acts[i].at, acts[i-1].at)
		}
	}
	if acts[1].lift || acts[1].ev.Kind != KindCircuitFlap {
		t.Errorf("action 1 = %+v, want flap onset", acts[1])
	}
	if !acts[2].lift || acts[2].ev.Kind != KindCircuitFlap || acts[2].at != 60 {
		t.Errorf("action 2 = %+v, want flap lift at 60", acts[2])
	}
}

func TestComposeMergesHorizon(t *testing.T) {
	s := Compose("both",
		SingleOCSOutage(1, 10, 20, 100),
		QuarantineDrill("pod0", 5, 40, 300),
	)
	if s.HorizonSeconds != 300 {
		t.Errorf("horizon = %g, want 300", s.HorizonSeconds)
	}
	if len(s.Events) != 4 {
		t.Errorf("events = %d, want 4", len(s.Events))
	}
	if err := s.Validate(); err != nil {
		t.Errorf("composed scenario invalid: %v", err)
	}
}

func TestNamedScenarioConstructors(t *testing.T) {
	for _, s := range []Scenario{
		SingleOCSOutage(0, 10, 30, 120),
		QuarantineDrill("pod2", 10, 60, 240),
		FlapStorm([][2]int{{0, 1}, {2, 3}}, 5, 10, 8, 120),
		MaintenanceWindow("pod1", 3, 10, 40, 120, false),
		MaintenanceWindow("pod1", 3, 10, 0, 120, true),
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}
