package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lightwave/internal/fleet"
	"lightwave/internal/sim"
	"lightwave/internal/topo"
	"lightwave/internal/wal"
)

// CrashRestartConfig parameterizes the crash-restart drill: a journaled
// fleet manager churns through seeded intent mutations and injected pod
// faults, the process "dies" mid-stream (no shutdown snapshot, a torn
// record on the active segment), and a fresh manager recovers from the
// state directory alone.
type CrashRestartConfig struct {
	// Dir is the WAL state directory (required; the drill owns it).
	Dir string
	// Pods are the compute pods (default pod0..pod3).
	Pods []string
	// ChurnSteps is the mutation-step count (default 40).
	ChurnSteps int
	// QuarantineAfter is the reconciler retry budget (default 3).
	QuarantineAfter int
	// TornTailBytes of garbage appended to the active segment model a
	// record cut mid-write by the crash (default 7).
	TornTailBytes int
	// SettleTimeout bounds each real-time wait on the reconciler
	// (default 10s).
	SettleTimeout time.Duration
	Seed          uint64
}

func (c CrashRestartConfig) withDefaults() CrashRestartConfig {
	if len(c.Pods) == 0 {
		c.Pods = []string{"pod0", "pod1", "pod2", "pod3"}
	}
	if c.ChurnSteps == 0 {
		c.ChurnSteps = 40
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.TornTailBytes == 0 {
		c.TornTailBytes = 7
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 10 * time.Second
	}
	return c
}

// CrashRestartReport is the drill's outcome. Text renders the
// deterministic subset (everything except wall-clock durations), so two
// runs with one seed agree byte-for-byte.
type CrashRestartReport struct {
	ChurnSteps int
	// Mutations counts intent mutations issued during churn.
	Mutations int
	// FaultCycles counts pod-loss→quarantine→restore cycles injected.
	FaultCycles int
	// PreCrashDigest/RecoveredDigest hash the canonical intent-store
	// encoding at the crash instant and after replay; DigestMatch is the
	// drill's core claim.
	PreCrashDigest  string
	RecoveredDigest string
	DigestMatch     bool
	// Replay statistics from reopening the state directory.
	ReplayRecords   int
	ReplayErrors    int
	TruncatedBytes  int64
	DroppedSegments int
	SnapshotLSN     uint64
	LastLSN         uint64
	// DesiredSlices is the recovered intent store's slice count;
	// RealizedFraction is how much of it the restarted reconcilers
	// converged onto fresh backends (goodput proxy: 1.0 = full recovery).
	DesiredSlices    int
	RealizedFraction float64
	Reconverged      bool
	// ReconvergeSeconds is wall-clock recovery-to-convergence time
	// (excluded from Text; real-time scheduling noise).
	ReconvergeSeconds float64
}

// Text renders the deterministic subset of the report.
func (r *CrashRestartReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash-restart report: steps=%d mutations=%d fault_cycles=%d\n",
		r.ChurnSteps, r.Mutations, r.FaultCycles)
	fmt.Fprintf(&b, "replay: records=%d errors=%d torn_bytes=%d dropped_segments=%d snapshot_lsn=%d last_lsn=%d\n",
		r.ReplayRecords, r.ReplayErrors, r.TruncatedBytes, r.DroppedSegments, r.SnapshotLSN, r.LastLSN)
	fmt.Fprintf(&b, "intent store: digest_match=%t slices=%d digest=%.16s…\n",
		r.DigestMatch, r.DesiredSlices, r.RecoveredDigest)
	fmt.Fprintf(&b, "reconverged=%t realized_fraction=%.6f\n", r.Reconverged, r.RealizedFraction)
	return b.String()
}

// crashSettle polls the manager until pred holds.
func crashSettle(m *fleet.Manager, timeout time.Duration, pred func(fleet.Status) bool, what string) error {
	deadline := time.Now().Add(timeout)
	for {
		if pred(m.Status()) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: crash-restart timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func podByName(st fleet.Status, name string) fleet.PodStatus {
	for _, p := range st.Pods {
		if p.Name == name {
			return p
		}
	}
	return fleet.PodStatus{}
}

// EvaluateCrashRestart runs the drill: churn a journaled control plane,
// kill it without a shutdown snapshot, tear the active segment's tail,
// recover from disk, and verify the recovered intent store is
// byte-identical to the pre-crash one and that fresh reconcilers converge
// every recovered slice.
func EvaluateCrashRestart(cfg CrashRestartConfig) (*CrashRestartReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("%w: crash-restart needs a state dir", ErrConfig)
	}
	rep := &CrashRestartReport{ChurnSteps: cfg.ChurnSteps}

	// ---- Life A: the doomed control plane. ----
	store, err := wal.OpenStore(cfg.Dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	mgr := fleet.NewManager(fleet.Options{
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      8 * time.Millisecond,
		QuarantineAfter: cfg.QuarantineAfter,
		Seed:            cfg.Seed,
		Journal:         store,
	})
	backends := make(map[string]*FaultyBackend, len(cfg.Pods))
	for _, name := range cfg.Pods {
		b := NewFaultyBackend(NewMemoryBackend())
		backends[name] = b
		if err := mgr.AddPod(name, b); err != nil {
			mgr.Close()
			store.Close()
			return nil, err
		}
	}
	inj, err := NewInjector(Targets{Fleet: mgr, Backends: backends})
	if err != nil {
		mgr.Close()
		store.Close()
		return nil, err
	}
	defer inj.Close()

	// Seeded churn. Slice sets dominate; removals, OCS drain/undrain
	// pairs and pod-loss→restore cycles ride along so every journal op
	// kind lands in the log.
	rng := sim.NewRand(cfg.Seed + 1)
	live := make(map[string][]string, len(cfg.Pods)) // pod → slice names
	for i := 0; i < cfg.ChurnSteps; i++ {
		pod := cfg.Pods[rng.Intn(len(cfg.Pods))]
		switch k := rng.Float64(); {
		case k < 0.55 || len(live[pod]) == 0:
			name := fmt.Sprintf("churn-%03d", i)
			if err := mgr.SetSliceIntent(pod, fleet.SliceIntent{
				Name: name, Shape: topo.Shape{X: 4, Y: 4, Z: 4},
			}); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
			live[pod] = append(live[pod], name)
			rep.Mutations++
		case k < 0.75:
			names := live[pod]
			victim := names[rng.Intn(len(names))]
			if err := mgr.RemoveSliceIntent(pod, victim); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
			out := names[:0]
			for _, n := range names {
				if n != victim {
					out = append(out, n)
				}
			}
			live[pod] = out
			rep.Mutations++
		case k < 0.9:
			ocsID := rng.Intn(48)
			if err := mgr.DrainOCS(pod, ocsID); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
			if err := mgr.UndrainOCS(pod, ocsID); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
			rep.Mutations += 2
		default:
			// Pod-loss mid-churn: new intent fails against the dead
			// backend until the reconciler quarantines; restore releases
			// it. Both derived verdicts are journaled.
			if err := inj.Apply(Event{Kind: KindPodLoss, Pod: pod}); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
			name := fmt.Sprintf("churn-%03d", i)
			if err := mgr.SetSliceIntent(pod, fleet.SliceIntent{
				Name: name, Shape: topo.Shape{X: 4, Y: 4, Z: 4},
			}); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
			live[pod] = append(live[pod], name)
			rep.Mutations++
			if err := crashSettle(mgr, cfg.SettleTimeout, func(st fleet.Status) bool {
				return podByName(st, pod).Quarantined
			}, "quarantine of "+pod); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
			if err := inj.Apply(Event{Kind: KindPodRestore, Pod: pod}); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
			if err := crashSettle(mgr, cfg.SettleTimeout, func(st fleet.Status) bool {
				p := podByName(st, pod)
				return !p.Quarantined && p.Converged
			}, "recovery of "+pod); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
			rep.FaultCycles++
		}
		if i == cfg.ChurnSteps/2 {
			// Mid-churn checkpoint: recovery must cross a snapshot + tail
			// boundary, not just replay a flat log.
			if err := store.Checkpoint(); err != nil {
				mgr.Close()
				store.Close()
				return nil, err
			}
		}
	}
	// Let reconcilers drain so the post-restart convergence claim is
	// about recovery, not leftover churn.
	if err := crashSettle(mgr, cfg.SettleTimeout, func(st fleet.Status) bool {
		for _, p := range st.Pods {
			if !p.Converged {
				return false
			}
		}
		return st.QueueDepth == 0
	}, "pre-crash convergence"); err != nil {
		mgr.Close()
		store.Close()
		return nil, err
	}

	rep.PreCrashDigest, err = store.FleetDigest()
	if err != nil {
		mgr.Close()
		store.Close()
		return nil, err
	}
	preState, err := store.FleetStateCopy()
	if err != nil {
		mgr.Close()
		store.Close()
		return nil, err
	}
	for _, p := range preState.Pods {
		rep.DesiredSlices += len(p.Slices)
	}

	// ---- The crash: no shutdown checkpoint, then a torn record. ----
	mgr.Close()
	if err := store.Close(); err != nil {
		return nil, err
	}
	if err := tearActiveSegment(cfg.Dir, cfg.TornTailBytes, rng); err != nil {
		return nil, err
	}

	// ---- Life B: recover from disk alone. ----
	store2, err := wal.OpenStore(cfg.Dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	defer store2.Close()
	st := store2.Status()
	rep.ReplayRecords = st.ReplayRecords
	rep.ReplayErrors = st.ReplayErrors
	rep.TruncatedBytes = st.TruncatedBytes
	rep.DroppedSegments = st.DroppedSegments
	rep.SnapshotLSN = st.Log.SnapshotLSN
	rep.LastLSN = st.Log.LastLSN
	rep.RecoveredDigest, err = store2.FleetDigest()
	if err != nil {
		return nil, err
	}
	rep.DigestMatch = rep.RecoveredDigest == rep.PreCrashDigest

	store2.BeginRecovery()
	mgr2 := fleet.NewManager(fleet.Options{
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      8 * time.Millisecond,
		QuarantineAfter: cfg.QuarantineAfter,
		Seed:            cfg.Seed + 1,
		Journal:         store2,
	})
	defer mgr2.Close()
	for _, name := range cfg.Pods {
		if err := mgr2.AddPod(name, NewFaultyBackend(NewMemoryBackend())); err != nil {
			return nil, err
		}
	}
	if err := store2.RecoverFleet(mgr2); err != nil {
		return nil, err
	}
	store2.EndRecovery()

	begin := time.Now()
	convErr := crashSettle(mgr2, cfg.SettleTimeout, func(st fleet.Status) bool {
		for _, p := range st.Pods {
			if !p.Converged {
				return false
			}
		}
		return st.QueueDepth == 0
	}, "post-restart convergence")
	rep.ReconvergeSeconds = time.Since(begin).Seconds()
	rep.Reconverged = convErr == nil

	// Goodput proxy: the fraction of recovered desired slices the fresh
	// backends actually realized.
	realized := 0
	for _, p := range mgr2.Status().Pods {
		want := map[string]bool{}
		for _, s := range p.DesiredSlices {
			want[s] = true
		}
		for _, s := range p.ActualSlices {
			if want[s] {
				realized++
			}
		}
	}
	if rep.DesiredSlices > 0 {
		rep.RealizedFraction = float64(realized) / float64(rep.DesiredSlices)
	} else {
		rep.RealizedFraction = 1
	}
	return rep, nil
}

// tearActiveSegment appends garbage to the newest log segment, modeling a
// frame cut mid-write by the crash. Replay must truncate it.
func tearActiveSegment(dir string, n int, rng *sim.Rand) error {
	if n <= 0 {
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			segs = append(segs, name)
		}
	}
	if len(segs) == 0 {
		return fmt.Errorf("chaos: no log segments in %s", dir)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(filepath.Join(dir, segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	garbage := make([]byte, n)
	for i := range garbage {
		garbage[i] = byte(rng.Uint64())
	}
	_, err = f.Write(garbage)
	return err
}
