package chaos

import (
	"fmt"
	"math"
	"sort"

	"lightwave/internal/avail"
	"lightwave/internal/sim"
)

// RandomConfig parameterizes the random-scenario generator. Arrival
// rates come from the avail.Rates table (per real hour); Acceleration
// compresses real time into the replay so year-scale fault processes
// produce events on a seconds-scale virtual horizon. Each fault class
// draws from its own sim.Substream of Seed, so the schedule is a pure
// function of this config at any generation order.
type RandomConfig struct {
	Name           string
	HorizonSeconds float64
	// Blocks is the DCN block count (trunk pairs eligible for flap/BER
	// faults); OCSes is the DCN switch count eligible for outage.
	Blocks int
	OCSes  int
	// Pods are the compute pods eligible for pod-loss and drain faults.
	Pods []string
	// Rates is the failure/repair table; zero value gets
	// avail.DefaultRates.
	Rates avail.Rates
	// Acceleration maps real hours onto virtual seconds: a process with
	// rate r per hour arrives at r·Acceleration/3600 per virtual second
	// (default 50000 ≈ 14 real hours per virtual second). Repair and
	// maintenance durations are compressed by the same factor; flap/BER
	// episode durations are already seconds-scale and stay uncompressed.
	Acceleration float64
	// MaxEvents caps the schedule (default 64).
	MaxEvents int
	Seed      uint64
}

func (c RandomConfig) withDefaults() RandomConfig {
	if c.Name == "" {
		c.Name = "random"
	}
	if c.Rates == (avail.Rates{}) {
		c.Rates = avail.DefaultRates()
	}
	if c.Acceleration <= 0 {
		c.Acceleration = 50000
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 64
	}
	return c
}

// Random draws a scenario from the failure-rate table. Fault classes
// are generated independently on substreams 1..5 of Seed and merged in
// time order.
func Random(cfg RandomConfig) (Scenario, error) {
	cfg = cfg.withDefaults()
	if cfg.HorizonSeconds <= 0 || cfg.Blocks < 2 || cfg.OCSes < 1 {
		return Scenario{}, fmt.Errorf("%w: random scenario needs a horizon, >=2 blocks and >=1 OCSes", ErrConfig)
	}
	s := Scenario{Name: cfg.Name, HorizonSeconds: cfg.HorizonSeconds}
	perHour := cfg.Acceleration / 3600 // rate multiplier: per-hour → per-virtual-second
	pairs := float64(cfg.Blocks*(cfg.Blocks-1)) / 2

	// OCS outages (substream 1): whole-chassis failures, repaired after
	// the compressed field-repair SLO.
	rng := sim.Substream(cfg.Seed, 1)
	rate := float64(cfg.OCSes) / cfg.Rates.OCSMTBFHours * perHour
	repair := cfg.Rates.OCSRepairHours * 3600 / cfg.Acceleration
	for t := nextArrival(rng, 0, rate); t < cfg.HorizonSeconds; t = nextArrival(rng, t, rate) {
		ocs := rng.Intn(cfg.OCSes)
		s.Events = append(s.Events, Event{At: t, Kind: KindOCSOutage, OCS: ocs})
		if end := t + repair; end < cfg.HorizonSeconds {
			s.Events = append(s.Events, Event{At: end, Kind: KindOCSRestore, OCS: ocs})
		}
	}

	// Pod backend losses (substream 2), healed after the compressed cube
	// MTTR (a day-scale server op).
	rng = sim.Substream(cfg.Seed, 2)
	rate = float64(len(cfg.Pods)) / cfg.Rates.PodBackendMTBFHours * perHour
	heal := cfg.Rates.CubeMTTRHours * 3600 / cfg.Acceleration
	for t := nextArrival(rng, 0, rate); t < cfg.HorizonSeconds; t = nextArrival(rng, t, rate) {
		pod := cfg.Pods[rng.Intn(len(cfg.Pods))]
		s.Events = append(s.Events, Event{At: t, Kind: KindPodLoss, Pod: pod})
		if end := t + heal; end < cfg.HorizonSeconds {
			s.Events = append(s.Events, Event{At: end, Kind: KindPodRestore, Pod: pod})
		}
	}

	// Circuit flaps (substream 3): seconds-scale transients, one trunk
	// drawn per event.
	rng = sim.Substream(cfg.Seed, 3)
	rate = pairs * cfg.Rates.CircuitFlapPerHour * perHour
	for t := nextArrival(rng, 0, rate); t < cfg.HorizonSeconds; t = nextArrival(rng, t, rate) {
		s.Events = append(s.Events, Event{
			At: t, Kind: KindCircuitFlap, Trunk: randomPair(rng, cfg.Blocks),
			DurationSeconds: flapDuration(rng, cfg.Rates.FlapMeanSeconds),
		})
	}

	// Transceiver BER excursions (substream 4): log-uniform BER between
	// 1e-6 and 1e-3, straddling the KP4 limit so some trip the drain.
	rng = sim.Substream(cfg.Seed, 4)
	rate = pairs * cfg.Rates.TransceiverBERPerHour * perHour
	for t := nextArrival(rng, 0, rate); t < cfg.HorizonSeconds; t = nextArrival(rng, t, rate) {
		ber := math.Pow(10, -6+3*rng.Float64())
		s.Events = append(s.Events, Event{
			At: t, Kind: KindBERDegrade, Trunk: randomPair(rng, cfg.Blocks), BER: ber,
			DurationSeconds: flapDuration(rng, cfg.Rates.FlapMeanSeconds),
		})
	}

	// Maintenance drains (substream 5) on compute pods; a DrainStuckProb
	// fraction wedge into stuck drains.
	rng = sim.Substream(cfg.Seed, 5)
	rate = float64(len(cfg.Pods)) * cfg.Rates.OCSMaintenancePerYear / 8766 * perHour
	for t := nextArrival(rng, 0, rate); t < cfg.HorizonSeconds; t = nextArrival(rng, t, rate) {
		pod := cfg.Pods[rng.Intn(len(cfg.Pods))]
		ocs := rng.Intn(4)
		if rng.Bernoulli(cfg.Rates.DrainStuckProb) {
			s.Events = append(s.Events, Event{At: t, Kind: KindStuckDrain, Pod: pod, OCS: ocs})
		} else {
			s.Events = append(s.Events, Event{
				At: t, Kind: KindSlowDrain, Pod: pod, OCS: ocs,
				DurationSeconds: cfg.HorizonSeconds / 8,
			})
		}
	}

	// Merge classes in time order (actions() re-sorts stably; sorting
	// the event list here keeps Validate errors and String dumps tidy).
	sortEventsStable(s.Events)
	if len(s.Events) > cfg.MaxEvents {
		s.Events = s.Events[:cfg.MaxEvents]
	}
	return s, s.Validate()
}

// nextArrival advances a Poisson process: the next event after t at the
// given per-second rate, or +Inf when the rate is zero.
func nextArrival(rng *sim.Rand, t, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return t + rng.ExpFloat64()/rate
}

func randomPair(rng *sim.Rand, blocks int) [2]int {
	a := rng.Intn(blocks)
	b := rng.Intn(blocks - 1)
	if b >= a {
		b++
	}
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// flapDuration draws an exponential episode length, floored at 1s so
// zero-length transients cannot appear.
func flapDuration(rng *sim.Rand, mean float64) float64 {
	d := rng.ExpFloat64() * mean
	if d < 1 {
		d = 1
	}
	return d
}

// sortEventsStable orders events by onset, preserving class order on
// ties.
func sortEventsStable(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}
