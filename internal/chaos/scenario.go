package chaos

import (
	"fmt"
	"sort"
)

// Kind classifies a fault event.
type Kind string

// Fault kinds. OCS outage/restore target a switch of the DCN fabric;
// pod loss/restore target a compute pod's backend; the drain kinds
// exercise the maintenance workflow; circuit flap and BER degrade are
// trunk-scoped transients.
const (
	// KindOCSOutage fails a DCN fabric switch outright (both PSUs), as in
	// §3.4: every circuit it carried drops and the control plane must
	// heal around it.
	KindOCSOutage Kind = "ocs-outage"
	// KindOCSRestore returns a failed switch to service.
	KindOCSRestore Kind = "ocs-restore"
	// KindCircuitFlap administratively removes one trunk for
	// DurationSeconds (fiber bump, brief loss of light).
	KindCircuitFlap Kind = "circuit-flap"
	// KindBERDegrade feeds a degraded BER sample for one trunk to the
	// telemetry detector; at or above KP4BERLimit the trunk is drained
	// for DurationSeconds.
	KindBERDegrade Kind = "ber-degrade"
	// KindPodLoss makes a compute pod's backend reject all mutating
	// calls — the reconciler retries, then quarantines.
	KindPodLoss Kind = "pod-loss"
	// KindPodRestore heals the backend and releases the quarantine via
	// UndrainPod.
	KindPodRestore Kind = "pod-restore"
	// KindStuckDrain starts an OCS maintenance drain that never lifts on
	// its own (a wedged workflow needing operator intervention).
	KindStuckDrain Kind = "stuck-drain"
	// KindSlowDrain starts an OCS maintenance drain that lifts after
	// DurationSeconds.
	KindSlowDrain Kind = "slow-drain"
)

// validKinds is the closed set accepted by Scenario.Validate.
var validKinds = map[Kind]bool{
	KindOCSOutage: true, KindOCSRestore: true,
	KindCircuitFlap: true, KindBERDegrade: true,
	KindPodLoss: true, KindPodRestore: true,
	KindStuckDrain: true, KindSlowDrain: true,
}

// Event is one scheduled fault on the virtual timeline.
type Event struct {
	// At is the onset time in virtual seconds from scenario start.
	At   float64
	Kind Kind
	// Pod names the compute pod for pod- and drain-scoped kinds.
	Pod string
	// OCS addresses a switch (DCN fabric index for outage/restore, the
	// drained OCS id for the drain kinds).
	OCS int
	// Trunk is the block pair for circuit-flap and ber-degrade.
	Trunk [2]int
	// BER is the degraded bit-error rate for ber-degrade.
	BER float64
	// DurationSeconds bounds circuit-flap, ber-degrade and slow-drain;
	// the fault lifts at At+DurationSeconds.
	DurationSeconds float64
}

// needsDuration reports whether the kind is a bounded transient.
func (e Event) needsDuration() bool {
	return e.Kind == KindCircuitFlap || e.Kind == KindBERDegrade || e.Kind == KindSlowDrain
}

// String is a compact human/report form of the event.
func (e Event) String() string {
	switch e.Kind {
	case KindOCSOutage, KindOCSRestore:
		return fmt.Sprintf("%s ocs%d @%gs", e.Kind, e.OCS, e.At)
	case KindCircuitFlap:
		return fmt.Sprintf("%s trunk %d-%d @%gs for %gs", e.Kind, e.Trunk[0], e.Trunk[1], e.At, e.DurationSeconds)
	case KindBERDegrade:
		return fmt.Sprintf("%s trunk %d-%d ber %.2g @%gs for %gs", e.Kind, e.Trunk[0], e.Trunk[1], e.BER, e.At, e.DurationSeconds)
	case KindPodLoss, KindPodRestore:
		return fmt.Sprintf("%s %s @%gs", e.Kind, e.Pod, e.At)
	case KindStuckDrain:
		return fmt.Sprintf("%s %s ocs%d @%gs", e.Kind, e.Pod, e.OCS, e.At)
	case KindSlowDrain:
		return fmt.Sprintf("%s %s ocs%d @%gs for %gs", e.Kind, e.Pod, e.OCS, e.At, e.DurationSeconds)
	default:
		return fmt.Sprintf("%s @%gs", e.Kind, e.At)
	}
}

// Scenario is a named fault schedule over a virtual-time horizon.
type Scenario struct {
	Name string
	// HorizonSeconds is the virtual length of the replay; events must
	// fall inside it.
	HorizonSeconds float64
	Events         []Event
}

// Validate checks the schedule.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: scenario needs a name", ErrScenario)
	}
	if s.HorizonSeconds <= 0 {
		return fmt.Errorf("%w: horizon %g s", ErrScenario, s.HorizonSeconds)
	}
	for i, e := range s.Events {
		if !validKinds[e.Kind] {
			return fmt.Errorf("%w: event %d has unknown kind %q", ErrScenario, i, e.Kind)
		}
		if e.At < 0 || e.At >= s.HorizonSeconds {
			return fmt.Errorf("%w: event %d at %g s outside [0,%g)", ErrScenario, i, e.At, s.HorizonSeconds)
		}
		if e.needsDuration() && e.DurationSeconds <= 0 {
			return fmt.Errorf("%w: event %d (%s) needs a positive duration", ErrScenario, i, e.Kind)
		}
		switch e.Kind {
		case KindPodLoss, KindPodRestore, KindStuckDrain, KindSlowDrain:
			if e.Pod == "" {
				return fmt.Errorf("%w: event %d (%s) needs a pod", ErrScenario, i, e.Kind)
			}
		case KindCircuitFlap, KindBERDegrade:
			if e.Trunk[0] == e.Trunk[1] || e.Trunk[0] < 0 || e.Trunk[1] < 0 {
				return fmt.Errorf("%w: event %d has bad trunk %v", ErrScenario, i, e.Trunk)
			}
		}
		if e.Kind == KindBERDegrade && e.BER <= 0 {
			return fmt.Errorf("%w: event %d needs a positive BER", ErrScenario, i)
		}
	}
	return nil
}

// action is one primitive timeline step: an event's onset, or the lift
// of a bounded transient.
type action struct {
	at   float64
	ev   Event
	lift bool
}

// actions expands the scenario into its primitive timeline, stably
// sorted by time (schedule order breaks ties), with bounded transients
// contributing an onset and a lift. Lifts past the horizon are clamped
// out (the fault outlives the replay).
func (s Scenario) actions() []action {
	acts := make([]action, 0, 2*len(s.Events))
	for _, e := range s.Events {
		acts = append(acts, action{at: e.At, ev: e})
		if e.needsDuration() {
			if end := e.At + e.DurationSeconds; end < s.HorizonSeconds {
				acts = append(acts, action{at: end, ev: e, lift: true})
			}
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].at < acts[j].at })
	return acts
}

// SingleOCSOutage is the paper's headline availability drill: switch ocs
// fails at `at` and is field-repaired repairAfter seconds later. The
// expectation (§3.4) is a bounded capacity dip — 1/Nth of the fabric —
// that the control plane heals around within one reconcile epoch.
func SingleOCSOutage(ocs int, at, repairAfter, horizon float64) Scenario {
	return Scenario{
		Name:           fmt.Sprintf("single-ocs-outage-%d", ocs),
		HorizonSeconds: horizon,
		Events: []Event{
			{At: at, Kind: KindOCSOutage, OCS: ocs},
			{At: at + repairAfter, Kind: KindOCSRestore, OCS: ocs},
		},
	}
}

// QuarantineDrill breaks one compute pod's backend at `at` and heals it
// healAfter seconds later: the reconciler must burn exactly its retry
// budget, quarantine, and publish a recovery edge after the heal.
func QuarantineDrill(pod string, at, healAfter, horizon float64) Scenario {
	return Scenario{
		Name:           "quarantine-drill-" + pod,
		HorizonSeconds: horizon,
		Events: []Event{
			{At: at, Kind: KindPodLoss, Pod: pod},
			{At: at + healAfter, Kind: KindPodRestore, Pod: pod},
		},
	}
}

// FlapStorm flaps each listed trunk once, spaced interval seconds apart
// starting at `at`, each flap lasting duration seconds.
func FlapStorm(trunks [][2]int, at, interval, duration, horizon float64) Scenario {
	s := Scenario{Name: "flap-storm", HorizonSeconds: horizon}
	for i, tr := range trunks {
		s.Events = append(s.Events, Event{
			At: at + float64(i)*interval, Kind: KindCircuitFlap,
			Trunk: tr, DurationSeconds: duration,
		})
	}
	return s
}

// MaintenanceWindow drains one OCS of a pod for duration seconds (a
// healthy slow drain); stuck=true wedges it instead, so it never lifts.
func MaintenanceWindow(pod string, ocs int, at, duration, horizon float64, stuck bool) Scenario {
	ev := Event{At: at, Kind: KindSlowDrain, Pod: pod, OCS: ocs, DurationSeconds: duration}
	name := "maintenance-window-" + pod
	if stuck {
		ev = Event{At: at, Kind: KindStuckDrain, Pod: pod, OCS: ocs}
		name = "stuck-drain-" + pod
	}
	return Scenario{Name: name, HorizonSeconds: horizon, Events: []Event{ev}}
}

// Compose merges scenarios into one named schedule; the horizon is the
// maximum of the parts.
func Compose(name string, parts ...Scenario) Scenario {
	out := Scenario{Name: name}
	for _, p := range parts {
		if p.HorizonSeconds > out.HorizonSeconds {
			out.HorizonSeconds = p.HorizonSeconds
		}
		out.Events = append(out.Events, p.Events...)
	}
	return out
}
