package chaos

import (
	"testing"
	"time"

	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

// BenchmarkScenarioReplay measures fault-schedule throughput through the
// injector against a live fleet control plane: events per second of
// pod-loss/restore cycles plus trunk transients, the dominant cost of a
// long random-scenario replay (the flow simulations are benchmarked in
// internal/dcn).
func BenchmarkScenarioReplay(b *testing.B) {
	m := fleet.NewManager(fleet.Options{
		BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
		QuarantineAfter: 3, Seed: 42,
	})
	defer m.Close()
	be := NewFaultyBackend(NewMemoryBackend())
	if err := m.AddPod("pod0", be); err != nil {
		b.Fatal(err)
	}
	if err := m.SetSliceIntent("pod0", fleet.SliceIntent{
		Name: "job", Shape: topo.Shape{X: 4, Y: 4, Z: 4},
	}); err != nil {
		b.Fatal(err)
	}
	inj, err := NewInjector(Targets{Fleet: m, Backends: map[string]*FaultyBackend{"pod0": be}})
	if err != nil {
		b.Fatal(err)
	}
	s := Compose("bench",
		FlapStorm([][2]int{{0, 1}, {2, 3}, {1, 2}, {0, 3}}, 1, 5, 10, 600),
		Scenario{Name: "ber", HorizonSeconds: 600, Events: []Event{
			{At: 2, Kind: KindBERDegrade, Trunk: [2]int{0, 2}, BER: 5e-4, DurationSeconds: 10},
			{At: 3, Kind: KindBERDegrade, Trunk: [2]int{1, 3}, BER: 1e-6, DurationSeconds: 10},
		}},
	)
	acts := s.actions()
	b.ReportMetric(float64(len(acts)), "events/replay")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range acts {
			if a.lift {
				if err := inj.Lift(a.ev); err != nil {
					b.Fatal(err)
				}
			} else if err := inj.Apply(a.ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkInjectorHotPath pins the trunk fault path at zero allocations:
// counters are pre-resolved at construction, bookkeeping reuses map
// slots, so storms of flaps cost no garbage.
func BenchmarkInjectorHotPath(b *testing.B) {
	m := fleet.NewManager(fleet.Options{Seed: 42})
	defer m.Close()
	inj, err := NewInjector(Targets{Fleet: m})
	if err != nil {
		b.Fatal(err)
	}
	pair := [2]int{3, 5}
	inj.TrunkDown(pair) // warm the map slot
	inj.TrunkUp(pair)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.TrunkDown(pair)
		inj.TrunkUp(pair)
	}
}
