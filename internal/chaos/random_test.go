package chaos

import (
	"reflect"
	"testing"

	"lightwave/internal/avail"
)

func randomCfg(seed uint64) RandomConfig {
	return RandomConfig{
		HorizonSeconds: 600,
		Blocks:         8,
		OCSes:          10,
		Pods:           []string{"pod0", "pod1", "pod2", "pod3"},
		Seed:           seed,
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(randomCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(randomCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scenarios")
	}
	c, err := Random(randomCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRandomProducesValidBoundedSchedule(t *testing.T) {
	cfg := randomCfg(3)
	cfg.MaxEvents = 16
	s, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) == 0 {
		t.Fatal("accelerated default rates produced no events over 600s")
	}
	if len(s.Events) > 16 {
		t.Fatalf("got %d events, cap is 16", len(s.Events))
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("generated scenario invalid: %v", err)
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At < s.Events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestRandomUsesRateTable(t *testing.T) {
	// Zero every rate except OCS failures: the schedule must contain only
	// outage/restore events.
	cfg := randomCfg(11)
	cfg.Rates = avail.Rates{OCSMTBFHours: 200, OCSRepairHours: 8,
		CubeMTTRHours: 24, PodBackendMTBFHours: 1e18,
		TransceiverBERPerHour: 1e-18, CircuitFlapPerHour: 1e-18,
		FlapMeanSeconds: 90, DrainStuckProb: 0.5, OCSMaintenancePerYear: 1e-18}
	s, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) == 0 {
		t.Fatal("no OCS events at 200h MTBF under 50000x acceleration")
	}
	for _, e := range s.Events {
		if e.Kind != KindOCSOutage && e.Kind != KindOCSRestore {
			t.Fatalf("unexpected %s with all non-OCS rates zeroed", e.Kind)
		}
	}
}

func TestRandomRejectsBadConfig(t *testing.T) {
	for _, cfg := range []RandomConfig{
		{HorizonSeconds: 0, Blocks: 4, OCSes: 4},
		{HorizonSeconds: 10, Blocks: 1, OCSes: 4},
		{HorizonSeconds: 10, Blocks: 4, OCSes: 0},
	} {
		if _, err := Random(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
