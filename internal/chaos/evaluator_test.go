package chaos

import (
	"strings"
	"testing"

	"lightwave/internal/par"
)

// outageCfg is the shared single-OCS-outage replay: the switch dies in
// epoch 1 and is field-repaired in epoch 4 of a 6-epoch horizon. High
// load makes the capacity dip visible in delivered goodput.
func outageCfg() EvalConfig {
	return EvalConfig{
		Scenario:     SingleOCSOutage(2, 70, 180, 360),
		Blocks:       6,
		Uplinks:      6,
		LoadFraction: 0.9,
		Seed:         7,
	}
}

func TestEvaluateDeterministicAcrossWorkers(t *testing.T) {
	texts := make([]string, 0, 3)
	for _, workers := range []int{1, 4, 8} {
		prev := par.SetWorkers(workers)
		rep, err := Evaluate(outageCfg())
		par.SetWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		texts = append(texts, rep.Text())
	}
	if texts[0] != texts[1] || texts[1] != texts[2] {
		t.Fatalf("reports differ across worker counts:\n-- 1 --\n%s\n-- 4 --\n%s\n-- 8 --\n%s",
			texts[0], texts[1], texts[2])
	}
}

func TestSingleOCSOutageBoundedCapacityCost(t *testing.T) {
	rep, err := Evaluate(outageCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 6 || rep.EventsApplied != 2 {
		t.Fatalf("epochs/events = %d/%d, want 6/2", rep.Epochs, rep.EventsApplied)
	}
	if rep.BlackoutEpochs != 0 {
		t.Fatalf("%d blackout epochs: a single OCS loss must never partition the fabric", rep.BlackoutEpochs)
	}
	// The capacity cost is bounded: one switch is ~1/8 of this fabric, and
	// transit routing absorbs part of the loss.
	if rep.MinGoodputFraction < 0.5 {
		t.Fatalf("min goodput fraction %.4f: dip deeper than the failed switch's capacity share", rep.MinGoodputFraction)
	}
	if rep.MinGoodputFraction >= 1 {
		t.Fatalf("min goodput fraction %.4f: outage left no measurable dip", rep.MinGoodputFraction)
	}
	// The control plane heals around the outage within the replay: the
	// dip must close (MTTR measured, not -1) and within a few epochs.
	if rep.CapacityMTTRSeconds < 0 || rep.CapacityMTTRSeconds > 3*60 {
		t.Fatalf("capacity MTTR %.0fs, want recovered within 3 epochs", rep.CapacityMTTRSeconds)
	}
	// A fabric fault must not touch compute pods.
	for _, p := range rep.Pods {
		if p.Quarantines != 0 || p.ReconcileErrors != 0 {
			t.Errorf("pod %s saw %d errors / %d quarantines from a fabric fault",
				p.Pod, p.ReconcileErrors, p.Quarantines)
		}
	}
	if !rep.QuarantineBudgetOK {
		t.Error("quarantine budget flagged with no quarantines")
	}
}

func TestQuarantineDrillBudgetAndMTTR(t *testing.T) {
	cfg := EvalConfig{
		Scenario: QuarantineDrill("pod1", 30, 120, 300),
		Blocks:   4, Uplinks: 4,
		Seed: 11,
	}
	rep, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var drilled *PodOutcome
	for i := range rep.Pods {
		if rep.Pods[i].Pod == "pod1" {
			drilled = &rep.Pods[i]
		} else if rep.Pods[i].Quarantines != 0 || rep.Pods[i].ReconcileErrors != 0 {
			t.Errorf("bystander %s saw %d errors / %d quarantines",
				rep.Pods[i].Pod, rep.Pods[i].ReconcileErrors, rep.Pods[i].Quarantines)
		}
	}
	if drilled == nil {
		t.Fatal("pod1 missing from report")
	}
	// Quarantine fires only after the configured failure budget: exactly
	// QuarantineAfter errors, one quarantine, one recovery.
	if drilled.ReconcileErrors != cfg.withDefaults().QuarantineAfter {
		t.Errorf("reconcile errors = %d, want %d", drilled.ReconcileErrors, cfg.withDefaults().QuarantineAfter)
	}
	if drilled.Quarantines != 1 || drilled.Recoveries != 1 {
		t.Errorf("quarantines/recoveries = %d/%d, want 1/1", drilled.Quarantines, drilled.Recoveries)
	}
	if !drilled.BudgetRespected || !rep.QuarantineBudgetOK {
		t.Error("quarantine fired off-budget")
	}
	if drilled.MTTRSeconds != 120 {
		t.Errorf("pod MTTR = %.0fs, want the scripted 120s", drilled.MTTRSeconds)
	}
	// A pure control-plane fault leaves the data plane whole.
	if rep.MinGoodputFraction < 1 {
		t.Errorf("min goodput fraction %.4f, want 1 (backend faults cost no capacity)", rep.MinGoodputFraction)
	}
}

// TestEvaluateFullScenarioAllKinds replays every fault kind in one
// composed scenario — the -race deadlock canary: each injection path
// crosses injector, fleet and te locks, and every settle must terminate.
func TestEvaluateFullScenarioAllKinds(t *testing.T) {
	s := Compose("all-kinds",
		SingleOCSOutage(1, 70, 120, 480),
		QuarantineDrill("pod0", 100, 90, 480),
		FlapStorm([][2]int{{0, 1}, {2, 3}}, 150, 20, 30, 480),
		MaintenanceWindow("pod2", 5, 200, 80, 480, false),
		MaintenanceWindow("pod3", 6, 260, 0, 480, true),
		Scenario{Name: "ber", HorizonSeconds: 480, Events: []Event{
			{At: 310, Kind: KindBERDegrade, Trunk: [2]int{1, 3}, BER: 5e-4, DurationSeconds: 40},
			{At: 330, Kind: KindBERDegrade, Trunk: [2]int{0, 2}, BER: 1e-6, DurationSeconds: 40},
		}},
	)
	rep, err := Evaluate(EvalConfig{Scenario: s, Blocks: 6, Uplinks: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsApplied < 10 {
		t.Fatalf("only %d actions applied", rep.EventsApplied)
	}
	if !rep.QuarantineBudgetOK {
		t.Error("quarantine budget violated in composed scenario")
	}
	if !strings.Contains(rep.Text(), "pod pod3: ") {
		t.Error("report missing per-pod lines")
	}
}

func TestRandomScenarioReplays(t *testing.T) {
	s, err := Random(RandomConfig{
		HorizonSeconds: 300, Blocks: 6, OCSes: 8,
		Pods: []string{"pod0", "pod1", "pod2", "pod3"},
		Seed: 19, MaxEvents: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(EvalConfig{Scenario: s, Blocks: 6, Uplinks: 6, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 5 {
		t.Fatalf("epochs = %d, want 5", rep.Epochs)
	}
	if !rep.QuarantineBudgetOK {
		t.Error("quarantine budget violated in random scenario")
	}
}

func TestCapacityMTTRSeries(t *testing.T) {
	cases := []struct {
		fracs []float64
		want  float64
	}{
		{[]float64{1, 1, 1}, 0},
		{[]float64{1, 0.8, 1, 1}, 60},
		{[]float64{1, 0.8, 0.7, 1}, 120},
		{[]float64{1, 0.8, 0.9}, -1},
		{[]float64{0.5, 1}, 60},
	}
	for i, c := range cases {
		if got := capacityMTTR(c.fracs, 0.99, 60); got != c.want {
			t.Errorf("case %d: mttr = %g, want %g", i, got, c.want)
		}
	}
}
