// Package mlperf models large-language-model training performance on TPU v4
// slices and implements the slice-shape optimizer of §4.2.1: given a model's
// inherent model/data parallelism, it searches every slice configuration of
// a pod and returns the fastest — reproducing Table 2's result that there is
// "no one-size-fits-all optimal slice configuration".
//
// Mapping follows the paper: the 1st torus dimension carries model
// parallelism (a ring of X chips) and the 2nd and 3rd dimensions carry data
// parallelism (Y·Z replicas). The step-time model combines:
//
//   - compute, derated when the slice forces more model parallelism than
//     the model inherently has ("the amount of inherent model and data
//     parallelism for an LLM determines the optimal slice configuration")
//     and when the per-replica batch is too small to fill the chips;
//   - tensor-parallel activation all-reduces on the dim-1 ring;
//   - the data-parallel gradient all-reduce over the replica grid,
//     partially overlapped with backward compute;
//   - per-layer all-to-all traffic (activation re-sharding / routing)
//     bounded by the slice's bisection bandwidth — the term that makes
//     models with heavy cross-replica exchange "prefer the 16×16×16 cube
//     slice configuration to leverage the maximum bisection bandwidth".
//
// The three workloads LLM0/LLM1/LLM2 are calibrated to the paper's
// parameter counts and its qualitative description of their batch-to-model-
// size ratios; DESIGN.md records the calibration as a substitution.
package mlperf

import (
	"errors"
	"fmt"
	"math"

	"lightwave/internal/topo"
)

// LLM describes a transformer workload.
type LLM struct {
	Name string
	// Params is the total parameter count.
	Params float64
	// Layers is the number of transformer layers.
	Layers int
	// Hidden is the model width (P ≈ 12·Layers·Hidden²).
	Hidden float64
	// GlobalBatch is the global batch size in sequences per step; it
	// determines the inherent data parallelism.
	GlobalBatch float64
	// SeqLen is the tokens per sequence.
	SeqLen float64
	// InherentMP is the model-parallel degree beyond which splitting the
	// model stops scaling (per-chip work becomes too fine-grained); it
	// determines the inherent model parallelism.
	InherentMP float64
	// A2ABytesPerToken is the per-layer, per-token payload of activation
	// re-sharding / routing all-to-alls that stress bisection bandwidth.
	A2ABytesPerToken float64
}

// LLM0 is the 35-billion-parameter model of Table 2: batch much larger
// than model size, optimal on the moderately asymmetric 8×16×32.
func LLM0() LLM {
	return LLM{Name: "LLM0", Params: 35e9, Layers: 48, Hidden: 7808,
		GlobalBatch: 4096, SeqLen: 2048, InherentMP: 9.3, A2ABytesPerToken: 2930}
}

// LLM1 is the 70-billion-parameter model whose parallelism is the most
// skewed toward data parallelism: optimal on the highly asymmetric
// 4×4×256 (3.32× over the static baseline).
func LLM1() LLM {
	return LLM{Name: "LLM1", Params: 70e9, Layers: 80, Hidden: 8540,
		GlobalBatch: 16384, SeqLen: 2048, InherentMP: 4, A2ABytesPerToken: 0}
}

// LLM2 is the 150-billion-parameter model with ample model and data
// parallelism and heavy cross-replica exchange: optimal on the symmetric,
// maximum-bisection 16×16×16.
func LLM2() LLM {
	return LLM{Name: "LLM2", Params: 150e9, Layers: 96, Hidden: 11408,
		GlobalBatch: 3072, SeqLen: 2048, InherentMP: 16, A2ABytesPerToken: 8192}
}

// System captures the hardware and mapping constants of a TPU v4 superpod.
type System struct {
	// LinkBandwidthBps is the per-direction ICI link bandwidth (bytes/s).
	LinkBandwidthBps float64
	// LinkLatencySec is the per-hop ICI latency.
	LinkLatencySec float64
	// FlopsPerChip is the peak chip throughput (FLOP/s).
	FlopsPerChip float64
	// MFU is the model FLOP utilization at ideal parallelism.
	MFU float64
	// HBMBytes is the per-chip memory budget available to weights.
	HBMBytes float64
	// WeightBytesPerParam is the per-chip residency per parameter of the
	// model-parallel shard.
	WeightBytesPerParam float64
	// GradBytesPerParam is the gradient payload per parameter in the
	// data-parallel all-reduce.
	GradBytesPerParam float64
	// TPCollectivesPerLayer is the number of activation all-reduces per
	// layer per step (forward + backward).
	TPCollectivesPerLayer float64
	// MPOvershootExp is the scaling exponent of model parallelism beyond
	// the inherent degree: effective speedup = InherentMP·(m/InherentMP)^exp
	// for m > InherentMP.
	MPOvershootExp float64
	// BatchEffHalf is the per-replica batch at which compute efficiency
	// reaches 50% of peak (efficiency = b/(b+BatchEffHalf)).
	BatchEffHalf float64
	// DPOverlap is the fraction of the data-parallel all-reduce hidden
	// under backward compute.
	DPOverlap float64
}

// DefaultSystem returns the calibrated TPU v4 system model.
func DefaultSystem() System {
	return System{
		LinkBandwidthBps:      50e9,
		LinkLatencySec:        0.8e-6,
		FlopsPerChip:          275e12,
		MFU:                   0.45,
		HBMBytes:              34e9,
		WeightBytesPerParam:   1.9,
		GradBytesPerParam:     2.0,
		TPCollectivesPerLayer: 4,
		MPOvershootExp:        0.1,
		BatchEffHalf:          1.5,
		DPOverlap:             0.6,
	}
}

// StepBreakdown decomposes one training step.
type StepBreakdown struct {
	Compute float64
	TP      float64 // tensor-parallel activation collectives
	DP      float64 // exposed data-parallel gradient all-reduce
	A2A     float64 // bisection-bound all-to-all traffic
	Total   float64
}

// Errors returned by the performance model.
var (
	ErrInfeasible = errors.New("mlperf: shape infeasible for model")
	ErrBadShape   = errors.New("mlperf: invalid shape")
)

// mpSpeed returns the effective parallel speedup of model parallelism m for
// a model with the given inherent degree: linear up to the inherent degree,
// heavily diminishing beyond it.
func (sys System) mpSpeed(m, inherent float64) float64 {
	if m <= inherent {
		return m
	}
	return inherent * math.Pow(m/inherent, sys.MPOvershootExp)
}

// batchEff returns the compute efficiency of a per-replica batch b.
func (sys System) batchEff(b float64) float64 {
	return b / (b + sys.BatchEffHalf)
}

// StepTime returns the modeled training step time of the model on a slice
// of the given shape, or ErrInfeasible if the model-parallel shard does not
// fit in memory or the batch cannot be split across the replicas.
func (sys System) StepTime(m LLM, shape topo.Shape) (StepBreakdown, error) {
	if !shape.Valid() {
		return StepBreakdown{}, fmt.Errorf("%w: %v", ErrBadShape, shape)
	}
	mp := float64(shape.X)           // model-parallel degree (dim 1)
	dp := float64(shape.Y * shape.Z) // data-parallel degree (dims 2-3)

	if sys.WeightBytesPerParam*m.Params/mp > sys.HBMBytes {
		return StepBreakdown{}, fmt.Errorf("%w: %s shard %.1f GB on %v exceeds HBM",
			ErrInfeasible, m.Name, sys.WeightBytesPerParam*m.Params/mp/1e9, shape)
	}
	b := m.GlobalBatch / dp
	if b < 1 {
		return StepBreakdown{}, fmt.Errorf("%w: %s batch %g < 1 per replica on %v",
			ErrInfeasible, m.Name, b, shape)
	}

	var s StepBreakdown

	// Compute: 6·P FLOPs per token over the chips that model parallelism
	// can actually use, derated by small-batch inefficiency.
	tokens := m.GlobalBatch * m.SeqLen
	effChips := dp * sys.mpSpeed(mp, m.InherentMP)
	s.Compute = 6 * m.Params * tokens / (effChips * sys.FlopsPerChip * sys.MFU * sys.batchEff(b))

	// Tensor-parallel activation all-reduces: rings of mp chips moving the
	// per-replica activation slab (b·SeqLen·Hidden·2 bytes) each collective.
	if mp > 1 {
		actBytes := b * m.SeqLen * m.Hidden * 2
		perCollective := (mp-1)/mp*actBytes/(2*sys.LinkBandwidthBps) + (mp-1)*sys.LinkLatencySec
		s.TP = float64(m.Layers) * sys.TPCollectivesPerLayer * perCollective
	}

	// Data-parallel gradient all-reduce over a ring snaking through the
	// Y×Z replica grid (a Hamiltonian ring exists for all slice shapes),
	// partially overlapped with backward compute.
	if dp > 1 {
		gradBytes := sys.GradBytesPerParam * m.Params / mp
		dpTime := (dp-1)/dp*gradBytes/(2*sys.LinkBandwidthBps) + 2*(dp-1)*sys.LinkLatencySec
		s.DP = dpTime * (1 - sys.DPOverlap)
	}

	// Per-layer all-to-all: half the payload crosses the minimum bisection.
	if bis := float64(shape.BisectionLinks()); bis > 0 && m.A2ABytesPerToken > 0 {
		perLayer := tokens * m.A2ABytesPerToken / 2
		s.A2A = float64(m.Layers) * perLayer / (bis * sys.LinkBandwidthBps)
	}

	s.Total = s.Compute + s.TP + s.DP + s.A2A
	return s, nil
}
