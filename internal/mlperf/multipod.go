package mlperf

import (
	"fmt"

	"lightwave/internal/collective"
	"lightwave/internal/topo"
)

// Multi-pod scale-out (§2.2.2): models too large (or batches too big) for
// one superpod train across several pods, with data parallelism spanning
// the DCN. The per-pod slice keeps the paper's mapping (model parallelism
// on dim 1), in-pod data parallelism rides the ICI, and the cross-pod
// gradient all-reduce rides the DCN via the hierarchical collective of
// Fig 2c. DCN-level topology engineering (reconfiguring the inter-pod
// lightwave fabric) changes CrossPodBandwidth.

// MultiPodConfig describes a scale-out job.
type MultiPodConfig struct {
	// Pods is the number of superpods.
	Pods int
	// ShapePerPod is the slice shape used in every pod.
	ShapePerPod topo.Shape
	// CrossPod is the effective per-chip cross-pod link class.
	CrossPod collective.Link
}

// DefaultCrossPod returns the uncontended per-chip DCN link class.
func DefaultCrossPod() collective.Link { return collective.DCNLink() }

// MultiPodStep extends StepBreakdown with the cross-pod phase.
type MultiPodStep struct {
	StepBreakdown
	// CrossPodDP is the exposed cross-pod gradient all-reduce time.
	CrossPodDP float64
}

// StepTimeMultiPod returns the step time of the model on cfg.Pods pods.
// The global batch is split across all replicas (in-pod DP × pods).
func (sys System) StepTimeMultiPod(m LLM, cfg MultiPodConfig) (MultiPodStep, error) {
	if cfg.Pods < 1 {
		return MultiPodStep{}, fmt.Errorf("%w: pods %d", ErrBadShape, cfg.Pods)
	}
	// Per-pod view: the pod's replicas handle GlobalBatch/Pods.
	perPod := m
	perPod.GlobalBatch = m.GlobalBatch / float64(cfg.Pods)
	step, err := sys.StepTime(perPod, cfg.ShapePerPod)
	if err != nil {
		return MultiPodStep{}, err
	}
	out := MultiPodStep{StepBreakdown: step}
	if cfg.Pods > 1 {
		// Cross-pod all-reduce of the per-chip gradient shard left after
		// the in-pod reduce-scatter.
		mp := float64(cfg.ShapePerPod.X)
		shard := sys.GradBytesPerParam * m.Params / mp / float64(cfg.ShapePerPod.Chips()/cfg.ShapePerPod.X)
		ring := collective.Ring{N: cfg.Pods, Link: cfg.CrossPod}
		cross, err := ring.AllReduceTime(shard)
		if err != nil {
			return MultiPodStep{}, err
		}
		out.CrossPodDP = cross * (1 - sys.DPOverlap)
		out.Total += out.CrossPodDP
	}
	return out, nil
}

// ScaleOutEfficiency returns throughput(P pods)/(P × throughput(1 pod)):
// the weak-scaling efficiency of adding pods at fixed per-pod batch.
func (sys System) ScaleOutEfficiency(m LLM, cfg MultiPodConfig) (float64, error) {
	single := cfg
	single.Pods = 1
	mSingle := m
	mSingle.GlobalBatch = m.GlobalBatch / float64(cfg.Pods)
	oneStep, err := sys.StepTimeMultiPod(mSingle, single)
	if err != nil {
		return 0, err
	}
	multi, err := sys.StepTimeMultiPod(m, cfg)
	if err != nil {
		return 0, err
	}
	// Same per-pod work per step; efficiency is the step-time ratio.
	return oneStep.Total / multi.Total, nil
}
