package mlperf

import (
	"reflect"
	"testing"

	"lightwave/internal/par"
)

// TestOptimizeSliceParMatchesSequential pins the parallel shape search to
// the sequential one, bit for bit, across worker counts — a placement
// decision must not depend on how many cores evaluated the candidates.
func TestOptimizeSliceParMatchesSequential(t *testing.T) {
	sys := DefaultSystem()
	defer par.SetWorkers(par.SetWorkers(1))
	for _, m := range []LLM{LLM0(), LLM1(), LLM2()} {
		for _, cubes := range []int{1, 2, 8, 64} {
			seq, seqErr := sys.OptimizeSlice(m, cubes)
			for _, workers := range []int{1, 4, 8} {
				par.SetWorkers(workers)
				got, err := sys.OptimizeSlicePar(m, cubes)
				if (err == nil) != (seqErr == nil) {
					t.Fatalf("%s/%d cubes, %d workers: err %v, sequential err %v",
						m.Name, cubes, workers, err, seqErr)
				}
				if !reflect.DeepEqual(stripErrs(got), stripErrs(seq)) {
					t.Fatalf("%s/%d cubes, %d workers: parallel result diverged\n%+v\n%+v",
						m.Name, cubes, workers, got, seq)
				}
			}
		}
	}
}

// stripErrs zeroes the error fields (errors.New values compare by pointer)
// after checking that error presence matches feasibility.
func stripErrs(r SearchResult) SearchResult {
	r.Baseline.Err = nil
	all := make([]ShapeTime, len(r.All))
	for i, st := range r.All {
		st.Err = nil
		all[i] = st
	}
	r.All = all
	r.Best.Err = nil
	return r
}
