package mlperf

import (
	"testing"

	"lightwave/internal/collective"
	"lightwave/internal/topo"
)

func multiPodCfg(pods int) MultiPodConfig {
	return MultiPodConfig{
		Pods:        pods,
		ShapePerPod: topo.Shape{X: 8, Y: 16, Z: 32},
		CrossPod:    DefaultCrossPod(),
	}
}

func TestMultiPodSinglePodMatchesStepTime(t *testing.T) {
	sys := DefaultSystem()
	m := LLM0()
	single, err := sys.StepTimeMultiPod(m, multiPodCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.StepTime(m, topo.Shape{X: 8, Y: 16, Z: 32})
	if err != nil {
		t.Fatal(err)
	}
	if single.Total != direct.Total || single.CrossPodDP != 0 {
		t.Fatalf("single pod %v vs direct %v", single.Total, direct.Total)
	}
}

func TestMultiPodAddsCrossPodPhase(t *testing.T) {
	sys := DefaultSystem()
	m := LLM0()
	m.GlobalBatch = 16384 // enough batch for 4 pods of 512 replicas
	step, err := sys.StepTimeMultiPod(m, multiPodCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if step.CrossPodDP <= 0 {
		t.Fatal("no cross-pod phase")
	}
	if step.Total <= step.StepBreakdown.Compute {
		t.Fatal("total not accumulating phases")
	}
}

func TestMultiPodValidation(t *testing.T) {
	sys := DefaultSystem()
	if _, err := sys.StepTimeMultiPod(LLM0(), MultiPodConfig{Pods: 0}); err == nil {
		t.Fatal("0 pods accepted")
	}
}

func TestScaleOutEfficiencyBelowOne(t *testing.T) {
	// Weak scaling across pods costs cross-pod communication: efficiency
	// must be in (0.5, 1).
	sys := DefaultSystem()
	m := LLM0()
	m.GlobalBatch = 16384
	eff, err := sys.ScaleOutEfficiency(m, multiPodCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if eff >= 1 || eff <= 0.5 {
		t.Fatalf("scale-out efficiency = %v", eff)
	}
}

func TestDCNTopologyEngineeringHelpsScaleOut(t *testing.T) {
	// §2.2.2: co-optimizing the DCN topology (more inter-pod trunks →
	// higher cross-pod bandwidth) improves the hybrid job.
	sys := DefaultSystem()
	m := LLM0()
	m.GlobalBatch = 16384
	base := multiPodCfg(4)
	base.CrossPod = collective.Link{
		BandwidthBps: DefaultCrossPod().BandwidthBps / 8, // contended share
		LatencySec:   DefaultCrossPod().LatencySec,
	}
	engineered := base
	engineered.CrossPod.BandwidthBps *= 4 // direct trunks via OCS reconfig

	slow, err := sys.StepTimeMultiPod(m, base)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sys.StepTimeMultiPod(m, engineered)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Total >= slow.Total {
		t.Fatalf("DCN TE did not help: %v vs %v", fast.Total, slow.Total)
	}
	if fast.CrossPodDP >= slow.CrossPodDP {
		t.Fatal("cross-pod phase not reduced")
	}
}

func TestMorePodsMoreCrossPodTime(t *testing.T) {
	sys := DefaultSystem()
	m := LLM0()
	m.GlobalBatch = 32768
	two, err := sys.StepTimeMultiPod(m, multiPodCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := sys.StepTimeMultiPod(m, multiPodCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if eight.CrossPodDP <= two.CrossPodDP {
		t.Fatalf("cross-pod time did not grow: %v vs %v", two.CrossPodDP, eight.CrossPodDP)
	}
}
