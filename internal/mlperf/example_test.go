package mlperf_test

import (
	"fmt"
	"log"

	"lightwave/internal/mlperf"
)

// Example reproduces Table 2's LLM1 row: the slice-shape optimizer finds
// the highly asymmetric 4x4x256 configuration, 3.32x faster than the
// static 16x16x16 baseline.
func Example() {
	sys := mlperf.DefaultSystem()
	res, err := sys.OptimizeSlice(mlperf.LLM1(), 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %.2fx\n", res.Best.Shape, res.Speedup)
	// Output: 4x4x256 3.32x
}
