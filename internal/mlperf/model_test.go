package mlperf

import (
	"errors"
	"math"
	"testing"

	"lightwave/internal/topo"
)

func TestStepTimeComponentsPositive(t *testing.T) {
	sys := DefaultSystem()
	st, err := sys.StepTime(LLM0(), topo.Shape{X: 8, Y: 16, Z: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st.Compute <= 0 || st.TP <= 0 || st.DP <= 0 || st.A2A <= 0 {
		t.Fatalf("breakdown = %+v", st)
	}
	if math.Abs(st.Total-(st.Compute+st.TP+st.DP+st.A2A)) > 1e-12 {
		t.Fatal("total != sum of parts")
	}
}

func TestMemoryInfeasibility(t *testing.T) {
	sys := DefaultSystem()
	// LLM2 (150B × 1.9 B/param = 285 GB) cannot fit with model parallelism
	// 8 (35.6 GB/chip > 34 GB) — the constraint that forces m ≥ 16.
	_, err := sys.StepTime(LLM2(), topo.Shape{X: 8, Y: 16, Z: 32})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	if _, err := sys.StepTime(LLM2(), topo.Shape{X: 16, Y: 16, Z: 16}); err != nil {
		t.Fatalf("16³ should fit LLM2: %v", err)
	}
}

func TestBatchInfeasibility(t *testing.T) {
	sys := DefaultSystem()
	m := LLM0()
	m.GlobalBatch = 100 // fewer sequences than 1024 replicas
	_, err := sys.StepTime(m, topo.Shape{X: 4, Y: 4, Z: 256})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidShape(t *testing.T) {
	sys := DefaultSystem()
	if _, err := sys.StepTime(LLM0(), topo.Shape{X: 3, Y: 4, Z: 4}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestMPSpeedSaturates(t *testing.T) {
	sys := DefaultSystem()
	// Linear up to inherent, strongly diminishing beyond.
	if got := sys.mpSpeed(4, 8); got != 4 {
		t.Fatalf("below inherent: %v", got)
	}
	if got := sys.mpSpeed(8, 8); got != 8 {
		t.Fatalf("at inherent: %v", got)
	}
	over := sys.mpSpeed(16, 8)
	if over <= 8 || over >= 12 {
		t.Fatalf("overshoot speed = %v, want slightly above 8", over)
	}
}

func TestBatchEfficiency(t *testing.T) {
	sys := DefaultSystem()
	if e := sys.batchEff(1000); e < 0.99 {
		t.Fatalf("large batch eff = %v", e)
	}
	if e := sys.batchEff(sys.BatchEffHalf); math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("half-point eff = %v", e)
	}
	if sys.batchEff(2) >= sys.batchEff(8) {
		t.Fatal("efficiency not increasing in batch")
	}
}

func TestExcessModelParallelismHurtsCompute(t *testing.T) {
	// The core Table 2 mechanism: forcing MP beyond the model's inherent
	// degree wastes compute.
	sys := DefaultSystem()
	m := LLM1() // inherent MP 4
	at4, err := sys.StepTime(m, topo.Shape{X: 4, Y: 16, Z: 64})
	if err != nil {
		t.Fatal(err)
	}
	at16, err := sys.StepTime(m, topo.Shape{X: 16, Y: 16, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	if at16.Compute <= at4.Compute*2 {
		t.Fatalf("MP overshoot penalty too weak: %v vs %v", at16.Compute, at4.Compute)
	}
}

func TestA2AFavorsBisection(t *testing.T) {
	sys := DefaultSystem()
	m := LLM2()
	sym, err := sys.StepTime(m, topo.Shape{X: 16, Y: 16, Z: 16})
	if err != nil {
		t.Fatal(err)
	}
	asym, err := sys.StepTime(m, topo.Shape{X: 16, Y: 4, Z: 64})
	if err != nil {
		t.Fatal(err)
	}
	if asym.A2A <= sym.A2A {
		t.Fatal("lower bisection should cost more all-to-all time")
	}
}

func TestTPGrowsWithPerReplicaBatch(t *testing.T) {
	sys := DefaultSystem()
	m := LLM1()
	small, _ := sys.StepTime(m, topo.Shape{X: 4, Y: 4, Z: 256})  // dp=1024, b=16
	large, _ := sys.StepTime(m, topo.Shape{X: 16, Y: 16, Z: 16}) // dp=256, b=64
	if large.TP <= small.TP {
		t.Fatal("TP collectives should grow with per-replica batch and ring size")
	}
}

func TestDPGrowsWithReplicas(t *testing.T) {
	sys := DefaultSystem()
	m := LLM1()
	few, _ := sys.StepTime(m, topo.Shape{X: 16, Y: 16, Z: 16}) // dp=256, shard P/16
	many, _ := sys.StepTime(m, topo.Shape{X: 4, Y: 4, Z: 256}) // dp=1024, shard P/4
	if many.DP <= few.DP {
		t.Fatal("DP all-reduce should cost more with a larger shard")
	}
}

func TestModelParameterConsistency(t *testing.T) {
	// P ≈ 12·L·h² within 5% for all three workloads.
	for _, m := range []LLM{LLM0(), LLM1(), LLM2()} {
		est := 12 * float64(m.Layers) * m.Hidden * m.Hidden
		if r := est / m.Params; r < 0.95 || r > 1.05 {
			t.Errorf("%s: 12Lh² = %.3g vs P = %.3g", m.Name, est, m.Params)
		}
	}
}

func TestBatchSkewMatchesNarrative(t *testing.T) {
	// "LLM0 and LLM1 have much larger global batch size than their model
	// size ... LLM1's inherent parallelism being more skewed to data
	// parallelism"; batch-to-params ratio must be LLM1 > LLM0 > LLM2.
	r := func(m LLM) float64 { return m.GlobalBatch / (m.Params / 1e9) }
	if !(r(LLM1()) > r(LLM0()) && r(LLM0()) > r(LLM2())) {
		t.Fatalf("batch skew ordering broken: %v %v %v", r(LLM0()), r(LLM1()), r(LLM2()))
	}
}
