package mlperf

import (
	"fmt"
	"sort"

	"lightwave/internal/par"
	"lightwave/internal/topo"
)

// ShapeTime pairs a slice shape with its modeled step time.
type ShapeTime struct {
	Shape topo.Shape
	Step  StepBreakdown
	// Feasible is false when the model cannot be mapped onto the shape.
	Feasible bool
	Err      error
}

// SearchResult is the output of the slice-shape optimizer.
type SearchResult struct {
	Model LLM
	// Best is the fastest feasible shape.
	Best ShapeTime
	// Baseline is the max-bisection symmetric static shape (16×16×16 for
	// a full pod), the paper's Table 2 baseline.
	Baseline ShapeTime
	// Speedup is Baseline.Total / Best.Total (1.0 when the baseline is
	// optimal or the baseline is infeasible).
	Speedup float64
	// All lists every evaluated shape, fastest first (infeasible last).
	All []ShapeTime
}

// evalShape models one candidate shape.
func (sys System) evalShape(m LLM, sh topo.Shape) ShapeTime {
	st := ShapeTime{Shape: sh}
	step, err := sys.StepTime(m, sh)
	if err != nil {
		st.Err = err
	} else {
		st.Feasible = true
		st.Step = step
	}
	return st
}

// finishSearch ranks the evaluated shapes, applies the tie rule, and fills
// in the static baseline. The caller supplies All in ShapesFor order; the
// ranking is a stable sort, so sequential and parallel searches finish
// identically.
func (sys System) finishSearch(m LLM, cubes int, all []ShapeTime) (SearchResult, error) {
	res := SearchResult{Model: m, All: all}
	sort.SliceStable(res.All, func(i, j int) bool {
		a, b := res.All[i], res.All[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if !a.Feasible {
			return false
		}
		return a.Step.Total < b.Step.Total
	})
	if !res.All[0].Feasible {
		return res, fmt.Errorf("mlperf: no feasible shape for %s on %d cubes", m.Name, cubes)
	}

	// Tie-break within tolerance.
	const tolerance = 0.005
	best := res.All[0]
	for _, st := range res.All[1:] {
		if !st.Feasible {
			break
		}
		if st.Step.Total > best.Step.Total*(1+tolerance) {
			break
		}
		if morePreferred(st.Shape, best.Shape) {
			best = st
		}
	}
	res.Best = best

	baseShape := topo.MaxBisectionShape(cubes)
	baseStep, err := sys.StepTime(m, baseShape)
	res.Baseline = ShapeTime{Shape: baseShape}
	if err != nil {
		res.Baseline.Err = err
		res.Speedup = 1
	} else {
		res.Baseline.Feasible = true
		res.Baseline.Step = baseStep
		res.Speedup = baseStep.Total / best.Step.Total
		if res.Speedup < 1 {
			// The baseline itself is (within tie tolerance) optimal.
			res.Speedup = 1
			res.Best = res.Baseline
		}
	}
	return res, nil
}

// OptimizeSlice exhaustively evaluates every slice shape with the given
// cube count and returns the fastest — the stand-in for the paper's
// RL-based hardware-optimized NAS [33], exact because the search space is
// tiny. Shapes whose step time is within Tolerance of the optimum are
// considered tied; ties resolve toward the most model/data-asymmetric shape
// (smallest model-parallel dimension, then longest final dimension),
// matching the production optimizer's preference for long unbroken ring
// dimensions.
func (sys System) OptimizeSlice(m LLM, cubes int) (SearchResult, error) {
	shapes := topo.ShapesFor(cubes)
	if len(shapes) == 0 {
		return SearchResult{}, fmt.Errorf("mlperf: no shapes for %d cubes", cubes)
	}
	all := make([]ShapeTime, 0, len(shapes))
	for _, sh := range shapes {
		all = append(all, sys.evalShape(m, sh))
	}
	return sys.finishSearch(m, cubes, all)
}

// OptimizeSlicePar is OptimizeSlice with the per-shape step-time modeling
// fanned out through internal/par — bit-identical to the sequential search
// at any worker count (par.Sweep returns results in input order and the
// ranking sort is stable). Online schedulers use it so a placement decision
// does not serialize the shape search on one core.
func (sys System) OptimizeSlicePar(m LLM, cubes int) (SearchResult, error) {
	shapes := topo.ShapesFor(cubes)
	if len(shapes) == 0 {
		return SearchResult{}, fmt.Errorf("mlperf: no shapes for %d cubes", cubes)
	}
	all := par.Sweep("mlperf_optimize", shapes, func(_ int, sh topo.Shape) ShapeTime {
		return sys.evalShape(m, sh)
	})
	return sys.finishSearch(m, cubes, all)
}

// morePreferred reports whether shape a is preferred over b under the tie
// rule: smaller model-parallel dimension first, then longer last dimension.
func morePreferred(a, b topo.Shape) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Z != b.Z {
		return a.Z > b.Z
	}
	return false
}

// Table2 evaluates the three paper workloads on a full 64-cube pod and
// returns their search results in order — the reproduction of Table 2.
func Table2(sys System) ([]SearchResult, error) {
	var out []SearchResult
	for _, m := range []LLM{LLM0(), LLM1(), LLM2()} {
		r, err := sys.OptimizeSlice(m, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
