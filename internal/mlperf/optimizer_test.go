package mlperf

import (
	"math"
	"testing"

	"lightwave/internal/topo"
)

// TestTable2 reproduces the paper's Table 2 exactly: optimal slice
// configuration and relative speedup versus the static 16×16×16 baseline
// for the three production LLMs.
func TestTable2(t *testing.T) {
	want := []struct {
		shape   topo.Shape
		speedup float64
	}{
		{topo.Shape{X: 8, Y: 16, Z: 32}, 1.54},
		{topo.Shape{X: 4, Y: 4, Z: 256}, 3.32},
		{topo.Shape{X: 16, Y: 16, Z: 16}, 1.00},
	}
	results, err := Table2(DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Best.Shape != want[i].shape {
			t.Errorf("%s: optimal = %v, want %v", r.Model.Name, r.Best.Shape, want[i].shape)
		}
		if math.Abs(r.Speedup-want[i].speedup)/want[i].speedup > 0.05 {
			t.Errorf("%s: speedup = %.2f, want ≈%.2f", r.Model.Name, r.Speedup, want[i].speedup)
		}
	}
}

func TestBaselineIsMaxBisection(t *testing.T) {
	sys := DefaultSystem()
	r, err := sys.OptimizeSlice(LLM0(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline.Shape != (topo.Shape{X: 16, Y: 16, Z: 16}) {
		t.Fatalf("baseline = %v", r.Baseline.Shape)
	}
}

func TestOptimizeOrdersResults(t *testing.T) {
	sys := DefaultSystem()
	r, err := sys.OptimizeSlice(LLM1(), 64)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	feasibleSeen := 0
	for _, st := range r.All {
		if !st.Feasible {
			continue
		}
		feasibleSeen++
		if st.Step.Total < prev {
			t.Fatal("feasible results not sorted by step time")
		}
		prev = st.Step.Total
	}
	if feasibleSeen == 0 {
		t.Fatal("no feasible shapes")
	}
	// Infeasible shapes must sort after feasible ones.
	inTail := false
	for _, st := range r.All {
		if !st.Feasible {
			inTail = true
		} else if inTail {
			t.Fatal("feasible shape after infeasible one")
		}
	}
}

func TestOptimizeSmallerPods(t *testing.T) {
	// The optimizer must work for partial pods too (slices are composed at
	// any multiple of the cube).
	sys := DefaultSystem()
	for _, cubes := range []int{1, 4, 16, 32} {
		m := LLM0()
		m.GlobalBatch = 1024
		r, err := sys.OptimizeSlice(m, cubes)
		if err != nil {
			t.Fatalf("cubes=%d: %v", cubes, err)
		}
		if r.Best.Shape.Cubes() != cubes {
			t.Fatalf("cubes=%d: best %v", cubes, r.Best.Shape)
		}
		if r.Speedup < 1 {
			t.Fatalf("cubes=%d: speedup %v < 1", cubes, r.Speedup)
		}
	}
}

func TestOptimizeNoFeasibleShape(t *testing.T) {
	sys := DefaultSystem()
	// A 150B model on a single cube cannot fit under any shape.
	if _, err := sys.OptimizeSlice(LLM2(), 1); err == nil {
		t.Fatal("expected no feasible shape")
	}
}

func TestOptimizeRejectsZeroCubes(t *testing.T) {
	sys := DefaultSystem()
	if _, err := sys.OptimizeSlice(LLM0(), 0); err == nil {
		t.Fatal("0 cubes accepted")
	}
}

func TestNoOneSizeFitsAll(t *testing.T) {
	// The headline observation of §4.2.1: the optimal configuration
	// differs across models.
	results, err := Table2(DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[topo.Shape]bool{}
	for _, r := range results {
		shapes[r.Best.Shape] = true
	}
	if len(shapes) < 3 {
		t.Fatalf("only %d distinct optima", len(shapes))
	}
}

func TestSpeedupNeverBelowOne(t *testing.T) {
	sys := DefaultSystem()
	for _, m := range []LLM{LLM0(), LLM1(), LLM2()} {
		r, err := sys.OptimizeSlice(m, 64)
		if err != nil {
			t.Fatal(err)
		}
		if r.Speedup < 1 {
			t.Fatalf("%s: speedup %v", m.Name, r.Speedup)
		}
	}
}

func TestTiePreferenceRule(t *testing.T) {
	if !morePreferred(topo.Shape{X: 4, Y: 4, Z: 256}, topo.Shape{X: 4, Y: 32, Z: 32}) {
		t.Error("longer Z should be preferred at equal X")
	}
	if !morePreferred(topo.Shape{X: 4, Y: 32, Z: 32}, topo.Shape{X: 8, Y: 16, Z: 32}) {
		t.Error("smaller X should be preferred")
	}
	if morePreferred(topo.Shape{X: 8, Y: 16, Z: 32}, topo.Shape{X: 8, Y: 16, Z: 32}) {
		t.Error("shape preferred over itself")
	}
}
