package superpod

import (
	"context"
	"testing"
	"time"

	"lightwave/internal/core"
	"lightwave/internal/fleet"
	"lightwave/internal/sched"
)

// TestRunnerTrimsMixToInstalledCubes is the regression for the live-daemon
// failure mode: the default production mix offers 32-cube jobs, which a
// small-pod daemon (-cubes 8) must drop from the stream rather than die on
// the scheduler's oversize rejection.
func TestRunnerTrimsMixToInstalledCubes(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{
		BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
	})
	defer mgr.Close()
	f, err := core.New(core.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddPod("pod0", fleet.NewFabricBackend(f, nil)); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(RunnerConfig{
		Manager:        mgr,
		Pods:           []string{"pod0"},
		InstalledCubes: 8,
		Interval:       time.Millisecond,
		VirtualPerTick: 600,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.cfg.Mix.Sizes; got[len(got)-1] > 8 {
		t.Fatalf("mix not trimmed: %v", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	deadline := time.After(10 * time.Second)
	for r.Scheduler().Stats().Submitted < 20 {
		select {
		case err := <-done:
			t.Fatalf("runner died on the default mix: %v", err)
		case <-deadline:
			t.Fatalf("no submissions: %+v", r.Scheduler().Stats())
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// A mix with no feasible size is rejected up front.
	if _, err := NewRunner(RunnerConfig{
		Manager:        mgr,
		Pods:           []string{"pod0"},
		InstalledCubes: 8,
		Mix:            sched.JobMix{Sizes: []int{16, 32}, Weights: []float64{0.5, 0.5}, MeanDuration: 100, ArrivalRate: 0.1},
	}); err == nil {
		t.Fatal("infeasible mix accepted")
	}
	// Mismatched sizes/weights are rejected up front.
	if _, err := NewRunner(RunnerConfig{
		Manager:        mgr,
		Pods:           []string{"pod0"},
		InstalledCubes: 8,
		Mix:            sched.JobMix{Sizes: []int{1, 2}, Weights: []float64{1}, MeanDuration: 100, ArrivalRate: 0.1},
	}); err == nil {
		t.Fatal("mismatched mix accepted")
	}
}

// TestRunnerResumesRecoveredClock is the crash-recovery regression: after
// RecoverSched replays the journal, the scheduler's virtual clock resumes
// far ahead of the runner's freshly seeded arrival clock. The first tick
// must re-anchor the arrival stream instead of calling AdvanceTo backwards
// and killing the loop.
func TestRunnerResumesRecoveredClock(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{
		BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
	})
	defer mgr.Close()
	f, err := core.New(core.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddPod("pod0", fleet.NewFabricBackend(f, nil)); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(RunnerConfig{
		Manager:        mgr,
		Pods:           []string{"pod0"},
		InstalledCubes: 8,
		Mix: sched.JobMix{
			Sizes: []int{1, 2}, Weights: []float64{0.7, 0.3},
			MeanDuration: 200, ArrivalRate: 0.1,
		},
		Interval:       time.Millisecond,
		VirtualPerTick: 60,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a journal replay leaving the clock at virtual t=4800s.
	if err := r.Scheduler().AdvanceTo(4800); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	deadline := time.After(10 * time.Second)
	for r.Scheduler().Stats().Submitted < 5 {
		select {
		case err := <-done:
			t.Fatalf("runner died on the recovered clock: %v", err)
		case <-deadline:
			t.Fatalf("no submissions after recovery: %+v", r.Scheduler().Stats())
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if now := r.Scheduler().Now(); now < 4800 {
		t.Fatalf("clock went backwards: %v", now)
	}
}

func TestRunnerTicksAgainstFleet(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{
		BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
		QuarantineAfter: 3, Seed: 3,
	})
	defer mgr.Close()
	pods := []string{"pod0", "pod1"}
	var fbs []*fleet.FabricBackend
	for _, name := range pods {
		f, err := core.New(core.DefaultConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		fb := fleet.NewFabricBackend(f, nil)
		fbs = append(fbs, fb)
		if err := mgr.AddPod(name, fb); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewRunner(RunnerConfig{
		Manager:        mgr,
		Pods:           pods,
		InstalledCubes: 8,
		Mix: sched.JobMix{
			Sizes: []int{1, 2}, Weights: []float64{0.7, 0.3},
			MeanDuration: 200, ArrivalRate: 0.1,
		},
		Interval:       2 * time.Millisecond,
		VirtualPerTick: 60,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()

	deadline := time.After(10 * time.Second)
	for r.Scheduler().Stats().Started < 5 {
		select {
		case err := <-done:
			t.Fatalf("runner exited early: %v", err)
		case <-deadline:
			t.Fatalf("no placements after 10s: %+v", r.Scheduler().Stats())
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := r.Scheduler().Stats()
	if st.Completed+st.Preempted+st.RunningJobs != st.Started {
		t.Fatalf("accounting broken: %+v", st)
	}
	// The fleet should carry some of the scheduler's slices once the
	// reconciler catches up.
	settleDeadline := time.Now().Add(5 * time.Second)
	for {
		total := 0
		for _, fb := range fbs {
			total += len(fb.Slices())
		}
		if total == st.RunningJobs {
			break
		}
		if time.Now().After(settleDeadline) {
			t.Fatalf("fleet carries %d slices, scheduler runs %d jobs", total, st.RunningJobs)
		}
		time.Sleep(time.Millisecond)
	}
}
