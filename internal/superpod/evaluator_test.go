package superpod

import (
	"strings"
	"testing"
	"time"

	"lightwave/internal/par"
	"lightwave/internal/sched"
)

// testConfig is a scaled-down stream that still exercises every event
// kind: saturating arrivals, cube failures with repairs, and a pod
// loss/restore window.
func testConfig() EvalConfig {
	return EvalConfig{
		Pods:        2,
		CubesPerPod: 8,
		Mix: sched.JobMix{
			Sizes:        []int{1, 2, 4},
			Weights:      []float64{0.5, 0.3, 0.2},
			MeanDuration: 300,
			ArrivalRate:  0.05,
		},
		HorizonSeconds:      3000,
		WarmupSeconds:       500,
		BackfillWindow:      16,
		CubeMTBF:            4000,
		MeanRepairSeconds:   600,
		PodLossAtSeconds:    1200,
		PodRestoreAtSeconds: 1800,
		SettleTimeout:       30 * time.Second,
		Seed:                9,
	}
}

func TestEvaluateLive(t *testing.T) {
	rep, err := Evaluate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) != 3 {
		t.Fatalf("%d policies", len(rep.Policies))
	}
	for _, p := range rep.Policies {
		if !p.AccountingOK {
			t.Errorf("policy %s: accounting broken: %+v", p.Policy, p.Stats)
		}
		if !p.Consistent {
			t.Errorf("policy %s: fabric diverged from scheduler", p.Policy)
		}
		if p.Stats.Started == 0 || p.Stats.Completed == 0 {
			t.Errorf("policy %s: no jobs ran: %+v", p.Policy, p.Stats)
		}
		if p.FailsApplied == 0 {
			t.Errorf("policy %s: no cube failures applied", p.Policy)
		}
		if !p.Quarantined {
			t.Errorf("policy %s: pod loss did not quarantine", p.Policy)
		}
	}
	reconf, contig := rep.Policies[0], rep.Policies[1]
	if reconf.Stats.Utilization <= contig.Stats.Utilization {
		t.Errorf("reconfigurable %.4f not above contiguous %.4f",
			reconf.Stats.Utilization, contig.Stats.Utilization)
	}
	if reconf.Stats.Swaps == 0 {
		t.Errorf("reconfigurable rode out failures without swaps: %+v", reconf.Stats)
	}
	if contig.Stats.Preempted == 0 {
		t.Errorf("contiguous saw no preemptions: %+v", contig.Stats)
	}
	if rep.UtilizationGap <= 0 {
		t.Errorf("utilization gap %.4f", rep.UtilizationGap)
	}
}

// TestEvaluateDeterministicAcrossWorkers is the live half of the issue's
// determinism requirement: the full report — three live control planes,
// real reconciler goroutines, mlperf shape searches — must render
// byte-identically at 1, 4, and 8 par workers.
func TestEvaluateDeterministicAcrossWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.HorizonSeconds = 1500
	cfg.PodLossAtSeconds = 600
	cfg.PodRestoreAtSeconds = 900
	cfg.UseMLPerfShapes = true
	defer par.SetWorkers(par.SetWorkers(1))
	var ref string
	for _, workers := range []int{1, 4, 8} {
		par.SetWorkers(workers)
		rep, err := Evaluate(cfg)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		text := rep.Text()
		if !strings.Contains(text, "policy reconfigurable:") {
			t.Fatalf("malformed report:\n%s", text)
		}
		if ref == "" {
			ref = text
		} else if text != ref {
			t.Fatalf("report at %d workers diverged:\n%s\n--- want ---\n%s", workers, text, ref)
		}
	}
}
