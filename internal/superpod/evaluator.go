package superpod

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"lightwave/internal/chaos"
	"lightwave/internal/core"
	"lightwave/internal/fleet"
	"lightwave/internal/mlperf"
	"lightwave/internal/par"
	"lightwave/internal/sched"
	"lightwave/internal/sim"
)

// EvalConfig parameterizes a live replay of the §4.2.4 experiment: one
// deterministic job/fault stream generated up front, then replayed per
// placement policy against real core.Fabric pods behind a fleet.Manager
// (with fault-injectable backends). The three policies see byte-identical
// streams, so the utilization gap is apples-to-apples.
type EvalConfig struct {
	// Pods is the superpod count (default 2); CubesPerPod sizes each
	// fabric (default 64 — the full pod).
	Pods        int
	CubesPerPod int
	// Mix is the offered workload (default sched.ProductionMix).
	Mix sched.JobMix
	// HorizonSeconds is the virtual replay length (default 12000);
	// WarmupSeconds is excluded from utilization/wait measurement
	// (default 2000).
	HorizonSeconds float64
	WarmupSeconds  float64
	// BackfillWindow is the scheduler's backfill depth (default 64, the
	// offline reference configuration).
	BackfillWindow int
	// CubeMTBF enables cube-failure injection (mean time between failures
	// of one cube, seconds; 0 disables); repairs take MeanRepairSeconds
	// (default 3600).
	CubeMTBF          float64
	MeanRepairSeconds float64
	// PodLossAtSeconds > 0 fails the last pod's whole backend at that
	// virtual time; PodRestoreAtSeconds heals it (0 = never).
	PodLossAtSeconds    float64
	PodRestoreAtSeconds float64
	// QuarantineAfter is the reconciler's retry budget (default 3).
	QuarantineAfter int
	// SettleTimeout bounds each real-time wait for the reconciler
	// (default 20s; reconcile backoffs are milliseconds).
	SettleTimeout time.Duration
	// UseMLPerfShapes picks each job's slice shape with the par.Sweep
	// mlperf step-time search instead of the max-bisection default.
	UseMLPerfShapes bool
	Seed            uint64
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.Pods <= 0 {
		c.Pods = 2
	}
	if c.CubesPerPod <= 0 {
		c.CubesPerPod = 64
	}
	if len(c.Mix.Sizes) == 0 {
		c.Mix = sched.ProductionMix()
	}
	if c.HorizonSeconds <= 0 {
		c.HorizonSeconds = 12000
	}
	if c.WarmupSeconds <= 0 {
		c.WarmupSeconds = 2000
	}
	if c.BackfillWindow <= 0 {
		c.BackfillWindow = 64
	}
	if c.MeanRepairSeconds <= 0 {
		c.MeanRepairSeconds = 3600
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 20 * time.Second
	}
	return c
}

// event kinds, replayed in (time, generation order).
type evKind int

const (
	evArrival evKind = iota
	evWarmup
	evFail
	evRepair
	evPodLoss
	evPodRestore
)

type event struct {
	at   float64
	kind evKind
	pod  int // pod index (fail/repair/loss/restore)
	cube int
	spec sched.JobSpec
}

// genEvents builds the shared deterministic stream: arrivals from one
// substream, per-pod failure/repair pairs from per-pod substreams, plus
// the warmup marker and the configured pod-loss window.
func genEvents(cfg EvalConfig) []event {
	var evs []event
	totalW := 0.0
	for _, w := range cfg.Mix.Weights {
		totalW += w
	}
	arr := sim.Substream(cfg.Seed, 1)
	for t := arr.ExpFloat64() / cfg.Mix.ArrivalRate; t < cfg.HorizonSeconds; t += arr.ExpFloat64() / cfg.Mix.ArrivalRate {
		x := arr.Float64() * totalW
		size := cfg.Mix.Sizes[len(cfg.Mix.Sizes)-1]
		for i, w := range cfg.Mix.Weights {
			if x < w {
				size = cfg.Mix.Sizes[i]
				break
			}
			x -= w
		}
		evs = append(evs, event{at: t, kind: evArrival, spec: sched.JobSpec{
			Cubes:           size,
			DurationSeconds: arr.ExpFloat64() * cfg.Mix.MeanDuration,
		}})
	}
	evs = append(evs, event{at: cfg.WarmupSeconds, kind: evWarmup})
	if cfg.CubeMTBF > 0 {
		for p := 0; p < cfg.Pods; p++ {
			rng := sim.Substream(cfg.Seed, 100+uint64(p))
			rate := float64(cfg.CubesPerPod) / cfg.CubeMTBF
			for t := rng.ExpFloat64() / rate; t < cfg.HorizonSeconds; t += rng.ExpFloat64() / rate {
				cube := rng.Intn(cfg.CubesPerPod)
				evs = append(evs, event{at: t, kind: evFail, pod: p, cube: cube})
				if rt := t + rng.ExpFloat64()*cfg.MeanRepairSeconds; rt < cfg.HorizonSeconds {
					evs = append(evs, event{at: rt, kind: evRepair, pod: p, cube: cube})
				}
			}
		}
	}
	if cfg.PodLossAtSeconds > 0 {
		evs = append(evs, event{at: cfg.PodLossAtSeconds, kind: evPodLoss, pod: cfg.Pods - 1})
		if cfg.PodRestoreAtSeconds > cfg.PodLossAtSeconds {
			evs = append(evs, event{at: cfg.PodRestoreAtSeconds, kind: evPodRestore, pod: cfg.Pods - 1})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs
}

// PolicyOutcome is one placement policy's ride through the stream.
type PolicyOutcome struct {
	Policy string
	Stats  sched.SchedulerStats
	// FailsApplied/FailsSkipped count cube-failure events injected vs
	// dropped (cube already failed, or pod down); likewise repairs.
	FailsApplied, FailsSkipped     int
	RepairsApplied, RepairsSkipped int
	// Quarantined reports whether the pod-loss event drove its pod into
	// reconciler quarantine (false when no jobs were stranded, or no loss
	// was configured).
	Quarantined bool
	// AccountingOK is the exactness invariant: started jobs are completed,
	// preempted, or still running — never double counted.
	AccountingOK bool
	// Consistent reports that at horizon the live fabric carried exactly
	// the scheduler's running slice set with matching cube health.
	Consistent bool
}

// Report is the evaluator outcome; Text renders it in a fixed format so
// replays agree exactly iff their reports are byte-identical.
type Report struct {
	Pods, CubesPerPod       int
	HorizonSeconds          float64
	WarmupSeconds           float64
	Seed                    uint64
	Arrivals                int
	FailEvents, PodLossEvts int
	Policies                []PolicyOutcome
	// UtilizationGap is reconfigurable minus contiguous utilization.
	UtilizationGap float64
}

// Text renders the report deterministically.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "superpod report: pods=%d cubes_per_pod=%d horizon_s=%.0f warmup_s=%.0f seed=%d\n",
		r.Pods, r.CubesPerPod, r.HorizonSeconds, r.WarmupSeconds, r.Seed)
	fmt.Fprintf(&b, "events: arrivals=%d cube_failures=%d pod_losses=%d\n",
		r.Arrivals, r.FailEvents, r.PodLossEvts)
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "policy %s: util=%.4f started=%d completed=%d preempted=%d swaps=%d migrated_cubes=%d queued_end=%d running_end=%d mean_wait_s=%.3f fails=%d/%d repairs=%d/%d quarantined=%t accounting_ok=%t consistent=%t\n",
			p.Policy, p.Stats.Utilization, p.Stats.Started, p.Stats.Completed, p.Stats.Preempted,
			p.Stats.Swaps, p.Stats.MigratedCubes, p.Stats.QueueDepth, p.Stats.RunningJobs,
			p.Stats.MeanWaitSeconds, p.FailsApplied, p.FailsApplied+p.FailsSkipped,
			p.RepairsApplied, p.RepairsApplied+p.RepairsSkipped, p.Quarantined, p.AccountingOK, p.Consistent)
	}
	fmt.Fprintf(&b, "gap reconfigurable-contiguous: %.4f\n", r.UtilizationGap)
	return b.String()
}

type policy struct {
	name   string
	placer sched.Placer
	defrag bool
}

// Evaluate replays the generated stream under the three §4.2.4 policies —
// reconfigurable, contiguous, contiguous+defrag — each against its own
// live fleet.Manager + core.Fabric control plane. Policies fan out on the
// par worker pool; each replay is sequential and deterministic, so the
// report is bit-identical at any worker count.
func Evaluate(cfg EvalConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	events := genEvents(cfg)

	rep := &Report{
		Pods: cfg.Pods, CubesPerPod: cfg.CubesPerPod,
		HorizonSeconds: cfg.HorizonSeconds, WarmupSeconds: cfg.WarmupSeconds,
		Seed: cfg.Seed,
	}
	for _, ev := range events {
		switch ev.kind {
		case evArrival:
			rep.Arrivals++
		case evFail:
			rep.FailEvents++
		case evPodLoss:
			rep.PodLossEvts++
		}
	}

	policies := []policy{
		{"reconfigurable", sched.Reconfigurable{}, false},
		{"contiguous", sched.Contiguous{}, false},
		{"contiguous+defrag", sched.Contiguous{}, true},
	}
	type out struct {
		po  PolicyOutcome
		err error
	}
	outs := par.Sweep("superpod_eval", policies, func(_ int, pol policy) out {
		po, err := runPolicy(cfg, events, pol)
		return out{po, err}
	})
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("superpod: policy %s: %w", policies[i].name, o.err)
		}
		rep.Policies = append(rep.Policies, o.po)
	}
	rep.UtilizationGap = rep.Policies[0].Stats.Utilization - rep.Policies[1].Stats.Utilization
	return rep, nil
}

// runPolicy builds one live control plane and replays the stream.
func runPolicy(cfg EvalConfig, events []event, pol policy) (PolicyOutcome, error) {
	po := PolicyOutcome{Policy: pol.name}
	if pol.defrag {
		po.Policy = "contiguous+defrag"
	}

	mgr := fleet.NewManager(fleet.Options{
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      8 * time.Millisecond,
		QuarantineAfter: cfg.QuarantineAfter,
		Seed:            cfg.Seed,
	})
	defer mgr.Close()

	pods := make([]string, cfg.Pods)
	fbs := make([]*fleet.FabricBackend, cfg.Pods)
	cbs := make([]*chaos.FaultyBackend, cfg.Pods)
	for i := range pods {
		pods[i] = fmt.Sprintf("pod%d", i)
		f, err := core.New(core.DefaultConfig(cfg.CubesPerPod))
		if err != nil {
			return po, err
		}
		fbs[i] = fleet.NewFabricBackend(f, nil)
		cbs[i] = chaos.NewFaultyBackend(fbs[i])
		if err := mgr.AddPod(pods[i], cbs[i]); err != nil {
			return po, err
		}
	}

	var shapes sched.ShapeChooser
	if cfg.UseMLPerfShapes {
		shapes = sched.NewOptimizedShapeChooser(mlperf.DefaultSystem(), mlperf.LLM0())
	}
	s, err := sched.NewScheduler(sched.SchedulerConfig{
		Pods:           pods,
		InstalledCubes: cfg.CubesPerPod,
		Placer:         pol.placer,
		Defrag:         pol.defrag,
		BackfillWindow: cfg.BackfillWindow,
		Shapes:         shapes,
		Ops:            FleetOps{M: mgr},
	})
	if err != nil {
		return po, err
	}

	settle := func(pred func(fleet.Status) bool, what string) error {
		deadline := time.Now().Add(cfg.SettleTimeout)
		for {
			if pred(mgr.Status()) {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out waiting for %s", what)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	podStatus := func(st fleet.Status, name string) fleet.PodStatus {
		for _, p := range st.Pods {
			if p.Name == name {
				return p
			}
		}
		return fleet.PodStatus{}
	}
	allSettled := func(st fleet.Status) bool {
		for _, p := range st.Pods {
			if !p.Converged && !p.Quarantined {
				return false
			}
		}
		return true
	}

	down := make([]bool, cfg.Pods)
	for _, ev := range events {
		if err := s.AdvanceTo(ev.at); err != nil {
			return po, err
		}
		switch ev.kind {
		case evArrival:
			if _, _, err := s.Submit(ev.spec); err != nil {
				return po, err
			}
		case evWarmup:
			s.StartMeasurement()
		case evFail:
			st, err := s.CubeState(pods[ev.pod], ev.cube)
			if err != nil {
				return po, err
			}
			if down[ev.pod] || st == sched.Failed {
				po.FailsSkipped++
				continue
			}
			// Scheduler first: it evicts or swaps the victim job off the
			// cube (intent updates), the fleet realizes the moves, and only
			// then is the cube marked failed on the hardware — so the mark
			// must find it unowned.
			if err := s.FailCube(pods[ev.pod], ev.cube); err != nil {
				return po, err
			}
			if err := settle(allSettled, fmt.Sprintf("cube %d failure on %s", ev.cube, pods[ev.pod])); err != nil {
				return po, err
			}
			rc, err := fbs[ev.pod].FailCube(ev.cube)
			if err != nil {
				return po, err
			}
			if rc != -1 {
				return po, fmt.Errorf("cube %d on %s still owned at hardware failure (swap rc=%d)", ev.cube, pods[ev.pod], rc)
			}
			po.FailsApplied++
		case evRepair:
			st, err := s.CubeState(pods[ev.pod], ev.cube)
			if err != nil {
				return po, err
			}
			if down[ev.pod] || st != sched.Failed {
				po.RepairsSkipped++
				continue
			}
			// Hardware first so the cube is genuinely usable when the
			// scheduler immediately re-places queued jobs onto it.
			if err := fbs[ev.pod].RepairCube(ev.cube); err != nil {
				return po, err
			}
			if err := s.RepairCube(pods[ev.pod], ev.cube); err != nil {
				return po, err
			}
			po.RepairsApplied++
		case evPodLoss:
			cbs[ev.pod].Fail(errors.New("superpod: pod lost"))
			if err := s.SetPodDown(pods[ev.pod], true); err != nil {
				return po, err
			}
			if err := mgr.Poke(pods[ev.pod]); err != nil {
				return po, err
			}
			if err := settle(allSettled, "pod loss settle"); err != nil {
				return po, err
			}
			po.Quarantined = podStatus(mgr.Status(), pods[ev.pod]).Quarantined
			down[ev.pod] = true
		case evPodRestore:
			cbs[ev.pod].Heal()
			if err := mgr.UndrainPod(pods[ev.pod]); err != nil {
				return po, err
			}
			if err := settle(func(st fleet.Status) bool {
				p := podStatus(st, pods[ev.pod])
				return p.Converged && !p.Quarantined
			}, "pod restore settle"); err != nil {
				return po, err
			}
			down[ev.pod] = false
			if err := s.SetPodDown(pods[ev.pod], false); err != nil {
				return po, err
			}
		}
	}
	if err := s.AdvanceTo(cfg.HorizonSeconds); err != nil {
		return po, err
	}
	if err := settle(allSettled, "final convergence"); err != nil {
		return po, err
	}

	po.Stats = s.Stats()
	po.AccountingOK = po.Stats.Completed+po.Stats.Preempted+po.Stats.RunningJobs == po.Stats.Started

	// Consistency: every up pod's fabric must carry exactly the
	// scheduler's running slices, with cube health in lockstep.
	po.Consistent = true
	want := s.RunningSlices()
	for i, name := range pods {
		if down[i] {
			continue // backend faulted: intent cannot be realized
		}
		got := fbs[i].Slices()
		sort.Strings(got)
		exp := append([]string(nil), want[name]...)
		sort.Strings(exp)
		if !reflect.DeepEqual(got, exp) && !(len(got) == 0 && len(exp) == 0) {
			po.Consistent = false
		}
		for c := 0; c < cfg.CubesPerPod; c++ {
			st, err := s.CubeState(name, c)
			if err != nil {
				return po, err
			}
			if (st == sched.Failed) == fbs[i].CubeHealthy(c) {
				po.Consistent = false
			}
		}
	}
	return po, nil
}
