// Package superpod wires the §4.2.4 slice scheduler to the live control
// plane: scheduling decisions made on the sched.Scheduler's cube mirror
// become fleet.Manager slice intents, which the reconciler realizes on
// core.Fabric pods. The package carries three pieces:
//
//	FleetOps   — the sched.ClusterOps seam over a fleet.Manager
//	Evaluator  — the live §4.2.4 experiment: one deterministic job/fault
//	             stream replayed against real fabric pods under each
//	             placement policy (Evaluate)
//	Runner     — the daemon-side background loop that ticks the scheduler
//	             against the wall clock (lwfleetd -sched)
package superpod

import (
	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

// FleetOps translates scheduler decisions into fleet slice intents. The
// reconciler realizes them asynchronously; intent registration itself only
// fails on malformed input or unknown pods, so scheduler state and fleet
// intent can never diverge silently.
type FleetOps struct {
	M *fleet.Manager
}

// EnsureJobSlice implements sched.ClusterOps.
func (o FleetOps) EnsureJobSlice(pod, slice string, shape topo.Shape, cubes []int) error {
	return o.M.SetSliceIntent(pod, fleet.SliceIntent{Name: slice, Shape: shape, Cubes: cubes})
}

// RemoveJobSlice implements sched.ClusterOps.
func (o FleetOps) RemoveJobSlice(pod, slice string) error {
	return o.M.RemoveSliceIntent(pod, slice)
}
