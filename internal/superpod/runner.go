package superpod

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"lightwave/internal/fleet"
	"lightwave/internal/sched"
	"lightwave/internal/sim"
)

// RunnerConfig parameterizes the daemon-embedded scheduler loop.
type RunnerConfig struct {
	// Manager is the fleet receiving slice intents (required).
	Manager *fleet.Manager
	// Pods are the pod names the scheduler places onto (required);
	// InstalledCubes is the usable cube count per pod (default 64).
	Pods           []string
	InstalledCubes int
	// Scheduler tuning; zero values take sched defaults. Placer defaults
	// to Reconfigurable — the production policy.
	Placer         sched.Placer
	Defrag         bool
	BackfillWindow int
	Shapes         sched.ShapeChooser
	// Mix is the synthetic offered workload (default sched.ProductionMix).
	Mix sched.JobMix
	// Interval is the wall-clock tick (default 2s); each tick advances
	// virtual time by VirtualPerTick seconds (default 60).
	Interval       time.Duration
	VirtualPerTick float64
	Seed           uint64
	// OnTick, when non-nil, observes every tick's stats (for logging).
	OnTick func(stats sched.SchedulerStats)
}

// Runner drives a sched.Scheduler against the live fleet on a wall-clock
// ticker: each tick samples Poisson arrivals from the mix over the next
// virtual-time window and advances the scheduler through them. Fleet
// quarantine/recovery events feed back as pod down/up transitions, closing
// the scheduling↔fleet↔chaos loop inside the daemon.
type Runner struct {
	cfg   RunnerConfig
	s     *sched.Scheduler
	rng   *sim.Rand
	nextA float64 // next arrival's virtual time
}

// NewRunner builds the scheduler over the fleet.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	if cfg.Manager == nil {
		return nil, errors.New("superpod: runner needs a fleet manager")
	}
	if len(cfg.Mix.Sizes) == 0 {
		cfg.Mix = sched.ProductionMix()
	}
	if len(cfg.Mix.Weights) != len(cfg.Mix.Sizes) {
		return nil, fmt.Errorf("superpod: mix has %d sizes but %d weights",
			len(cfg.Mix.Sizes), len(cfg.Mix.Weights))
	}
	// Trim the mix to jobs that can fit a pod: on small daemons (-cubes 16)
	// the production mix's 32-cube jobs would otherwise be rejected by the
	// scheduler and kill the loop.
	installed := cfg.InstalledCubes
	if installed <= 0 || installed > 64 {
		installed = 64
	}
	var sizes []int
	var weights []float64
	for i, sz := range cfg.Mix.Sizes {
		if sz <= installed {
			sizes = append(sizes, sz)
			weights = append(weights, cfg.Mix.Weights[i])
		}
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("superpod: no job size in the mix fits %d installed cubes", installed)
	}
	cfg.Mix.Sizes, cfg.Mix.Weights = sizes, weights
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.VirtualPerTick <= 0 {
		cfg.VirtualPerTick = 60
	}
	s, err := sched.NewScheduler(sched.SchedulerConfig{
		Pods:           cfg.Pods,
		InstalledCubes: cfg.InstalledCubes,
		Placer:         cfg.Placer,
		Defrag:         cfg.Defrag,
		BackfillWindow: cfg.BackfillWindow,
		Shapes:         cfg.Shapes,
		Ops:            FleetOps{M: cfg.Manager},
	})
	if err != nil {
		return nil, err
	}
	rng := sim.Substream(cfg.Seed, 7)
	return &Runner{cfg: cfg, s: s, rng: rng, nextA: rng.ExpFloat64() / cfg.Mix.ArrivalRate}, nil
}

// Scheduler returns the runner's scheduler (for status serving and manual
// submissions via the control RPC).
func (r *Runner) Scheduler() *sched.Scheduler { return r.s }

// sample draws one job from the mix.
func (r *Runner) sample() sched.JobSpec {
	totalW := 0.0
	for _, w := range r.cfg.Mix.Weights {
		totalW += w
	}
	x := r.rng.Float64() * totalW
	size := r.cfg.Mix.Sizes[len(r.cfg.Mix.Sizes)-1]
	for i, w := range r.cfg.Mix.Weights {
		if x < w {
			size = r.cfg.Mix.Sizes[i]
			break
		}
		x -= w
	}
	return sched.JobSpec{Cubes: size, DurationSeconds: r.rng.ExpFloat64() * r.cfg.Mix.MeanDuration}
}

// tick advances one virtual window, submitting the arrivals that fall in
// it.
func (r *Runner) tick() error {
	now := r.s.Now()
	// After crash recovery the scheduler's virtual clock resumes where the
	// journal left it, ahead of this runner's freshly seeded arrival clock.
	// Re-anchor the next arrival to the recovered clock instead of
	// retroactively submitting the downtime gap (which would also trip
	// AdvanceTo's monotonicity check and kill the loop).
	if r.nextA < now {
		r.nextA = now + r.rng.ExpFloat64()/r.cfg.Mix.ArrivalRate
	}
	target := now + r.cfg.VirtualPerTick
	for r.nextA < target {
		if err := r.s.AdvanceTo(r.nextA); err != nil {
			return err
		}
		if _, _, err := r.s.Submit(r.sample()); err != nil {
			return err
		}
		r.nextA += r.rng.ExpFloat64() / r.cfg.Mix.ArrivalRate
	}
	return r.s.AdvanceTo(target)
}

// Run ticks until ctx is cancelled, draining fleet events between ticks so
// quarantined pods stop receiving placements and recovered pods rejoin.
// Tick errors end the run.
func (r *Runner) Run(ctx context.Context) error {
	sub := r.cfg.Manager.Subscribe(256)
	defer sub.Close()
	tick := time.NewTicker(r.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case ev := <-sub.Events():
			if err := r.handleEvent(ev); err != nil {
				return err
			}
			continue
		case <-tick.C:
		}
		if err := r.tick(); err != nil {
			return err
		}
		if r.cfg.OnTick != nil {
			r.cfg.OnTick(r.s.Stats())
		}
	}
}

// handleEvent maps fleet health transitions onto the scheduler. Events for
// pods the scheduler does not manage are ignored.
func (r *Runner) handleEvent(ev fleet.Event) error {
	isOurs := false
	for _, p := range r.cfg.Pods {
		if p == ev.Pod {
			isOurs = true
			break
		}
	}
	if !isOurs {
		return nil
	}
	switch ev.Type {
	case fleet.EventQuarantined:
		return r.s.SetPodDown(ev.Pod, true)
	case fleet.EventRecovered:
		return r.s.SetPodDown(ev.Pod, false)
	case fleet.EventUndrained:
		// A plain pod undrain (no OCS detail) releases quarantine too.
		if !strings.HasPrefix(ev.Detail, "ocs") {
			return r.s.SetPodDown(ev.Pod, false)
		}
	}
	return nil
}
