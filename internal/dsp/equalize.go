package dsp

// Equalizer models the receive-side nonlinear equalization of §3.3.1: the
// chromatic-dispersion and chirp impairments over the 80 nm CWDM range are
// "mitigated by managing frequency variations (chirp) in the laser and the
// modulator along with the use of nonlinear equalizers based on maximum
// likelihood sequence estimation (MLSE)". At the level of abstraction of
// the link budget, the equalizer recovers a fixed fraction of the
// unequalized dispersion penalty at the cost of a small noise enhancement.
type Equalizer struct {
	// Taps is the MLSE memory (states = 4^Taps for PAM4).
	Taps int
	// RecoveryFraction is the share of the raw dispersion penalty the
	// equalizer removes.
	RecoveryFraction float64
	// NoiseEnhancementDB is the SNR cost of equalization.
	NoiseEnhancementDB float64
}

// DefaultEqualizer returns the production MLSE setting: a short-memory
// sequence detector recovering ~70% of the dispersion penalty for ~0.2 dB
// of noise enhancement.
func DefaultEqualizer() Equalizer {
	return Equalizer{Taps: 2, RecoveryFraction: 0.7, NoiseEnhancementDB: 0.2}
}

// ResidualPenaltyDB maps a raw (unequalized) dispersion penalty to the
// penalty remaining after equalization, including the noise-enhancement
// cost. It never returns a value worse than the raw penalty.
func (e Equalizer) ResidualPenaltyDB(rawDB float64) float64 {
	if rawDB <= 0 {
		return 0
	}
	res := rawDB*(1-e.RecoveryFraction) + e.NoiseEnhancementDB
	if res > rawDB {
		return rawDB
	}
	return res
}

// States returns the trellis state count of the MLSE detector for PAM4.
func (e Equalizer) States() int {
	n := 1
	for i := 0; i < e.Taps; i++ {
		n *= 4
	}
	return n
}
