package dsp

import "lightwave/internal/par"

// Fleet-wide BER sampling (Fig 13): every receiving port of a pod runs
// with its own residual link margin (design margin minus end-of-life
// allocations actually spent) and its own MPI level; the per-lane BER
// distribution must sit well under the KP4 threshold. The sampler is the
// fleet-telemetry counterpart of the single-lane models in this package
// and fans out across the worker pool deterministically.

// FleetBERConfig parameterizes a fleet sample.
type FleetBERConfig struct {
	// Ports is the number of receiving ports sampled (a 64-cube pod has
	// 64×96 = 6144).
	Ports int
	// SensitivityDBm is the receiver sensitivity at the FEC threshold;
	// per-port received power is SensitivityDBm + margin.
	SensitivityDBm float64
	// MarginMeanDB/MarginSigmaDB describe the Gaussian spread of residual
	// link margin across the fleet; MarginFloorDB clips the worst links
	// (repair thresholds keep links above it).
	MarginMeanDB, MarginSigmaDB, MarginFloorDB float64
	// MPIMeanDB/MPISigmaDB describe the per-port MPI level.
	MPIMeanDB, MPISigmaDB float64
	// OIM enables interference mitigation at every receiver (the
	// production DSP always runs it).
	OIM bool
	// Seed fixes the fleet draw; a given seed yields the same fleet at any
	// worker count.
	Seed uint64
}

// DefaultFleetBERConfig returns the Fig 13 configuration: 6144 ports at
// ~1.55 dB residual margin and −38 dB mean MPI.
func DefaultFleetBERConfig() FleetBERConfig {
	return FleetBERConfig{
		Ports:         6144,
		MarginMeanDB:  1.55,
		MarginSigmaDB: 0.12,
		MarginFloorDB: 1.3,
		MPIMeanDB:     -38,
		MPISigmaDB:    2,
		OIM:           true,
		Seed:          1313,
	}
}

// FleetBERResult is the sampled fleet distribution.
type FleetBERResult struct {
	// BERs holds the per-port pre-FEC BER in port order.
	BERs []float64
	// Worst is the maximum BER across the fleet.
	Worst float64
}

// OverThreshold counts ports whose BER exceeds thr.
func (r FleetBERResult) OverThreshold(thr float64) int {
	n := 0
	for _, b := range r.BERs {
		if b > thr {
			n++
		}
	}
	return n
}

// FleetBER samples the per-port BER of the whole fleet, parallelized over
// port shards with one RNG substream per shard.
func (rx Receiver) FleetBER(cfg FleetBERConfig) FleetBERResult {
	if cfg.Ports <= 0 {
		cfg.Ports = 6144
	}
	res := FleetBERResult{BERs: make([]float64, cfg.Ports)}
	worsts := par.MonteCarlo("dsp_fleet_ber", cfg.Ports, cfg.Seed, func(sh par.Shard) float64 {
		worst := 0.0
		for port := sh.Start; port < sh.End; port++ {
			margin := cfg.MarginMeanDB + cfg.MarginSigmaDB*sh.Rng.NormFloat64()
			if margin < cfg.MarginFloorDB {
				margin = cfg.MarginFloorDB
			}
			mpi := cfg.MPIMeanDB + cfg.MPISigmaDB*sh.Rng.NormFloat64()
			ber := rx.BER(cfg.SensitivityDBm+margin, MPICondition{MPIDB: mpi, OIM: cfg.OIM})
			res.BERs[port] = ber
			if ber > worst {
				worst = ber
			}
		}
		return worst
	})
	for _, w := range worsts {
		if w > res.Worst {
			res.Worst = w
		}
	}
	return res
}
