package dsp

import (
	"testing"

	"lightwave/internal/sim"
)

func BenchmarkAnalyticBER(b *testing.B) {
	r := DefaultReceiver()
	cond := MPICondition{MPIDB: -32, OIM: true}
	for i := 0; i < b.N; i++ {
		_ = r.BER(-9, cond)
	}
}

func BenchmarkSensitivitySearch(b *testing.B) {
	r := DefaultReceiver()
	cond := MPICondition{MPIDB: -32, OIM: true}
	for i := 0; i < b.N; i++ {
		if _, err := r.Sensitivity(2e-4, cond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarlo100k(b *testing.B) {
	r := DefaultReceiver()
	for i := 0; i < b.N; i++ {
		_ = r.MonteCarloBER(-11, MPICondition{MPIDB: -30},
			MonteCarloConfig{Symbols: 100000, Rand: sim.NewRand(uint64(i + 1))})
	}
}

func BenchmarkOIMMitigation100k(b *testing.B) {
	r := DefaultReceiver()
	for i := 0; i < b.N; i++ {
		_ = r.MonteCarloBER(-11, MPICondition{MPIDB: -30, OIM: true},
			MonteCarloConfig{Symbols: 100000, Rand: sim.NewRand(uint64(i + 1))})
	}
}

func BenchmarkMLSEDetect(b *testing.B) {
	m := NewMLSE(0.2)
	levels := [4]float64{1, 2, 3, 4}
	rng := sim.NewRand(9)
	n := 100000
	y := make([]float64, n)
	prev := 0
	for i := range y {
		k := rng.Intn(4)
		y[i] = m.H0*levels[k] + m.H1*levels[prev] + 0.1*rng.NormFloat64()
		prev = k
	}
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Detect(y, levels)
	}
}
