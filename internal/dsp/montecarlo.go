package dsp

import (
	"math"

	"lightwave/internal/par"
	"lightwave/internal/sim"
)

// This file is the waveform-level Monte-Carlo counterpart of the analytic
// receiver: it generates Gray-coded PAM4 symbols, adds the MPI beat tone and
// Gaussian noise, optionally runs the OIM reconstruct-and-subtract notch
// filter, slices, and counts bit errors — the "measured" curves of Fig 11b.

// grayMap maps symbol level index to its 2-bit Gray label.
var grayMap = [4]uint8{0b00, 0b01, 0b11, 0b10}

// MonteCarloConfig controls a waveform simulation run.
type MonteCarloConfig struct {
	// Symbols is the number of PAM4 symbols to simulate.
	Symbols int
	// MPIOffsetHz is the carrier frequency offset between signal and
	// interferer; the beat appears as a narrow tone at this frequency
	// (§4.1.2: "the dominant carrier to carrier beating noise ... exhibits
	// a unique narrow-band spectral characteristic").
	MPIOffsetHz float64
	// Rand supplies the randomness; nil uses a fixed seed. The simulation
	// fans out over GOMAXPROCS workers internally, with each symbol shard
	// on its own substream: results depend only on the seed, not on the
	// worker count.
	Rand *sim.Rand
}

// MonteCarloResult summarizes a run.
type MonteCarloResult struct {
	BER       float64
	BitErrors int
	Bits      int
	// EstimatedOffsetHz is the beat frequency the OIM stage locked to
	// (zero when OIM is off or no tone was found).
	EstimatedOffsetHz float64
}

// MonteCarloBER simulates the lane at rxPowerDBm under mpi and returns the
// measured pre-FEC BER.
func (r Receiver) MonteCarloBER(rxPowerDBm float64, mpi MPICondition, cfg MonteCarloConfig) MonteCarloResult {
	if cfg.Symbols <= 0 {
		cfg.Symbols = 100000
	}
	rng := cfg.Rand
	if rng == nil {
		rng = sim.NewRand(0xD5B)
	}
	if cfg.MPIOffsetHz == 0 {
		cfg.MPIOffsetHz = 2.3e9
	}

	pAvg := dbmToWatts(rxPowerDBm)
	lv := r.levels(pAvg)
	resp := r.ResponsivityAPerW
	ts := 1 / (r.SymbolRateGBd * 1e9)

	// Interferer optical power (pre-mitigation: OIM happens digitally in
	// this simulation, not via effectiveMPILin).
	pInt := 0.0
	if mpi.MPIDB > NoMPI {
		pInt = math.Pow(10, mpi.MPIDB/10) * pAvg
	}

	tx := make([]uint8, cfg.Symbols)    // transmitted level index
	rxs := make([]float64, cfg.Symbols) // received current samples
	phase := rng.Float64() * 2 * math.Pi
	// Per-level noise sigmas are symbol-independent; precompute so shards
	// don't redo the math per sample.
	var sigmas [4]float64
	for k := range sigmas {
		sigmas[k] = r.noiseSigmaA(lv[k], pAvg, MPICondition{MPIDB: NoMPI})
	}
	// Waveform synthesis is the hot loop: shard the symbol range across the
	// worker pool. Each shard draws from its own substream of the caller's
	// generator and writes a disjoint slice of tx/rxs, so the waveform is
	// bit-identical at any worker count.
	seed := rng.Uint64()
	par.MonteCarlo("dsp_mc_ber", cfg.Symbols, seed, func(sh par.Shard) struct{} {
		srng := sh.Rng
		for n := sh.Start; n < sh.End; n++ {
			k := uint8(srng.Intn(4))
			tx[n] = k
			pk := lv[k]
			sig := resp * pk
			// MPI beat: 2·R·sqrt(η·P_k·P_int)·cos(2πΔf·t + φ).
			beat := 0.0
			if pInt > 0 {
				amp := 2 * resp * math.Sqrt(r.PolarizationOverlap*pk*pInt)
				beat = amp * math.Cos(2*math.Pi*cfg.MPIOffsetHz*float64(n)*ts+phase)
			}
			// Gaussian noise: thermal + shot + RIN at this level (no MPI
			// term — the beat is added explicitly above).
			rxs[n] = sig + beat + sigmas[k]*srng.NormFloat64()
		}
		return struct{}{}
	})

	var estHz float64
	if mpi.OIM && pInt > 0 {
		estHz = r.oimMitigate(rxs, lv, resp, ts)
	}

	// Slice and count, again sharded; per-shard error counts are merged in
	// shard order (integer sums, so the total is exact either way).
	thr := r.thresholds(lv)
	errs := 0
	for _, e := range par.MonteCarlo("dsp_mc_slice", cfg.Symbols, seed, func(sh par.Shard) int {
		shErrs := 0
		for n := sh.Start; n < sh.End; n++ {
			k := slice(rxs[n], thr)
			diff := grayMap[tx[n]] ^ grayMap[k]
			shErrs += popcount2(diff)
		}
		return shErrs
	}) {
		errs += e
	}
	bits := 2 * cfg.Symbols
	return MonteCarloResult{
		BER:               float64(errs) / float64(bits),
		BitErrors:         errs,
		Bits:              bits,
		EstimatedOffsetHz: estHz,
	}
}

// thresholds returns the three PAM4 slicer thresholds in current units.
func (r Receiver) thresholds(lv [4]float64) [3]float64 {
	var t [3]float64
	for i := 0; i < 3; i++ {
		t[i] = r.ResponsivityAPerW * (lv[i] + lv[i+1]) / 2
	}
	return t
}

func slice(v float64, thr [3]float64) uint8 {
	switch {
	case v < thr[0]:
		return 0
	case v < thr[1]:
		return 1
	case v < thr[2]:
		return 2
	default:
		return 3
	}
}

func popcount2(b uint8) int {
	return int(b&1) + int(b>>1&1)
}

// oimMitigate implements the Optical Interference Mitigation algorithm of
// [66] on the sample stream in place and returns the estimated beat
// frequency: (1) form the slicer error signal, (2) locate the dominant
// narrowband tone by scanning a Goertzel bank over the error signal, (3)
// estimate the tone's amplitude and phase by correlation, (4) reconstruct
// and subtract it.
func (r Receiver) oimMitigate(rxs []float64, lv [4]float64, resp, ts float64) float64 {
	thr := r.thresholds(lv)
	errSig := make([]float64, len(rxs))
	for n, v := range rxs {
		k := slice(v, thr)
		errSig[n] = v - resp*lv[k]
	}

	f := estimateTone(errSig, ts)

	// Correlate to get amplitude and phase, then subtract. The beat
	// amplitude is level dependent (∝ sqrt(P_k)); estimate the mean
	// component and scale per slice decision.
	var c, s float64
	for n, e := range errSig {
		w := 2 * math.Pi * f * float64(n) * ts
		c += e * math.Cos(w)
		s += e * math.Sin(w)
	}
	c, s = 2*c/float64(len(errSig)), 2*s/float64(len(errSig))
	amp := math.Hypot(c, s)
	phase := math.Atan2(-s, c)
	if amp == 0 {
		return f
	}
	// The beat amplitude per symbol is ∝ sqrt(P_k); the correlation above
	// estimated the mean over levels, so normalize by E[sqrt(P_k)].
	meanSqrt := (math.Sqrt(lv[0]) + math.Sqrt(lv[1]) + math.Sqrt(lv[2]) + math.Sqrt(lv[3])) / 4
	for n := range rxs {
		k := slice(rxs[n], thr)
		scale := math.Sqrt(lv[k]) / meanSqrt
		rxs[n] -= scale * amp * math.Cos(2*math.Pi*f*float64(n)*ts+phase)
	}
	return f
}

// estimateTone locates the dominant narrowband tone in x by a multi-stage
// Goertzel zoom: each stage scans around the previous estimate with a step
// no wider than half of the previous stage's resolution bin, so the search
// stays inside the main lobe as the window grows.
func estimateTone(x []float64, ts float64) float64 {
	nyq := 0.5 / ts
	// Stage 1: short window, full-band scan at half-bin steps.
	n1 := len(x)
	if n1 > 4096 {
		n1 = 4096
	}
	w1 := x[:n1]
	bin1 := 1 / (float64(n1) * ts)
	best, bestP := 0.0, -1.0
	for f := bin1 / 2; f < nyq; f += bin1 / 2 {
		if p := tonePower(w1, f, ts); p > bestP {
			best, bestP = f, p
		}
	}
	// Zoom stages with growing windows.
	prevBin := bin1
	for _, n := range []int{32768, len(x)} {
		if n > len(x) {
			n = len(x)
		}
		w := x[:n]
		bin := 1 / (float64(n) * ts)
		lo, hi := best-prevBin, best+prevBin
		if lo < 0 {
			lo = 0
		}
		bestP = -1
		for f := lo; f <= hi; f += bin / 2 {
			if p := tonePower(w, f, ts); p > bestP {
				best, bestP = f, p
			}
		}
		prevBin = bin
		if n == len(x) {
			break
		}
	}
	// Final polish: ternary search inside the full-length main lobe.
	lo, hi := best-prevBin/2, best+prevBin/2
	for i := 0; i < 40; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if tonePower(x, m1, ts) < tonePower(x, m2, ts) {
			lo = m1
		} else {
			hi = m2
		}
	}
	return (lo + hi) / 2
}

// tonePower returns the Goertzel power of the signal at frequency f.
func tonePower(x []float64, f, ts float64) float64 {
	w := 2 * math.Pi * f * ts
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2, s1 = s1, s0
	}
	return s1*s1 + s2*s2 - coeff*s1*s2
}
