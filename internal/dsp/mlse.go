package dsp

import (
	"math"

	"lightwave/internal/sim"
)

// This file implements the MLSE equalizer of §3.3.1 as a real Viterbi
// sequence detector over a two-tap intersymbol-interference channel — the
// discrete-time model of chromatic-dispersion-induced pulse spreading. The
// Equalizer type in equalize.go is the budget-level abstraction; MLSE here
// is the signal-level implementation that justifies its RecoveryFraction.

// MLSE is a maximum-likelihood sequence estimator for a channel
// y[n] = H0·x[n] + H1·x[n−1] + noise, with H0+H1 = 1 (energy-normalized
// dispersion split).
type MLSE struct {
	H0, H1 float64
}

// NewMLSE returns a detector for the given ISI fraction: isi of the pulse
// energy arrives one symbol late (isi = 0 is a clean channel).
func NewMLSE(isi float64) MLSE {
	if isi < 0 {
		isi = 0
	}
	if isi > 0.5 {
		isi = 0.5
	}
	return MLSE{H0: 1 - isi, H1: isi}
}

// Detect runs the Viterbi algorithm over received samples y with the four
// PAM4 signal levels (in current units) and returns the detected symbol
// indices. States are the previous symbol (4 states, 16 branches per
// step).
func (m MLSE) Detect(y []float64, levels [4]float64) []uint8 {
	n := len(y)
	if n == 0 {
		return nil
	}
	const states = 4
	inf := math.Inf(1)
	metric := [states]float64{}
	// Unknown initial symbol: all states equally likely.
	backptr := make([][states]uint8, n)

	for i := 0; i < n; i++ {
		var next [states]float64
		for s := 0; s < states; s++ {
			next[s] = inf
		}
		for prev := 0; prev < states; prev++ {
			if math.IsInf(metric[prev], 1) {
				continue
			}
			for cur := 0; cur < states; cur++ {
				expect := m.H0*levels[cur] + m.H1*levels[prev]
				d := y[i] - expect
				cand := metric[prev] + d*d
				if cand < next[cur] {
					next[cur] = cand
					backptr[i][cur] = uint8(prev)
				}
			}
		}
		metric = next
	}

	// Traceback from the best final state.
	best := 0
	for s := 1; s < states; s++ {
		if metric[s] < metric[best] {
			best = s
		}
	}
	out := make([]uint8, n)
	cur := uint8(best)
	for i := n - 1; i >= 0; i-- {
		out[i] = cur
		cur = backptr[i][cur]
	}
	return out
}

// ISIConfig extends the Monte-Carlo configuration with a dispersion
// channel.
type ISIConfig struct {
	MonteCarloConfig
	// ISI is the fraction of pulse energy arriving one symbol late.
	ISI float64
	// UseMLSE selects Viterbi detection instead of symbol-by-symbol
	// slicing.
	UseMLSE bool
}

// MonteCarloISIBER measures the pre-FEC BER of a dispersive (two-tap ISI)
// channel with either a plain slicer or the MLSE detector. It demonstrates
// the equalizer's dispersion-penalty recovery at the waveform level.
func (r Receiver) MonteCarloISIBER(rxPowerDBm float64, cfg ISIConfig) MonteCarloResult {
	if cfg.Symbols <= 0 {
		cfg.Symbols = 100000
	}
	rng := cfg.Rand
	if rng == nil {
		rng = sim.NewRand(0x151)
	}
	pAvg := dbmToWatts(rxPowerDBm)
	lv := r.levels(pAvg)
	resp := r.ResponsivityAPerW
	var cur [4]float64
	for k := range cur {
		cur[k] = resp * lv[k]
	}
	ch := NewMLSE(cfg.ISI)

	tx := make([]uint8, cfg.Symbols)
	rxs := make([]float64, cfg.Symbols)
	prev := uint8(0)
	for n := 0; n < cfg.Symbols; n++ {
		k := uint8(rng.Intn(4))
		tx[n] = k
		sig := ch.H0*cur[k] + ch.H1*cur[prev]
		sigma := r.noiseSigmaA(lv[k], pAvg, MPICondition{MPIDB: NoMPI})
		rxs[n] = sig + sigma*rng.NormFloat64()
		prev = k
	}

	var detected []uint8
	if cfg.UseMLSE {
		detected = ch.Detect(rxs, cur)
	} else {
		thr := r.thresholds(lv)
		detected = make([]uint8, cfg.Symbols)
		for n := range rxs {
			detected[n] = slice(rxs[n], thr)
		}
	}

	errs := 0
	for n := range tx {
		errs += popcount2(grayMap[tx[n]] ^ grayMap[detected[n]])
	}
	bits := 2 * cfg.Symbols
	return MonteCarloResult{BER: float64(errs) / float64(bits), BitErrors: errs, Bits: bits}
}
