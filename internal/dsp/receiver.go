// Package dsp models the digital-signal-processing engine of the paper's
// bidi WDM transceivers (§3.3.2, §4.1.2): a PAM4 intensity-modulation /
// direct-detection receiver with thermal, shot, RIN and multi-path-
// interference (MPI) beat noise, the Optical Interference Mitigation (OIM)
// notch-filter algorithm [66], an MLSE-style dispersion equalizer hook, and
// both analytic and Monte-Carlo bit-error-ratio evaluation (the "simulated"
// and "measured" curves of Fig 11).
package dsp

import (
	"errors"
	"math"

	"lightwave/internal/fec"
)

// Physical constants.
const electronCharge = 1.602176634e-19 // C

// Receiver parameterizes one PAM4 optical receiver lane.
type Receiver struct {
	// SymbolRateGBd is the line symbol rate (25 GBd for 50 Gb/s PAM4).
	SymbolRateGBd float64
	// ResponsivityAPerW is the photodiode responsivity.
	ResponsivityAPerW float64
	// ExtinctionRatioDB is the transmitter extinction ratio P3/P0.
	ExtinctionRatioDB float64
	// ThermalSigmaA is the receiver's input-referred thermal noise current
	// (standard deviation, A). Use Calibrate to fit it to a sensitivity.
	ThermalSigmaA float64
	// RINdBPerHz is the laser relative intensity noise (negative, dB/Hz).
	RINdBPerHz float64
	// PolarizationOverlap is the average field overlap between signal and
	// MPI interferer (0.5 for fully scrambled polarization).
	PolarizationOverlap float64
}

// DefaultReceiver returns a 50 Gb/s PAM4 lane receiver calibrated so that a
// clean (MPI-free) channel reaches the KP4 threshold 2e-4 at −9 dBm, the
// 200G-class sensitivity used by the paper's first bidi ML modules.
func DefaultReceiver() Receiver {
	r := Receiver{
		SymbolRateGBd:       25,
		ResponsivityAPerW:   0.8,
		ExtinctionRatioDB:   4.5,
		RINdBPerHz:          -145,
		PolarizationOverlap: 0.8,
	}
	r.Calibrate(-9, fec.KP4Threshold)
	return r
}

// MPICondition describes the interference environment of a measurement.
type MPICondition struct {
	// MPIDB is the interferer-to-signal power ratio (negative dB).
	// Use NoMPI for a clean channel.
	MPIDB float64
	// OIM enables the interference-mitigation notch filter.
	OIM bool
	// OIMSuppressionDB is how much interferer power the notch removes;
	// zero means DefaultOIMSuppressionDB.
	OIMSuppressionDB float64
}

// NoMPI is the MPIDB value for a clean channel.
const NoMPI = -200.0

// DefaultOIMSuppressionDB is the calibrated suppression of the
// reconstruct-and-subtract notch filter.
const DefaultOIMSuppressionDB = 12.0

// effectiveMPILin returns the post-mitigation interferer-to-signal ratio in
// linear units.
func (c MPICondition) effectiveMPILin() float64 {
	if c.MPIDB <= NoMPI {
		return 0
	}
	lin := math.Pow(10, c.MPIDB/10)
	if c.OIM {
		s := c.OIMSuppressionDB
		if s == 0 {
			s = DefaultOIMSuppressionDB
		}
		lin *= math.Pow(10, -s/10)
	}
	return lin
}

// levels returns the four received optical power levels (W) for an average
// received power pAvg (W), equally spaced with the configured extinction
// ratio.
func (r Receiver) levels(pAvgW float64) [4]float64 {
	er := math.Pow(10, r.ExtinctionRatioDB/10)
	p0 := 2 * pAvgW / (1 + er)
	p3 := er * p0
	d := (p3 - p0) / 3
	return [4]float64{p0, p0 + d, p0 + 2*d, p3}
}

// noiseSigmaA returns the total noise current standard deviation when the
// received symbol sits at optical power pLevel, for average signal power
// pAvg and interference condition mpi.
func (r Receiver) noiseSigmaA(pLevelW, pAvgW float64, mpi MPICondition) float64 {
	bw := 0.75 * r.SymbolRateGBd * 1e9 // receiver noise bandwidth, Hz
	th2 := r.ThermalSigmaA * r.ThermalSigmaA
	shot2 := 2 * electronCharge * r.ResponsivityAPerW * pLevelW * bw
	rinLin := math.Pow(10, r.RINdBPerHz/10)
	i := r.ResponsivityAPerW * pLevelW
	rin2 := rinLin * i * i * bw
	// MPI carrier-to-carrier beat noise: σ² = 2·η·R²·P_level·P_int
	// (signal-spontaneous-style beating of two fields on a square-law
	// detector).
	pInt := mpi.effectiveMPILin() * pAvgW
	mpi2 := 2 * r.PolarizationOverlap * r.ResponsivityAPerW * r.ResponsivityAPerW * pLevelW * pInt
	return math.Sqrt(th2 + shot2 + rin2 + mpi2)
}

// BER returns the analytic pre-FEC bit error ratio of a Gray-coded PAM4
// lane at the given received average power under the given MPI condition
// (the dashed/solid model curves of Fig 11a).
func (r Receiver) BER(rxPowerDBm float64, mpi MPICondition) float64 {
	pAvg := dbmToWatts(rxPowerDBm)
	lv := r.levels(pAvg)
	d := (lv[3] - lv[0]) / 3 // level spacing in optical power
	half := r.ResponsivityAPerW * d / 2
	ser := 0.0
	for k := 0; k < 4; k++ {
		sigma := r.noiseSigmaA(lv[k], pAvg, mpi)
		q := fec.QFunc(half / sigma)
		// Inner levels can err both up and down.
		if k == 0 || k == 3 {
			ser += q
		} else {
			ser += 2 * q
		}
	}
	ser /= 4
	// Gray coding: one bit flips per adjacent-level symbol error, 2 bits
	// per symbol.
	return ser / 2
}

// Sensitivity returns the received power (dBm) at which the lane reaches
// targetBER under mpi, found by bisection. It returns an error if the
// target is unreachable within a sane power range.
func (r Receiver) Sensitivity(targetBER float64, mpi MPICondition) (float64, error) {
	lo, hi := -30.0, 10.0
	if r.BER(hi, mpi) > targetBER {
		return 0, errors.New("dsp: target BER unreachable (noise floor)")
	}
	if r.BER(lo, mpi) < targetBER {
		return lo, nil
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if r.BER(mid, mpi) > targetBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Calibrate fits ThermalSigmaA so a clean channel reaches targetBER at
// sensitivityDBm.
func (r *Receiver) Calibrate(sensitivityDBm, targetBER float64) {
	lo, hi := 1e-9, 1e-3
	clean := MPICondition{MPIDB: NoMPI}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		r.ThermalSigmaA = mid
		if r.BER(sensitivityDBm, clean) > targetBER {
			hi = mid
		} else {
			lo = mid
		}
	}
	r.ThermalSigmaA = math.Sqrt(lo * hi)
}

// PostFECBER runs the analytic receiver through a FEC transfer chain.
func (r Receiver) PostFECBER(rxPowerDBm float64, mpi MPICondition, stack fec.Concatenated) float64 {
	return stack.Transfer(r.BER(rxPowerDBm, mpi))
}

func dbmToWatts(dbm float64) float64 {
	return 1e-3 * math.Pow(10, dbm/10)
}

func wattsToDBm(w float64) float64 {
	return 10 * math.Log10(w/1e-3)
}
