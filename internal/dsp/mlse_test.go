package dsp

import (
	"testing"

	"lightwave/internal/sim"
)

func TestNewMLSEClamps(t *testing.T) {
	if m := NewMLSE(-0.1); m.H1 != 0 {
		t.Fatalf("H1 = %v", m.H1)
	}
	if m := NewMLSE(0.9); m.H1 != 0.5 {
		t.Fatalf("H1 = %v", m.H1)
	}
	m := NewMLSE(0.2)
	if m.H0+m.H1 != 1 {
		t.Fatal("taps not normalized")
	}
}

func TestMLSEDetectNoiselessPerfect(t *testing.T) {
	// On a noiseless ISI channel the Viterbi detector must be exact.
	m := NewMLSE(0.3)
	levels := [4]float64{1, 2, 3, 4}
	rng := sim.NewRand(1)
	n := 2000
	tx := make([]uint8, n)
	y := make([]float64, n)
	prev := uint8(0)
	for i := 0; i < n; i++ {
		k := uint8(rng.Intn(4))
		tx[i] = k
		y[i] = m.H0*levels[k] + m.H1*levels[prev]
		prev = k
	}
	got := m.Detect(y, levels)
	for i := range tx {
		if got[i] != tx[i] {
			t.Fatalf("symbol %d detected %d, want %d", i, got[i], tx[i])
		}
	}
}

func TestMLSEDetectEmpty(t *testing.T) {
	if NewMLSE(0.2).Detect(nil, [4]float64{1, 2, 3, 4}) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestISIDegradesSlicer(t *testing.T) {
	r := DefaultReceiver()
	clean := r.MonteCarloISIBER(-10, ISIConfig{
		MonteCarloConfig: MonteCarloConfig{Symbols: 150000, Rand: sim.NewRand(2)},
		ISI:              0,
	})
	dispersed := r.MonteCarloISIBER(-10, ISIConfig{
		MonteCarloConfig: MonteCarloConfig{Symbols: 150000, Rand: sim.NewRand(2)},
		ISI:              0.2,
	})
	if dispersed.BER <= clean.BER {
		t.Fatalf("ISI did not degrade slicer: %.3g vs %.3g", clean.BER, dispersed.BER)
	}
}

func TestMLSERecoversISIPenalty(t *testing.T) {
	// §3.3.1: MLSE-based nonlinear equalizers mitigate the dispersion
	// impairment. At 20% ISI the Viterbi detector must recover most of the
	// slicer's loss.
	r := DefaultReceiver()
	mk := func(useMLSE bool) float64 {
		return r.MonteCarloISIBER(-9.5, ISIConfig{
			MonteCarloConfig: MonteCarloConfig{Symbols: 200000, Rand: sim.NewRand(3)},
			ISI:              0.2,
			UseMLSE:          useMLSE,
		}).BER
	}
	slicer := mk(false)
	mlse := mk(true)
	if slicer < 1e-4 {
		t.Fatalf("test setup: slicer BER %.3g too clean to compare", slicer)
	}
	if mlse >= slicer/3 {
		t.Fatalf("MLSE gain too small: slicer %.3g, MLSE %.3g", slicer, mlse)
	}
}

func TestMLSEMatchesSlicerOnCleanChannel(t *testing.T) {
	// With no ISI the sequence detector must not be (much) worse than the
	// slicer.
	r := DefaultReceiver()
	mk := func(useMLSE bool) float64 {
		return r.MonteCarloISIBER(-11, ISIConfig{
			MonteCarloConfig: MonteCarloConfig{Symbols: 100000, Rand: sim.NewRand(4)},
			ISI:              0,
			UseMLSE:          useMLSE,
		}).BER
	}
	slicer := mk(false)
	mlse := mk(true)
	if mlse > slicer*1.1 {
		t.Fatalf("MLSE worse than slicer on clean channel: %.3g vs %.3g", mlse, slicer)
	}
}

func TestMLSEJustifiesEqualizerRecoveryFraction(t *testing.T) {
	// The budget-level Equalizer claims ~70% penalty recovery; the
	// waveform-level MLSE should recover at least that share of the BER
	// degradation (in log-BER terms) at a realistic ISI level.
	r := DefaultReceiver()
	run := func(isi float64, mlse bool) float64 {
		return r.MonteCarloISIBER(-9.5, ISIConfig{
			MonteCarloConfig: MonteCarloConfig{Symbols: 200000, Rand: sim.NewRand(5)},
			ISI:              isi, UseMLSE: mlse,
		}).BER
	}
	clean := run(0, false)
	impaired := run(0.15, false)
	equalized := run(0.15, true)
	if !(clean < equalized && equalized < impaired) {
		t.Fatalf("ordering broken: clean %.3g, equalized %.3g, impaired %.3g",
			clean, equalized, impaired)
	}
}
