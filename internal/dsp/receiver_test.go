package dsp

import (
	"math"
	"testing"

	"lightwave/internal/fec"
)

func TestCalibrationHitsSensitivity(t *testing.T) {
	r := DefaultReceiver()
	clean := MPICondition{MPIDB: NoMPI}
	ber := r.BER(-9, clean)
	if math.Abs(math.Log10(ber)-math.Log10(fec.KP4Threshold)) > 0.05 {
		t.Fatalf("BER at −9 dBm = %.3g, want ≈ 2e-4", ber)
	}
}

func TestBERMonotoneInPower(t *testing.T) {
	r := DefaultReceiver()
	clean := MPICondition{MPIDB: NoMPI}
	prev := 1.0
	for p := -14.0; p <= -2; p += 0.5 {
		b := r.BER(p, clean)
		if b >= prev {
			t.Fatalf("BER not decreasing at %v dBm: %g >= %g", p, b, prev)
		}
		prev = b
	}
}

func TestMPIDegradesBER(t *testing.T) {
	r := DefaultReceiver()
	clean := r.BER(-9, MPICondition{MPIDB: NoMPI})
	for _, mpi := range []float64{-35, -32, -29} {
		b := r.BER(-9, MPICondition{MPIDB: mpi})
		if b <= clean {
			t.Fatalf("MPI %v dB did not degrade BER", mpi)
		}
	}
	// Stronger MPI must be worse.
	if r.BER(-9, MPICondition{MPIDB: -29}) <= r.BER(-9, MPICondition{MPIDB: -35}) {
		t.Fatal("BER not monotone in MPI level")
	}
}

func TestOIMRecoversSensitivity(t *testing.T) {
	// Fig 11a: at MPI −32 dB and the KP4 threshold, OIM improves receiver
	// sensitivity by more than 1 dB.
	r := DefaultReceiver()
	without, err := r.Sensitivity(fec.KP4Threshold, MPICondition{MPIDB: -32})
	if err != nil {
		t.Fatal(err)
	}
	with, err := r.Sensitivity(fec.KP4Threshold, MPICondition{MPIDB: -32, OIM: true})
	if err != nil {
		t.Fatal(err)
	}
	gain := without - with
	if gain < 1.0 {
		t.Fatalf("OIM sensitivity gain = %.2f dB at MPI −32 dB, paper says >1 dB", gain)
	}
	if gain > 4.0 {
		t.Fatalf("OIM gain %.2f dB implausibly large", gain)
	}
}

func TestOIMNoEffectOnCleanChannel(t *testing.T) {
	r := DefaultReceiver()
	a := r.BER(-9, MPICondition{MPIDB: NoMPI})
	b := r.BER(-9, MPICondition{MPIDB: NoMPI, OIM: true})
	if a != b {
		t.Fatal("OIM changed a clean channel")
	}
}

func TestSensitivityOrdering(t *testing.T) {
	// Sensitivity (power needed) must worsen as MPI grows, and OIM must
	// sit between clean and unmitigated.
	r := DefaultReceiver()
	clean, _ := r.Sensitivity(fec.KP4Threshold, MPICondition{MPIDB: NoMPI})
	oim, _ := r.Sensitivity(fec.KP4Threshold, MPICondition{MPIDB: -32, OIM: true})
	raw, _ := r.Sensitivity(fec.KP4Threshold, MPICondition{MPIDB: -32})
	if !(clean < oim && oim < raw) {
		t.Fatalf("sensitivity ordering broken: clean %.2f, oim %.2f, raw %.2f", clean, oim, raw)
	}
}

func TestSensitivityUnreachable(t *testing.T) {
	r := DefaultReceiver()
	// At catastrophic MPI the KP4 threshold may be unreachable — the
	// error-floor behaviour the OIM algorithm exists to fix.
	if _, err := r.Sensitivity(1e-15, MPICondition{MPIDB: -15}); err == nil {
		t.Fatal("expected unreachable target")
	}
}

func TestBERErrorFloorUnderSevereMPI(t *testing.T) {
	// Under severe MPI, more power does not help much: the beat noise
	// scales with signal power (multiplicative impairment).
	r := DefaultReceiver()
	sev := MPICondition{MPIDB: -20}
	b1 := r.BER(-6, sev)
	b2 := r.BER(0, sev)
	if b2 < b1/50 {
		t.Fatalf("severe MPI should floor the BER: %.3g -> %.3g over 6 dB", b1, b2)
	}
}

func TestPostFECBER(t *testing.T) {
	r := DefaultReceiver()
	stack := fec.NewConcatenated()
	// 1.5 dB below raw sensitivity the pre-FEC BER is worse than 2e-4, but
	// the concatenated stack must still clean it (Fig 12's point).
	pre := r.BER(-10.5, MPICondition{MPIDB: NoMPI})
	if pre <= fec.KP4Threshold {
		t.Fatalf("test setup: pre-FEC BER %.3g not above threshold", pre)
	}
	post := r.PostFECBER(-10.5, MPICondition{MPIDB: NoMPI}, stack)
	if post > 1e-12 {
		t.Fatalf("post-FEC BER = %.3g, want clean", post)
	}
}

func TestLevelsExtinctionRatio(t *testing.T) {
	r := DefaultReceiver()
	lv := r.levels(1e-4)
	er := math.Pow(10, r.ExtinctionRatioDB/10)
	if math.Abs(lv[3]/lv[0]-er) > 1e-9 {
		t.Fatalf("P3/P0 = %v, want %v", lv[3]/lv[0], er)
	}
	// Equal spacing.
	d1, d2, d3 := lv[1]-lv[0], lv[2]-lv[1], lv[3]-lv[2]
	if math.Abs(d1-d2) > 1e-15 || math.Abs(d2-d3) > 1e-15 {
		t.Fatal("levels not equally spaced")
	}
	// Average preserved.
	if avg := (lv[0] + lv[1] + lv[2] + lv[3]) / 4; math.Abs(avg-1e-4) > 1e-12 {
		t.Fatalf("average = %v", avg)
	}
}

func TestDbmConversions(t *testing.T) {
	if w := dbmToWatts(0); math.Abs(w-1e-3) > 1e-12 {
		t.Fatalf("0 dBm = %v W", w)
	}
	if d := wattsToDBm(1e-3); math.Abs(d) > 1e-9 {
		t.Fatalf("1 mW = %v dBm", d)
	}
	for _, dbm := range []float64{-30, -9, 3} {
		if got := wattsToDBm(dbmToWatts(dbm)); math.Abs(got-dbm) > 1e-9 {
			t.Fatalf("round trip %v -> %v", dbm, got)
		}
	}
}

func TestOIMSuppressionConfigurable(t *testing.T) {
	r := DefaultReceiver()
	weak := r.BER(-9, MPICondition{MPIDB: -30, OIM: true, OIMSuppressionDB: 3})
	strong := r.BER(-9, MPICondition{MPIDB: -30, OIM: true, OIMSuppressionDB: 20})
	if strong >= weak {
		t.Fatal("stronger suppression should give lower BER")
	}
}
