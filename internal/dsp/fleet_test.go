package dsp

import (
	"testing"

	"lightwave/internal/par"
)

func fleetCfg() FleetBERConfig {
	cfg := DefaultFleetBERConfig()
	cfg.SensitivityDBm = -12 // stand-in sensitivity; tests avoid the fec dep
	return cfg
}

func TestFleetBERDeterministicAcrossWorkerCounts(t *testing.T) {
	rx := DefaultReceiver()
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	base := rx.FleetBER(fleetCfg())
	for _, w := range []int{2, 4, 8} {
		par.SetWorkers(w)
		got := rx.FleetBER(fleetCfg())
		if got.Worst != base.Worst {
			t.Fatalf("workers=%d: worst %g != %g", w, got.Worst, base.Worst)
		}
		for p := range got.BERs {
			if got.BERs[p] != base.BERs[p] {
				t.Fatalf("workers=%d: port %d BER differs", w, p)
			}
		}
	}
}

func TestFleetBERSeedChangesFleet(t *testing.T) {
	rx := DefaultReceiver()
	a := rx.FleetBER(fleetCfg())
	cfg := fleetCfg()
	cfg.Seed = 99
	b := rx.FleetBER(cfg)
	same := 0
	for p := range a.BERs {
		if a.BERs[p] == b.BERs[p] {
			same++
		}
	}
	if same == len(a.BERs) {
		t.Fatal("different seeds produced an identical fleet")
	}
}

func TestFleetBERMarginFloorRespected(t *testing.T) {
	rx := DefaultReceiver()
	cfg := fleetCfg()
	cfg.Ports = 512
	res := rx.FleetBER(cfg)
	if len(res.BERs) != 512 {
		t.Fatalf("got %d ports", len(res.BERs))
	}
	// Every port runs at or above the floor margin, so no port can be worse
	// than a port pinned at the floor with the worst plausible MPI.
	floorBER := rx.BER(cfg.SensitivityDBm+cfg.MarginFloorDB, MPICondition{MPIDB: cfg.MPIMeanDB + 6*cfg.MPISigmaDB, OIM: cfg.OIM})
	if res.Worst > floorBER {
		t.Fatalf("worst %g exceeds floor-margin bound %g", res.Worst, floorBER)
	}
	if res.OverThreshold(res.Worst) != 0 || res.OverThreshold(0) == 0 {
		t.Fatal("OverThreshold accounting inconsistent")
	}
}
