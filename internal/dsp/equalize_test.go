package dsp

import "testing"

func TestEqualizerRecoversPenalty(t *testing.T) {
	e := DefaultEqualizer()
	raw := 2.0
	res := e.ResidualPenaltyDB(raw)
	if res >= raw {
		t.Fatalf("equalizer did not help: %v -> %v", raw, res)
	}
	if res <= 0 {
		t.Fatalf("residual %v not positive", res)
	}
}

func TestEqualizerNeverWorsens(t *testing.T) {
	e := Equalizer{Taps: 1, RecoveryFraction: 0.1, NoiseEnhancementDB: 5}
	raw := 0.5
	if res := e.ResidualPenaltyDB(raw); res > raw {
		t.Fatalf("residual %v worse than raw %v", res, raw)
	}
}

func TestEqualizerZeroPenalty(t *testing.T) {
	e := DefaultEqualizer()
	if e.ResidualPenaltyDB(0) != 0 {
		t.Fatal("zero penalty should stay zero")
	}
	if e.ResidualPenaltyDB(-1) != 0 {
		t.Fatal("negative penalty should clamp to zero")
	}
}

func TestEqualizerStates(t *testing.T) {
	if s := DefaultEqualizer().States(); s != 16 {
		t.Fatalf("states = %d, want 16 for 2-tap PAM4", s)
	}
	if s := (Equalizer{Taps: 0}).States(); s != 1 {
		t.Fatalf("states = %d", s)
	}
}
