package dsp

import (
	"math"
	"testing"

	"lightwave/internal/par"
	"lightwave/internal/sim"
)

func TestMonteCarloMatchesAnalyticClean(t *testing.T) {
	// Fig 11b: "measured data ... matches well with the modeling results".
	r := DefaultReceiver()
	clean := MPICondition{MPIDB: NoMPI}
	// Pick a power where BER is high enough to measure quickly (~1e-2..1e-3).
	p := -12.0
	want := r.BER(p, clean)
	got := r.MonteCarloBER(p, clean, MonteCarloConfig{Symbols: 400000, Rand: sim.NewRand(1)})
	ratio := got.BER / want
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("MC BER %.3g vs analytic %.3g (ratio %.2f)", got.BER, want, ratio)
	}
}

func TestMonteCarloMatchesAnalyticWithMPI(t *testing.T) {
	r := DefaultReceiver()
	mpi := MPICondition{MPIDB: -29}
	p := -11.0
	want := r.BER(p, mpi)
	got := r.MonteCarloBER(p, mpi, MonteCarloConfig{Symbols: 400000, Rand: sim.NewRand(2)})
	ratio := got.BER / want
	// The analytic model treats the sinusoidal beat as Gaussian noise; the
	// waveform result is close but not identical.
	if ratio < 0.4 || ratio > 2.2 {
		t.Fatalf("MC BER %.3g vs analytic %.3g (ratio %.2f)", got.BER, want, ratio)
	}
}

func TestMonteCarloOIMImprovesBER(t *testing.T) {
	r := DefaultReceiver()
	p := -10.0
	cfg := MonteCarloConfig{Symbols: 300000, Rand: sim.NewRand(3)}
	raw := r.MonteCarloBER(p, MPICondition{MPIDB: -27}, cfg)
	cfg2 := MonteCarloConfig{Symbols: 300000, Rand: sim.NewRand(3)}
	mit := r.MonteCarloBER(p, MPICondition{MPIDB: -27, OIM: true}, cfg2)
	if mit.BER >= raw.BER {
		t.Fatalf("OIM did not improve measured BER: %.3g -> %.3g", raw.BER, mit.BER)
	}
	if raw.BER == 0 {
		t.Fatal("test setup: raw channel error-free, cannot measure improvement")
	}
}

func TestOIMFrequencyEstimation(t *testing.T) {
	// The notch filter must lock onto the injected beat frequency in the
	// digital domain (§4.1.2).
	r := DefaultReceiver()
	inject := 3.1e9
	res := r.MonteCarloBER(-9, MPICondition{MPIDB: -25, OIM: true},
		MonteCarloConfig{Symbols: 200000, MPIOffsetHz: inject, Rand: sim.NewRand(4)})
	if res.EstimatedOffsetHz == 0 {
		t.Fatal("OIM found no tone")
	}
	relErr := math.Abs(res.EstimatedOffsetHz-inject) / inject
	if relErr > 0.02 {
		t.Fatalf("estimated %.3g Hz, injected %.3g Hz (%.1f%% off)",
			res.EstimatedOffsetHz, inject, 100*relErr)
	}
}

func TestMonteCarloDeterministicWithSeed(t *testing.T) {
	r := DefaultReceiver()
	a := r.MonteCarloBER(-11, MPICondition{MPIDB: -30}, MonteCarloConfig{Symbols: 50000, Rand: sim.NewRand(9)})
	b := r.MonteCarloBER(-11, MPICondition{MPIDB: -30}, MonteCarloConfig{Symbols: 50000, Rand: sim.NewRand(9)})
	if a.BitErrors != b.BitErrors {
		t.Fatal("same seed, different result")
	}
}

func TestMonteCarloDefaults(t *testing.T) {
	r := DefaultReceiver()
	res := r.MonteCarloBER(-11, MPICondition{MPIDB: NoMPI}, MonteCarloConfig{})
	if res.Bits != 200000 {
		t.Fatalf("default bits = %d", res.Bits)
	}
}

func TestGrayMappingAdjacentLevelsDifferInOneBit(t *testing.T) {
	for k := 0; k < 3; k++ {
		if popcount2(grayMap[k]^grayMap[k+1]) != 1 {
			t.Fatalf("levels %d and %d differ in %d bits", k, k+1, popcount2(grayMap[k]^grayMap[k+1]))
		}
	}
}

func TestSlicer(t *testing.T) {
	thr := [3]float64{1, 2, 3}
	cases := []struct {
		v    float64
		want uint8
	}{{0.5, 0}, {1.5, 1}, {2.5, 2}, {3.5, 3}}
	for _, c := range cases {
		if got := slice(c.v, thr); got != c.want {
			t.Errorf("slice(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestTonePowerPeaksAtToneFrequency(t *testing.T) {
	ts := 1.0 / 50e9
	f0 := 4e9
	x := make([]float64, 20000)
	for n := range x {
		x[n] = math.Cos(2 * math.Pi * f0 * float64(n) * ts)
	}
	at := tonePower(x, f0, ts)
	off := tonePower(x, f0*1.7, ts)
	if at < 100*off {
		t.Fatalf("tone power at f0 (%g) not dominant over off-tone (%g)", at, off)
	}
}

func TestMonteCarloDeterministicAcrossWorkerCounts(t *testing.T) {
	// The parallel determinism contract: for a fixed seed the sharded
	// waveform simulation is bit-identical at any worker count.
	r := DefaultReceiver()
	run := func() MonteCarloResult {
		return r.MonteCarloBER(-10, MPICondition{MPIDB: -27, OIM: true},
			MonteCarloConfig{Symbols: 60000, Rand: sim.NewRand(123)})
	}
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	base := run()
	for _, w := range []int{2, 4, 8} {
		par.SetWorkers(w)
		got := run()
		if got.BitErrors != base.BitErrors || got.BER != base.BER ||
			got.EstimatedOffsetHz != base.EstimatedOffsetHz {
			t.Fatalf("workers=%d: %+v != %+v", w, got, base)
		}
	}
}
