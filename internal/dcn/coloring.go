package dcn

import (
	"errors"
	"fmt"
	"sort"

	"lightwave/internal/sim"
)

// Edge coloring of the trunk multigraph: every trunk must be assigned to a
// switch (color) such that no block appears twice on one switch (each block
// has one strand per OCS). Greedy assignment alone can wedge, so conflicts
// are repaired with Kempe-chain recoloring — the constructive step behind
// Shannon's multigraph edge-coloring bound. An existing (partial)
// assignment can be passed in so reprogramming keeps most trunks where they
// already are.

// edgeAssignment maps expanded trunk units to colors.
type edgeAssignment struct {
	blocks int
	colors int
	// ends[e] = the two blocks of edge e.
	ends [][2]int
	// color[e] = assigned color, -1 if unassigned.
	color []int
	// occ[v][c] = edge occupying color c at block v, -1 if free.
	occ [][]int
}

// ErrColoring is returned when the trunk set cannot be packed into the
// available switches.
var ErrColoring = errors.New("dcn: trunk set does not fit the switch count")

func newEdgeAssignment(blocks, colors int) *edgeAssignment {
	a := &edgeAssignment{blocks: blocks, colors: colors}
	a.occ = make([][]int, blocks)
	for v := range a.occ {
		a.occ[v] = make([]int, colors)
		for c := range a.occ[v] {
			a.occ[v][c] = -1
		}
	}
	return a
}

// addEdge registers a trunk unit, optionally pre-colored (existing
// hardware state). Pre-colored conflicts are programming errors.
func (a *edgeAssignment) addEdge(u, v, color int) (int, error) {
	e := len(a.ends)
	a.ends = append(a.ends, [2]int{u, v})
	a.color = append(a.color, -1)
	if color >= 0 {
		if a.occ[u][color] != -1 || a.occ[v][color] != -1 {
			return 0, fmt.Errorf("dcn: pre-colored edge %d-%d conflicts on color %d", u, v, color)
		}
		a.color[e] = color
		a.occ[u][color] = e
		a.occ[v][color] = e
	}
	return e, nil
}

func (a *edgeAssignment) freeColorAt(v int) int {
	for c := 0; c < a.colors; c++ {
		if a.occ[v][c] == -1 {
			return c
		}
	}
	return -1
}

func (a *edgeAssignment) freeAtBoth(u, v int) int {
	for c := 0; c < a.colors; c++ {
		if a.occ[u][c] == -1 && a.occ[v][c] == -1 {
			return c
		}
	}
	return -1
}

func (a *edgeAssignment) setColor(e, c int) {
	u, v := a.ends[e][0], a.ends[e][1]
	if old := a.color[e]; old >= 0 {
		a.occ[u][old] = -1
		a.occ[v][old] = -1
	}
	a.color[e] = c
	a.occ[u][c] = e
	a.occ[v][c] = e
}

// other returns the endpoint of e that is not v.
func (a *edgeAssignment) other(e, v int) int {
	if a.ends[e][0] == v {
		return a.ends[e][1]
	}
	return a.ends[e][0]
}

// chainFrom collects the alternating x/y chain starting at block v's
// x-edge. In a proper partial coloring every block has at most one edge of
// each color, so the x/y subgraph is a disjoint union of paths and cycles:
// the walk either terminates (path) or returns to v (cycle).
func (a *edgeAssignment) chainFrom(v, x, y int) (edges []int, cyclic bool) {
	cur, want := v, x
	for {
		e := a.occ[cur][want]
		if e == -1 {
			return edges, false
		}
		edges = append(edges, e)
		cur = a.other(e, cur)
		if want == x {
			want = y
		} else {
			want = x
		}
		if cur == v && want == x {
			return edges, true
		}
	}
}

// kempeFree makes color x free at block v by flipping the alternating x/y
// chain rooted at v. It reports success; a closed cycle through v cannot be
// flipped usefully.
func (a *edgeAssignment) kempeFree(v, x, y int) bool {
	edges, cyclic := a.chainFrom(v, x, y)
	if cyclic || len(edges) == 0 {
		return len(edges) == 0 // x already free at v
	}
	// Detach the whole chain, then reattach with flipped colors.
	for _, e := range edges {
		c := a.color[e]
		a.occ[a.ends[e][0]][c] = -1
		a.occ[a.ends[e][1]][c] = -1
	}
	for _, e := range edges {
		c := x
		if a.color[e] == x {
			c = y
		}
		a.color[e] = c
		a.occ[a.ends[e][0]][c] = e
		a.occ[a.ends[e][1]][c] = e
	}
	return a.occ[v][x] == -1
}

// colorAll assigns colors to every unassigned edge, retrying with
// different edge orders when the Kempe-chain heuristic wedges near the
// chromatic-index boundary.
func (a *edgeAssignment) colorAll() error {
	colorSnap := append([]int(nil), a.color...)
	occSnap := make([][]int, len(a.occ))
	for v := range a.occ {
		occSnap[v] = append([]int(nil), a.occ[v]...)
	}
	rng := sim.NewRand(0xC0109)
	var err error
	for attempt := 0; attempt < 12; attempt++ {
		if attempt > 0 {
			copy(a.color, colorSnap)
			for v := range a.occ {
				copy(a.occ[v], occSnap[v])
			}
		}
		if err = a.colorOnce(rng, attempt); err == nil {
			return nil
		}
	}
	return err
}

// colorOnce is one coloring attempt: hardest (highest degree-sum) edges
// first on attempt 0, pseudo-random orders afterwards.
func (a *edgeAssignment) colorOnce(rng *sim.Rand, attempt int) error {
	deg := make([]int, a.blocks)
	for _, ends := range a.ends {
		deg[ends[0]]++
		deg[ends[1]]++
	}
	var todo []int
	for e, c := range a.color {
		if c == -1 {
			todo = append(todo, e)
		}
	}
	sort.SliceStable(todo, func(i, j int) bool {
		a1 := deg[a.ends[todo[i]][0]] + deg[a.ends[todo[i]][1]]
		a2 := deg[a.ends[todo[j]][0]] + deg[a.ends[todo[j]][1]]
		return a1 > a2
	})
	if attempt > 0 {
		rng.Shuffle(len(todo), func(i, j int) { todo[i], todo[j] = todo[j], todo[i] })
	}
	for _, e := range todo {
		u, v := a.ends[e][0], a.ends[e][1]
		if c := a.freeAtBoth(u, v); c >= 0 {
			a.setColor(e, c)
			continue
		}
		cu := a.freeColorAt(u)
		cv := a.freeColorAt(v)
		if cu < 0 || cv < 0 {
			return fmt.Errorf("%w: block degree exceeds switches at edge %d-%d", ErrColoring, u, v)
		}
		// Free color cu at v by flipping the cu/cv chain from v.
		if a.kempeFree(v, cu, cv) && a.occ[u][cu] == -1 {
			a.setColor(e, cu)
			continue
		}
		// Symmetric attempt from u.
		if a.kempeFree(u, cv, cu) && a.occ[v][cv] == -1 {
			a.setColor(e, cv)
			continue
		}
		// Last resort: scan all color pairs for a repairable chain.
		if c := a.repairAnyPair(u, v); c >= 0 {
			a.setColor(e, c)
			continue
		}
		return fmt.Errorf("%w: edge %d-%d uncolorable", ErrColoring, u, v)
	}
	return nil
}

// repairAnyPair tries every (free-at-u, free-at-v) color pair with Kempe
// repair and returns a color now free at both, or -1.
func (a *edgeAssignment) repairAnyPair(u, v int) int {
	for cu := 0; cu < a.colors; cu++ {
		if a.occ[u][cu] != -1 {
			continue
		}
		for cv := 0; cv < a.colors; cv++ {
			if cv == cu || a.occ[v][cv] != -1 {
				continue
			}
			if a.kempeFree(v, cu, cv) && a.occ[u][cu] == -1 && a.occ[v][cu] == -1 {
				return cu
			}
		}
	}
	return -1
}
