package dcn

import (
	"lightwave/internal/par"
	"lightwave/internal/sim"
)

// LoadPoint is one offered-load sweep point of the flow-level simulator.
type LoadPoint struct {
	// Load is the fraction of total fabric capacity offered.
	Load   float64
	Result SimResult
}

// LoadSweep runs the flow-level simulator at each offered-load fraction,
// scaling the demand shape to that share of the fabric's directed
// capacity (t.Blocks × uplinks trunks). Sweep points run in parallel on
// the worker pool while each point's event loop stays sequential; point i
// uses seed substream (cfg.Seed, i), so the sweep is deterministic at any
// worker count and inserting a point never perturbs the others' arrival
// processes. The per-point results are additionally pinned bit-for-bit by
// the golden contract of golden_test.go (DESIGN.md §9).
func LoadSweep(t *Topology, uplinks int, demand [][]float64, w Workload, cfg SimConfig, loads []float64) ([]LoadPoint, error) {
	type out struct {
		res SimResult
		err error
	}
	outs := par.Sweep("dcn_load_sweep", loads, func(i int, load float64) out {
		wp := w
		wp.Demand = scaleDemand(demand, t.Blocks, uplinks, cfg.TrunkBps, load)
		cp := cfg
		cp.Seed = sim.SubstreamSeed(cfg.Seed, uint64(i))
		r, err := Simulate(t, wp, cp)
		return out{res: r, err: err}
	})
	pts := make([]LoadPoint, len(loads))
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		pts[i] = LoadPoint{Load: loads[i], Result: o.res}
	}
	return pts, nil
}
