package dcn

import (
	"errors"
	"fmt"

	"lightwave/internal/optics"
)

// Heterogeneous fabrics (§2.1 "Rapid Technology Refresh"): the OCS is data-
// rate agnostic, so aggregation blocks of different transceiver generations
// share one fabric, each trunk running at the rate its two endpoints
// negotiate. New-generation blocks join at full speed among themselves and
// interop with legacy blocks at the legacy rate — no forklift upgrade, no
// flag-day.

// HeteroFabric pairs a topology with per-block transceiver generations.
type HeteroFabric struct {
	Topology *Topology
	// Gens[i] is block i's transceiver generation.
	Gens []optics.Generation
}

// ErrGenCount is returned when generations don't match the block count.
var ErrGenCount = errors.New("dcn: generation list does not match blocks")

// NewHeteroFabric validates the pairing.
func NewHeteroFabric(t *Topology, gens []optics.Generation) (*HeteroFabric, error) {
	if len(gens) != t.Blocks {
		return nil, fmt.Errorf("%w: %d gens for %d blocks", ErrGenCount, len(gens), t.Blocks)
	}
	return &HeteroFabric{Topology: t, Gens: gens}, nil
}

// TrunkRateBps returns the negotiated per-trunk rate between blocks i and
// j in bytes/s: the highest common (lane rate, modulation) mode across the
// module's CWDM4 lanes.
func (h *HeteroFabric) TrunkRateBps(i, j int) (float64, error) {
	a := optics.NewTransceiver(h.Gens[i])
	b := optics.NewTransceiver(h.Gens[j])
	mode, err := a.Negotiate(b)
	if err != nil {
		return 0, err
	}
	lanes := h.Gens[i].Grid.Lanes()
	if l := h.Gens[j].Grid.Lanes(); l < lanes {
		lanes = l
	}
	return mode.LaneRateGbps * float64(lanes) * 1e9 / 8, nil
}

// Capacity returns the total directed fabric capacity in bytes/s.
func (h *HeteroFabric) Capacity() (float64, error) {
	total := 0.0
	for i := 0; i < h.Topology.Blocks; i++ {
		for j := 0; j < h.Topology.Blocks; j++ {
			if h.Topology.Links[i][j] == 0 {
				continue
			}
			r, err := h.TrunkRateBps(i, j)
			if err != nil {
				return 0, err
			}
			total += float64(h.Topology.Links[i][j]) * r
		}
	}
	return total, nil
}

// AchievedThroughput runs the fluid solver with negotiated per-trunk rates.
// Trunk pairs that cannot negotiate carry zero.
func (h *HeteroFabric) AchievedThroughput(demand [][]float64) float64 {
	return AchievedThroughputRates(h.Topology, demand, func(i, j int) float64 {
		r, err := h.TrunkRateBps(i, j)
		if err != nil {
			return 0
		}
		return r
	})
}

// RefreshStep is one point of a technology-refresh trajectory.
type RefreshStep struct {
	// Upgraded is the number of blocks running the new generation.
	Upgraded int
	// CapacityBps is the fabric's total directed capacity.
	CapacityBps float64
	// AchievedBps is the delivered throughput for the reference demand.
	AchievedBps float64
}

// TechRefresh simulates an in-service technology refresh: blocks are
// upgraded one at a time from oldGen to newGen on a fixed uniform mesh, and
// the capacity/throughput trajectory is recorded. The fabric never goes
// down and interop holds at every step — the OCS and the wavelength-grid
// compatibility make the refresh incremental (§2.1).
func TechRefresh(blocks, uplinks int, oldGen, newGen optics.Generation, demandBps float64) ([]RefreshStep, error) {
	top, err := UniformMesh(blocks, uplinks)
	if err != nil {
		return nil, err
	}
	demand := UniformDemand(blocks, demandBps)
	var steps []RefreshStep
	for upgraded := 0; upgraded <= blocks; upgraded++ {
		gens := make([]optics.Generation, blocks)
		for i := range gens {
			if i < upgraded {
				gens[i] = newGen
			} else {
				gens[i] = oldGen
			}
		}
		h, err := NewHeteroFabric(top, gens)
		if err != nil {
			return nil, err
		}
		capacity, err := h.Capacity()
		if err != nil {
			return nil, err
		}
		steps = append(steps, RefreshStep{
			Upgraded:    upgraded,
			CapacityBps: capacity,
			AchievedBps: h.AchievedThroughput(demand),
		})
	}
	return steps, nil
}
