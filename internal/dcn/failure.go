package dcn

import (
	"errors"
	"fmt"
)

// OCS failure handling for the DCN fabric: when a switch dies, every trunk
// it carried disappears. The control plane re-runs Program against the
// surviving switches, which re-places the lost trunks (capacity
// permitting) while leaving all surviving circuits untouched — the fabric
// heals around the failure instead of taking the topology down.

// ErrSwitchIndex is returned for out-of-range switch references.
var ErrSwitchIndex = errors.New("dcn: switch index out of range")

// FailSwitch takes switch idx out of service by failing both of its power
// supplies (dropping all circuits, since MEMS mirrors are not latching)
// and returns the number of trunks lost.
func (f *Fabric) FailSwitch(idx int) (lostTrunks int, err error) {
	if idx < 0 || idx >= len(f.Switches) {
		return 0, fmt.Errorf("%w: %d", ErrSwitchIndex, idx)
	}
	sw := f.Switches[idx]
	lostTrunks = sw.NumCircuits()
	if err := sw.FailPSU(0); err != nil {
		return 0, err
	}
	if err := sw.FailPSU(1); err != nil {
		return 0, err
	}
	return lostTrunks, nil
}

// RepairSwitch returns switch idx to service (circuits are not restored;
// run Program to re-balance).
func (f *Fabric) RepairSwitch(idx int) error {
	if idx < 0 || idx >= len(f.Switches) {
		return fmt.Errorf("%w: %d", ErrSwitchIndex, idx)
	}
	if err := f.Switches[idx].ReplacePSU(0); err != nil {
		return err
	}
	return f.Switches[idx].ReplacePSU(1)
}

// HealAfterFailure re-programs the topology around failed switches: the
// coloring runs only over healthy switches, keeping surviving circuits in
// place. It returns the programming result.
func (f *Fabric) HealAfterFailure(t *Topology) (ProgramResult, error) {
	healthy := &Fabric{Blocks: f.Blocks}
	var healthyIdx []int
	for i, sw := range f.Switches {
		if sw.Up() {
			healthy.Switches = append(healthy.Switches, sw)
			healthyIdx = append(healthyIdx, i)
		}
	}
	if len(healthy.Switches) == 0 {
		return ProgramResult{}, ErrTooFewSwitches
	}
	return healthy.Program(t)
}
