package dcn

import (
	"errors"
	"math"
	"testing"

	"lightwave/internal/par"
)

func TestSimulateRejectsDegenerateInputs(t *testing.T) {
	top, _ := UniformMesh(6, 15)
	base := func() Workload { return testWorkload(6, 0.2) }

	w := base()
	w.MeanFlowBytes = 0
	if _, err := Simulate(top, w, DefaultSimConfig()); !errors.Is(err, ErrDegenerate) {
		t.Errorf("zero MeanFlowBytes: err = %v, want ErrDegenerate", err)
	}

	w = base()
	w.Duration = 0
	if _, err := Simulate(top, w, DefaultSimConfig()); !errors.Is(err, ErrDegenerate) {
		t.Errorf("zero Duration: err = %v, want ErrDegenerate", err)
	}

	cfg := DefaultSimConfig()
	cfg.TrunkBps = 0
	if _, err := Simulate(top, base(), cfg); !errors.Is(err, ErrDegenerate) {
		t.Errorf("zero TrunkBps: err = %v, want ErrDegenerate", err)
	}

	// All-zero demand matrix.
	w = base()
	w.Demand = UniformDemand(6, 0)
	if _, err := Simulate(top, w, DefaultSimConfig()); !errors.Is(err, ErrDegenerate) {
		t.Errorf("all-zero demand: err = %v, want ErrDegenerate", err)
	}

	// Non-finite and negative entries.
	for _, bad := range []float64{math.NaN(), math.Inf(1), -1e9} {
		w = base()
		w.Demand[2][3] = bad
		if _, err := Simulate(top, w, DefaultSimConfig()); !errors.Is(err, ErrDegenerate) {
			t.Errorf("demand entry %v: err = %v, want ErrDegenerate", bad, err)
		}
	}

	// Ragged demand row.
	w = base()
	w.Demand[1] = w.Demand[1][:4]
	if _, err := Simulate(top, w, DefaultSimConfig()); !errors.Is(err, ErrMismatch) {
		t.Errorf("ragged row: err = %v, want ErrMismatch", err)
	}
}

func TestSimulateRejectsUnroutablePair(t *testing.T) {
	// Block 5 is fully disconnected (its row and column of the trunk
	// matrix are zero) but still carries demand: without validation its
	// flows would ride a zero-capacity direct hop forever.
	top, err := UniformMesh(6, 15)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 6; b++ {
		top.Links[5][b] = 0
		top.Links[b][5] = 0
	}
	if _, err := Simulate(top, testWorkload(6, 0.2), DefaultSimConfig()); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("unroutable pair: err = %v, want ErrDegenerate", err)
	}
}

func TestRoutableHelper(t *testing.T) {
	top, _ := UniformMesh(4, 9)
	if !routable(top, 0, 1) {
		t.Fatal("uniform mesh pair not routable")
	}
	top.Links[0][1] = 0
	if !routable(top, 0, 1) {
		t.Fatal("two-hop path not found")
	}
	for b := 0; b < 4; b++ {
		top.Links[0][b] = 0
	}
	if routable(top, 0, 1) {
		t.Fatal("isolated source reported routable")
	}
}

func TestLoadSweepMonotoneAndDeterministic(t *testing.T) {
	top, _ := UniformMesh(8, 21)
	demand := UniformDemand(8, 1e9)
	w := Workload{MeanFlowBytes: 2e9, Duration: 4}
	cfg := DefaultSimConfig()
	loads := []float64{0.1, 0.4, 0.8}

	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	base, err := LoadSweep(top, 21, demand, w, cfg, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(loads) {
		t.Fatalf("got %d points", len(base))
	}
	if base[0].Result.MeanFCT >= base[len(base)-1].Result.MeanFCT {
		t.Fatalf("FCT not increasing with load: %v vs %v",
			base[0].Result.MeanFCT, base[len(base)-1].Result.MeanFCT)
	}
	for _, workers := range []int{2, 8} {
		par.SetWorkers(workers)
		got, err := LoadSweep(top, 21, demand, w, cfg, loads)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: point %d differs: %+v vs %+v", workers, i, got[i], base[i])
			}
		}
	}
}

func TestLoadSweepPointIndependence(t *testing.T) {
	// Adding a sweep point must not change the others: each point runs on
	// its own seed substream, not a shared arrival stream.
	top, _ := UniformMesh(6, 15)
	demand := UniformDemand(6, 1e9)
	w := Workload{MeanFlowBytes: 2e9, Duration: 3}
	cfg := DefaultSimConfig()
	a, err := LoadSweep(top, 15, demand, w, cfg, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadSweep(top, 15, demand, w, cfg, []float64{0.2, 0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatal("point 0 changed when a point was inserted after it")
	}
	if a[1].Result != b[2].Result {
		// Same load, same index-derived seed? Index differs (1 vs 2), so
		// results may differ — but the load labels must survive.
		if a[1].Load != b[2].Load {
			t.Fatal("load labels corrupted")
		}
	}
}

func TestLoadSweepPropagatesErrors(t *testing.T) {
	top, _ := UniformMesh(6, 15)
	w := Workload{MeanFlowBytes: 0, Duration: 3} // degenerate
	if _, err := LoadSweep(top, 15, UniformDemand(6, 1e9), w, DefaultSimConfig(), []float64{0.5}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("err = %v, want ErrDegenerate", err)
	}
}

func TestCompareTopologiesDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("reference experiment is heavyweight")
	}
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	base, err := CompareTopologies(ReferenceExperiment())
	if err != nil {
		t.Fatal(err)
	}
	par.SetWorkers(4)
	got, err := CompareTopologies(ReferenceExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatalf("parallel comparison diverged:\n%+v\n%+v", got, base)
	}
}
