package dcn

import (
	"errors"
	"testing"

	"lightwave/internal/ocs"
)

func newDCNFabric(t *testing.T, blocks, switches int) *Fabric {
	t.Helper()
	f, err := NewFabric(blocks, switches, ocs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestProgramRealizesTopology(t *testing.T) {
	blocks, uplinks := 8, 14
	f := newDCNFabric(t, blocks, uplinks+2)
	top, err := UniformMesh(blocks, uplinks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Program(top)
	if err != nil {
		t.Fatal(err)
	}
	if res.TornDown != 0 || res.Kept != 0 {
		t.Fatalf("fresh fabric result = %+v", res)
	}
	totalTrunks := 0
	for i := 0; i < blocks; i++ {
		totalTrunks += top.Degree(i)
	}
	totalTrunks /= 2
	if res.Established != totalTrunks {
		t.Fatalf("established %d, want %d", res.Established, totalTrunks)
	}
	if !f.Matches(top) {
		t.Fatal("live hardware does not match the topology")
	}
}

func TestProgramEngineeredTopology(t *testing.T) {
	blocks, uplinks := 10, 18
	demand := SkewedDemand(blocks, 1e9, 4, 30, 11)
	top, err := Engineer(blocks, uplinks, demand)
	if err != nil {
		t.Fatal(err)
	}
	f := newDCNFabric(t, blocks, uplinks+4)
	if _, err := f.Program(top); err != nil {
		t.Fatal(err)
	}
	if !f.Matches(top) {
		t.Fatal("engineered topology not realized")
	}
}

func TestReprogramIsIncremental(t *testing.T) {
	// Re-engineering for a shifted demand must keep the still-valid trunks
	// untouched — in-service topology engineering (§2.3 isolation).
	blocks, uplinks := 8, 14
	f := newDCNFabric(t, blocks, uplinks+2)

	d1 := UniformDemand(blocks, 1e9)
	d1[0][1], d1[1][0] = 40e9, 40e9
	t1, err := Engineer(blocks, uplinks, d1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Program(t1); err != nil {
		t.Fatal(err)
	}

	// Shift the hot pair from (0,1) to (2,3).
	d2 := UniformDemand(blocks, 1e9)
	d2[2][3], d2[3][2] = 40e9, 40e9
	t2, err := Engineer(blocks, uplinks, d2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Program(t2)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(t2) {
		t.Fatal("reprogram did not realize the new topology")
	}
	if res.Kept == 0 {
		t.Fatal("no circuits survived an overlapping re-engineering")
	}
	// The shared background mesh is the majority of trunks; most must
	// survive.
	total := res.Kept + res.Established
	if res.Kept*2 < total {
		t.Fatalf("only %d of %d trunks kept", res.Kept, total)
	}
}

func TestReprogramIdenticalTopologyIsNoOp(t *testing.T) {
	blocks, uplinks := 6, 10
	f := newDCNFabric(t, blocks, uplinks+2)
	top, _ := UniformMesh(blocks, uplinks)
	if _, err := f.Program(top); err != nil {
		t.Fatal(err)
	}
	res, err := f.Program(top)
	if err != nil {
		t.Fatal(err)
	}
	if res.Established != 0 || res.TornDown != 0 {
		t.Fatalf("idempotent reprogram changed circuits: %+v", res)
	}
}

func TestProgramMatchingConstraint(t *testing.T) {
	// Each block has one strand per OCS: no switch may host two circuits
	// touching the same block.
	blocks, uplinks := 8, 14
	f := newDCNFabric(t, blocks, uplinks+2)
	top, _ := UniformMesh(blocks, uplinks)
	if _, err := f.Program(top); err != nil {
		t.Fatal(err)
	}
	for i, sw := range f.Switches {
		seen := map[int]bool{}
		for _, c := range sw.Circuits() {
			for _, blk := range []int{int(c.North), int(c.South)} {
				if seen[blk] {
					t.Fatalf("switch %d uses block %d's strand twice", i, blk)
				}
				seen[blk] = true
			}
		}
	}
}

func TestProgramCapacityExhaustion(t *testing.T) {
	blocks, uplinks := 8, 14
	f := newDCNFabric(t, blocks, 3) // far too few switches
	top, _ := UniformMesh(blocks, uplinks)
	if _, err := f.Program(top); !errors.Is(err, ErrTooFewSwitches) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewFabricValidation(t *testing.T) {
	cfg := ocs.DefaultConfig()
	if _, err := NewFabric(200, 4, cfg); !errors.Is(err, ErrBlocksRadix) {
		t.Fatalf("err = %v", err)
	}
}
