package dcn

import (
	"errors"
	"testing"

	"lightwave/internal/ocs"
)

func TestFailSwitchDropsTrunks(t *testing.T) {
	blocks, uplinks := 8, 14
	f := newDCNFabric(t, blocks, uplinks+4)
	top, _ := UniformMesh(blocks, uplinks)
	if _, err := f.Program(top); err != nil {
		t.Fatal(err)
	}
	// Find a switch with circuits.
	idx := -1
	for i, sw := range f.Switches {
		if sw.NumCircuits() > 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no loaded switch")
	}
	lost, err := f.FailSwitch(idx)
	if err != nil {
		t.Fatal(err)
	}
	if lost == 0 {
		t.Fatal("no trunks lost")
	}
	if f.Matches(top) {
		t.Fatal("fabric still matches topology after switch failure")
	}
}

func TestHealAfterFailureRestoresTopology(t *testing.T) {
	blocks, uplinks := 8, 14
	f := newDCNFabric(t, blocks, uplinks+6)
	top, _ := UniformMesh(blocks, uplinks)
	if _, err := f.Program(top); err != nil {
		t.Fatal(err)
	}
	if _, err := f.FailSwitch(0); err != nil {
		t.Fatal(err)
	}
	res, err := f.HealAfterFailure(top)
	if err != nil {
		t.Fatal(err)
	}
	if res.Established == 0 {
		t.Fatal("healing established nothing")
	}
	if !f.Matches(top) {
		t.Fatal("topology not restored after healing")
	}
	// Failed switch must carry nothing.
	if f.Switches[0].NumCircuits() != 0 {
		t.Fatal("failed switch carries circuits")
	}
	// Healing keeps survivors: most trunks were untouched.
	if res.Kept == 0 {
		t.Fatal("healing rebuilt everything from scratch")
	}
}

func TestRepairSwitchReturnsCapacity(t *testing.T) {
	f := newDCNFabric(t, 6, 12)
	if _, err := f.FailSwitch(3); err != nil {
		t.Fatal(err)
	}
	if f.Switches[3].Up() {
		t.Fatal("switch up after failure")
	}
	if err := f.RepairSwitch(3); err != nil {
		t.Fatal(err)
	}
	if !f.Switches[3].Up() {
		t.Fatal("switch down after repair")
	}
	// Usable again.
	if _, err := f.Switches[3].Connect(ocs.PortID(0), ocs.PortID(1)); err != nil {
		t.Fatal(err)
	}
}

func TestFailSwitchBounds(t *testing.T) {
	f := newDCNFabric(t, 4, 6)
	if _, err := f.FailSwitch(99); !errors.Is(err, ErrSwitchIndex) {
		t.Errorf("err = %v", err)
	}
	if err := f.RepairSwitch(-1); !errors.Is(err, ErrSwitchIndex) {
		t.Errorf("err = %v", err)
	}
}

func TestHealWithoutCapacityFails(t *testing.T) {
	blocks, uplinks := 8, 14
	// Exactly enough switches; losing several leaves too few.
	f := newDCNFabric(t, blocks, uplinks+1)
	top, _ := UniformMesh(blocks, uplinks)
	if _, err := f.Program(top); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := f.FailSwitch(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.HealAfterFailure(top); !errors.Is(err, ErrTooFewSwitches) {
		t.Fatalf("err = %v", err)
	}
}
