package dcn

import (
	"sync/atomic"

	"lightwave/internal/telemetry"
)

// The flow simulator reports its event-loop counters — events, arrivals,
// completions, max-min recompute rounds, flow-pool hits/misses — under
// dcn_flowsim_* in a telemetry.Registry, mirroring internal/par's par_*
// counters. Counters are accumulated locally inside a run and flushed once
// at the end, so the hot loop never touches an atomic.

// registry holds the simulator's metrics; swap it with SetRegistry to
// surface the counters on a daemon's /metrics endpoint.
var registry atomic.Pointer[telemetry.Registry]

func init() {
	registry.Store(telemetry.NewRegistry())
}

// SetRegistry redirects the simulator's telemetry to r (nil restores a
// fresh private registry). Daemons call this once at startup so
// dcn_flowsim_* counters appear alongside their other metrics.
func SetRegistry(r *telemetry.Registry) {
	if r == nil {
		r = telemetry.NewRegistry()
	}
	registry.Store(r)
}

// Registry returns the registry currently receiving the simulator's
// metrics.
func Registry() *telemetry.Registry {
	return registry.Load()
}
