package dcn

import (
	"testing"

	"lightwave/internal/par"
)

// Golden determinism contract for the flow simulator. The values below are
// the exact (hex-float, bit-for-bit) outputs of the original linear-scan /
// map-based engine, captured before the heap-indexed allocation-free
// rewrite. The rewrite is required to reproduce them exactly: every
// tie-break and floating-point accumulation order is part of the engine's
// contract, not an implementation detail. If an intentional behavior
// change ever invalidates these, re-pin them in the same commit and say so
// loudly in the commit message.

// goldenSmall is Simulate on UniformMesh(6, 15) with a uniform 15 GB/s
// demand (0.3 trunk per pair), 2 GB mean flows, 5 s horizon, default
// config.
var goldenSmall = SimResult{
	CompletedFlows:  1107,
	MeanFCT:         0x1.54208a549e2d2p-05,
	MedianFCT:       0x1.bb7bf25c98bcp-06,
	P99FCT:          0x1.9ce1842ba3567p-03,
	ThroughputBps:   0x1.ac0df31519c75p+38,
	TransitFraction: 0x1.ae7ba63d5de1cp-03,
}

// goldenReference is CompareTopologies(ReferenceExperiment()) — the §4.2
// engineered-vs-uniform comparison, both flow-level halves plus the fluid
// saturation throughputs.
var goldenReference = Comparison{
	Uniform: SimResult{
		CompletedFlows:  2333,
		MeanFCT:         0x1.6f23b47c64c8bp-01,
		MedianFCT:       0x1.013c12e6e4dp-01,
		P99FCT:          0x1.941d8d8c98547p+01,
		ThroughputBps:   0x1.6d549e4470da2p+42,
		TransitFraction: 0x1.6776d605e9889p-01,
	},
	Engineered: SimResult{
		CompletedFlows:  2720,
		MeanFCT:         0x1.1ea0f617021fbp-01,
		MedianFCT:       0x1.7536d12cca1acp-02,
		P99FCT:          0x1.67870e0205fc5p+01,
		ThroughputBps:   0x1.f6fcbaa247e08p+42,
		TransitFraction: 0x1.5817a6224a7e8p-03,
	},
	FCTImprovement: 0x1.c11c1e7a034ecp-03,
	ThroughputGain: 0x1.244ab0fd11c4cp-02,
	UniformBps:     0x1.27f3656d2caaep+43,
	EngineeredBps:  0x1.7c6d63971c3f9p+43,
}

// goldenSweep is LoadSweep on UniformMesh(8, 21), uniform 1 GB/s demand
// shape, 2 GB mean flows, 4 s horizon, loads {0.1, 0.4, 0.8}.
var goldenSweepLoads = []float64{0.1, 0.4, 0.8}

var goldenSweep = []SimResult{
	{
		CompletedFlows:  1681,
		MeanFCT:         0x1.3ac40f7a82563p-05,
		MedianFCT:       0x1.c1151404a2ap-06,
		P99FCT:          0x1.7b6a60fe3b31ap-03,
		ThroughputBps:   0x1.77f69fd0d0563p+39,
		TransitFraction: 0x1.0c556f00e7082p-02,
	},
	{
		CompletedFlows:  6499,
		MeanFCT:         0x1.4516f5e0338e1p-05,
		MedianFCT:       0x1.c04c82569d8p-06,
		P99FCT:          0x1.7305d73739f33p-03,
		ThroughputBps:   0x1.74fae059556c8p+41,
		TransitFraction: 0x1.2fd8b180f4931p-02,
	},
	{
		CompletedFlows:  12894,
		MeanFCT:         0x1.591e8b720e005p-04,
		MedianFCT:       0x1.c8b6dfadf55ep-05,
		P99FCT:          0x1.b2c7803ab093cp-02,
		ThroughputBps:   0x1.6d1a12b0d2bfap+42,
		TransitFraction: 0x1.bf3beb0ec6a43p-03,
	},
}

func TestSimulateGoldenSmallWorkload(t *testing.T) {
	top, err := UniformMesh(6, 15)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Demand: UniformDemand(6, 0.3*50e9), MeanFlowBytes: 2e9, Duration: 5}
	got, err := Simulate(top, w, DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got != goldenSmall {
		t.Fatalf("SimResult diverged from pre-rewrite golden:\n got %+v\nwant %+v", got, goldenSmall)
	}
}

func TestCompareTopologiesGoldenReference(t *testing.T) {
	if testing.Short() {
		t.Skip("reference experiment is heavyweight")
	}
	got, err := CompareTopologies(ReferenceExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if got != goldenReference {
		t.Fatalf("Comparison diverged from pre-rewrite golden:\n got %+v\nwant %+v", got, goldenReference)
	}
}

// TestLoadSweepGoldenAcrossWorkerCounts is the sweep half of the contract:
// every point must match the pre-rewrite golden exactly at 1, 4, and 8
// workers. Running the package under `go test -cpu 1,4,8` additionally
// exercises the default GOMAXPROCS-sized pool against the same goldens.
func TestLoadSweepGoldenAcrossWorkerCounts(t *testing.T) {
	top, err := UniformMesh(8, 21)
	if err != nil {
		t.Fatal(err)
	}
	demand := UniformDemand(8, 1e9)
	w := Workload{MeanFlowBytes: 2e9, Duration: 4}
	check := func(label string) {
		pts, err := LoadSweep(top, 21, demand, w, DefaultSimConfig(), goldenSweepLoads)
		if err != nil {
			t.Fatal(err)
		}
		for i, pt := range pts {
			if pt.Load != goldenSweepLoads[i] {
				t.Fatalf("%s: point %d load label = %v, want %v", label, i, pt.Load, goldenSweepLoads[i])
			}
			if pt.Result != goldenSweep[i] {
				t.Fatalf("%s: point %d diverged from pre-rewrite golden:\n got %+v\nwant %+v",
					label, i, pt.Result, goldenSweep[i])
			}
		}
	}
	check("default workers")
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	for _, workers := range []int{1, 4, 8} {
		par.SetWorkers(workers)
		check("workers=1/4/8")
	}
}
