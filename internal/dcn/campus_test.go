package dcn

import (
	"errors"
	"testing"
)

func campusConfig() CampusConfig {
	clusters, epochs := 10, 12
	return CampusConfig{
		Clusters: clusters,
		Uplinks:  14,
		Switches: 22,
		Epochs:   epochs,
		BaseBps:  0.5e9,
		Services: RandomServices(20, clusters, epochs, 150e9, 7),
		TrunkBps: 12.5e9, // 100G trunks
		Seed:     1,
	}
}

func TestCampusRuns(t *testing.T) {
	eps, err := RunCampus(campusConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 12 {
		t.Fatalf("%d epochs", len(eps))
	}
	sawActive := false
	for _, e := range eps {
		if e.OfferedBps <= 0 || e.AchievedBps <= 0 {
			t.Fatalf("epoch %d: offered %v achieved %v", e.Epoch, e.OfferedBps, e.AchievedBps)
		}
		if e.ActiveServices > 0 {
			sawActive = true
		}
	}
	if !sawActive {
		t.Fatal("no epoch had active services")
	}
}

func TestCampusChurnStaysIncremental(t *testing.T) {
	eps, err := RunCampus(campusConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 0 builds the whole fabric; later epochs must mostly keep
	// trunks in place (the background mesh persists).
	build := eps[0].Churn
	for _, e := range eps[1:] {
		if e.Kept == 0 {
			t.Fatalf("epoch %d kept nothing", e.Epoch)
		}
		if e.Churn >= build {
			t.Fatalf("epoch %d churn %d not below initial build %d", e.Epoch, e.Churn, build)
		}
	}
}

func TestCampusBeatsStaticMesh(t *testing.T) {
	// Cumulative delivered bytes across the horizon: the re-engineered
	// fabric must beat the never-reconfigured mesh under shifting hot
	// services.
	eps, err := RunCampus(campusConfig())
	if err != nil {
		t.Fatal(err)
	}
	var engineered, static float64
	for _, e := range eps {
		engineered += e.AchievedBps
		static += e.StaticAchievedBps
	}
	if engineered <= static*1.02 {
		t.Fatalf("engineered %.3g not better than static %.3g", engineered, static)
	}
}

func TestCampusValidation(t *testing.T) {
	cfg := campusConfig()
	cfg.Clusters = 1
	if _, err := RunCampus(cfg); !errors.Is(err, ErrCampusConfig) {
		t.Errorf("err = %v", err)
	}
	cfg = campusConfig()
	cfg.Epochs = 0
	if _, err := RunCampus(cfg); !errors.Is(err, ErrCampusConfig) {
		t.Errorf("err = %v", err)
	}
	cfg = campusConfig()
	cfg.Uplinks = 2
	if _, err := RunCampus(cfg); !errors.Is(err, ErrCampusConfig) {
		t.Errorf("err = %v", err)
	}
}

func TestRandomServicesProperties(t *testing.T) {
	svcs := RandomServices(30, 8, 10, 50e9, 3)
	if len(svcs) != 30 {
		t.Fatalf("%d services", len(svcs))
	}
	for _, s := range svcs {
		if s.Src == s.Dst {
			t.Fatal("self-service")
		}
		if s.Start < 0 || s.End <= s.Start || s.End > 10 {
			t.Fatalf("bad lifetime %d..%d", s.Start, s.End)
		}
		if s.Bps <= 0 {
			t.Fatal("non-positive service rate")
		}
	}
}
