package dcn_test

import (
	"fmt"

	"lightwave/internal/dcn"
)

// Example engineers a topology for a hot traffic pair and shows the trunk
// allocation following the demand.
func Example() {
	demand := dcn.UniformDemand(6, 1e9)
	demand[0][1], demand[1][0] = 50e9, 50e9

	top, err := dcn.Engineer(6, 10, demand)
	if err != nil {
		panic(err)
	}
	fmt.Println("hot pair trunks:", top.Links[0][1])
	fmt.Println("cold pair trunks:", top.Links[2][3])
	fmt.Println("matchings:", len(top.Decompose()) > 0)
	// Output:
	// hot pair trunks: 6
	// cold pair trunks: 3
	// matchings: true
}
