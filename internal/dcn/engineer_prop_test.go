package dcn

import (
	"errors"
	"math"
	"testing"

	"lightwave/internal/sim"
)

// Regression: a NaN or Inf demand cell must be rejected, not silently
// degrade the greedy fill to the uniform baseline (NaN compares false
// against every score, so before the fix Engineer returned the
// reachability mesh untouched).
func TestEngineerRejectsNonFiniteDemand(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		d := UniformDemand(8, 1)
		d[2][5] = bad
		if _, err := Engineer(8, 20, d); !errors.Is(err, ErrBadDemand) {
			t.Errorf("demand cell %g: err = %v, want ErrBadDemand", bad, err)
		}
	}
}

// connected reports whether the trunk graph spans every block.
func connected(top *Topology) bool {
	seen := make([]bool, top.Blocks)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for j := 0; j < top.Blocks; j++ {
			if !seen[j] && top.Links[i][j] > 0 {
				seen[j] = true
				queue = append(queue, j)
			}
		}
	}
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

// Property test: for random (including strongly asymmetric) demand
// matrices, every engineered topology keeps per-block degree within the
// uplink budget, stays connected, and keeps the trunk matrix symmetric
// with a consistent total (sum of degrees = 2 x trunk count).
func TestEngineerInvariants(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := sim.NewRand(seed)
		blocks := 3 + rng.Intn(10)
		uplinks := blocks - 1 + rng.Intn(2*blocks)
		demand := make([][]float64, blocks)
		for i := range demand {
			demand[i] = make([]float64, blocks)
			for j := range demand[i] {
				if i == j {
					continue
				}
				// Asymmetric by construction: each direction drawn
				// independently, with whole rows occasionally silent.
				switch rng.Intn(4) {
				case 0: // cold pair
				case 1:
					demand[i][j] = rng.Float64()
				default:
					demand[i][j] = rng.Float64() * math.Pow(10, float64(rng.Intn(4)))
				}
			}
		}
		top, err := Engineer(blocks, uplinks, demand)
		if err != nil {
			t.Fatalf("seed %d (blocks=%d uplinks=%d): %v", seed, blocks, uplinks, err)
		}
		if err := top.Validate(); err != nil {
			t.Fatalf("seed %d: Validate: %v", seed, err)
		}
		for i := 0; i < blocks; i++ {
			if d := top.Degree(i); d > uplinks {
				t.Fatalf("seed %d: block %d degree %d exceeds %d", seed, i, d, uplinks)
			}
		}
		if !connected(top) {
			t.Fatalf("seed %d: engineered topology disconnected", seed)
		}
		degSum, trunks := 0, 0
		for i := 0; i < blocks; i++ {
			degSum += top.Degree(i)
			for j := i + 1; j < blocks; j++ {
				if top.Links[i][j] != top.Links[j][i] {
					t.Fatalf("seed %d: asymmetric links %d-%d: %d vs %d",
						seed, i, j, top.Links[i][j], top.Links[j][i])
				}
				trunks += top.Links[i][j]
			}
		}
		if degSum != 2*trunks {
			t.Fatalf("seed %d: degree sum %d != 2 x %d trunks", seed, degSum, trunks)
		}
	}
}
