package dcn

import (
	"errors"

	"lightwave/internal/ocs"
	"lightwave/internal/sim"
)

// The campus use case (§1, §6): clusters connected by a lightwave fabric
// whose traffic shifts "with the turnup and turndown of services". The
// campus loop re-engineers the inter-cluster topology every epoch as
// services come and go, applying each new topology incrementally so churn
// stays proportional to the demand shift rather than the fabric size.

// Service is one long-lived cluster-to-cluster traffic source.
type Service struct {
	Src, Dst   int
	Bps        float64
	Start, End int // active for epochs in [Start, End)
}

// CampusConfig drives the campus simulation.
type CampusConfig struct {
	Clusters int
	Uplinks  int
	Switches int
	Epochs   int
	// BaseBps is the always-on background demand between every pair.
	BaseBps float64
	// Services is the churn workload; use RandomServices for a synthetic
	// one.
	Services []Service
	// TrunkBps is the per-trunk rate for throughput accounting.
	TrunkBps float64
	Seed     uint64
}

// RandomServices generates n services with random endpoints, sizes, and
// lifetimes across the epoch horizon.
func RandomServices(n, clusters, epochs int, meanBps float64, seed uint64) []Service {
	rng := sim.NewRand(seed)
	out := make([]Service, 0, n)
	for i := 0; i < n; i++ {
		src := rng.Intn(clusters)
		dst := rng.Intn(clusters)
		for dst == src {
			dst = rng.Intn(clusters)
		}
		start := rng.Intn(epochs)
		dur := 1 + rng.Intn(epochs-start)
		out = append(out, Service{
			Src: src, Dst: dst,
			Bps:   meanBps * (0.5 + rng.Float64()),
			Start: start, End: start + dur,
		})
	}
	return out
}

// CampusEpoch is one epoch's outcome.
type CampusEpoch struct {
	Epoch          int
	ActiveServices int
	// Churn counts circuit changes (established + torn down) this epoch.
	Churn int
	// Kept counts trunks untouched across the re-engineering.
	Kept int
	// OfferedBps and AchievedBps measure the epoch's demand service.
	OfferedBps, AchievedBps float64
	// StaticAchievedBps is what a never-reconfigured uniform mesh would
	// deliver for the same demand.
	StaticAchievedBps float64
}

// ErrCampusConfig is returned for degenerate configurations.
var ErrCampusConfig = errors.New("dcn: invalid campus configuration")

// RunCampus runs the re-engineering loop over physical OCS hardware and
// returns the per-epoch trajectory.
func RunCampus(cfg CampusConfig) ([]CampusEpoch, error) {
	if cfg.Clusters < 2 || cfg.Epochs < 1 || cfg.Uplinks < cfg.Clusters-1 {
		return nil, ErrCampusConfig
	}
	fabric, err := NewFabric(cfg.Clusters, cfg.Switches, ocs.DefaultConfig())
	if err != nil {
		return nil, err
	}
	static, err := UniformMesh(cfg.Clusters, cfg.Uplinks)
	if err != nil {
		return nil, err
	}

	var out []CampusEpoch
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		demand := UniformDemand(cfg.Clusters, cfg.BaseBps)
		active := 0
		for _, s := range cfg.Services {
			if epoch >= s.Start && epoch < s.End {
				demand[s.Src][s.Dst] += s.Bps
				demand[s.Dst][s.Src] += s.Bps
				active++
			}
		}
		top, err := Engineer(cfg.Clusters, cfg.Uplinks, demand)
		if err != nil {
			return nil, err
		}
		res, err := fabric.Program(top)
		if err != nil {
			return nil, err
		}
		ep := CampusEpoch{
			Epoch:             epoch,
			ActiveServices:    active,
			Churn:             res.Established + res.TornDown,
			Kept:              res.Kept,
			OfferedBps:        TotalDemand(demand),
			AchievedBps:       AchievedThroughput(top, demand, cfg.TrunkBps),
			StaticAchievedBps: AchievedThroughput(static, demand, cfg.TrunkBps),
		}
		out = append(out, ep)
	}
	return out, nil
}
