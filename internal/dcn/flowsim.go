package dcn

import (
	"errors"
	"fmt"
	"math"

	"lightwave/internal/sim"
)

// Flow-level simulator: flows arrive on block pairs following a traffic
// matrix, are routed on the direct trunk or a two-hop transit path (the
// routing style of the spine-free Jupiter fabric), receive max-min fair
// rates recomputed as the flow population changes, and complete when their
// bytes drain. The engineered topology's advantage — capacity where the
// demand is — shows up as lower flow completion times and higher achieved
// throughput.

// Workload describes the offered traffic.
type Workload struct {
	// Demand[i][j] is the offered load from block i to j in bytes/s.
	Demand [][]float64
	// MeanFlowBytes is the mean of the exponential flow-size
	// distribution.
	MeanFlowBytes float64
	// Duration is the simulated time horizon in seconds.
	Duration float64
}

// SimConfig parameterizes the simulator.
type SimConfig struct {
	// TrunkBps is the capacity of one trunk in bytes/s, per direction.
	TrunkBps float64
	// Seed fixes the arrival process.
	Seed uint64
	// MaxTransit is the number of candidate transit blocks examined per
	// flow (least-loaded two-hop routing).
	MaxTransit int
	// FCTLoadFraction is the fraction of fabric capacity offered during
	// the FCT comparison (0 = default 0.7).
	FCTLoadFraction float64
	// SatLoadFraction is the fraction offered during the saturation
	// throughput comparison (0 = default 0.95).
	SatLoadFraction float64
}

// DefaultSimConfig returns a 400G-trunk configuration.
func DefaultSimConfig() SimConfig {
	return SimConfig{TrunkBps: 50e9, Seed: 1, MaxTransit: 4}
}

// SimResult aggregates the run.
type SimResult struct {
	CompletedFlows int
	// MeanFCT and P99FCT are flow-completion-time statistics in seconds.
	MeanFCT, MedianFCT, P99FCT float64
	// ThroughputBps is completed bytes over the duration.
	ThroughputBps float64
	// TransitFraction is the share of flows that took a two-hop path.
	TransitFraction float64
}

type flow struct {
	src, dst  int
	hops      [][2]int // directed links used
	size      float64
	remaining float64
	started   float64
	rate      float64
	idx       int // position in the active slice
}

// ErrMismatch is returned when workload and topology disagree on size.
var ErrMismatch = errors.New("dcn: workload does not match topology")

// ErrDegenerate is returned for inputs that would otherwise surface deep
// inside the simulation as NaN/Inf fair-share rates, divide-by-zero, or
// flows that never drain: non-positive trunk rate / mean flow size /
// duration, non-finite or negative demand entries, an all-zero demand
// matrix, or a demanded block pair with no usable path (no direct trunk
// and no two-hop transit — the zero-capacity-trunk case).
var ErrDegenerate = errors.New("dcn: degenerate simulation input")

// Simulate runs the flow-level simulation of the workload on the topology.
func Simulate(t *Topology, w Workload, cfg SimConfig) (SimResult, error) {
	n := t.Blocks
	if len(w.Demand) != n {
		return SimResult{}, fmt.Errorf("%w: demand %d blocks, topology %d", ErrMismatch, len(w.Demand), n)
	}
	if err := t.Validate(); err != nil {
		return SimResult{}, err
	}
	if cfg.TrunkBps <= 0 {
		return SimResult{}, fmt.Errorf("%w: trunk rate %g B/s", ErrDegenerate, cfg.TrunkBps)
	}
	if w.MeanFlowBytes <= 0 {
		return SimResult{}, fmt.Errorf("%w: mean flow size %g bytes", ErrDegenerate, w.MeanFlowBytes)
	}
	if w.Duration <= 0 {
		return SimResult{}, fmt.Errorf("%w: duration %g s", ErrDegenerate, w.Duration)
	}
	rng := sim.NewRand(cfg.Seed)

	// Pre-compute arrival rates per pair, validating the demand matrix as
	// we go: every demanded pair must have a usable path, or its flows
	// would be assigned a zero-capacity direct hop and never drain.
	type pair struct{ i, j int }
	var pairs []pair
	var rates []float64
	for i := 0; i < n; i++ {
		if len(w.Demand[i]) != n {
			return SimResult{}, fmt.Errorf("%w: demand row %d has %d entries, topology %d", ErrMismatch, i, len(w.Demand[i]), n)
		}
		for j := 0; j < n; j++ {
			d := w.Demand[i][j]
			if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
				return SimResult{}, fmt.Errorf("%w: demand[%d][%d] = %g", ErrDegenerate, i, j, d)
			}
			if i != j && d > 0 {
				if !routable(t, i, j) {
					return SimResult{}, fmt.Errorf("%w: demand on pair (%d,%d) with no direct trunk or two-hop path", ErrDegenerate, i, j)
				}
				pairs = append(pairs, pair{i, j})
				rates = append(rates, d/w.MeanFlowBytes)
			}
		}
	}
	if len(pairs) == 0 {
		return SimResult{}, fmt.Errorf("%w: empty demand", ErrDegenerate)
	}

	cap := func(i, j int) float64 { return float64(t.Links[i][j]) * cfg.TrunkBps }
	load := make(map[[2]int]float64) // current flow count per directed link

	// The active set is an ordered slice, NOT a map: iteration order feeds
	// tie-breaking (earliest completion, bottleneck selection) and the
	// floating-point accumulation order of the fair-share recompute, so
	// randomized map iteration would make results differ run-to-run.
	var active []*flow
	removeActive := func(f *flow) {
		last := len(active) - 1
		active[f.idx] = active[last]
		active[f.idx].idx = f.idx
		active = active[:last]
	}
	var fcts []float64
	completedBytes := 0.0
	transit, total := 0, 0

	// Next arrival per pair (exponential interarrivals).
	next := make([]float64, len(pairs))
	for k := range next {
		next[k] = rng.ExpFloat64() / rates[k]
	}

	now := 0.0
	recompute := func() {
		maxMinRates(active, cap, cfg.TrunkBps)
	}

	for now < w.Duration {
		// Earliest next event: arrival or completion.
		tNext := math.Inf(1)
		kNext := -1
		for k, at := range next {
			if at < tNext {
				tNext, kNext = at, k
			}
		}
		var fDone *flow
		for _, f := range active {
			if f.rate <= 0 {
				continue
			}
			done := now + f.remaining/f.rate
			if done < tNext {
				tNext, kNext, fDone = done, -1, f
			}
		}
		if tNext > w.Duration {
			break
		}
		// Drain all active flows to tNext.
		dt := tNext - now
		for _, f := range active {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		now = tNext

		if fDone != nil {
			fcts = append(fcts, now-fDone.started)
			completedBytes += fDone.size
			for _, h := range fDone.hops {
				load[h]--
			}
			removeActive(fDone)
			recompute()
			continue
		}

		// Arrival on pair kNext.
		p := pairs[kNext]
		next[kNext] = now + rng.ExpFloat64()/rates[kNext]
		f := &flow{src: p.i, dst: p.j, started: now}
		f.size = rng.ExpFloat64() * w.MeanFlowBytes
		f.remaining = f.size
		f.hops = choosePath(t, p.i, p.j, load, cfg, rng)
		total++
		if len(f.hops) == 2 {
			transit++
		}
		for _, h := range f.hops {
			load[h]++
		}
		f.idx = len(active)
		active = append(active, f)
		recompute()
	}

	var res SimResult
	res.CompletedFlows = len(fcts)
	res.TransitFraction = 0
	if total > 0 {
		res.TransitFraction = float64(transit) / float64(total)
	}
	if len(fcts) > 0 {
		res.MeanFCT = sim.Mean(fcts)
		res.MedianFCT = sim.Percentile(fcts, 50)
		res.P99FCT = sim.Percentile(fcts, 99)
	}
	res.ThroughputBps = completedBytes / w.Duration
	return res, nil
}

// choosePath picks the direct path when a trunk exists and is not badly
// overloaded relative to the best two-hop alternative; otherwise the least-
// loaded two-hop path.
func choosePath(t *Topology, src, dst int, load map[[2]int]float64, cfg SimConfig, rng *sim.Rand) [][2]int {
	direct := [][2]int{{src, dst}}
	directScore := math.Inf(1)
	if t.Links[src][dst] > 0 {
		directScore = (load[[2]int{src, dst}] + 1) / float64(t.Links[src][dst])
	}
	bestVia, bestScore := -1, math.Inf(1)
	for k := 0; k < cfg.MaxTransit; k++ {
		via := rng.Intn(t.Blocks)
		if via == src || via == dst || t.Links[src][via] == 0 || t.Links[via][dst] == 0 {
			continue
		}
		s1 := (load[[2]int{src, via}] + 1) / float64(t.Links[src][via])
		s2 := (load[[2]int{via, dst}] + 1) / float64(t.Links[via][dst])
		s := math.Max(s1, s2) * 1.15 // transit uses twice the fabric capacity; bias to direct
		if s < bestScore {
			bestScore, bestVia = s, via
		}
	}
	if bestVia >= 0 && bestScore < directScore {
		return [][2]int{{src, bestVia}, {bestVia, dst}}
	}
	if t.Links[src][dst] == 0 {
		if bestVia >= 0 {
			return [][2]int{{src, bestVia}, {bestVia, dst}}
		}
		// The random probes all missed. A direct "path" here would ride a
		// zero-capacity trunk and never drain, so fall back to a
		// deterministic scan for the least-loaded transit; Simulate's
		// routability validation guarantees one exists.
		for via := 0; via < t.Blocks; via++ {
			if via == src || via == dst || t.Links[src][via] == 0 || t.Links[via][dst] == 0 {
				continue
			}
			s1 := (load[[2]int{src, via}] + 1) / float64(t.Links[src][via])
			s2 := (load[[2]int{via, dst}] + 1) / float64(t.Links[via][dst])
			if s := math.Max(s1, s2); s < bestScore {
				bestScore, bestVia = s, via
			}
		}
		if bestVia >= 0 {
			return [][2]int{{src, bestVia}, {bestVia, dst}}
		}
	}
	return direct
}

// routable reports whether the pair (i, j) has a direct trunk or at least
// one two-hop transit path on t.
func routable(t *Topology, i, j int) bool {
	if t.Links[i][j] > 0 {
		return true
	}
	for v := 0; v < t.Blocks; v++ {
		if v != i && v != j && t.Links[i][v] > 0 && t.Links[v][j] > 0 {
			return true
		}
	}
	return false
}

// maxMinRates computes max-min fair rates by progressive filling. active
// is iterated in order, and link states are visited in first-touch order,
// so bottleneck tie-breaking and the floating-point accumulation order —
// and therefore the computed rates — are identical run-to-run (maps would
// randomize both).
func maxMinRates(active []*flow, capFn func(i, j int) float64, trunk float64) {
	type linkState struct {
		capacity float64
		flows    []*flow
	}
	links := map[[2]int]*linkState{}
	var order []*linkState // first-touch order; map iteration is randomized
	for _, f := range active {
		f.rate = -1
		for _, h := range f.hops {
			ls := links[h]
			if ls == nil {
				ls = &linkState{capacity: capFn(h[0], h[1])}
				links[h] = ls
				order = append(order, ls)
			}
			ls.flows = append(ls.flows, f)
		}
	}
	unfrozen := len(active)
	for unfrozen > 0 {
		// Find the bottleneck link: minimum fair share among links with
		// unfrozen flows.
		var bottleneck *linkState
		share := math.Inf(1)
		for _, ls := range order {
			nUnfrozen := 0
			for _, f := range ls.flows {
				if f.rate < 0 {
					nUnfrozen++
				}
			}
			if nUnfrozen == 0 {
				continue
			}
			s := ls.capacity / float64(nUnfrozen)
			if s < share {
				share, bottleneck = s, ls
			}
		}
		if bottleneck == nil {
			// Remaining flows are unconstrained (shouldn't happen: every
			// flow crosses at least one link); cap at trunk rate.
			for _, f := range active {
				if f.rate < 0 {
					f.rate = trunk
					unfrozen--
				}
			}
			break
		}
		for _, f := range bottleneck.flows {
			if f.rate >= 0 {
				continue
			}
			// A single flow rides one physical trunk (ECMP hashing), so its
			// rate is capped at the trunk rate even on multi-trunk pairs.
			rate := share
			if rate > trunk {
				rate = trunk
			}
			f.rate = rate
			unfrozen--
			for _, h := range f.hops {
				links[h].capacity -= rate
				if links[h].capacity < 0 {
					links[h].capacity = 0
				}
			}
		}
	}
}
