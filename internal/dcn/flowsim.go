package dcn

import (
	"errors"
	"fmt"
	"math"

	"lightwave/internal/sim"
)

// Flow-level simulator: flows arrive on block pairs following a traffic
// matrix, are routed on the direct trunk or a two-hop transit path (the
// routing style of the spine-free Jupiter fabric), receive max-min fair
// rates recomputed as the flow population changes, and complete when their
// bytes drain. The engineered topology's advantage — capacity where the
// demand is — shows up as lower flow completion times and higher achieved
// throughput.
//
// The event loop is built for speed without sacrificing reproducibility:
// arrivals live in an index-tie-broken binary min-heap, all per-link state
// is kept in flat []float64 / slice arrays indexed by src*n+dst and reused
// across events via epoch stamping, and flow structs are pooled. Every
// tie-break and floating-point accumulation order matches the original
// linear-scan/map implementation, so results are bit-identical (see
// golden_test.go for the pinned contract).

// Workload describes the offered traffic.
type Workload struct {
	// Demand[i][j] is the offered load from block i to j in bytes/s.
	Demand [][]float64
	// MeanFlowBytes is the mean of the exponential flow-size
	// distribution.
	MeanFlowBytes float64
	// Duration is the simulated time horizon in seconds.
	Duration float64
}

// SimConfig parameterizes the simulator.
type SimConfig struct {
	// TrunkBps is the capacity of one trunk in bytes/s, per direction.
	TrunkBps float64
	// Seed fixes the arrival process.
	Seed uint64
	// MaxTransit is the number of candidate transit blocks examined per
	// flow (least-loaded two-hop routing).
	MaxTransit int
	// FCTLoadFraction is the fraction of fabric capacity offered during
	// the FCT comparison (0 = default 0.7).
	FCTLoadFraction float64
	// SatLoadFraction is the fraction offered during the saturation
	// throughput comparison (0 = default 0.95).
	SatLoadFraction float64
}

// DefaultSimConfig returns a 400G-trunk configuration.
func DefaultSimConfig() SimConfig {
	return SimConfig{TrunkBps: 50e9, Seed: 1, MaxTransit: 4}
}

// SimResult aggregates the run.
type SimResult struct {
	CompletedFlows int
	// MeanFCT and P99FCT are flow-completion-time statistics in seconds.
	MeanFCT, MedianFCT, P99FCT float64
	// ThroughputBps is completed bytes over the duration.
	ThroughputBps float64
	// TransitFraction is the share of flows that took a two-hop path.
	TransitFraction float64
}

type flow struct {
	src, dst int
	// hopIdx[:nhops] are the directed links used, as flat src*n+dst
	// indices (one hop for direct, two for transit).
	hopIdx    [2]int
	nhops     int
	size      float64
	remaining float64
	started   float64
	rate      float64
	idx       int // position in the active slice
}

// ErrMismatch is returned when workload and topology disagree on size.
var ErrMismatch = errors.New("dcn: workload does not match topology")

// ErrDegenerate is returned for inputs that would otherwise surface deep
// inside the simulation as NaN/Inf fair-share rates, divide-by-zero, or
// flows that never drain: non-positive trunk rate / mean flow size /
// duration, non-finite or negative demand entries, an all-zero demand
// matrix, or a demanded block pair with no usable path (no direct trunk
// and no two-hop transit — the zero-capacity-trunk case).
var ErrDegenerate = errors.New("dcn: degenerate simulation input")

// simEngine holds one simulation run's entire state. All scratch is
// allocated once in newSimEngine and reused event-to-event, so the loop
// itself runs allocation-free in steady state (the fcts slice and pooled
// per-link flow lists grow amortized-O(1) until they reach the run's high
// water mark).
type simEngine struct {
	top   *Topology
	n     int
	w     Workload
	cfg   SimConfig
	trunk float64
	rng   *sim.Rand

	pairs []pairRate

	// Arrival calendar: next[k] is pair k's next arrival time, and heap
	// holds pair indices ordered by (next[k], k). The index tie-break
	// reproduces the original linear scan's lowest-index-wins rule.
	next []float64
	heap []int32

	// Flat per-directed-link state, indexed src*n+dst.
	load        []float64 // current flow count per link
	linkCapBase []float64 // float64(Links[i][j]) * TrunkBps

	active []*flow
	free   []*flow // pooled flow structs of completed flows

	// Max-min fair-share scratch, epoch-stamped so a recompute touches
	// only the links the active flows actually use and never re-zeroes
	// the full n×n arrays.
	epoch        uint64
	linkEpoch    []uint64
	linkCapacity []float64
	linkFlows    [][]*flow
	linkUnfrozen []int
	order        []int // links in first-touch order

	now            float64
	fcts           []float64
	completedBytes float64
	transit, total int

	// Telemetry accumulators, flushed to the package registry once per
	// run (per-event atomics would dominate the loop).
	events, arrivals, completions, recomputeRounds, poolHits, poolMisses int64
}

// newSimEngine validates the inputs and allocates the run's state. The
// returned engine is positioned at t=0 with the first arrival of every
// pair already scheduled.
func newSimEngine(t *Topology, w Workload, cfg SimConfig) (*simEngine, error) {
	n := t.Blocks
	if len(w.Demand) != n {
		return nil, fmt.Errorf("%w: demand %d blocks, topology %d", ErrMismatch, len(w.Demand), n)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.TrunkBps <= 0 {
		return nil, fmt.Errorf("%w: trunk rate %g B/s", ErrDegenerate, cfg.TrunkBps)
	}
	if w.MeanFlowBytes <= 0 {
		return nil, fmt.Errorf("%w: mean flow size %g bytes", ErrDegenerate, w.MeanFlowBytes)
	}
	if w.Duration <= 0 {
		return nil, fmt.Errorf("%w: duration %g s", ErrDegenerate, w.Duration)
	}
	pairs, err := demandPairs(t, w)
	if err != nil {
		return nil, err
	}

	s := &simEngine{
		top:   t,
		n:     n,
		w:     w,
		cfg:   cfg,
		trunk: cfg.TrunkBps,
		pairs: pairs,
		next:  make([]float64, len(pairs)),
		heap:  make([]int32, len(pairs)),

		load:        make([]float64, n*n),
		linkCapBase: make([]float64, n*n),

		linkEpoch:    make([]uint64, n*n),
		linkCapacity: make([]float64, n*n),
		linkFlows:    make([][]*flow, n*n),
		linkUnfrozen: make([]int, n*n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.linkCapBase[i*n+j] = float64(t.Links[i][j]) * cfg.TrunkBps
		}
	}
	s.reset()
	return s, nil
}

// reset rewinds the engine to t=0 with a fresh arrival process from
// cfg.Seed, returning all in-flight flows to the pool. All scratch arrays
// are retained, so a reset engine replays the run without allocating.
func (s *simEngine) reset() {
	s.rng = sim.NewRand(s.cfg.Seed)
	for k := range s.pairs {
		s.next[k] = s.rng.ExpFloat64() / s.pairs[k].rate
		s.heap[k] = int32(k)
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	s.free = append(s.free, s.active...)
	s.active = s.active[:0]
	for i := range s.load {
		s.load[i] = 0
	}
	s.now = 0
	s.fcts = s.fcts[:0]
	s.completedBytes = 0
	s.transit, s.total = 0, 0
}

// arrivalLess orders pairs by (next arrival time, pair index): among
// simultaneous arrivals the lowest pair index wins, exactly like the
// original first-minimum linear scan over next[].
//
//lwlint:hotpath
func (s *simEngine) arrivalLess(a, b int32) bool {
	ta, tb := s.next[a], s.next[b]
	return ta < tb || (ta == tb && a < b)
}

// siftDown restores the heap property below slot i. It is the only heap
// primitive the loop needs: an arrival only ever reschedules the root
// (its new time is strictly later), and no other slot's key changes.
//
//lwlint:hotpath
func (s *simEngine) siftDown(i int) {
	h := s.heap
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && s.arrivalLess(h[r], h[l]) {
			m = r
		}
		if !s.arrivalLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

//lwlint:hotpath
func (s *simEngine) getFlow() *flow {
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free = s.free[:n-1]
		s.poolHits++
		*f = flow{}
		return f
	}
	s.poolMisses++
	return &flow{}
}

//lwlint:hotpath
func (s *simEngine) removeActive(f *flow) {
	last := len(s.active) - 1
	s.active[f.idx] = s.active[last]
	s.active[f.idx].idx = f.idx
	s.active = s.active[:last]
}

// step advances the simulation by one event (arrival or completion) and
// reports whether the run continues: false once the horizon is reached.
//
//lwlint:hotpath
func (s *simEngine) step() bool {
	if s.now >= s.w.Duration {
		return false
	}
	// Earliest next event: the heap root is the earliest arrival; a
	// completion preempts it only when strictly earlier, and the earliest-
	// index active flow wins completion ties, as in the original scan.
	kNext := int(s.heap[0])
	tNext := s.next[kNext]
	var fDone *flow
	for _, f := range s.active {
		if f.rate <= 0 {
			continue
		}
		done := s.now + f.remaining/f.rate
		if done < tNext {
			tNext, kNext, fDone = done, -1, f
		}
	}
	if tNext > s.w.Duration {
		return false
	}
	// Drain all active flows to tNext.
	dt := tNext - s.now
	for _, f := range s.active {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	s.now = tNext
	s.events++

	if fDone != nil {
		s.completions++
		s.fcts = append(s.fcts, s.now-fDone.started)
		s.completedBytes += fDone.size
		for h := 0; h < fDone.nhops; h++ {
			s.load[fDone.hopIdx[h]]--
		}
		s.removeActive(fDone)
		s.free = append(s.free, fDone)
		s.maxMinRates()
		return true
	}

	// Arrival on pair kNext: reschedule the pair (its new draw is later
	// than now, so the root only ever sifts down) and admit the flow.
	s.arrivals++
	p := s.pairs[kNext]
	s.next[kNext] = s.now + s.rng.ExpFloat64()/p.rate
	s.siftDown(0)
	f := s.getFlow()
	f.src, f.dst, f.started = p.i, p.j, s.now
	f.size = s.rng.ExpFloat64() * s.w.MeanFlowBytes
	f.remaining = f.size
	via, transit := s.choosePath(p.i, p.j)
	if transit {
		f.nhops = 2
		f.hopIdx[0] = p.i*s.n + via
		f.hopIdx[1] = via*s.n + p.j
	} else {
		f.nhops = 1
		f.hopIdx[0] = p.i*s.n + p.j
	}
	s.total++
	if transit {
		s.transit++
	}
	for h := 0; h < f.nhops; h++ {
		s.load[f.hopIdx[h]]++
	}
	f.idx = len(s.active)
	s.active = append(s.active, f)
	s.maxMinRates()
	return true
}

func (s *simEngine) result() SimResult {
	var res SimResult
	res.CompletedFlows = len(s.fcts)
	if s.total > 0 {
		res.TransitFraction = float64(s.transit) / float64(s.total)
	}
	if len(s.fcts) > 0 {
		res.MeanFCT = sim.Mean(s.fcts)
		res.MedianFCT = sim.Percentile(s.fcts, 50)
		res.P99FCT = sim.Percentile(s.fcts, 99)
	}
	res.ThroughputBps = s.completedBytes / s.w.Duration
	return res
}

// flushMetrics publishes the run's accumulated counters to the package
// registry (dcn_flowsim_*) and zeroes the accumulators.
func (s *simEngine) flushMetrics() {
	reg := Registry()
	reg.Counter("dcn_flowsim_runs_total").Inc()
	reg.Counter("dcn_flowsim_events_total").Add(s.events)
	reg.Counter("dcn_flowsim_arrivals_total").Add(s.arrivals)
	reg.Counter("dcn_flowsim_completions_total").Add(s.completions)
	reg.Counter("dcn_flowsim_recompute_rounds_total").Add(s.recomputeRounds)
	reg.Counter("dcn_flowsim_pool_hits_total").Add(s.poolHits)
	reg.Counter("dcn_flowsim_pool_misses_total").Add(s.poolMisses)
	s.events, s.arrivals, s.completions = 0, 0, 0
	s.recomputeRounds, s.poolHits, s.poolMisses = 0, 0, 0
}

// Simulate runs the flow-level simulation of the workload on the topology.
func Simulate(t *Topology, w Workload, cfg SimConfig) (SimResult, error) {
	s, err := newSimEngine(t, w, cfg)
	if err != nil {
		return SimResult{}, err
	}
	for s.step() {
	}
	s.flushMetrics()
	return s.result(), nil
}

// choosePath picks the direct path when a trunk exists and is not badly
// overloaded relative to the best two-hop alternative; otherwise the least-
// loaded two-hop path. It returns the transit block and true for a two-hop
// path, or (-1, false) for the direct trunk.
//
//lwlint:hotpath
func (s *simEngine) choosePath(src, dst int) (int, bool) {
	links := s.top.Links
	directScore := math.Inf(1)
	if links[src][dst] > 0 {
		directScore = (s.load[src*s.n+dst] + 1) / float64(links[src][dst])
	}
	bestVia, bestScore := -1, math.Inf(1)
	for k := 0; k < s.cfg.MaxTransit; k++ {
		via := s.rng.Intn(s.n)
		sc, ok := s.transitScore(src, dst, via)
		if !ok {
			continue
		}
		sc *= 1.15 // transit uses twice the fabric capacity; bias to direct
		if sc < bestScore {
			bestScore, bestVia = sc, via
		}
	}
	if bestVia >= 0 && bestScore < directScore {
		return bestVia, true
	}
	if links[src][dst] == 0 {
		if bestVia >= 0 {
			return bestVia, true
		}
		// The random probes all missed. A direct "path" here would ride a
		// zero-capacity trunk and never drain, so fall back to a
		// deterministic scan for the least-loaded transit; the demandPairs
		// routability validation guarantees one exists.
		for via := 0; via < s.n; via++ {
			sc, ok := s.transitScore(src, dst, via)
			if !ok {
				continue
			}
			if sc < bestScore {
				bestScore, bestVia = sc, via
			}
		}
		if bestVia >= 0 {
			return bestVia, true
		}
	}
	return -1, false
}

// transitScore scores the two-hop path src→via→dst as the worse of its two
// per-hop load ratios (lower is better). ok is false when via is unusable:
// it coincides with an endpoint or lacks a trunk on either hop.
//
//lwlint:hotpath
func (s *simEngine) transitScore(src, dst, via int) (score float64, ok bool) {
	links := s.top.Links
	if via == src || via == dst || links[src][via] == 0 || links[via][dst] == 0 {
		return 0, false
	}
	s1 := (s.load[src*s.n+via] + 1) / float64(links[src][via])
	s2 := (s.load[via*s.n+dst] + 1) / float64(links[via][dst])
	return math.Max(s1, s2), true
}

// routable reports whether the pair (i, j) has a direct trunk or at least
// one two-hop transit path on t.
func routable(t *Topology, i, j int) bool {
	if t.Links[i][j] > 0 {
		return true
	}
	for v := 0; v < t.Blocks; v++ {
		if v != i && v != j && t.Links[i][v] > 0 && t.Links[v][j] > 0 {
			return true
		}
	}
	return false
}

// maxMinRates computes max-min fair rates by progressive filling. active
// is iterated in order, and link states are visited in first-touch order,
// so bottleneck tie-breaking and the floating-point accumulation order —
// and therefore the computed rates — are identical run-to-run and to the
// historical map-based implementation. Epoch stamping means only links the
// active flows touch are (re)initialized, and the per-link unfrozen-flow
// counts are maintained incrementally as flows freeze instead of being
// recounted every bottleneck round; the recompute allocates nothing once
// the per-link flow lists have reached their high-water length.
//
//lwlint:hotpath
func (s *simEngine) maxMinRates() {
	s.epoch++
	s.order = s.order[:0]
	for _, f := range s.active {
		f.rate = -1
		for h := 0; h < f.nhops; h++ {
			li := f.hopIdx[h]
			if s.linkEpoch[li] != s.epoch {
				s.linkEpoch[li] = s.epoch
				s.linkCapacity[li] = s.linkCapBase[li]
				s.linkFlows[li] = s.linkFlows[li][:0]
				s.linkUnfrozen[li] = 0
				s.order = append(s.order, li)
			}
			s.linkFlows[li] = append(s.linkFlows[li], f)
			s.linkUnfrozen[li]++
		}
	}
	unfrozen := len(s.active)
	for unfrozen > 0 {
		s.recomputeRounds++
		// Find the bottleneck link: minimum fair share among links with
		// unfrozen flows, first-touch order breaking ties.
		bottleneck := -1
		share := math.Inf(1)
		for _, li := range s.order {
			c := s.linkUnfrozen[li]
			if c == 0 {
				continue
			}
			if sh := s.linkCapacity[li] / float64(c); sh < share {
				share, bottleneck = sh, li
			}
		}
		if bottleneck < 0 {
			// Remaining flows are unconstrained (shouldn't happen: every
			// flow crosses at least one link); cap at trunk rate.
			for _, f := range s.active {
				if f.rate < 0 {
					f.rate = s.trunk
					unfrozen--
				}
			}
			break
		}
		for _, f := range s.linkFlows[bottleneck] {
			if f.rate >= 0 {
				continue
			}
			// A single flow rides one physical trunk (ECMP hashing), so its
			// rate is capped at the trunk rate even on multi-trunk pairs.
			rate := share
			if rate > s.trunk {
				rate = s.trunk
			}
			f.rate = rate
			unfrozen--
			for h := 0; h < f.nhops; h++ {
				li := f.hopIdx[h]
				s.linkCapacity[li] -= rate
				if s.linkCapacity[li] < 0 {
					s.linkCapacity[li] = 0
				}
				s.linkUnfrozen[li]--
			}
		}
	}
}
