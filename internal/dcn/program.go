package dcn

import (
	"errors"
	"fmt"
	"sort"

	"lightwave/internal/ocs"
)

// Fabric binds the logical DCN topology to physical OCS hardware: block b
// owns north port b and south port b on every switch, and each matching of
// the topology decomposition is realized as a set of duplex circuits on one
// switch (a bidi strand carries both directions of a trunk, §3.1). Program
// applies a new topology *incrementally*: trunks present in both the old
// and new topology keep their circuits — the §2.3 requirement of keeping
// connections undisturbed while changing others, which is what makes
// in-service topology engineering possible.
type Fabric struct {
	Blocks   int
	Switches []*ocs.Switch
}

// Errors returned by fabric programming.
var (
	ErrTooFewSwitches = errors.New("dcn: topology needs more OCSes than the fabric has")
	ErrBlocksRadix    = errors.New("dcn: block count exceeds OCS radix")
)

// NewFabric builds a physical fabric of numSwitches OCSes for the given
// block count.
func NewFabric(blocks, numSwitches int, cfg ocs.Config) (*Fabric, error) {
	if blocks > cfg.Radix {
		return nil, fmt.Errorf("%w: %d blocks, radix %d", ErrBlocksRadix, blocks, cfg.Radix)
	}
	f := &Fabric{Blocks: blocks}
	for i := 0; i < numSwitches; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9E37
		sw, err := ocs.New(c)
		if err != nil {
			return nil, err
		}
		f.Switches = append(f.Switches, sw)
	}
	return f, nil
}

// ProgramResult reports what a (re)programming pass did.
type ProgramResult struct {
	// Established and TornDown count circuit changes; Kept counts trunks
	// that survived untouched.
	Established, TornDown, Kept int
}

// Program realizes the topology on the fabric incrementally: circuits
// serving trunks that exist in both the current and the desired topology
// are kept untouched; stale circuits are torn down; missing trunks are
// placed on switches where both blocks' strands are free. Each block has
// one strand per OCS, so a block may appear in at most one circuit per
// switch (the matching constraint).
func (f *Fabric) Program(t *Topology) (ProgramResult, error) {
	var res ProgramResult
	// remaining[a][b] = trunks of the target topology not yet matched to
	// an existing circuit.
	remaining := make([][]int, t.Blocks)
	for i := range remaining {
		remaining[i] = append([]int(nil), t.Links[i]...)
	}

	// Pass 1: classify existing circuits. Still-wanted circuits become
	// pre-colored edges of the assignment (their switch is their color);
	// stale circuits are torn down immediately.
	assign := newEdgeAssignment(t.Blocks, len(f.Switches))
	for i, sw := range f.Switches {
		for _, c := range sw.Circuits() {
			a, b := int(c.North), int(c.South)
			if a < t.Blocks && b < t.Blocks && remaining[a][b] > 0 {
				remaining[a][b]--
				remaining[b][a]--
				if _, err := assign.addEdge(a, b, i); err != nil {
					return res, err
				}
				continue
			}
			if err := sw.Disconnect(c.North); err != nil {
				return res, err
			}
			res.TornDown++
		}
	}
	// Missing trunks become uncolored edges.
	for a := 0; a < t.Blocks; a++ {
		for b := a + 1; b < t.Blocks; b++ {
			for k := 0; k < remaining[a][b]; k++ {
				if _, err := assign.addEdge(a, b, -1); err != nil {
					return res, err
				}
			}
		}
	}
	if err := assign.colorAll(); err != nil {
		return res, fmt.Errorf("%w: %v", ErrTooFewSwitches, err)
	}

	// Pass 2: diff the colored assignment against the hardware. Kempe
	// repairs may have moved a few surviving trunks to other switches;
	// those count as churn like any other change.
	type edge struct{ a, b int }
	desired := make([]map[edge]int, len(f.Switches))
	for i := range desired {
		desired[i] = make(map[edge]int)
	}
	for e, c := range assign.color {
		a, b := assign.ends[e][0], assign.ends[e][1]
		desired[c][edge{a, b}]++
	}
	for i, sw := range f.Switches {
		// Tear down circuits not desired on this switch anymore.
		for _, c := range sw.Circuits() {
			k := edge{int(c.North), int(c.South)}
			if desired[i][k] > 0 {
				desired[i][k]--
				res.Kept++
				continue
			}
			if err := sw.Disconnect(c.North); err != nil {
				return res, err
			}
			res.TornDown++
		}
		// Establish in sorted (a, b) order: ranging the map directly
		// would randomize the hardware programming sequence run-to-run —
		// and, when a Connect fails mid-program, which circuits exist —
		// breaking replay determinism (the PR 2 bug class, caught by
		// lwlint's maprange analyzer).
		edges := make([]edge, 0, len(desired[i]))
		for k := range desired[i] {
			edges = append(edges, k)
		}
		sort.Slice(edges, func(x, y int) bool {
			if edges[x].a != edges[y].a {
				return edges[x].a < edges[y].a
			}
			return edges[x].b < edges[y].b
		})
		for _, k := range edges {
			for j := 0; j < desired[i][k]; j++ {
				if _, err := sw.Connect(ocs.PortID(k.a), ocs.PortID(k.b)); err != nil {
					return res, err
				}
				res.Established++
			}
		}
	}
	return res, nil
}

// LiveTrunks returns the trunk matrix currently programmed on the
// hardware, for verification against the logical topology.
func (f *Fabric) LiveTrunks() [][]int {
	links := make([][]int, f.Blocks)
	for i := range links {
		links[i] = make([]int, f.Blocks)
	}
	for _, sw := range f.Switches {
		for _, c := range sw.Circuits() {
			a, b := int(c.North), int(c.South)
			if a < f.Blocks && b < f.Blocks {
				links[a][b]++
				links[b][a]++
			}
		}
	}
	return links
}

// Matches reports whether the live hardware state realizes topology t.
func (f *Fabric) Matches(t *Topology) bool {
	live := f.LiveTrunks()
	for i := 0; i < t.Blocks; i++ {
		for j := 0; j < t.Blocks; j++ {
			if live[i][j] != t.Links[i][j] {
				return false
			}
		}
	}
	return true
}
