package dcn

import (
	"testing"
)

func testWorkload(blocks int, loadFactor float64) Workload {
	// Offered load scaled to a fraction of a trunk per pair.
	return Workload{
		Demand:        UniformDemand(blocks, loadFactor*50e9),
		MeanFlowBytes: 2e9,
		Duration:      5,
	}
}

func TestSimulateCompletesFlows(t *testing.T) {
	top, _ := UniformMesh(8, 21)
	res, err := Simulate(top, testWorkload(8, 0.3), DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows < 100 {
		t.Fatalf("only %d flows completed", res.CompletedFlows)
	}
	if res.MeanFCT <= 0 || res.ThroughputBps <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.P99FCT < res.MedianFCT {
		t.Fatal("P99 below median")
	}
}

func TestSimulateDeterministicWithSeed(t *testing.T) {
	top, _ := UniformMesh(6, 15)
	w := testWorkload(6, 0.2)
	a, err := Simulate(top, w, DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(top, w, DefaultSimConfig())
	if a.CompletedFlows != b.CompletedFlows || a.MeanFCT != b.MeanFCT {
		t.Fatal("same seed produced different results")
	}
}

func TestSimulateErrors(t *testing.T) {
	top, _ := UniformMesh(6, 15)
	w := testWorkload(8, 0.2) // mismatched block count
	if _, err := Simulate(top, w, DefaultSimConfig()); err == nil {
		t.Fatal("mismatched workload accepted")
	}
	w2 := testWorkload(6, 0.2)
	w2.MeanFlowBytes = 0
	if _, err := Simulate(top, w2, DefaultSimConfig()); err == nil {
		t.Fatal("zero flow size accepted")
	}
	w3 := testWorkload(6, 0)
	if _, err := Simulate(top, w3, DefaultSimConfig()); err == nil {
		t.Fatal("empty demand accepted")
	}
}

func TestFCTScalesWithLoad(t *testing.T) {
	top, _ := UniformMesh(8, 21)
	light, err := Simulate(top, testWorkload(8, 0.1), DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each pair has 3 trunks, so a per-pair load factor of 2 (two trunks'
	// worth of offered demand) forces real sharing.
	heavy, err := Simulate(top, testWorkload(8, 2.0), DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MeanFCT <= light.MeanFCT {
		t.Fatalf("FCT did not grow with load: %v vs %v", light.MeanFCT, heavy.MeanFCT)
	}
}

func TestLightlyLoadedFCTNearIdeal(t *testing.T) {
	// At very light load a flow should finish near size/trunk-rate.
	top, _ := UniformMesh(8, 21)
	w := testWorkload(8, 0.02)
	res, err := Simulate(top, w, DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	ideal := w.MeanFlowBytes / DefaultSimConfig().TrunkBps
	if res.MeanFCT < ideal*0.5 || res.MeanFCT > ideal*4 {
		t.Fatalf("light-load FCT %v vs ideal %v", res.MeanFCT, ideal)
	}
}

func TestTransitUsedWhenDirectSaturated(t *testing.T) {
	// A single extremely hot pair on a uniform mesh must spill to transit
	// paths.
	blocks := 8
	top, _ := UniformMesh(blocks, 21)
	d := UniformDemand(blocks, 1e8)
	d[0][1] = 400e9 // far above the 3-trunk direct capacity
	w := Workload{Demand: d, MeanFlowBytes: 5e9, Duration: 3}
	res, err := Simulate(top, w, DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TransitFraction == 0 {
		t.Fatal("no transit under direct saturation")
	}
}

// TestDCNTopologyEngineeringGains reproduces the §4.2 summary (from [47]):
// topology engineering on a skewed long-lived traffic matrix improves mean
// flow completion time (paper ≈10%) and achieved throughput (paper ≈30%)
// over a demand-oblivious uniform mesh.
func TestDCNTopologyEngineeringGains(t *testing.T) {
	cmp, err := CompareTopologies(ReferenceExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FCTImprovement < 0.08 {
		t.Errorf("FCT improvement = %.3f, want ≥ 0.08 (paper ≈0.10)", cmp.FCTImprovement)
	}
	if cmp.FCTImprovement > 0.6 {
		t.Errorf("FCT improvement = %.3f implausibly high", cmp.FCTImprovement)
	}
	if cmp.ThroughputGain < 0.20 || cmp.ThroughputGain > 0.45 {
		t.Errorf("throughput gain = %.3f, want ≈0.30", cmp.ThroughputGain)
	}
}

func TestUniformDemandNoEngineeringGain(t *testing.T) {
	// Sanity: with a uniform matrix the engineered topology is (nearly)
	// the uniform mesh, so gains must be small.
	blocks, uplinks := 8, 21
	demand := UniformDemand(blocks, 4e9)
	w := Workload{MeanFlowBytes: 20e9, Duration: 4}
	cmp, err := CompareTopologies(blocks, uplinks, demand, w, DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ThroughputGain > 0.15 || cmp.ThroughputGain < -0.15 {
		t.Fatalf("uniform demand should not show large gains: %+v", cmp)
	}
}

func TestTotalDemand(t *testing.T) {
	d := UniformDemand(4, 2)
	if TotalDemand(d) != 24 {
		t.Fatalf("TotalDemand = %v", TotalDemand(d))
	}
}

func TestSkewedDemandProperties(t *testing.T) {
	d := SkewedDemand(10, 1e9, 4, 10, 3)
	hot := 0
	for i := range d {
		if d[i][i] != 0 {
			t.Fatal("self demand")
		}
		for j := range d[i] {
			if i != j && d[i][j] > 1e9 {
				hot++
			}
		}
	}
	if hot == 0 {
		t.Fatal("no hot pairs generated")
	}
}
