package dcn

import (
	"errors"
	"testing"
)

func TestUniformMesh(t *testing.T) {
	top, err := UniformMesh(8, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// 21 uplinks over 7 peers = 3 each, no remainder.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			if top.Links[i][j] != 3 {
				t.Fatalf("links[%d][%d] = %d", i, j, top.Links[i][j])
			}
		}
	}
}

func TestUniformMeshTooFewUplinks(t *testing.T) {
	if _, err := UniformMesh(8, 3); !errors.Is(err, ErrTooFewUplinks) {
		t.Fatalf("err = %v", err)
	}
}

func TestEngineerFollowsDemand(t *testing.T) {
	blocks, uplinks := 8, 28
	d := UniformDemand(blocks, 1)
	d[0][1], d[1][0] = 50, 50 // hot pair
	top, err := Engineer(blocks, uplinks, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hot pair must receive strictly more trunks than a cold pair.
	if top.Links[0][1] <= top.Links[2][3] {
		t.Fatalf("hot pair %d trunks, cold pair %d", top.Links[0][1], top.Links[2][3])
	}
	// Reachability: every pair keeps at least one trunk.
	for i := 0; i < blocks; i++ {
		for j := 0; j < blocks; j++ {
			if i != j && top.Links[i][j] < 1 {
				t.Fatalf("pair %d-%d disconnected", i, j)
			}
		}
	}
}

func TestEngineerUsesFullBudget(t *testing.T) {
	blocks, uplinks := 6, 20
	top, err := Engineer(blocks, uplinks, UniformDemand(blocks, 1))
	if err != nil {
		t.Fatal(err)
	}
	// With symmetric demand the greedy fill should exhaust (or nearly
	// exhaust) every block's ports.
	for i := 0; i < blocks; i++ {
		if top.Degree(i) < uplinks-1 {
			t.Fatalf("block %d degree %d of %d", i, top.Degree(i), uplinks)
		}
	}
}

func TestEngineerErrors(t *testing.T) {
	if _, err := Engineer(8, 3, UniformDemand(8, 1)); !errors.Is(err, ErrTooFewUplinks) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Engineer(8, 20, UniformDemand(7, 1)); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("err = %v", err)
	}
	bad := UniformDemand(8, 1)
	bad[0][1] = -1
	if _, err := Engineer(8, 20, bad); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	top, _ := UniformMesh(4, 6)
	top.Links[0][0] = 1
	if top.Validate() == nil {
		t.Fatal("self-link accepted")
	}
	top.Links[0][0] = 0
	top.Links[0][1] = 99
	if top.Validate() == nil {
		t.Fatal("asymmetry accepted")
	}
}

func TestDecomposeCoversAllTrunks(t *testing.T) {
	d := SkewedDemand(8, 1e9, 3, 8, 42)
	top, err := Engineer(8, 16, d)
	if err != nil {
		t.Fatal(err)
	}
	matchings := top.Decompose()
	// Rebuild the link matrix from the matchings.
	rebuilt := make([][]int, top.Blocks)
	for i := range rebuilt {
		rebuilt[i] = make([]int, top.Blocks)
	}
	for _, m := range matchings {
		seen := make(map[int]bool)
		for _, e := range m {
			if seen[e[0]] || seen[e[1]] {
				t.Fatal("block appears twice in one matching")
			}
			seen[e[0]], seen[e[1]] = true, true
			rebuilt[e[0]][e[1]]++
			rebuilt[e[1]][e[0]]++
		}
	}
	for i := range rebuilt {
		for j := range rebuilt[i] {
			if rebuilt[i][j] != top.Links[i][j] {
				t.Fatalf("trunk %d-%d: decomposed %d, want %d", i, j, rebuilt[i][j], top.Links[i][j])
			}
		}
	}
	// The matching count is bounded by... it should not wildly exceed the
	// maximum degree.
	maxDeg := 0
	for i := 0; i < top.Blocks; i++ {
		if d := top.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	if len(matchings) > 2*maxDeg {
		t.Fatalf("%d matchings for max degree %d", len(matchings), maxDeg)
	}
}

func TestOCSCountPositive(t *testing.T) {
	top, _ := UniformMesh(8, 14)
	if top.OCSCount() <= 0 {
		t.Fatal("no OCSes for a nonempty topology")
	}
}
