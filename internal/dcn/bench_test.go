package dcn

import (
	"testing"

	"lightwave/internal/ocs"
)

func BenchmarkEngineer(b *testing.B) {
	demand := SkewedDemand(16, 1e9, 8, 50, 1)
	for i := 0; i < b.N; i++ {
		if _, err := Engineer(16, 40, demand); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompose(b *testing.B) {
	top, err := Engineer(16, 40, SkewedDemand(16, 1e9, 8, 50, 1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if got := top.Decompose(); len(got) == 0 {
			b.Fatal("no matchings")
		}
	}
}

func BenchmarkProgramFabric(b *testing.B) {
	top, err := Engineer(12, 22, SkewedDemand(12, 1e9, 6, 40, 2))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := NewFabric(12, 30, ocs.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := f.Program(top); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngine builds a warmed-up simulator engine on the reference
// experiment's FCT-load workload: the same per-event work that dominates
// BenchmarkDCNTopologyEngineering, with an effectively unbounded horizon so
// the event loop never terminates inside the timed region.
func benchEngine(b *testing.B) *simEngine {
	b.Helper()
	blocks, uplinks, demand, w, cfg := ReferenceExperiment()
	top, err := UniformMesh(blocks, uplinks)
	if err != nil {
		b.Fatal(err)
	}
	w.Demand = scaleDemand(demand, blocks, uplinks, cfg.TrunkBps, 0.7)
	w.Duration = 1e12
	s, err := newSimEngine(top, w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the pools and per-link scratch to their steady-state sizes so
	// the timed region measures the allocation-free regime.
	for i := 0; i < 2000; i++ {
		if !s.step() {
			b.Fatal("horizon exhausted during warm-up")
		}
	}
	return s
}

// BenchmarkFlowSimEvents measures the per-event cost of the flow
// simulator's hot loop (arrival/completion handling plus the max-min
// recompute) in steady state. allocs/op must stay at ~0: the event loop's
// contract is that it does not allocate once warm.
func BenchmarkFlowSimEvents(b *testing.B) {
	s := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.step() {
			b.Fatal("horizon exhausted")
		}
	}
}

// BenchmarkMaxMinRates measures one full max-min fair-share recompute over
// the steady-state active flow population. It must report 0 allocs/op:
// the epoch-stamped link arrays make the recompute allocation-free.
func BenchmarkMaxMinRates(b *testing.B) {
	s := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.maxMinRates()
	}
}

func BenchmarkFluidThroughput(b *testing.B) {
	top, _ := UniformMesh(12, 33)
	demand := SkewedDemand(12, 0.5e9, 12, 300, 7)
	for i := 0; i < b.N; i++ {
		if got := AchievedThroughput(top, demand, 50e9); got <= 0 {
			b.Fatal("no throughput")
		}
	}
}
