package dcn

import (
	"testing"

	"lightwave/internal/ocs"
)

func BenchmarkEngineer(b *testing.B) {
	demand := SkewedDemand(16, 1e9, 8, 50, 1)
	for i := 0; i < b.N; i++ {
		if _, err := Engineer(16, 40, demand); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompose(b *testing.B) {
	top, err := Engineer(16, 40, SkewedDemand(16, 1e9, 8, 50, 1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if got := top.Decompose(); len(got) == 0 {
			b.Fatal("no matchings")
		}
	}
}

func BenchmarkProgramFabric(b *testing.B) {
	top, err := Engineer(12, 22, SkewedDemand(12, 1e9, 6, 40, 2))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := NewFabric(12, 30, ocs.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := f.Program(top); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFluidThroughput(b *testing.B) {
	top, _ := UniformMesh(12, 33)
	demand := SkewedDemand(12, 0.5e9, 12, 300, 7)
	for i := 0; i < b.N; i++ {
		if got := AchievedThroughput(top, demand, 50e9); got <= 0 {
			b.Fatal("no throughput")
		}
	}
}
