package dcn

// Fluid throughput solver: given a (possibly saturating) long-lived demand
// matrix, allocate bandwidth on the topology with direct-path-first routing
// and two-hop transit spill, and return the total achieved throughput.
// Transit consumes capacity on two links per byte, which is the fundamental
// tax a demand-oblivious uniform mesh pays on hot pairs and a demand-aware
// engineered topology largely avoids.

// AchievedThroughput returns the total delivered bytes/s for the demand
// matrix on topology t with the given per-trunk rate.
func AchievedThroughput(t *Topology, demand [][]float64, trunkBps float64) float64 {
	return AchievedThroughputRates(t, demand, func(i, j int) float64 { return trunkBps })
}

// AchievedThroughputRates generalizes AchievedThroughput to per-pair trunk
// rates (heterogeneous fabrics where trunks between different-generation
// blocks run at their negotiated rate). chunkRef sets the water-filling
// granularity from the fastest trunk.
func AchievedThroughputRates(t *Topology, demand [][]float64, trunkBps func(i, j int) float64) float64 {
	n := t.Blocks
	// Residual capacity per directed link.
	capLeft := make([][]float64, n)
	chunkRef := 0.0
	for i := range capLeft {
		capLeft[i] = make([]float64, n)
		for j := range capLeft[i] {
			r := trunkBps(i, j)
			capLeft[i][j] = float64(t.Links[i][j]) * r
			if r > chunkRef {
				chunkRef = r
			}
		}
	}
	achieved := 0.0
	residual := make([][]float64, n)
	for i := range residual {
		residual[i] = make([]float64, n)
	}

	// Phase 1: direct paths. Trunks between a pair serve only that pair.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || demand[i][j] <= 0 {
				continue
			}
			d := demand[i][j]
			direct := capLeft[i][j]
			take := d
			if take > direct {
				take = direct
			}
			capLeft[i][j] -= take
			achieved += take
			residual[i][j] = d - take
		}
	}

	// Phase 2: two-hop transit spill, allocated in rounds of small chunks
	// so contended capacity is shared approximately max-min fairly.
	chunk := chunkRef / 8
	for progress := true; progress; {
		progress = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if residual[i][j] <= 0 {
					continue
				}
				// Best transit: maximize the bottleneck residual capacity.
				bestK, bestCap := -1, 0.0
				for k := 0; k < n; k++ {
					if k == i || k == j {
						continue
					}
					c := capLeft[i][k]
					if capLeft[k][j] < c {
						c = capLeft[k][j]
					}
					if c > bestCap {
						bestCap, bestK = c, k
					}
				}
				if bestK < 0 || bestCap <= 0 {
					continue
				}
				take := chunk
				if take > residual[i][j] {
					take = residual[i][j]
				}
				if take > bestCap {
					take = bestCap
				}
				residual[i][j] -= take
				capLeft[i][bestK] -= take
				capLeft[bestK][j] -= take
				achieved += take
				progress = true
			}
		}
	}
	return achieved
}
