// Package dcn models the spine-free datacenter-network use case of §2.1 and
// the evaluation summarized in §4.2 (from Poutievski et al. [47]):
// aggregation blocks directly interconnected through OCSes, a topology-
// engineering solver that allocates inter-block trunks to match a long-lived
// traffic matrix, the decomposition of the resulting logical topology into
// per-OCS circuit permutations, and a flow-level max-min-fair simulator that
// measures flow completion time and throughput against a uniform mesh.
package dcn

import (
	"errors"
	"fmt"
	"math"

	"lightwave/internal/topo"
)

// Topology is the logical inter-block topology: Links[i][j] direct trunks
// from block i to block j. Trunks are counted per direction pair (a trunk
// is one bidi fiber: capacity both ways); the matrix is symmetric with a
// zero diagonal.
type Topology struct {
	Blocks int
	// UplinksPerBlock is each block's port budget.
	UplinksPerBlock int
	Links           [][]int
}

// Errors returned by topology construction.
var (
	ErrTooFewUplinks = errors.New("dcn: uplinks per block below blocks-1")
	ErrBadDemand     = errors.New("dcn: invalid demand matrix")
)

func newTopology(blocks, uplinks int) *Topology {
	t := &Topology{Blocks: blocks, UplinksPerBlock: uplinks, Links: make([][]int, blocks)}
	for i := range t.Links {
		t.Links[i] = make([]int, blocks)
	}
	return t
}

// Degree returns the number of trunks block i has allocated.
func (t *Topology) Degree(i int) int {
	d := 0
	for _, n := range t.Links[i] {
		d += n
	}
	return d
}

// Validate checks symmetry, zero diagonal, and per-block budgets.
func (t *Topology) Validate() error {
	for i := 0; i < t.Blocks; i++ {
		if t.Links[i][i] != 0 {
			return fmt.Errorf("dcn: self-links at block %d", i)
		}
		for j := 0; j < t.Blocks; j++ {
			if t.Links[i][j] != t.Links[j][i] {
				return fmt.Errorf("dcn: asymmetric links %d-%d", i, j)
			}
			if t.Links[i][j] < 0 {
				return fmt.Errorf("dcn: negative links %d-%d", i, j)
			}
		}
		if t.Degree(i) > t.UplinksPerBlock {
			return fmt.Errorf("dcn: block %d degree %d exceeds budget %d", i, t.Degree(i), t.UplinksPerBlock)
		}
	}
	return nil
}

// UniformMesh spreads every block's uplinks evenly across all other blocks
// — the demand-oblivious baseline of [47].
func UniformMesh(blocks, uplinks int) (*Topology, error) {
	if uplinks < blocks-1 {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewUplinks, uplinks, blocks-1)
	}
	t := newTopology(blocks, uplinks)
	per := uplinks / (blocks - 1)
	for i := 0; i < blocks; i++ {
		for j := i + 1; j < blocks; j++ {
			t.Links[i][j] = per
			t.Links[j][i] = per
		}
	}
	// Distribute the remainder round-robin while budgets allow.
	rem := uplinks - per*(blocks-1)
	for r := 0; r < rem; r++ {
		for i := 0; i < blocks; i++ {
			j := (i + 1 + r) % blocks
			if j == i {
				continue
			}
			if t.Degree(i) < uplinks && t.Degree(j) < uplinks {
				t.Links[i][j]++
				t.Links[j][i]++
			}
		}
	}
	return t, nil
}

// Engineer builds a demand-aware topology: every pair first gets one trunk
// for reachability, then remaining port pairs go greedily to the pair with
// the highest demand per allocated trunk — the topology-engineering step
// that "allows the optimization of inter-AB bandwidth when there is an
// increase in long-lived traffic demand between a particular set of ABs"
// (§2.1).
func Engineer(blocks, uplinks int, demand [][]float64) (*Topology, error) {
	if uplinks < blocks-1 {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewUplinks, uplinks, blocks-1)
	}
	if len(demand) != blocks {
		return nil, ErrBadDemand
	}
	for i := range demand {
		if len(demand[i]) != blocks {
			return nil, ErrBadDemand
		}
		for j := range demand[i] {
			// A NaN cell would poison every greedy score comparison (NaN
			// > best is always false) and silently degrade the fill to the
			// uniform baseline; an Inf cell would starve every other pair.
			if d := demand[i][j]; math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
				return nil, fmt.Errorf("%w: demand[%d][%d] = %g", ErrBadDemand, i, j, d)
			}
		}
	}
	t := newTopology(blocks, uplinks)
	for i := 0; i < blocks; i++ {
		for j := 0; j < blocks; j++ {
			if i != j {
				t.Links[i][j] = 1
			}
		}
	}
	// Symmetrized demand drives the greedy fill.
	sym := make([][]float64, blocks)
	for i := range sym {
		sym[i] = make([]float64, blocks)
		for j := range sym[i] {
			sym[i][j] = demand[i][j] + demand[j][i]
		}
	}
	for {
		bi, bj, best := -1, -1, 0.0
		for i := 0; i < blocks; i++ {
			if t.Degree(i) >= uplinks {
				continue
			}
			for j := i + 1; j < blocks; j++ {
				if t.Degree(j) >= uplinks {
					continue
				}
				score := sym[i][j] / float64(t.Links[i][j])
				if score > best {
					best, bi, bj = score, i, j
				}
			}
		}
		if bi < 0 || best == 0 {
			break
		}
		t.Links[bi][bj]++
		t.Links[bj][bi]++
	}
	return t, nil
}

// Matching is one OCS-realizable partial permutation: pairs of blocks
// connected by this OCS's circuits.
type Matching [][2]int

// Decompose splits the topology into per-OCS matchings: each trunk becomes
// one circuit on some OCS, and on any given OCS each block appears at most
// once (a block has one port per OCS). It is the Birkhoff-von-Neumann-style
// step that maps the logical topology onto physical switches. The number
// of matchings needed never exceeds the maximum block degree (≤ uplinks).
func (t *Topology) Decompose() []Matching {
	remaining := make([][]int, t.Blocks)
	for i := range remaining {
		remaining[i] = append([]int(nil), t.Links[i]...)
	}
	var out []Matching
	for {
		var m Matching
		used := make([]bool, t.Blocks)
		// Greedy maximal matching over remaining multiplicities, heaviest
		// edges first to drain high-multiplicity trunks evenly.
		for {
			bi, bj, best := -1, -1, 0
			for i := 0; i < t.Blocks; i++ {
				if used[i] {
					continue
				}
				for j := i + 1; j < t.Blocks; j++ {
					if used[j] || remaining[i][j] == 0 {
						continue
					}
					if remaining[i][j] > best {
						best, bi, bj = remaining[i][j], i, j
					}
				}
			}
			if bi < 0 {
				break
			}
			used[bi], used[bj] = true, true
			remaining[bi][bj]--
			remaining[bj][bi]--
			m = append(m, [2]int{bi, bj})
		}
		if len(m) == 0 {
			break
		}
		out = append(out, m)
	}
	return out
}

// OCSCount returns how many Palomar OCSes realize the topology when each
// matching maps to one switch and each block pair on a matching consumes a
// duplex port pair.
func (t *Topology) OCSCount() int {
	n := len(t.Decompose())
	// Each OCS can host several matchings if the block count is far below
	// its usable radix; production practice dedicates matchings to
	// switches for failure isolation, which we follow.
	_ = topo.NumOCS
	return n
}
