package dcn

import (
	"testing"
	"testing/quick"

	"lightwave/internal/sim"
)

// validColoring checks the matching property: no block carries two edges of
// the same color.
func validColoring(a *edgeAssignment) bool {
	seen := map[[2]int]bool{} // (block, color)
	for e, c := range a.color {
		if c < 0 || c >= a.colors {
			return false
		}
		for _, v := range a.ends[e] {
			k := [2]int{v, c}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
	}
	return true
}

func TestColoringSimpleTriangle(t *testing.T) {
	// A triangle needs 3 colors.
	a := newEdgeAssignment(3, 3)
	mustAdd := func(u, v int) {
		if _, err := a.addEdge(u, v, -1); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1)
	mustAdd(1, 2)
	mustAdd(0, 2)
	if err := a.colorAll(); err != nil {
		t.Fatal(err)
	}
	if !validColoring(a) {
		t.Fatal("invalid coloring")
	}
}

func TestColoringRespectsPrecolored(t *testing.T) {
	a := newEdgeAssignment(4, 4)
	if _, err := a.addEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.addEdge(0, 2, -1); err != nil {
		t.Fatal(err)
	}
	if err := a.colorAll(); err != nil {
		t.Fatal(err)
	}
	if !validColoring(a) {
		t.Fatal("invalid coloring")
	}
}

func TestColoringPrecoloredConflictRejected(t *testing.T) {
	a := newEdgeAssignment(4, 4)
	if _, err := a.addEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.addEdge(0, 2, 2); err == nil {
		t.Fatal("conflicting pre-color accepted")
	}
}

func TestColoringUniformMesh(t *testing.T) {
	// A uniform mesh of degree Δ must color into Δ+2 switches.
	top, err := UniformMesh(8, 21)
	if err != nil {
		t.Fatal(err)
	}
	a := newEdgeAssignment(8, 23)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			for k := 0; k < top.Links[i][j]; k++ {
				if _, err := a.addEdge(i, j, -1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := a.colorAll(); err != nil {
		t.Fatal(err)
	}
	if !validColoring(a) {
		t.Fatal("invalid coloring")
	}
}

func TestColoringRandomEngineeredTopologies(t *testing.T) {
	// Property: any engineered topology with per-block degree ≤ U colors
	// into U+4 switches (the theoretical chromatic index can exceed U+1
	// for odd block counts and parallel trunks; operators keep slack).
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		blocks := 6 + r.Intn(8)
		uplinks := blocks - 1 + r.Intn(16)
		demand := SkewedDemand(blocks, 1e9, 1+r.Intn(6), 5+40*r.Float64(), seed)
		top, err := Engineer(blocks, uplinks, demand)
		if err != nil {
			return false
		}
		a := newEdgeAssignment(blocks, uplinks+4)
		for i := 0; i < blocks; i++ {
			for j := i + 1; j < blocks; j++ {
				for k := 0; k < top.Links[i][j]; k++ {
					if _, err := a.addEdge(i, j, -1); err != nil {
						return false
					}
				}
			}
		}
		if err := a.colorAll(); err != nil {
			return false
		}
		return validColoring(a)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestColoringDegreeOverflow(t *testing.T) {
	// Degree above the color count is impossible.
	a := newEdgeAssignment(3, 2)
	for k := 0; k < 3; k++ {
		if _, err := a.addEdge(0, 1, -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.colorAll(); err == nil {
		t.Fatal("over-degree trunk set colored")
	}
}

func TestKempeFreeOnFreeColor(t *testing.T) {
	a := newEdgeAssignment(4, 3)
	if !a.kempeFree(0, 1, 2) {
		t.Fatal("free color reported as busy")
	}
}
