package dcn

import (
	"errors"
	"testing"

	"lightwave/internal/optics"
)

func gens(t *testing.T, names ...string) []optics.Generation {
	t.Helper()
	out := make([]optics.Generation, len(names))
	for i, n := range names {
		g, err := optics.GenerationByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = g
	}
	return out
}

func TestHeteroTrunkRateNegotiation(t *testing.T) {
	top, _ := UniformMesh(3, 4)
	h, err := NewHeteroFabric(top, gens(t, "100G-CWDM4", "2x400G-bidi-CWDM4", "2x400G-bidi-CWDM4"))
	if err != nil {
		t.Fatal(err)
	}
	// Old↔new interops at 25G/lane × 4 = 100G.
	r, err := h.TrunkRateBps(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 100e9/8 {
		t.Fatalf("old-new rate = %v", r)
	}
	// New↔new runs at 100G/lane × 4 = 400G.
	r, err = h.TrunkRateBps(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r != 400e9/8 {
		t.Fatalf("new-new rate = %v", r)
	}
}

func TestHeteroGenCountValidation(t *testing.T) {
	top, _ := UniformMesh(4, 6)
	if _, err := NewHeteroFabric(top, gens(t, "100G-CWDM4")); !errors.Is(err, ErrGenCount) {
		t.Fatalf("err = %v", err)
	}
}

func TestTechRefreshMonotoneCapacity(t *testing.T) {
	// §2.1: each upgraded block raises fabric capacity; interop means no
	// step ever loses capacity.
	old, _ := optics.GenerationByName("100G-CWDM4")
	neu, _ := optics.GenerationByName("2x400G-bidi-CWDM4")
	steps, err := TechRefresh(8, 14, old, neu, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 9 {
		t.Fatalf("%d steps", len(steps))
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].CapacityBps < steps[i-1].CapacityBps {
			t.Fatalf("capacity fell at step %d: %v -> %v",
				i, steps[i-1].CapacityBps, steps[i].CapacityBps)
		}
	}
	// Full upgrade quadruples capacity (25G -> 100G lanes).
	ratio := steps[8].CapacityBps / steps[0].CapacityBps
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("full-refresh capacity ratio = %v, want 4", ratio)
	}
}

func TestTechRefreshDeliveryNeverDrops(t *testing.T) {
	old, _ := optics.GenerationByName("100G-CWDM4")
	neu, _ := optics.GenerationByName("2x400G-bidi-CWDM4")
	// Saturating demand: twice the all-legacy fabric's capacity, so each
	// upgrade step visibly raises delivery.
	steps, err := TechRefresh(8, 14, old, neu, 50e9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].AchievedBps < steps[i-1].AchievedBps*0.999 {
			t.Fatalf("delivery fell at step %d: %v -> %v",
				i, steps[i-1].AchievedBps, steps[i].AchievedBps)
		}
	}
	// Under saturating demand, delivered throughput must grow materially
	// across the refresh.
	if steps[8].AchievedBps <= steps[0].AchievedBps*1.5 {
		t.Fatalf("refresh gained too little: %v -> %v",
			steps[0].AchievedBps, steps[8].AchievedBps)
	}
}

func TestHeteroAchievedCapsAtDemand(t *testing.T) {
	top, _ := UniformMesh(4, 6)
	h, _ := NewHeteroFabric(top, gens(t,
		"2x400G-bidi-CWDM4", "2x400G-bidi-CWDM4", "2x400G-bidi-CWDM4", "2x400G-bidi-CWDM4"))
	demand := UniformDemand(4, 1e9) // far below capacity
	got := h.AchievedThroughput(demand)
	want := TotalDemand(demand)
	if got > want*1.0001 || got < want*0.999 {
		t.Fatalf("achieved %v, offered %v", got, want)
	}
}
