package dcn

import (
	"fmt"
	"math"

	"lightwave/internal/par"
	"lightwave/internal/sim"
)

// pairRate is one demanded (src, dst) block pair and its flow arrival rate
// (demand over mean flow size, in flows/s).
type pairRate struct {
	i, j int
	rate float64
}

// demandPairs extracts the demanded block pairs from the workload,
// validating the demand matrix as it goes: rows must match the topology,
// entries must be finite and non-negative, at least one pair must carry
// demand, and every demanded pair must have a usable path — otherwise its
// flows would be assigned a zero-capacity direct hop and never drain.
func demandPairs(t *Topology, w Workload) ([]pairRate, error) {
	n := t.Blocks
	var pairs []pairRate
	for i := 0; i < n; i++ {
		if len(w.Demand[i]) != n {
			return nil, fmt.Errorf("%w: demand row %d has %d entries, topology %d", ErrMismatch, i, len(w.Demand[i]), n)
		}
		for j := 0; j < n; j++ {
			d := w.Demand[i][j]
			if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
				return nil, fmt.Errorf("%w: demand[%d][%d] = %g", ErrDegenerate, i, j, d)
			}
			if i != j && d > 0 {
				if !routable(t, i, j) {
					return nil, fmt.Errorf("%w: demand on pair (%d,%d) with no direct trunk or two-hop path", ErrDegenerate, i, j)
				}
				pairs = append(pairs, pairRate{i: i, j: j, rate: d / w.MeanFlowBytes})
			}
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%w: empty demand", ErrDegenerate)
	}
	return pairs, nil
}

// SkewedDemand generates the long-lived, skewed traffic matrix the DCN
// topology-engineering evaluation uses: a uniform background plus a few hot
// block pairs carrying a multiple of the background rate — the "increase in
// long-lived traffic demand between a particular set of ABs" of §2.1.
func SkewedDemand(blocks int, baseBps float64, hotPairs int, hotFactor float64, seed uint64) [][]float64 {
	rng := sim.NewRand(seed)
	d := make([][]float64, blocks)
	for i := range d {
		d[i] = make([]float64, blocks)
		for j := range d[i] {
			if i != j {
				d[i][j] = baseBps
			}
		}
	}
	for h := 0; h < hotPairs; h++ {
		i := rng.Intn(blocks)
		j := rng.Intn(blocks)
		for j == i {
			j = rng.Intn(blocks)
		}
		d[i][j] = baseBps * hotFactor
		d[j][i] = baseBps * hotFactor
	}
	return d
}

// UniformDemand generates an all-pairs-equal traffic matrix.
func UniformDemand(blocks int, bps float64) [][]float64 {
	d := make([][]float64, blocks)
	for i := range d {
		d[i] = make([]float64, blocks)
		for j := range d[i] {
			if i != j {
				d[i][j] = bps
			}
		}
	}
	return d
}

// TotalDemand sums the matrix.
func TotalDemand(d [][]float64) float64 {
	t := 0.0
	for i := range d {
		for j := range d[i] {
			t += d[i][j]
		}
	}
	return t
}

// Comparison holds the engineered-vs-uniform results of one experiment.
type Comparison struct {
	Uniform, Engineered SimResult
	// FCTImprovement is 1 − engineered/uniform mean FCT at moderate load
	// (positive is better; paper ≈0.10).
	FCTImprovement float64
	// ThroughputGain is engineered/uniform − 1 in delivered throughput
	// under saturating demand of the same shape (paper ≈0.30).
	ThroughputGain float64
	// UniformBps / EngineeredBps are the saturation throughputs.
	UniformBps, EngineeredBps float64
}

// scaleDemand returns demand scaled so its total equals frac of the
// fabric's total directed capacity.
func scaleDemand(demand [][]float64, blocks, uplinks int, trunkBps, frac float64) [][]float64 {
	capTotal := float64(blocks*uplinks) * trunkBps
	total := TotalDemand(demand)
	if total == 0 {
		return demand
	}
	s := frac * capTotal / total
	out := make([][]float64, len(demand))
	for i := range demand {
		out[i] = make([]float64, len(demand[i]))
		for j := range demand[i] {
			out[i][j] = demand[i][j] * s
		}
	}
	return out
}

// ReferenceExperiment returns the calibrated configuration of the
// engineered-vs-uniform comparison: 12 aggregation blocks of 33 uplinks,
// a strongly skewed long-lived matrix (12 hot pairs at 300× a thin uniform
// background), long flows, and the default load fractions.
func ReferenceExperiment() (blocks, uplinks int, demand [][]float64, w Workload, cfg SimConfig) {
	blocks, uplinks = 12, 33
	demand = SkewedDemand(blocks, 0.5e9, 12, 300, 7)
	w = Workload{MeanFlowBytes: 20e9, Duration: 5}
	cfg = DefaultSimConfig()
	return
}

// CompareTopologies engineers a topology for the demand shape and compares
// it with a uniform mesh — the experiment behind the "10% improvement in
// flow completion time and 30% increase in TCP throughput" summary of §4.2.
// Flow completion time is measured with the flow-level simulator at
// moderate load (35% of fabric capacity); throughput with the fluid solver
// at saturating load (95%), where the uniform mesh pays the 2× transit tax
// on hot pairs.
func CompareTopologies(blocks, uplinks int, demand [][]float64, w Workload, cfg SimConfig) (Comparison, error) {
	var c Comparison
	uni, err := UniformMesh(blocks, uplinks)
	if err != nil {
		return c, err
	}
	eng, err := Engineer(blocks, uplinks, demand)
	if err != nil {
		return c, err
	}

	fctLoad := cfg.FCTLoadFraction
	if fctLoad == 0 {
		fctLoad = 0.7
	}
	satLoad := cfg.SatLoadFraction
	if satLoad == 0 {
		satLoad = 0.95
	}
	// The uniform and engineered halves are independent simulations; run
	// each pair concurrently on the worker pool (each event loop stays
	// sequential, and both halves keep their own seed, so the comparison
	// is identical at any worker count).
	w.Demand = scaleDemand(demand, blocks, uplinks, cfg.TrunkBps, fctLoad)
	tops := []*Topology{uni, eng}
	type simOut struct {
		res SimResult
		err error
	}
	fct := par.Sweep("dcn_compare_fct", tops, func(_ int, top *Topology) simOut {
		r, err := Simulate(top, w, cfg)
		return simOut{res: r, err: err}
	})
	for _, o := range fct {
		if o.err != nil {
			return c, o.err
		}
	}
	c.Uniform, c.Engineered = fct[0].res, fct[1].res
	if c.Uniform.MeanFCT > 0 {
		c.FCTImprovement = 1 - c.Engineered.MeanFCT/c.Uniform.MeanFCT
	}

	sat := scaleDemand(demand, blocks, uplinks, cfg.TrunkBps, satLoad)
	tps := par.Sweep("dcn_compare_sat", tops, func(_ int, top *Topology) float64 {
		return AchievedThroughput(top, sat, cfg.TrunkBps)
	})
	c.UniformBps, c.EngineeredBps = tps[0], tps[1]
	if c.UniformBps > 0 {
		c.ThroughputGain = c.EngineeredBps/c.UniformBps - 1
	}
	return c, nil
}
