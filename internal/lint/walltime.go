package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// wallClockFuncs are the package-time entry points that read or wait on
// the wall clock. time.Duration arithmetic and type references stay
// legal — only acquiring "now" or scheduling real-time callbacks breaks
// virtual-time determinism.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// AnalyzerWalltime enforces the virtual-time contract: deterministic
// packages advance time only through explicit simulated clocks (event
// calendars, epoch counters), never the wall clock, so replays are exact
// and tests cannot flake on scheduling. Files declared in
// Config.WallClockFiles are the sanctioned wall-clock runners that
// bridge the deterministic core to real daemons.
var AnalyzerWalltime = &Analyzer{
	Name: "walltime",
	Doc: "deterministic packages must not read or wait on the wall clock " +
		"(time.Now/Since/Until/Sleep/After/AfterFunc/Tick/NewTimer/NewTicker) " +
		"outside the declared wall-clock runner files",
	Run: runWalltime,
}

func runWalltime(p *Pass) {
	if !p.Cfg.IsDeterministic(p.ImportPath) {
		return
	}
	exempt := make(map[string]bool, len(p.Cfg.WallClockFiles))
	for _, f := range p.Cfg.WallClockFiles {
		exempt[filepath.ToSlash(f)] = true
	}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if isExemptFile(name, exempt) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if p.PkgNameOf(sel) != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			// Only flag the real package function, not a method that
			// happens to share a name on a local type.
			if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			p.Reportf(call.Pos(), "time.%s in deterministic package %s: results must be a pure function of seed and virtual time; move wall-clock work to a runner file or suppress with a reason", sel.Sel.Name, p.ImportPath)
			return true
		})
	}
}

// isExemptFile matches a resolved filename against module-relative
// allowlist entries by path suffix, so the check works for absolute and
// relative invocations alike.
func isExemptFile(filename string, exempt map[string]bool) bool {
	slash := filepath.ToSlash(filename)
	for e := range exempt {
		if slash == e || strings.HasSuffix(slash, "/"+e) {
			return true
		}
	}
	return false
}
