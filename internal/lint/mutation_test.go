package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// The mutation tests prove the gate actually gates: a synthetic module
// named lightwave with the PR 2 map-iteration bug injected into a
// dcn-like package must fail the real DefaultConfig run, and the sorted
// fix of the same code must pass it. This is the regression test for the
// regression test.

const buggyProgram = `package dcn

// Program mimics the PR 2 bug: the hardware programming sequence follows
// randomized map iteration order.
func Program(desired map[[2]int]int) [][2]int {
	var order [][2]int
	for k := range desired {
		order = append(order, k)
	}
	return order
}
`

const fixedProgram = `package dcn

import "sort"

// Program establishes circuits in sorted edge order.
func Program(desired map[[2]int]int) [][2]int {
	var order [][2]int
	for k := range desired {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	return order
}
`

// writeModule lays out a throwaway module that shadows the real module
// path, so DefaultConfig's package lists apply verbatim.
func writeModule(t *testing.T, programSrc string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module lightwave\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "dcn")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "program.go"), []byte(programSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestMutationMapRangeBugIsCaught(t *testing.T) {
	dir := writeModule(t, buggyProgram)
	diags, err := Run(dir, []string{"./..."}, DefaultConfig(), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "maprange" && d.File == "internal/dcn/program.go" {
			found = true
		} else {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !found {
		t.Fatal("re-introduced map-iteration bug was not caught by maprange")
	}
}

func TestMutationSortedFixIsClean(t *testing.T) {
	dir := writeModule(t, fixedProgram)
	diags, err := Run(dir, []string{"./..."}, DefaultConfig(), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
