package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMaprange enforces the map-iteration contract from the PR 2
// determinism sweep: Go randomizes map iteration order per run, so a
// `for range` over a map inside a deterministic package must not let
// that order reach results. Two shapes are recognized as safe without
// annotation — collecting keys/values into slices that are sorted later
// in the same function, and bodies that only perform order-commutative
// updates (integer accumulation, constant stores, map writes keyed by
// the loop variables, deletes). Anything else needs a fix or a
// reason-bearing //lwlint:ignore.
var AnalyzerMaprange = &Analyzer{
	Name: "maprange",
	Doc: "deterministic packages must not let randomized map iteration " +
		"order reach results: sort collected keys before use or keep the " +
		"body order-commutative",
	Run: runMaprange,
}

func runMaprange(p *Pass) {
	if !p.Cfg.IsDeterministic(p.ImportPath) {
		return
	}
	for _, f := range p.Files {
		// Track the innermost enclosing function body so the
		// sorted-later check has a scope to scan.
		var enclosing []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				enclosing = append(enclosing, n)
				ast.Inspect(funcBody(n), visit)
				enclosing = enclosing[:len(enclosing)-1]
				return false
			case *ast.RangeStmt:
				t := p.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				var body ast.Node
				if len(enclosing) > 0 {
					body = funcBody(enclosing[len(enclosing)-1])
				}
				if p.mapRangeSafe(n, body) {
					return true
				}
				p.Reportf(n.Pos(), "iteration over map %s: order is randomized per run and can reach results (the PR 2 nondeterminism bug class); sort the keys before use, keep the body order-commutative, or suppress with a reason", exprString(n.X))
			}
			return true
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			enclosing = append(enclosing, fd)
			ast.Inspect(fd.Body, visit)
			enclosing = enclosing[:len(enclosing)-1]
		}
	}
}

func funcBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// mapRangeSafe reports whether the range statement provably keeps map
// order out of results: every statement must be order-commutative, a
// guarded min/max selection, or an append into a slice that is sorted
// later in the enclosing function.
func (p *Pass) mapRangeSafe(r *ast.RangeStmt, enclosingBody ast.Node) bool {
	c := &rangeClassifier{p: p, loopVars: p.rangeVarObjects(r), targets: make(map[types.Object]bool)}
	if !c.stmts(r.Body.List) {
		return false
	}
	for obj := range c.targets {
		if enclosingBody == nil || !p.sortedAfter(enclosingBody, r.End(), obj) {
			return false
		}
	}
	return true
}

// rangeVarObjects resolves the key/value loop variables to their objects.
func (p *Pass) rangeVarObjects(r *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{r.Key, r.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := p.Info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := p.Info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// rangeClassifier decides statement by statement whether a map-range
// body is order-independent, collecting append targets that must be
// sorted afterwards.
type rangeClassifier struct {
	p        *Pass
	loopVars map[types.Object]bool
	targets  map[types.Object]bool
}

func (c *rangeClassifier) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.stmt(s) {
			return false
		}
	}
	return true
}

func (c *rangeClassifier) stmt(s ast.Stmt) bool {
	p := c.p
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return p.isIntegral(s.X)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative only over integers: float addition order
			// changes low bits, which is exactly the bit-replay hazard.
			return len(s.Lhs) == 1 && p.isIntegral(s.Lhs[0])
		case token.ASSIGN, token.DEFINE:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok {
				if t := p.TypeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && p.mentionsAny(ix.Index, c.loopVars) {
						// m2[k] = v rebuilds a map keyed by the loop
						// variable: same final map in any order.
						return true
					}
				}
				return false
			}
			if c.appendCollect(s) {
				return true
			}
			// x = <constant> is idempotent.
			tv, ok := p.Info.Types[s.Rhs[0]]
			return ok && tv.Value != nil
		}
		return false
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && p.isBuiltin(call.Fun, "delete")
	case *ast.IfStmt:
		if c.minmaxSelect(s) {
			return true
		}
		if s.Init != nil {
			// Allow `if v, ok := other[k]; ok { ... }` inits: a define
			// from a read has no ordered effect.
			if as, ok := s.Init.(*ast.AssignStmt); !ok || as.Tok != token.DEFINE {
				return false
			}
		}
		if !c.stmts(s.Body.List) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return c.stmts(e.List)
		case *ast.IfStmt:
			return c.stmt(e)
		}
		return false
	case *ast.BlockStmt:
		return c.stmts(s.List)
	case *ast.BranchStmt:
		// continue skips work per-element; break makes the processed
		// subset order-dependent.
		return s.Tok == token.CONTINUE
	}
	return false
}

// appendCollect matches `s = append(s, ...)` and records s as a slice
// that must be sorted after the loop.
func (c *rangeClassifier) appendCollect(as *ast.AssignStmt) bool {
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !c.p.isBuiltin(call.Fun, "append") || len(call.Args) < 2 {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || c.p.objOf(first) == nil || c.p.objOf(first) != c.p.objOf(lhs) {
		return false
	}
	c.targets[c.p.objOf(lhs)] = true
	return true
}

// minmaxSelect matches the running-extremum idiom
//
//	if <cond containing x < k or x > k> { x = k }
//
// whose result (the minimum or maximum over visited entries) is the same
// in any iteration order.
func (c *rangeClassifier) minmaxSelect(s *ast.IfStmt) bool {
	if s.Init != nil || len(s.Body.List) != 1 || s.Else != nil {
		return false
	}
	as, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	x, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	k, ok := as.Rhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	xo, ko := c.p.objOf(x), c.p.objOf(k)
	if xo == nil || ko == nil {
		return false
	}
	found := false
	ast.Inspect(s.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.LSS && be.Op != token.GTR) {
			return true
		}
		l, lok := be.X.(*ast.Ident)
		r, rok := be.Y.(*ast.Ident)
		if lok && rok {
			lo, ro := c.p.objOf(l), c.p.objOf(r)
			if (lo == xo && ro == ko) || (lo == ko && ro == xo) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortedAfter scans for a sort.* / slices.* call after pos whose
// arguments mention obj.
func (p *Pass) sortedAfter(body ast.Node, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := p.PkgNameOf(sel); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.objOf(id) == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (p *Pass) isIntegral(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func (p *Pass) mentionsAny(e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[p.objOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

func (p *Pass) objOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

func (p *Pass) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.objOf(id).(*types.Builtin)
	return ok
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "expression"
}
