package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one fully parsed and type-checked module package, ready for
// analysis. Only non-test files are loaded: the invariants guard shipping
// code, and test files are free to use wall clocks and raw randomness.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
}

func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds a types importer over the compiler export data `go
// list -export` leaves in the build cache. This keeps the loader
// stdlib-only: dependencies (including sibling module packages) are
// imported from export data, and only the packages under analysis are
// type-checked from source.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// LoadModule loads every module package matching patterns (e.g. "./...")
// rooted at root, parses its non-test files with comments, and
// type-checks them. The `go` tool resolves patterns, applies build
// constraints, skips testdata, and provides export data for every
// dependency, so a single child process replaces a bespoke build-system
// reimplementation.
func LoadModule(root string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(root, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	universe, err := goList(root, append([]string{"-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Incomplete"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(universe))
	byPath := make(map[string]listPkg, len(universe))
	for _, p := range universe {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, t := range targets {
		p, ok := byPath[t.ImportPath]
		if !ok || p.Standard {
			continue
		}
		if p.Incomplete {
			return nil, fmt.Errorf("lint: package %s does not compile; fix the build before linting", p.ImportPath)
		}
		pkg, err := checkFromSource(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkFromSource parses and type-checks one package directory.
func checkFromSource(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadDir loads a single directory of Go files as the package
// asImportPath, resolving its imports (stdlib or otherwise) through `go
// list -export` run from resolveDir. The analyzer testdata corpora live
// outside the module build graph, so this is how linttest feeds them to
// the engine; the mutation test points it at synthetic throwaway
// modules the same way.
func LoadDir(dir, asImportPath, resolveDir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	imports := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "unsafe" {
				imports[path] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		args := []string{"-export", "-deps", "-json=ImportPath,Export,Incomplete"}
		for p := range imports {
			args = append(args, p)
		}
		deps, err := goList(resolveDir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	info := newInfo()
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(asImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s (%s): %w", dir, strings.Join(names, ","), err)
	}
	return &Package{
		ImportPath: asImportPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// moduleRelative rewrites absolute positions to module-root-relative
// paths so diagnostics are stable across checkouts.
func moduleRelative(root string) func(token.Position) string {
	abs, err := filepath.Abs(root)
	if err != nil {
		abs = root
	}
	return func(pos token.Position) string {
		if rel, err := filepath.Rel(abs, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return pos.Filename
	}
}
