package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden corpora under testdata/ are the analyzer specification by
// example: each directory is one synthetic package, loaded through the
// same LoadDir path the mutation tests use, and every expected finding is
// a `// want "regexp"` comment on the line it is expected at. A produced
// diagnostic with no matching want, or a want with no matching
// diagnostic, fails the test — so corpora pin both the positives and the
// negatives of every analyzer.

// corpusConfig mirrors DefaultConfig's shape onto a synthetic corpus
// package: the corpus itself is the deterministic/fsync scope, and the
// lock-order table points at types declared inside it.
func corpusConfig(importPath string) Config {
	return Config{
		ModulePath:     "corpus",
		SimPackage:     "corpus/sim",
		Deterministic:  []string{importPath},
		WallClockFiles: []string{"runner.go"},
		LockOrder: []LockClass{
			{Type: importPath + ".Server", Field: "mu", Rank: 1},
			{Type: importPath + ".Injector", Field: "mu", Rank: 2, Methods: true},
			{Type: importPath + ".Manager", Field: "mu", Rank: 3, Methods: true},
		},
		FsyncPackages: []string{importPath},
	}
}

func TestCorpora(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), "_") {
			continue
		}
		ran++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			runCorpus(t, name)
		})
	}
	if ran == 0 {
		t.Fatal("no corpora under testdata/")
	}
}

func runCorpus(t *testing.T, name string) {
	dir := filepath.Join("testdata", name)
	importPath := "corpus/" + name
	cfg := corpusConfig(importPath)
	pkg, err := LoadDir(dir, importPath, ".")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(&cfg, pkg, Analyzers(), nil)

	wants := parseWants(t, dir)
	used := make([]bool, 0)
	type flatWant struct {
		key wantKey
		re  *regexp.Regexp
	}
	var flat []flatWant
	for k, res := range wants {
		for _, re := range res {
			flat = append(flat, flatWant{k, re})
			used = append(used, false)
		}
	}
	for _, d := range diags {
		key := wantKey{filepath.Base(d.File), d.Line}
		rendered := "[" + d.Analyzer + "] " + d.Message
		matched := false
		for i, w := range flat {
			if !used[i] && w.key == key && w.re.MatchString(rendered) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s:%d: %s", d.File, d.Line, rendered)
		}
	}
	for i, w := range flat {
		if !used[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.key.file, w.key.line, w.re)
		}
	}
}

type wantKey struct {
	file string // base name
	line int
}

// wantText extracts the payload of a `// want ...` comment; quoted
// (backquote or double-quote) regexes follow the marker.
var wantText = regexp.MustCompile("//\\s*want\\s+(.+)$")
var wantQuoted = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(t *testing.T, dir string) map[wantKey][]*regexp.Regexp {
	out := make(map[wantKey][]*regexp.Regexp)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantText.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			quoted := wantQuoted.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Errorf("%s/%s:%d: want comment carries no quoted regexp", dir, e.Name(), line)
				continue
			}
			for _, q := range quoted {
				var pat string
				if q[0] == '`' {
					pat = q[1 : len(q)-1]
				} else {
					pat, err = strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s/%s:%d: %v", dir, e.Name(), line, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s/%s:%d: bad want regexp: %v", dir, e.Name(), line, err)
				}
				out[wantKey{e.Name(), line}] = append(out[wantKey{e.Name(), line}], re)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return out
}
