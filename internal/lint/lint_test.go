package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "internal/dcn/program.go", Line: 131, Analyzer: "maprange", Message: "iteration over map"}
	got := d.String()
	want := "internal/dcn/program.go:131: [maprange] iteration over map"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// parseSrc parses one synthetic file and returns its suppressions plus
// the syntax errors the parser reported.
func parseSrc(t *testing.T, src string) ([]suppression, []string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var errs []string
	sups := parseSuppressions(fset, f, known, func(_ token.Pos, msg string) {
		errs = append(errs, msg)
	})
	return sups, errs
}

func TestSuppressionParsing(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		wantSup int
		wantErr string // substring of the reported error, "" for none
	}{
		{"valid", "//lwlint:ignore walltime telemetry only", 1, ""},
		{"multi", "//lwlint:ignore walltime,maprange shared reason", 1, ""},
		{"no analyzer", "//lwlint:ignore", 0, "names no analyzer"},
		{"no reason", "//lwlint:ignore walltime", 0, "needs a written reason"},
		{"unknown", "//lwlint:ignore wibble because", 0, `unknown analyzer "wibble"`},
		{"unknown in list", "//lwlint:ignore walltime,wibble because", 0, `unknown analyzer "wibble"`},
		{"not ours", "//lwlint:ignorance is bliss", 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package x\n\n" + tc.comment + "\nfunc f() {}\n"
			sups, errs := parseSrc(t, src)
			if len(sups) != tc.wantSup {
				t.Errorf("got %d suppressions, want %d", len(sups), tc.wantSup)
			}
			if tc.wantErr == "" && len(errs) > 0 {
				t.Errorf("unexpected errors: %v", errs)
			}
			if tc.wantErr != "" {
				found := false
				for _, e := range errs {
					if strings.Contains(e, tc.wantErr) {
						found = true
					}
				}
				if !found {
					t.Errorf("errors %v do not mention %q", errs, tc.wantErr)
				}
			}
		})
	}
}

func TestSuppressionReason(t *testing.T) {
	sups, errs := parseSrc(t, "package x\n\n//lwlint:ignore maprange teardown order is free\nfunc f() {}\n")
	if len(errs) > 0 || len(sups) != 1 {
		t.Fatalf("sups=%v errs=%v", sups, errs)
	}
	if sups[0].reason != "teardown order is free" {
		t.Errorf("reason = %q", sups[0].reason)
	}
	if len(sups[0].analyzers) != 1 || sups[0].analyzers[0] != "maprange" {
		t.Errorf("analyzers = %v", sups[0].analyzers)
	}
}

func TestApplySuppressions(t *testing.T) {
	mk := func(file string, line int, a string) Diagnostic {
		return Diagnostic{
			Pos:  token.Position{Filename: file, Line: line},
			File: file, Line: line, Analyzer: a,
		}
	}
	diags := []Diagnostic{
		mk("a.go", 10, "walltime"), // same line as annotation: covered
		mk("a.go", 11, "walltime"), // line below annotation: covered
		mk("a.go", 12, "walltime"), // two below: survives
		mk("a.go", 11, "maprange"), // other analyzer: survives
		mk("b.go", 10, "walltime"), // other file: survives
	}
	sups := []suppression{{file: "a.go", line: 10, analyzers: []string{"walltime"}}}
	kept := applySuppressions(append([]Diagnostic(nil), diags...), sups)
	if len(kept) != 3 {
		t.Fatalf("kept %d diagnostics, want 3: %v", len(kept), kept)
	}
	for _, d := range kept {
		if d.File == "a.go" && d.Analyzer == "walltime" && d.Line != 12 {
			t.Errorf("diagnostic should have been suppressed: %+v", d)
		}
	}
}

func TestDefaultConfigNamesRealPackages(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ModulePath != "lightwave" {
		t.Fatalf("module path %q", cfg.ModulePath)
	}
	if !cfg.IsDeterministic(cfg.SimPackage) {
		t.Error("the sim package itself must be under the deterministic contract")
	}
	if cfg.IsDeterministic("lightwave/internal/fleet") {
		t.Error("fleet runs real-time reconciler workers and must not be in the deterministic set")
	}
	if !cfg.inFsyncScope("lightwave/internal/wal") {
		t.Error("wal must be in fsync scope")
	}
}
