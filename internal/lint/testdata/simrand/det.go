// Package simrand is the simrand analyzer corpus. The test config lists
// the package as deterministic, so the global-seed sources are banned
// alongside math/rand itself.
package simrand

import (
	_ "crypto/rand"  // want `\[simrand\] import of crypto/rand in deterministic package`
	_ "hash/maphash" // want `\[simrand\] import of hash/maphash in deterministic package`
	_ "math/rand"    // want `\[simrand\] import of math/rand: use corpus/sim`
	_ "math/rand/v2" // want `\[simrand\] import of math/rand/v2: use corpus/sim`
)
