package simrand

import "math"

// Norm shows deterministic math (as opposed to math/rand) is untouched.
func Norm(x float64) float64 { return math.Abs(x) }
