// Package suppress is the suppression-semantics corpus: a reasoned
// //lwlint:ignore covers its own line and the line below, and only for
// the analyzers it names.
package suppress

import "time"

// Stamp is wall-clock by design in this corpus; the annotation above the
// call carries the reason and the analyzer stays quiet.
func Stamp() time.Time {
	//lwlint:ignore walltime corpus: sanctioned wall-clock read
	return time.Now()
}

// Sleep uses the trailing form, which covers its own line.
func Sleep() {
	time.Sleep(time.Millisecond) //lwlint:ignore walltime corpus: trailing form
}

// Wrong names an analyzer that did not fire here, so the maprange
// finding on the next line survives.
func Wrong(m map[string]int) []string {
	var out []string
	//lwlint:ignore walltime corpus: names the wrong analyzer, does not bind
	for k := range m { // want `\[maprange\] iteration over map m`
		out = append(out, k)
	}
	return out
}

// Both suppresses two analyzers with one annotation: the unsorted
// collect below would otherwise be a maprange finding.
func Both(m map[string]int) ([]string, time.Time) {
	var out []string
	//lwlint:ignore maprange,walltime corpus: one annotation, two analyzers
	for k := range m {
		out = append(out, k)
	}
	return out, time.Now() //lwlint:ignore walltime corpus: trailing again
}
