// Package walltime is the walltime analyzer corpus: a deterministic
// package that reads the wall clock everywhere except runner.go.
package walltime

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond)   // want `\[walltime\] time\.Sleep in deterministic package corpus/walltime`
	<-time.After(time.Millisecond) // want `\[walltime\] time\.After in deterministic package`
	return time.Now()              // want `\[walltime\] time\.Now in deterministic package`
}

// Duration arithmetic and type references stay legal: only acquiring
// "now" or scheduling real-time callbacks is banned.
func double(d time.Duration) time.Duration { return 2 * d }

// A local method may reuse a banned name; only package time counts.
type clock struct{ t int }

func (c clock) Now() int { return c.t }

func okLocal(c clock) int { return c.Now() }
